// profcat: swiss-army knife for the collapsed-stack ("folded") profiles
// the sampling profiler writes (see src/obs/profiler.h and
// docs/OBSERVABILITY.md).
//
//   profcat A.folded B.folded ...           merge: summed folded to stdout
//   profcat --top N FILE...                 top-N frames by self/total samples
//   profcat --diff BASE CAND [--top N]      per-frame self-sample delta
//
// Merged output is itself a valid folded profile (sorted, deterministic),
// so profcat composes with flamegraph.pl / speedscope and with itself.
// Lines that do not parse (e.g. a truncated crash flush tail) are
// skipped with a note on stderr, never fatal: a partial profile from a
// crashed run should still be readable.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace confcard {
namespace {

using FoldedProfile = std::map<std::string, uint64_t>;

// Parses one folded file into stack -> count, accumulating into `out`.
Result<size_t> LoadFolded(const std::string& path, FoldedProfile* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open folded profile: " + path);
  }
  size_t skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // The count is the suffix after the LAST space: frame names may
    // contain spaces (template parameters), counts may not.
    const size_t space = line.find_last_of(' ');
    bool ok = space != std::string::npos && space + 1 < line.size() &&
              space > 0;
    uint64_t count = 0;
    if (ok) {
      const std::string suffix = line.substr(space + 1);
      ok = suffix.find_first_not_of("0123456789") == std::string::npos;
      if (ok) count = std::strtoull(suffix.c_str(), nullptr, 10);
    }
    if (!ok || count == 0) {
      ++skipped;
      continue;
    }
    (*out)[line.substr(0, space)] += count;
  }
  if (skipped > 0) {
    std::fprintf(stderr, "profcat: %zu malformed line(s) skipped in %s\n",
                 skipped, path.c_str());
  }
  return skipped;
}

struct FrameStats {
  uint64_t self = 0;   // samples with this frame as the leaf
  uint64_t total = 0;  // samples with this frame anywhere on the stack
};

// Splits a folded stack on ';'. Every stack has at least one frame.
std::vector<std::string> SplitStack(const std::string& stack) {
  std::vector<std::string> frames;
  size_t begin = 0;
  for (;;) {
    const size_t semi = stack.find(';', begin);
    if (semi == std::string::npos) {
      frames.push_back(stack.substr(begin));
      return frames;
    }
    frames.push_back(stack.substr(begin, semi - begin));
    begin = semi + 1;
  }
}

std::map<std::string, FrameStats> PerFrame(const FoldedProfile& profile) {
  std::map<std::string, FrameStats> stats;
  for (const auto& [stack, count] : profile) {
    const std::vector<std::string> frames = SplitStack(stack);
    stats[frames.back()].self += count;
    // A frame recursing within one stack still contributes its count
    // only once to `total`.
    std::set<std::string> seen;
    for (const std::string& f : frames) {
      if (seen.insert(f).second) stats[f].total += count;
    }
  }
  return stats;
}

uint64_t TotalSamples(const FoldedProfile& profile) {
  uint64_t total = 0;
  for (const auto& [stack, count] : profile) total += count;
  return total;
}

void PrintTop(const FoldedProfile& profile, size_t top_n) {
  const uint64_t total = TotalSamples(profile);
  if (total == 0) {
    std::printf("no samples\n");
    return;
  }
  const std::map<std::string, FrameStats> stats = PerFrame(profile);
  std::vector<std::pair<std::string, FrameStats>> rows(stats.begin(),
                                                       stats.end());
  std::printf("%" PRIu64 " samples, %zu unique stacks, %zu unique frames\n",
              total, profile.size(), stats.size());

  auto print_table = [&](const char* title, auto key) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const auto& a, const auto& b) {
                       return key(a.second) > key(b.second);
                     });
    std::printf("\n%-7s %-7s %-6s %s\n", title, "samples", "pct", "frame");
    const size_t n = std::min(top_n, rows.size());
    for (size_t i = 0; i < n; ++i) {
      const uint64_t v = key(rows[i].second);
      if (v == 0) break;
      std::printf("%-7zu %-7" PRIu64 " %5.1f%% %s\n", i + 1, v,
                  100.0 * static_cast<double>(v) / static_cast<double>(total),
                  rows[i].first.c_str());
    }
  };
  print_table("self", [](const FrameStats& s) { return s.self; });
  print_table("total", [](const FrameStats& s) { return s.total; });
}

void PrintDiff(const FoldedProfile& base, const FoldedProfile& cand,
               size_t top_n) {
  const uint64_t base_total = TotalSamples(base);
  const uint64_t cand_total = TotalSamples(cand);
  std::printf("base: %" PRIu64 " samples   cand: %" PRIu64 " samples\n",
              base_total, cand_total);
  const std::map<std::string, FrameStats> bs = PerFrame(base);
  const std::map<std::string, FrameStats> cs = PerFrame(cand);
  // Delta in self samples per frame, candidate minus base. Raw sample
  // counts, deliberately unnormalized: at a fixed sampling rate they are
  // proportional to CPU time, which is what a regression hunt compares.
  std::map<std::string, int64_t> delta;
  for (const auto& [frame, s] : bs) {
    delta[frame] -= static_cast<int64_t>(s.self);
  }
  for (const auto& [frame, s] : cs) {
    delta[frame] += static_cast<int64_t>(s.self);
  }
  std::vector<std::pair<std::string, int64_t>> rows(delta.begin(),
                                                    delta.end());
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return std::llabs(a.second) > std::llabs(b.second);
  });
  std::printf("\n%-8s %s\n", "d(self)", "frame");
  const size_t n = std::min(top_n, rows.size());
  for (size_t i = 0; i < n; ++i) {
    if (rows[i].second == 0) break;
    std::printf("%+-8" PRId64 " %s\n", rows[i].second, rows[i].first.c_str());
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: profcat [--top N] FILE...         merge folded profiles\n"
      "       profcat --diff BASE CAND [--top N]  frame-level delta\n");
  return 2;
}

int Main(int argc, char** argv) {
  size_t top_n = 0;
  bool diff = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) return Usage();
      top_n = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (top_n == 0) return Usage();
    } else if (arg == "--diff") {
      diff = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || (diff && files.size() != 2)) return Usage();

  if (diff) {
    FoldedProfile base;
    FoldedProfile cand;
    for (size_t i = 0; i < 2; ++i) {
      const auto loaded = LoadFolded(files[i], i == 0 ? &base : &cand);
      if (!loaded.ok()) {
        std::fprintf(stderr, "profcat: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
    }
    PrintDiff(base, cand, top_n == 0 ? 20 : top_n);
    return 0;
  }

  FoldedProfile merged;
  for (const std::string& file : files) {
    const auto loaded = LoadFolded(file, &merged);
    if (!loaded.ok()) {
      std::fprintf(stderr, "profcat: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
  }
  if (top_n > 0) {
    PrintTop(merged, top_n);
  } else {
    for (const auto& [stack, count] : merged) {
      std::printf("%s %" PRIu64 "\n", stack.c_str(), count);
    }
  }
  return 0;
}

}  // namespace
}  // namespace confcard

int main(int argc, char** argv) { return confcard::Main(argc, argv); }
