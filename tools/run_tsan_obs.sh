#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer (-DCONFCARD_SANITIZE=thread) and
# runs the concurrent-observability surface: every test labeled
# obs-smoke (sharded metrics, event-log merge, trace export, rolling
# windows), parallel-smoke (thread pool), and prof-smoke (sampling
# profiler: SIGPROF handler + lock-free rings under an oversubscribed
# hammer). A clean exit means TSan saw no data races in the hot-path
# record/merge/sample code.
#
# Usage: tools/run_tsan_obs.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCONFCARD_SANITIZE=thread
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error: fail the suite on the first race instead of logging on.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
# Tiny scale: TSan is ~10x slower and the races we hunt are scale-free.
export CONFCARD_SCALE="${CONFCARD_SCALE:-0.05}"

ctest --test-dir "${build_dir}" -L 'obs-smoke|parallel-smoke|prof-smoke' \
  --output-on-failure
echo "TSan obs suite passed."
