#!/usr/bin/env bash
# Builds the tree under a sanitizer and runs the concurrent hot-path
# surface: every test labeled obs-smoke (sharded metrics, event-log
# merge, trace export, rolling windows), parallel-smoke (thread pool
# dispatch + the tensor-buffer arena), prof-smoke (sampling
# profiler: SIGPROF handler + lock-free rings under an oversubscribed
# hammer), and serve-smoke (serving front-end: MPMC queue hammer,
# micro-batcher/shard pipeline, lock-free circuit breaker, plus the
# bench_serving smoke with its bit-identity and zero-alloc gates), and
# drift-smoke (the self-healing loop: feedback rings, sliding-window
# recalibration, staged-degradation transitions, plus the bench_drift
# smoke with its replay and zero-alloc gates). A clean exit means the
# sanitizer saw no races (tsan) or memory errors (asan) in the hot-path
# record/merge/sample/serve code.
#
# Usage: tools/run_tsan_obs.sh [preset]   (default: tsan)
#
# The argument is a CMakePresets.json preset name. `tsan` is the
# historical default; `asan` runs the same labeled suite under
# AddressSanitizer — its test preset exports CONFCARD_ARENA=off, since
# buffer recycling would otherwise mask use-after-free on freed tensor
# storage (the arena_test cases that need recycling GTEST_SKIP there).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
preset="${1:-tsan}"

cd "${repo_root}"
cmake --preset "${preset}"
cmake --build --preset "${preset}" -j "$(nproc)"

# halt_on_error: fail the suite on the first race instead of logging on.
# Harmless under non-TSan presets.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
# Tiny scale: sanitizers are ~10x slower and the bugs we hunt are
# scale-free.
export CONFCARD_SCALE="${CONFCARD_SCALE:-0.05}"

ctest --preset "${preset}" --output-on-failure
echo "Sanitizer suite passed (preset: ${preset})."
