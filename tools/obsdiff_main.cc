// obsdiff: compare two run artifacts and/or per-query event logs and
// exit nonzero when a regression is detected. The CI-facing face of
// src/obs/diff — see docs/OBSERVABILITY.md for threshold semantics.
//
//   obsdiff baseline.json candidate.json [options]
//   obsdiff baseline.jsonl candidate.jsonl --json report.json
//
// Exit codes: 0 = no regression, 1 = regression detected, 2 = usage or
// I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/diff.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: obsdiff <baseline> <candidate> [options]\n"
      "  <baseline>/<candidate>: run artifacts (CONFCARD_METRICS_JSON)\n"
      "  or per-query event logs (CONFCARD_EVENTS_JSONL), mixed freely.\n"
      "options:\n"
      "  --latency-tol F       relative tolerance for latency quantiles\n"
      "                        (default 0.5 = candidate may be 1.5x)\n"
      "  --latency-floor-us F  skip quantiles where both sides are below\n"
      "                        this many microseconds (default 100)\n"
      "  --coverage-tol F      absolute tolerance for coverage-gauge\n"
      "                        drops (default 0.02)\n"
      "  --gauge-tol F         relative tolerance for other gauges\n"
      "                        (default 1e-6)\n"
      "  --count-tol F         relative tolerance for counters and\n"
      "                        histogram sample counts (default 0)\n"
      "  --allow-missing       missing metrics are notes, not failures\n"
      "  --exclude-file PATH   metric-name prefixes to exclude, one per\n"
      "                        line ('#' comments); replaces the built-in\n"
      "                        exclusions. Default: tools/obsdiff_exclude\n"
      "                        .txt next to the working directory if it\n"
      "                        exists, else the built-in list\n"
      "  --json PATH           also write a machine-readable report\n"
      "  --quiet               suppress notes in the text report\n");
}

bool ParseDouble(const char* flag, const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "obsdiff: bad value for %s: %s\n", flag, text);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using confcard::obs::DiffOptions;
  using confcard::obs::DiffReport;
  using confcard::obs::RunView;

  std::string paths[2];
  size_t num_paths = 0;
  DiffOptions options;
  std::string json_out;
  std::string exclude_file;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](double* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obsdiff: %s needs a value\n", arg.c_str());
        return false;
      }
      return ParseDouble(arg.c_str(), argv[++i], out);
    };
    if (arg == "--latency-tol") {
      if (!value(&options.latency_rel_tol)) return 2;
    } else if (arg == "--latency-floor-us") {
      if (!value(&options.latency_floor_us)) return 2;
    } else if (arg == "--coverage-tol") {
      if (!value(&options.coverage_abs_tol)) return 2;
    } else if (arg == "--gauge-tol") {
      if (!value(&options.gauge_rel_tol)) return 2;
    } else if (arg == "--count-tol") {
      if (!value(&options.count_rel_tol)) return 2;
    } else if (arg == "--allow-missing") {
      options.fail_on_missing = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obsdiff: --json needs a path\n");
        return 2;
      }
      json_out = argv[++i];
    } else if (arg == "--exclude-file") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obsdiff: --exclude-file needs a path\n");
        return 2;
      }
      exclude_file = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "obsdiff: unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else if (num_paths < 2) {
      paths[num_paths++] = arg;
    } else {
      std::fprintf(stderr, "obsdiff: too many positional arguments\n");
      PrintUsage();
      return 2;
    }
  }
  if (num_paths != 2) {
    PrintUsage();
    return 2;
  }

  // An explicit --exclude-file must load; the repo-default file is a
  // silent best-effort fallback so a bare `obsdiff a b` works anywhere.
  if (exclude_file.empty()) {
    const char* kRepoDefault = "tools/obsdiff_exclude.txt";
    if (std::ifstream(kRepoDefault).good()) exclude_file = kRepoDefault;
  } else if (!std::ifstream(exclude_file).good()) {
    std::fprintf(stderr, "obsdiff: cannot open exclude file: %s\n",
                 exclude_file.c_str());
    return 2;
  }
  if (!exclude_file.empty()) {
    confcard::Result<std::vector<std::string>> prefixes =
        confcard::obs::LoadExcludePrefixes(exclude_file);
    if (!prefixes.ok()) {
      std::fprintf(stderr, "obsdiff: %s\n",
                   prefixes.status().ToString().c_str());
      return 2;
    }
    options.exclude_prefixes = std::move(*prefixes);
  }

  confcard::Result<RunView> baseline =
      confcard::obs::LoadRunView(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "obsdiff: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  confcard::Result<RunView> candidate =
      confcard::obs::LoadRunView(paths[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "obsdiff: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  const DiffReport report =
      confcard::obs::DiffRuns(*baseline, *candidate, options);
  std::fputs(report.ToText(!quiet).c_str(), stdout);

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    out << report.ToJson() << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "obsdiff: cannot write %s\n", json_out.c_str());
      return 2;
    }
  }

  return report.HasRegression() ? 1 : 0;
}
