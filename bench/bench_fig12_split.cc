// Figure 12: the training/calibration split trade-off (MSCN, LW-S-CP).
// A fixed labeled budget D is split 25/75, 50/50 and 75/25 into training
// and calibration sets. Expected shape: larger training share -> more
// accurate model -> tighter PIs (75% train tightest), while coverage
// stays valid throughout.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 12",
                        "training-calibration split (MSCN, LW-S-CP)");

  Table table = MakeDmv(bench::DefaultRows()).value();

  // One fixed labeled pool D, re-split per setting.
  WorkloadConfig wc;
  wc.max_selectivity = 0.2;
  wc.num_queries = bench::TrainQueries() + bench::CalibQueries();
  wc.seed = 1;
  Workload pool = GenerateWorkload(table, wc).value();
  wc.num_queries = bench::TestQueries();
  wc.seed = 3;
  Workload test = GenerateWorkload(table, wc).value();

  std::vector<MethodResult> results;
  for (double train_frac : {0.25, 0.50, 0.75}) {
    size_t cut = static_cast<size_t>(train_frac *
                                     static_cast<double>(pool.size()));
    Workload train(pool.begin(), pool.begin() + static_cast<long>(cut));
    Workload calib(pool.begin() + static_cast<long>(cut), pool.end());

    MscnEstimator mscn(bench::MscnDefaults());
    CONFCARD_CHECK(mscn.Train(table, train).ok());

    SingleTableHarness harness(table, train, calib, test, {});
    MethodResult lw = harness.RunLwScp(mscn);
    char label[32];
    std::snprintf(label, sizeof(label), "lw(%d/%d)",
                  static_cast<int>(train_frac * 100),
                  static_cast<int>(100 - train_frac * 100));
    lw.method = label;
    results.push_back(lw);

    MethodResult scp = harness.RunScp(mscn);
    std::snprintf(label, sizeof(label), "s-cp(%d/%d)",
                  static_cast<int>(train_frac * 100),
                  static_cast<int>(100 - train_frac * 100));
    scp.method = label;
    results.push_back(scp);
  }
  PrintMethodTable(results);
  std::printf("\nexpected shape: widths shrink as the training share "
              "grows; coverage stays ~0.9 for all splits\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
