// Ablation F: the validity curve. The defining guarantee of conformal
// prediction — P(covered) >= 1 - alpha for EVERY alpha — checked by
// sweeping alpha over a grid and plotting empirical vs nominal coverage
// for S-CP and LW-S-CP over a trained MSCN. The curve should hug the
// diagonal from above (slight over-coverage is the finite-sample
// ceil((n+1)(1-alpha)) effect).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Ablation F",
                        "validity curve: empirical vs nominal coverage "
                        "(MSCN)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);
  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());

  std::printf("%8s %14s %14s %14s %14s\n", "alpha", "scp_cov",
              "scp_w(sel)", "lw_cov", "lw_w(sel)");
  for (double alpha : {0.5, 0.3, 0.2, 0.1, 0.05, 0.02}) {
    SingleTableHarness::Options opts;
    opts.alpha = alpha;
    SingleTableHarness harness(table, s.train, s.calib, s.test, opts);
    MethodResult scp = harness.RunScp(mscn);
    MethodResult lw = harness.RunLwScp(mscn);
    std::printf("%8.2f %14.4f %14.6f %14.4f %14.6f\n", alpha,
                scp.coverage, scp.mean_width_sel, lw.coverage,
                lw.mean_width_sel);
  }
  std::printf("\nexpected shape: every coverage entry >= 1 - alpha (up to "
              "sampling noise of the %zu-query test set); widths grow "
              "monotonically as alpha falls\n",
              s.test.size());
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
