// Table I: integrating prediction intervals into a traditional
// optimizer. Setup after the paper (and Cai et al.): a Postgres-like
// estimator (histograms + independence + distinct-count join formula)
// plans JOB-style queries over the IMDB-like schema. Queries are split
// 50/50 into calibration and test (5 random repetitions); split
// conformal prediction calibrates delta on the optimizer's own full-
// query residuals; at test time every multi-table cardinality estimate
// is replaced by the PI upper bound Est(Q) + delta. Expected shape:
// q-error percentiles (P90/P95/P99) of the injected estimate improve
// over the default, and the cumulative execution work (intermediate-
// tuple volume, our runtime proxy) drops by roughly 10%.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "conformal/split.h"
#include "data/multitable.h"
#include "exec/join.h"
#include "harness/report.h"
#include "optim/optimizer.h"
#include "optim/pg_estimator.h"
#include "query/join_workload.h"

namespace confcard {
namespace {

double QError(double est, double truth) {
  est = std::max(est, 1.0);
  truth = std::max(truth, 1.0);
  return std::max(est / truth, truth / est);
}

// Executes `query` under `plan` and charges the *actual* cost of the
// chosen operators: hash join pays build + probe + output; nested loop
// pays kNestedLoopFactor * outer * inner + output. A nested loop picked
// on an underestimated outer is exactly the plan disaster pessimistic
// estimates avoid.
double WorkOf(const Database& db, const JoinQuery& query,
              const JoinPlan& plan, const CostModel& cost) {
  JoinQuery reordered = query;
  reordered.tables = plan.order;
  auto res = ExecuteJoin(db, reordered);
  CONFCARD_CHECK(res.ok());
  double work = static_cast<double>(res->base_sizes.empty()
                                        ? 0
                                        : res->base_sizes[0]);
  double prev = work;
  for (size_t step = 0; step + 1 < plan.order.size(); ++step) {
    const double inner = static_cast<double>(res->base_sizes[step + 1]);
    const double out =
        static_cast<double>(res->intermediate_sizes[step]);
    work += plan.ops[step] == JoinOp::kNestedLoop
                ? cost.NestedLoopCost(prev, inner, out)
                : cost.HashCost(prev, inner, out);
    prev = out;
  }
  return work;
}

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Table I",
                        "Postgres-like optimizer with and without "
                        "injected PI upper bounds (JOB-like workload)");

  Database db = MakeImdbLike(bench::Scaled(10000, 1500)).value();

  JoinWorkloadConfig jc;
  jc.correlated_literals = true;
  jc.min_cardinality = 200.0;  // JOB-style: queries return non-trivial results
  jc.range_prob = 0.6;
  jc.queries_per_template = bench::Scaled(40, 6);
  jc.seed = 5;
  JoinWorkload workload =
      GenerateJoinWorkload(db, JobTemplates(), jc).value();
  std::printf("workload=%zu queries over %zu templates\n", workload.size(),
              JobTemplates().size());

  PgEstimator pg(db);

  // Cost model with a work-mem cliff: hash builds larger than ~3% of the
  // title table spill. Underestimated intermediates make the optimizer
  // blind to the cliff; PI upper bounds restore pessimism.
  CostModel cost;
  cost.spill_threshold =
      0.03 * static_cast<double>(db.table("title").num_rows());

  // Per-repetition accumulators.
  std::vector<double> p90_def, p95_def, p99_def;
  std::vector<double> p90_pi, p95_pi, p99_pi;
  std::vector<double> work_reduction;

  Rng rng(77);
  const int kRepetitions = 5;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    std::vector<size_t> order(workload.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    const size_t half = workload.size() / 2;

    // Calibrate delta on the optimizer's full-query residuals; the PI
    // upper bound injected into the optimizer is Est(Q) + delta, exactly
    // as the paper describes.
    std::vector<double> calib_est, calib_truth;
    for (size_t i = 0; i < half; ++i) {
      const LabeledJoinQuery& lq = workload[order[i]];
      calib_est.push_back(pg.EstimateCardinality(lq.query));
      calib_truth.push_back(lq.cardinality);
    }
    SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
    CONFCARD_CHECK(scp.Calibrate(calib_est, calib_truth).ok());
    const double delta = scp.delta();

    JoinOptimizer default_opt(pg);
    default_opt.SetCostModel(cost);
    JoinOptimizer pi_opt(pg);
    pi_opt.SetCostModel(cost);
    pi_opt.SetAdjuster(
        [delta](double est, const std::vector<std::string>&) {
          return est + delta;  // PI upper bound
        });

    std::vector<double> q_def, q_pi;
    double total_work_def = 0, total_work_pi = 0;
    size_t plans_changed = 0;
    for (size_t i = half; i < workload.size(); ++i) {
      const LabeledJoinQuery& lq = workload[order[i]];
      double est = pg.EstimateCardinality(lq.query);
      q_def.push_back(QError(est, lq.cardinality));
      q_pi.push_back(QError(est + delta, lq.cardinality));

      auto plan_def = default_opt.Optimize(lq.query);
      auto plan_pi = pi_opt.Optimize(lq.query);
      CONFCARD_CHECK(plan_def.ok() && plan_pi.ok());
      if (plan_def->order != plan_pi->order ||
          plan_def->ops != plan_pi->ops) {
        ++plans_changed;
      }
      total_work_def += WorkOf(db, lq.query, *plan_def, cost);
      total_work_pi += WorkOf(db, lq.query, *plan_pi, cost);
    }
    std::printf("  rep %d: delta=%.3g plans_changed=%zu/%zu\n", rep,
                delta, plans_changed, workload.size() - half);

    p90_def.push_back(Percentile(q_def, 90));
    p95_def.push_back(Percentile(q_def, 95));
    p99_def.push_back(Percentile(q_def, 99));
    p90_pi.push_back(Percentile(q_pi, 90));
    p95_pi.push_back(Percentile(q_pi, 95));
    p99_pi.push_back(Percentile(q_pi, 99));
    work_reduction.push_back(
        100.0 * (1.0 - total_work_pi / total_work_def));
  }

  std::printf("\nQ-error percentiles, mean over %d random splits:\n",
              kRepetitions);
  std::printf("%-22s %10s %10s %10s\n", "", "P90", "P95", "P99");
  std::printf("%-22s %10.2f %10.2f %10.2f\n", "Postgres-like",
              Mean(p90_def), Mean(p95_def), Mean(p99_def));
  std::printf("%-22s %10.2f %10.2f %10.2f\n", "Postgres-like with PI",
              Mean(p90_pi), Mean(p95_pi), Mean(p99_pi));
  std::printf("\ncumulative execution-work reduction with PI injection: "
              "%.1f%% (paper reports ~11%% runtime reduction)\n",
              Mean(work_reduction));
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
