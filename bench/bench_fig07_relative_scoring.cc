// Figure 7: relative error as the conformal scoring function. Expected
// shape: tighter than residual scoring (Figure 1), wider than q-error
// scoring (Figure 6), coverage unchanged.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 7",
                        "relative-error scoring function (all models)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);

  std::vector<MethodResult> results;
  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());
  NaruEstimator naru(bench::NaruDefaults());
  CONFCARD_CHECK(naru.Train(table).ok());
  LwnnEstimator lwnn(bench::LwnnDefaults());
  CONFCARD_CHECK(lwnn.Train(table, s.train).ok());

  for (ScoreKind kind :
       {ScoreKind::kResidual, ScoreKind::kRelative, ScoreKind::kQError}) {
    SingleTableHarness::Options opts;
    opts.score = kind;
    SingleTableHarness harness(table, s.train, s.calib, s.test, opts);
    for (const CardinalityEstimator* model :
         std::initializer_list<const CardinalityEstimator*>{&mscn, &naru,
                                                            &lwnn}) {
      MethodResult r = harness.RunScp(*model);
      r.method = std::string("s-cp(") + ScoreKindToString(kind) + ")";
      results.push_back(r);
    }
  }
  PrintMethodTable(results);
  const double n = static_cast<double>(table.num_rows());
  std::printf("\nmedian width on low-selectivity queries (truth < 0.02N):\n");
  std::printf("  %-8s", "model");
  for (const char* sc : {"residual", "relative", "q-error"}) {
    std::printf(" %12s", sc);
  }
  std::printf("\n");
  for (size_t m = 0; m < 3; ++m) {
    std::printf("  %-8s", results[m].model.c_str());
    for (size_t k = 0; k < 3; ++k) {
      const MethodResult& r = results[k * 3 + m];
      std::vector<double> widths;
      for (const PiRow& row : r.rows) {
        if (row.truth / n < 0.02) widths.push_back(row.width() / n);
      }
      std::sort(widths.begin(), widths.end());
      std::printf(" %12.6f",
                  widths.empty() ? 0.0 : widths[widths.size() / 2]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected ordering of median widths per model: residual > "
      "relative > q-error.\nnote: relative scoring degrades to a "
      "near-trivial upper bound whenever >= alpha of the calibration "
      "queries are overestimated by >= 2x (delta >= 1 makes the upper "
      "inversion unbounded); the lower bounds stay informative.\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
