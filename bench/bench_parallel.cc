// Parallel-speedup bench: serial vs pooled wall clock for the two hot
// loops the thread pool accelerates — JK-CV+ fold training/evaluation
// and the blocked GEMM kernels — swept over 1/2/4 threads. Emits
// BENCH_parallel.json with per-thread-count wall times and speedups
// relative to 1 thread, plus a correctness cross-check that every sweep
// produced bit-identical results. On a single-core host the speedups
// honestly report ~1.0x (oversubscription), which is the expected
// reading there.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "nn/layers.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "obs/profiler.h"

namespace confcard {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

struct Sweep {
  std::vector<double> millis;    // one entry per kThreadCounts
  bool identical = true;         // results bit-identical across counts
};

Sweep SweepJkCv(const Table& table, const bench::Splits& splits) {
  Sweep sweep;
  std::vector<std::vector<double>> lows;
  for (int threads : kThreadCounts) {
    SetThreads(threads);
    // Fresh harness per count: the estimate cache must not let a later
    // sweep reuse inference paid for by an earlier one.
    SingleTableHarness::Options opts;
    opts.jk_folds = 4;
    SingleTableHarness h(table, splits.train, splits.calib, splits.test,
                         opts);
    LwnnEstimator proto(bench::LwnnDefaults());
    CONFCARD_CHECK(proto.Train(table, splits.train).ok());
    Stopwatch watch;
    MethodResult r = h.RunJkCv(proto, proto, /*simplified=*/false);
    sweep.millis.push_back(watch.ElapsedMillis());
    std::vector<double> lo;
    lo.reserve(r.rows.size());
    for (const PiRow& row : r.rows) lo.push_back(row.lo);
    lows.push_back(std::move(lo));
    std::printf("jk-cv+  threads=%d  %8.1f ms  coverage=%.3f\n", threads,
                sweep.millis.back(), r.coverage);
  }
  for (size_t i = 1; i < lows.size(); ++i) {
    if (lows[i] != lows[0]) sweep.identical = false;
  }
  return sweep;
}

Sweep SweepGemm() {
  Sweep sweep;
  Rng rng(19);
  const size_t n = 192, k = 256, m = 192;
  nn::Tensor a = nn::Tensor::Randn(n, k, 1.0f, rng);
  nn::Tensor b = nn::Tensor::Randn(k, m, 1.0f, rng);
  const int reps = 40;
  std::vector<nn::Tensor> products;
  for (int threads : kThreadCounts) {
    SetThreads(threads);
    nn::Tensor c = nn::MatMul(a, b);  // warm the pool before timing
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) c = nn::MatMul(a, b);
    sweep.millis.push_back(watch.ElapsedMillis());
    products.push_back(std::move(c));
    std::printf("gemm    threads=%d  %8.1f ms (%d reps of %zux%zux%zu)\n",
                threads, sweep.millis.back(), reps, n, k, m);
  }
  for (size_t i = 1; i < products.size(); ++i) {
    if (products[i].data() != products[0].data()) sweep.identical = false;
  }
  return sweep;
}

// ------------------------------------------------------------------
// Kernel microbench: scalar vs SIMD GFLOP/s for each GEMM variant and
// the fused Dense bias+ReLU path at the three deployed model shapes
// (MSCN set/final MLPs, Naru's MADE hidden layer, LW-NN's funnel).
// Single-threaded on purpose — this isolates raw kernel throughput
// from pool scaling, which the sweeps above already measure.
// ------------------------------------------------------------------

struct KernelResult {
  std::string name;
  double scalar_gflops = 0.0;
  double simd_gflops = 0.0;
  bool identical = true;
};

// Times `fn` (which must write its output into `out`) at both SIMD
// settings and cross-checks bit identity of the two outputs.
template <typename Fn>
KernelResult TimeKernel(const std::string& name, size_t flops_per_call,
                        const Fn& fn) {
  KernelResult result;
  result.name = name;
  // Enough reps that the faster path still accumulates ~40ms+.
  const int reps =
      static_cast<int>(std::max<size_t>(20, (size_t{1} << 27) / flops_per_call));
  nn::Tensor scalar_out, simd_out;
  double millis[2] = {0.0, 0.0};
  for (int pass = 0; pass < 2; ++pass) {
    const bool simd = pass == 1;
    nn::SetSimdEnabled(simd);
    nn::Tensor out = fn();  // warmup (and the identity sample)
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) out = fn();
    millis[pass] = watch.ElapsedMillis();
    (simd ? simd_out : scalar_out) = std::move(out);
  }
  nn::SetSimdEnabled(true);
  result.scalar_gflops = static_cast<double>(flops_per_call) * reps /
                         (millis[0] * 1e6);
  result.simd_gflops = static_cast<double>(flops_per_call) * reps /
                       (millis[1] * 1e6);
  result.identical =
      scalar_out.size() == simd_out.size() &&
      std::memcmp(scalar_out.data().data(), simd_out.data().data(),
                  scalar_out.size() * sizeof(float)) == 0;
  std::printf("kernel  %-22s scalar %6.2f GFLOP/s  simd %6.2f  (%.2fx)%s\n",
              result.name.c_str(), result.scalar_gflops, result.simd_gflops,
              result.simd_gflops / result.scalar_gflops,
              result.identical ? "" : "  NOT IDENTICAL");
  return result;
}

std::vector<KernelResult> SweepKernels() {
  SetThreads(1);
  std::vector<KernelResult> results;
  struct Shape {
    const char* tag;
    size_t n, k, m;
  };
  // batch x in -> out at each model's deployed width (bench_common.h).
  const Shape shapes[] = {
      {"mscn_96", 256, 96, 96},    // MSCN set/final MLPs
      {"naru_64", 256, 64, 64},    // Naru MADE hidden layer
      {"lwnn_32x16", 256, 32, 16},  // LW-NN funnel
  };
  Rng rng(7);
  for (const Shape& s : shapes) {
    const size_t flops = 2 * s.n * s.k * s.m;
    {
      nn::Tensor a = nn::Tensor::Randn(s.n, s.k, 1.0f, rng);
      nn::Tensor b = nn::Tensor::Randn(s.k, s.m, 1.0f, rng);
      results.push_back(TimeKernel(std::string("matmul/") + s.tag, flops,
                                   [&] { return nn::MatMul(a, b); }));
    }
    {
      nn::Tensor a = nn::Tensor::Randn(s.k, s.n, 1.0f, rng);
      nn::Tensor b = nn::Tensor::Randn(s.k, s.m, 1.0f, rng);
      results.push_back(TimeKernel(std::string("matmul_ta/") + s.tag, flops,
                                   [&] { return nn::MatMulTransA(a, b); }));
    }
    {
      nn::Tensor a = nn::Tensor::Randn(s.n, s.k, 1.0f, rng);
      nn::Tensor b = nn::Tensor::Randn(s.m, s.k, 1.0f, rng);
      results.push_back(TimeKernel(std::string("matmul_tb/") + s.tag, flops,
                                   [&] { return nn::MatMulTransB(a, b); }));
    }
    {
      nn::Dense dense(s.k, s.m, rng);
      nn::Tensor in = nn::Tensor::Randn(s.n, s.k, 1.0f, rng);
      results.push_back(
          TimeKernel(std::string("dense_fused/") + s.tag, flops, [&] {
            return dense.ApplyActivated(in, /*relu=*/true);
          }));
    }
  }
  return results;
}

// ------------------------------------------------------------------
// Dispatch-allocation gate: after warmup, issuing a ParallelFor must
// perform ZERO heap allocations on the issuing thread — the loop
// descriptor is stack-allocated and helper slots go through the pool's
// preallocated ring. Measured with the operator-new counters the
// profiler maintains per thread (obs/profiler.h).
// ------------------------------------------------------------------

struct DispatchAllocs {
  double allocs_per_call = 0.0;
  bool passed = false;
};

DispatchAllocs MeasureDispatchAllocs() {
  SetThreads(4);
  std::atomic<uint64_t> sink{0};
  auto body = [&sink](size_t begin, size_t end) {
    sink.fetch_add(end - begin, std::memory_order_relaxed);
  };
  // Warmup: pool creation, metric registration, lazy statics.
  for (int i = 0; i < 8; ++i) ParallelFor(1024, 16, body);
  const int calls = 200;
  const uint64_t before = obs::prof::ThreadAllocCount();
  for (int i = 0; i < calls; ++i) ParallelFor(1024, 16, body);
  const uint64_t after = obs::prof::ThreadAllocCount();
  DispatchAllocs result;
  result.allocs_per_call =
      static_cast<double>(after - before) / static_cast<double>(calls);
  result.passed = after == before;
  std::printf("dispatch allocs/call after warmup: %.3f (%s)\n",
              result.allocs_per_call, result.passed ? "pass" : "FAIL");
  return result;
}

void WriteSweep(obs::JsonWriter* w, const char* name, const Sweep& sweep) {
  w->Key(name).BeginObject();
  w->Key("threads").BeginArray();
  for (int t : kThreadCounts) w->Int(static_cast<uint64_t>(t));
  w->EndArray();
  w->Key("millis").BeginArray();
  for (double ms : sweep.millis) w->Number(ms);
  w->EndArray();
  w->Key("speedup").BeginArray();
  for (double ms : sweep.millis) w->Number(sweep.millis[0] / ms);
  w->EndArray();
  w->Key("bit_identical").Bool(sweep.identical);
  w->EndObject();
}

int Main() {
  bench::PrintScaleNote();
  const int saved_threads = CurrentThreads();
  // Detect once and reuse: the gate decision, the console note, and the
  // JSON record must all describe the same machine.
  const int hardware_threads = HardwareThreads();
  std::printf("hardware threads: %d\n", hardware_threads);

  Table table = MakeDmv(bench::DefaultRows(), 3).value();
  bench::Splits splits = bench::MakeSplits(table);

  Sweep jk = SweepJkCv(table, splits);
  Sweep gemm = SweepGemm();
  std::vector<KernelResult> kernels = SweepKernels();
  DispatchAllocs dispatch = MeasureDispatchAllocs();
  SetThreads(saved_threads);

  // Scaling gate: on a host with real cores, 4 threads must at least
  // break even against 1 (the ROADMAP-tracked regression showed 0.88x).
  // On 1–2 core hosts the sweep oversubscribes and the speedup is
  // meaningless, so the gate is skipped — with a note, never silently.
  const bool gate_applicable = hardware_threads >= 4;
  const double jk_speedup4 = jk.millis[0] / jk.millis.back();
  const double gemm_speedup4 = gemm.millis[0] / gemm.millis.back();
  const bool gate_passed =
      !gate_applicable || (jk_speedup4 >= 1.0 && gemm_speedup4 >= 1.0);
  // Recorded verbatim in the JSON so single-core CI artifacts say *why*
  // the gate did not run instead of silently reporting passed=true.
  std::string skip_reason;
  if (!gate_applicable) {
    skip_reason = "only " + std::to_string(hardware_threads) +
                  " hardware thread(s) < 4: oversubscribed sweep, "
                  "speedups not meaningful";
    std::printf("scaling gate skipped: %s\n", skip_reason.c_str());
  } else {
    std::printf("scaling gate: jk-cv+ 4t speedup %.2fx, gemm 4t %.2fx\n",
                jk_speedup4, gemm_speedup4);
  }

  bool kernels_identical = true;
  for (const KernelResult& k : kernels) {
    kernels_identical = kernels_identical && k.identical;
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("parallel");
  w.Key("hardware_threads").Int(static_cast<uint64_t>(hardware_threads));
  w.Key("scale").Number(bench::BenchScale());
  w.Key("simd_isa").String(nn::SimdIsaName());
  WriteSweep(&w, "jk_cv", jk);
  WriteSweep(&w, "gemm", gemm);
  w.Key("kernels").BeginArray();
  for (const KernelResult& k : kernels) {
    w.BeginObject();
    w.Key("name").String(k.name);
    w.Key("scalar_gflops").Number(k.scalar_gflops);
    w.Key("simd_gflops").Number(k.simd_gflops);
    w.Key("speedup").Number(k.simd_gflops / k.scalar_gflops);
    w.Key("bit_identical").Bool(k.identical);
    w.EndObject();
  }
  w.EndArray();
  w.Key("dispatch_allocs").BeginObject();
  w.Key("allocs_per_call").Number(dispatch.allocs_per_call);
  w.Key("passed").Bool(dispatch.passed);
  w.EndObject();
  w.Key("scaling_gate").BeginObject();
  w.Key("applicable").Bool(gate_applicable);
  w.Key("passed").Bool(gate_passed);
  w.Key("skip_reason").String(skip_reason);  // empty when the gate ran
  w.EndObject();
  w.EndObject();

  const char* path = "BENCH_parallel.json";
  std::ofstream out(path, std::ios::binary);
  CONFCARD_CHECK_MSG(out.is_open(), "cannot write BENCH_parallel.json");
  out << w.str() << "\n";
  std::printf("wrote %s\n", path);
  CONFCARD_CHECK_MSG(jk.identical && gemm.identical,
                     "thread sweep produced non-identical results");
  CONFCARD_CHECK_MSG(kernels_identical,
                     "scalar vs SIMD kernel outputs differ");
  CONFCARD_CHECK_MSG(dispatch.passed,
                     "ParallelFor dispatch allocated after warmup");
  CONFCARD_CHECK_MSG(gate_passed,
                     "4-thread speedup < 1.0 on a >=4-core host");
  return 0;
}

}  // namespace
}  // namespace confcard

int main() { return confcard::Main(); }
