// Parallel-speedup bench: serial vs pooled wall clock for the two hot
// loops the thread pool accelerates — JK-CV+ fold training/evaluation
// and the blocked GEMM kernels — swept over 1/2/4 threads. Emits
// BENCH_parallel.json with per-thread-count wall times and speedups
// relative to 1 thread, plus a correctness cross-check that every sweep
// produced bit-identical results. On a single-core host the speedups
// honestly report ~1.0x (oversubscription), which is the expected
// reading there.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "nn/tensor.h"

namespace confcard {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

struct Sweep {
  std::vector<double> millis;    // one entry per kThreadCounts
  bool identical = true;         // results bit-identical across counts
};

Sweep SweepJkCv(const Table& table, const bench::Splits& splits) {
  Sweep sweep;
  std::vector<std::vector<double>> lows;
  for (int threads : kThreadCounts) {
    SetThreads(threads);
    // Fresh harness per count: the estimate cache must not let a later
    // sweep reuse inference paid for by an earlier one.
    SingleTableHarness::Options opts;
    opts.jk_folds = 4;
    SingleTableHarness h(table, splits.train, splits.calib, splits.test,
                         opts);
    LwnnEstimator proto(bench::LwnnDefaults());
    CONFCARD_CHECK(proto.Train(table, splits.train).ok());
    Stopwatch watch;
    MethodResult r = h.RunJkCv(proto, proto, /*simplified=*/false);
    sweep.millis.push_back(watch.ElapsedMillis());
    std::vector<double> lo;
    lo.reserve(r.rows.size());
    for (const PiRow& row : r.rows) lo.push_back(row.lo);
    lows.push_back(std::move(lo));
    std::printf("jk-cv+  threads=%d  %8.1f ms  coverage=%.3f\n", threads,
                sweep.millis.back(), r.coverage);
  }
  for (size_t i = 1; i < lows.size(); ++i) {
    if (lows[i] != lows[0]) sweep.identical = false;
  }
  return sweep;
}

Sweep SweepGemm() {
  Sweep sweep;
  Rng rng(19);
  const size_t n = 192, k = 256, m = 192;
  nn::Tensor a = nn::Tensor::Randn(n, k, 1.0f, rng);
  nn::Tensor b = nn::Tensor::Randn(k, m, 1.0f, rng);
  const int reps = 40;
  std::vector<nn::Tensor> products;
  for (int threads : kThreadCounts) {
    SetThreads(threads);
    nn::Tensor c = nn::MatMul(a, b);  // warm the pool before timing
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) c = nn::MatMul(a, b);
    sweep.millis.push_back(watch.ElapsedMillis());
    products.push_back(std::move(c));
    std::printf("gemm    threads=%d  %8.1f ms (%d reps of %zux%zux%zu)\n",
                threads, sweep.millis.back(), reps, n, k, m);
  }
  for (size_t i = 1; i < products.size(); ++i) {
    if (products[i].data() != products[0].data()) sweep.identical = false;
  }
  return sweep;
}

void WriteSweep(obs::JsonWriter* w, const char* name, const Sweep& sweep) {
  w->Key(name).BeginObject();
  w->Key("threads").BeginArray();
  for (int t : kThreadCounts) w->Int(static_cast<uint64_t>(t));
  w->EndArray();
  w->Key("millis").BeginArray();
  for (double ms : sweep.millis) w->Number(ms);
  w->EndArray();
  w->Key("speedup").BeginArray();
  for (double ms : sweep.millis) w->Number(sweep.millis[0] / ms);
  w->EndArray();
  w->Key("bit_identical").Bool(sweep.identical);
  w->EndObject();
}

int Main() {
  bench::PrintScaleNote();
  const int saved_threads = CurrentThreads();
  std::printf("hardware threads: %d\n", HardwareThreads());

  Table table = MakeDmv(bench::DefaultRows(), 3).value();
  bench::Splits splits = bench::MakeSplits(table);

  Sweep jk = SweepJkCv(table, splits);
  Sweep gemm = SweepGemm();
  SetThreads(saved_threads);

  // Scaling gate: on a host with real cores, 4 threads must at least
  // break even against 1 (the ROADMAP-tracked regression showed 0.88x).
  // On 1–2 core hosts the sweep oversubscribes and the speedup is
  // meaningless, so the gate is skipped — with a note, never silently.
  const bool gate_applicable = HardwareThreads() >= 4;
  const double jk_speedup4 = jk.millis[0] / jk.millis.back();
  const double gemm_speedup4 = gemm.millis[0] / gemm.millis.back();
  const bool gate_passed =
      !gate_applicable || (jk_speedup4 >= 1.0 && gemm_speedup4 >= 1.0);
  if (!gate_applicable) {
    std::printf(
        "scaling gate skipped: %d hardware thread(s) < 4 "
        "(oversubscribed sweep, speedups not meaningful)\n",
        HardwareThreads());
  } else {
    std::printf("scaling gate: jk-cv+ 4t speedup %.2fx, gemm 4t %.2fx\n",
                jk_speedup4, gemm_speedup4);
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("parallel");
  w.Key("hardware_threads").Int(static_cast<uint64_t>(HardwareThreads()));
  w.Key("scale").Number(bench::BenchScale());
  WriteSweep(&w, "jk_cv", jk);
  WriteSweep(&w, "gemm", gemm);
  w.Key("scaling_gate").BeginObject();
  w.Key("applicable").Bool(gate_applicable);
  w.Key("passed").Bool(gate_passed);
  w.EndObject();
  w.EndObject();

  const char* path = "BENCH_parallel.json";
  std::ofstream out(path, std::ios::binary);
  CONFCARD_CHECK_MSG(out.is_open(), "cannot write BENCH_parallel.json");
  out << w.str() << "\n";
  std::printf("wrote %s\n", path);
  CONFCARD_CHECK_MSG(jk.identical && gemm.identical,
                     "thread sweep produced non-identical results");
  CONFCARD_CHECK_MSG(gate_passed,
                     "4-thread speedup < 1.0 on a >=4-core host");
  return 0;
}

}  // namespace
}  // namespace confcard

int main() { return confcard::Main(); }
