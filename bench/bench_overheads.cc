// Section IV overheads: microbenchmarks of the PI machinery itself —
// conformal quantile computation, per-query inference for each method's
// interval arithmetic, the GBDT difficulty lookup of LW-S-CP, online
// updates, and the exchangeability martingale. The paper's claims: S-CP
// and JK-CV+ inference is one add/subtract; LW-S-CP pays one lightweight
// model evaluation (< 0.1 ms); CQR pays two extra model forwards
// (benchmarked through the MSCN forward pass).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ce/mscn.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nn/tensor.h"
#include "conformal/exchangeability.h"
#include "conformal/locally_weighted.h"
#include "conformal/online.h"
#include "conformal/split.h"
#include "data/datasets.h"
#include "query/workload.h"

namespace confcard {
namespace {

std::vector<double> RandomScores(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble() * 1000.0;
  return v;
}

void BM_ConformalQuantile(benchmark::State& state) {
  auto scores = RandomScores(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConformalQuantile(scores, 0.1));
  }
}
BENCHMARK(BM_ConformalQuantile)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ScpCalibrate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto est = RandomScores(n, 2);
  auto truth = RandomScores(n, 3);
  for (auto _ : state) {
    SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
    benchmark::DoNotOptimize(scp.Calibrate(est, truth).ok());
  }
}
BENCHMARK(BM_ScpCalibrate)->Arg(1000)->Arg(10000);

void BM_ScpPredict(benchmark::State& state) {
  auto est = RandomScores(1000, 4);
  auto truth = RandomScores(1000, 5);
  SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
  (void)scp.Calibrate(est, truth);
  double x = 500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scp.Predict(x));
    x += 1.0;
  }
}
BENCHMARK(BM_ScpPredict);

void BM_LwScpPredict(benchmark::State& state) {
  // Difficulty = GBDT over 20-dim features (the paper's xgboost role).
  Rng rng(6);
  const size_t n = 2000, dim = 20;
  std::vector<std::vector<float>> feats(n, std::vector<float>(dim));
  std::vector<double> est(n), truth(n);
  for (size_t i = 0; i < n; ++i) {
    for (auto& f : feats[i]) f = static_cast<float>(rng.NextDouble());
    est[i] = rng.NextDouble() * 1000;
    truth[i] = est[i] + 50 * rng.NextGaussian();
  }
  LocallyWeightedConformal::Options opts;
  LocallyWeightedConformal lw(opts);
  (void)lw.FitDifficulty(feats, est, truth);
  (void)lw.Calibrate(feats, est, truth);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lw.Predict(est[i % n], feats[i % n]));
    ++i;
  }
}
BENCHMARK(BM_LwScpPredict);

void BM_OnlineObserve(benchmark::State& state) {
  OnlineConformal::Options opts;
  opts.window = 10000;
  OnlineConformal oc(MakeScoring(ScoreKind::kResidual), opts);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    oc.Observe(0.0, rng.NextGaussian());
  }
  for (auto _ : state) {
    oc.Observe(0.0, rng.NextGaussian());
    benchmark::DoNotOptimize(oc.delta());
  }
}
BENCHMARK(BM_OnlineObserve);

// The event-log gate on the un-instrumented path: Append when
// CONFCARD_EVENTS_JSONL is unset must be one relaxed load and a return
// (the <2% harness-overhead budget rides on this).
void BM_EventLogAppendDisabled(benchmark::State& state) {
  obs::EventLog& elog = obs::EventLog::Instance();
  if (elog.enabled()) {
    state.SkipWithError("CONFCARD_EVENTS_JSONL is set; gate not measurable");
    return;
  }
  obs::QueryEvent e;
  e.model = "bench";
  e.method = "s-cp";
  for (auto _ : state) {
    elog.Append(e);
    benchmark::DoNotOptimize(elog.enabled());
  }
}
BENCHMARK(BM_EventLogAppendDisabled);

// Full cost of an armed append: render + buffered write (amortized
// 64 KiB flushes to /dev/null).
void BM_EventLogAppendEnabled(benchmark::State& state) {
  obs::EventLog& elog = obs::EventLog::Instance();
  if (elog.enabled()) {
    state.SkipWithError("CONFCARD_EVENTS_JSONL is set; sink in use");
    return;
  }
  CONFCARD_CHECK(elog.OpenForTest("/dev/null").ok());
  obs::QueryEvent e;
  e.model = "bench";
  e.method = "s-cp";
  e.alpha = 0.1;
  e.estimate = 123.0;
  e.lo = 80.0;
  e.hi = 240.0;
  e.truth = 150.0;
  e.latency_us = 1.5;
  uint64_t q = 0;
  for (auto _ : state) {
    e.query_id = q++;
    elog.Append(e);
  }
  elog.CloseForTest();
}
BENCHMARK(BM_EventLogAppendEnabled);

void BM_RenderQueryEvent(benchmark::State& state) {
  obs::QueryEvent e;
  e.model = "mscn";
  e.method = "lw-s-cp";
  e.alpha = 0.1;
  e.estimate = 123.0;
  e.lo = 80.0;
  e.hi = 240.0;
  e.truth = 150.0;
  e.latency_us = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::RenderQueryEvent(e));
  }
}
BENCHMARK(BM_RenderQueryEvent);

void BM_ExchangeabilityObserve(benchmark::State& state) {
  ExchangeabilityTest test;
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    test.Observe(rng.NextDouble());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(test.Observe(rng.NextDouble()));
  }
}
BENCHMARK(BM_ExchangeabilityObserve);

// CQR's marginal inference cost = one extra model forward per quantile
// head; measured through the real MSCN forward pass.
void BM_MscnForward(benchmark::State& state) {
  static Table* table = new Table(MakeDmv(5000, 3).value());
  static MscnEstimator* mscn = [] {
    WorkloadConfig wc;
    wc.num_queries = 300;
    wc.seed = 1;
    Workload train = GenerateWorkload(*table, wc).value();
    MscnEstimator::Options o;
    o.model.epochs = 5;
    auto* m = new MscnEstimator(o);
    (void)m->Train(*table, train);
    return m;
  }();
  Query q;
  q.predicates = {Predicate::Eq(0, 1.0), Predicate::Between(10, 0, 1000)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mscn->EstimateCardinality(q));
  }
}
BENCHMARK(BM_MscnForward);

// Dispatch cost of an empty-ish ParallelFor: what a hot loop pays for
// going through the pool instead of a plain for. Arg = iteration count.
void BM_ParallelForDispatch(benchmark::State& state) {
  const int saved = CurrentThreads();
  SetThreads(4);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    ParallelFor(n, 0, [&out](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = static_cast<double>(i);
    });
    benchmark::DoNotOptimize(out.data());
  }
  SetThreads(saved);
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(1024)->Arg(65536);

// Blocked GEMM at serial and pooled thread counts. Arg0 = square size,
// Arg1 = thread count.
void BM_BlockedMatMul(benchmark::State& state) {
  const int saved = CurrentThreads();
  SetThreads(static_cast<int>(state.range(1)));
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(21);
  nn::Tensor a = nn::Tensor::Randn(n, n, 1.0f, rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, 1.0f, rng);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * n * n * n));
  SetThreads(saved);
}
BENCHMARK(BM_BlockedMatMul)
    ->Args({64, 1})
    ->Args({192, 1})
    ->Args({192, 2})
    ->Args({192, 4});

}  // namespace
}  // namespace confcard

BENCHMARK_MAIN();
