// Inference-engine speedup bench: the sparsity-aware Naru progressive
// sampler (one-hot weight gathers + active-path compaction + per-block
// output columns) against the dense reference path, and batched MSCN
// estimation against the per-query loop — both measured in the same run
// on the same trained weights, at 1 thread so the numbers isolate the
// algorithmic win from pool parallelism. Emits BENCH_inference.json and
// CONFCARD_CHECKs that every compared pair of results is bit-identical
// (the engine's contract); speedups are reported, not asserted, because
// they depend on the host.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "nn/simd.h"

namespace confcard {
namespace {

// Each side is warmed up once (untimed) and then timed over kReps
// repetitions, keeping the fastest per side. The two sides run
// interleaved, rep by rep: scheduler noise on shared hosts arrives in
// bursts longer than one rep, so interleaving exposes both sides to the
// same quiet windows instead of letting a burst land entirely on one.
constexpr int kReps = 7;

struct Comparison {
  double baseline_millis = 0.0;
  double optimized_millis = 0.0;
  bool identical = true;

  double speedup() const { return baseline_millis / optimized_millis; }
};

template <typename BaseFn, typename OptFn>
void TimeInterleaved(const BaseFn& base, const OptFn& opt, Comparison* cmp) {
  base();  // warmup, untimed
  opt();
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch base_watch;
    base();
    const double base_ms = base_watch.ElapsedMillis();
    Stopwatch opt_watch;
    opt();
    const double opt_ms = opt_watch.ElapsedMillis();
    if (rep == 0 || base_ms < cmp->baseline_millis) {
      cmp->baseline_millis = base_ms;
    }
    if (rep == 0 || opt_ms < cmp->optimized_millis) {
      cmp->optimized_millis = opt_ms;
    }
  }
}

// BM_NaruProgressiveSample: dense per-query sampling vs the sparse
// cross-query batched engine. Both paths reseed their sampler per call,
// so repetitions reproduce the same bits.
Comparison BenchNaruProgressiveSample(const NaruEstimator& naru,
                                      const std::vector<Query>& queries) {
  Comparison cmp;
  NaruEstimator& mut = const_cast<NaruEstimator&>(naru);

  std::vector<double> dense(queries.size());
  std::vector<double> sparse(queries.size());
  TimeInterleaved(
      [&] {
        mut.set_sparse_inference(false);
        for (size_t i = 0; i < queries.size(); ++i) {
          dense[i] = naru.EstimateCardinality(queries[i]);
        }
      },
      [&] {
        mut.set_sparse_inference(true);
        naru.EstimateBatch(queries.data(), queries.size(), sparse.data());
      },
      &cmp);
  std::printf("naru    dense per-query   %8.1f ms (%zu queries)\n",
              cmp.baseline_millis, queries.size());
  std::printf("naru    sparse batched    %8.1f ms  (%.2fx)\n",
              cmp.optimized_millis, cmp.speedup());

  for (size_t i = 0; i < queries.size(); ++i) {
    if (sparse[i] != dense[i]) cmp.identical = false;
  }
  return cmp;
}

// BM_MscnEstimateBatch: per-query GEMV loop vs one packed batch forward.
Comparison BenchMscnEstimateBatch(const MscnEstimator& mscn,
                                  const std::vector<Query>& queries) {
  Comparison cmp;

  std::vector<double> loop(queries.size());
  std::vector<double> batched(queries.size());
  TimeInterleaved(
      [&] {
        for (size_t i = 0; i < queries.size(); ++i) {
          loop[i] = mscn.EstimateCardinality(queries[i]);
        }
      },
      [&] {
        mscn.EstimateBatch(queries.data(), queries.size(), batched.data());
      },
      &cmp);
  std::printf("mscn    per-query loop    %8.1f ms (%zu queries)\n",
              cmp.baseline_millis, queries.size());
  std::printf("mscn    batched           %8.1f ms  (%.2fx)\n",
              cmp.optimized_millis, cmp.speedup());

  for (size_t i = 0; i < queries.size(); ++i) {
    if (batched[i] != loop[i]) cmp.identical = false;
  }
  return cmp;
}

// Scalar vs SIMD kernels on an already-optimized engine path: the same
// batched estimator run with the vector kernels disabled and enabled.
// Both settings are bit-identical by the simd.h contract, so the
// comparison doubles as an end-to-end identity check through a full
// model forward.
template <typename Fn>
Comparison BenchSimdToggle(const char* label, const std::vector<Query>& queries,
                           const Fn& run) {
  Comparison cmp;
  std::vector<double> scalar(queries.size());
  std::vector<double> simd(queries.size());
  TimeInterleaved(
      [&] {
        nn::SetSimdEnabled(false);
        run(scalar.data());
      },
      [&] {
        nn::SetSimdEnabled(true);
        run(simd.data());
      },
      &cmp);
  nn::SetSimdEnabled(true);
  std::printf("%-7s scalar kernels    %8.1f ms (%zu queries)\n", label,
              cmp.baseline_millis, queries.size());
  std::printf("%-7s %s kernels      %8.1f ms  (%.2fx)\n", label,
              nn::SimdIsaName(), cmp.optimized_millis, cmp.speedup());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (simd[i] != scalar[i]) cmp.identical = false;
  }
  return cmp;
}

// Training-step SIMD toggle. The batched inference paths above are
// dominated by broadcast-row GEMMs whose scalar loops the compiler
// already auto-vectorizes (independent output lanes), so the runtime
// toggle shows ~1x there. Fold training is different: its profiled
// hotspot (48.6% self, docs/PERFORMANCE.md) is the MatMulTransB
// dot-product reduction, which auto-vectorization CANNOT touch without
// reassociating the p-sum — only the transpose-tile vector kernel
// speeds it up while preserving bit identity. Trained weights are
// deterministic, so the post-training estimates double as an
// end-to-end identity check over thousands of vectorized GEMMs.
Comparison BenchMscnTrainSimd(const Table& table, const bench::Splits& splits,
                              const std::vector<Query>& queries) {
  Comparison cmp;
  MscnEstimator::Options opts = bench::MscnDefaults();
  opts.model.epochs = 6;  // the ratio is epoch-invariant; keep reps quick
  std::vector<double> scalar(queries.size());
  std::vector<double> simd(queries.size());
  auto train_and_estimate = [&](double* out) {
    MscnEstimator est(opts);
    CONFCARD_CHECK(est.Train(table, splits.train).ok());
    est.EstimateBatch(queries.data(), queries.size(), out);
  };
  TimeInterleaved(
      [&] {
        nn::SetSimdEnabled(false);
        train_and_estimate(scalar.data());
      },
      [&] {
        nn::SetSimdEnabled(true);
        train_and_estimate(simd.data());
      },
      &cmp);
  nn::SetSimdEnabled(true);
  std::printf("mscn-tr scalar kernels    %8.1f ms (%d epochs)\n",
              cmp.baseline_millis, opts.model.epochs);
  std::printf("mscn-tr %s kernels      %8.1f ms  (%.2fx)\n", nn::SimdIsaName(),
              cmp.optimized_millis, cmp.speedup());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (simd[i] != scalar[i]) cmp.identical = false;
  }
  return cmp;
}

void WriteComparison(obs::JsonWriter* w, const char* name,
                     const char* baseline, const char* optimized,
                     const Comparison& cmp) {
  w->Key(name).BeginObject();
  w->Key("baseline").String(baseline);
  w->Key("optimized").String(optimized);
  w->Key("baseline_millis").Number(cmp.baseline_millis);
  w->Key("optimized_millis").Number(cmp.optimized_millis);
  w->Key("speedup").Number(cmp.speedup());
  w->Key("bit_identical").Bool(cmp.identical);
  w->EndObject();
}

int Main() {
  bench::PrintScaleNote();
  const int saved_threads = CurrentThreads();
  SetThreads(1);  // isolate the algorithmic speedup from the pool

  // DMV: 11 columns, so the MADE input/output space is many one-hot
  // blocks wide — the workload shape whose dense forward wastes the
  // most work.
  Table table = MakeDmv(bench::DefaultRows(), 3).value();
  bench::Splits splits = bench::MakeSplits(table);
  std::vector<Query> queries;
  queries.reserve(splits.test.size());
  for (const LabeledQuery& lq : splits.test) queries.push_back(lq.query);

  NaruEstimator naru(bench::NaruDefaults());
  CONFCARD_CHECK(naru.Train(table).ok());
  Comparison naru_cmp = BenchNaruProgressiveSample(naru, queries);

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, splits.train).ok());
  Comparison mscn_cmp = BenchMscnEstimateBatch(mscn, queries);

  // SIMD off/on at 1 thread on the two kernel-bound engine paths.
  naru.set_sparse_inference(true);
  Comparison naru_simd = BenchSimdToggle("naru", queries, [&](double* out) {
    naru.EstimateBatch(queries.data(), queries.size(), out);
  });
  Comparison mscn_simd = BenchSimdToggle("mscn", queries, [&](double* out) {
    mscn.EstimateBatch(queries.data(), queries.size(), out);
  });
  Comparison train_simd = BenchMscnTrainSimd(table, splits, queries);

  SetThreads(saved_threads);

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("inference");
  w.Key("scale").Number(bench::BenchScale());
  w.Key("threads").Int(1);
  w.Key("queries").Int(static_cast<uint64_t>(queries.size()));
  w.Key("simd_isa").String(nn::SimdIsaName());
  WriteComparison(&w, "naru_progressive_sample", "dense per-query",
                  "sparse batched engine", naru_cmp);
  WriteComparison(&w, "mscn_estimate_batch", "per-query loop",
                  "batched forward", mscn_cmp);
  WriteComparison(&w, "naru_batched_simd", "scalar kernels", "simd kernels",
                  naru_simd);
  WriteComparison(&w, "mscn_batched_simd", "scalar kernels", "simd kernels",
                  mscn_simd);
  WriteComparison(&w, "mscn_train_simd", "scalar kernels", "simd kernels",
                  train_simd);
  w.EndObject();

  const char* path = "BENCH_inference.json";
  std::ofstream out(path, std::ios::binary);
  CONFCARD_CHECK_MSG(out.is_open(), "cannot write BENCH_inference.json");
  out << w.str() << "\n";
  std::printf("wrote %s\n", path);
  CONFCARD_CHECK_MSG(naru_cmp.identical && mscn_cmp.identical,
                     "optimized inference produced non-identical results");
  CONFCARD_CHECK_MSG(
      naru_simd.identical && mscn_simd.identical && train_simd.identical,
      "SIMD kernels produced non-identical estimates");
  // The vector kernels must buy a real single-thread win on at least
  // one kernel-bound path (trivially inapplicable in scalar-only
  // builds, where both sides run the same code).
  if (nn::SimdCompiledIn()) {
    CONFCARD_CHECK_MSG(naru_simd.speedup() >= 1.5 ||
                           mscn_simd.speedup() >= 1.5 ||
                           train_simd.speedup() >= 1.5,
                       "SIMD kernels under 1.5x on every kernel-bound path");
  }
  return 0;
}

}  // namespace
}  // namespace confcard

int main() { return confcard::Main(); }
