// Figure 3: join queries on the DSB/TPC-DS-like star schema with MSCN.
// The paper's setting: 15 SPJ templates, 1000 queries each (scaled),
// split 50:25:25 into train/calibration/test. Expected shape: same
// method trends and relative ranking as the single-table experiments.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/multitable.h"
#include "harness/join_harness.h"
#include "harness/report.h"
#include "query/join_workload.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 3",
                        "Join queries on DSB/TPC-DS star schema (MSCN)");

  Database db = MakeDsbLike(bench::Scaled(40000, 4000)).value();
  auto templates = DsbTemplates();

  // 50:25:25 split, per the paper's DSB setup.
  JoinWorkloadConfig jc;
  jc.queries_per_template = bench::Scaled(60, 8);
  jc.seed = 1;
  JoinWorkload train = GenerateJoinWorkload(db, templates, jc).value();
  jc.queries_per_template = bench::Scaled(30, 4);
  jc.seed = 2;
  JoinWorkload calib = GenerateJoinWorkload(db, templates, jc).value();
  jc.seed = 3;
  JoinWorkload test = GenerateJoinWorkload(db, templates, jc).value();
  std::printf("templates=%zu train=%zu calib=%zu test=%zu\n",
              templates.size(), train.size(), calib.size(), test.size());

  MscnConfig mc;
  mc.epochs = 40;
  MscnJoinEstimator mscn(mc);
  CONFCARD_CHECK(mscn.Train(db, train).ok());

  JoinHarness::Options opts;
  JoinHarness harness(db, train, calib, test, opts);
  std::vector<MethodResult> results;
  results.push_back(harness.RunScp(mscn));
  results.push_back(harness.RunLwScp(mscn));
  results.push_back(harness.RunCqr(mscn));
  results.push_back(harness.RunJkCv(mscn, mscn));
  PrintMethodTable(results);
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
