// Figure 11: calibration and test sets that are NOT exchangeable — the
// test workload is drawn from a different generator (uniform random
// literals, more predicates). Expected shape: coverage degrades below
// the nominal 0.9 for the fixed-width methods (the paper's "loss of
// coverage guarantees"), and the martingale exchangeability test fires.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "conformal/exchangeability.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 11",
                        "non-exchangeable calibration and test sets "
                        "(MSCN, shifted workload)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);

  // Shifted test workload: high-selectivity queries (truth >= 0.4 N)
  // with broad ranges — a regime the training/calibration workloads
  // (selectivity <= 0.2) never visit, so the model underestimates badly
  // and the calibrated delta is far too small. This is the paper's
  // deliberately extreme, cherry-picked shift.
  WorkloadConfig shifted;
  shifted.num_queries = bench::TestQueries();
  shifted.min_predicates = 1;
  shifted.max_predicates = 2;
  shifted.range_prob = 1.0;
  shifted.max_range_frac = 0.9;
  shifted.min_selectivity = 0.4;
  shifted.max_selectivity = 1.0;
  shifted.seed = 909;
  Workload shifted_test = GenerateWorkload(table, shifted).value();

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());

  SingleTableHarness matched(table, s.train, s.calib, s.test, {});
  SingleTableHarness mismatched(table, s.train, s.calib, shifted_test,
                                {});

  std::vector<MethodResult> results;
  MethodResult ok_scp = matched.RunScp(mscn);
  ok_scp.method = "s-cp(match)";
  results.push_back(ok_scp);
  MethodResult bad_scp = mismatched.RunScp(mscn);
  bad_scp.method = "s-cp(shift)";
  results.push_back(bad_scp);
  MethodResult ok_lw = matched.RunLwScp(mscn);
  ok_lw.method = "lw(match)";
  results.push_back(ok_lw);
  MethodResult bad_lw = mismatched.RunLwScp(mscn);
  bad_lw.method = "lw(shift)";
  results.push_back(bad_lw);
  MethodResult ok_cqr = matched.RunCqr(mscn);
  ok_cqr.method = "cqr(match)";
  results.push_back(ok_cqr);
  MethodResult bad_cqr = mismatched.RunCqr(mscn);
  bad_cqr.method = "cqr(shift)";
  results.push_back(bad_cqr);
  PrintMethodTable(results);

  // Drift detection: calibration scores followed by shifted-test scores.
  ExchangeabilityTest ex;
  for (const LabeledQuery& lq : s.calib) {
    ex.Observe(std::fabs(lq.cardinality -
                         mscn.EstimateCardinality(lq.query)));
  }
  double before = ex.LogMartingale();
  for (const LabeledQuery& lq : shifted_test) {
    ex.Observe(std::fabs(lq.cardinality -
                         mscn.EstimateCardinality(lq.query)));
  }
  std::printf("\nmartingale log10 M: %.2f (calib only) -> %.2f (after "
              "shifted stream); %s\n",
              before / 2.302585, ex.LogMartingale() / 2.302585,
              ex.Reject(0.01) ? "SHIFT DETECTED" : "no shift detected");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
