// Figure 13: impact of classifier accuracy (MSCN, S-CP). The model is
// trained for 0.5E, 0.75E and E epochs with everything else fixed.
// Expected shape: S-CP keeps valid coverage regardless of accuracy, but
// the fully-trained variant gets the tightest PI.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 13",
                        "impact of classifier accuracy (MSCN, S-CP, "
                        "epoch sweep)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);
  SingleTableHarness harness(table, s.train, s.calib, s.test, {});

  const int full_epochs = bench::MscnDefaults().model.epochs;
  std::vector<MethodResult> results;
  for (double frac : {0.5, 0.75, 1.0}) {
    MscnEstimator::Options opts = bench::MscnDefaults();
    opts.model.epochs =
        std::max(1, static_cast<int>(frac * full_epochs));
    MscnEstimator mscn(opts);
    CONFCARD_CHECK(mscn.Train(table, s.train).ok());
    MethodResult r = harness.RunScp(mscn);
    char label[32];
    std::snprintf(label, sizeof(label), "s-cp(%.2fE)", frac);
    r.method = label;
    results.push_back(r);
  }
  PrintMethodTable(results);
  std::printf("\nexpected shape: coverage ~0.9 in every row; median "
              "q-error and width shrink with training budget\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
