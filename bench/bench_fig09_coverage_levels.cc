// Figure 9: varying the coverage level 1-alpha in {0.9, 0.95, 0.99} for
// CQR on MSCN (plus S-CP for context on all three models). Expected
// shape: width grows with the coverage level, and the growth from 0.95
// to 0.99 is much larger for the noisier models (MSCN, LW-NN) than for
// Naru, mirroring their tail q-error profiles.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 9",
                        "coverage levels 0.9 / 0.95 / 0.99 (CQR + S-CP)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());
  NaruEstimator naru(bench::NaruDefaults());
  CONFCARD_CHECK(naru.Train(table).ok());
  LwnnEstimator lwnn(bench::LwnnDefaults());
  CONFCARD_CHECK(lwnn.Train(table, s.train).ok());

  std::vector<MethodResult> results;
  for (double alpha : {0.1, 0.05, 0.01}) {
    SingleTableHarness::Options opts;
    opts.alpha = alpha;
    SingleTableHarness harness(table, s.train, s.calib, s.test, opts);
    // CQR trains a fresh quantile pair per alpha (tau = alpha/2 and
    // 1 - alpha/2) — the "one model per alpha" cost the paper notes.
    results.push_back(harness.RunCqr(mscn));
    results.push_back(harness.RunScp(mscn));
    results.push_back(harness.RunScp(naru));
    results.push_back(harness.RunScp(lwnn));
  }
  PrintMethodTable(results);
  std::printf(
      "\nexpected shape: widths grow with coverage; the 0.95 -> 0.99 jump "
      "is large for mscn/lw-nn, small for naru\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
