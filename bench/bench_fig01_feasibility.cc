// Figure 1: feasibility of prediction intervals on the DMV dataset with
// residual-error scoring. Three learned models (MSCN, Naru, LW-NN) x
// four PI methods (S-CP, JK-CV+, LW-S-CP, CQR; CQR only for the
// supervised models, as in the paper). Expected shape: every method
// covers >= 90% empirically; widths rank S-CP >= JK-CV+ > LW-S-CP >
// CQR (median); Naru gets the tightest PIs, LW-NN the widest.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader(
      "Figure 1", "PI feasibility on DMV (residual scoring, alpha=0.1)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);
  std::printf("rows=%zu train=%zu calib=%zu test=%zu\n", table.num_rows(),
              s.train.size(), s.calib.size(), s.test.size());

  SingleTableHarness harness(table, s.train, s.calib, s.test, {});
  std::vector<MethodResult> results;

  // MSCN: all four methods.
  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());
  results.push_back(harness.RunScp(mscn));
  results.push_back(harness.RunJkCv(mscn, mscn, /*simplified=*/true));
  results.push_back(harness.RunLwScp(mscn));
  results.push_back(harness.RunCqr(mscn));

  // Naru: unsupervised; JK-CV+ reuses the single model per the paper.
  NaruEstimator naru(bench::NaruDefaults());
  CONFCARD_CHECK(naru.Train(table).ok());
  results.push_back(harness.RunScp(naru));
  results.push_back(harness.RunJkCvFixedModel(naru));
  results.push_back(harness.RunLwScp(naru));

  // LW-NN: all four methods.
  LwnnEstimator lwnn(bench::LwnnDefaults());
  CONFCARD_CHECK(lwnn.Train(table, s.train).ok());
  results.push_back(harness.RunScp(lwnn));
  results.push_back(harness.RunJkCv(lwnn, lwnn, /*simplified=*/true));
  results.push_back(harness.RunLwScp(lwnn));
  results.push_back(harness.RunCqr(lwnn));

  PrintMethodTable(results);

  // Section V-D's JK-CV+ vs S-CP width ratio per model.
  std::printf("\njk-cv+ / s-cp mean width ratios:\n");
  for (size_t i = 0; i + 1 < results.size(); ++i) {
    if (results[i].method == "s-cp" &&
        (results[i + 1].method == "jk-cv+(s)" ||
         results[i + 1].method == "jk-cv+")) {
      std::printf("  %-8s %.3f\n", results[i].model.c_str(),
                  results[i + 1].mean_width_sel /
                      results[i].mean_width_sel);
    }
  }

  std::printf("\n");
  for (const MethodResult& r : results) {
    if (r.method == "s-cp" || r.method == "cqr") {
      PrintSeries(r, static_cast<double>(table.num_rows()), 12);
    }
  }
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
