// Ablation C: calibration-set size vs the stability of delta. Coverage
// is guaranteed for any size (Section IV's discussion), but the variance
// of delta — and hence of the PI width — shrinks as the calibration set
// grows. We resample calibration subsets of varying size and report the
// dispersion of delta plus the realized coverage.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "conformal/split.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Ablation C",
                        "calibration-set size vs delta stability (MSCN, "
                        "S-CP, alpha=0.1)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  const double n = static_cast<double>(table.num_rows());

  WorkloadConfig wc;
  wc.max_selectivity = 0.2;
  wc.num_queries = bench::TrainQueries();
  wc.seed = 1;
  Workload train = GenerateWorkload(table, wc).value();
  wc.num_queries = bench::Scaled(4000, 600);  // calibration pool
  wc.seed = 2;
  Workload pool = GenerateWorkload(table, wc).value();
  wc.num_queries = bench::TestQueries();
  wc.seed = 3;
  Workload test = GenerateWorkload(table, wc).value();

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, train).ok());

  // Precompute estimates once.
  std::vector<double> pool_est, pool_truth, test_est, test_truth;
  for (const LabeledQuery& lq : pool) {
    pool_est.push_back(mscn.EstimateCardinality(lq.query));
    pool_truth.push_back(lq.cardinality);
  }
  for (const LabeledQuery& lq : test) {
    test_est.push_back(mscn.EstimateCardinality(lq.query));
    test_truth.push_back(lq.cardinality);
  }

  std::printf("%12s %14s %14s %14s %12s\n", "calib_size", "delta_mean",
              "delta_cv", "width(sel)", "coverage");
  Rng rng(13);
  for (size_t size : {30u, 100u, 300u, 1000u, 3000u}) {
    if (size > pool.size()) continue;
    std::vector<double> deltas;
    double covered = 0.0, total = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      // Random calibration subset.
      std::vector<size_t> idx(pool.size());
      for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      rng.Shuffle(idx);
      std::vector<double> est, truth;
      for (size_t i = 0; i < size; ++i) {
        est.push_back(pool_est[idx[i]]);
        truth.push_back(pool_truth[idx[i]]);
      }
      SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
      CONFCARD_CHECK(scp.Calibrate(est, truth).ok());
      deltas.push_back(scp.delta());
      for (size_t i = 0; i < test_est.size(); ++i) {
        Interval iv =
            ClipToCardinality(scp.Predict(test_est[i]), n);
        covered += iv.Contains(test_truth[i]) ? 1.0 : 0.0;
        total += 1.0;
      }
    }
    double mean = Mean(deltas);
    double cv = std::sqrt(Variance(deltas)) / std::max(mean, 1e-12);
    std::printf("%12zu %14.1f %14.3f %14.6f %12.4f\n", size, mean, cv,
                2.0 * mean / n, covered / total);
  }
  std::printf("\nexpected shape: delta_cv (relative dispersion) shrinks "
              "with calibration size; coverage ~0.9 at every size\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
