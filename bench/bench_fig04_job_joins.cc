// Figure 4: join queries in the spirit of JOB over the IMDB-like
// snowflake schema, with correlated predicate literals (JOB's queries
// are hand-written around real co-occurrences). MSCN wrapped by the four
// PI methods; expected shape matches Figure 3 / single-table trends.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/multitable.h"
#include "harness/join_harness.h"
#include "harness/report.h"
#include "query/join_workload.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 4",
                        "Join queries on the IMDB/JOB-like schema (MSCN)");

  Database db = MakeImdbLike(bench::Scaled(10000, 1500)).value();
  auto templates = JobTemplates();

  JoinWorkloadConfig jc;
  jc.correlated_literals = true;
  jc.queries_per_template = bench::Scaled(80, 10);
  jc.seed = 1;
  JoinWorkload train = GenerateJoinWorkload(db, templates, jc).value();
  jc.queries_per_template = bench::Scaled(40, 5);
  jc.seed = 2;
  JoinWorkload calib = GenerateJoinWorkload(db, templates, jc).value();
  jc.seed = 3;
  JoinWorkload test = GenerateJoinWorkload(db, templates, jc).value();
  std::printf("templates=%zu train=%zu calib=%zu test=%zu\n",
              templates.size(), train.size(), calib.size(), test.size());

  MscnConfig mc;
  mc.epochs = 40;
  MscnJoinEstimator mscn(mc);
  CONFCARD_CHECK(mscn.Train(db, train).ok());

  JoinHarness harness(db, train, calib, test, {});
  std::vector<MethodResult> results;
  results.push_back(harness.RunScp(mscn));
  results.push_back(harness.RunLwScp(mscn));
  results.push_back(harness.RunCqr(mscn));
  results.push_back(harness.RunJkCv(mscn, mscn));
  PrintMethodTable(results);
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
