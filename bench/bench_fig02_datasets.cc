// Figure 2: PI feasibility on the three other single-table datasets
// (Census, Forest, Power) with residual scoring and the MSCN model.
// Expected shape: same trends and method ranking as on DMV.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void RunDataset(const char* label,
                const std::function<Result<Table>(size_t)>& factory) {
  Table table = factory(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);
  std::printf("\n--- %s (rows=%zu) ---\n", label, table.num_rows());

  SingleTableHarness harness(table, s.train, s.calib, s.test, {});
  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());

  std::vector<MethodResult> results;
  results.push_back(harness.RunScp(mscn));
  results.push_back(harness.RunJkCv(mscn, mscn, /*simplified=*/true));
  results.push_back(harness.RunLwScp(mscn));
  results.push_back(harness.RunCqr(mscn));
  PrintMethodTable(results);
  PrintSeries(results[2], static_cast<double>(table.num_rows()), 10);
}

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 2",
                        "PIs on Census / Forest / Power (MSCN, residual "
                        "scoring)");
  RunDataset("census", [](size_t n) { return MakeCensus(n); });
  RunDataset("forest", [](size_t n) { return MakeForest(n); });
  RunDataset("power", [](size_t n) { return MakePower(n); });
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
