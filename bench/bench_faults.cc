// Fault sweep: the guarded serving path under injected model faults at
// 0% / 1% / 10% rates. The primary (LW-NN) is trained healthy, then
// nan/fail/slow arms are configured on lwnn.forward and the guarded
// S-CP harness runs end to end at each rate. The run must complete,
// report how many queries degraded to the fallback chain, and keep the
// coverage of *healthy* queries within one point of the no-fault run —
// degraded queries are aggregated separately with conservatively
// inflated intervals, so they cannot pollute the healthy guarantee.
// Emits BENCH_faults.json. Breaker disabled: at a 10% injection rate a
// long unlucky streak could trip it, and an open breaker makes the
// sweep's degraded counts depend on query order rather than on the
// per-query injection dice.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/fault.h"

namespace confcard {
namespace {

constexpr double kRates[] = {0.0, 0.01, 0.10};

struct SweepPoint {
  double rate = 0.0;
  uint64_t num_degraded = 0;
  double coverage_healthy = 0.0;
  double coverage_degraded = 0.0;
  double mean_width_sel = 0.0;
};

std::string SpecFor(double rate) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "lwnn.forward:nan@%.6f;lwnn.forward:fail@%.6f;"
                "lwnn.forward:slow@%.6f",
                rate, rate, rate);
  return buf;
}

int Main() {
  bench::PrintScaleNote();

  Table table = MakeDmv(bench::DefaultRows(), 3).value();
  bench::Splits splits = bench::MakeSplits(table);

  // Train once, healthy: faults target serving, not training.
  LwnnEstimator primary(bench::LwnnDefaults());
  CONFCARD_CHECK(primary.Train(table, splits.train).ok());

  fault::Registry& reg = fault::Registry::Instance();
  reg.set_slow_micros(100);  // keep injected sleeps bench-friendly

  GuardOptions gopts;
  // No retries: with a retry, a query only degrades when two independent
  // injection rolls both fire (~0.01% at the 1% rate), leaving the
  // degraded slice empty at bench sizes. Retry semantics are covered by
  // guarded_test; here every fired fault must reach the fallback chain.
  gopts.max_retries = 0;
  gopts.breaker_threshold = 0;  // see header comment
  GuardedEstimator guard(primary, table, gopts);

  std::vector<SweepPoint> points;
  for (double rate : kRates) {
    CONFCARD_CHECK(reg.ConfigureFromString(SpecFor(rate)).ok());
    SingleTableHarness h(table, splits.train, splits.calib, splits.test,
                         {});
    MethodResult r = h.RunScpGuarded(guard);
    for (const PiRow& row : r.rows) {
      CONFCARD_CHECK_MSG(std::isfinite(row.lo) && std::isfinite(row.hi),
                         "fault sweep produced a non-finite interval");
    }
    SweepPoint p;
    p.rate = rate;
    p.num_degraded = r.num_degraded;
    p.coverage_healthy = r.coverage;
    p.coverage_degraded = r.coverage_degraded;
    p.mean_width_sel = r.mean_width_sel;
    points.push_back(p);
    std::printf(
        "rate=%4.2f  degraded=%4llu/%zu  coverage(healthy)=%.3f  "
        "coverage(degraded)=%.3f  width_sel=%.4f\n",
        rate, static_cast<unsigned long long>(r.num_degraded), r.rows.size(),
        r.coverage, r.coverage_degraded, r.mean_width_sel);
  }
  reg.Clear();

  // The acceptance gate: faults must not move the healthy-slice
  // coverage by more than a point relative to the no-fault run. The
  // extra 1/healthy_n absorbs the one-query granularity of the smoke
  // scale (100 test queries -> 1pp per row).
  const size_t test_n = splits.test.size();
  const double tolerance = 0.01 + 1.0 / static_cast<double>(test_n);
  CONFCARD_CHECK_MSG(points[0].num_degraded == 0,
                     "no-fault run reported degraded queries");
  for (size_t i = 1; i < points.size(); ++i) {
    const double drift =
        std::fabs(points[i].coverage_healthy - points[0].coverage_healthy);
    CONFCARD_CHECK_MSG(drift <= tolerance,
                       "healthy coverage drifted past tolerance under faults");
    CONFCARD_CHECK_MSG(points[i].num_degraded > 0,
                       "faulted run degraded nothing; injection inert?");
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("faults");
  w.Key("scale").Number(bench::BenchScale());
  w.Key("model").String(guard.name());
  w.Key("test_queries").Int(static_cast<uint64_t>(test_n));
  w.Key("coverage_tolerance").Number(tolerance);
  w.Key("sweep").BeginArray();
  for (const SweepPoint& p : points) {
    w.BeginObject();
    w.Key("rate").Number(p.rate);
    w.Key("num_degraded").Int(p.num_degraded);
    w.Key("coverage_healthy").Number(p.coverage_healthy);
    w.Key("coverage_degraded").Number(p.coverage_degraded);
    w.Key("mean_width_sel").Number(p.mean_width_sel);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const char* path = "BENCH_faults.json";
  std::ofstream out(path, std::ios::binary);
  CONFCARD_CHECK_MSG(out.is_open(), "cannot write BENCH_faults.json");
  out << w.str() << "\n";
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace confcard

int main() { return confcard::Main(); }
