// Drift-robustness bench: replays deterministic CONFCARD_DRIFT scenarios
// through the serving front-end and measures whether the self-healing
// loop (online feedback -> sliding-window recalibration -> residual
// correction -> staged degradation) actually restores coverage after the
// data shifts under it (writes BENCH_drift.json).
//
// Gated contracts plus a severity sweep:
//   1. Replay bit-identity: the closed-loop feedback run over a fixed
//      drift stream produces byte-identical responses (estimate, lo, hi,
//      degraded, source) when repeated, at 1 shard and at 4 shards
//      (CONFCARD_CHECKed at any scale).
//   2. Zero-alloc serve+feedback hot path: after warmup, worker batch
//      cycles (including feedback application and recalibration) and the
//      producer-side Observe() path allocate nothing (CONFCARD_CHECKed).
//   3. Self-healing: at full scale, the severity-1 scenario's rolling
//      coverage recovers to within 1pp of nominal with feedback enabled,
//      and stays collapsed (>= 5pp below nominal at stream end) with the
//      loop disabled (CONFCARD_CHECKed when the stream is long enough;
//      skipped with an explicit skip_reason at smoke scale).
//   4. Open-loop: each severity also runs under Poisson load (report
//      only — wall-clock timing decides batch shapes, so dips/recovery
//      under load are recorded but never gated).
//
// The artifact leads with a `config` block (drift grammar, seeds,
// feedback configuration) so every run is attributable and replayable.
//
// Env knobs: CONFCARD_SERVE_SHARDS (sweep shard count),
// CONFCARD_SERVE_BATCH, CONFCARD_SERVE_TIMEOUT_US, CONFCARD_DRIFT
// (overrides the severity-1 scenario's spec).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ce/guarded.h"
#include "ce/lwnn.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"
#include "conformal/split.h"
#include "data/drift.h"
#include "obs/profiler.h"
#include "serve/serve.h"

namespace confcard {
namespace {

using SteadyClock = std::chrono::steady_clock;
using serve::Admit;
using serve::DriftStage;
using serve::Request;
using serve::ServeFrontEnd;

constexpr double kAlpha = 0.1;
constexpr double kNominal = 1.0 - kAlpha;
constexpr size_t kRollingWindow = 256;
constexpr double kRecoveredWithin = 0.01;  // "within 1pp of nominal"
constexpr double kCollapseMargin = 0.05;

// ------------------------------------------------------------------
// Scenario construction: one base table spec, drift arms scaled by a
// severity knob.
// ------------------------------------------------------------------

TableSpec BaseSpec() {
  TableSpec spec;
  spec.name = "drift_base";
  spec.num_rows = bench::DefaultRows();
  spec.seed = 7;
  ColumnSpec c0;
  c0.name = "make";
  c0.kind = ColumnKind::kCategorical;
  c0.domain_size = 60;
  c0.zipf_skew = 0.8;
  ColumnSpec c1;
  c1.name = "model";
  c1.kind = ColumnKind::kCategorical;
  c1.domain_size = 40;
  c1.zipf_skew = 0.4;
  c1.parent = 0;
  c1.correlation = 0.6;
  ColumnSpec c2;
  c2.name = "weight";
  c2.kind = ColumnKind::kNumeric;
  c2.num_min = 0.0;
  c2.num_max = 1000.0;
  spec.columns = {c0, c1, c2};
  return spec;
}

std::vector<drift::DriftSpec> SpecsForSeverity(double severity) {
  // Data churn + distribution shift + workload shift, all scaled by one
  // severity knob; onset at 40% leaves room to recover.
  std::vector<drift::DriftSpec> specs;
  specs.push_back({drift::DriftKind::kUpdate, severity, 0.4});
  specs.push_back({drift::DriftKind::kZipf, severity, 0.4});
  specs.push_back({drift::DriftKind::kTemplate, 0.5 * severity, 0.4});
  return specs;
}

struct Scenario {
  double severity = 0.0;
  std::vector<drift::DriftSpec> specs;
  drift::DriftStream stream;
};

Scenario BuildScenario(double severity, size_t num_queries) {
  std::vector<drift::DriftSpec> specs = SpecsForSeverity(severity);
  // The severity-1 scenario honours a CONFCARD_DRIFT override so the
  // bench doubles as a replay harness for arbitrary specs.
  if (severity >= 1.0) {
    std::vector<drift::DriftSpec> env = drift::DriftSpecsFromEnv();
    if (!env.empty()) specs = std::move(env);
  }
  drift::DriftStreamOptions so;
  so.num_queries = num_queries;
  so.workload.max_selectivity = 0.2;
  so.seed = 21;
  drift::DriftStream stream =
      drift::GenerateDriftStream(BaseSpec(), so, specs).value();
  return Scenario{severity, std::move(specs), std::move(stream)};
}

// ------------------------------------------------------------------
// Serving stack (mirrors bench_serving: identically-trained replicas,
// SplitConformal calibrated on replica 0's healthy batched estimates).
// ------------------------------------------------------------------

struct Stack {
  bench::Splits splits;
  std::vector<std::unique_ptr<LwnnEstimator>> replicas;
  std::vector<std::unique_ptr<GuardedEstimator>> guards;
  std::vector<const GuardedEstimator*> shard_guards;
  std::unique_ptr<SplitConformal> scp;
  double num_rows = 0.0;
};

Stack BuildStack(const Table& pre_table, int shards) {
  Stack s;
  s.splits = bench::MakeSplits(pre_table);
  s.num_rows = static_cast<double>(pre_table.num_rows());
  for (int i = 0; i < shards; ++i) {
    auto model = std::make_unique<LwnnEstimator>(bench::LwnnDefaults());
    CONFCARD_CHECK(model->Train(pre_table, s.splits.train).ok());
    s.guards.push_back(std::make_unique<GuardedEstimator>(*model, pre_table));
    s.shard_guards.push_back(s.guards.back().get());
    s.replicas.push_back(std::move(model));
  }
  std::vector<Query> calib_q;
  std::vector<double> truths;
  for (const LabeledQuery& lq : s.splits.calib) {
    calib_q.push_back(lq.query);
    truths.push_back(lq.cardinality);
  }
  std::vector<double> estimates(calib_q.size());
  s.replicas[0]->EstimateBatch(calib_q.data(), calib_q.size(),
                               estimates.data());
  s.scp =
      std::make_unique<SplitConformal>(MakeScoring(ScoreKind::kQError), kAlpha);
  CONFCARD_CHECK(s.scp->Calibrate(estimates, truths).ok());
  return s;
}

ServeFrontEnd::Options FrontOptions(bool feedback, size_t feedback_capacity) {
  ServeFrontEnd::Options o = ServeFrontEnd::Options::FromEnv();
  o.feedback = feedback;
  o.feedback_capacity = feedback_capacity;
  return o;
}

// ------------------------------------------------------------------
// Closed-loop drift replay: submit -> wait -> Observe, one query at a
// time, so feedback application points are a pure function of the
// stream and the run is bit-identical on replay.
// ------------------------------------------------------------------

struct Rec {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  bool degraded = false;
  bool shed = false;
  int source = 0;
  int stage = 0;

  bool operator==(const Rec& other) const {
    return estimate == other.estimate && lo == other.lo && hi == other.hi &&
           degraded == other.degraded && shed == other.shed &&
           source == other.source && stage == other.stage;
  }
};

std::vector<Rec> RunClosedLoop(const Stack& stack, const Workload& stream,
                               bool feedback) {
  ServeFrontEnd front(stack.shard_guards, *stack.scp, stack.num_rows,
                      FrontOptions(feedback, /*feedback_capacity=*/1024));
  if (feedback) front.WarmupFeedback(stack.splits.calib);
  std::vector<Rec> recs;
  recs.reserve(stream.size());
  Request r;
  for (const LabeledQuery& lq : stream) {
    r.Reset();
    r.query = lq.query;
    front.Submit(&r);  // closed loop: shed publishes immediately
    r.Wait();
    const serve::Response& resp = r.response;
    recs.push_back({resp.estimate, resp.lo, resp.hi, resp.degraded, resp.shed,
                    resp.source,
                    static_cast<int>(front.ShardStage(resp.shard))});
    if (feedback) front.Observe(lq.query, lq.cardinality);
  }
  front.Stop();
  return recs;
}

// ------------------------------------------------------------------
// Trajectory analysis over a response sequence.
// ------------------------------------------------------------------

struct Trajectory {
  double pre_coverage = 0.0;   // rolling coverage just before onset
  double dip = 1.0;            // min rolling coverage at/after onset
  size_t dip_index = 0;
  long recovery_queries = -1;  // onset -> first recovered index (-1: never)
  double final_coverage = 0.0;
  int max_stage = 0;
  double shed_fraction = 0.0;
};

Trajectory Analyze(const std::vector<Rec>& recs, const Workload& stream,
                   size_t onset_index) {
  Trajectory t;
  std::deque<int> window;
  double sum = 0.0;
  size_t shed = 0;
  double rolling = 0.0;
  for (size_t i = 0; i < recs.size(); ++i) {
    const double truth = stream[i].cardinality;
    const int covered =
        (recs[i].lo <= truth && truth <= recs[i].hi) ? 1 : 0;
    window.push_back(covered);
    sum += covered;
    if (window.size() > kRollingWindow) {
      sum -= window.front();
      window.pop_front();
    }
    rolling = sum / static_cast<double>(window.size());
    if (i + 1 == onset_index) t.pre_coverage = rolling;
    if (i >= onset_index) {
      if (rolling < t.dip) {
        t.dip = rolling;
        t.dip_index = i;
      }
    }
    if (recs[i].shed) ++shed;
    t.max_stage = std::max(t.max_stage, recs[i].stage);
  }
  // Recovery: first index after the dip where the rolling window has
  // fully turned over since the dip AND coverage is back within 1pp of
  // nominal (a window still dominated by pre-dip hits is not recovery).
  std::deque<int> rewindow;
  double resum = 0.0;
  for (size_t i = 0; i < recs.size(); ++i) {
    const double truth = stream[i].cardinality;
    const int covered =
        (recs[i].lo <= truth && truth <= recs[i].hi) ? 1 : 0;
    rewindow.push_back(covered);
    resum += covered;
    if (rewindow.size() > kRollingWindow) {
      resum -= rewindow.front();
      rewindow.pop_front();
    }
    if (t.recovery_queries < 0 && i >= t.dip_index + kRollingWindow &&
        resum / static_cast<double>(rewindow.size()) >=
            kNominal - kRecoveredWithin) {
      t.recovery_queries = static_cast<long>(i - onset_index);
    }
  }
  t.final_coverage = rolling;
  t.shed_fraction = recs.empty() ? 0.0
                                 : static_cast<double>(shed) /
                                       static_cast<double>(recs.size());
  return t;
}

// ------------------------------------------------------------------
// Zero-alloc gate: steady-state serve + feedback cycles allocate
// nothing, on the worker side (batch cycle incl. feedback application)
// and the producer side (Submit + Observe).
// ------------------------------------------------------------------

struct AllocResult {
  uint64_t worker_allocs = 0;
  uint64_t producer_allocs = 0;
  int passes = 0;
  bool passed = false;
};

AllocResult MeasureFeedbackAllocs(const Stack& stack, const Workload& stream) {
  ServeFrontEnd front(stack.shard_guards, *stack.scp, stack.num_rows,
                      FrontOptions(/*feedback=*/true,
                                   /*feedback_capacity=*/1024));
  front.WarmupFeedback(stack.splits.calib);
  const size_t n = std::min<size_t>(stream.size(), 128);
  const size_t group = std::min<size_t>(
      static_cast<size_t>(front.options().max_batch), 8);
  std::deque<Request> requests(n);
  AllocResult result;
  constexpr int kMaxPasses = 20;
  for (result.passes = 1; result.passes <= kMaxPasses; ++result.passes) {
    front.ResetStats();
    uint64_t producer = 0;
    for (size_t base = 0; base < n; base += group) {
      const size_t m = std::min(group, n - base);
      for (size_t i = 0; i < m; ++i) {
        Request& r = requests[base + i];
        r.Reset();
        r.query = stream[base + i].query;
        const uint64_t before = obs::prof::ThreadAllocCount();
        while (front.Submit(&r) != Admit::kAccepted) {
          std::this_thread::yield();
        }
        producer += obs::prof::ThreadAllocCount() - before;
      }
      for (size_t i = 0; i < m; ++i) requests[base + i].Wait();
      for (size_t i = 0; i < m; ++i) {
        const uint64_t before = obs::prof::ThreadAllocCount();
        front.Observe(requests[base + i].query,
                      stream[base + i].cardinality);
        producer += obs::prof::ThreadAllocCount() - before;
      }
    }
    result.worker_allocs = front.HotPathAllocs();
    result.producer_allocs = producer;
    if (result.worker_allocs == 0 && result.producer_allocs == 0) break;
  }
  front.Stop();
  result.passed = result.worker_allocs == 0 && result.producer_allocs == 0;
  std::printf(
      "feedback hot-path allocs: worker=%llu producer=%llu after %d "
      "pass(es) (%s)\n",
      static_cast<unsigned long long>(result.worker_allocs),
      static_cast<unsigned long long>(result.producer_allocs), result.passes,
      result.passed ? "pass" : "FAIL");
  return result;
}

// ------------------------------------------------------------------
// Open-loop drift level (report only): Poisson arrivals over the drift
// stream; completed requests are Observed in stream order without
// blocking the arrival schedule.
// ------------------------------------------------------------------

struct OpenLoopResult {
  double offered_qps = 0.0;
  Trajectory trajectory;
};

OpenLoopResult RunOpenLoopDrift(const Stack& stack, const Scenario& sc,
                                double offered_qps, uint64_t seed) {
  const Workload& stream = sc.stream.stream;
  // Capacity >= stream length: feedback is never dropped, so the
  // adaptive trajectory stays a function of the Observe order alone.
  ServeFrontEnd front(stack.shard_guards, *stack.scp, stack.num_rows,
                      FrontOptions(/*feedback=*/true, stream.size()));
  front.WarmupFeedback(stack.splits.calib);
  std::deque<Request> requests(stream.size());
  Rng rng(seed);
  const SteadyClock::time_point start = SteadyClock::now();
  double arrival_us = 0.0;
  size_t obs_cursor = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    arrival_us += -std::log1p(-rng.NextDouble()) * 1e6 / offered_qps;
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(static_cast<int64_t>(arrival_us)));
    requests[i].query = stream[i].query;
    front.Submit(&requests[i]);
    while (obs_cursor < i && requests[obs_cursor].done()) {
      front.Observe(stream[obs_cursor].query, stream[obs_cursor].cardinality);
      ++obs_cursor;
    }
  }
  for (; obs_cursor < stream.size(); ++obs_cursor) {
    requests[obs_cursor].Wait();
    front.Observe(stream[obs_cursor].query, stream[obs_cursor].cardinality);
  }
  std::vector<Rec> recs;
  recs.reserve(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    const serve::Response& resp = requests[i].response;
    recs.push_back({resp.estimate, resp.lo, resp.hi, resp.degraded, resp.shed,
                    resp.source,
                    static_cast<int>(front.ShardStage(
                        resp.shard >= 0 ? resp.shard : 0))});
  }
  front.Stop();
  OpenLoopResult r;
  r.offered_qps = offered_qps;
  r.trajectory = Analyze(recs, stream, sc.stream.onset_index);
  return r;
}

double ProbeCapacity(const Stack& stack) {
  ServeFrontEnd front(stack.shard_guards, *stack.scp, stack.num_rows,
                      FrontOptions(/*feedback=*/true,
                                   /*feedback_capacity=*/1024));
  front.WarmupFeedback(stack.splits.calib);
  const size_t n = bench::Scaled(4000, 400);
  std::deque<Request> requests(n);
  const Workload& pool = stack.splits.test;
  Stopwatch watch;
  for (size_t i = 0; i < n; ++i) {
    Request& r = requests[i];
    r.query = pool[i % pool.size()].query;
    while (front.Submit(&r) != Admit::kAccepted) std::this_thread::yield();
  }
  for (Request& r : requests) r.Wait();
  const double qps = static_cast<double>(n) / (watch.ElapsedMillis() / 1000.0);
  front.Stop();
  return qps;
}

void WriteTrajectory(obs::JsonWriter* w, const Trajectory& t) {
  w->BeginObject();
  w->Key("pre_coverage").Number(t.pre_coverage);
  w->Key("dip").Number(t.dip);
  w->Key("dip_index").Int(static_cast<uint64_t>(t.dip_index));
  w->Key("recovery_queries").Number(static_cast<double>(t.recovery_queries));
  w->Key("final_coverage").Number(t.final_coverage);
  w->Key("max_stage").Int(static_cast<uint64_t>(t.max_stage));
  w->Key("shed_fraction").Number(t.shed_fraction);
  w->EndObject();
}

int Main() {
  bench::PrintScaleNote();
  const int shards = serve::ShardsFromEnv();
  const ServeFrontEnd::Options opts = ServeFrontEnd::Options::FromEnv();
  const size_t stream_len = bench::Scaled(6000, 900);
  const double severities[] = {0.3, 0.6, 1.0};
  std::printf("shards=%d  B=%d  T=%dus  stream=%zu\n", shards, opts.max_batch,
              opts.flush_timeout_us, stream_len);

  std::vector<Scenario> scenarios;
  for (const double s : severities) {
    scenarios.push_back(BuildScenario(s, stream_len));
  }
  // All scenarios share the base spec, so the pre-drift table (and the
  // stack trained on it) is common.
  Stack stack = BuildStack(scenarios[0].stream.pre_table, shards);

  // ---- gate 2: zero-alloc serve+feedback hot path (pre-drift segment).
  const AllocResult allocs =
      MeasureFeedbackAllocs(stack, scenarios[0].stream.stream);

  // ---- severity sweep, closed loop, feedback on vs off.
  struct SweepRow {
    double severity = 0.0;
    std::string spec;
    Trajectory on;
    Trajectory off;
  };
  std::vector<SweepRow> sweep;
  for (const Scenario& sc : scenarios) {
    SweepRow row;
    row.severity = sc.severity;
    row.spec = drift::RenderDriftSpecs(sc.specs);
    const std::vector<Rec> on =
        RunClosedLoop(stack, sc.stream.stream, /*feedback=*/true);
    const std::vector<Rec> off =
        RunClosedLoop(stack, sc.stream.stream, /*feedback=*/false);
    row.on = Analyze(on, sc.stream.stream, sc.stream.onset_index);
    row.off = Analyze(off, sc.stream.stream, sc.stream.onset_index);
    std::printf(
        "severity %.1f (%s): feedback ON  dip %.3f recovery %+ld final %.3f "
        "max_stage %d | OFF dip %.3f final %.3f\n",
        sc.severity, row.spec.c_str(), row.on.dip, row.on.recovery_queries,
        row.on.final_coverage, row.on.max_stage, row.off.dip,
        row.off.final_coverage);
    sweep.push_back(std::move(row));
  }

  // ---- gate 1: replay bit-identity at 1 and at 4 shards.
  const Scenario& worst = scenarios.back();
  bool replay1 = false;
  bool replay4 = false;
  {
    Stack s1 = BuildStack(worst.stream.pre_table, 1);
    replay1 = RunClosedLoop(s1, worst.stream.stream, true) ==
              RunClosedLoop(s1, worst.stream.stream, true);
    Stack s4 = BuildStack(worst.stream.pre_table, 4);
    replay4 = RunClosedLoop(s4, worst.stream.stream, true) ==
              RunClosedLoop(s4, worst.stream.stream, true);
  }
  std::printf("replay identity: 1 shard %s, 4 shards %s\n",
              replay1 ? "pass" : "FAIL", replay4 ? "pass" : "FAIL");

  // ---- open-loop levels (report only).
  const double capacity_qps = ProbeCapacity(stack);
  const uint64_t poisson_seed = 131;
  std::vector<OpenLoopResult> open_levels;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const double rate = std::max(1.0, capacity_qps * 0.6);
    open_levels.push_back(
        RunOpenLoopDrift(stack, scenarios[i], rate, poisson_seed + i));
    const Trajectory& t = open_levels.back().trajectory;
    std::printf(
        "open-loop severity %.1f at %.0f qps: dip %.3f recovery %+ld "
        "final %.3f shed %.3f\n",
        scenarios[i].severity, rate, t.dip, t.recovery_queries,
        t.final_coverage, t.shed_fraction);
  }

  // ---- gate 3: self-healing, full scale only (the recovery horizon
  // needs a post-onset tail longer than the smoke stream provides).
  const SweepRow& worst_row = sweep.back();
  const size_t post_onset = stream_len - worst.stream.onset_index;
  const bool gates_applicable =
      bench::BenchScale() >= 1.0 && post_onset >= 4 * kRollingWindow;
  std::string skip_reason;
  if (!gates_applicable) {
    skip_reason = "post-onset tail of " + std::to_string(post_onset) +
                  " queries at scale " + std::to_string(bench::BenchScale()) +
                  " is too short for the " + std::to_string(kRollingWindow) +
                  "-query rolling window to dip and recover";
    std::printf("self-healing gate skipped: %s\n", skip_reason.c_str());
  } else {
    std::printf(
        "self-healing gate: feedback ON recovered=%s, feedback OFF "
        "collapsed=%s\n",
        worst_row.on.recovery_queries >= 0 ? "yes" : "NO",
        worst_row.off.final_coverage <= kNominal - kCollapseMargin ? "yes"
                                                                   : "NO");
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("drift");
  w.Key("config").BeginObject();
  w.Key("scale").Number(bench::BenchScale());
  w.Key("shards").Int(static_cast<uint64_t>(shards));
  w.Key("max_batch").Int(static_cast<uint64_t>(opts.max_batch));
  w.Key("flush_timeout_us").Int(static_cast<uint64_t>(opts.flush_timeout_us));
  w.Key("alpha").Number(kAlpha);
  w.Key("table_seed").Int(static_cast<uint64_t>(BaseSpec().seed));
  w.Key("table_rows").Int(static_cast<uint64_t>(BaseSpec().num_rows));
  w.Key("stream_seed").Int(21);
  w.Key("stream_queries").Int(static_cast<uint64_t>(stream_len));
  w.Key("poisson_seed").Int(poisson_seed);
  w.Key("rolling_window").Int(static_cast<uint64_t>(kRollingWindow));
  w.Key("feedback").BeginObject();
  {
    const ServeFrontEnd::Options fo = FrontOptions(true, 1024);
    w.Key("recal_window").Int(static_cast<uint64_t>(fo.recal_window));
    w.Key("monitor_window").Int(static_cast<uint64_t>(fo.monitor_window));
    w.Key("feedback_capacity")
        .Int(static_cast<uint64_t>(fo.feedback_capacity));
    w.Key("drift_inflation").Number(fo.drift_inflation);
    w.Key("degraded_inflation").Number(fo.degraded_inflation);
    w.Key("detector").BeginObject();
    w.Key("min_observations")
        .Int(static_cast<uint64_t>(fo.detector.min_observations));
    w.Key("recalibrate_dip").Number(fo.detector.recalibrate_dip);
    w.Key("inflate_dip").Number(fo.detector.inflate_dip);
    w.Key("fallback_dip").Number(fo.detector.fallback_dip);
    w.Key("breaker_dip").Number(fo.detector.breaker_dip);
    w.Key("recovery_hold").Int(static_cast<uint64_t>(fo.detector.recovery_hold));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  w.Key("scenarios").BeginArray();
  for (const SweepRow& row : sweep) {
    w.BeginObject();
    w.Key("severity").Number(row.severity);
    w.Key("drift_spec").String(row.spec);
    w.Key("feedback_on");
    WriteTrajectory(&w, row.on);
    w.Key("feedback_off");
    WriteTrajectory(&w, row.off);
    w.EndObject();
  }
  w.EndArray();
  w.Key("open_loop").BeginArray();
  for (size_t i = 0; i < open_levels.size(); ++i) {
    w.BeginObject();
    w.Key("severity").Number(scenarios[i].severity);
    w.Key("offered_qps").Number(open_levels[i].offered_qps);
    w.Key("trajectory");
    WriteTrajectory(&w, open_levels[i].trajectory);
    w.EndObject();
  }
  w.EndArray();
  w.Key("replay").BeginObject();
  w.Key("shards1_identical").Bool(replay1);
  w.Key("shards4_identical").Bool(replay4);
  w.EndObject();
  w.Key("hot_path_allocs").BeginObject();
  w.Key("worker_allocs").Int(allocs.worker_allocs);
  w.Key("producer_allocs").Int(allocs.producer_allocs);
  w.Key("warmup_passes").Int(static_cast<uint64_t>(allocs.passes));
  w.Key("passed").Bool(allocs.passed);
  w.EndObject();
  w.Key("gates").BeginObject();
  w.Key("applicable").Bool(gates_applicable);
  w.Key("skip_reason").String(skip_reason);
  w.Key("recovered_with_feedback").Bool(worst_row.on.recovery_queries >= 0);
  w.Key("collapsed_without_feedback")
      .Bool(worst_row.off.final_coverage <= kNominal - kCollapseMargin);
  w.EndObject();
  w.EndObject();

  const char* path = "BENCH_drift.json";
  std::ofstream out(path, std::ios::binary);
  CONFCARD_CHECK_MSG(out.is_open(), "cannot write BENCH_drift.json");
  out << w.str() << "\n";
  std::printf("wrote %s\n", path);

  CONFCARD_CHECK_MSG(replay1,
                     "drift replay diverged at 1 shard (determinism broken)");
  CONFCARD_CHECK_MSG(replay4,
                     "drift replay diverged at 4 shards (determinism broken)");
  CONFCARD_CHECK_MSG(allocs.passed,
                     "serve+feedback hot path allocated after warmup");
  if (gates_applicable) {
    CONFCARD_CHECK_MSG(worst_row.on.recovery_queries >= 0,
                       "coverage did not recover to within 1pp of nominal "
                       "with feedback enabled");
    CONFCARD_CHECK_MSG(
        worst_row.off.final_coverage <= kNominal - kCollapseMargin,
        "coverage did not collapse with the feedback loop disabled — drift "
        "too mild to gate on");
  }
  return 0;
}

}  // namespace
}  // namespace confcard

int main() { return confcard::Main(); }
