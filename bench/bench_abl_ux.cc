// Ablation B: the difficulty function U(X) of LW-S-CP. The paper's
// default is an xgboost regression of the conditional MAD; Section III-E
// also proposes ensemble variance and input-perturbation variance. All
// three preserve coverage (the scaled score stays exchangeable); they
// differ in width/adaptivity and preprocessing cost.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Ablation B",
                        "LW-S-CP difficulty model U(X): GBDT-MAD vs "
                        "ensemble variance vs perturbation variance "
                        "(MSCN)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);

  MscnEstimator::Options mo = bench::MscnDefaults();
  mo.model.epochs = 40;  // keep the ensemble affordable
  MscnEstimator mscn(mo);
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());

  SingleTableHarness::Options opts;
  opts.ensemble_size = 3;
  opts.perturbations = 8;
  SingleTableHarness harness(table, s.train, s.calib, s.test, opts);

  std::vector<MethodResult> results;
  results.push_back(harness.RunScp(mscn));  // context
  results.push_back(harness.RunLwScp(mscn, DifficultySource::kGbdtMad));
  results.push_back(
      harness.RunLwScp(mscn, DifficultySource::kEnsemble, &mscn));
  results.push_back(
      harness.RunLwScp(mscn, DifficultySource::kPerturbation));
  PrintMethodTable(results);
  std::printf("\nexpected shape: all variants cover ~0.9; GBDT-MAD gives "
              "the best width/cost balance (the paper's choice); the "
              "ensemble pays ~ensemble_size extra trainings\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
