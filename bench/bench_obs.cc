// Observability record-path bench: measures what one metric update
// costs on the hot path, and what the whole subsystem costs a real
// training loop. Three micro sections sweep 1/4/8 threads:
//   * counter add     — sharded relaxed add (cached ref) vs a legacy
//                       replica (per-op mutex registry lookup + one
//                       shared atomic), the design this PR replaced;
//   * histogram record— sharded bucket/sum/min/max vs the legacy
//                       replica (per-op lookup + shared CAS atomics);
//   * event append    — per-thread staged JSONL records into the
//                       EventLog test sink.
// A macro section then runs the JK-CV fold-training loop twice — obs
// recording on vs SetMetricsEnabled(false) — and reports the overhead
// ratio. Emits BENCH_obs.json. The obs-smoke ctest runs this binary at
// tiny scale purely as an end-to-end exercise; throughput numbers at
// that scale are noise and nothing gates on them.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "obs/profiler.h"

namespace confcard {
namespace {

constexpr int kThreadCounts[] = {1, 4, 8};

// Ops per thread per timed section. Scaled down for smoke runs.
size_t OpsPerThread() { return bench::Scaled(400000, 20000); }

// ---------------------------------------------------------------------------
// Legacy replicas: the pre-sharding design, reproduced here so the bench
// keeps an honest baseline after the real implementation moved on. Every
// record acquires the registry mutex (name -> metric lookup, as a
// non-caching call site would) and lands on one shared atomic.

struct LegacySharedHistogram {
  static constexpr size_t kBuckets = 40;
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{1e300};
  std::atomic<double> max{-1e300};
  std::atomic<uint64_t> buckets[kBuckets] = {};

  void Record(double value) {
    size_t b = 0;
    double bound = 1.0;
    while (b + 1 < kBuckets && value > bound) {
      bound *= 2.0;
      ++b;
    }
    buckets[b].fetch_add(1, std::memory_order_seq_cst);
    count.fetch_add(1, std::memory_order_seq_cst);
    obs::AtomicAddDouble(&sum, value);
    obs::AtomicMinDouble(&min, value);
    obs::AtomicMaxDouble(&max, value);
  }
};

// Names resembling the repo's real metric population, so the legacy
// replica's per-op lookup walks a realistically sized map with the long
// shared prefixes dotted paths have.
const char* const kRegistryNames[] = {
    "ce.guard.queries",        "ce.guard.primary_ok",
    "ce.guard.sanitized_nan",  "ce.guard.sanitized_negative",
    "ce.guard.budget_exceeded", "ce.guard.retries",
    "ce.guard.retry_success",  "ce.guard.fallback_served",
    "ce.guard.invalid_query",  "ce.guard.breaker_trips",
    "ce.guard.breaker_probes", "ce.guard.breaker_recoveries",
    "ce.infer.batch_queries",  "ce.infer.batch_calls",
    "ce.mscn.infer_us",        "ce.naru.infer_us",
    "ce.lwnn.infer_us",        "harness.prep_us",
    "harness.fold_train_ms",   "harness.calibrate_us",
    "harness.score_us",        "harness.interval_us",
    "pool.tasks_executed",     "pool.busy_us",
    "pool.queue_depth",        "pool.threads",
    "train.epochs",            "train.epoch_loss",
    "sample.progressive_rounds", "events.appended",
};

class LegacyRegistry {
 public:
  LegacyRegistry() {
    // Pre-register the population: lookups during the timed section walk
    // the same map a warmed-up process would.
    for (const char* name : kRegistryNames) {
      counters_[name].store(0);
      histograms_[name];
    }
  }

  void IncrementCounter(const std::string& name) {
    Find(&counters_, name)->fetch_add(1, std::memory_order_seq_cst);
  }
  uint64_t counter_value(const std::string& name) {
    return Find(&counters_, name)->load();
  }
  void RecordHistogram(const std::string& name, double value) {
    Find(&histograms_, name)->Record(value);
  }
  uint64_t histogram_count(const std::string& name) {
    return Find(&histograms_, name)->count.load();
  }

 private:
  template <typename Map>
  typename Map::mapped_type* Find(Map* map, const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return &(*map)[name];
  }

  std::mutex mu_;
  std::map<std::string, std::atomic<uint64_t>> counters_;
  std::map<std::string, LegacySharedHistogram> histograms_;
};

// ---------------------------------------------------------------------------
// Harness: run `body(thread_index)` on `threads` threads behind a start
// barrier; returns wall millis for the slowest thread.

template <typename Body>
double TimedThreads(int threads, const Body& body) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(t);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  watch.Restart();
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  return watch.ElapsedMillis();
}

struct SweepResult {
  std::vector<double> ops_per_sec;         // per kThreadCounts entry
  std::vector<double> legacy_ops_per_sec;  // empty when no legacy side
};

double Throughput(int threads, size_t per_thread, double millis) {
  const double total = static_cast<double>(threads) *
                       static_cast<double>(per_thread);
  return total / (millis * 1e-3);
}

SweepResult SweepCounter() {
  SweepResult r;
  const size_t ops = OpsPerThread();
  obs::Counter& counter = obs::Metrics().GetCounter("bench.obs.counter");
  for (int threads : kThreadCounts) {
    counter.Reset();
    double ms = TimedThreads(threads, [&](int) {
      for (size_t i = 0; i < ops; ++i) counter.Increment();
    });
    CONFCARD_CHECK(counter.value() ==
                   static_cast<uint64_t>(threads) * ops);
    r.ops_per_sec.push_back(Throughput(threads, ops, ms));

    LegacyRegistry legacy;
    const std::string name = "bench.obs.counter";
    ms = TimedThreads(threads, [&](int) {
      for (size_t i = 0; i < ops; ++i) legacy.IncrementCounter(name);
    });
    CONFCARD_CHECK(legacy.counter_value(name) ==
                   static_cast<uint64_t>(threads) * ops);
    r.legacy_ops_per_sec.push_back(Throughput(threads, ops, ms));
    std::printf("counter   threads=%d  sharded %10.0f ops/s  legacy %10.0f "
                "ops/s  (%.1fx)\n",
                threads, r.ops_per_sec.back(), r.legacy_ops_per_sec.back(),
                r.ops_per_sec.back() / r.legacy_ops_per_sec.back());
  }
  counter.Reset();
  return r;
}

SweepResult SweepHistogram() {
  SweepResult r;
  const size_t ops = OpsPerThread();
  obs::Histogram& hist = obs::Metrics().GetHistogram("bench.obs.hist");
  for (int threads : kThreadCounts) {
    hist.Reset();
    double ms = TimedThreads(threads, [&](int t) {
      for (size_t i = 0; i < ops; ++i) {
        hist.Record(static_cast<double>((i + static_cast<size_t>(t)) % 4096));
      }
    });
    CONFCARD_CHECK(hist.TakeSnapshot().count ==
                   static_cast<uint64_t>(threads) * ops);
    r.ops_per_sec.push_back(Throughput(threads, ops, ms));

    LegacyRegistry legacy;
    const std::string name = "bench.obs.hist";
    ms = TimedThreads(threads, [&](int t) {
      for (size_t i = 0; i < ops; ++i) {
        legacy.RecordHistogram(
            name, static_cast<double>((i + static_cast<size_t>(t)) % 4096));
      }
    });
    CONFCARD_CHECK(legacy.histogram_count(name) ==
                   static_cast<uint64_t>(threads) * ops);
    r.legacy_ops_per_sec.push_back(Throughput(threads, ops, ms));
    std::printf("histogram threads=%d  sharded %10.0f ops/s  legacy %10.0f "
                "ops/s  (%.1fx)\n",
                threads, r.ops_per_sec.back(), r.legacy_ops_per_sec.back(),
                r.ops_per_sec.back() / r.legacy_ops_per_sec.back());
  }
  hist.Reset();
  return r;
}

SweepResult SweepEventAppend() {
  SweepResult r;
  // Event records are much heavier than metric updates (string build +
  // staging); scale the op count down to keep runtimes comparable.
  const size_t ops = OpsPerThread() / 20;
  obs::EventLog& elog = obs::EventLog::Instance();
  const std::string path = "bench_obs_events.jsonl";
  for (int threads : kThreadCounts) {
    CONFCARD_CHECK(elog.OpenForTest(path).ok());
    const double ms = TimedThreads(threads, [&](int t) {
      for (size_t i = 0; i < ops; ++i) {
        obs::JsonWriter w;
        w.BeginObject();
        w.Key("type").String("bench");
        w.Key("thread").Int(static_cast<uint64_t>(t));
        w.Key("i").Int(i);
        w.EndObject();
        elog.AppendRecord(w.TakeString());
      }
    });
    CONFCARD_CHECK(elog.appended() ==
                   static_cast<uint64_t>(threads) * ops);
    elog.CloseForTest();
    r.ops_per_sec.push_back(Throughput(threads, ops, ms));
    std::printf("event     threads=%d  staged  %10.0f ops/s\n", threads,
                r.ops_per_sec.back());
  }
  std::remove(path.c_str());
  return r;
}

// ---------------------------------------------------------------------------
// Macro overhead: the JK-CV fold-training loop with obs recording on vs
// the kill switch thrown. Identical work, identical seeds; the only
// difference is whether Counter/Gauge/Histogram record calls land.

struct OverheadResult {
  double on_millis = 0.0;
  double off_millis = 0.0;
  double overhead_frac = 0.0;
};

OverheadResult MeasureJkCvOverhead(const Table& table,
                                   const bench::Splits& splits) {
  OverheadResult r;
  LwnnEstimator proto(bench::LwnnDefaults());
  CONFCARD_CHECK(proto.Train(table, splits.train).ok());
  auto run_once = [&] {
    SingleTableHarness::Options opts;
    opts.jk_folds = 4;
    SingleTableHarness h(table, splits.train, splits.calib, splits.test,
                         opts);
    Stopwatch watch;
    MethodResult m = h.RunJkCv(proto, proto, /*simplified=*/false);
    const double ms = watch.ElapsedMillis();
    CONFCARD_CHECK(!m.rows.empty());
    return ms;
  };
  // One throwaway run warms pools and caches so no timed run pays
  // first-touch costs; then interleaved on/off pairs with min-of-reps on
  // each side, so one scheduler hiccup cannot masquerade as obs
  // overhead.
  run_once();
  constexpr int kReps = 3;
  r.on_millis = 1e300;
  r.off_millis = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    r.on_millis = std::min(r.on_millis, run_once());
    obs::SetMetricsEnabled(false);
    r.off_millis = std::min(r.off_millis, run_once());
    obs::SetMetricsEnabled(true);
  }
  r.overhead_frac = r.on_millis / r.off_millis - 1.0;
  std::printf("jk-cv    obs on %8.1f ms   obs off %8.1f ms   overhead "
              "%+.2f%%\n",
              r.on_millis, r.off_millis, r.overhead_frac * 100.0);
  return r;
}

// ---------------------------------------------------------------------------
// Profiler overhead: the same JK-CV loop with SIGPROF sampling at 99 Hz
// vs profiler off, interleaved min-of-reps like the obs overhead above.
// Budget: <=2% wall time at 99 Hz, gated at full scale (smoke-scale runs
// are seconds long and scheduler noise swamps a 2% signal there).
// Before the first arming, the section also proves profiler-off runs
// leave clean artifacts: no prof.* metric may exist in the registry,
// since everything before this point ran with the profiler down.

struct ProfilerOverheadResult {
  double on_millis = 0.0;
  double off_millis = 0.0;
  double overhead_frac = 0.0;
  uint64_t samples = 0;
  uint64_t dropped = 0;
  bool artifact_clean = false;
  bool gated = false;
};

ProfilerOverheadResult MeasureProfilerOverhead(const Table& table,
                                               const bench::Splits& splits) {
  ProfilerOverheadResult r;
  if (obs::prof::ProfilerEnabled()) {
    // CONFCARD_PROFILE armed the profiler for this whole process: the
    // section cannot own Start/Stop, and prof.* metrics legitimately
    // exist. Skip rather than report a bogus measurement.
    std::printf("profiler jk-cv  skipped: CONFCARD_PROFILE armed "
                "process-wide\n");
    return r;
  }

  r.artifact_clean = true;
  const obs::MetricsRegistry::Snapshot snap = obs::Metrics().TakeSnapshot();
  auto clean = [&](const std::string& name) {
    if (name.rfind("prof.", 0) == 0) r.artifact_clean = false;
  };
  for (const auto& [name, value] : snap.counters) clean(name);
  for (const auto& [name, value] : snap.gauges) clean(name);
  for (const auto& [name, value] : snap.histograms) clean(name);
  CONFCARD_CHECK_MSG(r.artifact_clean,
                     "prof.* metrics present before the profiler ever armed "
                     "— profiler-off artifacts are not clean");

  LwnnEstimator proto(bench::LwnnDefaults());
  CONFCARD_CHECK(proto.Train(table, splits.train).ok());
  auto run_once = [&] {
    SingleTableHarness::Options opts;
    opts.jk_folds = 4;
    SingleTableHarness h(table, splits.train, splits.calib, splits.test,
                         opts);
    Stopwatch watch;
    MethodResult m = h.RunJkCv(proto, proto, /*simplified=*/false);
    const double ms = watch.ElapsedMillis();
    CONFCARD_CHECK(!m.rows.empty());
    return ms;
  };
  run_once();  // warm
  const std::string prof_path = "bench_obs_profile.folded";
  constexpr int kReps = 3;
  r.on_millis = 1e300;
  r.off_millis = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    r.off_millis = std::min(r.off_millis, run_once());
    CONFCARD_CHECK(obs::prof::StartProfiler(prof_path, 99).ok());
    r.on_millis = std::min(r.on_millis, run_once());
    r.samples = obs::prof::SampleCount();
    r.dropped = obs::prof::DroppedSampleCount();
    CONFCARD_CHECK(obs::prof::StopProfilerAndWrite().ok());
  }
  std::remove(prof_path.c_str());
  r.overhead_frac = r.on_millis / r.off_millis - 1.0;
  std::printf("profiler jk-cv  on %8.1f ms   off %8.1f ms   overhead "
              "%+.2f%%  (%llu samples @ 99 Hz, %llu dropped)\n",
              r.on_millis, r.off_millis, r.overhead_frac * 100.0,
              static_cast<unsigned long long>(r.samples),
              static_cast<unsigned long long>(r.dropped));
  r.gated = bench::BenchScale() >= 0.5;
  if (r.gated) {
    CONFCARD_CHECK_MSG(r.overhead_frac <= 0.02,
                       "99 Hz sampling overhead exceeds the 2% budget");
  }
  return r;
}

void WriteSweep(obs::JsonWriter* w, const char* name,
                const SweepResult& sweep) {
  w->Key(name).BeginObject();
  w->Key("threads").BeginArray();
  for (int t : kThreadCounts) w->Int(static_cast<uint64_t>(t));
  w->EndArray();
  w->Key("ops_per_sec").BeginArray();
  for (double v : sweep.ops_per_sec) w->Number(v);
  w->EndArray();
  if (!sweep.legacy_ops_per_sec.empty()) {
    w->Key("legacy_ops_per_sec").BeginArray();
    for (double v : sweep.legacy_ops_per_sec) w->Number(v);
    w->EndArray();
    w->Key("speedup_vs_legacy").BeginArray();
    for (size_t i = 0; i < sweep.ops_per_sec.size(); ++i) {
      w->Number(sweep.ops_per_sec[i] / sweep.legacy_ops_per_sec[i]);
    }
    w->EndArray();
  }
  w->EndObject();
}

int Main() {
  bench::PrintScaleNote();
  std::printf("hardware threads: %d\n", HardwareThreads());

  const SweepResult counter = SweepCounter();
  const SweepResult histogram = SweepHistogram();
  const SweepResult events = SweepEventAppend();

  Table table = MakeDmv(bench::DefaultRows(), 3).value();
  bench::Splits splits = bench::MakeSplits(table);
  const OverheadResult overhead = MeasureJkCvOverhead(table, splits);
  const ProfilerOverheadResult prof = MeasureProfilerOverhead(table, splits);

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("obs");
  w.Key("hardware_threads").Int(static_cast<uint64_t>(HardwareThreads()));
  w.Key("scale").Number(bench::BenchScale());
  w.Key("ops_per_thread").Int(OpsPerThread());
  WriteSweep(&w, "counter", counter);
  WriteSweep(&w, "histogram", histogram);
  WriteSweep(&w, "event_append", events);
  w.Key("jk_cv_overhead").BeginObject();
  w.Key("obs_on_millis").Number(overhead.on_millis);
  w.Key("obs_off_millis").Number(overhead.off_millis);
  w.Key("overhead_fraction").Number(overhead.overhead_frac);
  w.EndObject();
  w.Key("profiler_overhead").BeginObject();
  w.Key("prof_on_millis").Number(prof.on_millis);
  w.Key("prof_off_millis").Number(prof.off_millis);
  w.Key("overhead_fraction").Number(prof.overhead_frac);
  w.Key("hz").Int(99);
  w.Key("samples").Int(prof.samples);
  w.Key("dropped_samples").Int(prof.dropped);
  w.Key("artifact_clean").Bool(prof.artifact_clean);
  w.Key("gated").Bool(prof.gated);
  w.EndObject();
  w.EndObject();

  const char* path = "BENCH_obs.json";
  std::ofstream out(path, std::ios::binary);
  CONFCARD_CHECK_MSG(out.is_open(), "cannot write BENCH_obs.json");
  out << w.str() << "\n";
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace confcard

int main() { return confcard::Main(); }
