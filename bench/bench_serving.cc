// Serving front-end bench: an open-loop Poisson load harness over the
// micro-batched, sharded ServeFrontEnd (writes BENCH_serving.json).
//
// Three gated contracts plus a load sweep:
//   1. Bit-identity: with no faults armed, serving a workload through
//      the micro-batcher returns exactly the per-query guarded path's
//      estimates and intervals, whatever batch partition timing
//      produced (CONFCARD_CHECKed).
//   2. Zero-alloc hot path: after a warmup pass over every batch shape,
//      worker batch cycles perform zero heap allocations
//      (CONFCARD_CHECKed, like bench_parallel's dispatch gate).
//   3. Open-loop sweep: Poisson arrivals at >= 4 offered rates derived
//      from a closed-loop capacity probe, recording throughput,
//      p50/p99/p999 latency, batch-size histogram, shed/degraded
//      fractions, and empirical interval coverage per level; the
//      highest rate meeting the p99 SLO (CONFCARD_SERVE_SLO_US) with
//      <= 1% shed is reported as max sustainable QPS. On hosts without
//      enough cores to run producer and workers concurrently the
//      sustainability gate is skipped with an explicit skip_reason.
//
// The arrival schedule is a seeded exponential stream, and everything
// the gates check (estimates, intervals, coverage) is deterministic for
// a fixed seed and shard count; wall-clock-derived numbers (latency,
// throughput) are reported but never gated.
//
// Env knobs: CONFCARD_SERVE_SHARDS, CONFCARD_SERVE_BATCH,
// CONFCARD_SERVE_TIMEOUT_US (front-end, see docs/SERVING.md), and
// CONFCARD_SERVE_SLO_US (p99 SLO for sustainability, default 20000).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ce/guarded.h"
#include "ce/lwnn.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"
#include "conformal/split.h"
#include "data/drift.h"
#include "serve/serve.h"

namespace confcard {
namespace {

using SteadyClock = std::chrono::steady_clock;
using serve::Admit;
using serve::Request;
using serve::ServeFrontEnd;

int ReadIntEnv(const char* name, int fallback, int lo, int hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(std::clamp<long>(v, lo, hi));
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      std::min<double>(static_cast<double>(values.size()) - 1.0,
                       std::ceil(q * static_cast<double>(values.size())) - 1.0));
  return values[std::max<size_t>(idx, 0)];
}

// The serving stack under test: identically-trained per-shard replicas
// (same options + deterministic training = interchangeable models), one
// guard each, and a conformal predictor calibrated on the healthy
// batched estimates of the calibration split.
struct Stack {
  Table table;
  bench::Splits splits;
  std::vector<std::unique_ptr<LwnnEstimator>> replicas;
  std::vector<std::unique_ptr<GuardedEstimator>> guards;
  std::vector<const GuardedEstimator*> shard_guards;
  std::unique_ptr<SplitConformal> scp;
  double num_rows = 0.0;
};

Stack BuildStack(int shards) {
  // Aggregate init: Table has no default constructor.
  Stack s{MakeDmv(bench::DefaultRows(), 3).value()};
  s.splits = bench::MakeSplits(s.table);
  s.num_rows = static_cast<double>(s.table.num_rows());
  for (int i = 0; i < shards; ++i) {
    auto model = std::make_unique<LwnnEstimator>(bench::LwnnDefaults());
    CONFCARD_CHECK(model->Train(s.table, s.splits.train).ok());
    s.guards.push_back(
        std::make_unique<GuardedEstimator>(*model, s.table));
    s.shard_guards.push_back(s.guards.back().get());
    s.replicas.push_back(std::move(model));
  }
  std::vector<Query> calib_q;
  std::vector<double> truths;
  for (const LabeledQuery& lq : s.splits.calib) {
    calib_q.push_back(lq.query);
    truths.push_back(lq.cardinality);
  }
  std::vector<double> estimates(calib_q.size());
  s.replicas[0]->EstimateBatch(calib_q.data(), calib_q.size(),
                               estimates.data());
  s.scp = std::make_unique<SplitConformal>(MakeScoring(ScoreKind::kQError),
                                           0.1);
  CONFCARD_CHECK(s.scp->Calibrate(estimates, truths).ok());
  return s;
}

// ------------------------------------------------------------------
// Gate 1: batched-vs-per-query bit identity through the live pipeline.
// ------------------------------------------------------------------

struct IdentityResult {
  size_t queries = 0;
  bool passed = false;
};

IdentityResult CheckBitIdentity(const Stack& s, ServeFrontEnd* front) {
  const size_t n = s.splits.test.size();
  std::deque<Request> requests(n);
  for (size_t i = 0; i < n; ++i) {
    requests[i].query = s.splits.test[i].query;
    CONFCARD_CHECK(front->Submit(&requests[i]) == Admit::kAccepted);
  }
  for (Request& r : requests) r.Wait();

  bool passed = true;
  const GuardedEstimator& guard0 = *s.shard_guards[0];
  for (size_t i = 0; i < n; ++i) {
    const GuardedEstimate offline =
        guard0.EstimateGuarded(s.splits.test[i].query);
    const Interval iv =
        ClipToCardinality(s.scp->Predict(offline.value), s.num_rows);
    const serve::Response& resp = requests[i].response;
    if (resp.estimate != offline.value || resp.lo != iv.lo ||
        resp.hi != iv.hi || resp.degraded || resp.shed) {
      passed = false;
    }
  }
  std::printf("bit-identity: %zu queries through the batcher %s\n", n,
              passed ? "match the per-query path exactly" : "MISMATCH");
  return {n, passed};
}

// ------------------------------------------------------------------
// Gate 2: worker batch cycles allocate nothing once warm.
// ------------------------------------------------------------------

struct AllocResult {
  uint64_t allocs = 0;
  uint64_t requests = 0;
  int passes = 0;  // warmup+measure iterations until an alloc-free pass
  bool passed = false;
};

// Submits `group` requests back to back, then waits for all of them —
// with a generous flush timeout the worker assembles exactly this batch
// shape, so two passes (warm, then measured) see identical shapes.
void RunGroupedPass(const Stack& s, ServeFrontEnd* front, size_t group,
                    std::deque<Request>* requests) {
  const size_t n = requests->size();
  for (size_t base = 0; base < n; base += group) {
    const size_t m = std::min(group, n - base);
    for (size_t i = 0; i < m; ++i) {
      Request& r = (*requests)[base + i];
      r.Reset();
      r.query = s.splits.test[(base + i) % s.splits.test.size()].query;
      while (front->Submit(&r) != Admit::kAccepted) std::this_thread::yield();
    }
    for (size_t i = 0; i < m; ++i) (*requests)[base + i].Wait();
  }
}

AllocResult MeasureHotPathAllocs(const Stack& s, ServeFrontEnd* front) {
  const size_t group =
      std::min<size_t>(static_cast<size_t>(front->options().max_batch), 8);
  const size_t n = std::min<size_t>(s.splits.test.size(), 128);
  std::deque<Request> requests(n);
  // Warmup is shape-driven: arena free-lists are keyed by exact byte
  // size and each per-slot Query buffer must have seen its widest query,
  // so a pass only allocates when it hits a batch partition no earlier
  // pass produced — and that allocation warms the shape for good. The
  // partition space is finite (batch sizes 1..group over a fixed query
  // cycle), so repeated passes must converge to an alloc-free pass; the
  // gate fails only if they never do.
  AllocResult result;
  result.requests = n;
  constexpr int kMaxPasses = 20;
  for (result.passes = 1; result.passes <= kMaxPasses; ++result.passes) {
    front->ResetStats();
    RunGroupedPass(s, front, group, &requests);
    result.allocs = front->HotPathAllocs();
    if (result.allocs == 0) break;
  }
  result.passed = result.allocs == 0;
  std::printf(
      "hot-path allocs: 0 per request after %d warmup pass(es) of %llu "
      "requests (%s; last pass saw %llu)\n",
      result.passes, static_cast<unsigned long long>(result.requests),
      result.passed ? "pass" : "FAIL",
      static_cast<unsigned long long>(result.allocs));
  return result;
}

// ------------------------------------------------------------------
// Closed-loop capacity probe: back-to-back pipelined submission (retry
// on shed) bounds the stack's throughput; the open-loop sweep offers
// fractions and multiples of this rate.
// ------------------------------------------------------------------

struct Capacity {
  double qps = 0.0;
  size_t requests = 0;
  double millis = 0.0;
};

Capacity ProbeCapacity(const Stack& s, ServeFrontEnd* front) {
  const size_t n = bench::Scaled(8000, 800);
  std::deque<Request> requests(n);
  Stopwatch watch;
  for (size_t i = 0; i < n; ++i) {
    Request& r = requests[i];
    r.query = s.splits.test[i % s.splits.test.size()].query;
    while (front->Submit(&r) != Admit::kAccepted) std::this_thread::yield();
  }
  for (Request& r : requests) r.Wait();
  Capacity cap;
  cap.millis = watch.ElapsedMillis();
  cap.requests = n;
  cap.qps = static_cast<double>(n) / (cap.millis / 1000.0);
  std::printf("closed-loop capacity: %.0f qps (%zu requests in %.1f ms)\n",
              cap.qps, n, cap.millis);
  return cap;
}

// ------------------------------------------------------------------
// Open-loop Poisson sweep.
// ------------------------------------------------------------------

struct LoadLevel {
  double offered_qps = 0.0;
  size_t requests = 0;
  size_t shed = 0;
  size_t degraded = 0;
  size_t covered = 0;
  double throughput_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::vector<uint64_t> batch_counts;

  double shed_fraction() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(shed) / static_cast<double>(requests);
  }
  double degraded_fraction() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(degraded) / static_cast<double>(requests);
  }
  double coverage() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(covered) / static_cast<double>(requests);
  }
};

LoadLevel RunOpenLoopLevel(const Stack& s, ServeFrontEnd* front,
                           double offered_qps, size_t num_requests,
                           uint64_t seed) {
  LoadLevel level;
  level.offered_qps = offered_qps;
  level.requests = num_requests;
  front->ResetStats();

  std::deque<Request> requests(num_requests);
  // Deterministic Poisson process: seeded exponential inter-arrivals.
  // Open loop — the producer paces submissions by the schedule alone and
  // never waits for responses, so queueing delay shows up as latency
  // (or shedding), exactly like an external client population.
  Rng rng(seed);
  const SteadyClock::time_point start = SteadyClock::now();
  double arrival_us = 0.0;
  Stopwatch watch;
  for (size_t i = 0; i < num_requests; ++i) {
    arrival_us += -std::log1p(-rng.NextDouble()) * 1e6 / offered_qps;
    const SteadyClock::time_point target =
        start + std::chrono::microseconds(static_cast<int64_t>(arrival_us));
    std::this_thread::sleep_until(target);
    Request& r = requests[i];
    r.query = s.splits.test[i % s.splits.test.size()].query;
    front->Submit(&r);  // shed outcomes publish immediately
  }
  for (Request& r : requests) r.Wait();
  const double span_ms = watch.ElapsedMillis();
  level.throughput_qps =
      static_cast<double>(num_requests) / (span_ms / 1000.0);

  std::vector<double> latencies;
  latencies.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    const serve::Response& resp = requests[i].response;
    if (resp.shed) {
      ++level.shed;
    } else {
      latencies.push_back(resp.total_us);
    }
    if (resp.degraded) ++level.degraded;
    const double truth = s.splits.test[i % s.splits.test.size()].cardinality;
    if (resp.lo <= truth && truth <= resp.hi) ++level.covered;
  }
  level.p50_us = Percentile(latencies, 0.50);
  level.p99_us = Percentile(latencies, 0.99);
  level.p999_us = Percentile(latencies, 0.999);
  level.batch_counts = front->BatchSizeCounts();
  std::printf(
      "open-loop %8.0f qps offered: served %.0f qps  p50 %7.0fus  "
      "p99 %7.0fus  p999 %7.0fus  shed %.3f  degraded %.3f  coverage %.3f\n",
      offered_qps, level.throughput_qps, level.p50_us, level.p99_us,
      level.p999_us, level.shed_fraction(), level.degraded_fraction(),
      level.coverage());
  return level;
}

void WriteLevel(obs::JsonWriter* w, const LoadLevel& level) {
  w->BeginObject();
  w->Key("offered_qps").Number(level.offered_qps);
  w->Key("requests").Int(static_cast<uint64_t>(level.requests));
  w->Key("throughput_qps").Number(level.throughput_qps);
  w->Key("p50_us").Number(level.p50_us);
  w->Key("p99_us").Number(level.p99_us);
  w->Key("p999_us").Number(level.p999_us);
  w->Key("shed_fraction").Number(level.shed_fraction());
  w->Key("degraded_fraction").Number(level.degraded_fraction());
  w->Key("coverage").Number(level.coverage());
  // Sparse batch-size histogram: parallel arrays of size -> count.
  w->Key("batch_sizes").BeginArray();
  for (size_t b = 0; b < level.batch_counts.size(); ++b) {
    if (level.batch_counts[b] > 0) w->Int(static_cast<uint64_t>(b));
  }
  w->EndArray();
  w->Key("batch_counts").BeginArray();
  for (const uint64_t c : level.batch_counts) {
    if (c > 0) w->Int(c);
  }
  w->EndArray();
  w->EndObject();
}

int Main() {
  bench::PrintScaleNote();
  const int hardware_threads = HardwareThreads();
  const int shards = serve::ShardsFromEnv();
  ServeFrontEnd::Options options = ServeFrontEnd::Options::FromEnv();
  const int slo_p99_us = ReadIntEnv("CONFCARD_SERVE_SLO_US", 20000, 100,
                                    60000000);
  std::printf(
      "hardware threads: %d  shards=%d  B=%d  T=%dus  SLO p99<=%dus\n",
      hardware_threads, shards, options.max_batch, options.flush_timeout_us,
      slo_p99_us);

  Stack stack = BuildStack(shards);
  ServeFrontEnd front(stack.shard_guards, *stack.scp, stack.num_rows,
                      options);

  const IdentityResult identity = CheckBitIdentity(stack, &front);
  const AllocResult allocs = MeasureHotPathAllocs(stack, &front);
  const Capacity capacity = ProbeCapacity(stack, &front);

  // Offered rates bracket the measured capacity: comfortably under,
  // near, and past saturation (where admission control must shed
  // instead of queueing unboundedly).
  const double fractions[] = {0.25, 0.5, 0.75, 1.0, 1.25};
  const size_t level_requests = bench::Scaled(4000, 400);
  std::vector<LoadLevel> levels;
  for (size_t i = 0; i < std::size(fractions); ++i) {
    const double rate = std::max(1.0, capacity.qps * fractions[i]);
    levels.push_back(RunOpenLoopLevel(stack, &front, rate, level_requests,
                                      /*seed=*/97 + i));
  }
  front.Stop();

  // Max sustainable QPS: highest offered rate whose achieved p99 meets
  // the SLO with at most 1% shed. Needs the producer and at least one
  // worker actually running in parallel to mean anything.
  const bool slo_applicable = hardware_threads >= 2;
  double max_sustainable_qps = 0.0;
  for (const LoadLevel& level : levels) {
    if (level.p99_us <= static_cast<double>(slo_p99_us) &&
        level.shed_fraction() <= 0.01) {
      max_sustainable_qps = std::max(max_sustainable_qps, level.offered_qps);
    }
  }
  std::string skip_reason;
  if (!slo_applicable) {
    skip_reason = "only " + std::to_string(hardware_threads) +
                  " hardware thread(s): producer and serve workers "
                  "timeshare one core, so open-loop latency does not "
                  "measure the serving stack";
    std::printf("sustainability gate skipped: %s\n", skip_reason.c_str());
  } else {
    std::printf("max sustainable: %.0f qps at p99 <= %dus\n",
                max_sustainable_qps, slo_p99_us);
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("serving");
  w.Key("hardware_threads").Int(static_cast<uint64_t>(hardware_threads));
  w.Key("scale").Number(bench::BenchScale());
  w.Key("shards").Int(static_cast<uint64_t>(shards));
  w.Key("max_batch").Int(static_cast<uint64_t>(options.max_batch));
  w.Key("flush_timeout_us").Int(static_cast<uint64_t>(options.flush_timeout_us));
  w.Key("queue_capacity").Int(static_cast<uint64_t>(options.queue_capacity));
  // Everything needed to replay this run bit-for-bit: arrival seeds,
  // sweep shape, and the drift/feedback configuration in effect.
  w.Key("config").BeginObject();
  w.Key("poisson_seed_base").Int(97);  // level i draws arrivals at 97+i
  w.Key("level_requests").Int(static_cast<uint64_t>(level_requests));
  w.Key("rate_fractions").BeginArray();
  for (const double f : fractions) w.Number(f);
  w.EndArray();
  w.Key("slo_p99_us").Int(static_cast<uint64_t>(slo_p99_us));
  w.Key("drift_spec").String(drift::RenderDriftSpecs(drift::DriftSpecsFromEnv()));
  w.Key("feedback").BeginObject();
  w.Key("enabled").Bool(options.feedback);
  w.Key("feedback_capacity")
      .Int(static_cast<uint64_t>(options.feedback_capacity));
  w.Key("recal_window").Int(static_cast<uint64_t>(options.recal_window));
  w.Key("monitor_window").Int(static_cast<uint64_t>(options.monitor_window));
  w.Key("drift_inflation").Number(options.drift_inflation);
  w.Key("degraded_inflation").Number(options.degraded_inflation);
  w.EndObject();
  w.EndObject();
  w.Key("bit_identity").BeginObject();
  w.Key("queries").Int(static_cast<uint64_t>(identity.queries));
  w.Key("passed").Bool(identity.passed);
  w.EndObject();
  w.Key("hot_path_allocs").BeginObject();
  w.Key("allocs").Int(allocs.allocs);
  w.Key("requests").Int(allocs.requests);
  w.Key("warmup_passes").Int(static_cast<uint64_t>(allocs.passes));
  w.Key("passed").Bool(allocs.passed);
  w.EndObject();
  w.Key("closed_loop").BeginObject();
  w.Key("qps").Number(capacity.qps);
  w.Key("requests").Int(static_cast<uint64_t>(capacity.requests));
  w.Key("millis").Number(capacity.millis);
  w.EndObject();
  w.Key("levels").BeginArray();
  for (const LoadLevel& level : levels) WriteLevel(&w, level);
  w.EndArray();
  w.Key("sustainable").BeginObject();
  w.Key("applicable").Bool(slo_applicable);
  w.Key("slo_p99_us").Int(static_cast<uint64_t>(slo_p99_us));
  w.Key("max_sustainable_qps").Number(max_sustainable_qps);
  w.Key("skip_reason").String(skip_reason);  // empty when the gate ran
  w.EndObject();
  w.EndObject();

  const char* path = "BENCH_serving.json";
  std::ofstream out(path, std::ios::binary);
  CONFCARD_CHECK_MSG(out.is_open(), "cannot write BENCH_serving.json");
  out << w.str() << "\n";
  std::printf("wrote %s\n", path);

  CONFCARD_CHECK_MSG(identity.passed,
                     "micro-batched serving diverged from the per-query path");
  CONFCARD_CHECK_MSG(allocs.passed,
                     "serving hot path allocated after warmup");
  CONFCARD_CHECK_MSG(levels.size() >= 4,
                     "open-loop sweep needs >= 4 arrival rates");
  CONFCARD_CHECK_MSG(!slo_applicable || max_sustainable_qps > 0.0,
                     "no offered rate met the p99 SLO on a multi-core host");
  return 0;
}

}  // namespace
}  // namespace confcard

int main() { return confcard::Main(); }
