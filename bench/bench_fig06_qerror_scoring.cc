// Figure 6: q-error as the conformal scoring function. Intervals become
// multiplicative [est/delta, est*delta] and — per the paper — much
// tighter than the residual-scoring intervals of Figure 1, while the
// coverage guarantee is unchanged.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 6",
                        "q-error scoring function (all models, S-CP and "
                        "JK-CV+)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);

  SingleTableHarness::Options residual_opts;
  residual_opts.score = ScoreKind::kResidual;
  SingleTableHarness::Options qerr_opts;
  qerr_opts.score = ScoreKind::kQError;
  SingleTableHarness residual(table, s.train, s.calib, s.test,
                              residual_opts);
  SingleTableHarness qerror(table, s.train, s.calib, s.test, qerr_opts);

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());
  NaruEstimator naru(bench::NaruDefaults());
  CONFCARD_CHECK(naru.Train(table).ok());
  LwnnEstimator lwnn(bench::LwnnDefaults());
  CONFCARD_CHECK(lwnn.Train(table, s.train).ok());

  std::vector<MethodResult> results;
  for (const CardinalityEstimator* model :
       std::initializer_list<const CardinalityEstimator*>{&mscn, &naru,
                                                          &lwnn}) {
    MethodResult res = residual.RunScp(*model);
    res.method = "s-cp(resid)";
    results.push_back(res);
    MethodResult qe = qerror.RunScp(*model);
    qe.method = "s-cp(qerr)";
    results.push_back(qe);
    MethodResult jk = qerror.RunJkCvFixedModel(*model);
    jk.method = "jk+(qerr)";
    results.push_back(jk);
  }
  PrintMethodTable(results);

  // The paper's figures plot low-selectivity queries, where the
  // advantage of multiplicative intervals is dramatic: the fixed
  // residual width is paid by every query, while the q-error width
  // scales with the estimate.
  const double n = static_cast<double>(table.num_rows());
  auto band_median = [&](const MethodResult& r, double max_sel) {
    std::vector<double> widths;
    for (const PiRow& row : r.rows) {
      if (row.truth / n < max_sel) widths.push_back(row.width() / n);
    }
    if (widths.empty()) return 0.0;
    std::sort(widths.begin(), widths.end());
    return widths[widths.size() / 2];
  };
  std::printf("\nmedian width on low-selectivity queries (truth < 0.02N), "
              "residual vs q-error scoring:\n");
  for (size_t i = 0; i + 1 < results.size(); i += 3) {
    double resid = band_median(results[i], 0.02);
    double qerr = band_median(results[i + 1], 0.02);
    std::printf("  %-8s residual=%.6f  q-error=%.6f  (%.1fx tighter)\n",
                results[i].model.c_str(), resid, qerr,
                resid / std::max(qerr, 1e-12));
  }
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
