// Figure 14: impact of classifier accuracy (Naru, S-CP) — the epoch
// sweep of Figure 13 repeated for the data-driven model. Expected shape:
// coverage stays valid; widths shrink with training; the fully-trained
// Naru is tighter than the corresponding MSCN variant of Figure 13.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 14",
                        "impact of classifier accuracy (Naru, S-CP, "
                        "epoch sweep)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);
  SingleTableHarness harness(table, s.train, s.calib, s.test, {});

  const int full_epochs = bench::NaruDefaults().epochs;
  std::vector<MethodResult> results;
  for (double frac : {0.5, 0.75, 1.0}) {
    NaruConfig cfg = bench::NaruDefaults();
    cfg.epochs = std::max(1, static_cast<int>(frac * full_epochs));
    NaruEstimator naru(cfg);
    CONFCARD_CHECK(naru.Train(table).ok());
    MethodResult r = harness.RunScp(naru);
    char label[32];
    std::snprintf(label, sizeof(label), "s-cp(%.2fE)", frac);
    r.method = label;
    results.push_back(r);
  }
  PrintMethodTable(results);
  std::printf("\nexpected shape: coverage ~0.9 in every row; width "
              "shrinks with epochs; tighter than Figure 13's MSCN rows\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
