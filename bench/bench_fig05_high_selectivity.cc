// Figure 5: PIs for queries with larger selectivities (> 0.1). The
// paper's observation: high-selectivity queries are estimated accurately
// by all models, so the (absolute-width) prediction intervals of all
// methods become visually indistinguishable — the fixed S-CP width is
// small *relative to* the cardinality. We report width / truth per
// selectivity band to show the effect quantitatively.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader(
      "Figure 5", "PIs for queries with larger selectivities (MSCN)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  const double n = static_cast<double>(table.num_rows());

  // Train on the full selectivity spectrum; test across all bands.
  bench::Splits s = bench::MakeSplits(table, /*max_selectivity=*/1.0);

  SingleTableHarness harness(table, s.train, s.calib, s.test, {});
  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());

  std::vector<MethodResult> results;
  results.push_back(harness.RunScp(mscn));
  results.push_back(harness.RunLwScp(mscn));
  results.push_back(harness.RunCqr(mscn));
  PrintMethodTable(results);

  // Width relative to the true cardinality, by selectivity band: for
  // high-selectivity queries the ratio collapses toward 0 for every
  // method (the paper's "indistinguishable" observation).
  struct Band {
    double lo, hi;
    const char* label;
  };
  const Band kBands[] = {{0.0, 0.01, "sel<0.01"},
                         {0.01, 0.1, "0.01-0.1"},
                         {0.1, 0.3, "0.1-0.3"},
                         {0.3, 1.01, "sel>0.3"}};
  std::printf("\nmedian width / truth by selectivity band:\n");
  std::printf("  %-10s", "method");
  for (const Band& b : kBands) std::printf(" %10s", b.label);
  std::printf("\n");
  for (const MethodResult& r : results) {
    std::printf("  %-10s", r.method.c_str());
    for (const Band& b : kBands) {
      std::vector<double> rel;
      for (const PiRow& row : r.rows) {
        double sel = row.truth / n;
        if (sel >= b.lo && sel < b.hi && row.truth >= 1.0) {
          rel.push_back(row.width() / row.truth);
        }
      }
      if (rel.empty()) {
        std::printf(" %10s", "-");
      } else {
        std::sort(rel.begin(), rel.end());
        std::printf(" %10.3f", rel[rel.size() / 2]);
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
