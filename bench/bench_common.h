// Shared setup for the experiment binaries: default model
// hyper-parameters (mirroring the "best hyper-parameters from [51]"
// convention of the paper, tuned here for CPU scale), workload-split
// construction, and scale-aware sizes.
#ifndef CONFCARD_BENCH_BENCH_COMMON_H_
#define CONFCARD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "ce/naru.h"
#include "common/check.h"
#include "data/datasets.h"
#include "harness/scale.h"
#include "harness/single_table.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "query/workload.h"

namespace confcard {
namespace bench {

/// Arms the end-of-process metrics artifact when CONFCARD_METRICS_JSON
/// names a path (no-op otherwise). Every binary that includes this
/// header gets the behaviour for free via the inline global below — no
/// per-binary wiring required. Safe to trigger from multiple translation
/// units: InstallExitEmitter is idempotent and the process emits at most
/// one artifact.
///
/// Also touches the per-query event log singleton so a bench armed with
/// CONFCARD_EVENTS_JSONL opens (and truncates) its JSONL sink before any
/// harness work, and records in the artifact meta whether events were
/// streamed this run.
inline bool InstallMetricsEmitter() {
  const bool armed = obs::InstallExitEmitter();
  const bool events = obs::EventLog::Instance().enabled();
  if (armed) {
    obs::Metrics().SetMeta("scale", BenchScale());
    obs::Metrics().SetMeta("events_jsonl", events ? 1.0 : 0.0);
  }
  return armed;
}

inline const bool kMetricsEmitterInstalled = InstallMetricsEmitter();

/// Default row count for single-table experiments.
inline size_t DefaultRows() { return Scaled(40000, 2000); }

/// Default workload sizes (50-50 train/calibration split per the paper;
/// the split experiment of Figure 12 varies this).
inline size_t TrainQueries() { return Scaled(1500, 100); }
inline size_t CalibQueries() { return Scaled(1500, 100); }
inline size_t TestQueries() { return Scaled(800, 100); }

/// Three disjoint-seed workload splits over `table`. `max_selectivity`
/// defaults to the paper's low-selectivity focus.
struct Splits {
  Workload train;
  Workload calib;
  Workload test;
};

inline Splits MakeSplits(const Table& table, double max_selectivity = 0.2,
                         uint64_t seed_base = 1,
                         size_t train_n = TrainQueries(),
                         size_t calib_n = CalibQueries(),
                         size_t test_n = TestQueries()) {
  obs::Metrics().SetMeta("workload.seed_base",
                         static_cast<double>(seed_base));
  obs::Metrics().SetMeta("workload.max_selectivity", max_selectivity);
  WorkloadConfig wc;
  wc.max_selectivity = max_selectivity;
  wc.num_queries = train_n;
  wc.seed = seed_base;
  Splits s;
  s.train = GenerateWorkload(table, wc).value();
  wc.num_queries = calib_n;
  wc.seed = seed_base + 1;
  s.calib = GenerateWorkload(table, wc).value();
  wc.num_queries = test_n;
  wc.seed = seed_base + 2;
  s.test = GenerateWorkload(table, wc).value();
  return s;
}

/// MSCN with the tuned defaults used across experiments.
inline MscnEstimator::Options MscnDefaults() {
  MscnEstimator::Options o;
  o.model.epochs = 60;
  o.model.set_hidden = 96;
  o.model.final_hidden = 96;
  return o;
}

/// LW-NN defaults: deliberately lightweight (coarse histograms, small
/// net), matching its role as the least accurate model in the paper.
inline LwnnEstimator::Options LwnnDefaults() {
  LwnnEstimator::Options o;
  o.histogram_buckets = 12;
  o.hidden1 = 32;
  o.hidden2 = 16;
  o.epochs = 30;
  return o;
}

/// Naru defaults scaled for CPU inference.
inline NaruConfig NaruDefaults() {
  NaruConfig c;
  c.hidden = 64;
  c.epochs = 6;
  c.num_samples = 32;
  c.max_train_rows = Scaled(40000, 2000);
  return c;
}

inline void PrintScaleNote() {
  std::printf("scale=%.2f (set CONFCARD_SCALE to change workload sizes)\n",
              BenchScale());
}

}  // namespace bench
}  // namespace confcard

#endif  // CONFCARD_BENCH_BENCH_COMMON_H_
