// Figure 10: calibration and test workloads drawn from the same
// generator (exchangeable). Expected shape: tight PIs and empirical
// coverage >= 0.9 for all four methods; the martingale exchangeability
// test stays quiet.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "conformal/exchangeability.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 10",
                        "exchangeable calibration and test sets (MSCN)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());

  SingleTableHarness harness(table, s.train, s.calib, s.test, {});
  std::vector<MethodResult> results;
  results.push_back(harness.RunScp(mscn));
  results.push_back(harness.RunJkCv(mscn, mscn, /*simplified=*/true));
  results.push_back(harness.RunLwScp(mscn));
  results.push_back(harness.RunCqr(mscn));
  PrintMethodTable(results);

  // Exchangeability diagnostics: feed calibration scores then test
  // scores into the martingale test.
  ExchangeabilityTest ex;
  auto observe = [&](const Workload& wl) {
    for (const LabeledQuery& lq : wl) {
      double est = mscn.EstimateCardinality(lq.query);
      ex.Observe(std::fabs(lq.cardinality - est));
    }
  };
  observe(s.calib);
  observe(s.test);
  std::printf("\nmartingale log10 M = %.2f (reject at %.2f): %s\n",
              ex.LogMartingale() / 2.302585, std::log(100.0) / 2.302585,
              ex.Reject(0.01) ? "SHIFT DETECTED" : "no shift");
  PrintSeries(results[0], static_cast<double>(table.num_rows()), 12);
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
