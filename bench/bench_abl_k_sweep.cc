// Ablation A: the number of folds K in JK-CV+. The paper fixes K=10;
// this sweep quantifies the trade-off its Section III-B describes:
// larger K -> fold models see more data -> tighter residuals, at a
// linearly growing training cost; the coverage floor
// 1 - 2a - min(...) also moves with K. LW-NN keeps retraining cheap.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Ablation A",
                        "JK-CV+ fold count K sweep (LW-NN)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  bench::Splits s = bench::MakeSplits(table);

  LwnnEstimator proto(bench::LwnnDefaults());
  CONFCARD_CHECK(proto.Train(table, s.train).ok());

  std::vector<MethodResult> results;
  for (int k : {2, 5, 10, 20}) {
    SingleTableHarness::Options opts;
    opts.jk_folds = k;
    SingleTableHarness harness(table, s.train, s.calib, s.test, opts);
    MethodResult r = harness.RunJkCv(proto, proto, /*simplified=*/false);
    char label[24];
    std::snprintf(label, sizeof(label), "jk-cv+(K=%d)", k);
    r.method = label;
    results.push_back(r);
  }
  PrintMethodTable(results);
  std::printf("\nexpected shape: prep time grows ~linearly in K; widths "
              "shrink slightly with K; coverage >= 1-2a floor always\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
