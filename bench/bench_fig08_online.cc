// Figure 8: online conformal prediction. Start with a small calibration
// set (1000 queries in the paper, scaled here) and stream test queries;
// after each query executes, its (estimate, truth) pair augments the
// calibration set. Expected shape: the PI width decreases and settles as
// the calibration set grows attuned to the workload; prequential
// coverage stays ~ 1 - alpha.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "conformal/online.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Figure 8",
                        "PI width reduction with growing calibration set "
                        "(MSCN, online S-CP)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  const double n = static_cast<double>(table.num_rows());

  WorkloadConfig wc;
  wc.max_selectivity = 0.2;
  wc.num_queries = bench::TrainQueries();
  wc.seed = 1;
  Workload train = GenerateWorkload(table, wc).value();
  // Small initial calibration set drawn from a GENERIC workload (the
  // full selectivity spectrum). The live stream is a SPECIALIZED
  // workload (selective analytical queries): as executed stream queries
  // augment the calibration set, the conformal quantile re-attunes to
  // the live workload's much smaller residuals and the PIs tighten —
  // the Figure 8 effect.
  WorkloadConfig generic = wc;
  generic.max_selectivity = 1.0;
  generic.num_queries = bench::Scaled(1000, 100);
  generic.seed = 2;
  Workload warmup = GenerateWorkload(table, generic).value();
  wc.max_selectivity = 0.02;
  wc.num_queries = bench::Scaled(5000, 500);  // the stream
  wc.seed = 3;
  Workload stream = GenerateWorkload(table, wc).value();

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, train).ok());

  OnlineConformal::Options opts;
  opts.alpha = 0.1;
  OnlineConformal online(MakeScoring(ScoreKind::kResidual), opts);
  for (const LabeledQuery& lq : warmup) {
    online.Observe(mscn.EstimateCardinality(lq.query), lq.cardinality);
  }

  std::printf("%10s %14s %12s %12s\n", "processed", "calib_size",
              "width(sel)", "coverage");
  const size_t bucket = std::max<size_t>(stream.size() / 10, 1);
  size_t covered = 0, seen = 0;
  double width_sum = 0.0;
  for (size_t i = 0; i < stream.size(); ++i) {
    const LabeledQuery& lq = stream[i];
    double est = mscn.EstimateCardinality(lq.query);
    Interval iv = ClipToCardinality(online.Predict(est), n);
    covered += iv.Contains(lq.cardinality) ? 1 : 0;
    width_sum += iv.width() / n;
    ++seen;
    online.Observe(est, lq.cardinality);  // execute, then augment
    if ((i + 1) % bucket == 0) {
      std::printf("%10zu %14zu %12.6f %12.4f\n", i + 1, online.size(),
                  width_sum / static_cast<double>(seen),
                  static_cast<double>(covered) /
                      static_cast<double>(seen));
      covered = 0;
      seen = 0;
      width_sum = 0.0;
    }
  }
  std::printf("\nexpected shape: width column decreases toward a plateau; "
              "coverage stays ~0.90\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
