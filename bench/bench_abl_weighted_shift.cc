// Ablation E: weighted conformal prediction under covariate shift.
// Figure 11 shows coverage collapsing when the test workload differs
// from calibration. When the shift is a *covariate* shift with a known
// (or estimable) likelihood ratio — here, the workload's predicate-count
// mix changes, a statistic a DBA can measure — weighted CP reweights the
// calibration scores and restores coverage. This implements the remedy
// the paper's discussion asks for.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "conformal/weighted.h"
#include "harness/report.h"

namespace confcard {
namespace {

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Ablation E",
                        "weighted CP under a predicate-count covariate "
                        "shift (MSCN)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  const double n = static_cast<double>(table.num_rows());

  // Calibration: the usual 1-6 predicate mix. Test: heavy conjunctions
  // only (4-6 predicates) — a different residual regime, so the global
  // delta is mis-sized for the shifted workload.
  WorkloadConfig wc;
  wc.max_selectivity = 0.2;
  wc.num_queries = bench::TrainQueries();
  wc.seed = 1;
  wc.max_predicates = 6;
  Workload train = GenerateWorkload(table, wc).value();
  wc.num_queries = bench::CalibQueries();
  wc.seed = 2;
  Workload calib = GenerateWorkload(table, wc).value();
  WorkloadConfig shifted = wc;
  shifted.min_predicates = 4;
  shifted.max_predicates = 6;
  shifted.num_queries = bench::TestQueries();
  shifted.seed = 3;
  Workload test = GenerateWorkload(table, shifted).value();

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, train).ok());
  FlatQueryFeaturizer featurizer(table);

  // The likelihood ratio over the shift statistic (predicate count):
  // w(k) = p_test(k) / p_calib(k), estimated from the two workload
  // mixes — exactly what a deployment can measure from its query log.
  std::unordered_map<int, double> p_calib, p_test;
  for (const LabeledQuery& lq : calib) {
    p_calib[static_cast<int>(lq.query.predicates.size())] += 1.0;
  }
  for (const LabeledQuery& lq : test) {
    p_test[static_cast<int>(lq.query.predicates.size())] += 1.0;
  }
  for (auto& [k, v] : p_calib) v /= static_cast<double>(calib.size());
  for (auto& [k, v] : p_test) v /= static_cast<double>(test.size());

  const size_t num_cols = table.num_columns();
  auto pred_count = [num_cols](const std::vector<float>& f) {
    int count = 0;
    for (size_t c = 0; c < num_cols; ++c) {
      if (f[5 * c] > 0.5f) ++count;
    }
    return count;
  };
  auto weight = [&](const std::vector<float>& f) {
    const int k = pred_count(f);
    auto ct = p_test.find(k);
    auto cc = p_calib.find(k);
    const double pt = ct == p_test.end() ? 0.0 : ct->second;
    const double pc = cc == p_calib.end() ? 1e-6 : cc->second;
    return pt / pc;
  };

  auto features = [&](const Workload& wl) {
    std::vector<std::vector<float>> out;
    for (const LabeledQuery& lq : wl) {
      out.push_back(featurizer.Featurize(lq.query));
    }
    return out;
  };
  std::vector<double> calib_est, calib_truth;
  for (const LabeledQuery& lq : calib) {
    calib_est.push_back(mscn.EstimateCardinality(lq.query));
    calib_truth.push_back(lq.cardinality);
  }
  const auto calib_feat = features(calib);
  const auto test_feat = features(test);

  auto scoring = MakeScoring(ScoreKind::kResidual);
  WeightedConformal weighted(scoring, weight, 0.1);
  CONFCARD_CHECK(
      weighted.Calibrate(calib_feat, calib_est, calib_truth).ok());
  WeightedConformal plain(
      scoring, [](const std::vector<float>&) { return 1.0; }, 0.1);
  CONFCARD_CHECK(plain.Calibrate(calib_feat, calib_est, calib_truth).ok());

  double cov_w = 0, cov_p = 0, width_w = 0, width_p = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const double est = mscn.EstimateCardinality(test[i].query);
    Interval iw =
        ClipToCardinality(weighted.Predict(est, test_feat[i]), n);
    Interval ip = ClipToCardinality(plain.Predict(est, test_feat[i]), n);
    cov_w += iw.Contains(test[i].cardinality) ? 1 : 0;
    cov_p += ip.Contains(test[i].cardinality) ? 1 : 0;
    width_w += iw.width() / n;
    width_p += ip.width() / n;
  }
  const double m = static_cast<double>(test.size());
  std::printf("%-22s %10s %12s\n", "method", "coverage", "mean_w(sel)");
  std::printf("%-22s %10.4f %12.6f\n", "s-cp (unweighted)", cov_p / m,
              width_p / m);
  std::printf("%-22s %10.4f %12.6f\n", "weighted cp", cov_w / m,
              width_w / m);
  std::printf("effective calibration sample size under the shift: %.0f "
              "of %zu\n",
              weighted.EffectiveSampleSize(), calib.size());
  std::printf("\nexpected shape: the unweighted method mis-covers on the "
              "shifted workload (here typically over-covering: heavy "
              "conjunctions have smaller residuals, so the global delta "
              "is too wide for them); weighted CP re-centers coverage at "
              "~0.9 with appropriately sized intervals. The under-"
              "coverage direction is exercised by the weighted_test "
              "unit tests.\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
