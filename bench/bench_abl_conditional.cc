// Ablation D: conditional coverage. Split conformal guarantees coverage
// *marginally* over the workload; inside slices (queries with many
// predicates, low-selectivity bands) it can systematically over- or
// under-cover. This bench compares S-CP against the two conditional
// remedies from the paper's future-work discussion — Mondrian
// (group-conditional) CP grouped by predicate count, and localized CP
// (k-NN calibration neighborhoods) — reporting coverage and width per
// slice.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "conformal/localized.h"
#include "conformal/mondrian.h"
#include "conformal/split.h"
#include "harness/report.h"

namespace confcard {
namespace {

struct SliceStat {
  double covered = 0.0;
  double width = 0.0;
  double count = 0.0;
};

void Run() {
  bench::PrintScaleNote();
  PrintExperimentHeader("Ablation D",
                        "conditional coverage: S-CP vs Mondrian CP vs "
                        "localized CP (MSCN)");

  Table table = MakeDmv(bench::DefaultRows()).value();
  const double n = static_cast<double>(table.num_rows());
  bench::Splits s = bench::MakeSplits(table);

  MscnEstimator mscn(bench::MscnDefaults());
  CONFCARD_CHECK(mscn.Train(table, s.train).ok());
  FlatQueryFeaturizer featurizer(table);

  auto estimates = [&](const Workload& wl) {
    std::vector<double> out;
    for (const LabeledQuery& lq : wl) {
      out.push_back(mscn.EstimateCardinality(lq.query));
    }
    return out;
  };
  auto features = [&](const Workload& wl) {
    std::vector<std::vector<float>> out;
    for (const LabeledQuery& lq : wl) {
      out.push_back(featurizer.Featurize(lq.query));
    }
    return out;
  };
  auto truths = [&](const Workload& wl) {
    std::vector<double> out;
    for (const LabeledQuery& lq : wl) out.push_back(lq.cardinality);
    return out;
  };

  const auto calib_est = estimates(s.calib);
  const auto calib_feat = features(s.calib);
  const auto calib_truth = truths(s.calib);
  const auto test_est = estimates(s.test);
  const auto test_feat = features(s.test);

  auto scoring = MakeScoring(ScoreKind::kResidual);
  SplitConformal scp(scoring, 0.1);
  CONFCARD_CHECK(scp.Calibrate(calib_est, calib_truth).ok());

  MondrianConformal::Options mopts;
  mopts.alpha = 0.1;
  MondrianConformal mondrian(
      scoring, GroupByPredicateCount(table.num_columns()), mopts);
  CONFCARD_CHECK(
      mondrian.Calibrate(calib_feat, calib_est, calib_truth).ok());

  LocalizedConformal::Options lopts;
  lopts.alpha = 0.1;
  lopts.k = std::max<size_t>(64, s.calib.size() / 5);
  LocalizedConformal lcp(scoring, lopts);
  CONFCARD_CHECK(lcp.Calibrate(calib_feat, calib_est, calib_truth).ok());

  // Slices: by predicate count.
  auto slice_of = [&](const Query& q) {
    return std::min<size_t>(q.predicates.size(), 4);
  };
  const char* kSliceNames[] = {"0 preds", "1 pred", "2 preds", "3 preds",
                               "4+ preds"};

  struct MethodSlices {
    const char* name;
    SliceStat slices[5];
  };
  MethodSlices methods[3] = {{"s-cp", {}}, {"mondrian", {}}, {"lcp", {}}};

  for (size_t i = 0; i < s.test.size(); ++i) {
    const size_t sl = slice_of(s.test[i].query);
    const double truth = s.test[i].cardinality;
    Interval ivs[3] = {
        ClipToCardinality(scp.Predict(test_est[i]), n),
        ClipToCardinality(mondrian.Predict(test_est[i], test_feat[i]), n),
        ClipToCardinality(lcp.Predict(test_est[i], test_feat[i]), n)};
    for (int m = 0; m < 3; ++m) {
      SliceStat& st = methods[m].slices[sl];
      st.covered += ivs[m].Contains(truth) ? 1.0 : 0.0;
      st.width += ivs[m].width() / n;
      st.count += 1.0;
    }
  }

  std::printf("%-10s", "slice");
  for (const auto& m : methods) {
    std::printf(" %10s(cov) %10s(w)", m.name, m.name);
  }
  std::printf("\n");
  for (size_t sl = 0; sl < 5; ++sl) {
    if (methods[0].slices[sl].count < 1.0) continue;
    std::printf("%-10s", kSliceNames[sl]);
    for (const auto& m : methods) {
      const SliceStat& st = m.slices[sl];
      std::printf(" %15.3f %12.4f", st.covered / st.count,
                  st.width / st.count);
    }
    std::printf("  (n=%.0f)\n", methods[0].slices[sl].count);
  }
  std::printf("\nexpected shape: all methods hold ~0.9 marginally, but "
              "S-CP's per-slice coverage wobbles more; Mondrian pins each "
              "predicate-count slice at ~0.9; LCP adapts widths per "
              "region\n");
}

}  // namespace
}  // namespace confcard

int main() {
  confcard::Run();
  return 0;
}
