#include "conformal/scoring.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

TEST(ResidualScoreTest, ValueAndInversion) {
  ResidualScore s;
  EXPECT_DOUBLE_EQ(s.Score(100.0, 130.0), 30.0);
  EXPECT_DOUBLE_EQ(s.Score(130.0, 100.0), 30.0);
  Interval iv = s.Invert(100.0, 25.0);
  EXPECT_DOUBLE_EQ(iv.lo, 75.0);
  EXPECT_DOUBLE_EQ(iv.hi, 125.0);
}

TEST(QErrorScoreTest, ValueMatchesDefinition) {
  QErrorScore s;
  EXPECT_DOUBLE_EQ(s.Score(200.0, 100.0), 2.0);
  EXPECT_DOUBLE_EQ(s.Score(100.0, 200.0), 2.0);
  EXPECT_DOUBLE_EQ(s.Score(100.0, 100.0), 1.0);
  // Zero cardinalities replaced by 1 (paper's convention).
  EXPECT_DOUBLE_EQ(s.Score(0.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Score(100.0, 0.0), 100.0);
}

TEST(QErrorScoreTest, MultiplicativeInversion) {
  QErrorScore s;
  Interval iv = s.Invert(100.0, 4.0);
  EXPECT_DOUBLE_EQ(iv.lo, 25.0);
  EXPECT_DOUBLE_EQ(iv.hi, 400.0);
  // Infinite delta -> trivial interval.
  Interval inf = s.Invert(100.0, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isinf(inf.hi));
}

TEST(RelativeErrorScoreTest, ValueAndInversion) {
  RelativeErrorScore s;
  EXPECT_DOUBLE_EQ(s.Score(150.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(s.Score(50.0, 100.0), 0.5);
  Interval iv = s.Invert(100.0, 0.5);
  EXPECT_DOUBLE_EQ(iv.lo, 100.0 / 1.5);
  EXPECT_DOUBLE_EQ(iv.hi, 200.0);
  // delta >= 1: unbounded above.
  Interval wide = s.Invert(100.0, 1.5);
  EXPECT_TRUE(std::isinf(wide.hi));
  EXPECT_DOUBLE_EQ(wide.lo, 40.0);
}

TEST(ScoringFactoryTest, ProducesRequestedKind) {
  EXPECT_EQ(MakeScoring(ScoreKind::kResidual)->name(), "residual");
  EXPECT_EQ(MakeScoring(ScoreKind::kQError)->name(), "q-error");
  EXPECT_EQ(MakeScoring(ScoreKind::kRelative)->name(), "relative");
  EXPECT_STREQ(ScoreKindToString(ScoreKind::kQError), "q-error");
}

// The defining property connecting scores to intervals: for all y,
// Score(est, y) <= delta  <=>  y in Invert(est, delta) (up to the >= 1
// flooring of the q-error convention). This is what makes conformal
// calibration valid for every scoring function.
class ScoreInversionProperty
    : public ::testing::TestWithParam<ScoreKind> {};

TEST_P(ScoreInversionProperty, ScoreLeDeltaIffInsideInterval) {
  auto scoring = MakeScoring(GetParam());
  Rng rng(61);
  for (int trial = 0; trial < 2000; ++trial) {
    // Cardinalities >= 1 so the q-error flooring is inactive.
    double est = 1.0 + rng.NextDouble() * 10000.0;
    double y = 1.0 + rng.NextDouble() * 10000.0;
    double delta = scoring->Score(est, 1.0 + rng.NextDouble() * 10000.0);
    Interval iv = scoring->Invert(est, delta);
    const bool inside = iv.Contains(y);
    const bool small_score = scoring->Score(est, y) <= delta + 1e-9;
    EXPECT_EQ(inside, small_score)
        << "est=" << est << " y=" << y << " delta=" << delta << " ["
        << iv.lo << "," << iv.hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(AllScores, ScoreInversionProperty,
                         ::testing::Values(ScoreKind::kResidual,
                                           ScoreKind::kQError,
                                           ScoreKind::kRelative));

TEST(IntervalTest, BasicOps) {
  Interval iv{2.0, 5.0};
  EXPECT_DOUBLE_EQ(iv.width(), 3.0);
  EXPECT_TRUE(iv.Contains(2.0));
  EXPECT_TRUE(iv.Contains(5.0));
  EXPECT_FALSE(iv.Contains(5.1));
}

TEST(IntervalTest, ClipToCardinality) {
  Interval iv = ClipToCardinality({-10.0, 2000.0}, 1000.0);
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv.hi, 1000.0);
  // Degenerate after clipping.
  Interval deg = ClipToCardinality({-5.0, -1.0}, 1000.0);
  EXPECT_DOUBLE_EQ(deg.lo, 0.0);
  EXPECT_DOUBLE_EQ(deg.hi, 0.0);
}

TEST(IntervalTest, InfiniteIntervalContainsEverything) {
  Interval iv = Interval::Infinite();
  EXPECT_TRUE(iv.Contains(0.0));
  EXPECT_TRUE(iv.Contains(1e18));
  EXPECT_TRUE(iv.Contains(-1e18));
}

}  // namespace
}  // namespace confcard
