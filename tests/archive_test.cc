#include "common/archive.h"

#include <unistd.h>

#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gbdt/gbdt.h"

namespace confcard {
namespace {

constexpr uint32_t kMagic = 0xABCD1234;
constexpr uint32_t kVersion = 3;

TEST(ArchiveTest, ScalarRoundtrip) {
  ArchiveWriter w(kMagic, kVersion);
  w.WriteU32(7);
  w.WriteU64(1ull << 40);
  w.WriteI32(-5);
  w.WriteDouble(3.25);
  w.WriteFloat(-1.5f);
  w.WriteString("hello");

  ArchiveReader r(w.bytes(), kMagic, kVersion);
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_EQ(r.ReadU64(), 1ull << 40);
  EXPECT_EQ(r.ReadI32(), -5);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.25);
  EXPECT_FLOAT_EQ(r.ReadFloat(), -1.5f);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_TRUE(r.status().ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ArchiveTest, VectorRoundtrip) {
  ArchiveWriter w(kMagic, kVersion);
  w.WriteDoubleVec({1.0, 2.0, 3.0});
  w.WriteFloatVec({});
  ArchiveReader r(w.bytes(), kMagic, kVersion);
  auto dv = r.ReadDoubleVec();
  ASSERT_EQ(dv.size(), 3u);
  EXPECT_DOUBLE_EQ(dv[1], 2.0);
  EXPECT_TRUE(r.ReadFloatVec().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ArchiveTest, MagicMismatchRejected) {
  ArchiveWriter w(kMagic, kVersion);
  ArchiveReader r(w.bytes(), kMagic + 1, kVersion);
  EXPECT_FALSE(r.status().ok());
}

TEST(ArchiveTest, VersionMismatchRejected) {
  ArchiveWriter w(kMagic, kVersion);
  ArchiveReader r(w.bytes(), kMagic, kVersion + 1);
  EXPECT_FALSE(r.status().ok());
}

TEST(ArchiveTest, TruncationIsStickyError) {
  ArchiveWriter w(kMagic, kVersion);
  w.WriteU32(1);
  std::vector<uint8_t> bytes = w.bytes();
  bytes.pop_back();
  ArchiveReader r(std::move(bytes), kMagic, kVersion);
  (void)r.ReadU32();  // overruns
  EXPECT_FALSE(r.status().ok());
  // Further reads stay failed and return zero values.
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_FALSE(r.status().ok());
}

TEST(ArchiveTest, FileRoundtrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "confcard_archive_test.bin";
  ArchiveWriter w(kMagic, kVersion);
  w.WriteString("persisted");
  ASSERT_TRUE(w.SaveToFile(path.string()).ok());
  auto r = ArchiveReader::FromFile(path.string(), kMagic, kVersion);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ReadString(), "persisted");
  std::filesystem::remove(path);
}

TEST(ArchiveTest, MissingFileIsIOError) {
  auto r = ArchiveReader::FromFile("/nonexistent/archive.bin", kMagic,
                                   kVersion);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

class GbdtPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Each gtest case runs as its own ctest process; a fixed name would
    // let parallel cases of this fixture clobber each other's file.
    path_ = (std::filesystem::temp_directory_path() /
             ("confcard_gbdt_test_" + std::to_string(::getpid()) + ".bin"))
                .string();
    Rng rng(3);
    const size_t n = 2000;
    X_.reserve(2 * n);
    y_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      float a = static_cast<float>(rng.NextDouble());
      float b = static_cast<float>(rng.NextDouble());
      X_.push_back(a);
      X_.push_back(b);
      y_.push_back(std::sin(5.0 * a) + 2.0 * b);
    }
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  std::vector<float> X_;
  std::vector<double> y_;
};

TEST_F(GbdtPersistenceTest, SaveLoadPredictsIdentically) {
  gbdt::GbdtRegressor model;
  ASSERT_TRUE(model.Fit(X_, 2, y_).ok());
  ASSERT_TRUE(model.SaveToFile(path_).ok());

  auto loaded = gbdt::GbdtRegressor::LoadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->fitted());
  EXPECT_EQ(loaded->config().num_trees, model.config().num_trees);

  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> x = {static_cast<float>(rng.NextDouble()),
                            static_cast<float>(rng.NextDouble())};
    EXPECT_DOUBLE_EQ(model.Predict(x), loaded->Predict(x));
  }
}

TEST_F(GbdtPersistenceTest, UnfittedModelRefusesToSave) {
  gbdt::GbdtRegressor model;
  EXPECT_EQ(model.SaveToFile(path_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(GbdtPersistenceTest, CorruptFileRejected) {
  gbdt::GbdtRegressor model;
  ASSERT_TRUE(model.Fit(X_, 2, y_).ok());
  ASSERT_TRUE(model.SaveToFile(path_).ok());
  // Truncate the file.
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) / 2);
  auto loaded = gbdt::GbdtRegressor::LoadFromFile(path_);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace confcard
