// Chrome-trace timeline exporter tests: the rendered JSON is valid and
// carries one complete ("X") event per span with thread ids and
// thread_name metadata, spans from worker threads get distinct tids, and
// the timeline-only instrumentation gate defaults off.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace.h"

namespace confcard {
namespace obs {
namespace {

const JsonValue* FindEvent(const JsonValue& doc, const std::string& name) {
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr) return nullptr;
  for (const JsonValue& e : events->elements) {
    const JsonValue* n = e.Find("name");
    if (n != nullptr && n->string_value == name) return &e;
  }
  return nullptr;
}

TEST(TraceExportTest, RendersCompleteEventsWithTidsAndNesting) {
  TraceStore::Instance().SetEnabled(true);
  TraceStore::Instance().Clear();
  {
    TraceSpan outer("export.outer");
    outer.SetAttr("n", 3.0);
    {
      TraceSpan inner("export.inner");
    }
  }
  const std::string json = RenderChromeTrace();
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("displayTimeUnit")->string_value, "ms");

  const JsonValue* outer = FindEvent(*doc, "export.outer");
  const JsonValue* inner = FindEvent(*doc, "export.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  for (const JsonValue* e : {outer, inner}) {
    EXPECT_EQ(e->Find("ph")->string_value, "X");
    EXPECT_EQ(static_cast<int>(e->Find("pid")->number), 1);
    EXPECT_GE(e->Find("tid")->number, 1.0);
    EXPECT_GE(e->Find("dur")->number, 0.0);
  }
  // Same thread, and the child starts no earlier than its parent.
  EXPECT_EQ(outer->Find("tid")->number, inner->Find("tid")->number);
  EXPECT_GE(inner->Find("ts")->number, outer->Find("ts")->number);
  EXPECT_DOUBLE_EQ(outer->Find("args")->Find("n")->number, 3.0);

  TraceStore::Instance().SetEnabled(false);
  TraceStore::Instance().Clear();
}

TEST(TraceExportTest, WorkerThreadsGetDistinctTidsAndLabels) {
  TraceStore::Instance().SetEnabled(true);
  TraceStore::Instance().Clear();
  SetTraceThreadLabel("main-test");
  {
    TraceSpan main_span("export.main");
  }
  std::thread worker([] {
    SetTraceThreadLabel("worker-test");
    TraceSpan span("export.worker");
  });
  worker.join();
  const std::string json = RenderChromeTrace();
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());

  const JsonValue* main_ev = FindEvent(*doc, "export.main");
  const JsonValue* worker_ev = FindEvent(*doc, "export.worker");
  ASSERT_NE(main_ev, nullptr);
  ASSERT_NE(worker_ev, nullptr);
  EXPECT_NE(main_ev->Find("tid")->number, worker_ev->Find("tid")->number);

  // One thread_name metadata event per label, matching the span tids.
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  double main_label_tid = -1.0, worker_label_tid = -1.0;
  for (const JsonValue& e : events->elements) {
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->string_value != "M") continue;
    ASSERT_EQ(e.Find("name")->string_value, "thread_name");
    const std::string& label = e.Find("args")->Find("name")->string_value;
    if (label == "main-test") main_label_tid = e.Find("tid")->number;
    if (label == "worker-test") worker_label_tid = e.Find("tid")->number;
  }
  EXPECT_EQ(main_label_tid, main_ev->Find("tid")->number);
  EXPECT_EQ(worker_label_tid, worker_ev->Find("tid")->number);

  TraceStore::Instance().SetEnabled(false);
  TraceStore::Instance().Clear();
}

TEST(TraceExportTest, WriteChromeTraceRoundTripsThroughDisk) {
  TraceStore::Instance().SetEnabled(true);
  TraceStore::Instance().Clear();
  {
    TraceSpan span("export.disk");
  }
  const std::string path = ::testing::TempDir() + "trace_export.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::ifstream in(path, std::ios::binary);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(FindEvent(*doc, "export.disk"), nullptr);
  std::remove(path.c_str());

  EXPECT_FALSE(WriteChromeTrace("/nonexistent-dir-xyz/trace.json").ok());
  TraceStore::Instance().SetEnabled(false);
  TraceStore::Instance().Clear();
}

TEST(TraceExportTest, TimelineGateDefaultsOffAndToggles) {
  // Off by default: plain runs must not grow new span trees (the run
  // artifact serializes every root, so artifact bytes depend on this).
  EXPECT_FALSE(TraceTimelineEnabled());
  SetTraceTimelineEnabled(true);
  EXPECT_TRUE(TraceTimelineEnabled());
  SetTraceTimelineEnabled(false);
  EXPECT_FALSE(TraceTimelineEnabled());
}

TEST(TraceExportTest, EmptyStoreRendersValidEmptyTrace) {
  TraceStore::Instance().Clear();
  const std::string json = RenderChromeTrace();
  auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Find("traceEvents"), nullptr);
}

// End to end: a real bench run with CONFCARD_TRACE_JSON set emits a
// valid Chrome-trace file covering fold training and batched inference.
TEST(TraceSmokeTest, BenchEmitsChromeTraceWithFoldAndInferSpans) {
#ifndef CONFCARD_TRACE_BENCH_PATH
  GTEST_SKIP() << "bench path not configured";
#else
  const std::string path = ::testing::TempDir() + "bench_trace.json";
  std::remove(path.c_str());
  const std::string cmd = std::string("CONFCARD_SCALE=0.01 ") +
                          "CONFCARD_TRACE_JSON=" + path + " " +
                          CONFCARD_TRACE_BENCH_PATH + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(path, std::ios::binary);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_NE(FindEvent(*doc, "fold.train"), nullptr);
  const JsonValue* batch = FindEvent(*doc, "infer.batch");
  const JsonValue* chunk = FindEvent(*doc, "infer.batch.chunk");
  ASSERT_NE(batch, nullptr);
  ASSERT_NE(chunk, nullptr);
  // Nesting: the chunk lies inside its batch on the timeline.
  EXPECT_GE(chunk->Find("ts")->number, batch->Find("ts")->number);
  // Every event is well formed.
  for (const JsonValue& e : doc->Find("traceEvents")->elements) {
    const std::string& ph = e.Find("ph")->string_value;
    ASSERT_TRUE(ph == "X" || ph == "M");
    if (ph == "X") {
      EXPECT_GE(e.Find("dur")->number, 0.0);
    }
  }
  std::remove(path.c_str());
#endif
}

}  // namespace
}  // namespace obs
}  // namespace confcard
