#include "common/status.h"

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "missing");
  // Copy assignment, including self-consistency after reassign.
  Status u;
  u = s;
  EXPECT_EQ(u.message(), "missing");
  u = Status::OK();
  EXPECT_TRUE(u.ok());
}

TEST(StatusTest, MovePreservesState) {
  Status s = Status::IOError("disk");
  Status t = std::move(s);
  EXPECT_EQ(t.code(), StatusCode::kIOError);
  EXPECT_EQ(t.message(), "disk");
}

TEST(StatusTest, SelfCopyAssignIsSafe) {
  Status s = Status::NotFound("missing");
  Status* alias = &s;  // defeat -Wself-assign without changing semantics
  s = *alias;
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing");
}

TEST(StatusTest, MovedFromStatusIsReassignable) {
  Status s = Status::Internal("boom");
  Status t = std::move(s);
  s = Status::InvalidArgument("again");  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "again");
  EXPECT_EQ(t.message(), "boom");
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, CopyAndMovePreserveBothStates) {
  Result<std::string> value = std::string("payload");
  Result<std::string> value_copy = value;
  ASSERT_TRUE(value_copy.ok());
  EXPECT_EQ(value_copy.value(), "payload");
  EXPECT_EQ(value.value(), "payload");  // source untouched by the copy

  Result<std::string> error = Status::NotFound("gone");
  Result<std::string> error_moved = std::move(error);
  ASSERT_FALSE(error_moved.ok());
  EXPECT_EQ(error_moved.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(error_moved.status().message(), "gone");
}

TEST(ResultTest, AssignmentFlipsBetweenValueAndError) {
  Result<int> r = 7;
  r = Status::IOError("flip");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  r = Result<int>(9);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  CONFCARD_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UseAssign(int x) {
  CONFCARD_ASSIGN_OR_RETURN(int d, Doubled(x));
  return d + 1;
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(macros::Chain(1).ok());
  EXPECT_EQ(macros::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturn) {
  Result<int> ok = macros::UseAssign(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  Result<int> bad = macros::UseAssign(-5);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace confcard
