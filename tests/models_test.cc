// Learned-model behaviour tests: MSCN and LW-NN must actually learn
// (beating trivial baselines on held-out queries), honor the CQR loss
// hook, and clone reproducibly.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "common/stats.h"
#include "data/generators.h"
#include "query/workload.h"

namespace confcard {
namespace {

struct ModelFixture {
  Table table;
  Workload train;
  Workload test;
};

ModelFixture MakeFixture(uint64_t seed = 31) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 8000;
  spec.seed = seed;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 6;
  a.zipf_skew = 1.0;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 100.0;
  ColumnSpec c;
  c.name = "c";
  c.domain_size = 8;
  c.parent = 0;
  c.correlation = 0.8;
  spec.columns = {a, b, c};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = 800;
  wc.seed = seed + 1;
  Workload train = GenerateWorkload(table, wc).value();
  wc.seed = seed + 2;
  wc.num_queries = 300;
  Workload test = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(train), std::move(test)};
}

double MedianQError(const CardinalityEstimator& model,
                    const Workload& wl) {
  std::vector<double> qs;
  for (const LabeledQuery& lq : wl) {
    double e = std::max(model.EstimateCardinality(lq.query), 1.0);
    double t = std::max(lq.cardinality, 1.0);
    qs.push_back(std::max(e / t, t / e));
  }
  return Percentile(qs, 50.0);
}

TEST(MscnTest, TrainsToUsefulAccuracy) {
  ModelFixture s = MakeFixture();
  MscnEstimator::Options opts;
  opts.model.epochs = 25;
  MscnEstimator mscn(opts);
  ASSERT_TRUE(mscn.Train(s.table, s.train).ok());
  // Median q-error well under the "always predict N/2" trivial regime.
  EXPECT_LT(MedianQError(mscn, s.test), 5.0);
}

TEST(MscnTest, EstimatesAreNonNegative) {
  ModelFixture s = MakeFixture(32);
  MscnEstimator mscn;
  ASSERT_TRUE(mscn.Train(s.table, s.train).ok());
  for (const LabeledQuery& lq : s.test) {
    EXPECT_GE(mscn.EstimateCardinality(lq.query), 0.0);
  }
}

TEST(MscnTest, RejectsEmptyWorkload) {
  ModelFixture s = MakeFixture(33);
  MscnEstimator mscn;
  EXPECT_FALSE(mscn.Train(s.table, {}).ok());
}

TEST(MscnTest, DeterministicRetraining) {
  ModelFixture s = MakeFixture(34);
  MscnEstimator a, b;
  ASSERT_TRUE(a.Train(s.table, s.train).ok());
  ASSERT_TRUE(b.Train(s.table, s.train).ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.EstimateCardinality(s.test[i].query),
                     b.EstimateCardinality(s.test[i].query));
  }
}

TEST(MscnTest, CloneUsesFreshSeed) {
  ModelFixture s = MakeFixture(35);
  MscnEstimator proto;
  auto clone = proto.CloneArchitecture(77);
  ASSERT_TRUE(clone->Train(s.table, s.train).ok());
  ASSERT_TRUE(proto.Train(s.table, s.train).ok());
  // Different seeds should give (at least slightly) different estimates.
  bool any_diff = false;
  for (size_t i = 0; i < 10; ++i) {
    if (proto.EstimateCardinality(s.test[i].query) !=
        clone->EstimateCardinality(s.test[i].query)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MscnTest, PinballLossShiftsQuantiles) {
  ModelFixture s = MakeFixture(36);
  MscnEstimator proto;
  auto lo = proto.CloneArchitecture(1);
  lo->SetLoss(LossSpec::Pinball(0.05));
  ASSERT_TRUE(lo->Train(s.table, s.train).ok());
  auto hi = proto.CloneArchitecture(2);
  hi->SetLoss(LossSpec::Pinball(0.95));
  ASSERT_TRUE(hi->Train(s.table, s.train).ok());
  // Upper-quantile head should dominate the lower head on most queries.
  size_t dominated = 0;
  for (const LabeledQuery& lq : s.test) {
    if (hi->EstimateCardinality(lq.query) >=
        lo->EstimateCardinality(lq.query)) {
      ++dominated;
    }
  }
  EXPECT_GT(dominated, s.test.size() * 8 / 10);
}

TEST(MscnTest, WorksWithoutBitmaps) {
  ModelFixture s = MakeFixture(37);
  MscnEstimator::Options opts;
  opts.bitmap_size = 0;
  MscnEstimator mscn(opts);
  ASSERT_TRUE(mscn.Train(s.table, s.train).ok());
  EXPECT_LT(MedianQError(mscn, s.test), 8.0);
}

TEST(LwnnTest, TrainsToUsefulAccuracy) {
  ModelFixture s = MakeFixture(38);
  LwnnEstimator lwnn;
  ASSERT_TRUE(lwnn.Train(s.table, s.train).ok());
  EXPECT_LT(MedianQError(lwnn, s.test), 5.0);
}

TEST(LwnnTest, EstimatesClampedToTableSize) {
  ModelFixture s = MakeFixture(39);
  LwnnEstimator lwnn;
  ASSERT_TRUE(lwnn.Train(s.table, s.train).ok());
  for (const LabeledQuery& lq : s.test) {
    double e = lwnn.EstimateCardinality(lq.query);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, static_cast<double>(s.table.num_rows()));
  }
}

TEST(LwnnTest, FeatureVectorHasHeuristicTail) {
  ModelFixture s = MakeFixture(40);
  LwnnEstimator lwnn;
  ASSERT_TRUE(lwnn.Train(s.table, s.train).ok());
  auto f = lwnn.Features(s.test[0].query);
  // Flat features (5 * 3 + 1) plus AVI and min-sel log features.
  EXPECT_EQ(f.size(), 16u + 2u);
  // Log-selectivity features are non-positive.
  EXPECT_LE(f[16], 0.0f);
  EXPECT_LE(f[17], 0.0f);
}

TEST(LwnnTest, PinballHookWorks) {
  ModelFixture s = MakeFixture(41);
  LwnnEstimator proto;
  auto hi = proto.CloneArchitecture(5);
  hi->SetLoss(LossSpec::Pinball(0.95));
  ASSERT_TRUE(hi->Train(s.table, s.train).ok());
  auto lo = proto.CloneArchitecture(6);
  lo->SetLoss(LossSpec::Pinball(0.05));
  ASSERT_TRUE(lo->Train(s.table, s.train).ok());
  size_t dominated = 0;
  for (const LabeledQuery& lq : s.test) {
    if (hi->EstimateCardinality(lq.query) >=
        lo->EstimateCardinality(lq.query)) {
      ++dominated;
    }
  }
  EXPECT_GT(dominated, s.test.size() * 8 / 10);
}

TEST(LwnnTest, RejectsEmptyWorkload) {
  ModelFixture s = MakeFixture(42);
  LwnnEstimator lwnn;
  EXPECT_FALSE(lwnn.Train(s.table, {}).ok());
}

}  // namespace
}  // namespace confcard
