#include "data/table.h"

#include <gtest/gtest.h>

namespace confcard {
namespace {

Table MakeTestTable() {
  std::vector<Column> cols;
  cols.push_back(Column::Categorical("a", 3, {0, 1, 2}));
  cols.push_back(Column::Numeric("b", {1.5, 2.5, 3.5}));
  return Table::Make("t", std::move(cols)).value();
}

TEST(TableTest, Basics) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.name(), "t");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(t.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 3.5);
}

TEST(TableTest, ColumnLookup) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.ColumnIndex("a"), 0);
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("zzz"), -1);
  EXPECT_EQ(t.ColumnByName("b").name(), "b");
}

TEST(TableTest, RowMaterialization) {
  Table t = MakeTestTable();
  auto row = t.Row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 2.5);
}

TEST(TableTest, RejectsNoColumns) {
  auto r = Table::Make("empty", {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsLengthMismatch) {
  std::vector<Column> cols;
  cols.push_back(Column::Numeric("a", {1, 2}));
  cols.push_back(Column::Numeric("b", {1, 2, 3}));
  auto r = Table::Make("bad", std::move(cols));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("length mismatch"), std::string::npos);
}

TEST(TableTest, RejectsDuplicateNames) {
  std::vector<Column> cols;
  cols.push_back(Column::Numeric("a", {1}));
  cols.push_back(Column::Numeric("a", {2}));
  auto r = Table::Make("bad", std::move(cols));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
}

}  // namespace
}  // namespace confcard
