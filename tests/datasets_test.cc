#include "data/datasets.h"

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(DatasetsTest, DmvShapeMatchesPublished) {
  auto t = MakeDmv(1000);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->name(), "dmv");
  EXPECT_EQ(t->num_rows(), 1000u);
  EXPECT_EQ(t->num_columns(), 11u);
  // 10 categorical + 1 numeric, as in the real DMV table.
  int categorical = 0;
  for (const Column& c : t->columns()) {
    categorical += c.is_categorical() ? 1 : 0;
  }
  EXPECT_EQ(categorical, 10);
}

TEST(DatasetsTest, CensusShape) {
  auto t = MakeCensus(500);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 13u);
}

TEST(DatasetsTest, ForestShapeAllNumeric) {
  auto t = MakeForest(500);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 10u);
  for (const Column& c : t->columns()) {
    EXPECT_FALSE(c.is_categorical()) << c.name();
  }
}

TEST(DatasetsTest, PowerShapeAllNumeric) {
  auto t = MakePower(500);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_columns(), 7u);
  for (const Column& c : t->columns()) {
    EXPECT_FALSE(c.is_categorical()) << c.name();
  }
}

TEST(DatasetsTest, SeedsAreReproducible) {
  auto a = MakeDmv(200, 7);
  auto b = MakeDmv(200, 7);
  auto c = MakeDmv(200, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->column(1).data(), b->column(1).data());
  EXPECT_NE(a->column(1).data(), c->column(1).data());
}

TEST(DatasetsTest, DmvIsSkewed) {
  auto t = MakeDmv(20000).value();
  // record_type has a strongly dominant code (Zipf 1.2 over 4 codes).
  const Column& rt = t.ColumnByName("record_type");
  std::vector<int> counts(4, 0);
  for (double v : rt.data()) counts[static_cast<size_t>(v)]++;
  int mx = std::max(std::max(counts[0], counts[1]),
                    std::max(counts[2], counts[3]));
  EXPECT_GT(mx, 20000 / 3);
}

}  // namespace
}  // namespace confcard
