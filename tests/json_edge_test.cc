// Edge cases of the artifact JSON parser and the SerializeJson
// re-renderer: escape handling, deep nesting, truncated documents,
// duplicate keys, and write -> parse -> serialize -> parse round trips
// (the rewrite path the obsdiff gate test uses to inject synthetic
// regressions).
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace confcard {
namespace {

using obs::JsonValue;
using obs::ParseJson;
using obs::SerializeJson;

TEST(JsonEdgeTest, StringEscapes) {
  Result<JsonValue> v =
      ParseJson("\"a\\nb\\t\\\"q\\\"\\\\\\/\\b\\f\\r\\u0041\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->string_value, "a\nb\t\"q\"\\/\b\f\rA");
}

TEST(JsonEdgeTest, UnicodeEscapeBeyondLatin1DegradesToPlaceholder) {
  Result<JsonValue> v = ParseJson("\"\\u1234\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "?");
}

TEST(JsonEdgeTest, BadEscapesAreErrors) {
  EXPECT_FALSE(ParseJson("\"\\x41\"").ok());   // unknown escape
  EXPECT_FALSE(ParseJson("\"\\u12\"").ok());   // short \u
  EXPECT_FALSE(ParseJson("\"\\u12zz\"").ok());  // non-hex \u
  EXPECT_FALSE(ParseJson("\"dangling\\").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonEdgeTest, DeepNestingParses) {
  const int depth = 200;
  std::string text;
  for (int i = 0; i < depth; ++i) text += '[';
  text += "1";
  for (int i = 0; i < depth; ++i) text += ']';
  Result<JsonValue> v = ParseJson(text);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* cur = &*v;
  for (int i = 0; i < depth; ++i) {
    ASSERT_EQ(cur->kind, JsonValue::Kind::kArray);
    ASSERT_EQ(cur->elements.size(), 1u);
    cur = &cur->elements[0];
  }
  EXPECT_EQ(cur->number, 1.0);
}

TEST(JsonEdgeTest, TruncatedDocumentsAreErrors) {
  EXPECT_FALSE(ParseJson("{\"a\": 1").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("{\"a\":").ok());
  EXPECT_FALSE(ParseJson("[[[").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(JsonEdgeTest, TrailingGarbageAndCommasAreErrors) {
  EXPECT_FALSE(ParseJson("{} x").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
}

TEST(JsonEdgeTest, DuplicateKeysKeepBothMembersFindReturnsFirst) {
  Result<JsonValue> v = ParseJson("{\"a\": 1, \"a\": 2}");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->members.size(), 2u);
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->number, 1.0);
}

TEST(JsonEdgeTest, SerializeRoundTripsMixedDocument) {
  const std::string text =
      "{\"name\":\"run \\\"x\\\"\",\"n\":1234567890123,\"f\":-1.5e-3,"
      "\"flag\":true,\"none\":null,\"arr\":[1,2,[3,{\"k\":\"v\"}]],"
      "\"empty_obj\":{},\"empty_arr\":[]}";
  Result<JsonValue> first = ParseJson(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string rendered = SerializeJson(*first);
  Result<JsonValue> second = ParseJson(rendered);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << "\n" << rendered;
  // %.17g keeps the round trip value-stable.
  EXPECT_EQ(SerializeJson(*second), rendered);
  EXPECT_EQ(second->Find("name")->string_value, "run \"x\"");
  EXPECT_EQ(second->Find("n")->number, 1234567890123.0);
  EXPECT_DOUBLE_EQ(second->Find("f")->number, -1.5e-3);
  EXPECT_TRUE(second->Find("flag")->bool_value);
  EXPECT_EQ(second->Find("none")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(second->Find("arr")->elements[2].elements[1].Find("k")
                ->string_value,
            "v");
}

TEST(JsonEdgeTest, SerializePreservesDuplicateKeysAndOrder) {
  Result<JsonValue> v = ParseJson("{\"b\":2,\"a\":1,\"b\":3}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(SerializeJson(*v), "{\"b\":2,\"a\":1,\"b\":3}");
}

TEST(JsonEdgeTest, SerializeEscapesControlCharacters) {
  JsonValue v;
  v.kind = JsonValue::Kind::kString;
  v.string_value = std::string("a\001b\n", 4);
  const std::string rendered = SerializeJson(v);
  EXPECT_EQ(rendered, "\"a\\u0001b\\n\"");
  Result<JsonValue> back = ParseJson(rendered);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->string_value, v.string_value);
}

}  // namespace
}  // namespace confcard
