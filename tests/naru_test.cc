// Naru behaviour tests: the MADE factorization must reproduce marginals
// and conditionals of small tables, and progressive sampling must answer
// point/range queries with sane, deterministic selectivities.
#include <cmath>

#include <gtest/gtest.h>

#include "ce/naru.h"
#include "common/stats.h"
#include "data/generators.h"
#include "exec/scan.h"
#include "query/workload.h"

namespace confcard {
namespace {

NaruConfig FastConfig() {
  NaruConfig cfg;
  cfg.hidden = 48;
  cfg.epochs = 10;
  cfg.num_samples = 64;
  cfg.max_train_rows = 20000;
  return cfg;
}

TEST(NaruTest, LearnsMarginalOfSingleColumn) {
  // One skewed categorical column: the estimate for A=v should match the
  // empirical frequency closely.
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 8000;
  spec.seed = 51;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  a.zipf_skew = 1.2;
  spec.columns = {a};
  Table t = GenerateTable(spec).value();

  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());
  for (int v = 0; v < 5; ++v) {
    Query q;
    q.predicates = {Predicate::Eq(0, static_cast<double>(v))};
    double truth = static_cast<double>(CountMatches(t, q)) / 8000.0;
    double est = naru.EstimateSelectivity(q);
    EXPECT_NEAR(est, truth, 0.05) << "code " << v;
  }
}

TEST(NaruTest, CapturesStrongCorrelation) {
  // b = f(a) deterministically. An independence model would estimate
  // P(a)P(b); Naru should estimate close to P(a) for consistent pairs
  // and close to 0 for inconsistent pairs.
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 8000;
  spec.seed = 52;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 4;
  ColumnSpec b;
  b.name = "b";
  b.domain_size = 4;
  b.parent = 0;
  b.correlation = 1.0;
  spec.columns = {a, b};
  Table t = GenerateTable(spec).value();

  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());

  // Consistent pair from row 0.
  Query consistent;
  consistent.predicates = {Predicate::Eq(0, t.At(0, 0)),
                           Predicate::Eq(1, t.At(0, 1))};
  double truth = static_cast<double>(CountMatches(t, consistent)) / 8000.0;
  EXPECT_NEAR(naru.EstimateSelectivity(consistent), truth, 0.08);

  // Inconsistent pair: same a, different b.
  double wrong_b = std::fmod(t.At(0, 1) + 1.0, 4.0);
  Query inconsistent;
  inconsistent.predicates = {Predicate::Eq(0, t.At(0, 0)),
                             Predicate::Eq(1, wrong_b)};
  EXPECT_LT(naru.EstimateSelectivity(inconsistent), truth / 3.0 + 0.02);
}

TEST(NaruTest, RangeQueriesViaProgressiveSampling) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 10000;
  spec.seed = 53;
  ColumnSpec a;
  a.name = "a";
  a.kind = ColumnKind::kNumeric;
  a.num_min = 0.0;
  a.num_max = 100.0;
  spec.columns = {a};
  Table t = GenerateTable(spec).value();

  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());
  Query q;
  q.predicates = {Predicate::Between(0, 20.0, 60.0)};
  double truth = static_cast<double>(CountMatches(t, q)) / 10000.0;
  // Discretized bins cap resolution; allow generous slack.
  EXPECT_NEAR(naru.EstimateSelectivity(q), truth, 0.1);
}

TEST(NaruTest, UnconstrainedQueryIsFullTable) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 1000;
  spec.seed = 54;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 3;
  spec.columns = {a};
  Table t = GenerateTable(spec).value();
  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());
  EXPECT_DOUBLE_EQ(naru.EstimateCardinality(Query{}), 1000.0);
}

TEST(NaruTest, ImpossiblePredicateIsZero) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 1000;
  spec.seed = 55;
  ColumnSpec a;
  a.name = "a";
  a.kind = ColumnKind::kNumeric;
  a.num_min = 0.0;
  a.num_max = 1.0;
  spec.columns = {a};
  Table t = GenerateTable(spec).value();
  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());
  Query q;
  q.predicates = {Predicate::Between(0, 100.0, 200.0)};
  EXPECT_DOUBLE_EQ(naru.EstimateSelectivity(q), 0.0);
}

TEST(NaruTest, ConflictingPredicatesOnSameColumnIntersect) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 2000;
  spec.seed = 56;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 10;
  spec.columns = {a};
  Table t = GenerateTable(spec).value();
  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());
  Query q;
  q.predicates = {Predicate::Eq(0, 2.0), Predicate::Eq(0, 3.0)};
  EXPECT_DOUBLE_EQ(naru.EstimateSelectivity(q), 0.0);
}

TEST(NaruTest, InferenceIsDeterministic) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 3000;
  spec.seed = 57;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 6;
  ColumnSpec b;
  b.name = "b";
  b.domain_size = 6;
  spec.columns = {a, b};
  Table t = GenerateTable(spec).value();
  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());
  Query q;
  q.predicates = {Predicate::Eq(0, 0.0), Predicate::Eq(1, 1.0)};
  EXPECT_DOUBLE_EQ(naru.EstimateSelectivity(q),
                   naru.EstimateSelectivity(q));
}

TEST(NaruTest, RejectsEmptyTable) {
  std::vector<Column> cols;
  cols.push_back(Column::Numeric("v", {}));
  Table t = Table::Make("t", std::move(cols)).value();
  NaruEstimator naru(FastConfig());
  EXPECT_FALSE(naru.Train(t).ok());
}

TEST(NaruTest, MoreAccurateThanIndependenceOnCorrelatedWorkload) {
  // The headline property the paper relies on: the data-driven model
  // dominates independence-based estimation under correlation.
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 10000;
  spec.seed = 58;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 8;
  a.zipf_skew = 0.8;
  ColumnSpec b;
  b.name = "b";
  b.domain_size = 8;
  b.parent = 0;
  b.correlation = 0.95;
  spec.columns = {a, b};
  Table t = GenerateTable(spec).value();

  NaruEstimator naru(FastConfig());
  ASSERT_TRUE(naru.Train(t).ok());

  WorkloadConfig wc;
  wc.num_queries = 150;
  wc.min_predicates = 2;
  wc.max_predicates = 2;
  wc.seed = 59;
  Workload wl = GenerateWorkload(t, wc).value();

  std::vector<double> naru_q;
  for (const LabeledQuery& lq : wl) {
    double e = std::max(naru.EstimateCardinality(lq.query), 1.0);
    double truth = std::max(lq.cardinality, 1.0);
    naru_q.push_back(std::max(e / truth, truth / e));
  }
  EXPECT_LT(Percentile(naru_q, 50.0), 2.0);
}

}  // namespace
}  // namespace confcard
