#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextUint64InRange) {
  Rng rng(1);
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(n), n);
    }
  }
}

TEST(RngTest, NextInt64Bounds) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Degenerate single-point range.
  EXPECT_EQ(rng.NextInt64(3, 3), 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BoolProbability) {
  Rng rng(5);
  int t = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) t += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(t) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(6);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.NextCategorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(8);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(ZipfDistributionTest, UniformWhenSkewZero) {
  ZipfDistribution z(4, 0.0);
  for (uint64_t k = 0; k < 4; ++k) EXPECT_NEAR(z.Pmf(k), 0.25, 1e-12);
}

TEST(ZipfDistributionTest, PmfMonotoneDecreasing) {
  ZipfDistribution z(10, 1.2);
  for (uint64_t k = 1; k < 10; ++k) EXPECT_LT(z.Pmf(k), z.Pmf(k - 1));
}

TEST(ZipfDistributionTest, PmfSumsToOne) {
  ZipfDistribution z(17, 0.8);
  double total = 0.0;
  for (uint64_t k = 0; k < 17; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistributionTest, EmpiricalMatchesPmf) {
  ZipfDistribution z(5, 1.0);
  Rng rng(10);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (uint64_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.Pmf(k), 0.01);
  }
}

TEST(ZipfDistributionTest, SingleElementDomain) {
  ZipfDistribution z(1, 2.0);
  Rng rng(11);
  EXPECT_EQ(z.Sample(rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

TEST(DiscreteDistributionTest, MatchesWeights) {
  DiscreteDistribution d({2.0, 6.0});
  Rng rng(12);
  int ones = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ones += d.Sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

// Parameterized determinism sweep: the full stack of samplers must be
// reproducible for any seed (the repo-wide reproducibility invariant).
class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, AllSamplersDeterministic) {
  const uint64_t seed = GetParam();
  Rng a(seed), b(seed);
  ZipfDistribution z(13, 1.1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextUint64(100), b.NextUint64(100));
    EXPECT_EQ(a.NextDouble(), b.NextDouble());
    EXPECT_EQ(a.NextGaussian(), b.NextGaussian());
    EXPECT_EQ(z.Sample(a), z.Sample(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1234567,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace confcard
