// Full-pipeline integration: the DMV-like dataset, a trained MSCN, all
// four PI methods of the paper, and the qualitative figure-1 properties
// (coverage ~ 1-alpha; CQR/LW adaptivity; clipping). Kept small enough
// for CI (a few seconds) — the bench binaries run the full-scale
// versions.
#include <gtest/gtest.h>

#include "ce/mscn.h"
#include "ce/naru.h"
#include "data/datasets.h"
#include "harness/single_table.h"
#include "query/workload.h"

namespace confcard {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(MakeDmv(12000, 7).value());
    WorkloadConfig wc;
    wc.num_queries = 500;
    wc.max_selectivity = 0.3;
    wc.seed = 11;
    train_ = new Workload(GenerateWorkload(*table_, wc).value());
    wc.seed = 12;
    calib_ = new Workload(GenerateWorkload(*table_, wc).value());
    wc.seed = 13;
    wc.num_queries = 400;
    test_ = new Workload(GenerateWorkload(*table_, wc).value());

    MscnEstimator::Options mo;
    mo.model.epochs = 25;
    mscn_ = new MscnEstimator(mo);
    ASSERT_TRUE(mscn_->Train(*table_, *train_).ok());
  }
  static void TearDownTestSuite() {
    delete mscn_;
    delete test_;
    delete calib_;
    delete train_;
    delete table_;
  }

  SingleTableHarness MakeHarness(
      SingleTableHarness::Options opts = {}) const {
    return SingleTableHarness(*table_, *train_, *calib_, *test_, opts);
  }

  static Table* table_;
  static Workload* train_;
  static Workload* calib_;
  static Workload* test_;
  static MscnEstimator* mscn_;
};

Table* IntegrationTest::table_ = nullptr;
Workload* IntegrationTest::train_ = nullptr;
Workload* IntegrationTest::calib_ = nullptr;
Workload* IntegrationTest::test_ = nullptr;
MscnEstimator* IntegrationTest::mscn_ = nullptr;

TEST_F(IntegrationTest, ScpCoverageNearNominal) {
  auto h = MakeHarness();
  MethodResult r = h.RunScp(*mscn_);
  EXPECT_GE(r.coverage, 0.85);
  EXPECT_LE(r.coverage, 1.0);
  EXPECT_LT(r.mean_width_sel, 0.6);
}

TEST_F(IntegrationTest, LwScpMedianTighterThanScp) {
  auto h = MakeHarness();
  MethodResult scp = h.RunScp(*mscn_);
  MethodResult lw = h.RunLwScp(*mscn_);
  EXPECT_GE(lw.coverage, 0.82);
  EXPECT_LT(lw.median_width_sel, scp.median_width_sel * 1.3);
}

TEST_F(IntegrationTest, CqrCoverageAndAdaptivity) {
  auto h = MakeHarness();
  MethodResult r = h.RunCqr(*mscn_);
  EXPECT_GE(r.coverage, 0.82);
  // Adaptive: width distribution has real spread.
  EXPECT_GT(r.p90_width_sel, r.median_width_sel * 1.2);
}

TEST_F(IntegrationTest, CoverageIncreasesWithConfidenceLevel) {
  SingleTableHarness::Options o1, o2;
  o1.alpha = 0.2;
  o2.alpha = 0.05;
  MethodResult loose = MakeHarness(o1).RunScp(*mscn_);
  MethodResult tight = MakeHarness(o2).RunScp(*mscn_);
  EXPECT_GE(tight.coverage, loose.coverage - 0.02);
  EXPECT_GE(tight.mean_width_sel, loose.mean_width_sel);
}

TEST_F(IntegrationTest, NaruPipeline) {
  NaruConfig nc;
  nc.epochs = 4;
  nc.num_samples = 24;
  nc.max_train_rows = 12000;
  NaruEstimator naru(nc);
  ASSERT_TRUE(naru.Train(*table_).ok());
  auto h = MakeHarness();
  MethodResult scp = h.RunScp(naru);
  EXPECT_GE(scp.coverage, 0.85);
  MethodResult jk = h.RunJkCvFixedModel(naru);
  EXPECT_GE(jk.coverage, 0.85);
}

TEST_F(IntegrationTest, ShiftedWorkloadLosesCoverage) {
  // Figure 11: calibrate on data-centered queries, test on uniform
  // random queries — the exchangeability violation degrades coverage
  // and/or blows up widths; here we check coverage drop for fixed-width
  // S-CP with the same delta.
  WorkloadConfig shifted;
  shifted.num_queries = 400;
  shifted.center_mode = CenterMode::kUniform;
  shifted.min_predicates = 2;
  shifted.max_predicates = 4;
  shifted.seed = 99;
  Workload shifted_test = GenerateWorkload(*table_, shifted).value();

  SingleTableHarness matched(*table_, *train_, *calib_, *test_, {});
  SingleTableHarness mismatched(*table_, *train_, *calib_, shifted_test,
                                {});
  MethodResult ok = matched.RunScp(*mscn_);
  MethodResult bad = mismatched.RunScp(*mscn_);
  // The shifted workload is mostly near-empty queries; the model was
  // never trained there, so residual behaviour changes. Either coverage
  // drops or stays by luck; assert the qualitative gap in median
  // q-error of the underlying model instead of a brittle coverage bound.
  EXPECT_GT(bad.mean_qerror, ok.mean_qerror);
}

}  // namespace
}  // namespace confcard
