#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {
namespace obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Metrics().ResetForTest();
    TraceStore::Instance().Clear();
    TraceStore::Instance().SetEnabled(false);
  }
  void TearDown() override {
    Metrics().ResetForTest();
    TraceStore::Instance().Clear();
    TraceStore::Instance().SetEnabled(false);
  }
};

TEST_F(ObsTest, CounterIncrementsAndResets) {
  Counter& c = Metrics().GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, RegistryReturnsSameObjectForSameName) {
  Counter& a = Metrics().GetCounter("test.same");
  Counter& b = Metrics().GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST_F(ObsTest, ResetForTestKeepsReferencesValid) {
  Counter& c = Metrics().GetCounter("test.stable");
  c.Increment(7);
  Metrics().ResetForTest();
  // The object survives the reset; only its value is zeroed.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &Metrics().GetCounter("test.stable"));
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  Gauge& g = Metrics().GetGauge("test.gauge");
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(ObsTest, HistogramBucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 1024.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST_F(ObsTest, HistogramSnapshotTracksCountSumMinMax) {
  Histogram& h = Metrics().GetHistogram("test.hist");
  h.Record(10.0);
  h.Record(100.0);
  h.Record(1000.0);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 1110.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 370.0);
}

TEST_F(ObsTest, EmptyHistogramSnapshotIsZeroed) {
  Histogram& h = Metrics().GetHistogram("test.empty_hist");
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 0.0);
}

TEST_F(ObsTest, HistogramPercentilesClampToObservedRange) {
  Histogram& h = Metrics().GetHistogram("test.pct");
  for (int i = 0; i < 100; ++i) h.Record(100.0);
  Histogram::Snapshot s = h.TakeSnapshot();
  // All mass in one bucket: every percentile collapses to the sample.
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 100.0);
}

TEST_F(ObsTest, HistogramPercentilesAreMonotone) {
  Histogram& h = Metrics().GetHistogram("test.mono");
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  Histogram::Snapshot s = h.TakeSnapshot();
  double prev = 0.0;
  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const double v = s.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_GE(v, s.min);
    EXPECT_LE(v, s.max);
    prev = v;
  }
  // p50 of 1..1000 lands in the (256, 512] bucket.
  EXPECT_GT(s.Percentile(50.0), 256.0);
  EXPECT_LE(s.Percentile(50.0), 512.0);
}

TEST_F(ObsTest, HistogramIsThreadSafe) {
  Histogram& h = Metrics().GetHistogram("test.threads");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(5.0);
    });
  }
  for (auto& t : threads) t.join();
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(s.sum, 5.0 * kThreads * kPerThread);
}

TEST_F(ObsTest, SnapshotCarriesMeta) {
  Metrics().SetMeta("k", "v");
  Metrics().SetMeta("x", 2.5);
  Metrics().SetMeta("k", "v2");  // last write wins
  MetricsRegistry::Snapshot s = Metrics().TakeSnapshot();
  ASSERT_EQ(s.meta.size(), 2u);
  bool saw_k = false;
  for (const auto& [key, value] : s.meta) {
    if (key == "k") {
      saw_k = true;
      EXPECT_EQ(value, "v2");
    }
  }
  EXPECT_TRUE(saw_k);
}

TEST_F(ObsTest, DisabledSpansAreNotCollected) {
  ASSERT_FALSE(TraceStore::Instance().enabled());
  {
    TraceSpan span("not.collected");
    EXPECT_GE(span.ElapsedMicros(), 0.0);  // timing still works
  }
  EXPECT_EQ(TraceStore::Instance().NumRoots(), 0u);
}

TEST_F(ObsTest, EnabledSpansBuildNestedTree) {
  TraceStore::Instance().SetEnabled(true);
  {
    TraceSpan outer("outer");
    outer.SetAttr("depth", 0.0);
    {
      TraceSpan inner("inner");
      inner.SetAttr("depth", 1.0);
    }
    { TraceSpan sibling("sibling"); }
  }
  ASSERT_EQ(TraceStore::Instance().NumRoots(), 1u);
  TraceStore::Instance().ForEachRoot([](const SpanNode& root) {
    EXPECT_EQ(root.name, "outer");
    EXPECT_GE(root.duration_micros, 0.0);
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0]->name, "inner");
    EXPECT_EQ(root.children[1]->name, "sibling");
    // Children close before the parent, so their durations fit inside.
    EXPECT_LE(root.children[0]->duration_micros, root.duration_micros);
    ASSERT_EQ(root.children[0]->attrs.size(), 1u);
    EXPECT_EQ(root.children[0]->attrs[0].first, "depth");
    EXPECT_DOUBLE_EQ(root.children[0]->attrs[0].second, 1.0);
  });
}

TEST_F(ObsTest, SequentialRootsAccumulate) {
  TraceStore::Instance().SetEnabled(true);
  { TraceSpan a("a"); }
  { TraceSpan b("b"); }
  EXPECT_EQ(TraceStore::Instance().NumRoots(), 2u);
}

TEST_F(ObsTest, ScopedTimerWritesMillisAndHistogram) {
  Histogram& h = Metrics().GetHistogram("test.scoped");
  double millis = -1.0;
  { ScopedTimer timer("scoped", &millis, &h, 2.0); }
  EXPECT_GE(millis, 0.0);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 1u);
  // The histogram sample is micros / divisor.
  EXPECT_NEAR(s.sum, millis * 1000.0 / 2.0, millis * 1000.0 * 0.5 + 1.0);
}

TEST_F(ObsTest, JsonWriterProducesParseableDocument) {
  JsonWriter w;
  w.BeginObject()
      .Key("name")
      .String("a \"quoted\" \n value")
      .Key("n")
      .Number(1.5)
      .Key("inf")
      .Number(std::numeric_limits<double>::infinity())
      .Key("i")
      .Int(42)
      .Key("flag")
      .Bool(true)
      .Key("arr")
      .BeginArray()
      .Number(1.0)
      .Number(2.0)
      .EndArray()
      .EndObject();
  Result<JsonValue> doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("name")->string_value, "a \"quoted\" \n value");
  EXPECT_DOUBLE_EQ(doc->Find("n")->number, 1.5);
  // Non-finite serializes as null to keep the document standard JSON.
  EXPECT_EQ(doc->Find("inf")->kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(doc->Find("i")->number, 42.0);
  EXPECT_TRUE(doc->Find("flag")->bool_value);
  ASSERT_EQ(doc->Find("arr")->elements.size(), 2u);
  EXPECT_DOUBLE_EQ(doc->Find("arr")->elements[1].number, 2.0);
}

TEST_F(ObsTest, JsonParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{}extra").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{'single': 1}").ok());
  EXPECT_TRUE(ParseJson(" { \"a\" : [ null , false ] } ").ok());
}

TEST_F(ObsTest, RenderRunArtifactContainsRegistryAndSpans) {
  TraceStore::Instance().SetEnabled(true);
  Metrics().GetCounter("test.events").Increment(3);
  Metrics().GetGauge("test.level").Set(0.5);
  Metrics().GetHistogram("test.lat_us").Record(123.0);
  Metrics().SetMeta("scale", 1.0);
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  const std::string text = RenderRunArtifact("unit");
  Result<JsonValue> doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const JsonValue* run = doc->Find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->Find("name")->string_value, "unit");
  EXPECT_GE(run->Find("wall_time_seconds")->number, 0.0);
  ASSERT_NE(run->Find("meta"), nullptr);
  EXPECT_NE(run->Find("meta")->Find("scale"), nullptr);

  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("test.events")->number, 3.0);

  const JsonValue* hist = doc->Find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* lat = hist->Find("test.lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(lat->Find("min")->number, 123.0);
  ASSERT_NE(lat->Find("buckets"), nullptr);
  EXPECT_GE(lat->Find("buckets")->elements.size(), 1u);

  const JsonValue* spans = doc->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->elements.size(), 1u);
  const JsonValue& root = spans->elements[0];
  EXPECT_EQ(root.Find("name")->string_value, "outer");
  EXPECT_GE(root.Find("dur_us")->number, 0.0);
  ASSERT_EQ(root.Find("children")->elements.size(), 1u);
  EXPECT_EQ(root.Find("children")->elements[0].Find("name")->string_value,
            "inner");

  const JsonValue* summaries = doc->Find("span_summaries");
  ASSERT_NE(summaries, nullptr);
  const JsonValue* outer_sum = summaries->Find("outer");
  ASSERT_NE(outer_sum, nullptr);
  EXPECT_DOUBLE_EQ(outer_sum->Find("count")->number, 1.0);
}

TEST_F(ObsTest, WriteRunArtifactRoundtrips) {
  Metrics().GetCounter("test.events").Increment();
  const auto path =
      std::filesystem::temp_directory_path() / "confcard_obs_test.json";
  Status st = WriteRunArtifact(path.string(), "roundtrip");
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Result<JsonValue> doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("run")->Find("name")->string_value, "roundtrip");
  std::filesystem::remove(path);
}

TEST_F(ObsTest, WriteRunArtifactFailsOnBadPath) {
  Status st = WriteRunArtifact("/nonexistent-dir/x/y.json", "bad");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace obs
}  // namespace confcard
