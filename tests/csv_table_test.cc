#include "data/csv_table.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace confcard {
namespace {

class CsvTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix keeps parallel ctest cases of this fixture from
    // clobbering each other's file.
    path_ = std::filesystem::temp_directory_path() /
            ("confcard_csv_table_test_" + std::to_string(::getpid()) +
             ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::filesystem::path path_;
};

TEST_F(CsvTableTest, InfersNumericAndCategorical) {
  WriteFile("age,city,score\n31,nyc,1.5\n45,sf,2.25\n31,nyc,-3\n");
  auto loaded = LoadTableFromCsv(path_.string(), "people");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& t = loaded->table;
  EXPECT_EQ(t.name(), "people");
  EXPECT_EQ(t.num_rows(), 3u);
  ASSERT_EQ(t.num_columns(), 3u);
  EXPECT_FALSE(t.column(0).is_categorical());
  EXPECT_TRUE(t.column(1).is_categorical());
  EXPECT_FALSE(t.column(2).is_categorical());
  EXPECT_DOUBLE_EQ(t.At(1, 0), 45.0);
  EXPECT_DOUBLE_EQ(t.At(2, 2), -3.0);
}

TEST_F(CsvTableTest, DictionaryRoundTrip) {
  WriteFile("city\nnyc\nsf\nnyc\nla\n");
  auto loaded = LoadTableFromCsv(path_.string(), "t").value();
  const Column& c = loaded.table.column(0);
  EXPECT_EQ(c.domain_size(), 3);
  // Codes assigned in first-appearance order.
  EXPECT_EQ(loaded.Decode(0, static_cast<int64_t>(c[0])), "nyc");
  EXPECT_EQ(loaded.Decode(0, static_cast<int64_t>(c[1])), "sf");
  EXPECT_EQ(loaded.Decode(0, static_cast<int64_t>(c[3])), "la");
  EXPECT_EQ(loaded.Decode(0, 99), "");
  EXPECT_EQ(loaded.Decode(5, 0), "");
}

TEST_F(CsvTableTest, NoHeaderNamesColumns) {
  WriteFile("1,2\n3,4\n");
  CsvLoadOptions opts;
  opts.has_header = false;
  auto loaded = LoadTableFromCsv(path_.string(), "t", opts).value();
  EXPECT_EQ(loaded.table.column(0).name(), "c0");
  EXPECT_EQ(loaded.table.column(1).name(), "c1");
  EXPECT_EQ(loaded.table.num_rows(), 2u);
}

TEST_F(CsvTableTest, ForceCategoricalOverridesInference) {
  WriteFile("zip\n10001\n94105\n10001\n");
  CsvLoadOptions opts;
  opts.force_categorical = {"zip"};
  auto loaded = LoadTableFromCsv(path_.string(), "t", opts).value();
  EXPECT_TRUE(loaded.table.column(0).is_categorical());
  EXPECT_EQ(loaded.table.column(0).domain_size(), 2);
}

TEST_F(CsvTableTest, EmptyNumericCellsLoadAsZero) {
  // (A fully empty line would be skipped by the reader, so the empty
  // cell sits alongside a second column.)
  WriteFile("x,y\n1,a\n,b\n3,c\n");
  auto loaded = LoadTableFromCsv(path_.string(), "t").value();
  EXPECT_FALSE(loaded.table.column(0).is_categorical());
  EXPECT_DOUBLE_EQ(loaded.table.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(loaded.table.At(2, 0), 3.0);
}

TEST_F(CsvTableTest, MixedColumnFallsBackToCategorical) {
  WriteFile("v\n1\nx\n2\n");
  auto loaded = LoadTableFromCsv(path_.string(), "t").value();
  EXPECT_TRUE(loaded.table.column(0).is_categorical());
  EXPECT_EQ(loaded.table.column(0).domain_size(), 3);
}

TEST_F(CsvTableTest, RejectsRaggedRows) {
  WriteFile("a,b\n1,2\n3\n");
  auto loaded = LoadTableFromCsv(path_.string(), "t");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTableTest, RejectsOversizedDomain) {
  std::string content = "v\n";
  for (int i = 0; i < 50; ++i) {
    content += "label" + std::to_string(i) + "\n";
  }
  WriteFile(content);
  CsvLoadOptions opts;
  opts.max_categorical_domain = 10;
  auto loaded = LoadTableFromCsv(path_.string(), "t", opts);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("max_categorical_domain"),
            std::string::npos);
}

TEST_F(CsvTableTest, MissingFileIsIOError) {
  auto loaded = LoadTableFromCsv("/nonexistent/file.csv", "t");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTableTest, EmptyFileRejected) {
  WriteFile("header_only\n");
  auto loaded = LoadTableFromCsv(path_.string(), "t");
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace confcard
