// Per-query event log: record rendering (derived covered/width/q-error),
// the JSONL write -> read round trip through the test-only sink, the
// crash-truncated-final-line tolerance of ParseJsonl, and the
// RollingWindow that backs the online monitors.
#include "obs/event_log.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/rolling.h"

namespace confcard {
namespace {

using obs::EventLog;
using obs::JsonValue;
using obs::ParseJsonl;
using obs::QueryEvent;
using obs::RenderQueryEvent;
using obs::RollingWindow;

QueryEvent MakeEvent() {
  QueryEvent e;
  e.run_seq = 3;
  e.query_id = 17;
  e.model = "mscn";
  e.method = "lw-s-cp";
  e.alpha = 0.1;
  e.estimate = 120.0;
  e.lo = 80.0;
  e.hi = 240.0;
  e.truth = 150.0;
  e.latency_us = 2.5;
  return e;
}

TEST(RenderQueryEventTest, EmitsAllFieldsAndDerivations) {
  const std::string line = RenderQueryEvent(MakeEvent());
  Result<JsonValue> v = obs::ParseJson(line);
  ASSERT_TRUE(v.ok()) << v.status().ToString() << "\n" << line;
  EXPECT_EQ(v->Find("run")->number, 3.0);
  EXPECT_EQ(v->Find("q")->number, 17.0);
  EXPECT_EQ(v->Find("model")->string_value, "mscn");
  EXPECT_EQ(v->Find("method")->string_value, "lw-s-cp");
  EXPECT_DOUBLE_EQ(v->Find("alpha")->number, 0.1);
  EXPECT_DOUBLE_EQ(v->Find("est")->number, 120.0);
  EXPECT_DOUBLE_EQ(v->Find("lo")->number, 80.0);
  EXPECT_DOUBLE_EQ(v->Find("hi")->number, 240.0);
  EXPECT_DOUBLE_EQ(v->Find("truth")->number, 150.0);
  EXPECT_TRUE(v->Find("covered")->bool_value);
  EXPECT_DOUBLE_EQ(v->Find("width")->number, 160.0);
  // qerr = max(est/truth, truth/est) with both floored at 1.
  EXPECT_DOUBLE_EQ(v->Find("qerr")->number, 150.0 / 120.0);
  EXPECT_DOUBLE_EQ(v->Find("lat_us")->number, 2.5);
}

TEST(RenderQueryEventTest, MissIsUncoveredAndQerrFloorsAtOne) {
  QueryEvent e = MakeEvent();
  e.truth = 300.0;  // above hi
  Result<JsonValue> v = obs::ParseJson(RenderQueryEvent(e));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->Find("covered")->bool_value);

  e.truth = e.estimate;
  v = obs::ParseJson(RenderQueryEvent(e));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Find("qerr")->number, 1.0);

  // Sub-tuple values floor to 1 before the ratio.
  e.estimate = 0.0;
  e.truth = 0.5;
  v = obs::ParseJson(RenderQueryEvent(e));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Find("qerr")->number, 1.0);
}

TEST(RenderQueryEventTest, InfiniteBoundsSerializeAsNull) {
  QueryEvent e = MakeEvent();
  e.lo = -std::numeric_limits<double>::infinity();
  e.hi = std::numeric_limits<double>::infinity();
  const std::string line = RenderQueryEvent(e);
  Result<JsonValue> v = obs::ParseJson(line);
  ASSERT_TRUE(v.ok()) << line;
  EXPECT_EQ(v->Find("lo")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v->Find("hi")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v->Find("width")->kind, JsonValue::Kind::kNull);
  // An infinite interval covers everything.
  EXPECT_TRUE(v->Find("covered")->bool_value);
}

TEST(EventLogTest, DisabledByDefaultAndAppendIsNoOp) {
  EventLog& log = EventLog::Instance();
  ASSERT_FALSE(log.enabled())
      << "CONFCARD_EVENTS_JSONL must be unset for this test binary";
  const uint64_t before = log.appended();
  log.Append(MakeEvent());
  EXPECT_EQ(log.appended(), before);
}

TEST(EventLogTest, RoundTripThroughTestSink) {
  const auto path = std::filesystem::temp_directory_path() /
                    "confcard_event_log_test.jsonl";
  EventLog& log = EventLog::Instance();
  ASSERT_TRUE(log.OpenForTest(path.string()).ok());
  ASSERT_TRUE(log.enabled());
  for (uint64_t i = 0; i < 100; ++i) {
    QueryEvent e = MakeEvent();
    e.query_id = i;
    e.truth = 100.0 + static_cast<double>(i);
    log.Append(e);
  }
  EXPECT_EQ(log.appended(), 100u);
  log.CloseForTest();
  EXPECT_FALSE(log.enabled());

  size_t skipped = 0;
  Result<std::vector<JsonValue>> events =
      obs::ReadJsonlFile(path.string(), &skipped);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(events->size(), 100u);
  for (size_t i = 0; i < events->size(); ++i) {
    EXPECT_EQ((*events)[i].Find("q")->number, static_cast<double>(i));
  }
  std::filesystem::remove(path);
}

TEST(ParseJsonlTest, SkipsBlankLinesAndCrlf) {
  size_t skipped = 0;
  Result<std::vector<JsonValue>> v =
      ParseJsonl("{\"a\":1}\r\n\n  \n{\"a\":2}\n", &skipped);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(v->size(), 2u);
  EXPECT_EQ((*v)[1].Find("a")->number, 2.0);
}

TEST(ParseJsonlTest, TruncatedFinalLineIsSkippedAndCounted) {
  // Crash mid-write: the final record is cut off. The usable prefix
  // must survive.
  size_t skipped = 0;
  Result<std::vector<JsonValue>> v = ParseJsonl(
      "{\"a\":1}\n{\"a\":2}\n{\"a\":3, \"trunc", &skipped);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(v->size(), 2u);
}

TEST(ParseJsonlTest, MalformedMiddleLineIsAnError) {
  Result<std::vector<JsonValue>> v =
      ParseJsonl("{\"a\":1}\nnot json\n{\"a\":2}\n");
  EXPECT_FALSE(v.ok());
}

TEST(ParseJsonlTest, EmptyInputYieldsNoRecords) {
  size_t skipped = 7;
  Result<std::vector<JsonValue>> v = ParseJsonl("", &skipped);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(skipped, 0u);
  EXPECT_TRUE(v->empty());
}

TEST(RollingWindowTest, PartialFillMeanAndSum) {
  RollingWindow w(4);
  EXPECT_EQ(w.Mean(), 0.0);
  w.Push(1.0);
  w.Push(3.0);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_FALSE(w.full());
  EXPECT_DOUBLE_EQ(w.Sum(), 4.0);
  EXPECT_DOUBLE_EQ(w.Mean(), 2.0);
}

TEST(RollingWindowTest, EvictsOldestWhenFull) {
  RollingWindow w(3);
  w.Push(1.0);
  w.Push(2.0);
  w.Push(3.0);
  EXPECT_TRUE(w.full());
  w.Push(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.Sum(), 15.0);
  w.Push(20.0);  // evicts 2.0
  EXPECT_DOUBLE_EQ(w.Sum(), 33.0);
}

TEST(RollingWindowTest, LongStreamMatchesDirectWindowMean) {
  RollingWindow w(7);
  std::vector<double> history;
  for (int i = 0; i < 1000; ++i) {
    const double v = std::sin(static_cast<double>(i)) * 100.0;
    w.Push(v);
    history.push_back(v);
    double expect = 0.0;
    const size_t n = std::min<size_t>(history.size(), 7);
    for (size_t k = history.size() - n; k < history.size(); ++k) {
      expect += history[k];
    }
    ASSERT_NEAR(w.Sum(), expect, 1e-9) << "at i=" << i;
  }
}

TEST(RollingWindowTest, ClearAndDegenerateCapacity) {
  RollingWindow w(2);
  w.Push(5.0);
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.Mean(), 0.0);

  RollingWindow one(0);  // clamps to capacity 1
  EXPECT_EQ(one.capacity(), 1u);
  one.Push(4.0);
  one.Push(6.0);
  EXPECT_DOUBLE_EQ(one.Mean(), 6.0);
}

}  // namespace
}  // namespace confcard
