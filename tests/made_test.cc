// The autoregressive (MADE) property, tested end to end at the network
// level: with masks built by the same degree rules Naru uses, the logit
// block of attribute i must be completely invariant to the inputs of
// attributes >= i. A violation would silently corrupt every Naru
// probability; this test pins the invariant structurally.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"

namespace confcard {
namespace nn {
namespace {

// Mirrors NaruEstimator::BuildNetwork's mask construction for blocks of
// the given widths.
struct Made {
  std::unique_ptr<Sequential> net;
  std::vector<size_t> offsets;
};

Made BuildMade(const std::vector<size_t>& block_widths, size_t hidden,
               Rng& rng) {
  Made made;
  made.offsets.push_back(0);
  std::vector<int> io_degrees;
  for (size_t c = 0; c < block_widths.size(); ++c) {
    for (size_t k = 0; k < block_widths[c]; ++k) {
      io_degrees.push_back(static_cast<int>(c) + 1);
    }
    made.offsets.push_back(io_degrees.size());
  }
  const int num_cols = static_cast<int>(block_widths.size());

  auto hidden_degrees = [&](size_t width) {
    std::vector<int> d(width);
    for (auto& v : d) {
      v = num_cols <= 1
              ? 1
              : 1 + static_cast<int>(rng.NextUint64(
                        static_cast<uint64_t>(num_cols - 1)));
    }
    return d;
  };
  auto mask = [&](const std::vector<int>& in, const std::vector<int>& out,
                  bool strict) {
    Tensor m(in.size(), out.size());
    for (size_t i = 0; i < in.size(); ++i) {
      for (size_t j = 0; j < out.size(); ++j) {
        m.At(i, j) = (strict ? out[j] > in[i] : out[j] >= in[i]) ? 1.0f
                                                                 : 0.0f;
      }
    }
    return m;
  };

  made.net = std::make_unique<Sequential>();
  std::vector<int> prev = io_degrees;
  for (int l = 0; l < 2; ++l) {
    std::vector<int> h = hidden_degrees(hidden);
    made.net->Append(std::make_unique<MaskedDense>(
        prev.size(), hidden, mask(prev, h, /*strict=*/false), rng));
    made.net->Append(std::make_unique<Relu>());
    prev = std::move(h);
  }
  made.net->Append(std::make_unique<MaskedDense>(
      prev.size(), io_degrees.size(), mask(prev, io_degrees, true), rng));
  return made;
}

class MadeInvarianceTest
    : public ::testing::TestWithParam<std::vector<size_t>> {};

TEST_P(MadeInvarianceTest, LogitsOfBlockIgnoreLaterBlocks) {
  const std::vector<size_t> widths = GetParam();
  Rng rng(71);
  Made made = BuildMade(widths, 32, rng);
  const size_t total = made.offsets.back();

  // Random one-hot-ish input.
  Tensor base(1, total);
  for (size_t c = 0; c < widths.size(); ++c) {
    size_t pick = made.offsets[c] + rng.NextUint64(widths[c]);
    base.At(0, pick) = 1.0f;
  }
  Tensor out_base = made.net->Forward(base);

  for (size_t c = 0; c < widths.size(); ++c) {
    // Perturb every input at or after block c; logits of blocks <= c
    // must not move.
    Tensor perturbed = base;
    for (size_t i = made.offsets[c]; i < total; ++i) {
      perturbed.At(0, i) =
          static_cast<float>(rng.NextDouble(-2.0, 2.0));
    }
    Tensor out = made.net->Forward(perturbed);
    for (size_t i = 0; i < made.offsets[c]; ++i) {
      EXPECT_FLOAT_EQ(out.At(0, i), out_base.At(0, i))
          << "block boundary " << c << " logit " << i;
    }
    // And (sanity) later logits generally DO move when there is any
    // earlier dependence to propagate.
    if (c == 0 && widths.size() > 1) {
      bool any_moved = false;
      for (size_t i = made.offsets[1]; i < total; ++i) {
        if (out.At(0, i) != out_base.At(0, i)) any_moved = true;
      }
      EXPECT_TRUE(any_moved);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlockShapes, MadeInvarianceTest,
    ::testing::Values(std::vector<size_t>{3, 4},
                      std::vector<size_t>{2, 2, 2},
                      std::vector<size_t>{5, 3, 7, 2},
                      std::vector<size_t>{1, 1, 1, 1, 1},
                      std::vector<size_t>{10}));

}  // namespace
}  // namespace nn
}  // namespace confcard
