#include "data/multitable.h"

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  std::vector<Column> cols;
  cols.push_back(Column::Numeric("x", {1, 2}));
  ASSERT_TRUE(db.AddTable(Table::Make("t", std::move(cols)).value()).ok());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_FALSE(db.HasTable("u"));
  EXPECT_EQ(db.table("t").num_rows(), 2u);
}

TEST(DatabaseTest, RejectsDuplicateTable) {
  Database db;
  auto make = [] {
    std::vector<Column> cols;
    cols.push_back(Column::Numeric("x", {1}));
    return Table::Make("t", std::move(cols)).value();
  };
  ASSERT_TRUE(db.AddTable(make()).ok());
  Status st = db.AddTable(make());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, EdgesAmongFiltersBothEndpoints) {
  Database db;
  db.AddJoinEdge({"a", "x", "b", "y"});
  db.AddJoinEdge({"a", "x", "c", "z"});
  auto edges = db.EdgesAmong({"a", "b"});
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].right_table, "b");
  EXPECT_TRUE(db.EdgesAmong({"b", "c"}).empty());
}

TEST(DsbLikeTest, SchemaAndEdges) {
  auto db = MakeDsbLike(5000);
  ASSERT_TRUE(db.ok());
  for (const char* t : {"store_sales", "date_dim", "store", "item",
                        "customer"}) {
    EXPECT_TRUE(db->HasTable(t)) << t;
  }
  EXPECT_EQ(db->join_edges().size(), 4u);
  EXPECT_EQ(db->table("store_sales").num_rows(), 5000u);
}

TEST(DsbLikeTest, ForeignKeysReferenceValidPks) {
  auto db = MakeDsbLike(3000).value();
  for (const JoinEdge& e : db.join_edges()) {
    const Column& fk = db.table(e.left_table).ColumnByName(e.left_column);
    const Table& dim = db.table(e.right_table);
    // FK codes live in [0, |dim|).
    EXPECT_GE(fk.min_value(), 0.0);
    EXPECT_LT(fk.max_value(), static_cast<double>(dim.num_rows()));
    // PK is the identity 0..n-1.
    const Column& pk = dim.ColumnByName(e.right_column);
    EXPECT_EQ(pk.distinct_count(), static_cast<int64_t>(dim.num_rows()));
  }
}

TEST(ImdbLikeTest, SchemaAndEdges) {
  auto db = MakeImdbLike(2000);
  ASSERT_TRUE(db.ok());
  for (const char* t : {"title", "movie_companies", "movie_info",
                        "movie_keyword", "cast_info"}) {
    EXPECT_TRUE(db->HasTable(t)) << t;
  }
  EXPECT_EQ(db->join_edges().size(), 4u);
  // Satellites are larger than the title table (fan-out > 1).
  EXPECT_GT(db->table("cast_info").num_rows(),
            db->table("title").num_rows());
}

TEST(ImdbLikeTest, SkewedFanout) {
  auto db = MakeImdbLike(2000).value();
  const Column& mid = db.table("cast_info").ColumnByName("movie_id");
  // Count rows of the hottest movie; Zipf fan-out should concentrate.
  std::vector<int> counts(2000, 0);
  for (double v : mid.data()) counts[static_cast<size_t>(v)]++;
  int mx = 0;
  for (int c : counts) mx = std::max(mx, c);
  const double mean =
      static_cast<double>(mid.data().size()) / 2000.0;
  EXPECT_GT(mx, 10 * mean);
}

TEST(MultitableTest, Reproducible) {
  auto a = MakeImdbLike(500, 11);
  auto b = MakeImdbLike(500, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->table("movie_info").ColumnByName("movie_id").data(),
            b->table("movie_info").ColumnByName("movie_id").data());
}

}  // namespace
}  // namespace confcard
