// Online conformal prediction: the Figure 8 mechanism (growing
// calibration set) and the sliding-window variant.
#include "conformal/online.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace confcard {
namespace {

OnlineConformal Make(double alpha = 0.1, size_t window = 0) {
  OnlineConformal::Options opts;
  opts.alpha = alpha;
  opts.window = window;
  return OnlineConformal(MakeScoring(ScoreKind::kResidual), opts);
}

TEST(OnlineConformalTest, InfiniteUntilEnoughScores) {
  OnlineConformal oc = Make(0.1);
  EXPECT_TRUE(std::isinf(oc.delta()));
  for (int i = 0; i < 8; ++i) oc.Observe(10.0, 10.0 + i);
  // n=8 < ceil(9/0.9): still infinite at alpha=0.1.
  EXPECT_TRUE(std::isinf(oc.delta()));
  oc.Observe(10.0, 19.0);
  EXPECT_FALSE(std::isinf(oc.delta()));
}

TEST(OnlineConformalTest, DeltaMatchesBatchQuantile) {
  OnlineConformal oc = Make(0.2);
  Rng rng(1);
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) {
    double est = 100.0, truth = 100.0 + 30.0 * rng.NextGaussian();
    oc.Observe(est, truth);
    scores.push_back(std::fabs(truth - est));
  }
  EXPECT_DOUBLE_EQ(oc.delta(), ConformalQuantile(scores, 0.2));
}

TEST(OnlineConformalTest, WarmupEquivalentToObserveLoop) {
  OnlineConformal a = Make(0.1), b = Make(0.1);
  std::vector<double> est, truth;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    est.push_back(50.0);
    truth.push_back(50.0 + 10.0 * rng.NextGaussian());
  }
  ASSERT_TRUE(a.Warmup(est, truth).ok());
  for (size_t i = 0; i < est.size(); ++i) b.Observe(est[i], truth[i]);
  EXPECT_DOUBLE_EQ(a.delta(), b.delta());
  EXPECT_EQ(a.size(), 100u);
}

TEST(OnlineConformalTest, WarmupRejectsSizeMismatch) {
  OnlineConformal oc = Make();
  EXPECT_FALSE(oc.Warmup({1.0}, {1.0, 2.0}).ok());
}

TEST(OnlineConformalTest, WindowEvictsOldScores) {
  OnlineConformal oc = Make(0.2, /*window=*/50);
  // First 50 observations: huge residuals. Next 50: tiny residuals.
  for (int i = 0; i < 50; ++i) oc.Observe(0.0, 1000.0);
  double big_delta = oc.delta();
  for (int i = 0; i < 50; ++i) oc.Observe(0.0, 1.0);
  EXPECT_EQ(oc.size(), 50u);
  EXPECT_LT(oc.delta(), big_delta / 100.0);
}

TEST(OnlineConformalTest, IntervalsTightenAsCalibrationGrows) {
  // The Figure 8 effect: with a small initial calibration set the
  // conformal quantile is noisy/conservative; it settles as data
  // accumulates.
  OnlineConformal oc = Make(0.1);
  Rng rng(3);
  auto observe_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      oc.Observe(100.0, 100.0 + 20.0 * rng.NextGaussian());
    }
  };
  observe_n(10);
  double early = oc.Predict(100.0).width();
  observe_n(2000);
  double late = oc.Predict(100.0).width();
  EXPECT_LT(late, early);
  // Settles near 2 * 1.645 * sigma.
  EXPECT_NEAR(late, 2.0 * 1.645 * 20.0, 12.0);
}

TEST(OnlineConformalTest, RollingMonitorsTrackPrequentialStream) {
  OnlineConformal::Options opts;
  opts.alpha = 0.2;
  opts.monitor_window = 50;
  OnlineConformal oc(MakeScoring(ScoreKind::kResidual), opts);
  EXPECT_EQ(oc.observed(), 0u);
  EXPECT_EQ(oc.rolling_coverage(), 0.0);
  EXPECT_EQ(oc.rolling_width(), 0.0);
  EXPECT_DOUBLE_EQ(oc.score_drift(), 1.0);

  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    oc.Observe(0.0, 30.0 * rng.NextGaussian());
  }
  EXPECT_EQ(oc.observed(), 500u);
  // Prequential coverage over the last 50 observations hovers near
  // 1 - alpha; 50 samples of a Bernoulli(0.8) stay well within 0.2.
  EXPECT_NEAR(oc.rolling_coverage(), 0.8, 0.2);
  EXPECT_GT(oc.rolling_width(), 0.0);
  // Stationary stream: rolling mean score ~ lifetime mean score.
  EXPECT_NEAR(oc.score_drift(), 1.0, 0.5);
}

TEST(OnlineConformalTest, DriftGaugeRisesUnderResidualShift) {
  OnlineConformal::Options opts;
  opts.alpha = 0.1;
  opts.monitor_window = 50;
  OnlineConformal oc(MakeScoring(ScoreKind::kResidual), opts);
  Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    oc.Observe(0.0, 30.0 * rng.NextGaussian());
  }
  const double stationary = oc.score_drift();
  // 10x residual shift: the rolling window absorbs it long before the
  // lifetime mean does.
  for (int i = 0; i < 100; ++i) {
    oc.Observe(0.0, 300.0 * rng.NextGaussian());
  }
  EXPECT_GT(oc.score_drift(), 2.0);
  EXPECT_GT(oc.score_drift(), stationary);
}

TEST(OnlineConformalTest, PublishesOccupancyAndEvictionMetrics) {
  obs::Metrics().ResetForTest();
  OnlineConformal oc = Make(0.2, /*window=*/50);
  Rng rng(11);
  for (int i = 0; i < 120; ++i) {
    oc.Observe(0.0, 10.0 * rng.NextGaussian());
  }
  EXPECT_EQ(obs::Metrics().GetCounter("conformal.online.observations")
                .value(),
            120u);
  EXPECT_EQ(obs::Metrics().GetCounter("conformal.online.evictions").value(),
            70u);
  EXPECT_DOUBLE_EQ(
      obs::Metrics().GetGauge("conformal.online.window_occupancy").value(),
      50.0);
  const double cov =
      obs::Metrics().GetGauge("conformal.online.rolling_coverage").value();
  EXPECT_EQ(cov, oc.rolling_coverage());
  EXPECT_DOUBLE_EQ(
      obs::Metrics().GetGauge("conformal.online.score_drift").value(),
      oc.score_drift());
}

TEST(OnlineConformalTest, CoverageOnStream) {
  // Prequential evaluation: predict, then observe. Coverage over the
  // stream should be ~ 1 - alpha once warmed up.
  OnlineConformal oc = Make(0.1);
  Rng rng(4);
  // Warm up with 100 points.
  for (int i = 0; i < 100; ++i) {
    oc.Observe(0.0, 40.0 * rng.NextGaussian());
  }
  double covered = 0.0, total = 0.0;
  for (int i = 0; i < 3000; ++i) {
    double truth = 40.0 * rng.NextGaussian();
    Interval iv = oc.Predict(0.0);
    covered += iv.Contains(truth) ? 1.0 : 0.0;
    total += 1.0;
    oc.Observe(0.0, truth);
  }
  EXPECT_NEAR(covered / total, 0.9, 0.025);
}

}  // namespace
}  // namespace confcard
