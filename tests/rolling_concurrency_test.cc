// RollingWindow concurrency tests: concurrent writers and readers are
// race-free (TSan-clean under the sanitizer build), and state after all
// writers join is determined by what was pushed, not by scheduling.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/rolling.h"

namespace confcard {
namespace obs {
namespace {

TEST(RollingConcurrencyTest, ZeroOneWritersYieldExactMeanAfterJoin) {
  // 8 threads push 0s and 1s into a window large enough to hold
  // everything: after the join, sum/size/mean are exact regardless of
  // interleaving.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  RollingWindow window(kThreads * kPerThread);
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const double value = t % 2 == 0 ? 0.0 : 1.0;
      for (int i = 0; i < kPerThread; ++i) window.Push(value);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(window.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_TRUE(window.full());
  EXPECT_DOUBLE_EQ(window.Sum(), kThreads / 2 * kPerThread);
  EXPECT_DOUBLE_EQ(window.Mean(), 0.5);
}

TEST(RollingConcurrencyTest, ConcurrentReadersSeeConsistentSnapshots) {
  RollingWindow window(64);
  std::atomic<bool> stop{false};
  // Readers race the writer; every observed mean must lie within the
  // pushed value range and size within capacity — no torn reads.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const double mean = window.Mean();
        const size_t size = window.size();
        EXPECT_GE(mean, 0.0);
        EXPECT_LE(mean, 2.0);
        EXPECT_LE(size, window.capacity());
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    window.Push(static_cast<double>(i % 3));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  EXPECT_TRUE(window.full());
}

TEST(RollingConcurrencyTest, ConcurrentClearAndPushStaysBounded) {
  RollingWindow window(32);
  std::atomic<bool> stop{false};
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      window.Clear();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 20000; ++i) window.Push(1.0);
  stop.store(true, std::memory_order_release);
  clearer.join();
  // Whatever interleaving happened, the window is internally consistent.
  EXPECT_LE(window.size(), window.capacity());
  const double mean = window.Mean();
  EXPECT_TRUE(mean == 0.0 || mean == 1.0);
}

TEST(RollingConcurrencyTest, EvictionUnderConcurrencyKeepsWindowSemantics) {
  // Writers overflow a small window; after joining, exactly `capacity`
  // of the last pushes remain and every retained value is one that was
  // pushed.
  RollingWindow window(16);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) window.Push(2.0);
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_TRUE(window.full());
  EXPECT_EQ(window.size(), 16u);
  EXPECT_DOUBLE_EQ(window.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(window.Sum(), 32.0);
}

}  // namespace
}  // namespace obs
}  // namespace confcard
