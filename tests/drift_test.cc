// The drift-robustness primitives: CONFCARD_DRIFT grammar parsing and
// replayable stream generation, OnlineConformal sliding-window edge
// cases the serving feedback path leans on (window size 1, reset,
// alloc-free steady state), the AQO-style residual corrector, and the
// staged drift-detector ladder.
#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "ce/residual.h"
#include "conformal/online.h"
#include "conformal/scoring.h"
#include "data/drift.h"
#include "obs/profiler.h"
#include "query/predicate.h"
#include "serve/drift_detector.h"

namespace confcard {
namespace {

// ------------------------------------------------------------------
// CONFCARD_DRIFT grammar.
// ------------------------------------------------------------------

TEST(DriftSpecTest, ParsesEveryKind) {
  const auto specs =
      drift::ParseDriftSpecs(
          "append:0.2@0.3;update:0.5@0.4;delete:0.1@0.5;zipf:0.9@0.6;"
          "corr:1@0.7;template:0.25@0.8")
          .value();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].kind, drift::DriftKind::kAppend);
  EXPECT_EQ(specs[3].kind, drift::DriftKind::kZipf);
  EXPECT_EQ(specs[4].kind, drift::DriftKind::kCorrelation);
  EXPECT_EQ(specs[5].kind, drift::DriftKind::kTemplate);
  EXPECT_DOUBLE_EQ(specs[1].magnitude, 0.5);
  EXPECT_DOUBLE_EQ(specs[1].onset, 0.4);
}

TEST(DriftSpecTest, RequiresExplicitOnsetAndAllowsEmptyInput) {
  // The grammar is strict: every arm names its onset.
  EXPECT_FALSE(drift::ParseDriftSpecs("zipf:0.5").ok());
  EXPECT_TRUE(drift::ParseDriftSpecs("").value().empty());
  EXPECT_TRUE(drift::ParseDriftSpecs("  ").value().empty());
}

TEST(DriftSpecTest, RejectsMalformedEntries) {
  EXPECT_FALSE(drift::ParseDriftSpecs("wobble:0.5").ok());
  EXPECT_FALSE(drift::ParseDriftSpecs("zipf").ok());
  EXPECT_FALSE(drift::ParseDriftSpecs("zipf:1.5").ok());    // magnitude > 1
  EXPECT_FALSE(drift::ParseDriftSpecs("zipf:0.5@1").ok());  // onset >= 1
  EXPECT_FALSE(drift::ParseDriftSpecs("zipf:abc@0.5").ok());
}

TEST(DriftSpecTest, RenderRoundTrips) {
  const char* text = "update:0.5@0.4;zipf:0.9@0.6;template:0.25@0.8";
  const auto specs = drift::ParseDriftSpecs(text).value();
  EXPECT_EQ(drift::RenderDriftSpecs(specs), text);
}

// ------------------------------------------------------------------
// Stream generation: determinism and per-kind semantics.
// ------------------------------------------------------------------

TableSpec SmallSpec() {
  TableSpec spec;
  spec.name = "drift_t";
  spec.num_rows = 2000;
  spec.seed = 11;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 20;
  a.zipf_skew = 0.5;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 100.0;
  spec.columns = {a, b};
  return spec;
}

drift::DriftStreamOptions SmallStream(size_t n = 200) {
  drift::DriftStreamOptions so;
  so.num_queries = n;
  so.seed = 3;
  return so;
}

TEST(DriftStreamTest, RegenerationIsBitIdentical) {
  const auto specs = drift::ParseDriftSpecs("update:0.6@0.4;zipf:0.6@0.4")
                         .value();
  const drift::DriftStream s1 =
      drift::GenerateDriftStream(SmallSpec(), SmallStream(), specs).value();
  const drift::DriftStream s2 =
      drift::GenerateDriftStream(SmallSpec(), SmallStream(), specs).value();
  ASSERT_EQ(s1.stream.size(), s2.stream.size());
  EXPECT_EQ(s1.onset_index, s2.onset_index);
  for (size_t i = 0; i < s1.stream.size(); ++i) {
    EXPECT_EQ(s1.stream[i].query, s2.stream[i].query) << "i=" << i;
    EXPECT_DOUBLE_EQ(s1.stream[i].cardinality, s2.stream[i].cardinality)
        << "i=" << i;
  }
}

TEST(DriftStreamTest, OnsetSplitsTruthSources) {
  const auto specs = drift::ParseDriftSpecs("update:0.8@0.5").value();
  const drift::DriftStream s =
      drift::GenerateDriftStream(SmallSpec(), SmallStream(), specs).value();
  EXPECT_EQ(s.onset_index, 100u);
  EXPECT_EQ(s.data_onset_index, 100u);
  // Pre-onset truths are exact under the pre table; post-onset under the
  // post table (spot-check via the labeled cardinalities being
  // consistent with *some* change: the tables differ).
  EXPECT_EQ(s.pre_table.num_rows(), s.post_table.num_rows());
}

TEST(DriftStreamTest, AppendAndDeleteChangeRowCount) {
  const auto append = drift::ParseDriftSpecs("append:0.5@0.25").value();
  const drift::DriftStream sa =
      drift::GenerateDriftStream(SmallSpec(), SmallStream(), append).value();
  EXPECT_EQ(sa.post_table.num_rows(), 3000u);

  // Deletion selects rows by a deterministic per-row hash at the arm's
  // rate, so the surviving count is rate-accurate, not exact.
  const auto del = drift::ParseDriftSpecs("delete:0.25@0.25").value();
  const drift::DriftStream sd =
      drift::GenerateDriftStream(SmallSpec(), SmallStream(), del).value();
  EXPECT_NEAR(static_cast<double>(sd.post_table.num_rows()), 1500.0, 100.0);
  const drift::DriftStream sd2 =
      drift::GenerateDriftStream(SmallSpec(), SmallStream(), del).value();
  EXPECT_EQ(sd.post_table.num_rows(), sd2.post_table.num_rows());
}

TEST(DriftStreamTest, NoSpecsMeansNoDrift) {
  const drift::DriftStream s =
      drift::GenerateDriftStream(SmallSpec(), SmallStream(), {}).value();
  EXPECT_EQ(s.onset_index, s.stream.size());
  EXPECT_EQ(s.pre_table.num_rows(), s.post_table.num_rows());
}

TEST(DriftStreamTest, ShiftedSpecMovesZipfAndCorrelation) {
  TableSpec base = SmallSpec();
  ColumnSpec child;
  child.name = "c";
  child.domain_size = 10;
  child.parent = 0;  // correlation shifts only apply to correlated columns
  child.correlation = 0.2;
  base.columns.push_back(child);
  const auto specs = drift::ParseDriftSpecs("zipf:1@0.5;corr:1@0.5").value();
  const TableSpec shifted = drift::ShiftedTableSpec(base, specs);
  EXPECT_DOUBLE_EQ(shifted.columns[0].zipf_skew,
                   0.5 + drift::kZipfSkewSpan);
  // corr at magnitude 1: c' = c + 1 * (1 - 2c) = 1 - c.
  EXPECT_DOUBLE_EQ(shifted.columns[2].correlation, 0.8);
}

// ------------------------------------------------------------------
// OnlineConformal edge cases under feedback.
// ------------------------------------------------------------------

OnlineConformal::Options WindowedOpts(size_t window, double alpha = 0.5) {
  OnlineConformal::Options o;
  o.alpha = alpha;
  o.window = window;
  o.publish_metrics = false;
  return o;
}

TEST(OnlineWindowTest, WindowSizeOneTracksNewestScore) {
  // alpha = 0.5 needs ceil(1/alpha) - 1 = 1 score for a finite delta,
  // so a size-1 window is the smallest functional recalibrator: delta
  // is always the single newest score.
  OnlineConformal oc(MakeScoring(ScoreKind::kResidual), WindowedOpts(1));
  oc.Observe(10.0, 14.0);  // score 4
  EXPECT_EQ(oc.size(), 1u);
  EXPECT_DOUBLE_EQ(oc.delta(), 4.0);
  oc.Observe(10.0, 11.0);  // score 1 evicts score 4
  EXPECT_EQ(oc.size(), 1u);
  EXPECT_DOUBLE_EQ(oc.delta(), 1.0);
  EXPECT_EQ(oc.observed(), 2u);
}

TEST(OnlineWindowTest, ResetWindowToKeepsNewestScores) {
  OnlineConformal oc(MakeScoring(ScoreKind::kResidual), WindowedOpts(8));
  for (int i = 1; i <= 8; ++i) {
    oc.Observe(0.0, static_cast<double>(i));  // scores 1..8, oldest first
  }
  oc.ResetWindowTo(2);  // keep scores 7, 8
  EXPECT_EQ(oc.size(), 2u);
  // alpha 0.5 over {7, 8}: conformal rank quantile is the largest score.
  EXPECT_DOUBLE_EQ(oc.delta(), 8.0);
  oc.Observe(0.0, 1.0);
  EXPECT_EQ(oc.size(), 3u);
  oc.ResetWindowTo(0);
  EXPECT_EQ(oc.size(), 0u);
  EXPECT_TRUE(std::isinf(oc.delta()));
}

TEST(OnlineWindowTest, WindowedObserveIsAllocationFree) {
  OnlineConformal oc(MakeScoring(ScoreKind::kQError), WindowedOpts(32, 0.1));
  for (int i = 0; i < 64; ++i) {
    oc.Observe(10.0 + i, 12.0 + i);  // fill and start evicting
  }
  const uint64_t before = obs::prof::ThreadAllocCount();
  for (int i = 0; i < 256; ++i) {
    oc.Observe(5.0 + (i % 7), 9.0 + (i % 13));
    (void)oc.delta();
  }
  oc.ResetWindowTo(8);
  EXPECT_EQ(obs::prof::ThreadAllocCount() - before, 0u);
}

TEST(OnlineWindowTest, RollingMonitorsSurviveDegenerateStreams) {
  // An "all-degraded window": every estimate is the same fallback
  // sentinel and every truth misses the interval. Monitors must stay
  // finite and the detector-facing accessors well-defined.
  OnlineConformal oc(MakeScoring(ScoreKind::kQError), WindowedOpts(4, 0.1));
  for (int i = 0; i < 32; ++i) {
    oc.Observe(0.0, 5000.0);
  }
  EXPECT_EQ(oc.size(), 4u);
  EXPECT_GE(oc.rolling_coverage(), 0.0);
  EXPECT_LE(oc.rolling_coverage(), 1.0);
  EXPECT_GT(oc.score_drift(), 0.0);
  EXPECT_EQ(oc.rolling_observations(), 32u);
}

// ------------------------------------------------------------------
// Residual corrector (AQO-style executed-query feedback).
// ------------------------------------------------------------------

Query TwoColQuery(double a_lit, double b_lo, double b_hi) {
  Query q;
  q.predicates.push_back(Predicate::Eq(0, a_lit));
  q.predicates.push_back(Predicate::Between(1, b_lo, b_hi));
  return q;
}

TEST(ResidualCorrectorTest, SubspaceHashIgnoresLiterals) {
  const uint64_t h1 = ResidualCorrector::SubspaceHash(TwoColQuery(1, 0, 9));
  const uint64_t h2 = ResidualCorrector::SubspaceHash(TwoColQuery(7, 3, 5));
  EXPECT_EQ(h1, h2);
  // Different op on the same column -> different subspace.
  Query q3;
  q3.predicates.push_back(Predicate::Between(0, 1.0, 2.0));
  q3.predicates.push_back(Predicate::Between(1, 0.0, 9.0));
  EXPECT_NE(ResidualCorrector::SubspaceHash(q3), h1);
  // Predicate order must not matter (sorted before hashing).
  Query q4;
  q4.predicates.push_back(Predicate::Between(1, 0.0, 9.0));
  q4.predicates.push_back(Predicate::Eq(0, 3.0));
  EXPECT_EQ(ResidualCorrector::SubspaceHash(q4), h1);
}

TEST(ResidualCorrectorTest, IdentityBelowMinObservations) {
  ResidualCorrector::Options o;
  o.min_observations = 4;
  ResidualCorrector rc(o);
  const uint64_t fss = 42;
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(rc.Correct(fss, 10.0), 10.0);
    rc.Observe(fss, 10.0, 100.0);
  }
  EXPECT_DOUBLE_EQ(rc.Correct(fss, 10.0), 10.0);  // 3 < min_observations
  rc.Observe(fss, 10.0, 100.0);
  EXPECT_GT(rc.Correct(fss, 10.0), 10.0);  // bias now applied
}

TEST(ResidualCorrectorTest, ConvergesTowardObservedBias) {
  ResidualCorrector::Options o;
  o.min_observations = 1;
  o.smoothing = 0.5;
  ResidualCorrector rc(o);
  const uint64_t fss = 7;
  for (int i = 0; i < 64; ++i) {
    rc.Observe(fss, 10.0, 110.0);  // persistent ~10x underestimate
  }
  const double corrected = rc.Correct(fss, 10.0);
  EXPECT_GT(corrected, 80.0);
  EXPECT_LT(corrected, 140.0);
}

TEST(ResidualCorrectorTest, CorrectionIsClamped) {
  ResidualCorrector::Options o;
  o.min_observations = 1;
  o.max_correction = 4.0;
  ResidualCorrector rc(o);
  const uint64_t fss = 9;
  for (int i = 0; i < 64; ++i) {
    rc.Observe(fss, 1.0, 100000.0);
  }
  // (est + 1) * factor - 1 with factor clamped at 4.
  EXPECT_LE(rc.Correct(fss, 1.0), 2.0 * 4.0 - 1.0 + 1e-9);
}

TEST(ResidualCorrectorTest, EvictsLowestCountWhenFull) {
  ResidualCorrector::Options o;
  o.capacity = 8;  // rounded to a tiny table
  o.min_observations = 1;
  ResidualCorrector rc(o);
  for (uint64_t k = 0; k < 64; ++k) {
    rc.Observe(k * 0x9E3779B97F4A7C15ULL + 1, 10.0, 20.0);
  }
  EXPECT_LE(rc.entries(), 8u);
  EXPECT_GT(rc.evictions(), 0u);
  rc.Reset();
  EXPECT_EQ(rc.entries(), 0u);
}

// ------------------------------------------------------------------
// Drift-detector ladder.
// ------------------------------------------------------------------

serve::DriftDetectorOptions DetOpts() {
  serve::DriftDetectorOptions o;
  o.nominal_coverage = 0.9;
  o.min_observations = 4;
  o.recovery_hold = 3;
  return o;
}

TEST(DriftDetectorTest, SilentBelowMinObservations) {
  serve::DriftDetector d(DetOpts());
  EXPECT_EQ(d.Update(0.0, 10.0, 2), serve::DriftStage::kHealthy);
  EXPECT_EQ(d.stage(), serve::DriftStage::kHealthy);
}

TEST(DriftDetectorTest, EscalatesImmediatelyToMatchingStage) {
  serve::DriftDetector d(DetOpts());
  // Coverage dip of 0.2 >= fallback_dip (0.15): jump straight to
  // kFallback without passing through the intermediate stages.
  EXPECT_EQ(d.Update(0.7, 1.0, 100), serve::DriftStage::kFallback);
  EXPECT_EQ(d.escalations(), 1u);
  // A deeper dip escalates further.
  EXPECT_EQ(d.Update(0.5, 1.0, 100), serve::DriftStage::kBreak);
  EXPECT_EQ(d.escalations(), 2u);
}

TEST(DriftDetectorTest, ScoreDriftTriggersRecalibrateEarly) {
  serve::DriftDetector d(DetOpts());
  // Coverage still nominal but residuals exploding.
  EXPECT_EQ(d.Update(0.9, 3.0, 100), serve::DriftStage::kRecalibrate);
}

TEST(DriftDetectorTest, DeescalatesOneStageAfterRecoveryHold) {
  serve::DriftDetector d(DetOpts());
  ASSERT_EQ(d.Update(0.5, 1.0, 100), serve::DriftStage::kBreak);
  // recovery_hold = 3 healthy observations step down exactly one stage.
  EXPECT_EQ(d.Update(0.91, 1.0, 100), serve::DriftStage::kBreak);
  EXPECT_EQ(d.Update(0.91, 1.0, 100), serve::DriftStage::kBreak);
  EXPECT_EQ(d.Update(0.91, 1.0, 100), serve::DriftStage::kFallback);
  EXPECT_EQ(d.deescalations(), 1u);
  // An unhealthy observation resets the streak.
  EXPECT_EQ(d.Update(0.8, 1.0, 100), serve::DriftStage::kFallback);
  EXPECT_EQ(d.Update(0.91, 1.0, 100), serve::DriftStage::kFallback);
  EXPECT_EQ(d.Update(0.91, 1.0, 100), serve::DriftStage::kFallback);
  EXPECT_EQ(d.Update(0.91, 1.0, 100), serve::DriftStage::kInflate);
}

TEST(DriftDetectorTest, StageNamesRender) {
  EXPECT_STREQ(serve::DriftStageToString(serve::DriftStage::kHealthy),
               "healthy");
  EXPECT_STREQ(serve::DriftStageToString(serve::DriftStage::kBreak),
               "break");
}

}  // namespace
}  // namespace confcard
