// Second translation unit for the emitter-dedup test. Mimics a bench
// binary assembled from several objects: this TU includes bench_common.h
// (whose inline global arms the emitter during static init) AND calls
// InstallMetricsEmitter again through its own namespace-scope initializer.
// Linking this next to emitter_dedup_test.cc must still register exactly
// one atexit hook and emit exactly one artifact.
#include "bench_common.h"

namespace confcard {
namespace bench {

namespace {
const bool kSecondTuInstall = InstallMetricsEmitter();
}  // namespace

bool SecondTuInstalled() { return kSecondTuInstall; }

}  // namespace bench
}  // namespace confcard
