#include "ce/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "exec/scan.h"

namespace confcard {
namespace {

TEST(ColumnHistogramTest, ExactCategoricalFrequencies) {
  Column c = Column::Categorical("k", 4, {0, 0, 0, 1, 2, 2, 3, 3, 3, 3});
  ColumnHistogram h(c);
  EXPECT_TRUE(h.exact());
  EXPECT_DOUBLE_EQ(h.EstimateEquality(0.0), 0.3);
  EXPECT_DOUBLE_EQ(h.EstimateEquality(1.0), 0.1);
  EXPECT_DOUBLE_EQ(h.EstimateEquality(3.0), 0.4);
  EXPECT_DOUBLE_EQ(h.EstimateEquality(99.0), 0.0);
}

TEST(ColumnHistogramTest, ExactCategoricalRanges) {
  Column c = Column::Categorical("k", 4, {0, 0, 1, 2, 3});
  ColumnHistogram h(c);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(1.0, 2.0), 0.4);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(0.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(2.0, 1.0), 0.0);
}

TEST(ColumnHistogramTest, NumericUniformRange) {
  Rng rng(1);
  std::vector<double> vals;
  for (int i = 0; i < 20000; ++i) vals.push_back(rng.NextDouble(0.0, 100.0));
  Column c = Column::Numeric("v", std::move(vals));
  ColumnHistogram h(c, 64);
  EXPECT_FALSE(h.exact());
  EXPECT_NEAR(h.EstimateSelectivity(0.0, 50.0), 0.5, 0.03);
  EXPECT_NEAR(h.EstimateSelectivity(25.0, 75.0), 0.5, 0.03);
  EXPECT_NEAR(h.EstimateSelectivity(0.0, 100.0), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(200.0, 300.0), 0.0);
}

TEST(ColumnHistogramTest, NumericEqualityUsesDistincts) {
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) {
    vals.push_back(static_cast<double>(i % 10));
  }
  // Force bucket mode by declaring it numeric.
  Column c = Column::Numeric("v", std::move(vals));
  ColumnHistogram h(c, 8);
  // 10 distinct values, each 10% of rows; estimate should be near 0.1.
  EXPECT_NEAR(h.EstimateEquality(5.0), 0.1, 0.06);
}

TEST(ColumnHistogramTest, EmptyColumn) {
  Column c = Column::Numeric("v", {});
  ColumnHistogram h(c);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateEquality(0.0), 0.0);
}

TEST(HistogramEstimatorTest, SinglePredicateMatchesHistogram) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 5000;
  spec.seed = 2;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 8;
  a.zipf_skew = 1.0;
  spec.columns = {a};
  Table t = GenerateTable(spec).value();
  HistogramEstimator est(t);

  Query q;
  q.predicates = {Predicate::Eq(0, 0.0)};
  double truth = static_cast<double>(CountMatches(t, q));
  // Exact frequency table: estimate equals truth for single equality.
  EXPECT_NEAR(est.EstimateCardinality(q), truth, 1e-6);
}

TEST(HistogramEstimatorTest, IndependenceAssumptionUnderestimatesCorrelated) {
  // Child is a deterministic function of the parent: true cardinality of
  // the consistent pair is P(a) * N, but AVI estimates P(a) * P(b) * N.
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 10000;
  spec.seed = 3;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 10;
  ColumnSpec b;
  b.name = "b";
  b.domain_size = 10;
  b.parent = 0;
  b.correlation = 1.0;
  spec.columns = {a, b};
  Table t = GenerateTable(spec).value();
  HistogramEstimator est(t);

  // Find a frequent consistent pair.
  double av = t.At(0, 0), bv = t.At(0, 1);
  Query q;
  q.predicates = {Predicate::Eq(0, av), Predicate::Eq(1, bv)};
  double truth = static_cast<double>(CountMatches(t, q));
  double estimate = est.EstimateCardinality(q);
  EXPECT_LT(estimate, truth * 0.8);  // clear underestimation
}

TEST(HistogramEstimatorTest, IndependentColumnsEstimateWell) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 20000;
  spec.seed = 4;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  ColumnSpec b;
  b.name = "b";
  b.domain_size = 5;
  spec.columns = {a, b};
  Table t = GenerateTable(spec).value();
  HistogramEstimator est(t);
  Query q;
  q.predicates = {Predicate::Eq(0, 1.0), Predicate::Eq(1, 2.0)};
  double truth = static_cast<double>(CountMatches(t, q));
  double estimate = est.EstimateCardinality(q);
  EXPECT_NEAR(estimate, truth, truth * 0.25 + 20.0);
}

TEST(HistogramEstimatorTest, EmptyQueryEstimatesAllRows) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 100;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 2;
  spec.columns = {a};
  Table t = GenerateTable(spec).value();
  HistogramEstimator est(t);
  EXPECT_DOUBLE_EQ(est.EstimateCardinality(Query{}), 100.0);
}

}  // namespace
}  // namespace confcard
