#include "exec/join.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/multitable.h"
#include "exec/scan.h"

namespace confcard {
namespace {

// Small hand-built database: r(k, v) and s(k, w), joined on k.
Database TinyDb() {
  Database db;
  {
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("k", 3, {0, 0, 1, 2}));
    cols.push_back(Column::Numeric("v", {10, 20, 30, 40}));
    Status st = db.AddTable(Table::Make("r", std::move(cols)).value());
    EXPECT_TRUE(st.ok());
  }
  {
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("k", 3, {0, 1, 1, 2, 2}));
    cols.push_back(Column::Numeric("w", {1, 2, 3, 4, 5}));
    Status st = db.AddTable(Table::Make("s", std::move(cols)).value());
    EXPECT_TRUE(st.ok());
  }
  db.AddJoinEdge({"r", "k", "s", "k"});
  return db;
}

TEST(JoinExecTest, SimpleEquiJoin) {
  Database db = TinyDb();
  JoinQuery q;
  q.tables = {"r", "s"};
  q.joins = db.join_edges();
  auto res = ExecuteJoin(db, q);
  ASSERT_TRUE(res.ok());
  // k=0: 2*1, k=1: 1*2, k=2: 1*2 -> 2+2+2 = 6.
  EXPECT_EQ(res->cardinality, 6u);
  ASSERT_EQ(res->base_sizes.size(), 2u);
  EXPECT_EQ(res->base_sizes[0], 4u);
  EXPECT_EQ(res->base_sizes[1], 5u);
  ASSERT_EQ(res->intermediate_sizes.size(), 1u);
  EXPECT_EQ(res->intermediate_sizes[0], 6u);
  EXPECT_EQ(res->total_work, 4u + 5u + 6u);
}

TEST(JoinExecTest, PredicatesApplyBeforeJoin) {
  Database db = TinyDb();
  JoinQuery q;
  q.tables = {"r", "s"};
  q.joins = db.join_edges();
  q.predicates = {{"r", Predicate::Between(1, 15.0, 45.0)}};  // v >= 15
  auto res = ExecuteJoin(db, q);
  ASSERT_TRUE(res.ok());
  // Surviving r rows: (0,20),(1,30),(2,40) -> 1+2+2 = 5.
  EXPECT_EQ(res->cardinality, 5u);
  EXPECT_EQ(res->base_sizes[0], 3u);
}

TEST(JoinExecTest, SingleTableDegeneratesToScan) {
  Database db = TinyDb();
  JoinQuery q;
  q.tables = {"r"};
  q.predicates = {{"r", Predicate::Eq(0, 0.0)}};
  auto res = ExecuteJoin(db, q);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->cardinality, 2u);
}

TEST(JoinExecTest, EmptyIntermediateShortCircuits) {
  Database db = TinyDb();
  JoinQuery q;
  q.tables = {"r", "s"};
  q.joins = db.join_edges();
  q.predicates = {{"r", Predicate::Eq(1, 999.0)}};
  auto res = ExecuteJoin(db, q);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->cardinality, 0u);
}

TEST(JoinExecTest, DisconnectedTableIsError) {
  Database db = TinyDb();
  JoinQuery q;
  q.tables = {"r", "s"};
  // No join edges supplied: s is unreachable.
  auto res = ExecuteJoin(db, q);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(JoinExecTest, UnknownTableIsError) {
  Database db = TinyDb();
  JoinQuery q;
  q.tables = {"zzz"};
  EXPECT_EQ(ExecuteJoin(db, q).status().code(), StatusCode::kNotFound);
}

TEST(JoinExecTest, IntermediateCapEnforced) {
  Database db = TinyDb();
  JoinQuery q;
  q.tables = {"r", "s"};
  q.joins = db.join_edges();
  auto res = ExecuteJoin(db, q, /*max_intermediate=*/3);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kOutOfRange);
}

// Three-way star join with brute-force verification.
class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPropertyTest, MatchesBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  // fact(k1, k2), d1(k1, x), d2(k2, y) with tiny domains.
  const size_t nf = 60, n1 = 8, n2 = 5;
  std::vector<double> k1(nf), k2(nf);
  for (size_t i = 0; i < nf; ++i) {
    k1[i] = static_cast<double>(rng.NextUint64(n1));
    k2[i] = static_cast<double>(rng.NextUint64(n2));
  }
  std::vector<double> d1k(n1), d1x(n1), d2k(n2), d2y(n2);
  for (size_t i = 0; i < n1; ++i) {
    d1k[i] = static_cast<double>(i);
    d1x[i] = static_cast<double>(rng.NextUint64(3));
  }
  for (size_t i = 0; i < n2; ++i) {
    d2k[i] = static_cast<double>(i);
    d2y[i] = static_cast<double>(rng.NextUint64(4));
  }

  Database db;
  {
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("k1", n1, k1));
    cols.push_back(Column::Categorical("k2", n2, k2));
    EXPECT_TRUE(
        db.AddTable(Table::Make("fact", std::move(cols)).value()).ok());
  }
  {
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("k", n1, d1k));
    cols.push_back(Column::Categorical("x", 3, d1x));
    EXPECT_TRUE(
        db.AddTable(Table::Make("d1", std::move(cols)).value()).ok());
  }
  {
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("k", n2, d2k));
    cols.push_back(Column::Categorical("y", 4, d2y));
    EXPECT_TRUE(
        db.AddTable(Table::Make("d2", std::move(cols)).value()).ok());
  }
  db.AddJoinEdge({"fact", "k1", "d1", "k"});
  db.AddJoinEdge({"fact", "k2", "d2", "k"});

  JoinQuery q;
  q.tables = {"fact", "d1", "d2"};
  q.joins = db.join_edges();
  double xv = static_cast<double>(rng.NextUint64(3));
  double yv = static_cast<double>(rng.NextUint64(4));
  q.predicates = {{"d1", Predicate::Eq(1, xv)},
                  {"d2", Predicate::Eq(1, yv)}};

  // Brute force over the fact table (d1/d2 are keyed by position).
  uint64_t expected = 0;
  for (size_t i = 0; i < nf; ++i) {
    size_t a = static_cast<size_t>(k1[i]);
    size_t b = static_cast<size_t>(k2[i]);
    if (d1x[a] == xv && d2y[b] == yv) ++expected;
  }

  auto res = ExecuteJoin(db, q);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->cardinality, expected);

  // Join order must not change the result.
  JoinQuery q2 = q;
  q2.tables = {"d1", "fact", "d2"};
  auto res2 = ExecuteJoin(db, q2);
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2->cardinality, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace confcard
