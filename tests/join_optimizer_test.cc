#include "optim/optimizer.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/multitable.h"

namespace confcard {
namespace {

class JoinOptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeDsbLike(5000, 23).value(); }
  Database db_;
};

TEST_F(JoinOptimizerTest, OrderIsPermutationOfTables) {
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  JoinQuery q;
  q.tables = {"store_sales", "item", "store", "customer"};
  q.joins = db_.EdgesAmong(q.tables);
  auto plan = opt.Optimize(q);
  ASSERT_TRUE(plan.ok());
  std::vector<std::string> sorted_order = plan->order;
  std::vector<std::string> sorted_tables = q.tables;
  std::sort(sorted_order.begin(), sorted_order.end());
  std::sort(sorted_tables.begin(), sorted_tables.end());
  EXPECT_EQ(sorted_order, sorted_tables);
  EXPECT_GT(plan->estimated_cost, 0.0);
}

TEST_F(JoinOptimizerTest, EveryPrefixIsConnected) {
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  JoinQuery q;
  q.tables = {"store_sales", "date_dim", "item"};
  q.joins = db_.EdgesAmong(q.tables);
  auto plan = opt.Optimize(q).value();
  // With a star schema, the fact table must be joined before (or as) the
  // second element: dimensions only connect through store_sales.
  auto pos = std::find(plan.order.begin(), plan.order.end(),
                       "store_sales");
  EXPECT_LE(pos - plan.order.begin(), 1);
}

TEST_F(JoinOptimizerTest, SelectiveDimensionJoinsEarly) {
  // A highly selective filter on one dimension should pull that join
  // forward relative to the no-filter plan's cost.
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  const Table& item = db_.table("item");
  JoinQuery q;
  q.tables = {"store_sales", "item", "customer"};
  q.joins = db_.EdgesAmong(q.tables);
  q.predicates = {{"item", Predicate::Eq(item.ColumnIndex("i_brand"),
                                         1.0)}};
  auto plan = opt.Optimize(q).value();
  // item (filtered, tiny) should come before customer (unfiltered).
  auto item_pos =
      std::find(plan.order.begin(), plan.order.end(), "item");
  auto cust_pos =
      std::find(plan.order.begin(), plan.order.end(), "customer");
  EXPECT_LT(item_pos, cust_pos);
}

TEST_F(JoinOptimizerTest, AdjusterInflatesCost) {
  PgEstimator pg(db_);
  JoinQuery q;
  q.tables = {"store_sales", "item"};
  q.joins = db_.EdgesAmong(q.tables);

  JoinOptimizer plain(pg);
  auto base = plain.Optimize(q).value();

  JoinOptimizer adjusted(pg);
  adjusted.SetAdjuster([](double est, const std::vector<std::string>&) {
    return est + 10000.0;
  });
  auto inflated = adjusted.Optimize(q).value();
  EXPECT_GT(inflated.estimated_cost, base.estimated_cost);
  EXPECT_NEAR(inflated.estimated_cardinality,
              base.estimated_cardinality + 10000.0, 1e-6);
}

TEST_F(JoinOptimizerTest, SingleTablePlan) {
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  JoinQuery q;
  q.tables = {"item"};
  auto plan = opt.Optimize(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->order, std::vector<std::string>{"item"});
}

TEST_F(JoinOptimizerTest, DisconnectedGraphRejected) {
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  JoinQuery q;
  q.tables = {"item", "customer"};  // no edge between dimensions
  auto plan = opt.Optimize(q);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(JoinOptimizerTest, EmptyQueryRejected) {
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  EXPECT_FALSE(opt.Optimize(JoinQuery{}).ok());
}

TEST_F(JoinOptimizerTest, DpBeatsWorstOrder) {
  // The DP plan's estimated cost must be no worse than an adversarial
  // fixed order evaluated under the same cost model.
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  const Table& item = db_.table("item");
  JoinQuery q;
  q.tables = {"store_sales", "item", "customer", "store"};
  q.joins = db_.EdgesAmong(q.tables);
  q.predicates = {{"item", Predicate::Eq(item.ColumnIndex("i_category"),
                                         0.0)}};
  auto plan = opt.Optimize(q).value();

  // Cost of the order as given (fact first, unfiltered dims first).
  auto cost_of_order = [&](const std::vector<std::string>& order) {
    double cost = pg.EstimateJoinCardinality(q, {order[0]});
    std::vector<std::string> prefix = {order[0]};
    for (size_t i = 1; i < order.size(); ++i) {
      double base = pg.EstimateJoinCardinality(q, {order[i]});
      prefix.push_back(order[i]);
      double inter = pg.EstimateJoinCardinality(q, prefix);
      cost += base + pg.EstimateJoinCardinality(
                         q, std::vector<std::string>(prefix.begin(),
                                                     prefix.end() - 1)) +
              inter;
    }
    return cost;
  };
  std::vector<std::string> bad_order = {"store_sales", "customer", "store",
                                        "item"};
  EXPECT_LE(plan.estimated_cost, cost_of_order(bad_order) * 1.0001);
}

}  // namespace
}  // namespace confcard
