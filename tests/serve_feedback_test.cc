// The serving feedback loop's contracts: Observe routing and
// backpressure, warmup seeding, replay determinism of the adaptive
// trajectory (including out-of-order cross-shard feedback and 1-vs-4
// CONFCARD_THREADS), recalibration with a window of 1, an all-degraded
// primary (every answer from the fallback chain) keeping the loop
// functional, forced-breaker release on Stop, and the "shed":true JSONL
// record satellite.
#include "serve/serve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ce/histogram.h"
#include "ce/lwnn.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "conformal/scoring.h"
#include "conformal/split.h"
#include "data/generators.h"
#include "obs/event_log.h"
#include "query/workload.h"

namespace confcard {
namespace serve {
namespace {

struct Base {
  Table table;
  Workload workload;
};

Base MakeBase(size_t num_queries = 60) {
  TableSpec spec;
  spec.name = "fb";
  spec.num_rows = 1500;
  spec.seed = 19;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 30.0;
  spec.columns = {a, b};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = num_queries;
  wc.seed = 5;
  Workload wl = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(wl)};
}

// Histogram primary + guard + q-error conformal calibrated on the
// fixture workload (the same scoring the drift loop recalibrates).
struct FeedbackFixture {
  Base base = MakeBase();
  HistogramEstimator primary{base.table};
  GuardedEstimator guard{primary, base.table};
  SplitConformal scp{MakeScoring(ScoreKind::kQError), 0.1};
  double num_rows = static_cast<double>(base.table.num_rows());

  FeedbackFixture() {
    std::vector<double> estimates;
    std::vector<double> truths;
    for (const LabeledQuery& lq : base.workload) {
      estimates.push_back(primary.EstimateCardinality(lq.query));
      truths.push_back(lq.cardinality);
    }
    const Status st = scp.Calibrate(estimates, truths);
    EXPECT_TRUE(st.ok()) << st.message();
  }

  ServeFrontEnd::Options FeedbackOptions() const {
    ServeFrontEnd::Options o;
    o.feedback = true;
    o.flush_timeout_us = 0;
    return o;
  }
};

struct Served {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  bool degraded = false;
  int source = 0;

  bool operator==(const Served& other) const {
    return estimate == other.estimate && lo == other.lo && hi == other.hi &&
           degraded == other.degraded && source == other.source;
  }
};

// Lockstep submit -> wait -> Observe over the fixture workload, cycled
// `rounds` times so the recalibrator sees a long stream.
std::vector<Served> RunLockstep(ServeFrontEnd* front, const Workload& wl,
                                int rounds) {
  std::vector<Served> served;
  Request r;
  for (int round = 0; round < rounds; ++round) {
    for (const LabeledQuery& lq : wl) {
      r.Reset();
      r.query = lq.query;
      front->Submit(&r);
      r.Wait();
      served.push_back({r.response.estimate, r.response.lo, r.response.hi,
                        r.response.degraded, r.response.source});
      front->Observe(lq.query, lq.cardinality);
    }
  }
  return served;
}

TEST(ServeFeedbackTest, ObserveRequiresFeedbackEnabled) {
  FeedbackFixture f;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows);
  EXPECT_FALSE(front.Observe(f.base.workload[0].query, 10.0));
  front.Stop();
  EXPECT_FALSE(front.Observe(f.base.workload[0].query, 10.0));
}

TEST(ServeFeedbackTest, FullRingDropsInsteadOfBlocking) {
  FeedbackFixture f;
  ServeFrontEnd::Options o = f.FeedbackOptions();
  o.feedback_capacity = 4;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, o);
  // No requests flow, so no worker ever drains the ring: pushes beyond
  // capacity must fail fast and be counted, never block.
  size_t accepted = 0;
  for (int i = 0; i < 64; ++i) {
    if (front.Observe(f.base.workload[0].query, 5.0)) ++accepted;
  }
  EXPECT_LE(accepted, 4u);
  EXPECT_EQ(front.FeedbackDropped(), 64u - accepted);
  front.Stop();
}

TEST(ServeFeedbackTest, WarmupSeedsHealthyStage) {
  FeedbackFixture f;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, f.FeedbackOptions());
  front.WarmupFeedback(f.base.workload);
  EXPECT_EQ(front.ShardStage(0), DriftStage::kHealthy);
  // A served request after warmup gets a finite adaptive interval.
  Request r;
  r.query = f.base.workload[0].query;
  front.Submit(&r);
  r.Wait();
  EXPECT_FALSE(std::isinf(r.response.hi));
  EXPECT_LE(r.response.lo, r.response.hi);
  front.Stop();
}

TEST(ServeFeedbackTest, ReplayIsBitIdentical) {
  FeedbackFixture f;
  auto run = [&f]() {
    ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, f.FeedbackOptions());
    front.WarmupFeedback(f.base.workload);
    std::vector<Served> s = RunLockstep(&front, f.base.workload, 3);
    front.Stop();
    return s;
  };
  EXPECT_EQ(run(), run());
}

// The adaptive trajectory must be a pure function of each shard's
// feedback order. Observing the same per-shard sequences through a
// different *global* interleaving (all of shard A's truths before all
// of shard B's, vs stream order) must not change any response.
TEST(ServeFeedbackTest, CrossShardFeedbackOrderIsIndependent) {
  FeedbackFixture f;
  // Four shards over one shared (hence trivially identical) replica,
  // guarded independently so each shard owns its adaptive state.
  std::vector<std::unique_ptr<GuardedEstimator>> guards;
  std::vector<const GuardedEstimator*> shard_guards;
  HistogramEstimator replica(f.base.table);
  for (int i = 0; i < 4; ++i) {
    guards.push_back(std::make_unique<GuardedEstimator>(replica, f.base.table));
    shard_guards.push_back(guards.back().get());
  }

  auto run = [&](bool grouped_by_shard) {
    ServeFrontEnd front(shard_guards, f.scp, f.num_rows,
                        f.FeedbackOptions());
    front.WarmupFeedback(f.base.workload);
    std::vector<Served> served;
    Request r;
    for (int round = 0; round < 3; ++round) {
      // Serve the whole round first (estimates only depend on frozen
      // models), then feed truths back in the chosen global order.
      for (const LabeledQuery& lq : f.base.workload) {
        r.Reset();
        r.query = lq.query;
        front.Submit(&r);
        r.Wait();
        served.push_back({r.response.estimate, r.response.lo, r.response.hi,
                          r.response.degraded, r.response.source});
      }
      if (grouped_by_shard) {
        for (int shard = 0; shard < front.num_shards(); ++shard) {
          for (const LabeledQuery& lq : f.base.workload) {
            if (front.ShardFor(lq.query) != shard) continue;
            EXPECT_TRUE(front.Observe(lq.query, lq.cardinality));
          }
        }
      } else {
        for (const LabeledQuery& lq : f.base.workload) {
          EXPECT_TRUE(front.Observe(lq.query, lq.cardinality));
        }
      }
      // Quiesce: one served request per shard forces every worker
      // through a batch boundary, applying the queued feedback before
      // the next round's responses.
      for (const LabeledQuery& lq : f.base.workload) {
        r.Reset();
        r.query = lq.query;
        front.Submit(&r);
        r.Wait();
      }
    }
    front.Stop();
    return served;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ServeFeedbackTest, ThreadCountDoesNotChangeTrajectory) {
  FeedbackFixture f;
  auto run = [&f](int threads) {
    SetThreads(threads);
    ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, f.FeedbackOptions());
    front.WarmupFeedback(f.base.workload);
    std::vector<Served> s = RunLockstep(&front, f.base.workload, 3);
    front.Stop();
    return s;
  };
  const std::vector<Served> one = run(1);
  const std::vector<Served> four = run(4);
  SetThreads(0);  // restore the hardware default
  EXPECT_EQ(one, four);
}

TEST(ServeFeedbackTest, RecalWindowOfOneServesFiniteIntervals) {
  FeedbackFixture f;
  ServeFrontEnd::Options o = f.FeedbackOptions();
  o.recal_window = 1;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, o);
  front.WarmupFeedback(f.base.workload);
  const std::vector<Served> served = RunLockstep(&front, f.base.workload, 2);
  front.Stop();
  for (const Served& s : served) {
    EXPECT_LE(s.lo, s.hi);
    EXPECT_GE(s.lo, 0.0);
    // A size-1 calibration window at alpha 0.1 cannot produce a finite
    // quantile, so the loop must fall back to the frozen delta rather
    // than serve infinite or inverted intervals.
    EXPECT_FALSE(std::isinf(s.hi));
  }
}

// Every primary estimate NaN-faulted: the guard serves the entire
// stream from the fallback chain (all-degraded window) and the feedback
// loop keeps recalibrating on fallback scores instead of wedging.
TEST(ServeFeedbackTest, AllDegradedWindowKeepsAdapting) {
  Base base = MakeBase();
  LwnnEstimator::Options lo;
  lo.histogram_buckets = 6;
  lo.hidden1 = 8;
  lo.hidden2 = 4;
  lo.epochs = 4;
  LwnnEstimator primary(lo);
  ASSERT_TRUE(primary.Train(base.table, base.workload).ok());
  GuardedEstimator guard(primary, base.table);
  SplitConformal scp(MakeScoring(ScoreKind::kQError), 0.1);
  std::vector<double> estimates;
  std::vector<double> truths;
  for (const LabeledQuery& lq : base.workload) {
    estimates.push_back(primary.EstimateCardinality(lq.query));
    truths.push_back(lq.cardinality);
  }
  ASSERT_TRUE(scp.Calibrate(estimates, truths).ok());

  ASSERT_TRUE(fault::Registry::Instance()
                  .ConfigureFromString("lwnn.forward:nan@1")
                  .ok());
  ServeFrontEnd::Options o;
  o.feedback = true;
  o.flush_timeout_us = 0;
  ServeFrontEnd front({&guard}, scp,
                      static_cast<double>(base.table.num_rows()), o);
  front.WarmupFeedback(base.workload);
  std::vector<Served> served;
  Request r;
  for (int round = 0; round < 3; ++round) {
    for (const LabeledQuery& lq : base.workload) {
      r.Reset();
      r.query = lq.query;
      front.Submit(&r);
      r.Wait();
      served.push_back({r.response.estimate, r.response.lo, r.response.hi,
                        r.response.degraded, r.response.source});
      front.Observe(lq.query, lq.cardinality);
    }
  }
  front.Stop();
  fault::Registry::Instance().Clear();
  for (const Served& s : served) {
    EXPECT_TRUE(s.degraded);
    EXPECT_NE(s.source, 0);
    EXPECT_LE(s.lo, s.hi);
  }
}

// A ladder that forced the breaker open must not leave the shared guard
// latched after the front-end is gone (guards outlive front-ends).
TEST(ServeFeedbackTest, StopReleasesForcedBreaker) {
  FeedbackFixture f;
  {
    ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, f.FeedbackOptions());
    front.WarmupFeedback(f.base.workload);
    // Feed wildly wrong truths: coverage collapses, the ladder climbs
    // to kBreak, and the guard's breaker is forced open.
    Request r;
    for (int round = 0; round < 8; ++round) {
      for (const LabeledQuery& lq : f.base.workload) {
        r.Reset();
        r.query = lq.query;
        front.Submit(&r);
        r.Wait();
        front.Observe(lq.query, f.num_rows);  // truth pinned at N
      }
    }
    EXPECT_GT(static_cast<int>(front.ShardStage(0)), 0);
    front.Stop();
  }
  EXPECT_FALSE(f.guard.breaker_forced());
  EXPECT_FALSE(f.guard.breaker_open());
}

// Satellite: shed responses leave a "shed":true record in the JSONL
// event stream so load-shedding is auditable offline.
TEST(ServeFeedbackTest, ShedResponsesEmitJsonlRecords) {
  FeedbackFixture f;
  const std::string path = ::testing::TempDir() + "/shed_events.jsonl";
  ASSERT_TRUE(obs::EventLog::Instance().OpenForTest(path).ok());
  {
    ServeFrontEnd front({&f.guard}, f.scp, f.num_rows);
    front.Stop();  // stopped front: every Submit is shed
    Request r;
    r.query = f.base.workload[0].query;
    EXPECT_EQ(front.Submit(&r), Admit::kRejectedStopped);
    EXPECT_TRUE(r.response.shed);
  }
  obs::EventLog::Instance().CloseForTest();
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string contents = ss.str();
  EXPECT_NE(contents.find("\"shed\":true"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"type\":\"serve\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace confcard
