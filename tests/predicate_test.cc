#include "query/predicate.h"

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(PredicateTest, EqMatches) {
  Predicate p = Predicate::Eq(2, 5.0);
  EXPECT_EQ(p.op, PredOp::kEq);
  EXPECT_TRUE(p.Matches(5.0));
  EXPECT_FALSE(p.Matches(4.999));
  EXPECT_FALSE(p.Matches(5.001));
}

TEST(PredicateTest, BetweenMatchesInclusive) {
  Predicate p = Predicate::Between(0, 1.0, 3.0);
  EXPECT_TRUE(p.Matches(1.0));
  EXPECT_TRUE(p.Matches(2.0));
  EXPECT_TRUE(p.Matches(3.0));
  EXPECT_FALSE(p.Matches(0.999));
  EXPECT_FALSE(p.Matches(3.001));
}

TEST(PredicateTest, Equality) {
  EXPECT_EQ(Predicate::Eq(1, 2.0), Predicate::Eq(1, 2.0));
  EXPECT_FALSE(Predicate::Eq(1, 2.0) == Predicate::Eq(1, 3.0));
  EXPECT_FALSE(Predicate::Eq(1, 2.0) == Predicate::Between(1, 2.0, 2.0));
}

TEST(PredicateTest, ToStringForms) {
  EXPECT_EQ(ToString(Predicate::Eq(3, 5.0)), "c3=5");
  EXPECT_EQ(ToString(Predicate::Between(7, 1.0, 9.0)), "1<=c7<=9");
}

TEST(QueryTest, ToStringJoinsWithAnd) {
  Query q;
  q.predicates = {Predicate::Eq(0, 1.0), Predicate::Between(2, 0.0, 4.0)};
  EXPECT_EQ(ToString(q), "c0=1 AND 0<=c2<=4");
}

TEST(QueryTest, EmptyQueryToString) {
  Query q;
  EXPECT_EQ(ToString(q), "");
}

TEST(LabeledQueryTest, Selectivity) {
  LabeledQuery lq;
  lq.cardinality = 25.0;
  lq.num_rows = 100.0;
  EXPECT_DOUBLE_EQ(lq.selectivity(), 0.25);
}

}  // namespace
}  // namespace confcard
