#include "harness/report.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "harness/scale.h"

namespace confcard {
namespace {

MethodResult MakeResult() {
  MethodResult r;
  r.model = "m";
  r.method = "s-cp";
  r.rows = {{100.0, 90.0, 50.0, 150.0},
            {10.0, 12.0, 5.0, 20.0},
            {500.0, 450.0, 300.0, 460.0}};
  FinalizeMethodResult(&r, 1000.0);
  return r;
}

TEST(WinklerScoreTest, PenalizesMissesProperly) {
  // Covered row: score = width. Missed row: width + (2/alpha) * miss
  // distance. alpha = 0.1 -> penalty factor 20.
  MethodResult r;
  r.alpha = 0.1;
  r.rows = {{100.0, 100.0, 90.0, 110.0},   // covered, width 20
            {200.0, 150.0, 100.0, 180.0}}; // missed by 20, width 80
  FinalizeMethodResult(&r, 1000.0);
  const double expected =
      ((110.0 - 90.0) + (180.0 - 100.0 + 20.0 * (200.0 - 180.0))) / 2.0 /
      1000.0;
  EXPECT_NEAR(r.winkler_sel, expected, 1e-12);
}

TEST(WinklerScoreTest, PerfectCoverageEqualsMeanWidth) {
  MethodResult r;
  r.alpha = 0.2;
  r.rows = {{50.0, 50.0, 40.0, 60.0}, {70.0, 70.0, 50.0, 90.0}};
  FinalizeMethodResult(&r, 100.0);
  EXPECT_NEAR(r.winkler_sel, r.mean_width_sel, 1e-12);
}

TEST(ReportTest, MethodTablePrintsEveryRow) {
  ::testing::internal::CaptureStdout();
  PrintExperimentHeader("Test", "title");
  PrintMethodTable({MakeResult(), MakeResult()});
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Test — title"), std::string::npos);
  EXPECT_NE(out.find("coverage"), std::string::npos);
  // Two data rows with the model name.
  size_t first = out.find("m          s-cp");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find("m          s-cp", first + 1), std::string::npos);
}

TEST(ReportTest, SeriesSortedByTruthAndNormalized) {
  ::testing::internal::CaptureStdout();
  PrintSeries(MakeResult(), 1000.0, 10);
  std::string out = ::testing::internal::GetCapturedStdout();
  // Truths 10, 100, 500 normalized to 0.01, 0.1, 0.5 in that order.
  size_t p1 = out.find("0.010000");
  size_t p2 = out.find("0.100000");
  size_t p3 = out.find("0.500000");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  // The uncovered row is flagged.
  EXPECT_NE(out.find("NO"), std::string::npos);
}

TEST(ReportTest, SeriesSubsamplesToMaxPoints) {
  MethodResult r;
  r.model = "m";
  r.method = "x";
  for (int i = 0; i < 100; ++i) {
    double v = static_cast<double>(i);
    r.rows.push_back({v, v, v - 1, v + 1});
  }
  FinalizeMethodResult(&r, 100.0);
  ::testing::internal::CaptureStdout();
  PrintSeries(r, 100.0, 5);
  std::string out = ::testing::internal::GetCapturedStdout();
  // Header + column names + 5 data lines.
  size_t lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u + 5u);
}

TEST(ReportTest, WriteSeriesCsvRoundtrips) {
  const auto path = std::filesystem::temp_directory_path() /
                    "confcard_report_test.csv";
  ::testing::internal::CaptureStdout();
  Status st = WriteSeriesCsv(path.string(), MakeResult());
  (void)::testing::internal::GetCapturedStdout();
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto rows = ReadCsv(path.string(), true);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0].size(), 5u);
  std::filesystem::remove(path);
}

TEST(ReportTest, WriteSeriesCsvPropagatesOpenFailure) {
  // Directory component that cannot exist: the open fails and the error
  // must surface as a non-OK Status instead of a printf.
  Status st = WriteSeriesCsv("/nonexistent-dir/x/series.csv", MakeResult());
  EXPECT_FALSE(st.ok());
}

TEST(ScaleTest, ScaledAppliesFloorAndFactor) {
  // CONFCARD_SCALE is unset (or numeric) in the test environment; the
  // floor must hold regardless.
  EXPECT_GE(bench::Scaled(100, 64), 64u);
  EXPECT_GE(bench::BenchScale(), 0.01);
  EXPECT_LE(bench::BenchScale(), 1000.0);
}

}  // namespace
}  // namespace confcard
