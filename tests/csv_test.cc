#include "common/csv.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(SplitCsvLineTest, Simple) {
  auto f = SplitCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLineTest, EmptyFields) {
  auto f = SplitCsvLine(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(SplitCsvLineTest, QuotedDelimiter) {
  auto f = SplitCsvLine("\"a,b\",c");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
}

TEST(SplitCsvLineTest, EscapedQuote) {
  auto f = SplitCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(SplitCsvLineTest, CarriageReturnStripped) {
  auto f = SplitCsvLine("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(SplitCsvLineTest, CustomDelimiter) {
  auto f = SplitCsvLine("a|b|c", '|');
  ASSERT_EQ(f.size(), 3u);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // random_seed() is 0 in every process unless shuffling is on, so it
    // does not disambiguate parallel ctest cases; the pid does.
    path_ = std::filesystem::temp_directory_path() /
            ("confcard_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteReadRoundtrip) {
  std::vector<std::string> header = {"x", "y"};
  std::vector<std::vector<std::string>> rows = {{"1", "a,b"}, {"2", "c"}};
  ASSERT_TRUE(WriteCsv(path_.string(), header, rows).ok());

  std::vector<std::string> got_header;
  auto got = ReadCsv(path_.string(), true, &got_header);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got_header, header);
  ASSERT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0][1], "a,b");
  EXPECT_EQ((*got)[1][0], "2");
}

TEST_F(CsvFileTest, ReadNoHeader) {
  ASSERT_TRUE(WriteCsv(path_.string(), {}, {{"1"}, {"2"}}).ok());
  auto got = ReadCsv(path_.string(), false);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2u);
}

TEST_F(CsvFileTest, SkipsEmptyLines) {
  std::ofstream out(path_);
  out << "h\n\n1\n\n2\n";
  out.close();
  auto got = ReadCsv(path_.string(), true);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2u);
}

TEST(CsvErrorTest, MissingFileIsIOError) {
  auto got = ReadCsv("/nonexistent/confcard.csv");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST(CsvErrorTest, UnwritablePathIsIOError) {
  Status st = WriteCsv("/nonexistent/dir/confcard.csv", {"a"}, {});
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace confcard
