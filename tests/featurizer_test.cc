#include "ce/featurizer.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/multitable.h"
#include "query/join_workload.h"

namespace confcard {
namespace {

Table MakeTable() {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 500;
  spec.seed = 9;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 4;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 10.0;
  spec.columns = {a, b};
  return GenerateTable(spec).value();
}

TEST(FlatQueryFeaturizerTest, DimAndLayout) {
  Table t = MakeTable();
  FlatQueryFeaturizer f(t);
  EXPECT_EQ(f.dim(), 5u * 2u + 1u);

  Query q;
  q.predicates = {Predicate::Between(1, 2.0, 6.0)};
  auto v = f.Featurize(q);
  ASSERT_EQ(v.size(), f.dim());
  // Column 0 unconstrained: full range markers.
  EXPECT_FLOAT_EQ(v[0], 0.0f);   // has_pred
  EXPECT_FLOAT_EQ(v[3], 1.0f);   // hi
  EXPECT_FLOAT_EQ(v[4], 1.0f);   // width
  // Column 1 constrained: normalized [0.2, 0.6].
  EXPECT_FLOAT_EQ(v[5], 1.0f);
  EXPECT_FLOAT_EQ(v[6], 0.0f);   // range, not equality
  EXPECT_NEAR(v[7], 0.2f, 5e-3f);
  EXPECT_NEAR(v[8], 0.6f, 5e-3f);
  EXPECT_NEAR(v[9], 0.4f, 5e-3f);
  // Predicate count fraction.
  EXPECT_FLOAT_EQ(v[10], 0.5f);
}

TEST(FlatQueryFeaturizerTest, LiteralsClamped) {
  Table t = MakeTable();
  FlatQueryFeaturizer f(t);
  Query q;
  q.predicates = {Predicate::Between(1, -100.0, 100.0)};
  auto v = f.Featurize(q);
  EXPECT_FLOAT_EQ(v[7], 0.0f);
  EXPECT_FLOAT_EQ(v[8], 1.0f);
}

TEST(MscnFeaturizerTest, ShapesWithoutBitmaps) {
  Table t = MakeTable();
  MscnFeaturizer f(t, nullptr);
  EXPECT_EQ(f.table_dim(), 2u);
  EXPECT_EQ(f.predicate_dim(), 2u + 2u + 2u);
  Query q;
  q.predicates = {Predicate::Eq(0, 2.0)};
  MscnInput in = f.Featurize(q);
  ASSERT_EQ(in.tables.size(), 1u);
  EXPECT_TRUE(in.joins.empty());
  ASSERT_EQ(in.predicates.size(), 1u);
  EXPECT_EQ(in.predicates[0].size(), f.predicate_dim());
  // Column one-hot and eq marker.
  EXPECT_FLOAT_EQ(in.predicates[0][0], 1.0f);
  EXPECT_FLOAT_EQ(in.predicates[0][2], 1.0f);
}

TEST(MscnFeaturizerTest, BitmapAttachedToTableVector) {
  Table t = MakeTable();
  SamplingEstimator sampler(t, 32);
  MscnFeaturizer f(t, &sampler);
  EXPECT_EQ(f.table_dim(), 2u + 32u);
  Query q;  // no predicates: every sampled row matches
  MscnInput in = f.Featurize(q);
  float sum = 0.0f;
  for (size_t i = 2; i < in.tables[0].size(); ++i) sum += in.tables[0][i];
  EXPECT_FLOAT_EQ(sum, 32.0f);
}

class JoinFeaturizerTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeDsbLike(2000, 13).value(); }
  Database db_;
};

TEST_F(JoinFeaturizerTest, Dims) {
  MscnJoinFeaturizer f(db_);
  EXPECT_EQ(f.table_dim(), db_.tables().size() + 1);
  EXPECT_EQ(f.join_dim(), db_.join_edges().size());
  size_t total_cols = 0;
  for (const Table& t : db_.tables()) total_cols += t.num_columns();
  EXPECT_EQ(f.predicate_dim(), total_cols + 4);
  EXPECT_EQ(f.flat_dim(), db_.tables().size() + db_.join_edges().size() +
                              5 * total_cols);
}

TEST_F(JoinFeaturizerTest, FeaturizesJoinQuery) {
  MscnJoinFeaturizer f(db_);
  JoinQuery q;
  q.tables = {"store_sales", "item"};
  q.joins = db_.EdgesAmong(q.tables);
  const Table& item = db_.table("item");
  q.predicates = {{"item", Predicate::Eq(item.ColumnIndex("i_category"),
                                         1.0)}};
  MscnInput in = f.Featurize(q);
  EXPECT_EQ(in.tables.size(), 2u);
  EXPECT_EQ(in.joins.size(), 1u);
  EXPECT_EQ(in.predicates.size(), 1u);
  // Join one-hot set exactly once.
  float jsum = 0.0f;
  for (float v : in.joins[0]) jsum += v;
  EXPECT_FLOAT_EQ(jsum, 1.0f);
}

TEST_F(JoinFeaturizerTest, FlatFeaturesMarkTablesAndJoins) {
  MscnJoinFeaturizer f(db_);
  JoinQuery q;
  q.tables = {"store_sales", "store"};
  q.joins = db_.EdgesAmong(q.tables);
  auto v = f.FlatFeaturize(q);
  ASSERT_EQ(v.size(), f.flat_dim());
  float tsum = 0.0f;
  for (size_t i = 0; i < db_.tables().size(); ++i) tsum += v[i];
  EXPECT_FLOAT_EQ(tsum, 2.0f);
}

TEST_F(JoinFeaturizerTest, EdgeMatchingIsDirectionAgnostic) {
  MscnJoinFeaturizer f(db_);
  JoinQuery q;
  q.tables = {"store_sales", "store"};
  JoinEdge e = db_.EdgesAmong(q.tables)[0];
  std::swap(e.left_table, e.right_table);
  std::swap(e.left_column, e.right_column);
  q.joins = {e};
  MscnInput in = f.Featurize(q);
  float jsum = 0.0f;
  for (float v : in.joins[0]) jsum += v;
  EXPECT_FLOAT_EQ(jsum, 1.0f);
}

}  // namespace
}  // namespace confcard
