// EventLog v2 concurrency tests: per-thread staged records merge in
// deterministic (order-key) order regardless of thread count or
// scheduling, single-threaded emission order is preserved byte for byte,
// and the fatal-signal flush leaves a parseable partial log.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/json.h"

namespace confcard {
namespace obs {
namespace {

// Pid-qualified: two build trees (e.g. plain + TSan) may run this
// binary concurrently, and a shared /tmp path would let one process
// delete the file the other is reading.
std::string TempPath(const char* stem) {
  return ::testing::TempDir() + std::to_string(getpid()) + "_" + stem;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string Record(int window, int index) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("merge_test");
  w.Key("window").Int(static_cast<uint64_t>(window));
  w.Key("index").Int(static_cast<uint64_t>(index));
  w.EndObject();
  return w.TakeString();
}

// Stages kWindows sweeps of kPerWindow records with explicit order keys,
// spread over `threads` threads the way a harness sweep spreads chunk
// work. Which thread stages which record varies by scheduling; the keys
// do not.
void EmitWorkload(EventLog& elog, int threads) {
  constexpr int kWindows = 3;
  constexpr int kPerWindow = 40;
  for (int s = 0; s < kWindows; ++s) {
    const uint64_t window = elog.NextOrderWindow();
    std::atomic<int> next{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1);
          if (i >= kPerWindow) return;
          // Record content carries the sweep ordinal, not the raw
          // window id: the process-global window counter differs across
          // runs while the bytes must not.
          elog.AppendRecordOrdered(
              Record(s, i),
              EventLog::OrderKey(window, static_cast<uint64_t>(i)));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
}

std::string RunWorkload(const char* stem, int threads) {
  EventLog& elog = EventLog::Instance();
  const std::string path = TempPath(stem);
  EXPECT_TRUE(elog.OpenForTest(path).ok());
  EmitWorkload(elog, threads);
  elog.CloseForTest();
  return path;
}

TEST(EventLogMergeTest, FourThreadMergeIsSortedByOrderKey) {
  const std::string path = RunWorkload("merge4.jsonl", 4);
  auto events = ReadJsonlFile(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 120u);
  // File order must be (window, index) lexicographic.
  size_t k = 0;
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 40; ++i, ++k) {
      const JsonValue& e = (*events)[k];
      EXPECT_EQ(static_cast<int>(e.Find("index")->number), i);
    }
  }
  std::remove(path.c_str());
}

TEST(EventLogMergeTest, OneVsFourThreadsProduceIdenticalBytes) {
  const std::string p1 = RunWorkload("merge_t1.jsonl", 1);
  const std::string p4 = RunWorkload("merge_t4.jsonl", 4);
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p4));
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

TEST(EventLogMergeTest, RepeatedFourThreadRunsAreIdentical) {
  const std::string a = RunWorkload("merge_a.jsonl", 4);
  const std::string b = RunWorkload("merge_b.jsonl", 4);
  EXPECT_EQ(ReadFileBytes(a), ReadFileBytes(b));
  EXPECT_FALSE(ReadFileBytes(a).empty());
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(EventLogMergeTest, SerialAppendOrderIsEmissionOrder) {
  EventLog& elog = EventLog::Instance();
  const std::string path = TempPath("serial_order.jsonl");
  ASSERT_TRUE(elog.OpenForTest(path).ok());
  // Interleave staged records with direct appends: each direct append is
  // a serial point, so the staged record it follows must land before it.
  for (int i = 0; i < 20; ++i) {
    elog.AppendRecord(Record(0, 2 * i));  // staged
    QueryEvent e;
    e.query_id = static_cast<uint64_t>(2 * i + 1);
    e.model = "m";
    e.method = "s-cp";
    elog.Append(e);  // serial point
  }
  elog.CloseForTest();
  auto events = ReadJsonlFile(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 40u);
  for (size_t k = 0; k < events->size(); ++k) {
    const JsonValue& e = (*events)[k];
    const JsonValue* index = e.Find("index");
    const JsonValue* q = e.Find("q");
    const uint64_t pos = static_cast<uint64_t>(
        index != nullptr ? index->number : q->number);
    EXPECT_EQ(pos, k);
  }
  std::remove(path.c_str());
}

TEST(EventLogMergeTest, AutoKeyedRecordsAllSurviveFourThreads) {
  EventLog& elog = EventLog::Instance();
  const std::string path = TempPath("auto_keys.jsonl");
  ASSERT_TRUE(elog.OpenForTest(path).ok());
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        elog.AppendRecord(Record(t, i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(elog.appended(), 4u * kPerThread);
  elog.CloseForTest();
  auto events = ReadJsonlFile(path);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 4u * kPerThread);
  // Auto keys preserve per-thread emission order even though cross-thread
  // interleaving depends on window-allocation timing.
  int last_index[4] = {-1, -1, -1, -1};
  for (const JsonValue& e : *events) {
    const int t = static_cast<int>(e.Find("window")->number);
    const int i = static_cast<int>(e.Find("index")->number);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 4);
    EXPECT_GT(i, last_index[t]);
    last_index[t] = i;
  }
  std::remove(path.c_str());
}

TEST(EventLogCrashTest, FatalSignalFlushesBufferedAndStagedRecords) {
  const std::string path = TempPath("crash_flush.jsonl");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        EventLog& elog = EventLog::Instance();
        if (!elog.OpenForTest(path).ok()) std::exit(3);
        // A direct append lands in the central buffer; a staged record
        // sits in the thread-local stage. Neither has hit the file yet.
        QueryEvent e;
        e.query_id = 7;
        e.model = "m";
        e.method = "s-cp";
        elog.Append(e);
        elog.AppendRecord(Record(1, 2));
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");
  size_t skipped = 0;
  auto events = ReadJsonlFile(path, &skipped);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace confcard
