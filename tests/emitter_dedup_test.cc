// Duplicate-arming gate for the exit emitter: this binary links two
// translation units that both include bench_common.h (each instantiating
// the inline arming global) and one of which calls InstallMetricsEmitter
// again explicitly. The test re-executes itself with
// CONFCARD_METRICS_JSON set and asserts that the child wrote exactly one
// artifact, logged the "metrics artifact written" line exactly once, and
// recorded a single arming in the "obs.emitter.installs" counter.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "bench_common.h"

namespace confcard {
namespace bench {
// Defined in emitter_dup_other.cc; referencing it keeps that TU's static
// initializer (the duplicate arming path) in the link.
bool SecondTuInstalled();
}  // namespace bench

namespace {

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Child mode: both arming paths already ran during static init; exiting
// normally lets the atexit hook emit. Nothing to assert here — the
// parent inspects the output.
TEST(EmitterDedupTest, ChildIsNoop) {
  SUCCEED();
}

TEST(EmitterDedupTest, TwoArmingTusEmitExactlyOneArtifact) {
  // Without the env var, neither arming path does anything — and both
  // report the same disarmed state.
  ASSERT_EQ(std::getenv("CONFCARD_METRICS_JSON"), nullptr)
      << "test binary must run without CONFCARD_METRICS_JSON";
  EXPECT_FALSE(bench::kMetricsEmitterInstalled);
  EXPECT_FALSE(bench::SecondTuInstalled());

  const auto self = std::filesystem::read_symlink("/proc/self/exe");
  const auto tmp = std::filesystem::temp_directory_path();
  const auto artifact = tmp / "confcard_emitter_dedup.json";
  const auto stderr_path = tmp / "confcard_emitter_dedup.stderr";
  std::filesystem::remove(artifact);
  std::filesystem::remove(stderr_path);

  const std::string cmd =
      "CONFCARD_METRICS_JSON=" + artifact.string() + " " + self.string() +
      " --gtest_filter=EmitterDedupTest.ChildIsNoop > /dev/null 2> " +
      stderr_path.string();
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // Exactly one emission line, one artifact, one recorded arming.
  const std::string err = ReadFileOrEmpty(stderr_path);
  EXPECT_EQ(CountOccurrences(err, "metrics artifact written"), 1u) << err;

  ASSERT_TRUE(std::filesystem::exists(artifact));
  Result<obs::JsonValue> doc = obs::ParseJson(ReadFileOrEmpty(artifact));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* installs = counters->Find("obs.emitter.installs");
  ASSERT_NE(installs, nullptr);
  EXPECT_EQ(installs->number, 1.0);

  std::filesystem::remove(artifact);
  std::filesystem::remove(stderr_path);
}

}  // namespace
}  // namespace confcard
