#include "exec/scan.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace confcard {
namespace {

Table TinyTable() {
  std::vector<Column> cols;
  cols.push_back(Column::Categorical("a", 3, {0, 1, 2, 1, 0, 2}));
  cols.push_back(Column::Numeric("b", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}));
  return Table::Make("t", std::move(cols)).value();
}

TEST(ScanTest, NoPredicatesCountsAll) {
  Table t = TinyTable();
  EXPECT_EQ(CountMatches(t, Query{}), 6u);
  EXPECT_EQ(FilterIndices(t, Query{}).size(), 6u);
}

TEST(ScanTest, SingleEquality) {
  Table t = TinyTable();
  Query q;
  q.predicates = {Predicate::Eq(0, 1.0)};
  EXPECT_EQ(CountMatches(t, q), 2u);
  auto idx = FilterIndices(t, q);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
}

TEST(ScanTest, RangePredicate) {
  Table t = TinyTable();
  Query q;
  q.predicates = {Predicate::Between(1, 2.0, 4.0)};
  EXPECT_EQ(CountMatches(t, q), 3u);
}

TEST(ScanTest, Conjunction) {
  Table t = TinyTable();
  Query q;
  q.predicates = {Predicate::Between(1, 2.0, 6.0), Predicate::Eq(0, 2.0)};
  EXPECT_EQ(CountMatches(t, q), 2u);  // rows 2 and 5
}

TEST(ScanTest, EmptyResult) {
  Table t = TinyTable();
  Query q;
  q.predicates = {Predicate::Eq(1, 100.0)};
  EXPECT_EQ(CountMatches(t, q), 0u);
  EXPECT_TRUE(FilterIndices(t, q).empty());
}

TEST(ScanTest, FilterWithCandidates) {
  Table t = TinyTable();
  Query q;
  q.predicates = {Predicate::Eq(0, 2.0)};  // rows 2, 5
  std::vector<uint32_t> candidates = {0, 2, 4};
  auto idx = FilterIndices(t, q, candidates);
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0], 2u);
}

// Property test: the columnar scan must agree with a naive row-at-a-time
// evaluator on randomized tables and queries.
class ScanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScanPropertyTest, MatchesNaiveEvaluator) {
  const uint64_t seed = GetParam();
  TableSpec spec;
  spec.name = "p";
  spec.num_rows = 700;
  spec.seed = seed;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 8;
  a.zipf_skew = 0.7;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = -10;
  b.num_max = 10;
  ColumnSpec c;
  c.name = "c";
  c.domain_size = 3;
  spec.columns = {a, b, c};
  Table t = GenerateTable(spec).value();

  Rng rng(seed ^ 0xABCD);
  for (int trial = 0; trial < 40; ++trial) {
    Query q;
    int k = static_cast<int>(rng.NextInt64(1, 3));
    for (int i = 0; i < k; ++i) {
      int col = static_cast<int>(rng.NextUint64(3));
      if (col == 1) {
        double lo = rng.NextDouble(-12, 10);
        q.predicates.push_back(
            Predicate::Between(col, lo, lo + rng.NextDouble(0, 8)));
      } else {
        q.predicates.push_back(Predicate::Eq(
            col, static_cast<double>(rng.NextUint64(col == 0 ? 8 : 3))));
      }
    }
    uint64_t naive = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      bool match = true;
      for (const Predicate& p : q.predicates) {
        if (!p.Matches(t.At(r, static_cast<size_t>(p.column)))) {
          match = false;
          break;
        }
      }
      naive += match ? 1 : 0;
    }
    EXPECT_EQ(CountMatches(t, q), naive) << ToString(q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace confcard
