#include "common/stopwatch.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace confcard {
namespace {

void SpinFor(std::chrono::microseconds us) {
  // Busy-wait: sleep_for can oversleep by milliseconds on loaded CI
  // machines, which would make the paused-time assertions flaky.
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(StopwatchTest, StartsRunningAndAdvances) {
  Stopwatch w;
  EXPECT_TRUE(w.IsRunning());
  SpinFor(std::chrono::microseconds(200));
  EXPECT_GT(w.ElapsedMicros(), 0.0);
}

TEST(StopwatchTest, ElapsedIsMonotoneWhileRunning) {
  Stopwatch w;
  const double a = w.ElapsedSeconds();
  SpinFor(std::chrono::microseconds(100));
  const double b = w.ElapsedSeconds();
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, PausedElapsedIsStable) {
  Stopwatch w;
  SpinFor(std::chrono::microseconds(200));
  w.Pause();
  EXPECT_FALSE(w.IsRunning());
  const double frozen = w.ElapsedMicros();
  SpinFor(std::chrono::microseconds(500));
  EXPECT_DOUBLE_EQ(w.ElapsedMicros(), frozen);
}

TEST(StopwatchTest, PauseExcludesAndResumeAccumulates) {
  Stopwatch w;
  SpinFor(std::chrono::microseconds(200));
  w.Pause();
  const double before_gap = w.ElapsedMicros();
  SpinFor(std::chrono::milliseconds(2));  // excluded
  w.Resume();
  EXPECT_TRUE(w.IsRunning());
  SpinFor(std::chrono::microseconds(200));
  const double total = w.ElapsedMicros();
  // The 2 ms gap is excluded: total grew, but by far less than the gap.
  EXPECT_GT(total, before_gap);
  EXPECT_LT(total, before_gap + 1900.0);
}

TEST(StopwatchTest, PauseAndResumeAreIdempotent) {
  Stopwatch w;
  w.Pause();
  const double frozen = w.ElapsedMicros();
  w.Pause();  // no-op
  EXPECT_DOUBLE_EQ(w.ElapsedMicros(), frozen);
  w.Resume();
  w.Resume();  // no-op
  EXPECT_TRUE(w.IsRunning());
}

TEST(StopwatchTest, RestartDiscardsAccumulatedTime) {
  Stopwatch w;
  SpinFor(std::chrono::milliseconds(2));
  w.Pause();
  EXPECT_GT(w.ElapsedMicros(), 1000.0);
  w.Restart();
  EXPECT_TRUE(w.IsRunning());
  // Fresh start: far below the ~2 ms accumulated before the restart.
  EXPECT_LT(w.ElapsedMicros(), 1000.0);
}

TEST(StopwatchTest, RestartWhilePausedResumesRunning) {
  Stopwatch w;
  w.Pause();
  w.Restart();
  EXPECT_TRUE(w.IsRunning());
  SpinFor(std::chrono::microseconds(100));
  EXPECT_GT(w.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace confcard
