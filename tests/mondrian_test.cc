#include "conformal/mondrian.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

// Two groups with very different noise scales, keyed on feature[0].
struct GroupedStream {
  std::vector<std::vector<float>> features;
  std::vector<double> estimates;
  std::vector<double> truths;
};

GroupedStream MakeGrouped(size_t n, uint64_t seed) {
  Rng rng(seed);
  GroupedStream s;
  for (size_t i = 0; i < n; ++i) {
    const bool hard = rng.NextBool(0.5);
    const double sigma = hard ? 200.0 : 5.0;
    const double signal = 1000.0;
    s.features.push_back({hard ? 1.0f : 0.0f});
    s.estimates.push_back(signal);
    s.truths.push_back(signal + sigma * rng.NextGaussian());
  }
  return s;
}

MondrianConformal::GroupFn GroupByFirstFeature() {
  return [](const std::vector<float>& f) {
    return f.empty() ? 0 : static_cast<int>(f[0]);
  };
}

TEST(MondrianTest, PerGroupDeltasReflectGroupNoise) {
  MondrianConformal::Options opts;
  opts.alpha = 0.1;
  MondrianConformal mc(MakeScoring(ScoreKind::kResidual),
                       GroupByFirstFeature(), opts);
  GroupedStream cal = MakeGrouped(4000, 1);
  ASSERT_TRUE(mc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  EXPECT_EQ(mc.num_groups(), 2u);
  EXPECT_GT(mc.DeltaForGroup(1), 10.0 * mc.DeltaForGroup(0));
  // Global delta sits between the two.
  EXPECT_GT(mc.global_delta(), mc.DeltaForGroup(0));
  EXPECT_LE(mc.global_delta(), mc.DeltaForGroup(1));
}

TEST(MondrianTest, RestoresPerGroupCoverage) {
  // Marginal S-CP over-covers the easy group and under-covers the hard
  // one; Mondrian holds ~90% in each.
  MondrianConformal::Options opts;
  opts.alpha = 0.1;
  MondrianConformal mc(MakeScoring(ScoreKind::kResidual),
                       GroupByFirstFeature(), opts);
  GroupedStream cal = MakeGrouped(4000, 2);
  ASSERT_TRUE(mc.Calibrate(cal.features, cal.estimates, cal.truths).ok());

  GroupedStream test = MakeGrouped(4000, 3);
  double covered[2] = {0, 0}, total[2] = {0, 0};
  for (size_t i = 0; i < test.truths.size(); ++i) {
    Interval iv = mc.Predict(test.estimates[i], test.features[i]);
    const int g = static_cast<int>(test.features[i][0]);
    covered[g] += iv.Contains(test.truths[i]) ? 1.0 : 0.0;
    total[g] += 1.0;
  }
  for (int g : {0, 1}) {
    const double cov = covered[g] / total[g];
    EXPECT_GE(cov, 0.86) << "group " << g;
    EXPECT_LE(cov, 0.97) << "group " << g;
  }
}

TEST(MondrianTest, SmallGroupsFallBackToGlobal) {
  MondrianConformal::Options opts;
  opts.alpha = 0.1;
  opts.min_group_size = 1000;  // force fallback
  MondrianConformal mc(MakeScoring(ScoreKind::kResidual),
                       GroupByFirstFeature(), opts);
  GroupedStream cal = MakeGrouped(400, 4);
  ASSERT_TRUE(mc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  EXPECT_EQ(mc.num_groups(), 0u);
  EXPECT_DOUBLE_EQ(mc.DeltaForGroup(0), mc.global_delta());
  EXPECT_DOUBLE_EQ(mc.DeltaForGroup(77), mc.global_delta());
}

TEST(MondrianTest, UnseenGroupUsesGlobal) {
  MondrianConformal::Options opts;
  MondrianConformal mc(MakeScoring(ScoreKind::kResidual),
                       GroupByFirstFeature(), opts);
  GroupedStream cal = MakeGrouped(2000, 5);
  ASSERT_TRUE(mc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  EXPECT_DOUBLE_EQ(mc.DeltaForGroup(42), mc.global_delta());
}

TEST(MondrianTest, RejectsBadInputs) {
  MondrianConformal mc(MakeScoring(ScoreKind::kResidual),
                       GroupByFirstFeature(), {});
  EXPECT_FALSE(mc.Calibrate({}, {}, {}).ok());
  EXPECT_FALSE(mc.Calibrate({{1.0f}}, {1.0}, {}).ok());
  EXPECT_FALSE(mc.calibrated());
}

TEST(GroupByPredicateCountTest, CountsConstrainedColumns) {
  auto fn = GroupByPredicateCount(3);
  // Layout: 5 features per column; feature 5c is has_predicate.
  std::vector<float> f(16, 0.0f);
  EXPECT_EQ(fn(f), 0);
  f[0] = 1.0f;
  f[10] = 1.0f;
  EXPECT_EQ(fn(f), 2);
}

}  // namespace
}  // namespace confcard
