#include "query/join_workload.h"

#include <set>

#include <gtest/gtest.h>

#include "exec/join.h"

namespace confcard {
namespace {

TEST(JoinTemplatesTest, DsbHasFifteenTemplates) {
  auto tpls = DsbTemplates();
  EXPECT_EQ(tpls.size(), 15u);  // all non-empty subsets of 4 dimensions
  for (const JoinTemplate& t : tpls) {
    EXPECT_EQ(t.tables.front(), "store_sales");
    EXPECT_EQ(t.predicate_columns.size(), t.tables.size() - 1);
  }
}

TEST(JoinTemplatesTest, JobTemplatesStartAtTitle) {
  auto tpls = JobTemplates();
  EXPECT_GE(tpls.size(), 8u);
  for (const JoinTemplate& t : tpls) {
    EXPECT_EQ(t.tables.front(), "title");
    EXPECT_GE(t.tables.size(), 2u);
  }
}

class JoinWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeDsbLike(4000, 17).value(); }
  Database db_;
};

TEST_F(JoinWorkloadTest, GeneratesPerTemplate) {
  JoinWorkloadConfig cfg;
  cfg.queries_per_template = 5;
  auto tpls = DsbTemplates();
  tpls.resize(4);
  auto wl = GenerateJoinWorkload(db_, tpls, cfg);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->size(), 20u);
}

TEST_F(JoinWorkloadTest, LabelsMatchExecutor) {
  JoinWorkloadConfig cfg;
  cfg.queries_per_template = 4;
  auto tpls = DsbTemplates();
  tpls.resize(3);
  auto wl = GenerateJoinWorkload(db_, tpls, cfg).value();
  for (const LabeledJoinQuery& lq : wl) {
    auto res = ExecuteJoin(db_, lq.query);
    ASSERT_TRUE(res.ok());
    EXPECT_DOUBLE_EQ(lq.cardinality,
                     static_cast<double>(res->cardinality));
  }
}

TEST_F(JoinWorkloadTest, DedupAcrossInstantiations) {
  JoinWorkloadConfig cfg;
  cfg.queries_per_template = 20;
  std::vector<JoinTemplate> tpls = {DsbTemplates()[0]};
  auto wl = GenerateJoinWorkload(db_, tpls, cfg).value();
  std::set<std::string> keys;
  for (const LabeledJoinQuery& lq : wl) {
    std::string key;
    for (const auto& tp : lq.query.predicates) {
      key += tp.table + ToString(tp.pred) + "|";
    }
    keys.insert(key);
  }
  EXPECT_EQ(keys.size(), wl.size());
}

TEST_F(JoinWorkloadTest, DeterministicBySeed) {
  JoinWorkloadConfig cfg;
  cfg.queries_per_template = 3;
  std::vector<JoinTemplate> tpls = {DsbTemplates()[2]};
  auto a = GenerateJoinWorkload(db_, tpls, cfg).value();
  auto b = GenerateJoinWorkload(db_, tpls, cfg).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].cardinality, b[i].cardinality);
  }
}

TEST_F(JoinWorkloadTest, UnknownTableRejected) {
  JoinTemplate bad;
  bad.tables = {"nope"};
  EXPECT_FALSE(GenerateJoinWorkload(db_, {bad}, {}).ok());
}

TEST_F(JoinWorkloadTest, EmptyTemplatesRejected) {
  EXPECT_FALSE(GenerateJoinWorkload(db_, {}, {}).ok());
}

TEST(JoinWorkloadImdbTest, JobWorkloadOverImdbSchema) {
  Database db = MakeImdbLike(1500, 19).value();
  JoinWorkloadConfig cfg;
  cfg.queries_per_template = 3;
  auto wl = GenerateJoinWorkload(db, JobTemplates(), cfg);
  ASSERT_TRUE(wl.ok());
  EXPECT_GE(wl->size(), 3u * 8u);
  for (const LabeledJoinQuery& lq : *wl) {
    EXPECT_GE(lq.cardinality, 0.0);
  }
}

}  // namespace
}  // namespace confcard
