// The serving front-end's contracts: bit-identity of the micro-batched
// path against the per-query guarded path (at 1 and 4 shards), the B=1
// and T=0 degenerate batching modes, queue-full and breaker-watermark
// shedding, clean drain on Stop() with requests in flight, quarantine
// of invalid queries, multi-producer submission, and the scratch-reuse
// overload of EstimateBatchGuarded.
#include "serve/serve.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "ce/guarded.h"
#include "ce/histogram.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"
#include "conformal/split.h"
#include "data/generators.h"
#include "query/workload.h"

namespace confcard {
namespace serve {
namespace {

struct Base {
  Table table;
  Workload workload;
};

Base MakeBase() {
  TableSpec spec;
  spec.name = "s";
  spec.num_rows = 1500;
  spec.seed = 19;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 30.0;
  spec.columns = {a, b};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = 20;
  wc.seed = 5;
  Workload wl = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(wl)};
}

// Histogram primary + guard + a conformal predictor calibrated on the
// fixture workload's (estimate, truth) pairs. Residual scoring keeps
// zero-cardinality calibration queries well-defined.
struct ServeFixture {
  Base base = MakeBase();
  HistogramEstimator primary{base.table};
  GuardedEstimator guard{primary, base.table};
  SplitConformal scp{MakeScoring(ScoreKind::kResidual), 0.1};
  double num_rows = static_cast<double>(base.table.num_rows());

  ServeFixture() {
    std::vector<double> estimates;
    std::vector<double> truths;
    for (const LabeledQuery& lq : base.workload) {
      estimates.push_back(primary.EstimateCardinality(lq.query));
      truths.push_back(lq.cardinality);
    }
    const Status st = scp.Calibrate(estimates, truths);
    EXPECT_TRUE(st.ok()) << st.message();
  }
};

// Blocks every estimate until opened; lets tests pin a worker inside a
// batch so queue backlogs build deterministically.
class GateEstimator : public CardinalityEstimator {
 public:
  explicit GateEstimator(bool open) : open_(open) {}
  std::string name() const override { return "gate"; }
  double EstimateCardinality(const Query&) const override {
    while (!open_.load(std::memory_order_acquire)) std::this_thread::yield();
    return 42.0;
  }
  void set_open(bool open) { open_.store(open, std::memory_order_release); }

 private:
  mutable std::atomic<bool> open_;
};

class FailingEstimator : public CardinalityEstimator {
 public:
  std::string name() const override { return "failing"; }
  double EstimateCardinality(const Query&) const override {
    return std::numeric_limits<double>::quiet_NaN();
  }
};

TEST(ServeTest, BatchedPathBitIdenticalToPerQueryGuardedPath) {
  ServeFixture f;
  ServeFrontEnd::Options opts;
  opts.max_batch = 8;
  opts.flush_timeout_us = 100;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, opts);

  const size_t n = f.base.workload.size();
  std::deque<Request> requests(n);
  for (size_t i = 0; i < n; ++i) {
    requests[i].query = f.base.workload[i].query;
    ASSERT_EQ(front.Submit(&requests[i]), Admit::kAccepted);
  }
  for (Request& r : requests) r.Wait();

  for (size_t i = 0; i < n; ++i) {
    const GuardedEstimate offline =
        f.guard.EstimateGuarded(f.base.workload[i].query);
    const Response& resp = requests[i].response;
    ASSERT_EQ(resp.estimate, offline.value) << "query " << i;
    EXPECT_FALSE(resp.degraded);
    EXPECT_FALSE(resp.shed);
    EXPECT_EQ(resp.source, 0);
    EXPECT_EQ(resp.shard, 0);
    EXPECT_GE(resp.batch_size, 1u);
    const Interval iv =
        ClipToCardinality(f.scp.Predict(offline.value), f.num_rows);
    ASSERT_EQ(resp.lo, iv.lo) << "query " << i;
    ASSERT_EQ(resp.hi, iv.hi) << "query " << i;
    EXPECT_LE(resp.lo, resp.estimate);
    EXPECT_GE(resp.hi, resp.estimate);
  }
  front.Stop();
}

TEST(ServeTest, FourShardsBitIdenticalToOneShard) {
  ServeFixture f;
  // Four shared-nothing replicas: separate estimator + guard instances
  // over the same table are behaviorally identical.
  std::vector<std::unique_ptr<HistogramEstimator>> primaries;
  std::vector<std::unique_ptr<GuardedEstimator>> guards;
  std::vector<const GuardedEstimator*> shard_guards;
  for (int i = 0; i < 4; ++i) {
    primaries.push_back(std::make_unique<HistogramEstimator>(f.base.table));
    guards.push_back(
        std::make_unique<GuardedEstimator>(*primaries.back(), f.base.table));
    shard_guards.push_back(guards.back().get());
  }
  ServeFrontEnd::Options opts;
  opts.max_batch = 8;
  opts.flush_timeout_us = 100;
  ServeFrontEnd front(shard_guards, f.scp, f.num_rows, opts);
  ASSERT_EQ(front.num_shards(), 4);

  const size_t n = f.base.workload.size();
  std::deque<Request> requests(n);
  for (size_t i = 0; i < n; ++i) {
    requests[i].query = f.base.workload[i].query;
    ASSERT_EQ(front.Submit(&requests[i]), Admit::kAccepted);
  }
  for (Request& r : requests) r.Wait();

  std::set<int> shards_used;
  for (size_t i = 0; i < n; ++i) {
    const Query& q = f.base.workload[i].query;
    const Response& resp = requests[i].response;
    // Same value the 1-shard (and offline per-query) path produces.
    ASSERT_EQ(resp.estimate, f.guard.EstimateGuarded(q).value) << "query " << i;
    EXPECT_FALSE(resp.degraded);
    EXPECT_EQ(resp.shard, front.ShardFor(q));
    shards_used.insert(resp.shard);
  }
  // Content-hash routing spreads a 20-query workload across replicas.
  EXPECT_GE(shards_used.size(), 2u);
  front.Stop();
}

TEST(ServeTest, MaxBatchOneDegeneratesToPerQuery) {
  ServeFixture f;
  ServeFrontEnd::Options opts;
  opts.max_batch = 1;
  opts.flush_timeout_us = 200;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, opts);

  const size_t n = f.base.workload.size();
  std::deque<Request> requests(n);
  for (size_t i = 0; i < n; ++i) {
    requests[i].query = f.base.workload[i].query;
    ASSERT_EQ(front.Submit(&requests[i]), Admit::kAccepted);
  }
  for (Request& r : requests) r.Wait();
  front.Stop();

  uint64_t total = 0;
  const std::vector<uint64_t> counts = front.BatchSizeCounts();
  ASSERT_EQ(counts.size(), 2u);  // indices 0 and 1
  total = counts[1];
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(total, n);  // every batch had exactly one request
  for (const Request& r : requests) {
    EXPECT_EQ(r.response.batch_size, 1u);
  }
}

TEST(ServeTest, ZeroTimeoutFlushesImmediately) {
  ServeFixture f;
  ServeFrontEnd::Options opts;
  opts.max_batch = 32;
  opts.flush_timeout_us = 0;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, opts);

  // Submitting one at a time, the queue never holds more than one
  // request, and T=0 forbids waiting for stragglers: every batch is 1.
  for (const LabeledQuery& lq : f.base.workload) {
    Request r;
    r.query = lq.query;
    ASSERT_EQ(front.Submit(&r), Admit::kAccepted);
    r.Wait();
    EXPECT_EQ(r.response.batch_size, 1u);
    EXPECT_FALSE(r.response.degraded);
  }
  front.Stop();
}

TEST(ServeTest, FullQueueShedsInsteadOfBlocking) {
  ServeFixture f;
  GateEstimator gate(/*open=*/false);
  GuardOptions gopts;
  gopts.max_retries = 0;
  gopts.breaker_threshold = 0;  // isolate queue shedding from the breaker
  GuardedEstimator guard(gate, f.base.table, gopts);
  ServeFrontEnd::Options opts;
  opts.max_batch = 1;
  opts.flush_timeout_us = 0;
  opts.queue_capacity = 4;
  ServeFrontEnd front({&guard}, f.scp, f.num_rows, opts);

  // The worker pops at most one request and blocks on the gate; the
  // queue (capacity 4) then fills, so at most 5 of 8 are accepted.
  constexpr size_t kSubmits = 8;
  std::deque<Request> requests(kSubmits);
  size_t shed = 0;
  for (size_t i = 0; i < kSubmits; ++i) {
    requests[i].query = f.base.workload[i % f.base.workload.size()].query;
    const Admit a = front.Submit(&requests[i]);
    if (a == Admit::kShedQueueFull) {
      ++shed;
      // Shed responses are published synchronously with the trivially
      // valid interval and both provenance flags raised.
      ASSERT_TRUE(requests[i].done());
      EXPECT_TRUE(requests[i].response.shed);
      EXPECT_TRUE(requests[i].response.degraded);
      EXPECT_EQ(requests[i].response.lo, 0.0);
      EXPECT_EQ(requests[i].response.hi, f.num_rows);
      EXPECT_EQ(requests[i].response.batch_size, 0u);
    } else {
      ASSERT_EQ(a, Admit::kAccepted);
    }
  }
  EXPECT_GE(shed, kSubmits - 5);
  EXPECT_LT(shed, kSubmits);

  gate.set_open(true);
  for (Request& r : requests) r.Wait();
  for (const Request& r : requests) {
    if (!r.response.shed) {
      EXPECT_EQ(r.response.estimate, 42.0);
      EXPECT_FALSE(r.response.degraded);
    }
  }
  front.Stop();
}

TEST(ServeTest, OpenBreakerShedsAboveWatermark) {
  ServeFixture f;
  FailingEstimator failing;
  GateEstimator gate(/*open=*/true);
  GuardOptions gopts;
  gopts.max_retries = 0;
  gopts.breaker_threshold = 1;
  gopts.breaker_cooldown = 1000000;  // stays open for the whole test
  GuardedEstimator guard(failing, f.base.table, gopts);
  guard.AddFallback(gate);

  // Trip the breaker while the gate fallback still answers instantly.
  ASSERT_TRUE(guard.EstimateGuarded(f.base.workload[0].query).degraded);
  ASSERT_TRUE(guard.breaker_open());
  gate.set_open(false);  // now the fallback pins the worker mid-batch

  ServeFrontEnd::Options opts;
  opts.max_batch = 1;
  opts.flush_timeout_us = 0;
  opts.queue_capacity = 8;
  opts.breaker_shed_watermark = 0.25;  // shed once the backlog hits 2
  ServeFrontEnd front({&guard}, f.scp, f.num_rows, opts);

  // Worker holds one request inside the gated fallback; by the fourth
  // submit the queue depth is >= 2, so admission control sheds.
  constexpr size_t kSubmits = 6;
  std::deque<Request> requests(kSubmits);
  size_t shed_breaker = 0;
  for (size_t i = 0; i < kSubmits; ++i) {
    requests[i].query = f.base.workload[i % f.base.workload.size()].query;
    const Admit a = front.Submit(&requests[i]);
    if (a == Admit::kShedBreaker) {
      ++shed_breaker;
      ASSERT_TRUE(requests[i].done());
      EXPECT_TRUE(requests[i].response.shed);
      EXPECT_TRUE(requests[i].response.degraded);
      EXPECT_EQ(requests[i].response.hi, f.num_rows);
    }
  }
  EXPECT_GE(shed_breaker, 1u);

  gate.set_open(true);
  for (Request& r : requests) r.Wait();
  for (const Request& r : requests) {
    if (!r.response.shed) {
      // Served through the open breaker's fallback chain: degraded, with
      // the inflated (here: trivially wide after clipping) interval.
      EXPECT_TRUE(r.response.degraded);
      EXPECT_EQ(r.response.estimate, 42.0);
    }
  }
  front.Stop();
}

TEST(ServeTest, StopDrainsInFlightRequestsCleanly) {
  ServeFixture f;
  ServeFrontEnd::Options opts;
  opts.max_batch = 32;
  opts.flush_timeout_us = 5000;  // long flush window: Stop must not wait it out
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, opts);

  const size_t n = f.base.workload.size();
  std::deque<Request> requests(n);
  size_t accepted = 0;
  for (size_t i = 0; i < n; ++i) {
    requests[i].query = f.base.workload[i].query;
    if (front.Submit(&requests[i]) == Admit::kAccepted) ++accepted;
  }
  front.Stop();
  ASSERT_EQ(accepted, n);

  // Every accepted request has a published, correct response — none were
  // dropped between the queue, the worker exit, and the post-join drain.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(requests[i].done()) << "request " << i;
    const Response& resp = requests[i].response;
    EXPECT_FALSE(resp.shed);
    ASSERT_EQ(resp.estimate,
              f.guard.EstimateGuarded(f.base.workload[i].query).value)
        << "request " << i;
  }

  // Submits after Stop are rejected with an immediate shed response.
  Request late;
  late.query = f.base.workload[0].query;
  EXPECT_EQ(front.Submit(&late), Admit::kRejectedStopped);
  EXPECT_TRUE(late.done());
  EXPECT_TRUE(late.response.shed);

  front.Stop();  // idempotent
}

TEST(ServeTest, InvalidQueryIsQuarantinedThroughServe) {
  ServeFixture f;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows);

  Request r;
  r.query = Query{{Predicate::Between(9, 0.0, 1.0)}};  // no column 9
  ASSERT_EQ(front.Submit(&r), Admit::kAccepted);
  r.Wait();
  EXPECT_TRUE(r.response.degraded);
  EXPECT_FALSE(r.response.shed);
  EXPECT_EQ(r.response.source, -1);
  EXPECT_EQ(r.response.estimate, 0.0);
  EXPECT_GE(r.response.lo, 0.0);
  EXPECT_LE(r.response.hi, f.num_rows);
  front.Stop();
}

TEST(ServeTest, MultiProducerSubmissionsAllServedCorrectly) {
  ServeFixture f;
  ServeFrontEnd::Options opts;
  opts.max_batch = 8;
  opts.flush_timeout_us = 50;
  opts.queue_capacity = 4096;  // no shedding: this test checks values
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, opts);

  constexpr int kProducers = 4;
  constexpr int kRounds = 25;
  const size_t n = f.base.workload.size();
  std::vector<std::deque<Request>> slots(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    slots[p].resize(kRounds * n);
    producers.emplace_back([&, p] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < n; ++i) {
          Request& r = slots[p][round * n + i];
          r.query = f.base.workload[i].query;
          while (front.Submit(&r) != Admit::kAccepted) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  front.Stop();

  for (int p = 0; p < kProducers; ++p) {
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < n; ++i) {
        const Request& r = slots[p][round * n + i];
        ASSERT_TRUE(r.done());
        ASSERT_EQ(r.response.estimate,
                  f.guard.EstimateGuarded(f.base.workload[i].query).value)
            << "producer " << p << " round " << round << " query " << i;
        EXPECT_FALSE(r.response.degraded);
      }
    }
  }
}

TEST(ServeTest, SteadyStateHotPathIsAllocationFree) {
  ServeFixture f;
  ServeFrontEnd::Options opts;
  opts.max_batch = 4;
  opts.flush_timeout_us = 0;
  ServeFrontEnd front({&f.guard}, f.scp, f.num_rows, opts);

  auto run_pass = [&] {
    for (const LabeledQuery& lq : f.base.workload) {
      Request r;
      r.query = lq.query;
      ASSERT_EQ(front.Submit(&r), Admit::kAccepted);
      r.Wait();
    }
  };
  run_pass();  // warmup: grows Query slots, scratch, arena tensors
  front.ResetStats();
  run_pass();
  EXPECT_EQ(front.HotPathAllocs(), 0u);
  front.Stop();
}

TEST(ServeTest, ScratchReuseMatchesScratchFreeBatchPath) {
  ServeFixture f;
  std::vector<Query> queries;
  for (const LabeledQuery& lq : f.base.workload) queries.push_back(lq.query);
  // Include an invalid slot so the compaction path exercises the scratch
  // `compacted` buffer too.
  queries.insert(queries.begin() + 3, Query{{Predicate::Between(9, 0.0, 1.0)}});

  std::vector<GuardedEstimate> plain(queries.size());
  f.guard.EstimateBatchGuarded(queries.data(), queries.size(), plain.data());

  GuardBatchScratch scratch;
  for (int pass = 0; pass < 2; ++pass) {  // second pass reuses capacity
    std::vector<GuardedEstimate> with_scratch(queries.size());
    f.guard.EstimateBatchGuarded(queries.data(), queries.size(),
                                 with_scratch.data(), /*order_key_base=*/0,
                                 &scratch);
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(with_scratch[i].value, plain[i].value) << "slot " << i;
      ASSERT_EQ(with_scratch[i].degraded, plain[i].degraded) << "slot " << i;
      ASSERT_EQ(with_scratch[i].source, plain[i].source) << "slot " << i;
    }
  }
}

TEST(ServeTest, EnvKnobsParseAndClamp) {
  // Defaults when unset.
  unsetenv("CONFCARD_SERVE_SHARDS");
  unsetenv("CONFCARD_SERVE_BATCH");
  unsetenv("CONFCARD_SERVE_TIMEOUT_US");
  EXPECT_EQ(ShardsFromEnv(), 1);
  ServeFrontEnd::Options defaults = ServeFrontEnd::Options::FromEnv();
  EXPECT_EQ(defaults.max_batch, 32);
  EXPECT_EQ(defaults.flush_timeout_us, 200);

  setenv("CONFCARD_SERVE_SHARDS", "4", 1);
  setenv("CONFCARD_SERVE_BATCH", "64", 1);
  setenv("CONFCARD_SERVE_TIMEOUT_US", "1000", 1);
  EXPECT_EQ(ShardsFromEnv(), 4);
  ServeFrontEnd::Options parsed = ServeFrontEnd::Options::FromEnv();
  EXPECT_EQ(parsed.max_batch, 64);
  EXPECT_EQ(parsed.flush_timeout_us, 1000);

  setenv("CONFCARD_SERVE_SHARDS", "9999", 1);   // clamped to 64
  setenv("CONFCARD_SERVE_BATCH", "0", 1);       // clamped to 1
  setenv("CONFCARD_SERVE_TIMEOUT_US", "-5", 1); // clamped to 0
  EXPECT_EQ(ShardsFromEnv(), 64);
  ServeFrontEnd::Options clamped = ServeFrontEnd::Options::FromEnv();
  EXPECT_EQ(clamped.max_batch, 1);
  EXPECT_EQ(clamped.flush_timeout_us, 0);

  setenv("CONFCARD_SERVE_SHARDS", "junk", 1);  // unparsable: default
  EXPECT_EQ(ShardsFromEnv(), 1);

  unsetenv("CONFCARD_SERVE_SHARDS");
  unsetenv("CONFCARD_SERVE_BATCH");
  unsetenv("CONFCARD_SERVE_TIMEOUT_US");
}

}  // namespace
}  // namespace serve
}  // namespace confcard
