#include "data/generators.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace confcard {
namespace {

ColumnSpec Cat(const char* name, int64_t domain, double skew,
               int parent = -1, double corr = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kCategorical;
  c.domain_size = domain;
  c.zipf_skew = skew;
  c.parent = parent;
  c.correlation = corr;
  return c;
}

ColumnSpec Num(const char* name, double lo, double hi, NumericDist d,
               int parent = -1, double corr = 0.0) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kNumeric;
  c.num_min = lo;
  c.num_max = hi;
  c.dist = d;
  c.parent = parent;
  c.correlation = corr;
  return c;
}

TEST(GeneratorTest, ProducesRequestedShape) {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 500;
  spec.seed = 3;
  spec.columns = {Cat("a", 5, 1.0), Num("b", 0.0, 10.0,
                                        NumericDist::kUniform)};
  auto t = GenerateTable(spec);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 500u);
  EXPECT_EQ(t->num_columns(), 2u);
  EXPECT_TRUE(t->column(0).is_categorical());
  EXPECT_FALSE(t->column(1).is_categorical());
}

TEST(GeneratorTest, CategoricalValuesWithinDomain) {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 2000;
  spec.columns = {Cat("a", 7, 1.5)};
  auto t = GenerateTable(spec);
  ASSERT_TRUE(t.ok());
  for (double v : t->column(0).data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 7.0);
    EXPECT_EQ(v, std::floor(v));
  }
}

TEST(GeneratorTest, NumericValuesWithinRange) {
  for (NumericDist d : {NumericDist::kUniform, NumericDist::kGaussian,
                        NumericDist::kExponential}) {
    TableSpec spec;
    spec.name = "g";
    spec.num_rows = 2000;
    spec.columns = {Num("b", -5.0, 5.0, d)};
    auto t = GenerateTable(spec);
    ASSERT_TRUE(t.ok());
    EXPECT_GE(t->column(0).min_value(), -5.0);
    EXPECT_LE(t->column(0).max_value(), 5.0);
  }
}

TEST(GeneratorTest, ZipfSkewConcentratesMass) {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 20000;
  spec.columns = {Cat("a", 50, 2.0)};
  auto t = GenerateTable(spec);
  ASSERT_TRUE(t.ok());
  // With s=2 the most frequent code should hold well over a third of rows.
  std::map<double, int> counts;
  for (double v : t->column(0).data()) counts[v]++;
  int max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 3);
}

TEST(GeneratorTest, DeterministicBySeed) {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 100;
  spec.seed = 99;
  spec.columns = {Cat("a", 5, 1.0), Num("b", 0, 1, NumericDist::kUniform)};
  auto t1 = GenerateTable(spec);
  auto t2 = GenerateTable(spec);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(t1->column(0).data(), t2->column(0).data());
  EXPECT_EQ(t1->column(1).data(), t2->column(1).data());
  spec.seed = 100;
  auto t3 = GenerateTable(spec);
  ASSERT_TRUE(t3.ok());
  EXPECT_NE(t1->column(1).data(), t3->column(1).data());
}

// The correlation mechanism must produce functional dependence in the
// limit corr=1 and independence at corr=0.
TEST(GeneratorTest, CorrelationIsFunctionalAtOne) {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 5000;
  spec.columns = {Cat("p", 10, 0.0), Cat("c", 10, 0.0, /*parent=*/0,
                                         /*corr=*/1.0)};
  auto t = GenerateTable(spec);
  ASSERT_TRUE(t.ok());
  // Every parent code must map to exactly one child code.
  std::map<double, double> mapping;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    double p = t->At(r, 0), c = t->At(r, 1);
    auto it = mapping.find(p);
    if (it == mapping.end()) {
      mapping[p] = c;
    } else {
      EXPECT_DOUBLE_EQ(it->second, c);
    }
  }
}

TEST(GeneratorTest, HigherCorrelationMeansMoreAgreement) {
  auto agreement = [](double corr) {
    TableSpec spec;
    spec.name = "g";
    spec.num_rows = 8000;
    spec.seed = 5;
    spec.columns = {Cat("p", 8, 0.0), Cat("c", 8, 0.0, 0, corr)};
    auto t = GenerateTable(spec).value();
    // Majority child per parent; fraction of rows following it.
    std::map<double, std::map<double, int>> joint;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      joint[t.At(r, 0)][t.At(r, 1)]++;
    }
    int follow = 0, total = 0;
    for (auto& [p, dist] : joint) {
      int best = 0, sum = 0;
      for (auto& [c, n] : dist) {
        best = std::max(best, n);
        sum += n;
      }
      follow += best;
      total += sum;
    }
    return static_cast<double>(follow) / total;
  };
  EXPECT_GT(agreement(0.9), agreement(0.3) + 0.2);
}

TEST(GeneratorValidationTest, RejectsBadSpecs) {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 10;
  EXPECT_FALSE(GenerateTable(spec).ok());  // no columns

  spec.columns = {Cat("a", 0, 0.0)};  // bad domain
  EXPECT_FALSE(GenerateTable(spec).ok());

  spec.columns = {Num("b", 2.0, 1.0, NumericDist::kUniform)};  // min>=max
  EXPECT_FALSE(GenerateTable(spec).ok());

  spec.columns = {Cat("a", 2, 0.0, /*parent=*/0, 0.5)};  // self parent
  EXPECT_FALSE(GenerateTable(spec).ok());

  spec.columns = {Cat("a", 2, 0.0), Cat("b", 2, 0.0, 0, 1.5)};  // corr>1
  EXPECT_FALSE(GenerateTable(spec).ok());
}

TEST(GeneratorTest, NumericChildFollowsNumericParent) {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 4000;
  spec.columns = {Num("p", 0.0, 1.0, NumericDist::kUniform),
                  Num("c", 0.0, 1.0, NumericDist::kUniform, 0, 0.95)};
  auto t = GenerateTable(spec).value();
  // Pearson correlation should be clearly positive.
  double sp = 0, sc = 0, spp = 0, scc = 0, spc = 0;
  const double n = static_cast<double>(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    double p = t.At(r, 0), c = t.At(r, 1);
    sp += p;
    sc += c;
    spp += p * p;
    scc += c * c;
    spc += p * c;
  }
  double cov = spc / n - (sp / n) * (sc / n);
  double vp = spp / n - (sp / n) * (sp / n);
  double vc = scc / n - (sc / n) * (sc / n);
  double rho = cov / std::sqrt(vp * vc);
  EXPECT_GT(rho, 0.7);
}

}  // namespace
}  // namespace confcard
