// Scalar-vs-SIMD bit identity of every vectorized kernel. The vector
// paths (nn/simd.h) promise byte-identical results to the scalar
// reference kernels at every shape, including the awkward ones: output
// widths hitting every lane-tail residue, reduction depths hitting the
// transpose-tile p-tail, empty tensors, and non-finite values through
// the fused ReLU. Comparisons are bitwise (memcmp), not EXPECT_FLOAT_EQ
// — the contract is identity, not closeness. In a CONFCARD_SIMD=off
// build SetSimdEnabled(true) is a no-op and every case degenerates to
// scalar-vs-scalar, so the suite stays green there by construction.
#include "nn/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/tensor.h"

namespace confcard {
namespace nn {
namespace {

// Tests flip the process-wide SIMD toggle; restore it on exit so test
// order never matters.
class SimdRestorer {
 public:
  SimdRestorer() : saved_(SimdEnabled()) {}
  ~SimdRestorer() { SetSimdEnabled(saved_); }

 private:
  bool saved_;
};

void ExpectBitIdentical(const Tensor& ref, const Tensor& got,
                        const char* what) {
  ASSERT_EQ(ref.rows(), got.rows()) << what;
  ASSERT_EQ(ref.cols(), got.cols()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    uint32_t rb, gb;
    std::memcpy(&rb, &ref.data()[i], sizeof(rb));
    std::memcpy(&gb, &got.data()[i], sizeof(gb));
    ASSERT_EQ(rb, gb) << what << " element " << i << ": scalar "
                      << ref.data()[i] << " vs simd " << got.data()[i];
  }
}

// Dense random tensor with a controllable fraction of exact zeros so
// the kernels' zero-skip fast paths get exercised at both settings.
Tensor RandomTensor(size_t rows, size_t cols, double zero_fraction,
                    Rng& rng) {
  Tensor t = Tensor::Uninitialized(rows, cols);
  for (float& v : t.data()) {
    v = rng.NextDouble() < zero_fraction
            ? 0.0f
            : static_cast<float>(rng.NextGaussian());
  }
  return t;
}

// The shape sweep: every output-width residue modulo the compiled lane
// width (tail lanes 0..W-1), reduction depths covering the k==0 /
// k==1 / sub-tile / multi-tile p-loop cases, and empty tensors.
template <typename Fn>
void SweepShapes(const Fn& check) {
  const size_t w = SimdLaneWidth();
  std::vector<size_t> ms;
  for (size_t t = 0; t < w; ++t) ms.push_back(2 * w + t);  // m % w = t
  ms.push_back(1);
  ms.push_back(0);  // empty output
  const std::vector<size_t> ks = {0, 1, 7, 32};
  const std::vector<size_t> ns = {0, 1, 5, 8};
  for (size_t n : ns) {
    for (size_t k : ks) {
      for (size_t m : ms) check(n, k, m);
    }
  }
}

TEST(SimdKernelTest, MatMulBitIdenticalAcrossShapes) {
  SimdRestorer restore;
  Rng rng(1234);
  SweepShapes([&rng](size_t n, size_t k, size_t m) {
    // (n,k) x (k,m); half-zero A exercises the 4-row zero-skip.
    Tensor a = RandomTensor(n, k, 0.5, rng);
    Tensor b = RandomTensor(k, m, 0.0, rng);
    SetSimdEnabled(false);
    Tensor ref = MatMul(a, b);
    SetSimdEnabled(true);
    Tensor got = MatMul(a, b);
    ExpectBitIdentical(ref, got, "MatMul");
  });
}

TEST(SimdKernelTest, MatMulTransABitIdenticalAcrossShapes) {
  SimdRestorer restore;
  Rng rng(2345);
  SweepShapes([&rng](size_t n, size_t k, size_t m) {
    // (k,n) x (k,m) -> (n,m).
    Tensor a = RandomTensor(k, n, 0.5, rng);
    Tensor b = RandomTensor(k, m, 0.0, rng);
    SetSimdEnabled(false);
    Tensor ref = MatMulTransA(a, b);
    SetSimdEnabled(true);
    Tensor got = MatMulTransA(a, b);
    ExpectBitIdentical(ref, got, "MatMulTransA");
  });
}

TEST(SimdKernelTest, MatMulTransBBitIdenticalAcrossShapes) {
  SimdRestorer restore;
  Rng rng(3456);
  SweepShapes([&rng](size_t n, size_t k, size_t m) {
    // (n,k) x (m,k) -> (n,m): m is the j-lane dimension, k the
    // transpose-tile dimension — both tails matter here.
    Tensor a = RandomTensor(n, k, 0.0, rng);
    Tensor b = RandomTensor(m, k, 0.0, rng);
    SetSimdEnabled(false);
    Tensor ref = MatMulTransB(a, b);
    SetSimdEnabled(true);
    Tensor got = MatMulTransB(a, b);
    ExpectBitIdentical(ref, got, "MatMulTransB");
  });
}

TEST(SimdKernelTest, ApplyActivatedBitIdenticalIncludingNonFinite) {
  SimdRestorer restore;
  Rng rng(4567);
  const size_t w = SimdLaneWidth();
  for (size_t m : {2 * w + 1, 2 * w + w - 1, size_t{3}}) {
    Dense dense(6, m, rng);
    // Bias sweep must reproduce the scalar clamp on the values the
    // clamp treats specially: -0.0 passes through, NaN stays NaN.
    dense.bias().value.data()[0] = -0.0f;
    if (m > 1) dense.bias().value.data()[1] = 10.0f;
    Tensor in = RandomTensor(9, 6, 0.3, rng);
    in.data()[0] = std::nanf("");
    in.data()[7] = -0.0f;
    for (bool relu : {true, false}) {
      SetSimdEnabled(false);
      Tensor ref = dense.ApplyActivated(in, relu);
      SetSimdEnabled(true);
      Tensor got = dense.ApplyActivated(in, relu);
      ExpectBitIdentical(ref, got, relu ? "ApplyActivated+relu"
                                        : "ApplyActivated");
    }
  }
}

TEST(SimdKernelTest, ApplyActivatedMatchesApplyThenRelu) {
  // The documented fusion identity, now across both kernel paths.
  SimdRestorer restore;
  Rng rng(5678);
  Dense dense(8, 13, rng);
  Tensor in = RandomTensor(10, 8, 0.2, rng);
  Relu relu_layer;
  for (bool simd : {false, true}) {
    SetSimdEnabled(simd);
    Tensor fused = dense.ApplyActivated(in, /*relu=*/true);
    Tensor staged = relu_layer.Apply(dense.Apply(in));
    ExpectBitIdentical(staged, fused, "fusion identity");
  }
}

TEST(SimdKernelTest, SparseOneHotGathersBitIdentical) {
  SimdRestorer restore;
  Rng rng(6789);
  const size_t w = SimdLaneWidth();
  const size_t in_dim = 24;
  const size_t out_dim = 3 * w + 1;  // forces a j-tail in every sweep
  // All-ones mask so the gather covers every weight row.
  Tensor ones(in_dim, out_dim);
  ones.Fill(1.0f);
  MaskedDense dense_layer(in_dim, out_dim, ones, rng);

  // Block-sparse rows: ascending indices, varying nnz (incl. empty).
  const size_t rows = 7;
  std::vector<uint32_t> indices;
  std::vector<size_t> offsets = {0};
  Rng idx_rng(42);
  for (size_t r = 0; r < rows; ++r) {
    const size_t nnz = r % 4;  // 0..3 set bits per row
    uint32_t base = 0;
    for (size_t t = 0; t < nnz; ++t) {
      base += 1 + static_cast<uint32_t>(idx_rng.NextDouble() * 5);
      indices.push_back(std::min<uint32_t>(base, in_dim - 1));
    }
    offsets.push_back(indices.size());
  }
  SparseRows sparse;
  sparse.rows = rows;
  sparse.cols = in_dim;
  sparse.indices = indices.data();
  sparse.row_offsets = offsets.data();

  SetSimdEnabled(false);
  Tensor ref_full = dense_layer.ApplyOneHot(sparse);
  Tensor ref_cols = dense_layer.ApplyOneHotCols(sparse, 2, 2 + w + 1);
  SetSimdEnabled(true);
  Tensor got_full = dense_layer.ApplyOneHot(sparse);
  Tensor got_cols = dense_layer.ApplyOneHotCols(sparse, 2, 2 + w + 1);
  ExpectBitIdentical(ref_full, got_full, "ApplyOneHot");
  ExpectBitIdentical(ref_cols, got_cols, "ApplyOneHotCols");

  // Dense column-slice path (Naru's per-block output softmax input).
  Tensor dense_in = RandomTensor(rows, in_dim, 0.6, rng);
  SetSimdEnabled(false);
  Tensor ref_slice = dense_layer.ApplyCols(dense_in, 1, out_dim - 2);
  SetSimdEnabled(true);
  Tensor got_slice = dense_layer.ApplyCols(dense_in, 1, out_dim - 2);
  ExpectBitIdentical(ref_slice, got_slice, "ApplyCols");
}

TEST(SimdKernelTest, RuntimeControlsReportCompiledState) {
  SimdRestorer restore;
  // The ISA name is one of the four known strings and agrees with the
  // compiled lane width.
  const std::string isa = SimdIsaName();
  const size_t w = SimdLaneWidth();
  if (isa == "avx2") {
    EXPECT_EQ(w, 8u);
  } else if (isa == "sse2" || isa == "neon") {
    EXPECT_EQ(w, 4u);
  } else {
    EXPECT_EQ(isa, "scalar");
    EXPECT_EQ(w, 1u);
  }
  EXPECT_EQ(SimdCompiledIn(), w > 1);
  SetSimdEnabled(false);
  EXPECT_FALSE(SimdEnabled());
  SetSimdEnabled(true);
  EXPECT_EQ(SimdEnabled(), SimdCompiledIn());
}

}  // namespace
}  // namespace nn
}  // namespace confcard
