// End-to-end gate for the per-query event log: runs real bench binaries
// at tiny scale with CONFCARD_EVENTS_JSONL (and the metrics artifact)
// armed and checks that (a) every record carries the full schema, and
// (b) the mean of the per-query covered bits, grouped by method run,
// reproduces the artifact's "harness.coverage.<run>.<model>.<method>"
// gauge to 1e-9 — the event stream and the aggregate tables must be two
// views of the same data. The online bench additionally checks the
// stream events against the conformal.online.* monitors. Binary paths
// are baked in by CMake.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_log.h"
#include "obs/json.h"

namespace confcard {
namespace {

using obs::JsonValue;

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

struct BenchOutput {
  JsonValue artifact;
  std::vector<JsonValue> events;
};

void RunBench(const char* bench_path, const std::string& tag,
              BenchOutput* out) {
  const auto tmp = std::filesystem::temp_directory_path();
  const auto artifact = tmp / ("confcard_events_" + tag + ".json");
  const auto events = tmp / ("confcard_events_" + tag + ".jsonl");
  std::filesystem::remove(artifact);
  std::filesystem::remove(events);
  const std::string cmd =
      "CONFCARD_SCALE=0.01 CONFCARD_METRICS_JSON=" + artifact.string() +
      " CONFCARD_EVENTS_JSONL=" + events.string() + " " + bench_path +
      " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  Result<JsonValue> doc = obs::ParseJson(ReadFileOrEmpty(artifact));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  out->artifact = std::move(doc).value();

  size_t skipped = 0;
  Result<std::vector<JsonValue>> recs =
      obs::ReadJsonlFile(events.string(), &skipped);
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  EXPECT_EQ(skipped, 0u);
  out->events = std::move(recs).value();

  std::filesystem::remove(artifact);
  std::filesystem::remove(events);
}

void CheckSchema(const JsonValue& e) {
  for (const char* key :
       {"run", "q", "model", "method", "alpha", "est", "lo", "hi", "truth",
        "covered", "width", "qerr", "lat_us"}) {
    ASSERT_NE(e.Find(key), nullptr) << "event lacks key " << key;
  }
  ASSERT_EQ(e.Find("covered")->kind, JsonValue::Kind::kBool);
  ASSERT_FALSE(e.Find("model")->string_value.empty());
  ASSERT_FALSE(e.Find("method")->string_value.empty());
}

// Groups batch-harness events (run > 0) and asserts each group's mean
// covered bit equals the artifact coverage gauge to 1e-9.
void CheckCoverageReproduction(const BenchOutput& out) {
  struct Group {
    std::string model, method;
    uint64_t count = 0;
    uint64_t covered = 0;
  };
  std::map<uint64_t, Group> groups;
  for (const JsonValue& e : out.events) {
    CheckSchema(e);
    const uint64_t run = static_cast<uint64_t>(e.Find("run")->number);
    if (run == 0) continue;  // online stream, no batch gauge
    Group& g = groups[run];
    g.model = e.Find("model")->string_value;
    g.method = e.Find("method")->string_value;
    ++g.count;
    g.covered += e.Find("covered")->bool_value ? 1 : 0;
  }
  ASSERT_FALSE(groups.empty());

  const JsonValue* gauges = out.artifact.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const auto& [run, g] : groups) {
    const std::string name = "harness.coverage." + std::to_string(run) +
                             "." + g.model + "." + g.method;
    const JsonValue* gauge = gauges->Find(name);
    ASSERT_NE(gauge, nullptr) << name;
    const double event_coverage =
        static_cast<double>(g.covered) / static_cast<double>(g.count);
    EXPECT_NEAR(event_coverage, gauge->number, 1e-9) << name;
  }
}

#ifdef CONFCARD_FIG_BENCH_PATH
TEST(EventLogSmokeTest, FigureBenchEventsReproduceArtifactCoverage) {
  BenchOutput out;
  RunBench(CONFCARD_FIG_BENCH_PATH, "fig", &out);
  ASSERT_GE(out.events.size(), 100u);
  CheckCoverageReproduction(out);
  // The artifact records that events were streamed this run.
  const JsonValue* meta = out.artifact.Find("run")->Find("meta");
  ASSERT_NE(meta, nullptr);
  const JsonValue* flag = meta->Find("events_jsonl");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->string_value, "1");
}
#endif

#ifdef CONFCARD_ABL_BENCH_PATH
TEST(EventLogSmokeTest, AblationBenchEventsReproduceArtifactCoverage) {
  // The validity ablation reruns the same (model, method) pair at
  // several alphas — the run_seq disambiguation is what keeps the
  // groups from collapsing into each other.
  BenchOutput out;
  RunBench(CONFCARD_ABL_BENCH_PATH, "abl", &out);
  ASSERT_GE(out.events.size(), 100u);
  CheckCoverageReproduction(out);
  std::map<std::string, size_t> runs_per_pair;
  for (const JsonValue& e : out.events) {
    const uint64_t q = static_cast<uint64_t>(e.Find("q")->number);
    if (q != 0) continue;
    ++runs_per_pair[e.Find("model")->string_value + "/" +
                    e.Find("method")->string_value];
  }
  size_t max_runs = 0;
  for (const auto& [pair, n] : runs_per_pair) {
    max_runs = std::max(max_runs, n);
  }
  EXPECT_GT(max_runs, 1u) << "expected repeated (model, method) runs";
}
#endif

#ifdef CONFCARD_ONLINE_BENCH_PATH
TEST(EventLogSmokeTest, OnlineBenchStreamsObserveEvents) {
  BenchOutput out;
  RunBench(CONFCARD_ONLINE_BENCH_PATH, "online", &out);

  size_t online_events = 0;
  for (const JsonValue& e : out.events) {
    CheckSchema(e);
    if (e.Find("method")->string_value != "online-s-cp") continue;
    EXPECT_EQ(e.Find("run")->number, 0.0);
    ++online_events;
  }
  ASSERT_GT(online_events, 0u);

  // One event per Observe: the stream length must match the counter.
  const JsonValue* counters = out.artifact.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* observations =
      counters->Find("conformal.online.observations");
  ASSERT_NE(observations, nullptr);
  EXPECT_EQ(static_cast<double>(online_events), observations->number);

  // The rolling monitors were published.
  const JsonValue* gauges = out.artifact.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* name :
       {"conformal.online.rolling_coverage", "conformal.online.rolling_width",
        "conformal.online.score_drift", "conformal.online.window_occupancy"}) {
    ASSERT_NE(gauges->Find(name), nullptr) << name;
  }
  const JsonValue* cov = gauges->Find("conformal.online.rolling_coverage");
  EXPECT_GE(cov->number, 0.0);
  EXPECT_LE(cov->number, 1.0);
}
#endif

}  // namespace
}  // namespace confcard
