#include "ce/binner.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace confcard {
namespace {

TEST(ColumnBinnerTest, CategoricalIdentity) {
  Column c = Column::Categorical("k", 5, {0, 1, 2, 3, 4, 2});
  ColumnBinner b(c, 32);
  EXPECT_TRUE(b.is_categorical());
  EXPECT_EQ(b.num_bins(), 5);
  for (int v = 0; v < 5; ++v) {
    EXPECT_EQ(b.BinOf(static_cast<double>(v)), v);
  }
}

TEST(ColumnBinnerTest, CategoricalOutOfRangeClamps) {
  Column c = Column::Categorical("k", 3, {0, 1, 2});
  ColumnBinner b(c, 32);
  EXPECT_EQ(b.BinOf(-1.0), 0);
  EXPECT_EQ(b.BinOf(99.0), 2);
}

TEST(ColumnBinnerTest, CategoricalBinRange) {
  Column c = Column::Categorical("k", 10, {0, 5, 9});
  ColumnBinner b(c, 32);
  auto [lo, hi] = b.BinRange(2.0, 6.0);
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 6);
  // Fractional bounds round inward.
  auto [lo2, hi2] = b.BinRange(2.5, 6.5);
  EXPECT_EQ(lo2, 3);
  EXPECT_EQ(hi2, 6);
  // Empty range.
  auto [lo3, hi3] = b.BinRange(6.0, 2.0);
  EXPECT_GT(lo3, hi3);
}

TEST(ColumnBinnerTest, NumericEquiDepth) {
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(static_cast<double>(i));
  Column c = Column::Numeric("v", std::move(vals));
  ColumnBinner b(c, 10);
  EXPECT_FALSE(b.is_categorical());
  EXPECT_EQ(b.num_bins(), 10);
  // BinOf is monotone over the domain and stays in range.
  int prev = -1;
  for (int i = 0; i < 1000; i += 50) {
    int bin = b.BinOf(static_cast<double>(i));
    EXPECT_GE(bin, prev);
    EXPECT_LT(bin, 10);
    prev = bin;
  }
  EXPECT_EQ(b.BinOf(-100.0), 0);
  EXPECT_EQ(b.BinOf(1e9), 9);
}

TEST(ColumnBinnerTest, NumericFewDistinctCollapses) {
  Column c = Column::Numeric("v", {1.0, 1.0, 2.0, 2.0, 3.0});
  ColumnBinner b(c, 32);
  EXPECT_LE(b.num_bins(), 3);
  EXPECT_GE(b.num_bins(), 2);
}

TEST(ColumnBinnerTest, NumericBinRangeCoversQueryInterval) {
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(static_cast<double>(i));
  Column c = Column::Numeric("v", std::move(vals));
  ColumnBinner b(c, 16);
  auto [lo, hi] = b.BinRange(100.0, 300.0);
  EXPECT_LE(lo, b.BinOf(100.0));
  EXPECT_GE(hi, b.BinOf(300.0));
  EXPECT_LE(lo, hi);
  // Disjoint from domain.
  auto [l2, h2] = b.BinRange(5000.0, 6000.0);
  EXPECT_GT(l2, h2);
}

TEST(TableBinnerTest, RowBinningAndTotals) {
  std::vector<Column> cols;
  cols.push_back(Column::Categorical("a", 4, {0, 3, 1}));
  cols.push_back(Column::Numeric("b", {0.0, 50.0, 100.0}));
  Table t = Table::Make("t", std::move(cols)).value();
  TableBinner tb(t, 8);
  EXPECT_EQ(tb.num_columns(), 2u);
  EXPECT_EQ(tb.TotalBins(),
            4u + static_cast<size_t>(tb.column(1).num_bins()));
  auto bins = tb.BinRow(t, 1);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0], 3);
}

TEST(TableBinnerTest, PredicateBinsMatchesColumnBinner) {
  std::vector<Column> cols;
  cols.push_back(Column::Categorical("a", 6, {0, 5, 3}));
  Table t = Table::Make("t", std::move(cols)).value();
  TableBinner tb(t, 8);
  auto [lo, hi] = tb.PredicateBins(Predicate::Eq(0, 3.0));
  EXPECT_EQ(lo, 3);
  EXPECT_EQ(hi, 3);
}

// Property: a point query on any observed value maps into the bin that
// BinOf assigns that value.
class BinnerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BinnerPropertyTest, PointRangeConsistency) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 600;
  spec.seed = static_cast<uint64_t>(GetParam());
  ColumnSpec n;
  n.name = "x";
  n.kind = ColumnKind::kNumeric;
  n.num_min = -3.0;
  n.num_max = 7.0;
  n.dist = NumericDist::kGaussian;
  spec.columns = {n};
  Table t = GenerateTable(spec).value();
  ColumnBinner b(t.column(0), 16);
  for (size_t r = 0; r < t.num_rows(); r += 7) {
    double v = t.At(r, 0);
    auto [lo, hi] = b.BinRange(v, v);
    EXPECT_LE(lo, b.BinOf(v));
    EXPECT_GE(hi, b.BinOf(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinnerPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace confcard
