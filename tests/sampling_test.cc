#include "ce/sampling.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "exec/scan.h"
#include "query/workload.h"

namespace confcard {
namespace {

Table MakeTable(uint64_t seed = 5) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 10000;
  spec.seed = seed;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 6;
  a.zipf_skew = 0.8;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 1.0;
  spec.columns = {a, b};
  return GenerateTable(spec).value();
}

TEST(SamplingTest, FullSampleIsExact) {
  Table t = MakeTable();
  SamplingEstimator est(t, t.num_rows());
  Query q;
  q.predicates = {Predicate::Eq(0, 0.0)};
  EXPECT_DOUBLE_EQ(est.EstimateCardinality(q),
                   static_cast<double>(CountMatches(t, q)));
}

TEST(SamplingTest, SampleSizeClamped) {
  Table t = MakeTable();
  SamplingEstimator est(t, 10 * t.num_rows());
  EXPECT_EQ(est.sample_size(), t.num_rows());
}

TEST(SamplingTest, BitmapMatchesPredicate) {
  Table t = MakeTable();
  SamplingEstimator est(t, 128);
  Query q;
  q.predicates = {Predicate::Between(1, 0.0, 0.5)};
  auto bitmap = est.SampleBitmap(q);
  ASSERT_EQ(bitmap.size(), 128u);
  uint64_t ones = 0;
  for (uint8_t b : bitmap) ones += b;
  // Roughly half the sample should pass a 50% selective predicate.
  EXPECT_GT(ones, 40u);
  EXPECT_LT(ones, 90u);
}

TEST(SamplingTest, EstimateApproximatesTruth) {
  Table t = MakeTable();
  SamplingEstimator est(t, 2000);
  Query q;
  q.predicates = {Predicate::Between(1, 0.2, 0.6)};
  double truth = static_cast<double>(CountMatches(t, q));
  EXPECT_NEAR(est.EstimateCardinality(q), truth, truth * 0.15 + 100.0);
}

TEST(SamplingTest, ConfidenceIntervalsCoverMostQueries) {
  // The classic binomial CI should contain the truth for ~95% of
  // queries; we assert a loose 85% floor to stay deterministic.
  Table t = MakeTable(7);
  SamplingEstimator est(t, 1500);
  WorkloadConfig cfg;
  cfg.num_queries = 200;
  cfg.seed = 8;
  auto wl = GenerateWorkload(t, cfg).value();
  size_t covered = 0;
  for (const LabeledQuery& lq : wl) {
    double e = est.EstimateCardinality(lq.query);
    double half = est.ConfidenceHalfWidth(lq.query);
    // Guard against zero-width intervals on empty sample hits.
    half = std::max(half, 3.0);
    if (lq.cardinality >= e - half && lq.cardinality <= e + half) {
      ++covered;
    }
  }
  EXPECT_GT(covered, wl.size() * 85 / 100);
}

TEST(SamplingTest, DeterministicBySeed) {
  Table t = MakeTable();
  SamplingEstimator a(t, 500, 42), b(t, 500, 42), c(t, 500, 43);
  Query q;
  q.predicates = {Predicate::Eq(0, 1.0)};
  EXPECT_DOUBLE_EQ(a.EstimateCardinality(q), b.EstimateCardinality(q));
  // Different seed draws a different sample (estimates may coincide but
  // bitmaps should differ somewhere).
  EXPECT_NE(a.SampleBitmap(q), c.SampleBitmap(q));
}

}  // namespace
}  // namespace confcard
