// Concurrency hammer for the guard's lock-free circuit breaker: many
// threads drive EstimateGuarded through a primary that is flipped
// flaky -> down -> healthy mid-run, exercising trip, cooldown-tick
// claiming, the single-probe-in-flight slot, and recovery — all under
// the TSan preset (the serve-smoke label is in its filter). Assertions
// stick to invariants that hold under any interleaving; the serial
// trip/cooldown/probe schedule is pinned by guarded_test.
#include "ce/guarded.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "ce/histogram.h"
#include "data/generators.h"
#include "query/workload.h"

namespace confcard {
namespace {

struct Fixture {
  Table table;
  Workload workload;
};

Fixture MakeFixture() {
  TableSpec spec;
  spec.name = "gc";
  spec.num_rows = 1500;
  spec.seed = 19;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 30.0;
  spec.columns = {a, b};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = 20;
  wc.seed = 5;
  Workload wl = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(wl)};
}

// Thread-safe primary with a switchable failure mode.
class MoodyEstimator : public CardinalityEstimator {
 public:
  enum Mode { kFlaky = 0, kDown = 1, kHealthy = 2 };

  std::string name() const override { return "moody"; }
  double EstimateCardinality(const Query&) const override {
    switch (mode_.load(std::memory_order_acquire)) {
      case kDown:
        return std::numeric_limits<double>::quiet_NaN();
      case kHealthy:
        return 11.0;
      default: {
        // Periodic failures: exercises sanitize/retry without ever
        // accumulating enough consecutive failures to trip the breaker.
        const uint64_t i = calls_.fetch_add(1, std::memory_order_relaxed);
        return (i % 3 == 0) ? std::numeric_limits<double>::quiet_NaN() : 7.0;
      }
    }
  }
  void set_mode(Mode m) { mode_.store(m, std::memory_order_release); }

 private:
  std::atomic<Mode> mode_{kFlaky};
  mutable std::atomic<uint64_t> calls_{0};
};

TEST(GuardedConcurrencyTest, HammerAcrossBreakerPhasesKeepsInvariants) {
  Fixture f = MakeFixture();
  MoodyEstimator primary;
  GuardOptions opts;
  opts.max_retries = 1;
  opts.breaker_threshold = 4;
  opts.breaker_cooldown = 8;
  GuardedEstimator guard(primary, f.table, opts);

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<bool> bad_result{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const Query& q = f.workload[(t + i) % f.workload.size()].query;
        const GuardedEstimate got = guard.EstimateGuarded(q);
        // Sanitization holds under every interleaving: no NaN/Inf or
        // negative value ever escapes, and provenance stays in range
        // (primary or the terminal histogram fallback).
        if (!std::isfinite(got.value) || got.value < 0.0 || got.source < 0 ||
            got.source > 1) {
          bad_result.store(true, std::memory_order_relaxed);
        }
        if (got.source == 0 && got.degraded) {
          bad_result.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  // Flip the primary's mood while the hammer runs so trip, cooldown, and
  // probe transitions happen under contention.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  primary.set_mode(MoodyEstimator::kDown);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  primary.set_mode(MoodyEstimator::kHealthy);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(bad_result.load());

  // With the primary healthy again, serial traffic burns any remaining
  // cooldown, a probe succeeds, and service returns to the primary.
  bool recovered = false;
  for (int i = 0; i < 1000 && !recovered; ++i) {
    const GuardedEstimate got = guard.EstimateGuarded(f.workload[0].query);
    recovered = !guard.breaker_open() && got.source == 0 && !got.degraded &&
                got.value == 11.0;
  }
  EXPECT_TRUE(recovered);
}

TEST(GuardedConcurrencyTest, ConcurrentBatchFastPathStaysBitIdentical) {
  Fixture f = MakeFixture();
  HistogramEstimator primary(f.table);
  GuardedEstimator guard(primary, f.table);

  std::vector<Query> queries;
  for (const LabeledQuery& lq : f.workload) queries.push_back(lq.query);
  std::vector<double> expected(queries.size());
  primary.EstimateBatch(queries.data(), queries.size(), expected.data());

  constexpr int kThreads = 6;
  constexpr int kIters = 50;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      GuardBatchScratch scratch;  // per-thread, like a serving worker
      std::vector<GuardedEstimate> out(queries.size());
      for (int i = 0; i < kIters; ++i) {
        guard.EstimateBatchGuarded(queries.data(), queries.size(), out.data(),
                                   /*order_key_base=*/0, &scratch);
        for (size_t j = 0; j < queries.size(); ++j) {
          if (out[j].value != expected[j] || out[j].degraded ||
              out[j].source != 0) {
            mismatch.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_FALSE(guard.breaker_open());
}

}  // namespace
}  // namespace confcard
