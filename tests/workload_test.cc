#include "query/workload.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "exec/scan.h"

namespace confcard {
namespace {

Table SmallTable() {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 3000;
  spec.seed = 21;
  ColumnSpec a;
  a.name = "a";
  a.kind = ColumnKind::kCategorical;
  a.domain_size = 6;
  a.zipf_skew = 1.0;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 100.0;
  ColumnSpec c;
  c.name = "c";
  c.kind = ColumnKind::kCategorical;
  c.domain_size = 20;
  c.zipf_skew = 0.5;
  spec.columns = {a, b, c};
  return GenerateTable(spec).value();
}

TEST(WorkloadTest, ProducesRequestedCount) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 200;
  auto wl = GenerateWorkload(t, cfg);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->size(), 200u);
}

TEST(WorkloadTest, LabelsAreExact) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 100;
  cfg.seed = 3;
  auto wl = GenerateWorkload(t, cfg).value();
  for (const LabeledQuery& lq : wl) {
    EXPECT_DOUBLE_EQ(lq.cardinality,
                     static_cast<double>(CountMatches(t, lq.query)));
    EXPECT_DOUBLE_EQ(lq.num_rows, 3000.0);
  }
}

TEST(WorkloadTest, PredicateCountWithinBounds) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 150;
  cfg.min_predicates = 2;
  cfg.max_predicates = 3;
  auto wl = GenerateWorkload(t, cfg).value();
  for (const LabeledQuery& lq : wl) {
    EXPECT_GE(lq.query.predicates.size(), 2u);
    EXPECT_LE(lq.query.predicates.size(), 3u);
  }
}

TEST(WorkloadTest, DedupProducesDistinctQueries) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 300;
  cfg.dedup = true;
  auto wl = GenerateWorkload(t, cfg).value();
  std::set<std::string> keys;
  for (const LabeledQuery& lq : wl) keys.insert(ToString(lq.query));
  EXPECT_EQ(keys.size(), wl.size());
}

TEST(WorkloadTest, SelectivityWindowHonored) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 100;
  cfg.min_selectivity = 0.01;
  cfg.max_selectivity = 0.2;
  auto wl = GenerateWorkload(t, cfg).value();
  EXPECT_FALSE(wl.empty());
  for (const LabeledQuery& lq : wl) {
    EXPECT_GE(lq.selectivity(), 0.01);
    EXPECT_LE(lq.selectivity(), 0.2);
  }
}

TEST(WorkloadTest, AllowedColumnsRestricted) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 100;
  cfg.allowed_columns = {0, 2};
  auto wl = GenerateWorkload(t, cfg).value();
  for (const LabeledQuery& lq : wl) {
    for (const Predicate& p : lq.query.predicates) {
      EXPECT_TRUE(p.column == 0 || p.column == 2);
    }
  }
}

TEST(WorkloadTest, CategoricalAlwaysEquality) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 200;
  cfg.range_prob = 1.0;
  auto wl = GenerateWorkload(t, cfg).value();
  for (const LabeledQuery& lq : wl) {
    for (const Predicate& p : lq.query.predicates) {
      if (t.column(static_cast<size_t>(p.column)).is_categorical()) {
        EXPECT_EQ(p.op, PredOp::kEq);
      }
    }
  }
}

TEST(WorkloadTest, RangeProbZeroMeansAllPoints) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 100;
  cfg.range_prob = 0.0;
  auto wl = GenerateWorkload(t, cfg).value();
  for (const LabeledQuery& lq : wl) {
    for (const Predicate& p : lq.query.predicates) {
      EXPECT_EQ(p.op, PredOp::kEq);
    }
  }
}

TEST(WorkloadTest, DataCenteredQueriesMostlyNonEmpty) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 300;
  cfg.center_mode = CenterMode::kDataCentered;
  auto wl = GenerateWorkload(t, cfg).value();
  size_t nonempty = 0;
  for (const LabeledQuery& lq : wl) nonempty += lq.cardinality > 0 ? 1 : 0;
  EXPECT_GT(nonempty, wl.size() * 9 / 10);
}

TEST(WorkloadTest, UniformModeShiftsSelectivityDown) {
  Table t = SmallTable();
  WorkloadConfig data_cfg, uni_cfg;
  data_cfg.num_queries = uni_cfg.num_queries = 300;
  data_cfg.min_predicates = uni_cfg.min_predicates = 2;
  data_cfg.max_predicates = uni_cfg.max_predicates = 3;
  uni_cfg.center_mode = CenterMode::kUniform;
  auto dw = GenerateWorkload(t, data_cfg).value();
  auto uw = GenerateWorkload(t, uni_cfg).value();
  double ds = 0, us = 0;
  for (const auto& q : dw) ds += q.selectivity();
  for (const auto& q : uw) us += q.selectivity();
  EXPECT_LT(us / static_cast<double>(uw.size()),
            ds / static_cast<double>(dw.size()));
}

TEST(WorkloadTest, DeterministicBySeed) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.num_queries = 50;
  cfg.seed = 77;
  auto a = GenerateWorkload(t, cfg).value();
  auto b = GenerateWorkload(t, cfg).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query);
  }
}

TEST(WorkloadValidationTest, RejectsBadConfigs) {
  Table t = SmallTable();
  WorkloadConfig cfg;
  cfg.min_predicates = 0;
  EXPECT_FALSE(GenerateWorkload(t, cfg).ok());

  cfg = {};
  cfg.range_prob = 1.5;
  EXPECT_FALSE(GenerateWorkload(t, cfg).ok());

  cfg = {};
  cfg.max_range_frac = 0.0;
  EXPECT_FALSE(GenerateWorkload(t, cfg).ok());

  cfg = {};
  cfg.min_selectivity = 0.5;
  cfg.max_selectivity = 0.1;
  EXPECT_FALSE(GenerateWorkload(t, cfg).ok());

  cfg = {};
  cfg.allowed_columns = {99};
  EXPECT_FALSE(GenerateWorkload(t, cfg).ok());
}

}  // namespace
}  // namespace confcard
