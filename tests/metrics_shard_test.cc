// Concurrency and export tests for the sharded metrics rebuild: exact
// totals under a multi-thread hammer, NaN-safe atomic min/max, the
// recording kill switch, bucket-index equivalence with the frexp-based
// reference, and the Prometheus text exposition format.
#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace confcard {
namespace obs {
namespace {

constexpr int kThreads = 8;

// Runs `body(thread_index)` on kThreads threads behind a start barrier.
template <typename Body>
void Hammer(const Body& body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(t);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
}

TEST(ShardedCounterTest, MultiThreadTotalsExact) {
  Counter& c = Metrics().GetCounter("shard_test.counter");
  c.Reset();
  constexpr uint64_t kPerThread = 100000;
  Hammer([&](int) {
    for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
  });
  EXPECT_EQ(c.value(), kPerThread * kThreads);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ShardedCounterTest, IncrementByNAcrossThreads) {
  Counter& c = Metrics().GetCounter("shard_test.counter_n");
  c.Reset();
  Hammer([&](int t) {
    for (int i = 0; i < 1000; ++i) {
      c.Increment(static_cast<uint64_t>(t) + 1);
    }
  });
  // sum over t of 1000 * (t + 1)
  uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += 1000ull * (static_cast<uint64_t>(t) + 1);
  }
  EXPECT_EQ(c.value(), expected);
}

TEST(ShardedHistogramTest, MultiThreadCountSumMinMaxExact) {
  Histogram& h = Metrics().GetHistogram("shard_test.hist");
  h.Reset();
  constexpr int kPerThread = 50000;
  // Integer-valued samples keep the double sum exact regardless of
  // accumulation order, so the cross-shard merge is checkable exactly.
  Hammer([&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      h.Record(static_cast<double>(t * kPerThread + i));
    }
  });
  const Histogram::Snapshot s = h.TakeSnapshot();
  const uint64_t n = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(s.count, n);
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(n) *
                              static_cast<double>(n - 1) / 2.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(n - 1));
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

// Reference bucket computation: the frexp/ldexp formulation the bit-twiddling
// implementation replaced. Bucket i holds (2^(i-1), 2^i].
size_t ReferenceBucket(double value) {
  if (!(value > 1.0)) return 0;
  int exp = 0;
  std::frexp(value, &exp);
  size_t idx = static_cast<size_t>(exp);
  if (std::ldexp(1.0, exp - 1) == value) --idx;
  return std::min(idx, Histogram::kNumBuckets - 1);
}

size_t RecordedBucket(double value) {
  Histogram h;
  h.Record(value);
  const Histogram::Snapshot s = h.TakeSnapshot();
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (s.buckets[i] == 1) return i;
  }
  return Histogram::kNumBuckets;  // not recorded
}

TEST(ShardedHistogramTest, BucketIndexMatchesFrexpReference) {
  std::vector<double> values = {0.0,  0.5,   1.0,    1.5,  2.0,
                                2.5,  3.0,   4.0,    7.9,  8.0,
                                8.1,  100.0, 1024.0, 1e6,  1e9,
                                1e18, 1e300};
  for (int e = 0; e < 60; ++e) {
    const double p = std::ldexp(1.0, e);
    values.push_back(p);
    values.push_back(std::nextafter(p, 0.0));
    values.push_back(std::nextafter(p, 2.0 * p));
  }
  for (double v : values) {
    EXPECT_EQ(RecordedBucket(v), ReferenceBucket(v)) << "value=" << v;
  }
  // Infinity lands in the unbounded last bucket; negatives clamp to 0.
  EXPECT_EQ(RecordedBucket(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(RecordedBucket(-5.0), 0u);
  // NaN is dropped entirely.
  Histogram h;
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
}

TEST(AtomicMinMaxTest, EightThreadHammerFindsGlobalExtremes) {
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  constexpr int kPerThread = 20000;
  Hammer([&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      const double v = static_cast<double>((i * kThreads + t) % 100003);
      AtomicMinDouble(&min, v);
      AtomicMaxDouble(&max, v);
      if (i % 997 == 0) {
        // NaN candidates must be dropped, not installed.
        AtomicMinDouble(&min, std::numeric_limits<double>::quiet_NaN());
        AtomicMaxDouble(&max, std::numeric_limits<double>::quiet_NaN());
      }
    }
  });
  EXPECT_DOUBLE_EQ(min.load(), 0.0);
  EXPECT_DOUBLE_EQ(max.load(), 100002.0);
}

TEST(AtomicMinMaxTest, NaNInTargetSelfHeals) {
  std::atomic<double> min{std::numeric_limits<double>::quiet_NaN()};
  std::atomic<double> max{std::numeric_limits<double>::quiet_NaN()};
  AtomicMinDouble(&min, 7.0);
  AtomicMaxDouble(&max, 7.0);
  EXPECT_DOUBLE_EQ(min.load(), 7.0);
  EXPECT_DOUBLE_EQ(max.load(), 7.0);
}

TEST(AtomicMinMaxTest, AddDropsNaNDelta) {
  std::atomic<double> sum{3.0};
  AtomicAddDouble(&sum, std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(sum.load(), 3.0);
  AtomicAddDouble(&sum, 2.0);
  EXPECT_DOUBLE_EQ(sum.load(), 5.0);
}

TEST(KillSwitchTest, DisabledRecordingIsANoOp) {
  Counter& c = Metrics().GetCounter("shard_test.kill.counter");
  Gauge& g = Metrics().GetGauge("shard_test.kill.gauge");
  Histogram& h = Metrics().GetHistogram("shard_test.kill.hist");
  c.Reset();
  g.Reset();
  h.Reset();
  g.Set(1.0);
  ASSERT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  c.Increment(5);
  g.Set(42.0);
  h.Record(100.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
  SetMetricsEnabled(true);
  c.Increment(5);
  g.Set(42.0);
  h.Record(100.0);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_DOUBLE_EQ(g.value(), 42.0);
  EXPECT_EQ(h.TakeSnapshot().count, 1u);
}

TEST(TextExpositionTest, FormatsCountersGaugesAndHistograms) {
  Metrics().ResetForTest();
  Metrics().SetMeta("scale", 1.0);
  Metrics().GetCounter("expo.test.count").Increment(3);
  Metrics().GetGauge("expo.test.gauge").Set(0.5);
  Histogram& h = Metrics().GetHistogram("expo.test.lat_us");
  h.Record(1.0);   // bucket 0 (le 1)
  h.Record(3.0);   // bucket 2 (le 4)
  h.Record(5.0);   // bucket 3 (le 8)
  const std::string text = Metrics().WriteTextExposition();

  // Dots sanitize to underscores; TYPE lines precede samples.
  EXPECT_NE(text.find("# meta scale 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE expo_test_count counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("expo_test_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE expo_test_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("expo_test_gauge 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE expo_test_lat_us histogram\n"),
            std::string::npos);
  // Cumulative buckets: le="1" sees only the first sample, le="4" two,
  // le="8" and everything above (incl. +Inf) all three.
  EXPECT_NE(text.find("expo_test_lat_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("expo_test_lat_us_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("expo_test_lat_us_bucket{le=\"8\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("expo_test_lat_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("expo_test_lat_us_sum 9\n"), std::string::npos);
  EXPECT_NE(text.find("expo_test_lat_us_count 3\n"), std::string::npos);
  Metrics().ResetForTest();
}

TEST(TextExpositionTest, HelpLinesPrecedeTypeAndCarryDottedName) {
  Metrics().ResetForTest();
  Metrics().GetCounter("expo.help.count").Increment();
  Metrics().GetHistogram("expo.help.lat_us").Record(2.0);
  const std::string text = Metrics().WriteTextExposition();
  // HELP carries the original dotted path (the exposition name flattens
  // dots), immediately before the matching TYPE line.
  const size_t help = text.find(
      "# HELP expo_help_count confcard metric expo.help.count\n");
  const size_t type = text.find("# TYPE expo_help_count counter\n");
  ASSERT_NE(help, std::string::npos);
  ASSERT_NE(type, std::string::npos);
  EXPECT_LT(help, type);
  EXPECT_NE(
      text.find("# HELP expo_help_lat_us confcard metric expo.help.lat_us\n"),
      std::string::npos);
  Metrics().ResetForTest();
}

TEST(TextExpositionTest, EscapesNewlinesAndBackslashesInFreeText) {
  Metrics().ResetForTest();
  // A raw newline in a meta value would splice arbitrary text into the
  // exposition body; backslashes must round-trip under scrapers that
  // unescape. (Label values get the same treatment plus double-quote,
  // but the only labels emitted today are numeric `le` bounds.)
  Metrics().SetMeta("note", "line1\nline2\\tail");
  const std::string text = Metrics().WriteTextExposition();
  EXPECT_NE(text.find("# meta note line1\\nline2\\\\tail\n"),
            std::string::npos);
  Metrics().ResetForTest();
}

TEST(TextExpositionTest, NonFiniteGaugesUsePrometheusSpellings) {
  Metrics().ResetForTest();
  Metrics().GetGauge("expo.inf").Set(
      std::numeric_limits<double>::infinity());
  Metrics().GetGauge("expo.nan").Set(
      std::numeric_limits<double>::quiet_NaN());
  const std::string text = Metrics().WriteTextExposition();
  EXPECT_NE(text.find("expo_inf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("expo_nan NaN\n"), std::string::npos);
  Metrics().ResetForTest();
}

TEST(ShardAssignmentTest, ThreadsGetStableSlotsInRange) {
  std::vector<uint32_t> seen(kThreads);
  Hammer([&](int t) {
    const uint32_t a = internal::MetricShardIndex();
    const uint32_t b = internal::MetricShardIndex();
    EXPECT_EQ(a, b);  // stable per thread
    seen[static_cast<size_t>(t)] = a;
  });
  for (uint32_t idx : seen) EXPECT_LT(idx, kMetricShards);
}

}  // namespace
}  // namespace obs
}  // namespace confcard
