// Jackknife+ with cross validation: fold bookkeeping, both inference
// modes, the coverage-floor formula, and end-to-end coverage with real
// fold-retrained models (closures over a synthetic regression).
#include "conformal/jackknife.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

TEST(AssignFoldsTest, BalancedAndInRange) {
  auto folds = AssignFolds(103, 10, 1);
  ASSERT_EQ(folds.size(), 103u);
  std::vector<int> counts(10, 0);
  for (int f : folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 10);
    counts[static_cast<size_t>(f)]++;
  }
  for (int c : counts) {
    EXPECT_GE(c, 10);
    EXPECT_LE(c, 11);
  }
}

TEST(AssignFoldsTest, DeterministicBySeed) {
  EXPECT_EQ(AssignFolds(50, 5, 3), AssignFolds(50, 5, 3));
  EXPECT_NE(AssignFolds(50, 5, 3), AssignFolds(50, 5, 4));
}

TEST(JackknifeTest, CalibrateValidation) {
  JackknifeCvPlus jk(MakeScoring(ScoreKind::kResidual), 0.1);
  EXPECT_FALSE(jk.Calibrate({1.0}, {1.0, 2.0}, {0, 0}, 2).ok());
  EXPECT_FALSE(jk.Calibrate({}, {}, {}, 2).ok());
  EXPECT_FALSE(jk.Calibrate({1.0, 2.0}, {1.0, 2.0}, {0, 5}, 2).ok());
  EXPECT_FALSE(jk.Calibrate({1.0, 2.0}, {1.0, 2.0}, {0, 1}, 1).ok());
}

TEST(JackknifeTest, SimplifiedModeIsDeltaAroundFullEstimate) {
  JackknifeCvPlus jk(MakeScoring(ScoreKind::kResidual), 0.2,
                     JackknifeCvPlus::Mode::kSimplified);
  // 9 points, residuals 1..9 -> delta = 8 (rank ceil(10*0.8)).
  std::vector<double> oof(9, 10.0), truth;
  std::vector<int> folds;
  for (int i = 1; i <= 9; ++i) {
    truth.push_back(10.0 + i);
    folds.push_back(i % 3);
  }
  ASSERT_TRUE(jk.Calibrate(oof, truth, folds, 3).ok());
  EXPECT_DOUBLE_EQ(jk.simplified_delta(), 8.0);
  Interval iv = jk.Predict({}, 100.0);
  EXPECT_DOUBLE_EQ(iv.lo, 92.0);
  EXPECT_DOUBLE_EQ(iv.hi, 108.0);
}

TEST(JackknifeTest, FullModeUsesFoldPredictions) {
  JackknifeCvPlus jk(MakeScoring(ScoreKind::kResidual), 0.2);
  std::vector<double> oof(10, 0.0), truth(10, 1.0);  // residuals all 1
  std::vector<int> folds = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  ASSERT_TRUE(jk.Calibrate(oof, truth, folds, 2).ok());
  // Fold models disagree about the new query: fold 0 says 100, fold 1
  // says 200. The interval must span both, +/- residual quantiles.
  Interval iv = jk.Predict({100.0, 200.0}, 150.0);
  EXPECT_LE(iv.lo, 100.0);
  EXPECT_GE(iv.hi, 200.0);
}

TEST(JackknifeTest, CoverageGuaranteeFormula) {
  JackknifeCvPlus jk(MakeScoring(ScoreKind::kResidual), 0.05);
  std::vector<double> oof(100, 0.0), truth(100, 1.0);
  auto folds = AssignFolds(100, 10, 2);
  ASSERT_TRUE(jk.Calibrate(oof, truth, folds, 10).ok());
  const double n = 100, k = 10, alpha = 0.05;
  double expected = 1.0 - 2 * alpha -
                    std::min(2.0 * (1 - 1 / k) / (n / k + 1),
                             (1 - k / n) / (k + 1));
  EXPECT_NEAR(jk.CoverageGuarantee(), expected, 1e-12);
}

// End-to-end CV+ with genuinely retrained fold models: ridgeless linear
// regression on synthetic data. Coverage must clear the CV+ floor.
TEST(JackknifeTest, EndToEndCoverageWithFoldModels) {
  const double alpha = 0.1;
  const int K = 5;
  double covered = 0.0, total = 0.0;

  for (uint64_t rep = 0; rep < 5; ++rep) {
    Rng rng(500 + rep);
    const size_t n = 400;
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.NextDouble(0.0, 10.0);
      y[i] = 3.0 * x[i] + 5.0 + 2.0 * rng.NextGaussian();
    }
    auto folds = AssignFolds(n, K, 600 + rep);

    // Train per-fold least squares fits.
    struct Fit {
      double slope, intercept;
    };
    std::vector<Fit> fits(K);
    for (int f = 0; f < K; ++f) {
      double sx = 0, sy = 0, sxx = 0, sxy = 0, m = 0;
      for (size_t i = 0; i < n; ++i) {
        if (folds[i] == f) continue;
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        m += 1;
      }
      double slope = (sxy - sx * sy / m) / (sxx - sx * sx / m);
      fits[static_cast<size_t>(f)] = {slope, (sy - slope * sx) / m};
    }

    std::vector<double> oof(n);
    for (size_t i = 0; i < n; ++i) {
      const Fit& fit = fits[static_cast<size_t>(folds[i])];
      oof[i] = fit.slope * x[i] + fit.intercept;
    }
    JackknifeCvPlus jk(MakeScoring(ScoreKind::kResidual), alpha);
    ASSERT_TRUE(jk.Calibrate(oof, y, folds, K).ok());

    // Fresh test points from the same distribution.
    for (int t = 0; t < 200; ++t) {
      double xt = rng.NextDouble(0.0, 10.0);
      double yt = 3.0 * xt + 5.0 + 2.0 * rng.NextGaussian();
      std::vector<double> fold_preds(K);
      for (int f = 0; f < K; ++f) {
        fold_preds[static_cast<size_t>(f)] =
            fits[static_cast<size_t>(f)].slope * xt +
            fits[static_cast<size_t>(f)].intercept;
      }
      Interval iv = jk.Predict(fold_preds, fold_preds[0]);
      covered += iv.Contains(yt) ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  double coverage = covered / total;
  // CV+ guarantees 1 - 2*alpha minus a small term; empirically it is
  // usually ~1 - alpha. Test the hard floor with slack.
  EXPECT_GE(coverage, 1.0 - 2 * alpha - 0.03);
}

TEST(JackknifeTest, QErrorScoringProducesMultiplicativeIntervals) {
  JackknifeCvPlus jk(MakeScoring(ScoreKind::kQError), 0.2,
                     JackknifeCvPlus::Mode::kSimplified);
  std::vector<double> oof, truth;
  std::vector<int> folds;
  for (int i = 0; i < 10; ++i) {
    oof.push_back(100.0);
    truth.push_back(100.0 * (1.0 + 0.1 * i));  // q-errors 1.0 .. 1.9
    folds.push_back(i % 2);
  }
  ASSERT_TRUE(jk.Calibrate(oof, truth, folds, 2).ok());
  Interval iv = jk.Predict({}, 1000.0);
  EXPECT_NEAR(iv.lo * iv.hi, 1000.0 * 1000.0, 1e-6);  // geometric symmetry
}

}  // namespace
}  // namespace confcard
