#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace confcard {
namespace nn {
namespace {

Tensor Col(std::initializer_list<float> vals) {
  Tensor t(vals.size(), 1);
  size_t i = 0;
  for (float v : vals) t.At(i++, 0) = v;
  return t;
}

TEST(MseLossTest, ValueAndGradient) {
  Tensor pred = Col({3.0f, 1.0f});
  std::vector<float> target = {1.0f, 1.0f};
  Tensor grad;
  double loss = MseLoss(pred, target, &grad);
  EXPECT_DOUBLE_EQ(loss, (4.0 + 0.0) / 2.0);
  EXPECT_FLOAT_EQ(grad.At(0, 0), 2.0f * 2.0f / 2.0f);
  EXPECT_FLOAT_EQ(grad.At(1, 0), 0.0f);
}

TEST(MseLossTest, ZeroAtPerfectPrediction) {
  Tensor pred = Col({5.0f});
  Tensor grad;
  EXPECT_DOUBLE_EQ(MseLoss(pred, {5.0f}, &grad), 0.0);
}

TEST(PinballLossTest, AsymmetricPenalty) {
  // tau = 0.9 penalizes underprediction 9x more than overprediction.
  Tensor under = Col({0.0f});
  Tensor over = Col({2.0f});
  Tensor grad;
  double lu = PinballLoss(under, {1.0f}, 0.9, &grad);
  EXPECT_NEAR(lu, 0.9, 1e-6);
  EXPECT_FLOAT_EQ(grad.At(0, 0), -0.9f);
  double lo = PinballLoss(over, {1.0f}, 0.9, &grad);
  EXPECT_NEAR(lo, 0.1, 1e-6);
  EXPECT_FLOAT_EQ(grad.At(0, 0), 0.1f);
}

TEST(PinballLossTest, MinimizedAtQuantile) {
  // For samples {0..9}, the tau=0.8 pinball loss over predictions should
  // be minimized near the 80th-percentile value 8.
  std::vector<float> ys;
  for (int i = 0; i < 10; ++i) ys.push_back(static_cast<float>(i));
  auto loss_at = [&](float c) {
    Tensor pred(10, 1);
    for (int i = 0; i < 10; ++i) pred.At(static_cast<size_t>(i), 0) = c;
    Tensor grad;
    return PinballLoss(pred, ys, 0.8, &grad);
  };
  double best = loss_at(8.0f);
  EXPECT_LT(best, loss_at(4.0f));
  EXPECT_LT(best, loss_at(9.5f));
}

TEST(QErrorLogLossTest, MonotoneInAbsoluteLogError) {
  Tensor grad;
  Tensor p1 = Col({1.0f});
  Tensor p2 = Col({2.0f});
  double l1 = QErrorLogLoss(p1, {0.0f}, &grad);
  double l2 = QErrorLogLoss(p2, {0.0f}, &grad);
  EXPECT_GT(l2, l1);
  EXPECT_NEAR(l1, std::exp(1.0), 1e-5);
}

TEST(QErrorLogLossTest, GradientSign) {
  Tensor grad;
  Tensor over = Col({2.0f});
  QErrorLogLoss(over, {0.0f}, &grad);
  EXPECT_GT(grad.At(0, 0), 0.0f);
  Tensor under = Col({-2.0f});
  QErrorLogLoss(under, {0.0f}, &grad);
  EXPECT_LT(grad.At(0, 0), 0.0f);
}

TEST(QErrorLogLossTest, GradientMagnitudeCapped) {
  Tensor grad;
  Tensor wild = Col({100.0f});
  QErrorLogLoss(wild, {0.0f}, &grad, /*cap=*/4.0);
  EXPECT_LE(grad.At(0, 0), std::exp(4.0f) + 1e-3f);
}

TEST(SoftmaxRowTest, NormalizedAndOrdered) {
  float logits[] = {1.0f, 3.0f, 2.0f};
  float probs[3];
  SoftmaxRow(logits, 3, probs);
  float sum = probs[0] + probs[1] + probs[2];
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(probs[1], probs[2]);
  EXPECT_GT(probs[2], probs[0]);
}

TEST(SoftmaxRowTest, StableForLargeLogits) {
  float logits[] = {1000.0f, 999.0f};
  float probs[2];
  SoftmaxRow(logits, 2, probs);
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-6f);
  EXPECT_GT(probs[0], probs[1]);
}

TEST(BlockSoftmaxTest, UniformLogitsGiveLogDomainLoss) {
  // Two blocks of sizes 2 and 4, all-zero logits: CE = ln2 + ln4.
  Tensor logits(1, 6);
  std::vector<size_t> offsets = {0, 2, 6};
  std::vector<std::vector<int>> targets = {{0, 3}};
  Tensor grad;
  double loss = BlockSoftmaxCrossEntropy(logits, offsets, targets, &grad);
  EXPECT_NEAR(loss, std::log(2.0) + std::log(4.0), 1e-6);
}

TEST(BlockSoftmaxTest, GradientIsSoftmaxMinusOneHot) {
  Tensor logits(1, 4);
  std::vector<size_t> offsets = {0, 4};
  std::vector<std::vector<int>> targets = {{1}};
  Tensor grad;
  BlockSoftmaxCrossEntropy(logits, offsets, targets, &grad);
  // Uniform softmax = 0.25 each; target entry gets -1.
  EXPECT_NEAR(grad.At(0, 0), 0.25f, 1e-6f);
  EXPECT_NEAR(grad.At(0, 1), -0.75f, 1e-6f);
  // Gradient rows sum to zero per block.
  float sum = 0.0f;
  for (size_t j = 0; j < 4; ++j) sum += grad.At(0, j);
  EXPECT_NEAR(sum, 0.0f, 1e-6f);
}

TEST(BlockSoftmaxTest, FiniteDifferenceGradient) {
  Rng rng(17);
  Tensor logits = Tensor::Randn(2, 5, 1.0f, rng);
  std::vector<size_t> offsets = {0, 2, 5};
  std::vector<std::vector<int>> targets = {{1, 2}, {0, 0}};
  Tensor grad;
  BlockSoftmaxCrossEntropy(logits, offsets, targets, &grad);
  const float eps = 1e-3f;
  for (size_t i = 0; i < logits.size(); ++i) {
    Tensor g2;
    float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    double up = BlockSoftmaxCrossEntropy(logits, offsets, targets, &g2);
    logits.data()[i] = orig - eps;
    double down = BlockSoftmaxCrossEntropy(logits, offsets, targets, &g2);
    logits.data()[i] = orig;
    EXPECT_NEAR(grad.data()[i], (up - down) / (2.0 * eps), 2e-3);
  }
}

}  // namespace
}  // namespace nn
}  // namespace confcard
