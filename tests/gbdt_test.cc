#include "gbdt/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace gbdt {
namespace {

// Builds (X, y) for y = f(x0, x1) with X ~ U[0,1]^2.
struct Data {
  std::vector<float> X;
  std::vector<double> y;
};

template <typename F>
Data MakeData(size_t n, F f, uint64_t seed) {
  Rng rng(seed);
  Data d;
  d.X.reserve(n * 2);
  d.y.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    float a = static_cast<float>(rng.NextDouble());
    float b = static_cast<float>(rng.NextDouble());
    d.X.push_back(a);
    d.X.push_back(b);
    d.y.push_back(f(a, b));
  }
  return d;
}

double Mse(const GbdtRegressor& model, const Data& d) {
  double mse = 0.0;
  for (size_t i = 0; i < d.y.size(); ++i) {
    double p = model.Predict(&d.X[2 * i]);
    mse += (p - d.y[i]) * (p - d.y[i]);
  }
  return mse / static_cast<double>(d.y.size());
}

TEST(GbdtTest, FitsStepFunction) {
  auto step = [](float a, float) { return a > 0.5f ? 10.0 : 0.0; };
  Data train = MakeData(2000, step, 1);
  Data test = MakeData(500, step, 2);
  GbdtRegressor model;
  ASSERT_TRUE(model.Fit(train.X, 2, train.y).ok());
  EXPECT_TRUE(model.fitted());
  EXPECT_LT(Mse(model, test), 0.5);
}

TEST(GbdtTest, FitsAdditiveFunction) {
  auto f = [](float a, float b) { return 3.0 * a + 2.0 * b; };
  Data train = MakeData(3000, f, 3);
  Data test = MakeData(500, f, 4);
  GbdtRegressor model;
  ASSERT_TRUE(model.Fit(train.X, 2, train.y).ok());
  EXPECT_LT(Mse(model, test), 0.05);
}

TEST(GbdtTest, FitsInteraction) {
  // XOR-like: trees must split on both features.
  auto f = [](float a, float b) {
    return ((a > 0.5f) != (b > 0.5f)) ? 5.0 : -5.0;
  };
  Data train = MakeData(4000, f, 5);
  Data test = MakeData(500, f, 6);
  GbdtConfig cfg;
  cfg.tree.max_depth = 3;
  cfg.num_trees = 200;
  GbdtRegressor model(cfg);
  ASSERT_TRUE(model.Fit(train.X, 2, train.y).ok());
  EXPECT_LT(Mse(model, test), 2.0);
}

TEST(GbdtTest, BeatsConstantBaseline) {
  auto f = [](float a, float b) { return std::sin(6.0 * a) + b * b; };
  Data train = MakeData(3000, f, 7);
  Data test = MakeData(500, f, 8);
  GbdtRegressor model;
  ASSERT_TRUE(model.Fit(train.X, 2, train.y).ok());
  double mean = 0.0;
  for (double v : train.y) mean += v;
  mean /= static_cast<double>(train.y.size());
  double baseline = 0.0;
  for (double v : test.y) baseline += (v - mean) * (v - mean);
  baseline /= static_cast<double>(test.y.size());
  EXPECT_LT(Mse(model, test), baseline / 4.0);
}

TEST(GbdtTest, DeterministicBySeed) {
  auto f = [](float a, float b) { return a - b; };
  Data train = MakeData(1000, f, 9);
  GbdtRegressor m1, m2;
  ASSERT_TRUE(m1.Fit(train.X, 2, train.y).ok());
  ASSERT_TRUE(m2.Fit(train.X, 2, train.y).ok());
  std::vector<float> probe = {0.3f, 0.7f};
  EXPECT_DOUBLE_EQ(m1.Predict(probe), m2.Predict(probe));
}

TEST(GbdtTest, ConstantTargetIsExact) {
  Data train = MakeData(500, [](float, float) { return 7.0; }, 10);
  GbdtRegressor model;
  ASSERT_TRUE(model.Fit(train.X, 2, train.y).ok());
  std::vector<float> probe = {0.5f, 0.5f};
  EXPECT_NEAR(model.Predict(probe), 7.0, 1e-6);
}

TEST(GbdtValidationTest, RejectsBadInputs) {
  GbdtRegressor model;
  EXPECT_FALSE(model.Fit({}, 0, {}).ok());
  EXPECT_FALSE(model.Fit({1.0f, 2.0f}, 2, {1.0, 2.0}).ok());  // mismatch
  GbdtConfig cfg;
  cfg.subsample = 0.0;
  GbdtRegressor bad(cfg);
  EXPECT_FALSE(bad.Fit({1.0f}, 1, {1.0}).ok());
}

TEST(TreeBinningTest, EdgesAreStrictlyIncreasing) {
  Rng rng(11);
  std::vector<float> X;
  for (int i = 0; i < 1000; ++i) {
    X.push_back(static_cast<float>(rng.NextUint64(5)));  // few distincts
  }
  FeatureMatrix mat{X.data(), 1000, 1};
  auto edges = ComputeBinEdges(mat, 32);
  ASSERT_EQ(edges.size(), 1u);
  for (size_t i = 1; i < edges[0].size(); ++i) {
    EXPECT_LT(edges[0][i - 1], edges[0][i]);
  }
  EXPECT_LE(edges[0].size(), 31u);
}

TEST(TreeBinningTest, BinSemanticsMatchSplits) {
  // bin(v) <= j must be equivalent to v <= edges[j].
  std::vector<float> X = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f};
  FeatureMatrix mat{X.data(), 8, 1};
  auto edges = ComputeBinEdges(mat, 4);
  auto bins = ComputeBins(mat, edges);
  for (size_t r = 0; r < 8; ++r) {
    for (size_t j = 0; j < edges[0].size(); ++j) {
      EXPECT_EQ(bins[r] <= j, X[r] <= edges[0][j])
          << "row " << r << " edge " << j;
    }
  }
}

}  // namespace
}  // namespace gbdt
}  // namespace confcard
