// Regression coverage for the batched, sparsity-aware inference engine:
// (1) golden fixed-seed Naru progressive-sampling values, asserted
// bit-exact for both the dense reference path and the sparse engine —
// any change to either forward shows up here first; (2) batched-vs-loop
// bit-identity for MSCN, LW-NN, and Naru EstimateBatch, including
// batches that mix trivial (no-predicate, empty-range) queries with
// engine queries; (3) the MaskedDense sparse kernels against their dense
// Apply equivalents.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ce/estimator.h"
#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "ce/naru.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nn/layers.h"
#include "query/workload.h"

namespace confcard {
namespace {

struct Fixture {
  Table table;
  Workload workload;
};

// Must stay in sync with build-time golden generation: the literals
// below were recorded from this exact fixture and Naru config.
Fixture MakeFixture() {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 2000;
  spec.seed = 31;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  a.zipf_skew = 0.7;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 40.0;
  ColumnSpec c;
  c.name = "c";
  c.domain_size = 4;
  spec.columns = {a, b, c};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = 12;
  wc.seed = 21;
  Workload wl = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(wl)};
}

NaruConfig SmallNaruConfig() {
  NaruConfig nc;
  nc.hidden = 16;
  nc.hidden_layers = 1;
  nc.epochs = 2;
  nc.num_samples = 8;
  return nc;
}

// Fixed-seed progressive-sampling selectivities recorded from the dense
// reference path (hexfloat: exact bits). The sparse engine must
// reproduce them bit for bit — "bit-identical" is the engine's contract,
// not an approximation target.
constexpr double kGoldenSelectivity[] = {
    0x1.da79b79efce9fp-10,
    0x1.90640fa3c92dep-5,
    0x1.2f8ef4d8fd55p-5,
    0x1.f1abff074a41ep-3,
    0x1.b001c2d1622b8p-5,
    0x1.459b471c6aa9cp-5,
    0x1.d08e571ea78dcp-7,
    0x1.6a5e5a04e642fp-8,
    0x1.345a617862f7p-8,
    0x1.8b4c08p-3,
    0x1.1bbc3ce467317p-4,
    0x1.8724f4839279ep-3,
};

TEST(InferenceBatchTest, GoldenProgressiveSampleBitExactDenseAndSparse) {
  Fixture f = MakeFixture();
  NaruEstimator naru(SmallNaruConfig());
  ASSERT_TRUE(naru.Train(f.table).ok());
  ASSERT_EQ(f.workload.size(),
            sizeof(kGoldenSelectivity) / sizeof(kGoldenSelectivity[0]));

  naru.set_sparse_inference(false);
  for (size_t i = 0; i < f.workload.size(); ++i) {
    ASSERT_EQ(naru.EstimateSelectivity(f.workload[i].query),
              kGoldenSelectivity[i])
        << "dense path, query " << i;
  }
  naru.set_sparse_inference(true);
  for (size_t i = 0; i < f.workload.size(); ++i) {
    ASSERT_EQ(naru.EstimateSelectivity(f.workload[i].query),
              kGoldenSelectivity[i])
        << "sparse path, query " << i;
  }
}

// Batches mixing trivial queries (no predicates; empty bin range) with
// engine queries must agree with the per-query loop on every slot.
TEST(InferenceBatchTest, NaruBatchWithTrivialQueriesMatchesLoop) {
  Fixture f = MakeFixture();
  NaruEstimator naru(SmallNaruConfig());
  ASSERT_TRUE(naru.Train(f.table).ok());

  std::vector<Query> queries;
  queries.push_back(Query{});  // no predicates -> N
  for (const LabeledQuery& lq : f.workload) queries.push_back(lq.query);
  // Empty bin range on the numeric column (interval below the domain).
  queries.insert(queries.begin() + 3,
                 Query{{Predicate::Between(1, -10.0, -5.0)}});

  std::vector<double> loop;
  for (const Query& q : queries) loop.push_back(naru.EstimateCardinality(q));

  std::vector<double> batched(queries.size());
  naru.EstimateBatch(queries.data(), queries.size(), batched.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batched[i], loop[i]) << "query " << i;
  }

  // n == 0 is a no-op.
  naru.EstimateBatch(nullptr, 0, nullptr);
}

TEST(InferenceBatchTest, MscnAndLwnnBatchMatchesLoop) {
  Fixture f = MakeFixture();

  MscnEstimator::Options mo;
  mo.model.epochs = 4;
  mo.model.set_hidden = 16;
  mo.model.final_hidden = 16;
  MscnEstimator mscn(mo);
  ASSERT_TRUE(mscn.Train(f.table, f.workload).ok());

  LwnnEstimator::Options lo;
  lo.epochs = 6;
  lo.hidden1 = 16;
  lo.hidden2 = 8;
  LwnnEstimator lwnn(lo);
  ASSERT_TRUE(lwnn.Train(f.table, f.workload).ok());

  std::vector<Query> queries;
  queries.push_back(Query{});  // empty-set / all-defaults featurization
  for (const LabeledQuery& lq : f.workload) queries.push_back(lq.query);

  std::vector<double> batched(queries.size());
  mscn.EstimateBatch(queries.data(), queries.size(), batched.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batched[i], mscn.EstimateCardinality(queries[i]))
        << "mscn query " << i;
  }
  lwnn.EstimateBatch(queries.data(), queries.size(), batched.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batched[i], lwnn.EstimateCardinality(queries[i]))
        << "lw-nn query " << i;
  }
}

// The base-class EstimateBatch (the per-query loop every estimator
// without a batched engine inherits) must tolerate n == 0 — including
// null pointers — and match the scalar path on a single-query batch.
TEST(InferenceBatchTest, BaseClassEstimateBatchEdgeSizes) {
  class CountingEstimator : public CardinalityEstimator {
   public:
    std::string name() const override { return "counting"; }
    double EstimateCardinality(const Query& query) const override {
      ++calls;
      return static_cast<double>(query.predicates.size()) + 0.5;
    }
    mutable int calls = 0;
  };

  CountingEstimator est;
  est.EstimateBatch(nullptr, 0, nullptr);
  EXPECT_EQ(est.calls, 0);

  const Query q{{Predicate::Between(0, 1.0, 2.0)}};
  double out = 0.0;
  est.EstimateBatch(&q, 1, &out);
  EXPECT_EQ(est.calls, 1);
  EXPECT_EQ(out, est.EstimateCardinality(q));
}

// Kernel-level contract: the sparse one-hot forward and the
// column-restricted dense forward reproduce Apply's bits exactly.
TEST(InferenceBatchTest, MaskedDenseSparseKernelsMatchApply) {
  const size_t in_dim = 37, out_dim = 23, rows = 9;
  Rng rng(123);
  nn::Tensor mask(in_dim, out_dim);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.NextDouble() < 0.7 ? 1.0f : 0.0f;
  }
  nn::MaskedDense layer(in_dim, out_dim, std::move(mask), rng);

  // Random block-sparse one-hot rows (including an all-zero row).
  std::vector<uint32_t> indices;
  std::vector<size_t> offsets = {0};
  nn::Tensor dense(rows, in_dim);
  for (size_t r = 0; r < rows; ++r) {
    const size_t nnz = r == 4 ? 0 : 1 + rng.NextUint64(4);
    uint32_t pos = 0;
    for (size_t t = 0; t < nnz; ++t) {
      // Strictly ascending indices across the row.
      pos += static_cast<uint32_t>(rng.NextUint64(in_dim / 5)) + 1;
      if (pos >= in_dim) break;
      indices.push_back(pos);
      dense.At(r, pos) = 1.0f;
    }
    offsets.push_back(indices.size());
  }
  const nn::SparseRows sparse{rows, in_dim, indices.data(), offsets.data()};

  const nn::Tensor want = layer.Apply(dense);
  const nn::Tensor got = layer.ApplyOneHot(sparse);
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << "element " << i;
  }

  const size_t c0 = 5, c1 = 17;
  const nn::Tensor got_cols = layer.ApplyCols(dense, c0, c1);
  const nn::Tensor got_oh_cols = layer.ApplyOneHotCols(sparse, c0, c1);
  ASSERT_EQ(got_cols.cols(), c1 - c0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = c0; c < c1; ++c) {
      ASSERT_EQ(got_cols.At(r, c - c0), want.At(r, c));
      ASSERT_EQ(got_oh_cols.At(r, c - c0), want.At(r, c));
    }
  }
}

}  // namespace
}  // namespace confcard
