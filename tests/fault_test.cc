// The fault-injection registry: grammar parsing, deterministic and
// thread-count-independent Poll decisions, empirical rate accuracy, the
// retry-salt re-roll, and the Train/IO Check sites end to end.
#include "common/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "ce/naru.h"
#include "common/archive.h"
#include "common/csv.h"
#include "common/parallel.h"
#include "data/generators.h"
#include "query/workload.h"

namespace confcard {
namespace {

// Every test leaves the process registry clean: later tests (and any
// code sharing this binary) must see faults disabled.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Registry::Instance().Clear(); }
};

TEST_F(FaultTest, ParsesWellFormedSpecs) {
  auto specs = fault::ParseFaultSpecs(
      "naru.forward:nan@0.02; mscn.train:fail@0.1 ;sampler.step:slow@0.05");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0].site, "naru.forward");
  EXPECT_EQ((*specs)[0].kind, fault::Kind::kNan);
  EXPECT_DOUBLE_EQ((*specs)[0].rate, 0.02);
  EXPECT_EQ((*specs)[1].site, "mscn.train");
  EXPECT_EQ((*specs)[1].kind, fault::Kind::kFail);
  EXPECT_EQ((*specs)[2].kind, fault::Kind::kSlow);
}

TEST_F(FaultTest, EmptyAndTrailingSeparatorsAreFine) {
  auto specs = fault::ParseFaultSpecs("");
  ASSERT_TRUE(specs.ok());
  EXPECT_TRUE(specs->empty());
  specs = fault::ParseFaultSpecs("a:nan@1;;");
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ(specs->size(), 1u);
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(fault::ParseFaultSpecs("noseparators").ok());
  EXPECT_FALSE(fault::ParseFaultSpecs("site:badkind@0.5").ok());
  EXPECT_FALSE(fault::ParseFaultSpecs("site:nan@1.5").ok());
  EXPECT_FALSE(fault::ParseFaultSpecs("site:nan@-0.1").ok());
  EXPECT_FALSE(fault::ParseFaultSpecs("site:nan@abc").ok());
  EXPECT_FALSE(fault::ParseFaultSpecs(":nan@0.5").ok());
  EXPECT_FALSE(fault::ParseFaultSpecs("site:nan@").ok());
}

TEST_F(FaultTest, PollIsDeterministicPerKeyAndClearDisables) {
  fault::Registry& reg = fault::Registry::Instance();
  ASSERT_TRUE(reg.ConfigureFromString("s:nan@0.5").ok());
  ASSERT_TRUE(fault::Enabled());
  for (uint64_t key = 0; key < 64; ++key) {
    const fault::Kind first = reg.Poll("s", key);
    for (int rep = 0; rep < 4; ++rep) {
      EXPECT_EQ(reg.Poll("s", key), first) << "key " << key;
    }
  }
  // Unknown sites never fire.
  EXPECT_EQ(reg.Poll("other", 1), fault::Kind::kNone);
  reg.Clear();
  EXPECT_FALSE(fault::Enabled());
  EXPECT_EQ(reg.Poll("s", 1), fault::Kind::kNone);
}

TEST_F(FaultTest, EmpiricalRateTracksConfiguredRate) {
  fault::Registry& reg = fault::Registry::Instance();
  ASSERT_TRUE(reg.ConfigureFromString("s:fail@0.2").ok());
  const int kKeys = 20000;
  int fired = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (reg.Poll("s", key) != fault::Kind::kNone) ++fired;
  }
  const double rate = static_cast<double>(fired) / kKeys;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST_F(FaultTest, DecisionsAreIdenticalAcrossThreadCounts) {
  fault::Registry& reg = fault::Registry::Instance();
  ASSERT_TRUE(reg.ConfigureFromString("s:nan@0.3").ok());
  const size_t kKeys = 4096;
  std::vector<fault::Kind> serial(kKeys);
  for (size_t key = 0; key < kKeys; ++key) {
    serial[key] = reg.Poll("s", key);
  }
  for (int threads : {1, 4}) {
    SetThreads(threads);
    std::vector<fault::Kind> parallel(kKeys);
    ParallelFor(kKeys, 0, [&](size_t begin, size_t end) {
      for (size_t key = begin; key < end; ++key) {
        parallel[key] = reg.Poll("s", key);
      }
    });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
  SetThreads(1);
}

TEST_F(FaultTest, RetrySaltRerollsDecisions) {
  fault::Registry& reg = fault::Registry::Instance();
  ASSERT_TRUE(reg.ConfigureFromString("s:nan@0.5").ok());
  // With a fresh salt the per-key decisions must differ somewhere (they
  // are independent 50% draws over 256 keys), and restoring the salt
  // must restore the original decisions exactly.
  std::vector<fault::Kind> base(256), salted(256), restored(256);
  for (uint64_t k = 0; k < 256; ++k) base[k] = reg.Poll("s", k);
  {
    fault::ScopedRetrySalt salt(1);
    for (uint64_t k = 0; k < 256; ++k) salted[k] = reg.Poll("s", k);
  }
  for (uint64_t k = 0; k < 256; ++k) restored[k] = reg.Poll("s", k);
  EXPECT_EQ(restored, base);
  EXPECT_NE(salted, base);
}

TEST_F(FaultTest, PerturbValueImplementsEachKind) {
  fault::Registry& reg = fault::Registry::Instance();
  reg.set_slow_micros(1);
  ASSERT_TRUE(reg.ConfigureFromString("n:nan@1;f:fail@1;w:slow@1").ok());
  EXPECT_TRUE(std::isnan(fault::PerturbValue("n", 7, 42.0)));
  EXPECT_EQ(fault::PerturbValue("f", 7, 42.0), -1.0);
  EXPECT_EQ(fault::PerturbValue("w", 7, 42.0), 42.0);  // slow keeps value
  EXPECT_EQ(fault::PerturbValue("unknown", 7, 42.0), 42.0);
}

TEST_F(FaultTest, CheckImplementsFailAndSlow) {
  fault::Registry& reg = fault::Registry::Instance();
  reg.set_slow_micros(1);
  ASSERT_TRUE(reg.ConfigureFromString("f:fail@1;w:slow@1;n:nan@1").ok());
  const Status failed = fault::Check("f", 1);
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_NE(failed.message().find("f"), std::string::npos);
  EXPECT_TRUE(fault::Check("w", 1).ok());
  EXPECT_TRUE(fault::Check("n", 1).ok());  // nan has no Status meaning
}

TEST_F(FaultTest, TrainSitesFailAllThreeModels) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 400;
  spec.seed = 7;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 4;
  spec.columns = {a};
  Table table = GenerateTable(spec).value();
  WorkloadConfig wc;
  wc.num_queries = 8;
  wc.seed = 3;
  Workload wl = GenerateWorkload(table, wc).value();

  fault::Registry& reg = fault::Registry::Instance();
  ASSERT_TRUE(
      reg.ConfigureFromString(
             "lwnn.train:fail@1;mscn.train:fail@1;naru.train:fail@1")
          .ok());

  LwnnEstimator lwnn;
  EXPECT_EQ(lwnn.Train(table, wl).code(), StatusCode::kInternal);
  MscnEstimator mscn;
  EXPECT_EQ(mscn.Train(table, wl).code(), StatusCode::kInternal);
  NaruEstimator naru;
  EXPECT_EQ(naru.Train(table).code(), StatusCode::kInternal);

  reg.Clear();
  LwnnEstimator::Options lo;
  lo.epochs = 1;
  LwnnEstimator ok(lo);
  EXPECT_TRUE(ok.Train(table, wl).ok());
}

TEST_F(FaultTest, IoSitesFailCsvAndArchiveReads) {
  const std::string csv_path = ::testing::TempDir() + "fault_io.csv";
  {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n1,2\n", f);
    std::fclose(f);
  }
  const std::string arc_path = ::testing::TempDir() + "fault_io.bin";
  {
    ArchiveWriter w(0xABCD1234u, 1);
    w.WriteU64(5);
    ASSERT_TRUE(w.SaveToFile(arc_path).ok());
  }

  fault::Registry& reg = fault::Registry::Instance();
  ASSERT_TRUE(reg.ConfigureFromString("io.csv:fail@1;io.archive:fail@1").ok());
  EXPECT_EQ(ReadCsv(csv_path, true).status().code(), StatusCode::kInternal);
  EXPECT_EQ(ArchiveReader::FromFile(arc_path, 0xABCD1234u, 1).status().code(),
            StatusCode::kInternal);

  reg.Clear();
  EXPECT_TRUE(ReadCsv(csv_path, true).ok());
  EXPECT_TRUE(ArchiveReader::FromFile(arc_path, 0xABCD1234u, 1).ok());
}

}  // namespace
}  // namespace confcard
