// Harness plumbing tests with cheap estimators: result fields populated,
// coverage sane, all four PI methods runnable end to end on a small
// single-table setup, plus the join harness.
#include "harness/single_table.h"

#include <gtest/gtest.h>

#include "ce/histogram.h"
#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "data/generators.h"
#include "harness/join_harness.h"
#include "query/join_workload.h"
#include "query/workload.h"

namespace confcard {
namespace {

struct Fixture {
  Table table;
  Workload train, calib, test;
};

Fixture MakeFixture() {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 6000;
  spec.seed = 101;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 6;
  a.zipf_skew = 0.8;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 50.0;
  ColumnSpec c;
  c.name = "c";
  c.domain_size = 5;
  c.parent = 0;
  c.correlation = 0.7;
  spec.columns = {a, b, c};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = 400;
  wc.seed = 1;
  Workload train = GenerateWorkload(table, wc).value();
  wc.seed = 2;
  Workload calib = GenerateWorkload(table, wc).value();
  wc.seed = 3;
  wc.num_queries = 300;
  Workload test = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(train), std::move(calib),
          std::move(test)};
}

TEST(SingleTableHarnessTest, ScpWithHistogramModel) {
  Fixture f = MakeFixture();
  SingleTableHarness h(f.table, f.train, f.calib, f.test, {});
  HistogramEstimator hist(f.table);
  MethodResult r = h.RunScp(hist);
  EXPECT_EQ(r.model, "histogram-avi");
  EXPECT_EQ(r.method, "s-cp");
  EXPECT_EQ(r.rows.size(), f.test.size());
  EXPECT_GE(r.coverage, 0.85);
  EXPECT_GT(r.mean_width_sel, 0.0);
  EXPECT_LE(r.mean_width_sel, 1.0);
  // Intervals are clipped to [0, N].
  for (const PiRow& row : r.rows) {
    EXPECT_GE(row.lo, 0.0);
    EXPECT_LE(row.hi, static_cast<double>(f.table.num_rows()));
  }
}

TEST(SingleTableHarnessTest, LwScpAdaptsWidths) {
  Fixture f = MakeFixture();
  SingleTableHarness h(f.table, f.train, f.calib, f.test, {});
  HistogramEstimator hist(f.table);
  MethodResult r = h.RunLwScp(hist);
  EXPECT_EQ(r.method, "lw-s-cp");
  EXPECT_GE(r.coverage, 0.82);
  // Widths should vary across queries (adaptive, not constant).
  double mn = 1e18, mx = -1.0;
  for (const PiRow& row : r.rows) {
    mn = std::min(mn, row.width());
    mx = std::max(mx, row.width());
  }
  EXPECT_GT(mx, 1.5 * std::max(mn, 1.0));
}

TEST(SingleTableHarnessTest, PerturbationDifficulty) {
  Fixture f = MakeFixture();
  SingleTableHarness::Options opts;
  opts.perturbations = 4;
  SingleTableHarness h(f.table, f.train, f.calib, f.test, opts);
  HistogramEstimator hist(f.table);
  MethodResult r =
      h.RunLwScp(hist, DifficultySource::kPerturbation, nullptr);
  EXPECT_EQ(r.method, "lw-s-cp(pert)");
  EXPECT_GE(r.coverage, 0.80);
}

TEST(SingleTableHarnessTest, CqrWithLwnn) {
  Fixture f = MakeFixture();
  SingleTableHarness h(f.table, f.train, f.calib, f.test, {});
  LwnnEstimator::Options lo;
  lo.epochs = 20;
  lo.hidden1 = 24;
  lo.hidden2 = 12;
  LwnnEstimator proto(lo);
  MethodResult r = h.RunCqr(proto);
  EXPECT_EQ(r.method, "cqr");
  EXPECT_GE(r.coverage, 0.82);
  EXPECT_GT(r.prep_millis, 0.0);
}

TEST(SingleTableHarnessTest, JkCvWithLwnn) {
  Fixture f = MakeFixture();
  SingleTableHarness::Options opts;
  opts.jk_folds = 4;
  SingleTableHarness h(f.table, f.train, f.calib, f.test, opts);
  LwnnEstimator::Options lo;
  lo.epochs = 15;
  lo.hidden1 = 24;
  lo.hidden2 = 12;
  LwnnEstimator proto(lo);
  ASSERT_TRUE(proto.Train(f.table, f.train).ok());
  MethodResult full = h.RunJkCv(proto, proto, /*simplified=*/false);
  EXPECT_EQ(full.method, "jk-cv+");
  EXPECT_GE(full.coverage, 0.85);  // CV+ floor is 1-2a; usually ~1-a
  MethodResult simp = h.RunJkCv(proto, proto, /*simplified=*/true);
  EXPECT_EQ(simp.method, "jk-cv+(s)");
  EXPECT_GE(simp.coverage, 0.80);
}

TEST(SingleTableHarnessTest, JkCvFixedModelForDataDriven) {
  Fixture f = MakeFixture();
  SingleTableHarness h(f.table, f.train, f.calib, f.test, {});
  HistogramEstimator hist(f.table);
  MethodResult r = h.RunJkCvFixedModel(hist);
  EXPECT_EQ(r.method, "jk-cv+");
  EXPECT_GE(r.coverage, 0.85);
}

TEST(SingleTableHarnessTest, QErrorScoringGivesMultiplicativeIntervals) {
  Fixture f = MakeFixture();
  SingleTableHarness::Options opts;
  opts.score = ScoreKind::kQError;
  SingleTableHarness h(f.table, f.train, f.calib, f.test, opts);
  HistogramEstimator hist(f.table);
  MethodResult r = h.RunScp(hist);
  EXPECT_GE(r.coverage, 0.85);
  // Width should scale with the estimate under multiplicative scores:
  // compare small- vs large-estimate queries.
  double small_w = 0.0, large_w = 0.0;
  int small_n = 0, large_n = 0;
  for (const PiRow& row : r.rows) {
    if (row.estimate < 50.0 && row.hi < f.table.num_rows()) {
      small_w += row.width();
      ++small_n;
    } else if (row.estimate > 500.0 && row.hi < f.table.num_rows()) {
      large_w += row.width();
      ++large_n;
    }
  }
  if (small_n > 5 && large_n > 5) {
    EXPECT_LT(small_w / small_n, large_w / large_n);
  }
}

TEST(EstimatorInstanceIdTest, UniqueAcrossReusedStorage) {
  // Regression test for the estimate-cache bug: models re-created at
  // the same address must not alias. instance_id must be fresh even
  // when the object occupies the same storage as a destroyed one.
  Fixture f = MakeFixture();
  SingleTableHarness h(f.table, f.train, f.calib, f.test, {});
  uint64_t first_id = 0;
  double first_width = 0.0;
  for (int buckets : {4, 64}) {
    HistogramEstimator hist(f.table, buckets);
    if (first_id == 0) {
      first_id = hist.instance_id();
      first_width = h.RunScp(hist).mean_width_sel;
    } else {
      EXPECT_NE(hist.instance_id(), first_id);
      // Different statistics resolution -> different estimates ->
      // different widths. A stale cache would repeat first_width.
      EXPECT_NE(h.RunScp(hist).mean_width_sel, first_width);
    }
  }
}

// The validating factory: user-supplied configs must come back as
// InvalidArgument, not a CONFCARD_CHECK abort deep in split.cc.
TEST(SingleTableHarnessTest, MakeRejectsInvalidConfigs) {
  Fixture f = MakeFixture();
  SingleTableHarness::Options opts;

  auto make = [&](SingleTableHarness::Options o, Workload calib,
                  Workload test) {
    return SingleTableHarness::Make(f.table, f.train, std::move(calib),
                                    std::move(test), o);
  };

  opts.alpha = 0.0;
  EXPECT_EQ(make(opts, f.calib, f.test).status().code(),
            StatusCode::kInvalidArgument);
  opts.alpha = 1.5;
  EXPECT_EQ(make(opts, f.calib, f.test).status().code(),
            StatusCode::kInvalidArgument);

  opts = {};
  opts.jk_folds = 1;
  EXPECT_EQ(make(opts, f.calib, f.test).status().code(),
            StatusCode::kInvalidArgument);

  opts = {};
  opts.degraded_inflation = 0.5;
  EXPECT_EQ(make(opts, f.calib, f.test).status().code(),
            StatusCode::kInvalidArgument);

  opts = {};
  EXPECT_EQ(make(opts, Workload{}, f.test).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(make(opts, f.calib, Workload{}).status().code(),
            StatusCode::kInvalidArgument);

  // A query referencing a column the table does not have.
  Workload bad_test = f.test;
  bad_test[0].query.predicates.push_back(Predicate::Between(42, 0.0, 1.0));
  EXPECT_EQ(make(opts, f.calib, bad_test).status().code(),
            StatusCode::kInvalidArgument);

  // The well-formed config builds and runs.
  auto h = make(opts, f.calib, f.test);
  ASSERT_TRUE(h.ok());
  HistogramEstimator hist(f.table);
  MethodResult r = h->RunScp(hist);
  EXPECT_EQ(r.rows.size(), f.test.size());
}

TEST(JoinHarnessTest, MakeRejectsInvalidConfigs) {
  Database db = MakeDsbLike(1500, 35).value();
  JoinWorkloadConfig jc;
  jc.queries_per_template = 4;
  auto tpls = DsbTemplates();
  tpls.resize(2);
  jc.seed = 7;
  JoinWorkload calib = GenerateJoinWorkload(db, tpls, jc).value();
  jc.seed = 8;
  JoinWorkload test = GenerateJoinWorkload(db, tpls, jc).value();

  JoinHarness::Options opts;
  opts.alpha = -0.1;
  EXPECT_EQ(JoinHarness::Make(db, {}, calib, test, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = {};
  opts.jk_folds = 0;
  EXPECT_EQ(JoinHarness::Make(db, {}, calib, test, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts = {};
  EXPECT_EQ(JoinHarness::Make(db, {}, {}, test, opts).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(JoinHarness::Make(db, {}, calib, {}, opts).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(JoinHarness::Make(db, {}, calib, test, opts).ok());
}

TEST(FinalizeMethodResultTest, AggregatesCorrectly) {
  MethodResult r;
  r.rows = {{100.0, 90.0, 80.0, 120.0},   // covered, width 40
            {100.0, 90.0, 110.0, 120.0},  // not covered, width 10
            {50.0, 50.0, 40.0, 60.0}};    // covered, width 20
  FinalizeMethodResult(&r, 1000.0);
  EXPECT_NEAR(r.coverage, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.mean_width_sel, (0.04 + 0.01 + 0.02) / 3.0, 1e-12);
  EXPECT_NEAR(r.median_width_sel, 0.02, 1e-12);
}

// Degraded (fallback-answered) rows must not pollute the headline
// aggregates: coverage/width come from healthy rows only, and the
// degraded slice is reported on the side.
TEST(FinalizeMethodResultTest, DegradedRowsAggregateSeparately) {
  MethodResult r;
  r.rows = {{100.0, 90.0, 80.0, 120.0},            // healthy, covered
            {100.0, 90.0, 110.0, 120.0},           // healthy, not covered
            {50.0, 50.0, 10.0, 90.0, 0.0, true},   // degraded, covered
            {50.0, 50.0, 60.0, 90.0, 0.0, true}};  // degraded, not covered
  FinalizeMethodResult(&r, 1000.0);
  EXPECT_EQ(r.num_degraded, 2u);
  EXPECT_NEAR(r.coverage, 0.5, 1e-12);
  EXPECT_NEAR(r.coverage_degraded, 0.5, 1e-12);
  EXPECT_NEAR(r.mean_width_sel, (0.04 + 0.01) / 2.0, 1e-12);
}

TEST(JoinHarnessTest, ScpOverDsbWorkload) {
  Database db = MakeDsbLike(4000, 31).value();
  JoinWorkloadConfig jc;
  jc.queries_per_template = 12;
  auto tpls = DsbTemplates();
  tpls.resize(5);
  jc.seed = 1;
  JoinWorkload train = GenerateJoinWorkload(db, tpls, jc).value();
  jc.seed = 2;
  JoinWorkload calib = GenerateJoinWorkload(db, tpls, jc).value();
  jc.seed = 3;
  JoinWorkload test = GenerateJoinWorkload(db, tpls, jc).value();

  MscnConfig mc;
  mc.epochs = 15;
  MscnJoinEstimator mscn(mc);
  ASSERT_TRUE(mscn.Train(db, train).ok());

  JoinHarness h(db, train, calib, test, {});
  MethodResult r = h.RunScp(mscn);
  EXPECT_EQ(r.rows.size(), test.size());
  EXPECT_GE(r.coverage, 0.80);
  MethodResult lw = h.RunLwScp(mscn);
  EXPECT_GE(lw.coverage, 0.78);
}

TEST(JoinHarnessTest, CqrAndJkOverDsbWorkload) {
  Database db = MakeDsbLike(4000, 33).value();
  JoinWorkloadConfig jc;
  jc.queries_per_template = 15;
  auto tpls = DsbTemplates();
  tpls.resize(4);
  jc.seed = 4;
  JoinWorkload train = GenerateJoinWorkload(db, tpls, jc).value();
  jc.seed = 5;
  JoinWorkload calib = GenerateJoinWorkload(db, tpls, jc).value();
  jc.seed = 6;
  JoinWorkload test = GenerateJoinWorkload(db, tpls, jc).value();

  MscnConfig mc;
  mc.epochs = 12;
  MscnJoinEstimator mscn(mc);
  ASSERT_TRUE(mscn.Train(db, train).ok());

  JoinHarness::Options opts;
  opts.jk_folds = 3;
  JoinHarness h(db, train, calib, test, opts);
  MethodResult cqr = h.RunCqr(mscn);
  EXPECT_EQ(cqr.method, "cqr");
  EXPECT_GE(cqr.coverage, 0.78);
  MethodResult jk = h.RunJkCv(mscn, mscn);
  EXPECT_EQ(jk.method, "jk-cv+");
  EXPECT_GE(jk.coverage, 0.78);  // CV+ floor 1 - 2*alpha = 0.8
}

}  // namespace
}  // namespace confcard
