#include "conformal/weighted.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

// Covariate shift setup: x ~ U[0,1] in calibration, but the test
// distribution concentrates on large x. Noise grows with x, so ignoring
// the shift loses coverage; the likelihood ratio w(x) = p_test/p_calib
// restores it.
struct Stream {
  std::vector<std::vector<float>> features;
  std::vector<double> estimates;
  std::vector<double> truths;
};

double NoiseAt(double x) { return 5.0 + 300.0 * x * x; }

Stream MakeCalib(size_t n, uint64_t seed) {
  Rng rng(seed);
  Stream s;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble();
    s.features.push_back({static_cast<float>(x)});
    s.estimates.push_back(100.0);
    s.truths.push_back(100.0 + NoiseAt(x) * rng.NextGaussian());
  }
  return s;
}

// Test density p_test(x) = 2x on [0,1] (sampled by sqrt of a uniform).
Stream MakeShiftedTest(size_t n, uint64_t seed) {
  Rng rng(seed);
  Stream s;
  for (size_t i = 0; i < n; ++i) {
    const double x = std::sqrt(rng.NextDouble());
    s.features.push_back({static_cast<float>(x)});
    s.estimates.push_back(100.0);
    s.truths.push_back(100.0 + NoiseAt(x) * rng.NextGaussian());
  }
  return s;
}

// w(x) = p_test / p_calib = 2x.
double LikelihoodRatio(const std::vector<float>& f) {
  return 2.0 * static_cast<double>(f[0]);
}

TEST(WeightedTest, UniformWeightsMatchPlainConformal) {
  WeightedConformal wc(MakeScoring(ScoreKind::kResidual),
                       [](const std::vector<float>&) { return 1.0; }, 0.2);
  std::vector<std::vector<float>> feats(9, {0.0f});
  std::vector<double> est(9, 10.0), truth;
  for (int i = 1; i <= 9; ++i) truth.push_back(10.0 + i);
  ASSERT_TRUE(wc.Calibrate(feats, est, truth).ok());
  // Uniform weights: target = 0.8 * 10 = 8 -> 8th smallest score = 8,
  // the same rank as the plain conformal quantile.
  EXPECT_DOUBLE_EQ(wc.WeightedDelta({0.0f}), 8.0);
  Interval iv = wc.Predict(100.0, {0.0f});
  EXPECT_DOUBLE_EQ(iv.lo, 92.0);
  EXPECT_DOUBLE_EQ(iv.hi, 108.0);
}

TEST(WeightedTest, RestoresCoverageUnderCovariateShift) {
  double covered_w = 0.0, covered_plain = 0.0, total = 0.0;
  for (uint64_t rep = 0; rep < 5; ++rep) {
    Stream cal = MakeCalib(2500, 100 + rep);
    Stream test = MakeShiftedTest(800, 200 + rep);

    WeightedConformal wc(MakeScoring(ScoreKind::kResidual),
                         LikelihoodRatio, 0.1);
    ASSERT_TRUE(wc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
    // Plain S-CP baseline = weighted CP with unit weights.
    WeightedConformal plain(
        MakeScoring(ScoreKind::kResidual),
        [](const std::vector<float>&) { return 1.0; }, 0.1);
    ASSERT_TRUE(
        plain.Calibrate(cal.features, cal.estimates, cal.truths).ok());

    for (size_t i = 0; i < test.truths.size(); ++i) {
      covered_w += wc.Predict(test.estimates[i], test.features[i])
                           .Contains(test.truths[i])
                       ? 1.0
                       : 0.0;
      covered_plain += plain.Predict(test.estimates[i], test.features[i])
                               .Contains(test.truths[i])
                           ? 1.0
                           : 0.0;
      total += 1.0;
    }
  }
  const double cov_w = covered_w / total;
  const double cov_plain = covered_plain / total;
  // The shift pushes mass toward high-noise x: plain CP under-covers,
  // weighted CP holds ~0.9.
  EXPECT_LT(cov_plain, 0.885);
  EXPECT_GE(cov_w, 0.885);
}

TEST(WeightedTest, EffectiveSampleSize) {
  WeightedConformal wc(MakeScoring(ScoreKind::kResidual),
                       LikelihoodRatio, 0.1);
  Stream cal = MakeCalib(2000, 7);
  ASSERT_TRUE(wc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  const double ess = wc.EffectiveSampleSize();
  // ESS for w = 2x over U[0,1]: (E w)^2 / E w^2 = 1 / (4/3) = 0.75n.
  EXPECT_GT(ess, 0.6 * 2000);
  EXPECT_LT(ess, 0.9 * 2000);
}

TEST(WeightedTest, ExtremeTestWeightGivesTrivialInterval) {
  WeightedConformal wc(
      MakeScoring(ScoreKind::kResidual),
      [](const std::vector<float>& f) {
        return f[0] > 0.5f ? 1e12 : 1.0;
      },
      0.1);
  Stream cal = MakeCalib(200, 8);
  for (auto& f : cal.features) f[0] = 0.0f;  // calibration weight 1
  ASSERT_TRUE(wc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  Interval iv = wc.Predict(100.0, {1.0f});  // test weight dominates
  EXPECT_TRUE(std::isinf(iv.hi));
}

TEST(WeightedTest, RejectsBadWeights) {
  WeightedConformal wc(
      MakeScoring(ScoreKind::kResidual),
      [](const std::vector<float>&) { return -1.0; }, 0.1);
  Stream cal = MakeCalib(50, 9);
  EXPECT_FALSE(wc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
}

TEST(WeightedTest, RejectsAllZeroWeights) {
  WeightedConformal wc(
      MakeScoring(ScoreKind::kResidual),
      [](const std::vector<float>&) { return 0.0; }, 0.1);
  Stream cal = MakeCalib(50, 10);
  EXPECT_FALSE(wc.Calibrate(cal.features, cal.estimates, cal.truths).ok());
}

}  // namespace
}  // namespace confcard
