// Locally weighted split conformal: coverage is preserved while interval
// widths adapt to heteroscedastic noise — the property that
// distinguishes it from plain S-CP in the paper.
#include "conformal/locally_weighted.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace confcard {
namespace {

// Heteroscedastic stream: noise scale depends on x[0] (low x -> quiet,
// high x -> noisy).
struct HetStream {
  std::vector<std::vector<float>> features;
  std::vector<double> estimates;
  std::vector<double> truths;
};

HetStream MakeHet(size_t n, uint64_t seed) {
  Rng rng(seed);
  HetStream s;
  for (size_t i = 0; i < n; ++i) {
    float x = static_cast<float>(rng.NextDouble());
    double signal = 500.0 + 100.0 * x;
    double sigma = 5.0 + 200.0 * x;  // strongly heteroscedastic
    double truth = signal + sigma * rng.NextGaussian();
    s.features.push_back({x});
    s.estimates.push_back(signal);
    s.truths.push_back(truth);
  }
  return s;
}

LocallyWeightedConformal MakeLw(double alpha = 0.1) {
  LocallyWeightedConformal::Options opts;
  opts.alpha = alpha;
  opts.gbdt.num_trees = 60;
  return LocallyWeightedConformal(opts);
}

TEST(LwConformalTest, RequiresDifficultyBeforeCalibrate) {
  LocallyWeightedConformal lw = MakeLw();
  HetStream cal = MakeHet(100, 1);
  Status st = lw.Calibrate(cal.features, cal.estimates, cal.truths);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(LwConformalTest, RejectsBadInputs) {
  LocallyWeightedConformal lw = MakeLw();
  HetStream tr = MakeHet(100, 2);
  EXPECT_FALSE(lw.FitDifficulty({}, {}, {}).ok());
  EXPECT_FALSE(lw.FitDifficulty(tr.features, tr.estimates, {}).ok());
  ASSERT_TRUE(lw.FitDifficulty(tr.features, tr.estimates, tr.truths).ok());
  EXPECT_FALSE(lw.Calibrate(tr.features, tr.estimates, {}).ok());
}

TEST(LwConformalTest, DifficultyTracksNoiseLevel) {
  LocallyWeightedConformal lw = MakeLw();
  HetStream tr = MakeHet(3000, 3);
  ASSERT_TRUE(lw.FitDifficulty(tr.features, tr.estimates, tr.truths).ok());
  double quiet = lw.Difficulty({0.05f});
  double noisy = lw.Difficulty({0.95f});
  EXPECT_GT(noisy, 3.0 * quiet);
}

TEST(LwConformalTest, IntervalsAdaptToQuery) {
  LocallyWeightedConformal lw = MakeLw();
  HetStream tr = MakeHet(3000, 4);
  HetStream cal = MakeHet(1500, 5);
  ASSERT_TRUE(lw.FitDifficulty(tr.features, tr.estimates, tr.truths).ok());
  ASSERT_TRUE(lw.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  Interval quiet = lw.Predict(550.0, {0.05f});
  Interval noisy = lw.Predict(550.0, {0.95f});
  EXPECT_GT(noisy.width(), 2.0 * quiet.width());
}

TEST(LwConformalTest, CoverageAtLeastNominal) {
  double covered = 0.0, total = 0.0;
  for (uint64_t rep = 0; rep < 6; ++rep) {
    LocallyWeightedConformal lw = MakeLw(0.1);
    HetStream tr = MakeHet(2000, 10 + rep);
    HetStream cal = MakeHet(1000, 30 + rep);
    HetStream test = MakeHet(1000, 50 + rep);
    ASSERT_TRUE(
        lw.FitDifficulty(tr.features, tr.estimates, tr.truths).ok());
    ASSERT_TRUE(lw.Calibrate(cal.features, cal.estimates, cal.truths).ok());
    for (size_t i = 0; i < test.truths.size(); ++i) {
      Interval iv = lw.Predict(test.estimates[i], test.features[i]);
      covered += iv.Contains(test.truths[i]) ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  double coverage = covered / total;
  double slack = 3.0 * std::sqrt(0.09 / total);
  EXPECT_GE(coverage, 0.9 - slack);
}

TEST(LwConformalTest, TighterThanScpOnAverageUnderHeteroscedasticity) {
  // The paper's motivation: adaptive widths beat the fixed S-CP width in
  // median, because easy queries stop paying for hard ones.
  LocallyWeightedConformal lw = MakeLw(0.1);
  HetStream tr = MakeHet(3000, 81);
  HetStream cal = MakeHet(1500, 82);
  HetStream test = MakeHet(1500, 83);
  ASSERT_TRUE(lw.FitDifficulty(tr.features, tr.estimates, tr.truths).ok());
  ASSERT_TRUE(lw.Calibrate(cal.features, cal.estimates, cal.truths).ok());

  // Fixed-width S-CP delta from the same calibration residuals.
  std::vector<double> resid;
  for (size_t i = 0; i < cal.truths.size(); ++i) {
    resid.push_back(std::fabs(cal.truths[i] - cal.estimates[i]));
  }
  double scp_width = 2.0 * ConformalQuantile(resid, 0.1);

  std::vector<double> lw_widths;
  for (size_t i = 0; i < test.truths.size(); ++i) {
    lw_widths.push_back(
        lw.Predict(test.estimates[i], test.features[i]).width());
  }
  EXPECT_LT(Percentile(lw_widths, 50.0), scp_width);
}

TEST(LwConformalTest, CustomDifficultyFunction) {
  LocallyWeightedConformal lw = MakeLw(0.1);
  lw.SetDifficultyFn([](const std::vector<float>& x) {
    return 10.0 + 100.0 * static_cast<double>(x[0]);
  });
  HetStream cal = MakeHet(1000, 91);
  ASSERT_TRUE(lw.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  EXPECT_GT(lw.Predict(0.0, {1.0f}).width(),
            lw.Predict(0.0, {0.0f}).width());
}

TEST(LwConformalTest, DifficultyFloorPreventsDegenerateIntervals) {
  LocallyWeightedConformal::Options opts;
  opts.alpha = 0.1;
  opts.min_difficulty = 7.0;
  LocallyWeightedConformal lw(opts);
  lw.SetDifficultyFn([](const std::vector<float>&) { return 0.0; });
  EXPECT_DOUBLE_EQ(lw.Difficulty({0.5f}), 7.0);
}

}  // namespace
}  // namespace confcard
