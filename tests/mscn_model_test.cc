// MSCN network internals exercised through its public surface: set
// packing/pooling edge cases (empty sets, variable sizes), batch
// consistency, quantile-loss training, determinism.
#include "ce/mscn_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

MscnInput MakeInput(Rng& rng, size_t table_dim, size_t join_dim,
                    size_t pred_dim, size_t num_preds) {
  MscnInput in;
  auto vec = [&](size_t dim) {
    std::vector<float> v(dim);
    for (float& x : v) x = static_cast<float>(rng.NextDouble());
    return v;
  };
  in.tables.push_back(vec(table_dim));
  (void)join_dim;
  for (size_t p = 0; p < num_preds; ++p) {
    in.predicates.push_back(vec(pred_dim));
  }
  return in;
}

MscnConfig FastConfig() {
  MscnConfig cfg;
  cfg.set_hidden = 16;
  cfg.final_hidden = 16;
  cfg.epochs = 40;
  cfg.batch_size = 16;
  return cfg;
}

TEST(MscnModelTest, TrainsOnSetSizeSignal) {
  // Target = number of predicates; the mean-pooled predicate module
  // cannot count directly, but the table vector is constant so the
  // model must pick the signal up from the predicate features we plant.
  Rng rng(1);
  std::vector<MscnInput> inputs;
  std::vector<double> targets;
  for (int i = 0; i < 400; ++i) {
    size_t k = 1 + rng.NextUint64(3);
    MscnInput in = MakeInput(rng, 3, 1, 4, k);
    for (auto& p : in.predicates) {
      p[0] = static_cast<float>(k) / 4.0f;  // plant the signal
    }
    inputs.push_back(std::move(in));
    targets.push_back(static_cast<double>(k));
  }
  MscnModel model(3, 1, 4, FastConfig());
  ASSERT_TRUE(model.Train(inputs, targets).ok());
  double mse = 0.0;
  for (size_t i = 0; i < 50; ++i) {
    double p = model.PredictLogCard(inputs[i]);
    mse += (p - targets[i]) * (p - targets[i]);
  }
  EXPECT_LT(mse / 50.0, 0.5);
}

TEST(MscnModelTest, HandlesEmptyPredicateSet) {
  Rng rng(2);
  std::vector<MscnInput> inputs;
  std::vector<double> targets;
  for (int i = 0; i < 64; ++i) {
    // Half the queries have no predicates at all.
    inputs.push_back(MakeInput(rng, 3, 1, 4, i % 2 == 0 ? 0 : 2));
    targets.push_back(i % 2 == 0 ? 5.0 : 1.0);
  }
  MscnModel model(3, 1, 4, FastConfig());
  ASSERT_TRUE(model.Train(inputs, targets).ok());
  // Empty-set queries pool to zero and should still separate from the
  // others.
  MscnInput empty = MakeInput(rng, 3, 1, 4, 0);
  MscnInput full = MakeInput(rng, 3, 1, 4, 2);
  EXPECT_GT(model.PredictLogCard(empty), model.PredictLogCard(full));
}

TEST(MscnModelTest, PredictionIndependentOfBatchContext) {
  // Predicting the same input alone must match the value it got when it
  // was trained alongside others (forward has no cross-sample state).
  Rng rng(3);
  std::vector<MscnInput> inputs;
  std::vector<double> targets;
  for (int i = 0; i < 32; ++i) {
    inputs.push_back(MakeInput(rng, 3, 1, 4, 1 + (i % 3)));
    targets.push_back(static_cast<double>(i % 5));
  }
  MscnModel model(3, 1, 4, FastConfig());
  ASSERT_TRUE(model.Train(inputs, targets).ok());
  double a = model.PredictLogCard(inputs[0]);
  // Interleave other predictions and re-ask.
  (void)model.PredictLogCard(inputs[5]);
  (void)model.PredictLogCard(inputs[9]);
  double b = model.PredictLogCard(inputs[0]);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(MscnModelTest, DeterministicBySeed) {
  Rng rng(4);
  std::vector<MscnInput> inputs;
  std::vector<double> targets;
  for (int i = 0; i < 64; ++i) {
    inputs.push_back(MakeInput(rng, 3, 1, 4, 2));
    targets.push_back(static_cast<double>(i % 7));
  }
  MscnModel a(3, 1, 4, FastConfig());
  MscnModel b(3, 1, 4, FastConfig());
  ASSERT_TRUE(a.Train(inputs, targets).ok());
  ASSERT_TRUE(b.Train(inputs, targets).ok());
  EXPECT_DOUBLE_EQ(a.PredictLogCard(inputs[0]),
                   b.PredictLogCard(inputs[0]));
}

TEST(MscnModelTest, PinballTrainingShiftsPredictions) {
  // Same inputs, noisy targets: the 0.9-quantile head should sit above
  // the 0.1-quantile head.
  Rng rng(5);
  std::vector<MscnInput> inputs;
  std::vector<double> targets;
  MscnInput proto = MakeInput(rng, 3, 1, 4, 2);
  for (int i = 0; i < 300; ++i) {
    inputs.push_back(proto);
    targets.push_back(10.0 * rng.NextDouble());
  }
  MscnConfig hi_cfg = FastConfig();
  hi_cfg.loss = LossSpec::Pinball(0.9);
  MscnConfig lo_cfg = FastConfig();
  lo_cfg.loss = LossSpec::Pinball(0.1);
  MscnModel hi(3, 1, 4, hi_cfg);
  MscnModel lo(3, 1, 4, lo_cfg);
  ASSERT_TRUE(hi.Train(inputs, targets).ok());
  ASSERT_TRUE(lo.Train(inputs, targets).ok());
  EXPECT_GT(hi.PredictLogCard(proto), lo.PredictLogCard(proto) + 4.0);
}

TEST(MscnModelTest, RejectsBadTrainingInputs) {
  MscnModel model(3, 1, 4, FastConfig());
  EXPECT_FALSE(model.Train({}, {}).ok());
  Rng rng(6);
  std::vector<MscnInput> one = {MakeInput(rng, 3, 1, 4, 1)};
  EXPECT_FALSE(model.Train(one, {1.0, 2.0}).ok());
}

}  // namespace
}  // namespace confcard
