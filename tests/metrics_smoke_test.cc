// End-to-end gate for the observability pipeline: runs one real bench
// binary at tiny scale with CONFCARD_METRICS_JSON set and validates the
// emitted artifact — well-formed JSON, required keys, at least one
// counter and one latency histogram, and a span tree whose durations are
// all non-negative. The binary path is baked in by CMake via
// CONFCARD_SMOKE_BENCH_PATH.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace confcard {
namespace {

using obs::JsonValue;

void CheckSpanTree(const JsonValue& span, size_t* num_spans) {
  ASSERT_EQ(span.kind, JsonValue::Kind::kObject);
  const JsonValue* name = span.Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_FALSE(name->string_value.empty());
  const JsonValue* dur = span.Find("dur_us");
  ASSERT_NE(dur, nullptr) << "span " << name->string_value;
  EXPECT_GE(dur->number, 0.0) << "span " << name->string_value;
  const JsonValue* start = span.Find("start_us");
  ASSERT_NE(start, nullptr);
  EXPECT_GE(start->number, 0.0);
  ++*num_spans;
  if (const JsonValue* children = span.Find("children")) {
    for (const JsonValue& child : children->elements) {
      CheckSpanTree(child, num_spans);
    }
  }
}

TEST(MetricsSmokeTest, BenchEmitsValidArtifact) {
#ifndef CONFCARD_SMOKE_BENCH_PATH
  GTEST_SKIP() << "bench path not configured";
#else
  const auto artifact = std::filesystem::temp_directory_path() /
                        "confcard_metrics_smoke.json";
  std::filesystem::remove(artifact);
  const std::string cmd = std::string("CONFCARD_SCALE=0.01 ") +
                          "CONFCARD_METRICS_JSON=" + artifact.string() + " " +
                          CONFCARD_SMOKE_BENCH_PATH + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << cmd;
  ASSERT_TRUE(std::filesystem::exists(artifact));

  std::ifstream in(artifact);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  Result<JsonValue> doc = obs::ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // Run metadata.
  const JsonValue* run = doc->Find("run");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(run->Find("name"), nullptr);
  EXPECT_FALSE(run->Find("name")->string_value.empty());
  ASSERT_NE(run->Find("wall_time_seconds"), nullptr);
  EXPECT_GT(run->Find("wall_time_seconds")->number, 0.0);
  const JsonValue* meta = run->Find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_NE(meta->Find("scale"), nullptr);

  // At least one counter with a positive value.
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_GE(counters->members.size(), 1u);
  bool positive_counter = false;
  for (const auto& [cname, cvalue] : counters->members) {
    positive_counter |= cvalue.number > 0.0;
  }
  EXPECT_TRUE(positive_counter);

  // At least one latency histogram with samples and sane summary.
  const JsonValue* histograms = doc->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_GE(histograms->members.size(), 1u);
  bool sampled_histogram = false;
  for (const auto& [hname, h] : histograms->members) {
    const JsonValue* count = h.Find("count");
    ASSERT_NE(count, nullptr) << hname;
    if (count->number == 0.0) continue;
    sampled_histogram = true;
    EXPECT_GE(h.Find("max")->number, h.Find("min")->number) << hname;
    EXPECT_GE(h.Find("p99")->number, h.Find("p50")->number) << hname;
    ASSERT_NE(h.Find("buckets"), nullptr) << hname;
    EXPECT_GE(h.Find("buckets")->elements.size(), 1u) << hname;
  }
  EXPECT_TRUE(sampled_histogram);

  // Span tree: present, all durations >= 0, and covering the
  // train -> calibrate -> inference pipeline.
  const JsonValue* spans = doc->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_GE(spans->elements.size(), 1u);
  size_t num_spans = 0;
  for (const JsonValue& root : spans->elements) {
    CheckSpanTree(root, &num_spans);
  }
  EXPECT_GE(num_spans, 3u);
  const JsonValue* summaries = doc->Find("span_summaries");
  ASSERT_NE(summaries, nullptr);
  bool saw_train = false, saw_calibrate = false, saw_infer = false;
  for (const auto& [sname, unused] : summaries->members) {
    saw_train |= sname.rfind("train.", 0) == 0;
    saw_calibrate |= sname.rfind("calibrate.", 0) == 0;
    saw_infer |= sname == "infer";
  }
  EXPECT_TRUE(saw_train);
  EXPECT_TRUE(saw_calibrate);
  EXPECT_TRUE(saw_infer);

  std::filesystem::remove(artifact);
#endif
}

}  // namespace
}  // namespace confcard
