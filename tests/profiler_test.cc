// prof-smoke suite: the sampling profiler's concurrency and crash
// contracts. Signal-safety is exercised by arming the profiler under an
// oversubscribed ParallelFor hammer (tools/run_tsan_obs.sh runs this
// suite under TSan); folded-output well-formedness and span-label
// attribution are checked on real captures; the resource counters
// backing span accounting must be monotone; and a death test proves a
// crashed run still leaves a parseable partial profile.
//
// gtest_discover_tests runs each case in its own process, so every case
// owns the (process-global) profiler state it starts.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace confcard {
namespace obs {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/confcard_prof_" + std::to_string(::getpid()) +
         "_" + name;
}

// Burns roughly `ms` of thread CPU time (the clock sampling runs on),
// so sample yields are deterministic even on a loaded 1-core host.
void BurnCpuMillis(double ms) {
  const double end = prof::ThreadCpuMicros() + ms * 1000.0;
  volatile double sink = 1.0;
  while (prof::ThreadCpuMicros() < end) {
    for (int i = 0; i < 4000; ++i) sink = sink * 1.0000001 + 1e-9;
  }
}

// Validates every line of a folded profile: `stack COUNT` with a
// positive integer count after the last space and no empty frames.
// Writes the number of lines (0 for a missing/empty file) to `*lines`.
// Void-returning because ASSERT_* requires it.
void CheckFoldedFile(const std::string& path, size_t* lines_out) {
  *lines_out = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return;
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const size_t space = line.find_last_of(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    EXPECT_EQ(count.find_first_not_of("0123456789"), std::string::npos)
        << line;
    EXPECT_NE(count, "0") << line;
    // Frames: non-empty between ';' separators (sanitization maps ';'
    // and '\n' inside symbol names to ':').
    const std::string stack = line.substr(0, space);
    size_t begin = 0;
    for (;;) {
      const size_t semi = stack.find(';', begin);
      const size_t len =
          (semi == std::string::npos ? stack.size() : semi) - begin;
      EXPECT_GT(len, 0u) << line;
      if (semi == std::string::npos) break;
      begin = semi + 1;
    }
  }
  *lines_out = lines;
}

size_t ReturnsCheckedLines(const std::string& path) {
  size_t lines = 0;
  CheckFoldedFile(path, &lines);
  return lines;
}

TEST(ProfilerSmokeTest, SamplesUnderParallelHammerAndWritesWellFormed) {
  const std::string path = TempPath("hammer.folded");
  std::remove(path.c_str());
  const int saved = CurrentThreads();
  SetThreads(8);
  ASSERT_TRUE(prof::StartProfiler(path, 2000).ok());
  EXPECT_TRUE(prof::ProfilerEnabled());
  EXPECT_EQ(prof::SamplingHz(), 2000);
  // Oversubscribed hammer: 8 pool threads register mid-profile and take
  // SIGPROF while racing over chunks. Spans exercise the label stack on
  // every worker.
  for (int round = 0; round < 4; ++round) {
    ParallelFor(32, 1, [&](size_t begin, size_t end) {
      TraceSpan span("proftest.chunk");
      for (size_t i = begin; i < end; ++i) BurnCpuMillis(2.0);
    });
  }
  ASSERT_TRUE(prof::StopProfilerAndWrite().ok());
  EXPECT_FALSE(prof::ProfilerEnabled());
  SetThreads(saved);
  EXPECT_GT(prof::SampleCount(), 0u);
  const size_t lines = ReturnsCheckedLines(path);
  EXPECT_GT(lines, 0u);
  std::remove(path.c_str());
}

TEST(ProfilerSmokeTest, SpanLabelsAttributeSamples) {
  const std::string path = TempPath("labels.folded");
  std::remove(path.c_str());
  ASSERT_TRUE(prof::StartProfiler(path, 2000).ok());
  EXPECT_EQ(prof::SpanLabelDepth(), 0);
  {
    TraceSpan outer("proftest.outer");
    EXPECT_EQ(prof::SpanLabelDepth(), 1);
    TraceSpan inner("proftest.inner");
    EXPECT_EQ(prof::SpanLabelDepth(), 2);
    BurnCpuMillis(100.0);  // ~200 samples at 2000 Hz, all inside both
  }
  EXPECT_EQ(prof::SpanLabelDepth(), 0);
  const std::string folded = prof::RenderFoldedProfile();
  ASSERT_TRUE(prof::StopProfilerAndWrite().ok());
  // Span labels lead the stack as pseudo-frames, outermost first.
  EXPECT_NE(folded.find("proftest.outer;proftest.inner;"),
            std::string::npos)
      << folded.substr(0, 2000);
  std::remove(path.c_str());
}

TEST(ProfilerSmokeTest, ResourceCountersAreMonotonic) {
  const uint64_t count0 = prof::ThreadAllocCount();
  const uint64_t bytes0 = prof::ThreadAllocBytes();
  {
    std::vector<char*> blocks;
    for (int i = 0; i < 16; ++i) blocks.push_back(new char[1024]);
    for (char* b : blocks) delete[] b;
  }
  const uint64_t count1 = prof::ThreadAllocCount();
  const uint64_t bytes1 = prof::ThreadAllocBytes();
  EXPECT_GE(count1, count0 + 16);  // frees never decrement the counters
  EXPECT_GE(bytes1, bytes0 + 16 * 1024);

  const double cpu0 = prof::ThreadCpuMicros();
  BurnCpuMillis(5.0);
  const double cpu1 = prof::ThreadCpuMicros();
  EXPECT_GE(cpu1, cpu0 + 4000.0);

  uint64_t vol0 = 0, invol0 = 0, vol1 = 0, invol1 = 0;
  prof::ThreadContextSwitches(&vol0, &invol0);
  BurnCpuMillis(1.0);
  prof::ThreadContextSwitches(&vol1, &invol1);
  EXPECT_GE(vol1, vol0);
  EXPECT_GE(invol1, invol0);
}

TEST(ProfilerCrashTest, FatalSignalFlushesPartialProfile) {
  const std::string path = TempPath("crash.folded");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        if (!prof::StartProfiler(path, 2000).ok()) std::exit(3);
        BurnCpuMillis(150.0);  // fill the ring with samples, no drain
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");
  // The crash flush writes raw (unsymbolized) count-1 lines straight
  // from the rings; they must still parse as a folded profile.
  const size_t lines = ReturnsCheckedLines(path);
  EXPECT_GT(lines, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace confcard
