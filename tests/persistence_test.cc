// Model persistence: save a trained estimator, load it against the same
// table, and get bit-identical estimates — the deployment path where a
// model is trained offline and shipped with its conformal delta.
#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "ce/naru.h"
#include "data/generators.h"
#include "query/workload.h"

namespace confcard {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSpec spec;
    spec.name = "t";
    spec.num_rows = 4000;
    spec.seed = 61;
    ColumnSpec a;
    a.name = "a";
    a.domain_size = 5;
    a.zipf_skew = 0.8;
    ColumnSpec b;
    b.name = "b";
    b.kind = ColumnKind::kNumeric;
    b.num_min = 0.0;
    b.num_max = 10.0;
    spec.columns = {a, b};
    table_ = std::make_unique<Table>(GenerateTable(spec).value());

    WorkloadConfig wc;
    wc.num_queries = 300;
    wc.seed = 62;
    train_ = GenerateWorkload(*table_, wc).value();
    wc.seed = 63;
    wc.num_queries = 100;
    test_ = GenerateWorkload(*table_, wc).value();

    // Pid suffix: parallel ctest runs each case in its own process, and
    // a shared fixed name races across cases of this fixture.
    path_ = (std::filesystem::temp_directory_path() /
             ("confcard_persistence_test_" + std::to_string(::getpid()) +
              ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<Table> table_;
  Workload train_, test_;
  std::string path_;
};

TEST_F(PersistenceTest, MscnRoundtripIsBitIdentical) {
  MscnEstimator::Options opts;
  opts.model.epochs = 8;
  opts.model.set_hidden = 24;
  opts.model.final_hidden = 24;
  MscnEstimator model(opts);
  ASSERT_TRUE(model.Train(*table_, train_).ok());
  ASSERT_TRUE(model.SaveToFile(path_).ok());

  auto loaded = MscnEstimator::LoadFromFile(*table_, path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const LabeledQuery& lq : test_) {
    EXPECT_DOUBLE_EQ(model.EstimateCardinality(lq.query),
                     loaded->EstimateCardinality(lq.query));
  }
}

TEST_F(PersistenceTest, MscnUntrainedRefusesToSave) {
  MscnEstimator model;
  EXPECT_EQ(model.SaveToFile(path_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, MscnRejectsMismatchedTable) {
  MscnEstimator::Options opts;
  opts.model.epochs = 3;
  MscnEstimator model(opts);
  ASSERT_TRUE(model.Train(*table_, train_).ok());
  ASSERT_TRUE(model.SaveToFile(path_).ok());

  TableSpec spec;
  spec.name = "other";
  spec.num_rows = 1234;  // different row count
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 10.0;
  spec.columns = {a, b};
  Table other = GenerateTable(spec).value();
  auto loaded = MscnEstimator::LoadFromFile(other, path_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(PersistenceTest, LwnnRoundtripIsBitIdentical) {
  LwnnEstimator::Options opts;
  opts.epochs = 10;
  opts.hidden1 = 16;
  opts.hidden2 = 8;
  LwnnEstimator model(opts);
  ASSERT_TRUE(model.Train(*table_, train_).ok());
  ASSERT_TRUE(model.SaveToFile(path_).ok());

  auto loaded = LwnnEstimator::LoadFromFile(*table_, path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const LabeledQuery& lq : test_) {
    EXPECT_DOUBLE_EQ(model.EstimateCardinality(lq.query),
                     loaded->EstimateCardinality(lq.query));
  }
}

TEST_F(PersistenceTest, LwnnPreservesOptions) {
  LwnnEstimator::Options opts;
  opts.epochs = 5;
  opts.hidden1 = 12;
  opts.hidden2 = 6;
  opts.histogram_buckets = 7;
  opts.loss = LossSpec::Pinball(0.8);
  LwnnEstimator model(opts);
  ASSERT_TRUE(model.Train(*table_, train_).ok());
  ASSERT_TRUE(model.SaveToFile(path_).ok());
  auto loaded = LwnnEstimator::LoadFromFile(*table_, path_);
  ASSERT_TRUE(loaded.ok());
  // Behavioural check: the loaded pinball model equals the original.
  EXPECT_DOUBLE_EQ(model.EstimateCardinality(test_[0].query),
                   loaded->EstimateCardinality(test_[0].query));
}

TEST_F(PersistenceTest, NaruRoundtripIsBitIdentical) {
  NaruConfig cfg;
  cfg.hidden = 24;
  cfg.epochs = 3;
  cfg.num_samples = 16;
  cfg.max_train_rows = 4000;
  NaruEstimator model(cfg);
  ASSERT_TRUE(model.Train(*table_).ok());
  ASSERT_TRUE(model.SaveToFile(path_).ok());

  auto loaded = NaruEstimator::LoadFromFile(*table_, path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(model.EstimateCardinality(test_[i].query),
                     loaded->EstimateCardinality(test_[i].query));
  }
}

TEST_F(PersistenceTest, NaruUntrainedRefusesToSave) {
  NaruEstimator model;
  EXPECT_EQ(model.SaveToFile(path_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, WrongArchiveTypeRejected) {
  LwnnEstimator::Options lo;
  lo.epochs = 3;
  LwnnEstimator lwnn(lo);
  ASSERT_TRUE(lwnn.Train(*table_, train_).ok());
  ASSERT_TRUE(lwnn.SaveToFile(path_).ok());
  // An LW-NN archive is not an MSCN archive.
  auto loaded = MscnEstimator::LoadFromFile(*table_, path_);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace confcard
