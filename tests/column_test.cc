#include "data/column.h"

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(ColumnTest, CategoricalBasics) {
  Column c = Column::Categorical("kind", 4, {0, 1, 1, 3, 0});
  EXPECT_EQ(c.name(), "kind");
  EXPECT_TRUE(c.is_categorical());
  EXPECT_EQ(c.kind(), ColumnKind::kCategorical);
  EXPECT_EQ(c.domain_size(), 4);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
}

TEST(ColumnTest, NumericBasics) {
  Column c = Column::Numeric("v", {3.5, -1.0, 2.0});
  EXPECT_FALSE(c.is_categorical());
  EXPECT_EQ(c.domain_size(), 0);
  EXPECT_DOUBLE_EQ(c.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(c.max_value(), 3.5);
}

TEST(ColumnTest, DistinctCount) {
  Column c = Column::Numeric("v", {1, 1, 2, 2, 2, 3});
  EXPECT_EQ(c.distinct_count(), 3);
}

TEST(ColumnTest, DistinctValuesSorted) {
  Column c = Column::Numeric("v", {5, 1, 5, 3});
  auto d = c.DistinctValues();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(ColumnTest, EmptyColumnStats) {
  Column c = Column::Numeric("v", {});
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.distinct_count(), 0);
  EXPECT_DOUBLE_EQ(c.min_value(), 0.0);
}

TEST(ColumnTest, KindToString) {
  EXPECT_STREQ(ColumnKindToString(ColumnKind::kCategorical), "categorical");
  EXPECT_STREQ(ColumnKindToString(ColumnKind::kNumeric), "numeric");
}

TEST(ColumnTest, CategoricalStatsUseCodes) {
  Column c = Column::Categorical("k", 10, {7, 2, 2});
  EXPECT_DOUBLE_EQ(c.min_value(), 2.0);
  EXPECT_DOUBLE_EQ(c.max_value(), 7.0);
  EXPECT_EQ(c.distinct_count(), 2);
}

}  // namespace
}  // namespace confcard
