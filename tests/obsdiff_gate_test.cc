// The artifact regression gate, unit and end to end. Unit: DiffRuns
// threshold semantics on synthetic RunViews. End to end: run a real
// ablation bench twice at tiny scale with both the metrics artifact and
// the per-query event log armed, assert obsdiff exits 0 across the two
// runs (generous latency slack; everything else is seed-deterministic),
// then rewrite a copy of the first artifact with a synthetic 2x latency
// inflation / 5-point coverage drop and assert obsdiff exits nonzero
// naming the offending metric. Binary paths are baked in by CMake.
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/diff.h"
#include "obs/event_log.h"

namespace confcard {
namespace {

using obs::DiffOptions;
using obs::DiffReport;
using obs::DiffRuns;
using obs::JsonValue;
using obs::RunView;

RunView MakeBase() {
  RunView v;
  v.name = "base";
  v.counters["conformal.clip.s-cp.total"] = 800;
  v.gauges["harness.coverage.1.mscn.s-cp"] = 0.90;
  v.gauges["calib.size"] = 1500.0;
  RunView::HistView h;
  h.count = 800;
  h.mean = 2000.0;
  h.p50 = 1800.0;
  h.p90 = 3000.0;
  h.p99 = 5000.0;
  h.sum = h.mean * 800;
  v.histograms["harness.infer_us"] = h;
  return v;
}

TEST(DiffRunsTest, IdenticalRunsHaveNoFindings) {
  const RunView v = MakeBase();
  const DiffReport report = DiffRuns(v, v, DiffOptions());
  EXPECT_FALSE(report.HasRegression()) << report.ToText();
  EXPECT_TRUE(report.findings.empty());
  EXPECT_GT(report.compared, 0u);
}

TEST(DiffRunsTest, DefaultExclusionsSkipSchedulingTelemetry) {
  RunView base = MakeBase();
  base.counters["pool.tasks_executed"] = 100;
  base.gauges["pool.queue_depth"] = 3.0;
  RunView cand = base;
  cand.counters["pool.tasks_executed"] = 900;  // varies with threads
  cand.gauges["pool.queue_depth"] = 17.0;
  const DiffReport report = DiffRuns(base, cand, DiffOptions());
  EXPECT_FALSE(report.HasRegression()) << report.ToText();
}

TEST(DiffRunsTest, CustomExcludePrefixesReplaceDefaults) {
  RunView base = MakeBase();
  base.counters["pool.tasks_executed"] = 100;
  RunView cand = base;
  cand.counters["pool.tasks_executed"] = 900;
  cand.counters["conformal.clip.s-cp.total"] = 999;
  DiffOptions opt;
  opt.exclude_prefixes = {"conformal."};
  const DiffReport report = DiffRuns(base, cand, opt);
  // The custom list excludes conformal.* but no longer shields pool.*.
  ASSERT_TRUE(report.HasRegression());
  const std::string text = report.ToText();
  EXPECT_NE(text.find("counter/pool.tasks_executed"), std::string::npos);
  EXPECT_EQ(text.find("conformal.clip"), std::string::npos);
}

TEST(DiffRunsTest, LoadExcludePrefixesParsesCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "exclude_prefixes.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "\n"
        << "  pool.  \n"
        << "ce.guard.latency\n"
        << "   # indented comment\n";
  }
  auto prefixes = obs::LoadExcludePrefixes(path);
  ASSERT_TRUE(prefixes.ok());
  ASSERT_EQ(prefixes->size(), 2u);
  EXPECT_EQ((*prefixes)[0], "pool.");
  EXPECT_EQ((*prefixes)[1], "ce.guard.latency");
  std::filesystem::remove(path);

  EXPECT_FALSE(obs::LoadExcludePrefixes("/nonexistent/exclude.txt").ok());
}

TEST(DiffRunsTest, CounterChangeIsExactRegression) {
  RunView cand = MakeBase();
  cand.counters["conformal.clip.s-cp.total"] = 801;
  const DiffReport report = DiffRuns(MakeBase(), cand, DiffOptions());
  ASSERT_TRUE(report.HasRegression());
  EXPECT_NE(report.ToText().find("counter/conformal.clip.s-cp.total"),
            std::string::npos);
}

TEST(DiffRunsTest, CoverageDropBeyondToleranceRegresses) {
  RunView cand = MakeBase();
  cand.gauges["harness.coverage.1.mscn.s-cp"] = 0.85;  // 5-point drop
  const DiffReport report = DiffRuns(MakeBase(), cand, DiffOptions());
  ASSERT_EQ(report.NumRegressions(), 1u) << report.ToText();
  EXPECT_NE(report.ToText().find("gauge/harness.coverage.1.mscn.s-cp"),
            std::string::npos);
  EXPECT_NE(report.ToText().find("coverage dropped"), std::string::npos);
}

TEST(DiffRunsTest, CoverageWithinToleranceAndRisesPass) {
  RunView cand = MakeBase();
  cand.gauges["harness.coverage.1.mscn.s-cp"] = 0.89;  // within 0.02
  EXPECT_FALSE(DiffRuns(MakeBase(), cand, DiffOptions()).HasRegression());
  cand.gauges["harness.coverage.1.mscn.s-cp"] = 0.97;  // rise: note only
  const DiffReport report = DiffRuns(MakeBase(), cand, DiffOptions());
  EXPECT_FALSE(report.HasRegression());
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(DiffRunsTest, NonCoverageGaugeUsesRelativeTolerance) {
  RunView cand = MakeBase();
  cand.gauges["calib.size"] = 1501.0;
  EXPECT_TRUE(DiffRuns(MakeBase(), cand, DiffOptions()).HasRegression());
  DiffOptions loose;
  loose.gauge_rel_tol = 0.01;
  EXPECT_FALSE(DiffRuns(MakeBase(), cand, loose).HasRegression());
}

TEST(DiffRunsTest, LatencyInflationAboveFloorRegresses) {
  RunView cand = MakeBase();
  RunView::HistView& h = cand.histograms["harness.infer_us"];
  h.mean *= 2.0;
  h.p50 *= 2.0;
  h.p90 *= 2.0;
  h.p99 *= 2.0;
  const DiffReport report = DiffRuns(MakeBase(), cand, DiffOptions());
  ASSERT_TRUE(report.HasRegression());
  EXPECT_NE(report.ToText().find("histogram/harness.infer_us"),
            std::string::npos);
  EXPECT_NE(report.ToText().find("latency inflated"), std::string::npos);
  // Improvement in the other direction is a note, not a regression.
  EXPECT_FALSE(DiffRuns(cand, MakeBase(), DiffOptions()).HasRegression());
}

TEST(DiffRunsTest, QuantilesUnderNoiseFloorAreSkipped) {
  RunView base = MakeBase();
  RunView::HistView tiny;
  tiny.count = 10;
  tiny.mean = 5.0;
  tiny.p50 = 4.0;
  tiny.p90 = 8.0;
  tiny.p99 = 9.0;
  base.histograms["harness.infer_us"] = tiny;
  RunView cand = base;
  RunView::HistView& h = cand.histograms["harness.infer_us"];
  h.mean *= 10.0;  // still under the 100us floor
  h.p50 *= 10.0;
  h.p90 *= 10.0;
  h.p99 *= 10.0;
  EXPECT_FALSE(DiffRuns(base, cand, DiffOptions()).HasRegression());
}

TEST(DiffRunsTest, MissingMetricSeverityFollowsOption) {
  RunView cand = MakeBase();
  cand.gauges.erase("harness.coverage.1.mscn.s-cp");
  cand.counters.erase("conformal.clip.s-cp.total");
  DiffOptions strict;
  EXPECT_EQ(DiffRuns(MakeBase(), cand, strict).NumRegressions(), 2u);
  DiffOptions lax;
  lax.fail_on_missing = false;
  EXPECT_FALSE(DiffRuns(MakeBase(), cand, lax).HasRegression());
}

TEST(DiffRunsTest, ReportJsonIsParseable) {
  RunView cand = MakeBase();
  cand.gauges["harness.coverage.1.mscn.s-cp"] = 0.5;
  const DiffReport report = DiffRuns(MakeBase(), cand, DiffOptions());
  Result<JsonValue> doc = obs::ParseJson(report.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("regressions")->number, 1.0);
  ASSERT_GE(doc->Find("findings")->elements.size(), 1u);
  EXPECT_EQ(doc->Find("findings")->elements[0].Find("severity")
                ->string_value,
            "regression");
}

#if defined(CONFCARD_OBSDIFF_PATH) && defined(CONFCARD_ABL_BENCH_PATH)

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

// Multiplies mean/p50/p90/p99 of every histogram in the artifact by
// `factor` (the shape of a uniform slowdown; sample counts untouched).
void InflateHistograms(JsonValue* doc, double factor) {
  for (auto& [key, section] : doc->members) {
    if (key != "histograms") continue;
    for (auto& [name, hist] : section.members) {
      for (auto& [field, value] : hist.members) {
        if (field == "mean" || field == "p50" || field == "p90" ||
            field == "p99" || field == "sum") {
          value.number *= factor;
        }
      }
    }
  }
}

void DropCoverageGauges(JsonValue* doc, double points) {
  for (auto& [key, section] : doc->members) {
    if (key != "gauges") continue;
    for (auto& [name, value] : section.members) {
      if (name.find("coverage") != std::string::npos) {
        value.number -= points;
      }
    }
  }
}

struct BenchRun {
  std::filesystem::path artifact;
  std::filesystem::path events;
};

BenchRun RunAblBench(const std::string& tag) {
  const auto tmp = std::filesystem::temp_directory_path();
  BenchRun run;
  run.artifact = tmp / ("confcard_gate_" + tag + ".json");
  run.events = tmp / ("confcard_gate_" + tag + ".jsonl");
  std::filesystem::remove(run.artifact);
  std::filesystem::remove(run.events);
  const std::string cmd =
      "CONFCARD_SCALE=0.01 CONFCARD_METRICS_JSON=" + run.artifact.string() +
      " CONFCARD_EVENTS_JSONL=" + run.events.string() + " " +
      CONFCARD_ABL_BENCH_PATH + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  return run;
}

// One obsdiff invocation; returns the exit code and captures stdout.
int Obsdiff(const std::string& args, std::string* out_text) {
  const auto out_path = std::filesystem::temp_directory_path() /
                        "confcard_gate_obsdiff.out";
  const std::string cmd = std::string(CONFCARD_OBSDIFF_PATH) + " " + args +
                          " > " + out_path.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  *out_text = ReadFileOrEmpty(out_path);
  std::filesystem::remove(out_path);
  return WEXITSTATUS(rc);
}

TEST(ObsdiffGateTest, EndToEndGateOnRealBenchRuns) {
  const BenchRun a = RunAblBench("a");
  const BenchRun b = RunAblBench("b");
  ASSERT_TRUE(std::filesystem::exists(a.artifact));
  ASSERT_TRUE(std::filesystem::exists(b.artifact));
  ASSERT_TRUE(std::filesystem::exists(a.events));
  ASSERT_TRUE(std::filesystem::exists(b.events));

  // Identical seed-deterministic runs: everything but timing matches
  // exactly; give timing generous slack against scheduler noise.
  const std::string slack = " --latency-tol 3 --latency-floor-us 500";
  std::string text;
  EXPECT_EQ(Obsdiff(a.artifact.string() + " " + b.artifact.string() + slack,
                    &text),
            0)
      << text;
  EXPECT_EQ(
      Obsdiff(a.events.string() + " " + b.events.string() + slack, &text),
      0)
      << text;

  Result<JsonValue> doc = obs::ParseJson(ReadFileOrEmpty(a.artifact));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const auto tmp = std::filesystem::temp_directory_path();

  // Synthetic 2x latency inflation: nonzero exit naming a histogram
  // quantile. Default tolerances; the mutated copy differs from its
  // source only by the injection, so the comparison is deterministic.
  JsonValue slow = *doc;
  InflateHistograms(&slow, 2.0);
  const auto slow_path = tmp / "confcard_gate_slow.json";
  WriteFile(slow_path, obs::SerializeJson(slow));
  EXPECT_EQ(Obsdiff(a.artifact.string() + " " + slow_path.string(), &text),
            1)
      << text;
  EXPECT_NE(text.find("latency inflated"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram/"), std::string::npos) << text;

  // Synthetic 5-point coverage drop: nonzero exit naming the gauge.
  JsonValue uncovered = *doc;
  DropCoverageGauges(&uncovered, 0.05);
  const auto drop_path = tmp / "confcard_gate_drop.json";
  WriteFile(drop_path, obs::SerializeJson(uncovered));
  EXPECT_EQ(Obsdiff(a.artifact.string() + " " + drop_path.string(), &text),
            1)
      << text;
  EXPECT_NE(text.find("coverage dropped"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge/harness.coverage."), std::string::npos) << text;

  // Usage / IO errors exit 2, distinct from the regression exit.
  EXPECT_EQ(Obsdiff("", &text), 2);
  EXPECT_EQ(Obsdiff(a.artifact.string() + " /nonexistent/path.json", &text),
            2);

  std::filesystem::remove(a.artifact);
  std::filesystem::remove(a.events);
  std::filesystem::remove(b.artifact);
  std::filesystem::remove(b.events);
  std::filesystem::remove(slow_path);
  std::filesystem::remove(drop_path);
}

#endif  // CONFCARD_OBSDIFF_PATH && CONFCARD_ABL_BENCH_PATH

}  // namespace
}  // namespace confcard
