#include "conformal/localized.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

// Smoothly heteroscedastic stream: sigma grows with x.
struct Stream {
  std::vector<std::vector<float>> features;
  std::vector<double> estimates;
  std::vector<double> truths;
};

Stream MakeStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  Stream s;
  for (size_t i = 0; i < n; ++i) {
    const float x = static_cast<float>(rng.NextDouble());
    const double sigma = 5.0 + 300.0 * x;
    s.features.push_back({x});
    s.estimates.push_back(500.0);
    s.truths.push_back(500.0 + sigma * rng.NextGaussian());
  }
  return s;
}

LocalizedConformal MakeLcp(size_t k = 200, double alpha = 0.1) {
  LocalizedConformal::Options opts;
  opts.alpha = alpha;
  opts.k = k;
  return LocalizedConformal(MakeScoring(ScoreKind::kResidual), opts);
}

TEST(LocalizedTest, LocalDeltaTracksLocalNoise) {
  LocalizedConformal lcp = MakeLcp();
  Stream cal = MakeStream(4000, 1);
  ASSERT_TRUE(lcp.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  const double quiet = lcp.LocalDelta({0.02f});
  const double noisy = lcp.LocalDelta({0.98f});
  EXPECT_GT(noisy, 4.0 * quiet);
}

TEST(LocalizedTest, LargeKConvergesToGlobalQuantile) {
  Stream cal = MakeStream(1500, 2);
  LocalizedConformal all = MakeLcp(/*k=*/1500);
  ASSERT_TRUE(all.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  // With k = n the local delta is the global conformal quantile,
  // independent of the query point.
  EXPECT_DOUBLE_EQ(all.LocalDelta({0.0f}), all.LocalDelta({1.0f}));
}

TEST(LocalizedTest, EmpiricalCoverageNearNominal) {
  double covered = 0.0, total = 0.0;
  for (uint64_t rep = 0; rep < 5; ++rep) {
    LocalizedConformal lcp = MakeLcp(250, 0.1);
    Stream cal = MakeStream(2500, 10 + rep);
    Stream test = MakeStream(800, 50 + rep);
    ASSERT_TRUE(
        lcp.Calibrate(cal.features, cal.estimates, cal.truths).ok());
    for (size_t i = 0; i < test.truths.size(); ++i) {
      Interval iv = lcp.Predict(test.estimates[i], test.features[i]);
      covered += iv.Contains(test.truths[i]) ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  // Localized quantiles lose the exact finite-sample guarantee; assert
  // the empirical coverage stays close to nominal.
  EXPECT_NEAR(covered / total, 0.9, 0.03);
}

TEST(LocalizedTest, TighterThanGlobalOnEasyRegion) {
  LocalizedConformal lcp = MakeLcp(250, 0.1);
  Stream cal = MakeStream(3000, 3);
  ASSERT_TRUE(lcp.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  LocalizedConformal global = MakeLcp(3000, 0.1);
  ASSERT_TRUE(
      global.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  EXPECT_LT(lcp.LocalDelta({0.02f}), 0.5 * global.LocalDelta({0.02f}));
}

TEST(LocalizedTest, KSmallerThanRankRequirementGivesInfinity) {
  LocalizedConformal lcp = MakeLcp(/*k=*/5, /*alpha=*/0.1);
  Stream cal = MakeStream(100, 4);
  ASSERT_TRUE(lcp.Calibrate(cal.features, cal.estimates, cal.truths).ok());
  // ceil((5+1)*0.9) = 6 > 5: conservative infinity.
  EXPECT_TRUE(std::isinf(lcp.LocalDelta({0.5f})));
}

TEST(LocalizedTest, RejectsBadInputs) {
  LocalizedConformal lcp = MakeLcp();
  EXPECT_FALSE(lcp.Calibrate({}, {}, {}).ok());
  EXPECT_FALSE(lcp.Calibrate({{1.0f}, {1.0f, 2.0f}}, {1, 2}, {1, 2}).ok());
  EXPECT_FALSE(lcp.calibrated());
}

}  // namespace
}  // namespace confcard
