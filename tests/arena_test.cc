// Thread-local tensor-buffer arena (nn/arena.h): exact-size recycling,
// the small-buffer bypass, trim-at-epoch semantics, and correctness of
// tensors built on recycled (dirty) storage — serially and from inside
// ParallelFor workers, where each pool thread owns an independent
// cache.
#include "nn/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "nn/tensor.h"

namespace confcard {
namespace nn {
namespace {

class ThreadsRestorer {
 public:
  ThreadsRestorer() : saved_(CurrentThreads()) {}
  ~ThreadsRestorer() { SetThreads(saved_); }

 private:
  int saved_;
};

// The whole suite is vacuous when recycling is disabled (ASan runs set
// CONFCARD_ARENA=off); skip rather than fail there.
#define SKIP_IF_ARENA_DISABLED()                            \
  if (!ArenaEnabled()) {                                    \
    GTEST_SKIP() << "arena disabled via CONFCARD_ARENA";    \
  }

TEST(ArenaTest, RecyclesExactSizeBuffers) {
  SKIP_IF_ARENA_DISABLED();
  ArenaTrim();
  const ArenaStats before = ArenaThreadStats();
  const float* first_ptr = nullptr;
  {
    Tensor t = Tensor::Uninitialized(64, 64);  // 16 KB, well over the floor
    first_ptr = t.data().data();
  }
  // The freed buffer must be parked, and an identical-size allocation
  // must get exactly it back (LIFO).
  const ArenaStats parked = ArenaThreadStats();
  EXPECT_EQ(parked.recycled, before.recycled + 1);
  EXPECT_GE(parked.cached_bytes, 64 * 64 * sizeof(float));
  {
    Tensor t = Tensor::Uninitialized(64, 64);
    EXPECT_EQ(t.data().data(), first_ptr);
    const ArenaStats reused = ArenaThreadStats();
    EXPECT_EQ(reused.hits, before.hits + 1);
  }
  ArenaTrim();
}

TEST(ArenaTest, DifferentSizeMissesTheCache) {
  SKIP_IF_ARENA_DISABLED();
  ArenaTrim();
  { Tensor t = Tensor::Uninitialized(64, 64); }
  const ArenaStats before = ArenaThreadStats();
  { Tensor t = Tensor::Uninitialized(64, 65); }
  const ArenaStats after = ArenaThreadStats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 1);
  ArenaTrim();
}

TEST(ArenaTest, SmallBuffersShareTheMinimumSizeClass) {
  SKIP_IF_ARENA_DISABLED();
  ArenaTrim();
  const ArenaStats before = ArenaThreadStats();
  { Tensor t = Tensor::Uninitialized(2, 2); }  // 16 B, rounds up to 256
  const ArenaStats mid = ArenaThreadStats();
  EXPECT_EQ(mid.recycled, before.recycled + 1);
  EXPECT_EQ(mid.cached_bytes, before.cached_bytes + kArenaMinBytes);
  // A DIFFERENT sub-minimum size reuses the same parked buffer: every
  // small request shares the one kArenaMinBytes class.
  { Tensor t = Tensor::Uninitialized(3, 5); }  // 60 B, same class
  const ArenaStats after = ArenaThreadStats();
  EXPECT_EQ(after.hits, mid.hits + 1);
  ArenaTrim();
}

TEST(ArenaTest, TrimEmptiesTheCallingThreadsCache) {
  SKIP_IF_ARENA_DISABLED();
  { Tensor t = Tensor::Uninitialized(32, 32); }
  EXPECT_GT(ArenaThreadStats().cached_bytes, 0u);
  ArenaTrim();
  const ArenaStats after = ArenaThreadStats();
  EXPECT_EQ(after.cached_bytes, 0u);
  EXPECT_EQ(after.cached_buffers, 0u);
}

TEST(ArenaTest, ZerosOnRecycledStorageAreZero) {
  SKIP_IF_ARENA_DISABLED();
  ArenaTrim();
  {
    Tensor dirty = Tensor::Uninitialized(16, 16);
    dirty.Fill(123.456f);
  }
  // Zeros must explicitly clear the recycled (dirty) buffer.
  Tensor z = Tensor::Zeros(16, 16);
  for (float v : z.data()) ASSERT_EQ(v, 0.0f);
  ArenaTrim();
}

TEST(ArenaTest, KernelResultsUnchangedByRecycling) {
  // Same GEMM computed on cold storage and on a warmed cache must be
  // byte-identical: the arena only changes where storage comes from.
  ThreadsRestorer restore;
  SetThreads(1);
  Rng rng(99);
  Tensor a = Tensor::Randn(24, 17, 1.0f, rng);
  Tensor b = Tensor::Randn(17, 21, 1.0f, rng);
  ArenaTrim();
  Tensor cold = MatMul(a, b);
  Tensor warm = MatMul(a, b);  // reuses the buffer freed by... nothing yet
  { Tensor scratch = MatMul(a, b); }
  Tensor recycled = MatMul(a, b);  // now drawing recycled storage
  ASSERT_EQ(cold.size(), recycled.size());
  EXPECT_EQ(std::memcmp(cold.data().data(), warm.data().data(),
                        cold.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(cold.data().data(), recycled.data().data(),
                        cold.size() * sizeof(float)),
            0);
}

TEST(ArenaTest, PerWorkerCachesUnderParallelFor) {
  SKIP_IF_ARENA_DISABLED();
  ThreadsRestorer restore;
  SetThreads(4);
  // Each chunk allocates, dirties, and frees tensors on whatever worker
  // runs it; per-thread caches mean no cross-thread interference and no
  // lost or double-counted buffers. Repeat rounds so workers hit their
  // own parked buffers.
  for (int round = 0; round < 3; ++round) {
    std::vector<double> sums(64);
    ParallelFor(64, 1, [&sums](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        Tensor t = Tensor::Uninitialized(48, 48);
        t.Fill(static_cast<float>(i));
        double s = 0.0;
        for (float v : t.data()) s += v;
        sums[i] = s;
      }
    });
    for (size_t i = 0; i < sums.size(); ++i) {
      ASSERT_EQ(sums[i], static_cast<double>(i) * 48 * 48) << "i=" << i;
    }
  }
  // Trim on the caller releases only this thread's cache; worker caches
  // stay bounded by the per-thread cap and die with the pool.
  ArenaTrim();
  EXPECT_EQ(ArenaThreadStats().cached_bytes, 0u);
}

}  // namespace
}  // namespace nn
}  // namespace confcard
