#include "nn/layers.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/mlp.h"

namespace confcard {
namespace nn {
namespace {

// Scalar objective: weighted sum of outputs. The weights decorrelate
// output coordinates so gradient errors cannot cancel.
double Objective(Layer& layer, const Tensor& input, const Tensor& weights) {
  Tensor out = layer.Forward(input);
  double total = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    total += static_cast<double>(out.data()[i]) * weights.data()[i];
  }
  return total;
}

// Finite-difference check of dObjective/dParam against backprop for
// every parameter entry.
void CheckParameterGradients(Layer& layer, const Tensor& input,
                             size_t out_rows, size_t out_cols,
                             float tolerance = 2e-2f) {
  Rng rng(99);
  Tensor weights = Tensor::Randn(out_rows, out_cols, 1.0f, rng);

  // Analytic gradients.
  for (Parameter* p : layer.Parameters()) p->grad.Fill(0.0f);
  layer.Forward(input);
  layer.Backward(weights);

  const float eps = 1e-2f;
  for (Parameter* p : layer.Parameters()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      double up = Objective(layer, input, weights);
      p->value.data()[i] = orig - eps;
      double down = Objective(layer, input, weights);
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad.data()[i];
      EXPECT_NEAR(analytic, numeric,
                  tolerance * std::max(1.0, std::fabs(numeric)))
          << "param entry " << i;
    }
  }
}

// Same for input gradients.
void CheckInputGradients(Layer& layer, const Tensor& input, size_t out_rows,
                         size_t out_cols, float tolerance = 2e-2f) {
  Rng rng(98);
  Tensor weights = Tensor::Randn(out_rows, out_cols, 1.0f, rng);
  for (Parameter* p : layer.Parameters()) p->grad.Fill(0.0f);
  layer.Forward(input);
  Tensor grad_in = layer.Backward(weights);

  const float eps = 1e-2f;
  Tensor x = input;
  for (size_t i = 0; i < x.size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    double up = Objective(layer, x, weights);
    x.data()[i] = orig - eps;
    double down = Objective(layer, x, weights);
    x.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "input entry " << i;
  }
}

TEST(DenseTest, ForwardComputesAffine) {
  Rng rng(1);
  Dense d(2, 1, rng);
  d.weight().value.At(0, 0) = 2.0f;
  d.weight().value.At(1, 0) = -1.0f;
  d.bias().value.At(0, 0) = 0.5f;
  Tensor in(1, 2);
  in.At(0, 0) = 3.0f;
  in.At(0, 1) = 4.0f;
  Tensor out = d.Forward(in);
  EXPECT_FLOAT_EQ(out.At(0, 0), 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(DenseTest, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Dense d(3, 4, rng);
  Tensor in = Tensor::Randn(5, 3, 1.0f, rng);
  CheckParameterGradients(d, in, 5, 4);
  CheckInputGradients(d, in, 5, 4);
}

TEST(ReluTest, ForwardClampsNegatives) {
  Relu r;
  Tensor in(1, 3);
  in.At(0, 0) = -1.0f;
  in.At(0, 1) = 0.0f;
  in.At(0, 2) = 2.0f;
  Tensor out = r.Forward(in);
  EXPECT_FLOAT_EQ(out.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(out.At(0, 2), 2.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
  Relu r;
  Tensor in(1, 2);
  in.At(0, 0) = -1.0f;
  in.At(0, 1) = 3.0f;
  r.Forward(in);
  Tensor g(1, 2);
  g.Fill(1.0f);
  Tensor gi = r.Backward(g);
  EXPECT_FLOAT_EQ(gi.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi.At(0, 1), 1.0f);
}

TEST(MaskedDenseTest, MaskedWeightsAreZero) {
  Rng rng(3);
  Tensor mask(2, 2);
  mask.At(0, 0) = 1.0f;  // only (0,0) connected
  MaskedDense md(2, 2, mask, rng);
  // Masked entries must be exactly zero after construction.
  EXPECT_EQ(md.Parameters()[0]->value.At(0, 1), 0.0f);
  EXPECT_EQ(md.Parameters()[0]->value.At(1, 0), 0.0f);
  EXPECT_EQ(md.Parameters()[0]->value.At(1, 1), 0.0f);
}

TEST(MaskedDenseTest, MaskedGradientsAreZero) {
  Rng rng(4);
  Tensor mask(3, 2);
  mask.At(0, 0) = 1.0f;
  mask.At(2, 1) = 1.0f;
  MaskedDense md(3, 2, mask, rng);
  Tensor in = Tensor::Randn(4, 3, 1.0f, rng);
  md.Forward(in);
  Tensor g = Tensor::Randn(4, 2, 1.0f, rng);
  md.Backward(g);
  const Tensor& wg = md.Parameters()[0]->grad;
  EXPECT_EQ(wg.At(0, 1), 0.0f);
  EXPECT_EQ(wg.At(1, 0), 0.0f);
  EXPECT_EQ(wg.At(1, 1), 0.0f);
  EXPECT_EQ(wg.At(2, 0), 0.0f);
  EXPECT_NE(wg.At(0, 0), 0.0f);
}

TEST(MaskedDenseTest, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  Tensor mask(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j <= i; ++j) mask.At(i, j) = 1.0f;
  }
  MaskedDense md(3, 3, mask, rng);
  Tensor in = Tensor::Randn(4, 3, 1.0f, rng);
  CheckInputGradients(md, in, 4, 3);

  // Parameter FD check, skipping masked weight entries: the analytic
  // gradient is the mask-projected gradient, which intentionally
  // disagrees with FD along forbidden directions.
  Rng wrng(99);
  Tensor weights = Tensor::Randn(4, 3, 1.0f, wrng);
  for (Parameter* p : md.Parameters()) p->grad.Fill(0.0f);
  md.Forward(in);
  md.Backward(weights);
  const float eps = 1e-2f;
  Parameter* w = md.Parameters()[0];
  for (size_t i = 0; i < w->value.size(); ++i) {
    if (md.mask().data()[i] == 0.0f) continue;
    const float orig = w->value.data()[i];
    w->value.data()[i] = orig + eps;
    double up = Objective(md, in, weights);
    w->value.data()[i] = orig - eps;
    double down = Objective(md, in, weights);
    w->value.data()[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(w->grad.data()[i], numeric,
                2e-2 * std::max(1.0, std::fabs(numeric)));
  }
}

TEST(SequentialTest, ComposesLayers) {
  Rng rng(6);
  Sequential seq;
  seq.Append(std::make_unique<Dense>(2, 4, rng));
  seq.Append(std::make_unique<Relu>());
  seq.Append(std::make_unique<Dense>(4, 1, rng));
  EXPECT_EQ(seq.num_layers(), 3u);
  EXPECT_EQ(seq.Parameters().size(), 4u);
  Tensor in = Tensor::Randn(3, 2, 1.0f, rng);
  Tensor out = seq.Forward(in);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 1u);
}

TEST(SequentialTest, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  Sequential seq;
  seq.Append(std::make_unique<Dense>(3, 5, rng));
  seq.Append(std::make_unique<Relu>());
  seq.Append(std::make_unique<Dense>(5, 2, rng));
  Tensor in = Tensor::Randn(4, 3, 1.0f, rng);
  CheckParameterGradients(seq, in, 4, 2, 5e-2f);
  CheckInputGradients(seq, in, 4, 2, 5e-2f);
}

TEST(MlpTest, ShapeAndGradientDescentDirection) {
  // Deep ReLU stacks make finite differences unreliable near kinks, so
  // instead of FD we check the defining property of the gradient: a
  // small step against it reduces the objective.
  Rng rng(8);
  Mlp mlp({3, 6, 4, 1}, rng);
  EXPECT_EQ(mlp.in_dim(), 3u);
  EXPECT_EQ(mlp.out_dim(), 1u);
  Tensor in = Tensor::Randn(8, 3, 1.0f, rng);
  Tensor weights = Tensor::Randn(8, 1, 1.0f, rng);

  double before = Objective(mlp, in, weights);
  for (Parameter* p : mlp.Parameters()) p->grad.Fill(0.0f);
  mlp.Forward(in);
  mlp.Backward(weights);
  const float step = 1e-3f;
  for (Parameter* p : mlp.Parameters()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      p->value.data()[i] -= step * p->grad.data()[i];
    }
  }
  double after = Objective(mlp, in, weights);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace nn
}  // namespace confcard
