// Cost model semantics: operator crossover points, the spill cliff, and
// their effect on plan choice — the nonlinearities that make pessimistic
// PI estimates change plans in the Table I experiment.
#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include "data/multitable.h"

namespace confcard {
namespace {

TEST(CostModelTest, HashCostWithoutSpill) {
  CostModel cm;  // default: spill disabled
  EXPECT_DOUBLE_EQ(cm.HashCost(100, 50, 30), 180.0);
}

TEST(CostModelTest, SpillTriplesBuildAndProbe) {
  CostModel cm;
  cm.spill_threshold = 40;
  cm.spill_factor = 3.0;
  // min(outer, inner) = 50 > 40: spill.
  EXPECT_DOUBLE_EQ(cm.HashCost(100, 50, 30), 3.0 * 150 + 30);
  // min = 30 <= 40: no spill.
  EXPECT_DOUBLE_EQ(cm.HashCost(100, 30, 30), 160.0);
}

TEST(CostModelTest, NestedLoopQuadratic) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.NestedLoopCost(10, 20, 5),
                   kNestedLoopFactor * 200 + 5);
}

TEST(CostModelTest, NestedLoopWinsOnlyForTinyInputs) {
  CostModel cm;
  // Tiny outer (2) with inner 100: NL = 0.2*200+o = 40+o beats hash
  // 102+o.
  EXPECT_LT(cm.NestedLoopCost(2, 100, 10), cm.HashCost(2, 100, 10));
  // Large outer: NL explodes.
  EXPECT_GT(cm.NestedLoopCost(500, 100, 10), cm.HashCost(500, 100, 10));
}

class OptimizerCostTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeDsbLike(5000, 23).value(); }
  Database db_;
};

TEST_F(OptimizerCostTest, TinyFilteredDimensionGetsNestedLoop) {
  PgEstimator pg(db_);
  JoinOptimizer opt(pg);
  const Table& store = db_.table("store");
  JoinQuery q;
  q.tables = {"store", "store_sales"};
  q.joins = db_.EdgesAmong(q.tables);
  // Filter store down to ~one row: the optimizer should prefer a
  // nested loop with the tiny outer over building a hash on either
  // side... unless the inner is so large that hashing wins; assert the
  // decision matches the cost model's own comparison.
  q.predicates = {{"store", Predicate::Eq(store.ColumnIndex("s_store_sk"),
                                          0.0)}};
  auto plan = opt.Optimize(q).value();
  ASSERT_EQ(plan.ops.size(), 1u);
  const double outer = pg.EstimateJoinCardinality(q, {plan.order[0]});
  const double inner = pg.EstimateJoinCardinality(q, {plan.order[1]});
  const double out = pg.EstimateJoinCardinality(q, q.tables);
  const CostModel& cm = opt.cost_model();
  const bool nl_cheaper =
      cm.NestedLoopCost(outer, inner, out) < cm.HashCost(outer, inner, out);
  EXPECT_EQ(plan.ops[0] == JoinOp::kNestedLoop, nl_cheaper);
}

TEST_F(OptimizerCostTest, SpillThresholdChangesPlanCost) {
  PgEstimator pg(db_);
  JoinQuery q;
  q.tables = {"store_sales", "customer", "item"};
  q.joins = db_.EdgesAmong(q.tables);

  JoinOptimizer no_spill(pg);
  auto base = no_spill.Optimize(q).value();

  JoinOptimizer with_spill(pg);
  CostModel cm;
  cm.spill_threshold = 10.0;  // everything spills
  cm.spill_factor = 3.0;
  with_spill.SetCostModel(cm);
  auto spilled = with_spill.Optimize(q).value();
  EXPECT_GT(spilled.estimated_cost, base.estimated_cost);
}

TEST_F(OptimizerCostTest, AdjusterCanFlipOperatorChoice) {
  // An inflated outer estimate must make the optimizer abandon nested
  // loops it would otherwise pick.
  PgEstimator pg(db_);
  const Table& store = db_.table("store");
  JoinQuery q;
  q.tables = {"store", "store_sales"};
  q.joins = db_.EdgesAmong(q.tables);
  q.predicates = {{"store", Predicate::Eq(store.ColumnIndex("s_store_sk"),
                                          1.0)}};
  JoinOptimizer plain(pg);
  auto base = plain.Optimize(q).value();
  if (base.ops[0] != JoinOp::kNestedLoop) {
    GTEST_SKIP() << "baseline did not choose a nested loop here";
  }
  JoinOptimizer inflated(pg);
  inflated.SetAdjuster([](double est, const std::vector<std::string>&) {
    return est + 1e7;
  });
  // Only multi-table subsets are adjusted, so the outer single-table
  // scan stays tiny and the NL decision is driven by the (inflated)
  // output... the operator compares input sizes, which are unadjusted
  // single-table estimates; instead verify the overall cost rose and
  // the plan stayed valid.
  auto adj = inflated.Optimize(q).value();
  EXPECT_GT(adj.estimated_cost, base.estimated_cost);
  EXPECT_EQ(adj.order.size(), 2u);
}

}  // namespace
}  // namespace confcard
