#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace confcard {
namespace {

TEST(ConformalRankTest, MatchesCeilFormula) {
  // n=9, alpha=0.1: ceil(10 * 0.9) = 9.
  EXPECT_EQ(ConformalRank(9, 0.1), 9u);
  // n=10, alpha=0.1: ceil(11 * 0.9) = 10.
  EXPECT_EQ(ConformalRank(10, 0.1), 10u);
  // n=100, alpha=0.1: ceil(101 * 0.9) = 91.
  EXPECT_EQ(ConformalRank(100, 0.1), 91u);
  // n=100, alpha=0.05: ceil(101*0.95) = 96.
  EXPECT_EQ(ConformalRank(100, 0.05), 96u);
}

TEST(ConformalQuantileTest, SmallKnownCase) {
  // scores 1..10, alpha=0.1 -> rank ceil(11*0.9)=10 -> value 10.
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(ConformalQuantile(v, 0.1), 10.0);
  // alpha=0.5 -> rank ceil(11*0.5)=6 -> value 6.
  EXPECT_DOUBLE_EQ(ConformalQuantile(v, 0.5), 6.0);
}

TEST(ConformalQuantileTest, UnsortedInput) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  // alpha=0.4: rank = ceil(6*0.6)=4 -> 4th smallest = 4.
  EXPECT_DOUBLE_EQ(ConformalQuantile(v, 0.4), 4.0);
}

TEST(ConformalQuantileTest, TooSmallCalibrationSetGivesInfinity) {
  // n=5, alpha=0.1: rank ceil(6*0.9)=6 > 5 -> conservative infinity.
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_TRUE(std::isinf(ConformalQuantile(v, 0.1)));
}

TEST(ConformalQuantileTest, EmptyInputGivesInfinity) {
  EXPECT_TRUE(std::isinf(ConformalQuantile({}, 0.1)));
}

TEST(ConformalQuantileTest, MonotoneInAlpha) {
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(static_cast<double>(i));
  double prev = -1.0;
  for (double alpha : {0.5, 0.3, 0.2, 0.1, 0.05, 0.01}) {
    double q = ConformalQuantile(v, alpha);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(ConformalQuantileLowerTest, SmallKnownCase) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // alpha=0.5: floor(0.5*11)=5 -> 5th smallest = 5.
  EXPECT_DOUBLE_EQ(ConformalQuantileLower(v, 0.5), 5.0);
  // alpha=0.05: floor(0.55)=0 -> -inf.
  EXPECT_TRUE(std::isinf(ConformalQuantileLower(v, 0.05)));
}

TEST(PercentileTest, Interpolation) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
}

TEST(PercentileTest, SingleValueAndEmpty) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 90.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(PercentileTest, UnsortedHandled) {
  std::vector<double> v = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 5.0);
}

TEST(PercentileTest, SingleValueAtExtremes) {
  // n=1 with p=0 and p=100: both interpolation endpoints collapse to the
  // only sample (these summaries now back the obs histogram artifacts).
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 0.0), 3.25);
  EXPECT_DOUBLE_EQ(Percentile({3.25}, 100.0), 3.25);
}

TEST(ConformalQuantileTest, RankOverflowAtExtremeAlphaGivesInfinity) {
  // ceil((n+1)(1-alpha)) > n forces the +inf sentinel even for larger
  // calibration sets when alpha is tiny.
  std::vector<double> v(50);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  EXPECT_TRUE(std::isinf(ConformalQuantile(v, 0.001)));
  // A single-element set overflows for any alpha < 0.5.
  EXPECT_TRUE(std::isinf(ConformalQuantile({1.0}, 0.4)));
}

TEST(SummarizeTest, BasicStats) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SummarizeTest, EmptyIsZeroed) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  Summary s = Summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(MeanVarianceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(Variance({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

// Property: the conformal quantile equals the value at the exact rank in
// the sorted order, for a sweep of (n, alpha).
class QuantileRankSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(QuantileRankSweep, MatchesSortedRank) {
  const auto [n, alpha] = GetParam();
  std::vector<double> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(static_cast<double>((i * 7919) % n));  // scrambled
  }
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  size_t rank = ConformalRank(static_cast<size_t>(n), alpha);
  double expected = rank > static_cast<size_t>(n)
                        ? std::numeric_limits<double>::infinity()
                        : sorted[rank - 1];
  double got = ConformalQuantile(v, alpha);
  if (std::isinf(expected)) {
    EXPECT_TRUE(std::isinf(got));
  } else {
    EXPECT_DOUBLE_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantileRankSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 10, 19, 100, 1000),
                       ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.5, 0.9)));

}  // namespace
}  // namespace confcard
