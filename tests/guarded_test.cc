// The guarded serving path: sanitization of insane primary outputs,
// retry-then-fallback, the circuit breaker's trip/cooldown/probe cycle,
// invalid-query quarantine, latency budgets, and the faults-off
// bit-identity contract against the raw primary.
#include "ce/guarded.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "ce/histogram.h"
#include "data/generators.h"
#include "query/workload.h"

namespace confcard {
namespace {

struct Fixture {
  Table table;
  Workload workload;
};

Fixture MakeFixture() {
  TableSpec spec;
  spec.name = "g";
  spec.num_rows = 1500;
  spec.seed = 19;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 5;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 30.0;
  spec.columns = {a, b};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = 20;
  wc.seed = 5;
  Workload wl = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(wl)};
}

// A primary whose answers are scripted per call: the value at the call
// ordinal is returned (the last entry repeats forever). Lets tests
// produce NaN on attempt 0 and a healthy value on the retry, flip a
// failing primary healthy mid-test, and count exactly how many times
// the guard consulted it.
class ScriptedEstimator : public CardinalityEstimator {
 public:
  explicit ScriptedEstimator(std::vector<double> script)
      : script_(std::move(script)) {}

  std::string name() const override { return "scripted"; }

  double EstimateCardinality(const Query&) const override {
    const size_t i = calls_++;
    return script_[i < script_.size() ? i : script_.size() - 1];
  }

  int calls() const { return static_cast<int>(calls_); }
  void Reset(std::vector<double> script) {
    script_ = std::move(script);
    calls_ = 0;
  }

 private:
  mutable std::vector<double> script_;
  mutable size_t calls_ = 0;
};

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(GuardedTest, SanitizesNanInfAndNegativeToFallback) {
  Fixture f = MakeFixture();
  const Query& q = f.workload[0].query;
  GuardOptions opts;
  opts.max_retries = 0;
  opts.breaker_threshold = 0;  // isolate sanitization from the breaker
  for (double bad : {kNan, kInf, -3.0}) {
    ScriptedEstimator primary({bad});
    GuardedEstimator guard(primary, f.table, opts);
    const GuardedEstimate got = guard.EstimateGuarded(q);
    EXPECT_TRUE(got.degraded);
    EXPECT_EQ(got.source, 1);  // terminal histogram: no other fallbacks
    EXPECT_TRUE(std::isfinite(got.value));
    EXPECT_GE(got.value, 0.0);
    EXPECT_EQ(primary.calls(), 1);
  }
}

TEST(GuardedTest, RetryRecoversWithoutDegrading) {
  Fixture f = MakeFixture();
  ScriptedEstimator primary({kNan, 123.0});
  GuardOptions opts;
  opts.max_retries = 1;
  GuardedEstimator guard(primary, f.table, opts);
  const GuardedEstimate got = guard.EstimateGuarded(f.workload[0].query);
  EXPECT_FALSE(got.degraded);
  EXPECT_EQ(got.source, 0);
  EXPECT_EQ(got.value, 123.0);
  EXPECT_EQ(primary.calls(), 2);
  EXPECT_FALSE(guard.breaker_open());
}

TEST(GuardedTest, FallbackChainPrefersInsertionOrder) {
  Fixture f = MakeFixture();
  ScriptedEstimator primary({kNan});
  ScriptedEstimator broken_fallback({-1.0});  // insane too: skipped
  ScriptedEstimator good_fallback({77.0});
  GuardOptions opts;
  opts.max_retries = 0;
  GuardedEstimator guard(primary, f.table, opts);
  guard.AddFallback(broken_fallback);
  guard.AddFallback(good_fallback);
  const GuardedEstimate got = guard.EstimateGuarded(f.workload[0].query);
  EXPECT_TRUE(got.degraded);
  EXPECT_EQ(got.source, 2);  // second registered fallback
  EXPECT_EQ(got.value, 77.0);
  EXPECT_EQ(broken_fallback.calls(), 1);
}

TEST(GuardedTest, InvalidQueryIsQuarantinedWithoutRunningAnyEstimator) {
  Fixture f = MakeFixture();
  ScriptedEstimator primary({50.0});
  GuardedEstimator guard(primary, f.table);
  // Column 9 does not exist in the 2-column table.
  const Query bad{{Predicate::Between(9, 0.0, 1.0)}};
  const GuardedEstimate got = guard.EstimateGuarded(bad);
  EXPECT_TRUE(got.degraded);
  EXPECT_EQ(got.source, -1);
  EXPECT_EQ(got.value, 0.0);
  EXPECT_EQ(primary.calls(), 0);
}

TEST(GuardedTest, LatencyBudgetTurnsSlownessIntoFallback) {
  Fixture f = MakeFixture();
  // Healthy value, but every call sleeps well past the budget.
  class SlowEstimator : public CardinalityEstimator {
   public:
    std::string name() const override { return "slow"; }
    double EstimateCardinality(const Query&) const override {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return 10.0;
    }
  } slow;
  GuardOptions opts;
  opts.max_retries = 1;
  opts.latency_budget_us = 100.0;  // 100us budget vs ~2ms calls
  GuardedEstimator guard(slow, f.table, opts);
  const GuardedEstimate got = guard.EstimateGuarded(f.workload[0].query);
  EXPECT_TRUE(got.degraded);
  EXPECT_EQ(got.source, 1);
}

TEST(GuardedTest, BreakerTripsCoolsDownAndRecovers) {
  Fixture f = MakeFixture();
  const Query& q = f.workload[0].query;
  ScriptedEstimator primary({kNan});
  GuardOptions opts;
  opts.max_retries = 0;
  opts.breaker_threshold = 3;
  opts.breaker_cooldown = 2;
  GuardedEstimator guard(primary, f.table, opts);

  // Three consecutive failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(guard.EstimateGuarded(q).degraded);
  }
  EXPECT_TRUE(guard.breaker_open());
  EXPECT_EQ(primary.calls(), 3);

  // During cooldown the primary is not consulted at all.
  for (int i = 0; i < 2; ++i) {
    const GuardedEstimate got = guard.EstimateGuarded(q);
    EXPECT_TRUE(got.degraded);
    EXPECT_EQ(got.source, 1);
  }
  EXPECT_EQ(primary.calls(), 3);

  // Cooldown expired: the next query probes the (still broken) primary,
  // which fails and restarts the cooldown.
  EXPECT_TRUE(guard.EstimateGuarded(q).degraded);
  EXPECT_EQ(primary.calls(), 4);
  EXPECT_TRUE(guard.breaker_open());

  // Primary heals. The breaker still serves fallback until the fresh
  // cooldown drains...
  primary.Reset({42.0});
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(guard.EstimateGuarded(q).degraded);
  }
  EXPECT_EQ(primary.calls(), 0);

  // ...then a healthy probe closes it and service resumes on the
  // primary.
  const GuardedEstimate probe = guard.EstimateGuarded(q);
  EXPECT_FALSE(probe.degraded);
  EXPECT_EQ(probe.value, 42.0);
  EXPECT_FALSE(guard.breaker_open());
  const GuardedEstimate after = guard.EstimateGuarded(q);
  EXPECT_EQ(after.source, 0);
  EXPECT_EQ(primary.calls(), 2);
}

TEST(GuardedTest, FaultsOffGuardedPathMatchesRawPrimaryBitForBit) {
  Fixture f = MakeFixture();
  HistogramEstimator primary(f.table);
  GuardedEstimator guard(primary, f.table);

  std::vector<Query> queries;
  for (const LabeledQuery& lq : f.workload) queries.push_back(lq.query);

  // Scalar path.
  for (const Query& q : queries) {
    ASSERT_EQ(guard.EstimateCardinality(q), primary.EstimateCardinality(q));
  }

  // Batch fast path: values bit-identical to the primary's batch, every
  // slot healthy.
  std::vector<double> raw(queries.size());
  primary.EstimateBatch(queries.data(), queries.size(), raw.data());
  std::vector<GuardedEstimate> guarded(queries.size());
  guard.EstimateBatchGuarded(queries.data(), queries.size(), guarded.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(guarded[i].value, raw[i]) << "query " << i;
    EXPECT_FALSE(guarded[i].degraded);
    EXPECT_EQ(guarded[i].source, 0);
  }

  // The double-returning override agrees with the rich path.
  std::vector<double> values(queries.size());
  guard.EstimateBatch(queries.data(), queries.size(), values.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(values[i], raw[i]) << "query " << i;
  }
}

TEST(GuardedTest, BatchFastPathQuarantinesInvalidSlots) {
  Fixture f = MakeFixture();
  HistogramEstimator primary(f.table);
  GuardedEstimator guard(primary, f.table);

  std::vector<Query> queries;
  for (const LabeledQuery& lq : f.workload) queries.push_back(lq.query);
  const size_t bad_slot = 4;
  queries.insert(queries.begin() + bad_slot,
                 Query{{Predicate::Between(9, 0.0, 1.0)}});

  std::vector<GuardedEstimate> guarded(queries.size());
  guard.EstimateBatchGuarded(queries.data(), queries.size(), guarded.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i == bad_slot) {
      EXPECT_TRUE(guarded[i].degraded);
      EXPECT_EQ(guarded[i].source, -1);
      EXPECT_EQ(guarded[i].value, 0.0);
    } else {
      ASSERT_EQ(guarded[i].value, primary.EstimateCardinality(queries[i]))
          << "query " << i;
      EXPECT_FALSE(guarded[i].degraded);
    }
  }

  // n == 0 is a no-op on both batch entry points.
  guard.EstimateBatchGuarded(nullptr, 0, nullptr);
  guard.EstimateBatch(nullptr, 0, nullptr);
}

TEST(GuardedTest, NameWrapsPrimary) {
  Fixture f = MakeFixture();
  HistogramEstimator primary(f.table);
  GuardedEstimator guard(primary, f.table);
  EXPECT_EQ(guard.name(), "guarded(histogram-avi)");
}

}  // namespace
}  // namespace confcard
