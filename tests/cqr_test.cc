// Conformalized quantile regression: conformalizing a (possibly
// miscalibrated) quantile band restores finite-sample coverage, and the
// resulting intervals inherit the band's adaptivity and asymmetry.
#include "conformal/cqr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

TEST(CqrTest, TauLevelsMatchAlpha) {
  ConformalizedQuantileRegression cqr(0.1);
  EXPECT_DOUBLE_EQ(cqr.lower_tau(), 0.05);
  EXPECT_DOUBLE_EQ(cqr.upper_tau(), 0.95);
}

TEST(CqrTest, RejectsBadInputs) {
  ConformalizedQuantileRegression cqr(0.1);
  EXPECT_FALSE(cqr.Calibrate({1.0}, {2.0}, {1.5, 2.5}).ok());
  EXPECT_FALSE(cqr.Calibrate({}, {}, {}).ok());
  EXPECT_FALSE(cqr.calibrated());
}

TEST(CqrTest, PerfectBandGetsNonPositiveDelta) {
  // If the quantile band always contains the truth with margin, the
  // conformal correction delta can be negative (shrinking the band).
  ConformalizedQuantileRegression cqr(0.5);
  std::vector<double> lo, hi, y;
  for (int i = 0; i < 100; ++i) {
    y.push_back(100.0 + i);
    lo.push_back(y.back() - 50.0);
    hi.push_back(y.back() + 50.0);
  }
  ASSERT_TRUE(cqr.Calibrate(lo, hi, y).ok());
  EXPECT_LE(cqr.delta(), 0.0);
  Interval iv = cqr.Predict(100.0, 200.0);
  EXPECT_GT(iv.lo, 100.0);
  EXPECT_LT(iv.hi, 200.0);
}

TEST(CqrTest, UndercoveringBandGetsPositiveDelta) {
  // A band that frequently misses the truth must be widened.
  Rng rng(7);
  ConformalizedQuantileRegression cqr(0.1);
  std::vector<double> lo, hi, y;
  for (int i = 0; i < 500; ++i) {
    double truth = 100.0 * rng.NextGaussian();
    y.push_back(truth);
    lo.push_back(-10.0);  // way too narrow
    hi.push_back(10.0);
  }
  ASSERT_TRUE(cqr.Calibrate(lo, hi, y).ok());
  EXPECT_GT(cqr.delta(), 50.0);
}

TEST(CqrTest, CrossedHeadsCollapseToMidpoint) {
  ConformalizedQuantileRegression cqr(0.5);
  std::vector<double> lo = {0, 0, 0, 0}, hi = {10, 10, 10, 10};
  std::vector<double> y = {5, 5, 5, 5};
  ASSERT_TRUE(cqr.Calibrate(lo, hi, y).ok());
  // Heads crossed at inference: hi < lo after delta shift.
  Interval iv = cqr.Predict(100.0, 20.0);
  EXPECT_DOUBLE_EQ(iv.lo, iv.hi);
}

// Coverage property with synthetic quantile heads that are deliberately
// too narrow: CQR must restore >= 1 - alpha coverage.
class CqrCoverageProperty : public ::testing::TestWithParam<double> {};

TEST_P(CqrCoverageProperty, CoverageRestored) {
  const double alpha = GetParam();
  double covered = 0.0, total = 0.0;
  for (uint64_t rep = 0; rep < 8; ++rep) {
    Rng rng(300 + rep);
    auto draw = [&](size_t n, std::vector<double>* lo,
                    std::vector<double>* hi, std::vector<double>* y) {
      for (size_t i = 0; i < n; ++i) {
        double x = rng.NextDouble();
        double signal = 1000.0 * x;
        double sigma = 20.0 + 100.0 * x;
        y->push_back(signal + sigma * rng.NextGaussian());
        // Miscalibrated band: half the true sigma.
        lo->push_back(signal - 0.8 * sigma);
        hi->push_back(signal + 0.8 * sigma);
      }
    };
    std::vector<double> clo, chi, cy, tlo, thi, ty;
    draw(700, &clo, &chi, &cy);
    draw(700, &tlo, &thi, &ty);
    ConformalizedQuantileRegression cqr(alpha);
    ASSERT_TRUE(cqr.Calibrate(clo, chi, cy).ok());
    for (size_t i = 0; i < ty.size(); ++i) {
      Interval iv = cqr.Predict(tlo[i], thi[i]);
      covered += iv.Contains(ty[i]) ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  double coverage = covered / total;
  double slack = 3.0 * std::sqrt(alpha * (1 - alpha) / total);
  EXPECT_GE(coverage, 1.0 - alpha - slack);
}

INSTANTIATE_TEST_SUITE_P(Alphas, CqrCoverageProperty,
                         ::testing::Values(0.05, 0.1, 0.2));

TEST(CqrTest, IntervalsStayAdaptive) {
  // After conformalization, wide-band queries keep wider intervals than
  // narrow-band queries (the additive shift preserves the shape).
  ConformalizedQuantileRegression cqr(0.1);
  Rng rng(11);
  std::vector<double> lo, hi, y;
  for (int i = 0; i < 500; ++i) {
    double x = rng.NextDouble();
    double sigma = 10.0 + 100.0 * x;
    y.push_back(1000.0 * x + sigma * rng.NextGaussian());
    lo.push_back(1000.0 * x - sigma);
    hi.push_back(1000.0 * x + sigma);
  }
  ASSERT_TRUE(cqr.Calibrate(lo, hi, y).ok());
  Interval narrow = cqr.Predict(0.0, 20.0);
  Interval wide = cqr.Predict(0.0, 220.0);
  EXPECT_GT(wide.width(), narrow.width() + 100.0);
}

}  // namespace
}  // namespace confcard
