// Split conformal prediction: finite-sample coverage under
// exchangeability, delta semantics, and behaviour across scoring
// functions — the statistical core of the paper.
#include "conformal/split.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace confcard {
namespace {

// Synthetic exchangeable regression stream: truth = signal + noise,
// model predicts the signal only. Calibration and test sets are i.i.d.
struct Stream {
  std::vector<double> estimates;
  std::vector<double> truths;
};

Stream MakeStream(size_t n, uint64_t seed, double noise_scale = 50.0) {
  Rng rng(seed);
  Stream s;
  for (size_t i = 0; i < n; ++i) {
    double signal = 100.0 + 900.0 * rng.NextDouble();
    double noise = noise_scale * rng.NextGaussian();
    s.estimates.push_back(signal);
    s.truths.push_back(std::max(0.0, signal + noise));
  }
  return s;
}

TEST(SplitConformalTest, DeltaIsConformalQuantileOfScores) {
  auto scoring = MakeScoring(ScoreKind::kResidual);
  SplitConformal scp(scoring, 0.2);
  std::vector<double> est = {10, 10, 10, 10, 10, 10, 10, 10, 10};
  std::vector<double> truth = {11, 12, 13, 14, 15, 16, 17, 18, 19};
  ASSERT_TRUE(scp.Calibrate(est, truth).ok());
  // Scores 1..9, rank = ceil(10*0.8) = 8 -> delta = 8.
  EXPECT_DOUBLE_EQ(scp.delta(), 8.0);
  Interval iv = scp.Predict(100.0);
  EXPECT_DOUBLE_EQ(iv.lo, 92.0);
  EXPECT_DOUBLE_EQ(iv.hi, 108.0);
}

TEST(SplitConformalTest, RejectsBadInputs) {
  SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
  EXPECT_FALSE(scp.Calibrate({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(scp.Calibrate({}, {}).ok());
  EXPECT_FALSE(scp.calibrated());
}

TEST(SplitConformalTest, TinyCalibrationSetGivesInfiniteInterval) {
  SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
  ASSERT_TRUE(scp.Calibrate({10.0, 10.0}, {11.0, 12.0}).ok());
  EXPECT_TRUE(std::isinf(scp.delta()));
  EXPECT_TRUE(std::isinf(scp.Predict(10.0).hi));
}

TEST(SplitConformalTest, DeltaMonotoneInCoverage) {
  Stream cal = MakeStream(2000, 71);
  double prev = 0.0;
  for (double alpha : {0.5, 0.2, 0.1, 0.05, 0.01}) {
    SplitConformal scp(MakeScoring(ScoreKind::kResidual), alpha);
    ASSERT_TRUE(scp.Calibrate(cal.estimates, cal.truths).ok());
    EXPECT_GE(scp.delta(), prev);
    prev = scp.delta();
  }
}

// The central theorem: coverage >= 1 - alpha in finite samples, for any
// scoring function, when calibration and test are exchangeable. Averaged
// over repetitions to keep the test deterministic and tight.
class ScpCoverageProperty
    : public ::testing::TestWithParam<std::tuple<ScoreKind, double>> {};

TEST_P(ScpCoverageProperty, CoverageAtLeastNominal) {
  const auto [kind, alpha] = GetParam();
  auto scoring = MakeScoring(kind);
  double covered = 0.0, total = 0.0;
  for (uint64_t rep = 0; rep < 10; ++rep) {
    Stream cal = MakeStream(800, 100 + rep);
    Stream test = MakeStream(800, 200 + rep);
    SplitConformal scp(scoring, alpha);
    ASSERT_TRUE(scp.Calibrate(cal.estimates, cal.truths).ok());
    for (size_t i = 0; i < test.truths.size(); ++i) {
      Interval iv = scp.Predict(test.estimates[i]);
      covered += iv.Contains(test.truths[i]) ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  double coverage = covered / total;
  // Allow ~3 standard errors of slack below nominal.
  double slack = 3.0 * std::sqrt(alpha * (1 - alpha) / total);
  EXPECT_GE(coverage, 1.0 - alpha - slack);
  // And the intervals should not be trivially wide: coverage should not
  // be 1.0 across thousands of queries for moderate alpha.
  if (alpha >= 0.1) EXPECT_LT(coverage, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScpCoverageProperty,
    ::testing::Combine(::testing::Values(ScoreKind::kResidual,
                                         ScoreKind::kQError,
                                         ScoreKind::kRelative),
                       ::testing::Values(0.05, 0.1, 0.2)));

// Sharpness: with residual scoring on homoscedastic noise, the PI width
// should approximate the 2 * (1-alpha) noise quantile, not blow up.
TEST(SplitConformalTest, WidthTracksNoiseScale) {
  auto scoring = MakeScoring(ScoreKind::kResidual);
  Stream narrow = MakeStream(2000, 301, /*noise_scale=*/10.0);
  Stream wide = MakeStream(2000, 302, /*noise_scale=*/100.0);
  SplitConformal scp_n(scoring, 0.1), scp_w(scoring, 0.1);
  ASSERT_TRUE(scp_n.Calibrate(narrow.estimates, narrow.truths).ok());
  ASSERT_TRUE(scp_w.Calibrate(wide.estimates, wide.truths).ok());
  EXPECT_GT(scp_w.delta(), 5.0 * scp_n.delta());
  // Residual delta ~ 1.645 * sigma for alpha=0.1 Gaussian noise.
  EXPECT_NEAR(scp_n.delta(), 16.45, 5.0);
}

}  // namespace
}  // namespace confcard
