// ThreadPool / ParallelFor semantics: every task runs exactly once,
// destruction drains the queue, exceptions propagate to the caller, and
// chunked loops cover [0, n) exactly once at any thread count. Also
// covers the EventLog concurrent-append contract the parallel harness
// loops rely on.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"

namespace confcard {
namespace {

// Tests mutate the process-wide thread count; restore it on exit so
// test order never matters.
class ThreadsRestorer {
 public:
  ThreadsRestorer() : saved_(CurrentThreads()) {}
  ~ThreadsRestorer() { SetThreads(saved_); }

 private:
  int saved_;
};

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, DestructionRunsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor must execute everything still queued before joining.
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, SubmitFutureCarriesException) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that threw keeps serving tasks.
  std::future<void> ok = pool.Submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ParallelForTest, ZeroIterationsNeverInvokesBody) {
  ThreadsRestorer restore;
  for (int threads : {1, 4}) {
    SetThreads(threads);
    bool called = false;
    ParallelFor(0, 0, [&called](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadsRestorer restore;
  for (int threads : {1, 4}) {
    SetThreads(threads);
    for (size_t n : {size_t{1}, size_t{2}, size_t{7}, size_t{63},
                     size_t{1000}}) {
      for (size_t chunk : {size_t{0}, size_t{1}, size_t{3}, size_t{16}}) {
        std::vector<std::atomic<int>> hits(n);
        ParallelFor(n, chunk, [&hits](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "n=" << n << " chunk=" << chunk << " threads=" << threads
              << " index=" << i;
        }
      }
    }
  }
}

TEST(ParallelForTest, RethrowsFirstException) {
  ThreadsRestorer restore;
  for (int threads : {1, 4}) {
    SetThreads(threads);
    EXPECT_THROW(
        ParallelFor(100, 1,
                    [](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        if (i == 50) throw std::runtime_error("chunk failed");
                      }
                    }),
        std::runtime_error);
    // The pool survives a failed loop.
    std::atomic<int> count{0};
    ParallelFor(8, 1, [&count](size_t begin, size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 8);
  }
}

TEST(ParallelForTest, NestedLoopsRunInlineOnTheWorker) {
  ThreadsRestorer restore;
  SetThreads(4);
  EXPECT_FALSE(InParallelWorker());
  std::atomic<int> inner_total{0};
  std::atomic<int> inner_whole_range{0};
  ParallelFor(8, 1, [&](size_t, size_t) {
    EXPECT_TRUE(InParallelWorker());
    // A nested loop must execute inline as one whole-range call.
    ParallelFor(16, 1, [&](size_t begin, size_t end) {
      if (begin == 0 && end == 16) inner_whole_range.fetch_add(1);
      inner_total.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_FALSE(InParallelWorker());
  EXPECT_EQ(inner_total.load(), 8 * 16);
  EXPECT_EQ(inner_whole_range.load(), 8);
}

TEST(ParallelForTest, SlotResultsIdenticalAcrossThreadCounts) {
  ThreadsRestorer restore;
  const size_t n = 4096;
  auto run = [n](int threads) {
    SetThreads(threads);
    std::vector<double> out(n);
    ParallelFor(n, 0, [&out](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * 0.5 + 1.0 / (1.0 + i);
      }
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

// Hammer for the allocation-free dispatch path: several external
// threads issue top-level ParallelFors against the shared pool at once,
// so stack LoopStates from different issuers interleave in the helper
// ring and retire out of order. Every loop must still cover its range
// exactly and unwind its own state (run under TSan via the
// parallel-smoke label).
TEST(ParallelForTest, ConcurrentTopLevelLoopsFromManyThreads) {
  ThreadsRestorer restore;
  SetThreads(4);
  // Warm the pool once so all issuers race against one instance.
  ParallelFor(64, 1, [](size_t, size_t) {});
  constexpr int kIssuers = 6;
  constexpr int kRounds = 40;
  constexpr size_t kN = 257;
  std::atomic<long> grand_total{0};
  std::vector<std::thread> issuers;
  issuers.reserve(kIssuers);
  for (int t = 0; t < kIssuers; ++t) {
    issuers.emplace_back([&grand_total] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<long> covered{0};
        ParallelFor(kN, 4, [&covered](size_t begin, size_t end) {
          covered.fetch_add(static_cast<long>(end - begin));
        });
        EXPECT_EQ(covered.load(), static_cast<long>(kN));
        grand_total.fetch_add(covered.load());
      }
    });
  }
  for (std::thread& th : issuers) th.join();
  EXPECT_EQ(grand_total.load(),
            static_cast<long>(kIssuers) * kRounds * static_cast<long>(kN));
}

TEST(EventLogTest, ConcurrentAppendsNeverInterleaveLines) {
  ThreadsRestorer restore;
  SetThreads(4);
  const std::string path =
      ::testing::TempDir() + "parallel_event_log_test.jsonl";
  obs::EventLog& elog = obs::EventLog::Instance();
  ASSERT_TRUE(elog.OpenForTest(path).ok());

  const size_t n = 2000;
  ParallelFor(n, 1, [&elog](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      obs::QueryEvent e;
      e.query_id = i;
      e.model = "m";
      e.method = "t";
      e.truth = static_cast<double>(i);
      if (i % 3 == 0) {
        elog.AppendAll({e});
      } else {
        elog.Append(e);
      }
    }
  });
  EXPECT_EQ(elog.appended(), n);
  elog.CloseForTest();

  auto records = obs::ReadJsonlFile(path);
  ASSERT_TRUE(records.ok()) << records.status().message();
  ASSERT_EQ(records->size(), n);
  // Every line must be a complete record; ids cover [0, n) exactly.
  std::vector<int> seen(n, 0);
  for (const obs::JsonValue& r : *records) {
    const obs::JsonValue* q = r.Find("q");
    ASSERT_NE(q, nullptr);
    seen[static_cast<size_t>(q->number)] += 1;
  }
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(seen[i], 1) << "query " << i;
}

}  // namespace
}  // namespace confcard
