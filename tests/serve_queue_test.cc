// The serving front-end's bounded lock-free MPMC queue: FIFO order for
// a single producer/consumer, full/empty edge behavior, capacity
// rounding, and a multi-producer/multi-consumer hammer that checks
// every pushed value is popped exactly once.
#include "serve/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace confcard {
namespace serve {
namespace {

TEST(MpmcQueueTest, PushPopFifoSingleThread) {
  MpmcBoundedQueue<int*> q(8);
  int values[5] = {0, 1, 2, 3, 4};
  for (int& v : values) EXPECT_TRUE(q.TryPush(&v));
  for (int i = 0; i < 5; ++i) {
    int* out = nullptr;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(*out, i);
  }
  int* out = nullptr;
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(MpmcQueueTest, FullQueueFailsPushUntilPopped) {
  MpmcBoundedQueue<int*> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  int values[5] = {0, 1, 2, 3, 4};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(&values[i]));
  EXPECT_FALSE(q.TryPush(&values[4]));  // full: shed, do not block
  int* out = nullptr;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPush(&values[4]));  // one slot freed
}

TEST(MpmcQueueTest, CapacityRoundsUpToPowerOfTwo) {
  MpmcBoundedQueue<int*> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  MpmcBoundedQueue<int*> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

TEST(MpmcQueueTest, EmptyAfterWrapAround) {
  MpmcBoundedQueue<int*> q(2);
  int v = 7;
  // Cycle through several wraps of the tiny ring.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.TryPush(&v));
    int* out = nullptr;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, &v);
    EXPECT_FALSE(q.TryPop(&out));
  }
}

// Multi-producer/multi-consumer hammer: every value pushed by any
// producer must be popped by exactly one consumer. Failed pushes (full
// queue) are retried so the totals balance.
TEST(MpmcQueueTest, ConcurrentHammerDeliversEachValueOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  constexpr int kTotal = kProducers * kPerProducer;

  MpmcBoundedQueue<uint64_t*> q(64);
  std::vector<uint64_t> values(kTotal);
  for (int i = 0; i < kTotal; ++i) values[i] = static_cast<uint64_t>(i);

  std::vector<std::atomic<uint32_t>> seen(kTotal);
  for (auto& s : seen) s.store(0);
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        uint64_t* v = &values[p * kPerProducer + i];
        while (!q.TryPush(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t* out = nullptr;
      while (popped.load(std::memory_order_relaxed) < kTotal) {
        if (q.TryPop(&out)) {
          seen[*out].fetch_add(1, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(popped.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "value " << i;
  }
}

}  // namespace
}  // namespace serve
}  // namespace confcard
