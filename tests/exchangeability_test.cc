// Martingale exchangeability test: must stay quiet on i.i.d. score
// streams and fire on distribution shift — the workload-drift detector
// of Section V-D.
#include "conformal/exchangeability.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace confcard {
namespace {

TEST(ExchangeabilityTest, PValuesInUnitInterval) {
  ExchangeabilityTest test;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    double p = test.Observe(rng.NextGaussian());
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_EQ(test.num_observed(), 200u);
}

TEST(ExchangeabilityTest, IidStreamStaysQuiet) {
  ExchangeabilityTest test;
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) {
    test.Observe(std::fabs(rng.NextGaussian()));
  }
  // Under exchangeability E[M_t] = 1; the martingale should not come
  // close to the 1/0.01 rejection threshold.
  EXPECT_FALSE(test.Reject(0.01));
  EXPECT_LT(test.LogMartingale(), std::log(100.0));
}

TEST(ExchangeabilityTest, DetectsUpwardShift) {
  ExchangeabilityTest test;
  Rng rng(3);
  // 800 small scores, then 800 much larger scores (workload drift makes
  // the model's residuals explode).
  for (int i = 0; i < 800; ++i) {
    test.Observe(std::fabs(rng.NextGaussian()));
  }
  EXPECT_FALSE(test.Reject(0.01));
  for (int i = 0; i < 800; ++i) {
    test.Observe(10.0 + std::fabs(rng.NextGaussian()));
  }
  EXPECT_TRUE(test.Reject(0.01));
}

TEST(ExchangeabilityTest, MartingaleGrowsMonotonicallyUnderShift) {
  ExchangeabilityTest test;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    test.Observe(std::fabs(rng.NextGaussian()));
  }
  double before = test.LogMartingale();
  for (int i = 0; i < 500; ++i) {
    test.Observe(20.0 + std::fabs(rng.NextGaussian()));
  }
  EXPECT_GT(test.LogMartingale(), before + std::log(1000.0));
}

TEST(ExchangeabilityTest, DeterministicBySeed) {
  ExchangeabilityTest a({0.5, 0.8}, 9), b({0.5, 0.8}, 9);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    double s = rng.NextDouble();
    EXPECT_DOUBLE_EQ(a.Observe(s), b.Observe(s));
  }
  EXPECT_DOUBLE_EQ(a.LogMartingale(), b.LogMartingale());
}

TEST(ExchangeabilityTest, ShuffledStreamQuietEvenWithHeavyTails) {
  // The test must key on *order*, not on the marginal distribution:
  // heavy-tailed but exchangeable scores should not trigger it.
  ExchangeabilityTest test;
  Rng rng(6);
  std::vector<double> scores;
  for (int i = 0; i < 1000; ++i) {
    double u = rng.NextDouble();
    scores.push_back(1.0 / (0.01 + u * u));  // heavy tail
  }
  rng.Shuffle(scores);
  for (double s : scores) test.Observe(s);
  EXPECT_FALSE(test.Reject(0.01));
}

}  // namespace
}  // namespace confcard
