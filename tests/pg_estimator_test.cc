#include "optim/pg_estimator.h"

#include <gtest/gtest.h>

#include "exec/join.h"

namespace confcard {
namespace {

// r(k, v) with uniform k over 4 codes; s(k) with uniform k over 4 codes.
Database UniformDb(size_t nr = 4000, size_t ns = 2000) {
  Database db;
  {
    std::vector<double> k(nr), v(nr);
    for (size_t i = 0; i < nr; ++i) {
      k[i] = static_cast<double>(i % 4);
      v[i] = static_cast<double>(i % 10);
    }
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("k", 4, std::move(k)));
    cols.push_back(Column::Categorical("v", 10, std::move(v)));
    EXPECT_TRUE(db.AddTable(Table::Make("r", std::move(cols)).value()).ok());
  }
  {
    std::vector<double> k(ns);
    for (size_t i = 0; i < ns; ++i) k[i] = static_cast<double>(i % 4);
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("k", 4, std::move(k)));
    EXPECT_TRUE(db.AddTable(Table::Make("s", std::move(cols)).value()).ok());
  }
  db.AddJoinEdge({"r", "k", "s", "k"});
  return db;
}

TEST(PgEstimatorTest, BaseRowsWithExactHistogram) {
  Database db = UniformDb();
  PgEstimator pg(db);
  JoinQuery q;
  q.tables = {"r"};
  q.predicates = {{"r", Predicate::Eq(1, 3.0)}};
  // v is uniform over 10 codes: expect 10% of 4000.
  EXPECT_NEAR(pg.EstimateBaseRows(q, "r"), 400.0, 1.0);
}

TEST(PgEstimatorTest, DistinctCounts) {
  Database db = UniformDb();
  PgEstimator pg(db);
  EXPECT_DOUBLE_EQ(pg.DistinctCount("r", "k"), 4.0);
  EXPECT_DOUBLE_EQ(pg.DistinctCount("r", "v"), 10.0);
}

TEST(PgEstimatorTest, JoinFormulaOnUniformKeysIsAccurate) {
  Database db = UniformDb();
  PgEstimator pg(db);
  JoinQuery q;
  q.tables = {"r", "s"};
  q.joins = db.join_edges();
  double est = pg.EstimateCardinality(q);
  auto exec = ExecuteJoin(db, q);
  ASSERT_TRUE(exec.ok());
  // Uniform keys: formula |r|*|s|/max(V,V) is exact.
  EXPECT_NEAR(est, static_cast<double>(exec->cardinality),
              static_cast<double>(exec->cardinality) * 0.02);
}

TEST(PgEstimatorTest, MultiPredicateUsesIndependence) {
  Database db = UniformDb();
  PgEstimator pg(db);
  JoinQuery q;
  q.tables = {"r"};
  q.predicates = {{"r", Predicate::Eq(0, 0.0)},
                  {"r", Predicate::Eq(1, 0.0)}};
  // Independence: 0.25 * 0.1 * 4000 = 100.
  EXPECT_NEAR(pg.EstimateBaseRows(q, "r"), 100.0, 5.0);
}

TEST(PgEstimatorTest, UnderestimatesCorrelatedJoins) {
  // The Table I phenomenon: with cross-table predicate correlation
  // (literals sampled from rows that co-occur through the join, as in
  // the hand-written JOB queries), the independence-based estimator
  // underestimates most join queries.
  Database db = MakeImdbLike(3000, 71).value();
  PgEstimator pg(db);

  const Table& title = db.table("title");
  const Table& mk = db.table("movie_keyword");
  const Column& movie_id = mk.ColumnByName("movie_id");
  const Column& keyword = mk.ColumnByName("keyword_id");
  const Column& year = title.ColumnByName("production_year");

  size_t under = 0, total = 0;
  for (size_t r = 0; r < mk.num_rows() && total < 40; r += 97) {
    // Co-occurring pair: this row's keyword plus its movie's year.
    double kw = keyword[r];
    double yr = year[static_cast<size_t>(movie_id[r])];
    JoinQuery q;
    q.tables = {"title", "movie_keyword"};
    q.joins = db.EdgesAmong(q.tables);
    q.predicates = {
        {"title", Predicate::Eq(title.ColumnIndex("production_year"), yr)},
        {"movie_keyword",
         Predicate::Eq(mk.ColumnIndex("keyword_id"), kw)}};
    auto exec = ExecuteJoin(db, q);
    ASSERT_TRUE(exec.ok());
    if (exec->cardinality == 0) continue;
    double est = pg.EstimateCardinality(q);
    under += est < static_cast<double>(exec->cardinality) ? 1 : 0;
    ++total;
  }
  ASSERT_GT(total, 10u);
  EXPECT_GT(under, total / 2);
}

TEST(PgEstimatorTest, SubsetEstimatesIgnoreOutsideEdges) {
  Database db = UniformDb();
  PgEstimator pg(db);
  JoinQuery q;
  q.tables = {"r", "s"};
  q.joins = db.join_edges();
  // Single-table subset: no join edge applies.
  EXPECT_NEAR(pg.EstimateJoinCardinality(q, {"r"}), 4000.0, 1e-6);
}

}  // namespace
}  // namespace confcard
