#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/mlp.h"

namespace confcard {
namespace nn {
namespace {

// Minimize f(w) = (w - 3)^2 via gradients fed manually.
template <typename Opt>
double MinimizeQuadratic(Opt& opt, Parameter& p, int steps) {
  for (int i = 0; i < steps; ++i) {
    p.grad.At(0, 0) = 2.0f * (p.value.At(0, 0) - 3.0f);
    opt.Step();
  }
  return p.value.At(0, 0);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Parameter p;
  p.value = Tensor(1, 1);
  p.grad = Tensor(1, 1);
  Sgd sgd({&p}, 0.1);
  double w = MinimizeQuadratic(sgd, p, 200);
  EXPECT_NEAR(w, 3.0, 1e-3);
}

TEST(SgdTest, MomentumAccelerates) {
  Parameter a, b;
  a.value = Tensor(1, 1);
  a.grad = Tensor(1, 1);
  b.value = Tensor(1, 1);
  b.grad = Tensor(1, 1);
  Sgd plain({&a}, 0.01);
  Sgd mom({&b}, 0.01, 0.9);
  MinimizeQuadratic(plain, a, 50);
  MinimizeQuadratic(mom, b, 50);
  EXPECT_LT(std::fabs(b.value.At(0, 0) - 3.0),
            std::fabs(a.value.At(0, 0) - 3.0));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter p;
  p.value = Tensor(1, 1);
  p.grad = Tensor(1, 1);
  Adam adam({&p}, 0.1);
  double w = MinimizeQuadratic(adam, p, 500);
  EXPECT_NEAR(w, 3.0, 1e-2);
}

TEST(AdamTest, StepZeroesGradients) {
  Parameter p;
  p.value = Tensor(1, 1);
  p.grad = Tensor(1, 1);
  p.grad.At(0, 0) = 1.0f;
  Adam adam({&p}, 0.01);
  adam.Step();
  EXPECT_EQ(p.grad.At(0, 0), 0.0f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Parameter p;
  p.value = Tensor(2, 2);
  p.grad = Tensor(2, 2);
  p.grad.Fill(3.0f);
  Sgd sgd({&p}, 0.1);
  sgd.ZeroGrad();
  for (float v : p.grad.data()) EXPECT_EQ(v, 0.0f);
}

// Integration: an MLP trained with Adam must fit a noiseless linear
// function to near-zero error.
TEST(TrainingIntegrationTest, MlpFitsLinearFunction) {
  Rng rng(23);
  Mlp mlp({2, 16, 1}, rng);
  Adam adam(mlp.Parameters(), 5e-3);

  const size_t n = 256;
  Tensor x = Tensor::Randn(n, 2, 1.0f, rng);
  std::vector<float> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 2.0f * x.At(i, 0) - 1.0f * x.At(i, 1) + 0.5f;
  }

  double final_loss = 1e9;
  for (int epoch = 0; epoch < 400; ++epoch) {
    Tensor pred = mlp.Forward(x);
    Tensor grad;
    final_loss = MseLoss(pred, y, &grad);
    mlp.Backward(grad);
    adam.Step();
  }
  EXPECT_LT(final_loss, 1e-2);
}

// The pinball loss must drive an MLP toward the conditional quantile,
// not the mean: with asymmetric noise the tau=0.9 fit sits above the
// tau=0.1 fit.
TEST(TrainingIntegrationTest, PinballLearnsQuantiles) {
  Rng rng(29);
  auto train = [&](double tau) {
    Rng local(31);
    Mlp mlp({1, 8, 1}, local);
    Adam adam(mlp.Parameters(), 1e-2);
    const size_t n = 512;
    Tensor x(n, 1);
    std::vector<float> y(n);
    for (size_t i = 0; i < n; ++i) {
      x.At(i, 0) = static_cast<float>(local.NextDouble());
      y[i] = static_cast<float>(10.0 * local.NextDouble());  // U[0,10]
    }
    for (int epoch = 0; epoch < 300; ++epoch) {
      Tensor pred = mlp.Forward(x);
      Tensor grad;
      PinballLoss(pred, y, tau, &grad);
      mlp.Backward(grad);
      adam.Step();
    }
    Tensor probe(1, 1);
    probe.At(0, 0) = 0.5f;
    return static_cast<double>(mlp.Forward(probe).At(0, 0));
  };
  double hi = train(0.9);
  double lo = train(0.1);
  EXPECT_GT(hi, lo + 3.0);  // quantiles of U[0,10] are ~9 vs ~1
}

}  // namespace
}  // namespace nn
}  // namespace confcard
