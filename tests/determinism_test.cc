// The determinism contract of the parallel harness: running the same
// tiny single-table experiment at CONFCARD_THREADS=1 and =4 must produce
// bit-identical intervals, identical coverage gauges, and byte-identical
// event-log payloads (after stripping the wall-clock latency field and
// the process-global run ordinal, the only legitimately timing-dependent
// values).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ce/guarded.h"
#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "ce/naru.h"
#include "common/parallel.h"
#include "data/generators.h"
#include "harness/single_table.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "query/workload.h"

namespace confcard {
namespace {

struct Fixture {
  Table table;
  Workload train, calib, test;
};

Fixture MakeFixture() {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 3000;
  spec.seed = 77;
  ColumnSpec a;
  a.name = "a";
  a.domain_size = 6;
  a.zipf_skew = 0.8;
  ColumnSpec b;
  b.name = "b";
  b.kind = ColumnKind::kNumeric;
  b.num_min = 0.0;
  b.num_max = 50.0;
  spec.columns = {a, b};
  Table table = GenerateTable(spec).value();

  WorkloadConfig wc;
  wc.num_queries = 150;
  wc.seed = 11;
  Workload train = GenerateWorkload(table, wc).value();
  wc.seed = 12;
  Workload calib = GenerateWorkload(table, wc).value();
  wc.seed = 13;
  wc.num_queries = 100;
  Workload test = GenerateWorkload(table, wc).value();
  return {std::move(table), std::move(train), std::move(calib),
          std::move(test)};
}

struct RunOutput {
  std::vector<MethodResult> results;
  std::vector<double> coverage_gauges;
  std::string normalized_events;
};

// Drops the two timing-dependent fields from each event line: "lat_us"
// (wall clock) and "run" (a process-global ordinal that differs between
// the two runs inside this test, not between two processes).
std::string NormalizeEvents(const std::string& text) {
  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line)) {
    const size_t run = line.find("\"run\":");
    if (run != std::string::npos) {
      const size_t comma = line.find(',', run);
      if (comma != std::string::npos) line.erase(run, comma - run + 1);
    }
    const size_t lat = line.find("\"lat_us\":");
    if (lat != std::string::npos) {
      size_t end = lat;
      while (end < line.size() && line[end] != ',' && line[end] != '}') {
        ++end;
      }
      line.erase(lat, end - lat);
    }
    out += line;
    out += '\n';
  }
  return out;
}

RunOutput RunExperiment(const Fixture& f, int threads,
                        const std::string& event_path) {
  SetThreads(threads);
  obs::EventLog& elog = obs::EventLog::Instance();
  EXPECT_TRUE(elog.OpenForTest(event_path).ok());

  SingleTableHarness::Options opts;
  opts.jk_folds = 3;
  SingleTableHarness h(f.table, f.train, f.calib, f.test, opts);

  LwnnEstimator::Options lo;
  lo.epochs = 8;
  lo.hidden1 = 16;
  lo.hidden2 = 8;
  LwnnEstimator proto(lo);
  EXPECT_TRUE(proto.Train(f.table, f.train).ok());

  NaruConfig nc;
  nc.hidden = 16;
  nc.hidden_layers = 1;
  nc.epochs = 2;
  nc.num_samples = 8;
  NaruEstimator naru(nc);
  EXPECT_TRUE(naru.Train(f.table).ok());

  RunOutput out;
  out.results.push_back(h.RunJkCv(proto, proto, /*simplified=*/false));
  out.results.push_back(h.RunCqr(proto));
  out.results.push_back(h.RunScp(naru));
  elog.CloseForTest();

  for (const MethodResult& r : out.results) {
    const std::string name = "harness.coverage." + std::to_string(r.run_seq) +
                             "." + r.model + "." + r.method;
    out.coverage_gauges.push_back(obs::Metrics().GetGauge(name).value());
  }

  std::ifstream in(event_path, std::ios::binary);
  EXPECT_TRUE(in.is_open());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  out.normalized_events = NormalizeEvents(text);
  return out;
}

TEST(DeterminismTest, OneThreadAndFourThreadsProduceIdenticalRuns) {
  const int saved_threads = CurrentThreads();
  Fixture f = MakeFixture();
  const std::string dir = ::testing::TempDir();
  RunOutput serial = RunExperiment(f, 1, dir + "determinism_t1.jsonl");
  RunOutput pooled = RunExperiment(f, 4, dir + "determinism_t4.jsonl");
  SetThreads(saved_threads);

  ASSERT_EQ(serial.results.size(), pooled.results.size());
  for (size_t m = 0; m < serial.results.size(); ++m) {
    const MethodResult& a = serial.results[m];
    const MethodResult& b = pooled.results[m];
    SCOPED_TRACE(a.model + "/" + a.method);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.method, b.method);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t i = 0; i < a.rows.size(); ++i) {
      // Bit-identical, not approximately equal: the whole point of the
      // determinism contract.
      ASSERT_EQ(a.rows[i].truth, b.rows[i].truth) << "query " << i;
      ASSERT_EQ(a.rows[i].estimate, b.rows[i].estimate) << "query " << i;
      ASSERT_EQ(a.rows[i].lo, b.rows[i].lo) << "query " << i;
      ASSERT_EQ(a.rows[i].hi, b.rows[i].hi) << "query " << i;
    }
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.mean_width_sel, b.mean_width_sel);
    EXPECT_EQ(serial.coverage_gauges[m], pooled.coverage_gauges[m]);
  }

  EXPECT_FALSE(serial.normalized_events.empty());
  EXPECT_EQ(serial.normalized_events, pooled.normalized_events);
}

// The batched-inference contract: EstimateBatch (and, for Naru, the
// sparsity-aware engine behind it) must be bit-identical to the
// per-query dense path for all three estimators, at 1 and 4 threads.
TEST(DeterminismTest, BatchedSparseInferenceMatchesPerQueryDense) {
  const int saved_threads = CurrentThreads();
  Fixture f = MakeFixture();

  LwnnEstimator::Options lo;
  lo.epochs = 8;
  lo.hidden1 = 16;
  lo.hidden2 = 8;
  LwnnEstimator lwnn(lo);
  ASSERT_TRUE(lwnn.Train(f.table, f.train).ok());

  MscnEstimator::Options mo;
  mo.model.epochs = 4;
  mo.model.set_hidden = 16;
  mo.model.final_hidden = 16;
  MscnEstimator mscn(mo);
  ASSERT_TRUE(mscn.Train(f.table, f.train).ok());

  NaruConfig nc;
  nc.hidden = 16;
  nc.hidden_layers = 1;
  nc.epochs = 2;
  nc.num_samples = 8;
  NaruEstimator naru(nc);
  ASSERT_TRUE(naru.Train(f.table).ok());

  std::vector<Query> queries;
  queries.reserve(f.test.size());
  for (const LabeledQuery& lq : f.test) queries.push_back(lq.query);

  // Per-query dense references, computed once at 1 thread. Naru's dense
  // path is the pre-engine reference implementation.
  SetThreads(1);
  naru.set_sparse_inference(false);
  std::vector<double> lwnn_ref, mscn_ref, naru_ref;
  for (const Query& q : queries) {
    lwnn_ref.push_back(lwnn.EstimateCardinality(q));
    mscn_ref.push_back(mscn.EstimateCardinality(q));
    naru_ref.push_back(naru.EstimateCardinality(q));
  }

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetThreads(threads);

    // Per-query sparse Naru == per-query dense.
    naru.set_sparse_inference(true);
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(naru.EstimateCardinality(queries[i]), naru_ref[i])
          << "query " << i;
    }

    // Batched == per-query, bit for bit, for every estimator.
    std::vector<double> got(queries.size());
    lwnn.EstimateBatch(queries.data(), queries.size(), got.data());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i], lwnn_ref[i]) << "lw-nn query " << i;
    }
    mscn.EstimateBatch(queries.data(), queries.size(), got.data());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i], mscn_ref[i]) << "mscn query " << i;
    }
    naru.EstimateBatch(queries.data(), queries.size(), got.data());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i], naru_ref[i]) << "naru query " << i;
    }

    // The base-class default (a plain loop) must agree too.
    naru.CardinalityEstimator::EstimateBatch(queries.data(), queries.size(),
                                             got.data());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[i], naru_ref[i]) << "naru default-loop query " << i;
    }
  }
  SetThreads(saved_threads);
}

// The guarded-path contract: with CONFCARD_FAULTS unset and no latency
// budget, wrapping an estimator in GuardedEstimator must not change a
// single bit — neither per query nor through the harness — at 1 and 4
// threads, and must flag zero rows degraded.
TEST(DeterminismTest, GuardedPathBitIdenticalToUnguardedWhenFaultsOff) {
  const int saved_threads = CurrentThreads();
  Fixture f = MakeFixture();

  NaruConfig nc;
  nc.hidden = 16;
  nc.hidden_layers = 1;
  nc.epochs = 2;
  nc.num_samples = 8;
  NaruEstimator naru(nc);
  ASSERT_TRUE(naru.Train(f.table).ok());
  GuardedEstimator guard(naru, f.table);

  SingleTableHarness::Options opts;
  opts.jk_folds = 3;
  SingleTableHarness h(f.table, f.train, f.calib, f.test, opts);

  SetThreads(1);
  const MethodResult ref = h.RunScp(naru);
  std::vector<double> raw;
  raw.reserve(f.test.size());
  for (const LabeledQuery& lq : f.test) {
    raw.push_back(naru.EstimateCardinality(lq.query));
  }

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetThreads(threads);

    for (size_t i = 0; i < f.test.size(); ++i) {
      const GuardedEstimate g = guard.EstimateGuarded(f.test[i].query);
      ASSERT_EQ(g.value, raw[i]) << "query " << i;
      ASSERT_FALSE(g.degraded) << "query " << i;
    }

    const MethodResult got = h.RunScpGuarded(guard);
    EXPECT_EQ(got.num_degraded, 0u);
    ASSERT_EQ(got.rows.size(), ref.rows.size());
    for (size_t i = 0; i < ref.rows.size(); ++i) {
      ASSERT_EQ(got.rows[i].truth, ref.rows[i].truth) << "query " << i;
      ASSERT_EQ(got.rows[i].estimate, ref.rows[i].estimate) << "query " << i;
      ASSERT_EQ(got.rows[i].lo, ref.rows[i].lo) << "query " << i;
      ASSERT_EQ(got.rows[i].hi, ref.rows[i].hi) << "query " << i;
      ASSERT_FALSE(got.rows[i].degraded) << "query " << i;
    }
    EXPECT_EQ(got.coverage, ref.coverage);
    EXPECT_EQ(got.mean_width_sel, ref.mean_width_sel);
  }
  SetThreads(saved_threads);
}

}  // namespace
}  // namespace confcard
