#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/parallel.h"

namespace confcard {
namespace nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, AtReadWrite) {
  Tensor t(2, 2);
  t.At(1, 0) = 5.0f;
  EXPECT_EQ(t.At(1, 0), 5.0f);
  EXPECT_EQ(t.data()[2], 5.0f);  // row-major layout
}

TEST(TensorTest, FillScaleAdd) {
  Tensor a(2, 2), b(2, 2);
  a.Fill(1.0f);
  b.Fill(2.0f);
  a.Add(b);
  a.Scale(0.5f);
  for (float v : a.data()) EXPECT_EQ(v, 1.5f);
}

TEST(TensorTest, RandnMoments) {
  Rng rng(1);
  Tensor t = Tensor::Randn(100, 100, 2.0f, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = 10000.0;
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(sq / n, 4.0, 0.3);
}

TEST(MatMulTest, KnownProduct) {
  Tensor a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data().begin());
  std::copy(bv, bv + 6, b.data().begin());
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatMulTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::Randn(4, 5, 1.0f, rng);
  Tensor b = Tensor::Randn(4, 6, 1.0f, rng);

  // MatMulTransA(a, b) == a^T * b.
  Tensor at(5, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 5; ++j) at.At(j, i) = a.At(i, j);
  }
  Tensor expect = MatMul(at, b);
  Tensor got = MatMulTransA(a, b);
  ASSERT_EQ(got.rows(), 5u);
  ASSERT_EQ(got.cols(), 6u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expect.data()[i], 1e-4f);
  }

  // MatMulTransB(a, c) == a * c^T for c (7, 5).
  Tensor c = Tensor::Randn(7, 5, 1.0f, rng);
  Tensor ct(5, 7);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 5; ++j) ct.At(j, i) = c.At(i, j);
  }
  Tensor expect2 = MatMul(a, ct);
  Tensor got2 = MatMulTransB(a, c);
  for (size_t i = 0; i < got2.size(); ++i) {
    EXPECT_NEAR(got2.data()[i], expect2.data()[i], 1e-4f);
  }
}

TEST(TensorTest, UninitializedHasShapeOnly) {
  Tensor t = Tensor::Uninitialized(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  t.Fill(2.0f);  // contents are writable garbage until filled
  for (float v : t.data()) EXPECT_EQ(v, 2.0f);
  Tensor u = Tensor::UninitializedLike(t);
  EXPECT_EQ(u.rows(), t.rows());
  EXPECT_EQ(u.cols(), t.cols());
}

// Textbook reference kernels: one float accumulator per output element,
// inner index ascending — the summation order the blocked kernels
// guarantee to preserve.
Tensor RefMatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) acc += a.At(i, p) * b.At(p, j);
      c.At(i, j) = acc;
    }
  }
  return c;
}

Tensor RefMatMulTransA(const Tensor& a, const Tensor& b) {
  Tensor c(a.cols(), b.cols());
  for (size_t i = 0; i < a.cols(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < a.rows(); ++p) acc += a.At(p, i) * b.At(p, j);
      c.At(i, j) = acc;
    }
  }
  return c;
}

Tensor RefMatMulTransB(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < a.cols(); ++p) acc += a.At(i, p) * b.At(j, p);
      c.At(i, j) = acc;
    }
  }
  return c;
}

void ExpectClose(const Tensor& got, const Tensor& want, const char* label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    const float w = want.data()[i];
    // Tight relative tolerance: the kernels may contract to FMA where
    // the reference does not, but summation order is identical.
    ASSERT_NEAR(got.data()[i], w, 1e-4f * (1.0f + std::fabs(w)))
        << label << " flat index " << i;
  }
}

void ExpectBitIdentical(const Tensor& got, const Tensor& want,
                        const char* label) {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << label << " flat " << i;
  }
}

TEST(MatMulTest, BlockedKernelsMatchReferenceAcrossShapesAndThreads) {
  const int saved_threads = CurrentThreads();
  // Odd shapes exercise the 4-row/4-col remainders; the large shape
  // crosses the parallelization flop threshold.
  const struct {
    size_t n, k, m;
  } shapes[] = {{1, 1, 1}, {3, 5, 2}, {17, 9, 33}, {64, 128, 96}};
  Rng rng(7);
  for (const auto& s : shapes) {
    Tensor a = Tensor::Randn(s.n, s.k, 1.0f, rng);
    Tensor b = Tensor::Randn(s.k, s.m, 1.0f, rng);
    // Zero some rows of a to exercise the skip-zero fast path.
    if (s.n > 2) {
      for (size_t j = 0; j < s.k; ++j) a.At(1, j) = 0.0f;
    }
    Tensor at = Tensor::Randn(s.k, s.n, 1.0f, rng);  // for TransA: k x n
    Tensor bt = Tensor::Randn(s.m, s.k, 1.0f, rng);  // for TransB: m x k

    SetThreads(1);
    Tensor c1 = MatMul(a, b);
    Tensor ta1 = MatMulTransA(at, b);
    Tensor tb1 = MatMulTransB(a, bt);
    ExpectClose(c1, RefMatMul(a, b), "MatMul");
    ExpectClose(ta1, RefMatMulTransA(at, b), "MatMulTransA");
    ExpectClose(tb1, RefMatMulTransB(a, bt), "MatMulTransB");

    SetThreads(4);
    // Bit-identity between thread counts is the determinism contract.
    ExpectBitIdentical(MatMul(a, b), c1, "MatMul t4");
    ExpectBitIdentical(MatMulTransA(at, b), ta1, "MatMulTransA t4");
    ExpectBitIdentical(MatMulTransB(a, bt), tb1, "MatMulTransB t4");
  }
  SetThreads(saved_threads);
}

TEST(MatMulTest, IdentityPreserves) {
  Rng rng(4);
  Tensor a = Tensor::Randn(3, 3, 1.0f, rng);
  Tensor id(3, 3);
  for (size_t i = 0; i < 3; ++i) id.At(i, i) = 1.0f;
  Tensor c = MatMul(a, id);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], a.data()[i]);
  }
}

}  // namespace
}  // namespace nn
}  // namespace confcard
