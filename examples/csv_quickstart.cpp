// Bringing your own data: load a CSV into a confcard::Table (types are
// inferred; strings are dictionary-encoded), train an estimator, and get
// prediction intervals. The example writes a small demo CSV to a temp
// file so it is fully self-contained — point `path` at your own file.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ce/lwnn.h"
#include "common/rng.h"
#include "conformal/split.h"
#include "data/csv_table.h"
#include "query/workload.h"

using namespace confcard;

namespace {

// Writes a synthetic orders.csv: region (categorical), priority
// (categorical), amount (numeric, depends on region).
std::string WriteDemoCsv() {
  const auto path =
      (std::filesystem::temp_directory_path() / "confcard_orders.csv")
          .string();
  std::ofstream out(path);
  out << "region,priority,amount\n";
  const char* regions[] = {"emea", "amer", "apac", "latam"};
  const char* priorities[] = {"low", "mid", "high"};
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const size_t r = rng.NextCategorical({4.0, 3.0, 2.0, 1.0});
    const size_t p = rng.NextCategorical({5.0, 3.0, 1.0});
    const double amount =
        50.0 * (static_cast<double>(r) + 1.0) * (1.0 + rng.NextDouble());
    out << regions[r] << ',' << priorities[p] << ',' << amount << '\n';
  }
  return path;
}

}  // namespace

int main() {
  const std::string path = WriteDemoCsv();
  auto loaded = LoadTableFromCsv(path, "orders");
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const Table& table = loaded->table;
  std::printf("loaded %s: %zu rows, %zu columns\n", path.c_str(),
              table.num_rows(), table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::printf("  %-10s %s\n", table.column(c).name().c_str(),
                ColumnKindToString(table.column(c).kind()));
  }

  // Label workloads against the loaded table and wrap LW-NN with S-CP.
  WorkloadConfig cfg;
  cfg.num_queries = 800;
  cfg.seed = 1;
  Workload train = GenerateWorkload(table, cfg).value();
  cfg.seed = 2;
  Workload calib = GenerateWorkload(table, cfg).value();

  LwnnEstimator model;
  if (!model.Train(table, train).ok()) return 1;

  std::vector<double> est, truth;
  for (const LabeledQuery& lq : calib) {
    est.push_back(model.EstimateCardinality(lq.query));
    truth.push_back(lq.cardinality);
  }
  SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
  if (!scp.Calibrate(est, truth).ok()) return 1;

  // A human-readable query: region = 'apac' AND amount <= 200.
  const Column& region = table.ColumnByName("region");
  int64_t apac_code = -1;
  for (int64_t code = 0; code < region.domain_size(); ++code) {
    if (loaded->Decode(0, code) == "apac") apac_code = code;
  }
  Query q;
  q.predicates = {
      Predicate::Eq(table.ColumnIndex("region"),
                    static_cast<double>(apac_code)),
      Predicate::Between(table.ColumnIndex("amount"), 0.0, 200.0)};

  const double e = model.EstimateCardinality(q);
  Interval iv = ClipToCardinality(scp.Predict(e),
                                  static_cast<double>(table.num_rows()));
  std::printf(
      "\nSELECT COUNT(*) WHERE region='apac' AND amount<=200\n"
      "  estimate %.0f, 90%% interval [%.0f, %.0f]\n",
      e, iv.lo, iv.hi);
  std::filesystem::remove(path);
  return 0;
}
