// Injecting prediction intervals into a query optimizer (the Table I
// scenario): a Postgres-like estimator plans a JOB-style join query,
// once with its raw estimates and once with every join estimate replaced
// by the conformal upper bound Est + delta. The pessimistic plan avoids
// orders that only look good because of underestimated correlated joins.
#include <cstdio>

#include "common/stats.h"
#include "conformal/split.h"
#include "data/multitable.h"
#include "exec/join.h"
#include "optim/optimizer.h"
#include "optim/pg_estimator.h"
#include "query/join_workload.h"

using namespace confcard;

int main() {
  Database db = MakeImdbLike(8000).value();
  PgEstimator pg(db);

  // Calibrate delta on a workload of JOB-like queries with correlated
  // literals (the hard case for independence assumptions).
  JoinWorkloadConfig jc;
  jc.correlated_literals = true;
  jc.min_cardinality = 200.0;
  jc.range_prob = 0.6;
  jc.queries_per_template = 25;
  jc.seed = 4;
  JoinWorkload calib = GenerateJoinWorkload(db, JobTemplates(), jc).value();
  std::vector<double> est, truth;
  for (const LabeledJoinQuery& lq : calib) {
    est.push_back(pg.EstimateCardinality(lq.query));
    truth.push_back(lq.cardinality);
  }
  SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
  if (!scp.Calibrate(est, truth).ok()) return 1;
  const double delta = scp.delta();
  std::printf("conformal delta over the optimizer's residuals: %.0f "
              "tuples\n\n",
              delta);

  // Plan a fresh batch both ways and execute the chosen plans.
  jc.seed = 9;
  jc.queries_per_template = 40;
  JoinWorkload test = GenerateJoinWorkload(db, JobTemplates(), jc).value();

  // Cost model with a memory cliff, as in the Table I bench: hash builds
  // beyond ~3% of the title table spill at 3x cost, and nested loops are
  // only cheap for genuinely tiny inputs.
  CostModel cost;
  cost.spill_threshold =
      0.03 * static_cast<double>(db.table("title").num_rows());
  JoinOptimizer default_opt(pg);
  default_opt.SetCostModel(cost);
  JoinOptimizer pi_opt(pg);
  pi_opt.SetCostModel(cost);
  pi_opt.SetAdjuster([delta](double e, const std::vector<std::string>&) {
    return e + delta;  // the PI upper bound
  });

  auto work_of = [&](const LabeledJoinQuery& lq, const JoinPlan& plan) {
    JoinQuery q = lq.query;
    q.tables = plan.order;
    auto res = ExecuteJoin(db, q).value();
    double work = static_cast<double>(res.base_sizes[0]);
    double prev = work;
    for (size_t s = 0; s + 1 < plan.order.size(); ++s) {
      double inner = static_cast<double>(res.base_sizes[s + 1]);
      double out = static_cast<double>(res.intermediate_sizes[s]);
      work += plan.ops[s] == JoinOp::kNestedLoop
                  ? cost.NestedLoopCost(prev, inner, out)
                  : cost.HashCost(prev, inner, out);
      prev = out;
    }
    return work;
  };

  double work_default = 0, work_pi = 0;
  size_t plans_changed = 0;
  for (const LabeledJoinQuery& lq : test) {
    auto plan_a = default_opt.Optimize(lq.query).value();
    auto plan_b = pi_opt.Optimize(lq.query).value();
    if (plan_a.order != plan_b.order || plan_a.ops != plan_b.ops) {
      ++plans_changed;
    }
    work_default += work_of(lq, plan_a);
    work_pi += work_of(lq, plan_b);
  }
  std::printf("queries: %zu, plans changed by PI injection: %zu\n",
              test.size(), plans_changed);
  std::printf("execution work  default: %.0f   with PI: %.0f   "
              "(%.1f%% reduction)\n",
              work_default, work_pi,
              100.0 * (1.0 - work_pi / work_default));
  return 0;
}
