// Online calibration in a running system: after each query executes, its
// true cardinality is known and feeds back into the conformal
// calibration set, so intervals tighten as the calibration set adapts to
// the live workload (Section IV of the paper). A martingale
// exchangeability test runs alongside as a workload-drift alarm; when
// the workload shifts mid-stream the alarm fires and the calibration set
// is reset to a sliding window.
#include <cmath>
#include <cstdio>

#include "ce/lwnn.h"
#include "conformal/exchangeability.h"
#include "conformal/online.h"
#include "data/datasets.h"
#include "query/workload.h"

using namespace confcard;

int main() {
  Table table = MakeCensus(25000).value();
  const double n = static_cast<double>(table.num_rows());

  WorkloadConfig cfg;
  cfg.num_queries = 700;
  cfg.seed = 1;
  Workload train = GenerateWorkload(table, cfg).value();

  LwnnEstimator model;
  if (!model.Train(table, train).ok()) return 1;

  // Live stream: 2000 "normal" queries followed by 1000 shifted ones.
  cfg.num_queries = 2000;
  cfg.seed = 2;
  Workload normal = GenerateWorkload(table, cfg).value();
  WorkloadConfig shifted_cfg;
  shifted_cfg.num_queries = 1000;
  shifted_cfg.min_predicates = 1;
  shifted_cfg.max_predicates = 2;
  shifted_cfg.range_prob = 1.0;
  shifted_cfg.max_range_frac = 0.9;
  shifted_cfg.min_selectivity = 0.4;  // far outside the trained regime
  shifted_cfg.seed = 3;
  Workload shifted = GenerateWorkload(table, shifted_cfg).value();

  OnlineConformal::Options opts;
  opts.alpha = 0.1;
  OnlineConformal online(MakeScoring(ScoreKind::kResidual), opts);
  ExchangeabilityTest drift_alarm;

  size_t processed = 0, covered = 0;
  bool alarm_raised = false;
  auto process = [&](const Workload& stream, const char* phase) {
    for (const LabeledQuery& lq : stream) {
      double est = model.EstimateCardinality(lq.query);
      Interval iv = ClipToCardinality(online.Predict(est), n);
      covered += iv.Contains(lq.cardinality) ? 1 : 0;
      ++processed;

      // Execute, learn the truth, feed both trackers.
      online.Observe(est, lq.cardinality);
      drift_alarm.Observe(std::fabs(lq.cardinality - est));
      if (!alarm_raised && drift_alarm.Reject(0.01)) {
        alarm_raised = true;
        std::printf(
            ">>> drift alarm after %zu queries (%s phase): martingale "
            "log10 M = %.1f\n",
            processed, phase, drift_alarm.LogMartingale() / 2.302585);
      }
      if (processed % 500 == 0) {
        std::printf("processed=%5zu calib=%5zu width=%.4f coverage=%.3f\n",
                    processed, online.size(),
                    online.Predict(est).width() / n,
                    static_cast<double>(covered) /
                        static_cast<double>(processed));
      }
    }
  };

  std::printf("--- normal workload ---\n");
  process(normal, "normal");
  std::printf("--- workload shifts ---\n");
  process(shifted, "shifted");
  std::printf("drift alarm %s during the run\n",
              alarm_raised ? "FIRED" : "stayed quiet");
  return 0;
}
