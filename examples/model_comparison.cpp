// Side-by-side comparison of every estimator in the library — two
// traditional baselines (1-D histograms with independence, uniform
// sampling) and the three learned models of the paper (MSCN, Naru,
// LW-NN) — by accuracy (median/P95 q-error) and by the width of their
// 90% split-conformal prediction intervals. Reproduces the qualitative
// claim that more accurate models earn tighter intervals.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "ce/histogram.h"
#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "ce/naru.h"
#include "ce/sampling.h"
#include "common/stats.h"
#include "conformal/split.h"
#include "data/datasets.h"
#include "query/workload.h"

using namespace confcard;

namespace {

void Evaluate(const CardinalityEstimator& model, const Workload& calib,
              const Workload& test, double num_rows) {
  std::vector<double> est_c, truth_c;
  for (const LabeledQuery& lq : calib) {
    est_c.push_back(model.EstimateCardinality(lq.query));
    truth_c.push_back(lq.cardinality);
  }
  SplitConformal scp(MakeScoring(ScoreKind::kResidual), 0.1);
  if (!scp.Calibrate(est_c, truth_c).ok()) return;

  std::vector<double> qerrs;
  size_t covered = 0;
  for (const LabeledQuery& lq : test) {
    double est = model.EstimateCardinality(lq.query);
    double e = std::max(est, 1.0), t = std::max(lq.cardinality, 1.0);
    qerrs.push_back(std::max(e / t, t / e));
    Interval iv = ClipToCardinality(scp.Predict(est), num_rows);
    covered += iv.Contains(lq.cardinality) ? 1 : 0;
  }
  std::printf("%-14s %12.2f %12.2f %14.4f %12.3f\n",
              model.name().c_str(), Percentile(qerrs, 50.0),
              Percentile(qerrs, 95.0),
              2.0 * scp.delta() / num_rows,
              static_cast<double>(covered) /
                  static_cast<double>(test.size()));
}

}  // namespace

int main() {
  Table table = MakeDmv(30000).value();
  const double n = static_cast<double>(table.num_rows());

  WorkloadConfig cfg;
  cfg.num_queries = 1500;
  cfg.seed = 1;
  Workload train = GenerateWorkload(table, cfg).value();
  cfg.seed = 2;
  Workload calib = GenerateWorkload(table, cfg).value();
  cfg.num_queries = 600;
  cfg.seed = 3;
  Workload test = GenerateWorkload(table, cfg).value();

  std::printf("%-14s %12s %12s %14s %12s\n", "model", "q-err p50",
              "q-err p95", "PI width(sel)", "coverage");

  HistogramEstimator hist(table);
  Evaluate(hist, calib, test, n);

  SamplingEstimator sample(table, 1000);
  Evaluate(sample, calib, test, n);

  LwnnEstimator lwnn;
  if (lwnn.Train(table, train).ok()) Evaluate(lwnn, calib, test, n);

  MscnEstimator::Options mo;
  mo.model.epochs = 60;
  mo.model.set_hidden = 96;
  mo.model.final_hidden = 96;
  MscnEstimator mscn(mo);
  if (mscn.Train(table, train).ok()) Evaluate(mscn, calib, test, n);

  NaruConfig nc;
  nc.epochs = 6;
  NaruEstimator naru(nc);
  if (naru.Train(table).ok()) Evaluate(naru, calib, test, n);

  std::printf("\nall rows should sit at coverage ~0.9; more accurate "
              "models get tighter intervals\n");
  return 0;
}
