// A command-line driver over the whole public API: pick a dataset (or a
// CSV file), a model, PI methods, a coverage level — get the evaluation
// table and a sample of intervals. Handy for exploring trade-offs
// without writing code.
//
//   confcard_cli --dataset=dmv --model=mscn --method=all --alpha=0.1
//   confcard_cli --csv=orders.csv --model=lwnn --method=scp,lw
//   confcard_cli --dataset=census --model=naru --score=qerror --rows=20000
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ce/histogram.h"
#include "ce/lwnn.h"
#include "ce/mscn.h"
#include "ce/naru.h"
#include "ce/sampling.h"
#include "data/csv_table.h"
#include "data/datasets.h"
#include "harness/report.h"
#include "harness/single_table.h"
#include "query/workload.h"

using namespace confcard;

namespace {

struct Args {
  std::string dataset = "dmv";
  std::string csv;
  std::string model = "mscn";
  std::string method = "all";  // comma-separated: scp,lw,cqr,jk
  std::string score = "residual";
  double alpha = 0.1;
  size_t rows = 30000;
  size_t train = 1000;
  size_t calib = 1000;
  size_t test = 600;
  uint64_t seed = 1;
  bool series = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: confcard_cli [--dataset=dmv|census|forest|power]\n"
      "                    [--csv=path] [--rows=N]\n"
      "                    [--model=mscn|naru|lwnn|histogram|sampling]\n"
      "                    [--method=all|scp,lw,cqr,jk]\n"
      "                    [--score=residual|qerror|relative]\n"
      "                    [--alpha=0.1] [--train=N] [--calib=N] "
      "[--test=N]\n"
      "                    [--seed=N] [--series]\n");
  return 2;
}

bool Contains(const std::string& list, const std::string& item) {
  if (list == "all") return true;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    if (list.substr(pos, comma - pos) == item) return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--dataset", &v)) args.dataset = v;
    else if (ParseFlag(argv[i], "--csv", &v)) args.csv = v;
    else if (ParseFlag(argv[i], "--model", &v)) args.model = v;
    else if (ParseFlag(argv[i], "--method", &v)) args.method = v;
    else if (ParseFlag(argv[i], "--score", &v)) args.score = v;
    else if (ParseFlag(argv[i], "--alpha", &v)) args.alpha = std::atof(v.c_str());
    else if (ParseFlag(argv[i], "--rows", &v)) args.rows = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(argv[i], "--train", &v)) args.train = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(argv[i], "--calib", &v)) args.calib = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(argv[i], "--test", &v)) args.test = std::strtoull(v.c_str(), nullptr, 10);
    else if (ParseFlag(argv[i], "--seed", &v)) args.seed = std::strtoull(v.c_str(), nullptr, 10);
    else if (std::strcmp(argv[i], "--series") == 0) args.series = true;
    else return Usage();
  }
  if (args.alpha <= 0.0 || args.alpha >= 1.0) return Usage();

  // 1. Data.
  std::unique_ptr<Table> table;
  if (!args.csv.empty()) {
    auto loaded = LoadTableFromCsv(args.csv, "csv");
    if (!loaded.ok()) {
      std::fprintf(stderr, "csv load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    table = std::make_unique<Table>(std::move(loaded->table));
  } else {
    Result<Table> made = Status::InvalidArgument("");
    if (args.dataset == "dmv") made = MakeDmv(args.rows, args.seed);
    else if (args.dataset == "census") made = MakeCensus(args.rows, args.seed);
    else if (args.dataset == "forest") made = MakeForest(args.rows, args.seed);
    else if (args.dataset == "power") made = MakePower(args.rows, args.seed);
    else return Usage();
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    table = std::make_unique<Table>(std::move(made).value());
  }
  std::printf("table: %s (%zu rows, %zu columns)\n", table->name().c_str(),
              table->num_rows(), table->num_columns());

  // 2. Workloads.
  WorkloadConfig wc;
  wc.max_selectivity = 0.5;
  wc.num_queries = args.train;
  wc.seed = args.seed + 1;
  Workload train = GenerateWorkload(*table, wc).value();
  wc.num_queries = args.calib;
  wc.seed = args.seed + 2;
  Workload calib = GenerateWorkload(*table, wc).value();
  wc.num_queries = args.test;
  wc.seed = args.seed + 3;
  Workload test = GenerateWorkload(*table, wc).value();
  std::printf("workloads: train=%zu calib=%zu test=%zu\n", train.size(),
              calib.size(), test.size());

  // 3. Model.
  std::unique_ptr<CardinalityEstimator> model;
  SupervisedEstimator* supervised = nullptr;
  if (args.model == "mscn") {
    MscnEstimator::Options o;
    o.model.epochs = 60;
    o.model.set_hidden = 96;
    o.model.final_hidden = 96;
    auto m = std::make_unique<MscnEstimator>(o);
    if (!m->Train(*table, train).ok()) return 1;
    supervised = m.get();
    model = std::move(m);
  } else if (args.model == "lwnn") {
    auto m = std::make_unique<LwnnEstimator>();
    if (!m->Train(*table, train).ok()) return 1;
    supervised = m.get();
    model = std::move(m);
  } else if (args.model == "naru") {
    auto m = std::make_unique<NaruEstimator>();
    if (!m->Train(*table).ok()) return 1;
    model = std::move(m);
  } else if (args.model == "histogram") {
    model = std::make_unique<HistogramEstimator>(*table);
  } else if (args.model == "sampling") {
    model = std::make_unique<SamplingEstimator>(*table, 1000);
  } else {
    return Usage();
  }

  // 4. PI methods.
  SingleTableHarness::Options opts;
  opts.alpha = args.alpha;
  if (args.score == "residual") opts.score = ScoreKind::kResidual;
  else if (args.score == "qerror") opts.score = ScoreKind::kQError;
  else if (args.score == "relative") opts.score = ScoreKind::kRelative;
  else return Usage();

  SingleTableHarness harness(*table, train, calib, test, opts);
  std::vector<MethodResult> results;
  if (Contains(args.method, "scp")) {
    results.push_back(harness.RunScp(*model));
  }
  if (Contains(args.method, "lw")) {
    results.push_back(harness.RunLwScp(*model));
  }
  if (Contains(args.method, "cqr")) {
    if (supervised == nullptr) {
      std::fprintf(stderr,
                   "note: cqr needs a supervised model (mscn/lwnn); "
                   "skipping\n");
    } else {
      results.push_back(harness.RunCqr(*supervised));
    }
  }
  if (Contains(args.method, "jk")) {
    if (supervised == nullptr) {
      results.push_back(harness.RunJkCvFixedModel(*model));
    } else {
      results.push_back(
          harness.RunJkCv(*supervised, *model, /*simplified=*/true));
    }
  }
  if (results.empty()) return Usage();

  PrintMethodTable(results);
  if (args.series) {
    for (const MethodResult& r : results) {
      PrintSeries(r, static_cast<double>(table->num_rows()), 15);
    }
  }
  return 0;
}
