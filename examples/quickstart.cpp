// Quickstart: wrap a learned cardinality estimator with split conformal
// prediction in ~40 lines.
//
//   1. build (or load) a table,
//   2. label a training and a calibration workload with exact counts,
//   3. train any estimator (MSCN here),
//   4. calibrate SplitConformal on the calibration residuals,
//   5. ask for [lo, hi] alongside every estimate.
#include <cstdio>

#include "ce/mscn.h"
#include "conformal/split.h"
#include "data/datasets.h"
#include "exec/scan.h"
#include "query/workload.h"

using namespace confcard;

int main() {
  // 1. A DMV-like table (swap in your own confcard::Table).
  Table table = MakeDmv(/*num_rows=*/30000).value();

  // 2. Labeled workloads: the generator computes exact cardinalities.
  WorkloadConfig cfg;
  cfg.num_queries = 800;
  cfg.seed = 1;
  Workload train = GenerateWorkload(table, cfg).value();
  cfg.num_queries = 800;
  cfg.seed = 2;
  Workload calib = GenerateWorkload(table, cfg).value();

  // 3. Train the model (hyper-parameters as used by the benches).
  MscnEstimator::Options options;
  options.model.epochs = 60;
  options.model.set_hidden = 96;
  options.model.final_hidden = 96;
  MscnEstimator model(options);
  Status st = model.Train(table, train);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Calibrate a 90%-coverage split conformal wrapper.
  std::vector<double> estimates, truths;
  for (const LabeledQuery& lq : calib) {
    estimates.push_back(model.EstimateCardinality(lq.query));
    truths.push_back(lq.cardinality);
  }
  SplitConformal scp(MakeScoring(ScoreKind::kQError), /*alpha=*/0.1);
  st = scp.Calibrate(estimates, truths);
  if (!st.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("calibrated q-error delta = %.2f\n", scp.delta());

  // 5. Point estimate + prediction interval for new queries.
  cfg.num_queries = 10;
  cfg.seed = 3;
  Workload demo = GenerateWorkload(table, cfg).value();
  std::printf("%-40s %10s %10s %20s\n", "query", "truth", "estimate",
              "90% interval");
  for (const LabeledQuery& lq : demo) {
    double est = model.EstimateCardinality(lq.query);
    Interval iv = ClipToCardinality(
        scp.Predict(est), static_cast<double>(table.num_rows()));
    std::printf("%-40.40s %10.0f %10.0f [%8.0f, %8.0f]%s\n",
                ToString(lq.query).c_str(), lq.cardinality, est, iv.lo,
                iv.hi, iv.Contains(lq.cardinality) ? "" : "  <-- missed");
  }
  return 0;
}
