// Convenience multi-layer perceptron: Dense+ReLU stacks with a linear
// output layer, the architecture shared by the supervised estimators and
// the per-set modules of MSCN.
#ifndef CONFCARD_NN_MLP_H_
#define CONFCARD_NN_MLP_H_

#include <vector>

#include "nn/layers.h"

namespace confcard {
namespace nn {

/// MLP with ReLU activations between layers and a linear final layer.
class Mlp : public Layer {
 public:
  /// `dims` = {in, hidden..., out}; must have at least 2 entries.
  Mlp(const std::vector<size_t>& dims, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Apply(const Tensor& input) const override;
  /// Batched-inference forward with each hidden layer's bias-add and
  /// ReLU fused into one sweep. Bit-identical to Apply (the per-element
  /// op sequence is unchanged); used by the batched engine, while Apply
  /// remains the plain reference chain.
  Tensor ApplyFused(const Tensor& input) const;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  Sequential net_;
  // The Dense layers of net_ in order, for the fused inference path in
  // Apply (each hidden Dense is followed by a ReLU; the bias-add and
  // clamp share one sweep). Non-owning; net_ owns the layers.
  std::vector<const Dense*> dense_;
  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
};

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_MLP_H_
