// Convenience multi-layer perceptron: Dense+ReLU stacks with a linear
// output layer, the architecture shared by the supervised estimators and
// the per-set modules of MSCN.
#ifndef CONFCARD_NN_MLP_H_
#define CONFCARD_NN_MLP_H_

#include <vector>

#include "nn/layers.h"

namespace confcard {
namespace nn {

/// MLP with ReLU activations between layers and a linear final layer.
class Mlp : public Layer {
 public:
  /// `dims` = {in, hidden..., out}; must have at least 2 entries.
  Mlp(const std::vector<size_t>& dims, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Apply(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  Sequential net_;
  size_t in_dim_ = 0;
  size_t out_dim_ = 0;
};

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_MLP_H_
