// Dense 2-D float tensor (row-major; rows are batch entries). This is
// the entire "tensor library" the learned estimators need: the models in
// the paper are MLP-shaped, so matrix-matrix products plus elementwise
// ops suffice.
#ifndef CONFCARD_NN_TENSOR_H_
#define CONFCARD_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace confcard {
namespace nn {

/// Row-major matrix of floats.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized rows x cols tensor.
  Tensor(size_t rows, size_t cols);

  static Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(size_t rows, size_t cols, float stddev, Rng& rng);
  /// Kaiming/He initialization for a fan_in -> fan_out weight matrix.
  static Tensor HeInit(size_t fan_in, size_t fan_out, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float value);
  /// this += other (same shape).
  void Add(const Tensor& other);
  /// this *= s.
  void Scale(float s);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Shapes: (n,k) x (k,m) -> (n,m).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B. Shapes: (k,n) x (k,m) -> (n,m).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T. Shapes: (n,k) x (m,k) -> (n,m).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_TENSOR_H_
