// Dense 2-D float tensor (row-major; rows are batch entries). This is
// the entire "tensor library" the learned estimators need: the models in
// the paper are MLP-shaped, so matrix-matrix products plus elementwise
// ops suffice.
#ifndef CONFCARD_NN_TENSOR_H_
#define CONFCARD_NN_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "nn/arena.h"

namespace confcard {
namespace nn {

/// std::allocator variant whose default construction leaves trivial
/// elements uninitialized, so FloatBuffer::resize skips the zero-fill
/// pass. Tensor::Uninitialized relies on this; everything else is
/// unchanged because explicit-value construction still value-initializes.
/// Storage comes from the thread-local recycling arena (nn/arena.h), so
/// the per-step tensor temporaries of a training loop stop hitting the
/// global allocator once each thread has warmed its cache.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(ArenaAllocate(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) noexcept {
    ArenaRelease(p, n * sizeof(T));
  }

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;  // default-init: no zeroing for PODs
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

/// Backing storage of Tensor. Behaves like std::vector<float> except
/// that resize() without a fill value leaves new elements uninitialized.
using FloatBuffer = std::vector<float, DefaultInitAllocator<float>>;

/// Row-major matrix of floats.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized rows x cols tensor.
  Tensor(size_t rows, size_t cols);

  static Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }
  /// rows x cols tensor whose contents are UNINITIALIZED — every element
  /// must be written before it is read. For kernel outputs that
  /// overwrite (or memset-then-accumulate) the whole buffer.
  static Tensor Uninitialized(size_t rows, size_t cols);
  /// Uninitialized tensor with `other`'s shape.
  static Tensor UninitializedLike(const Tensor& other) {
    return Uninitialized(other.rows(), other.cols());
  }
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(size_t rows, size_t cols, float stddev, Rng& rng);
  /// Kaiming/He initialization for a fan_in -> fan_out weight matrix.
  static Tensor HeInit(size_t fan_in, size_t fan_out, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  FloatBuffer& data() { return data_; }
  const FloatBuffer& data() const { return data_; }

  void Fill(float value);
  /// this += other (same shape).
  void Add(const Tensor& other);
  /// this *= s.
  void Scale(float s);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  FloatBuffer data_;
};

/// Read-only view of a row-sparse binary matrix: each row holds the
/// ascending column indices whose value is exactly 1.0f (everything else
/// is zero). This is the shape of Naru's progressive-sampling input — a
/// concatenation of one-hot blocks, one per already-sampled column — and
/// lets the first MADE layer gather weight rows instead of multiplying
/// (batch, TotalBins) worth of zeros. The view does not own its buffers;
/// callers keep `indices`/`row_offsets` alive for the duration of the
/// forward.
struct SparseRows {
  size_t rows = 0;
  size_t cols = 0;                      // logical dense width
  const uint32_t* indices = nullptr;    // ascending within each row
  const size_t* row_offsets = nullptr;  // rows + 1 entries into `indices`

  size_t RowNnz(size_t r) const { return row_offsets[r + 1] - row_offsets[r]; }
  const uint32_t* RowIndices(size_t r) const {
    return indices + row_offsets[r];
  }
};

// The products below use cache-blocked kernels (4-output-row micro
// blocks so each B row streams once per block instead of once per row)
// and fan output rows out across the thread pool above a flop
// threshold. Per output element the accumulation order over the shared
// dimension is ascending regardless of blocking or thread count, so
// results are bit-identical to the naive triple loop for finite inputs
// and across any CONFCARD_THREADS setting.

/// C = A * B. Shapes: (n,k) x (k,m) -> (n,m).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B. Shapes: (k,n) x (k,m) -> (n,m).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T. Shapes: (n,k) x (m,k) -> (n,m).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_TENSOR_H_
