#include "nn/serialize.h"

namespace confcard {
namespace nn {

void SerializeParameters(Layer& layer, ArchiveWriter* writer) {
  std::vector<Parameter*> params = layer.Parameters();
  writer->WriteU64(params.size());
  for (Parameter* p : params) {
    writer->WriteU64(p->value.rows());
    writer->WriteU64(p->value.cols());
    writer->WriteFloats(p->value.data().data(), p->value.size());
  }
}

Status DeserializeParameters(Layer& layer, ArchiveReader* reader) {
  std::vector<Parameter*> params = layer.Parameters();
  const uint64_t count = reader->ReadU64();
  if (!reader->status().ok()) return reader->status();
  if (count != params.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (Parameter* p : params) {
    const uint64_t rows = reader->ReadU64();
    const uint64_t cols = reader->ReadU64();
    CONFCARD_RETURN_NOT_OK(reader->status());
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    reader->ReadFloatsInto(p->value.data().data(), p->value.size());
    CONFCARD_RETURN_NOT_OK(reader->status());
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace confcard
