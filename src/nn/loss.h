// Training losses. Each returns the mean loss over the batch and fills
// `grad` with dLoss/dPrediction (already divided by the batch size so
// layers can consume it directly).
#ifndef CONFCARD_NN_LOSS_H_
#define CONFCARD_NN_LOSS_H_

#include <cstddef>
#include <vector>

#include "nn/tensor.h"

namespace confcard {
namespace nn {

/// Mean squared error over (batch, 1) predictions.
double MseLoss(const Tensor& pred, const std::vector<float>& target,
               Tensor* grad);

/// Pinball (quantile) loss at level tau in (0, 1): the loss minimized by
/// the CQR quantile heads. loss = mean(max(tau*e, (tau-1)*e)) with
/// e = target - pred.
double PinballLoss(const Tensor& pred, const std::vector<float>& target,
                   double tau, Tensor* grad);

/// Smooth q-error surrogate on log-cardinality predictions:
/// loss = mean(exp(min(|pred - target|, cap))) which is monotone in the
/// q-error exp(|pred - target|). `cap` bounds the gradient magnitude for
/// stability (MSCN's published training minimizes mean q-error; this is
/// its log-space equivalent).
double QErrorLogLoss(const Tensor& pred, const std::vector<float>& target,
                     Tensor* grad, double cap = 8.0);

/// Per-block softmax cross entropy for autoregressive models: `logits`
/// is (batch, total_dim) where columns are partitioned into blocks
/// (`block_offsets[i]`..`block_offsets[i+1]`), one block per attribute;
/// `targets[b][i]` is the true class within block i for batch row b.
/// Returns mean (over batch) of summed per-block CE; grad = softmax - 1.
double BlockSoftmaxCrossEntropy(const Tensor& logits,
                                const std::vector<size_t>& block_offsets,
                                const std::vector<std::vector<int>>& targets,
                                Tensor* grad);

/// Softmax of one logit block, written into `probs` (length = block
/// size). Shared by loss computation and Naru's progressive sampling.
void SoftmaxRow(const float* logits, size_t n, float* probs);

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_LOSS_H_
