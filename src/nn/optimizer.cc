#include "nn/optimizer.h"

#include <cmath>

#include "obs/metrics.h"

namespace confcard {
namespace nn {

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->grad.Fill(0.0f);
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.push_back(Tensor::Zeros(p->value.rows(), p->value.cols()));
  }
}

Sgd::~Sgd() {
  if (steps_ > 0) {
    obs::Metrics().GetCounter("nn.sgd.steps").Increment(
        static_cast<uint64_t>(steps_));
  }
}

void Sgd::Step() {
  ++steps_;
  const float lr = static_cast<float>(lr_);
  const float mom = static_cast<float>(momentum_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    auto& vel = velocity_[i].data();
    auto& g = p->grad.data();
    auto& w = p->value.data();
    for (size_t j = 0; j < w.size(); ++j) {
      vel[j] = mom * vel[j] - lr * g[j];
      w[j] += vel[j];
      g[j] = 0.0f;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(Tensor::Zeros(p->value.rows(), p->value.cols()));
    v_.push_back(Tensor::Zeros(p->value.rows(), p->value.cols()));
  }
}

Adam::~Adam() {
  if (t_ > 0) {
    obs::Metrics().GetCounter("nn.adam.steps").Increment(
        static_cast<uint64_t>(t_));
  }
}

void Adam::Step() {
  ++t_;
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(eps_);
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = static_cast<float>(lr_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    auto& m = m_[i].data();
    auto& v = v_[i].data();
    auto& g = p->grad.data();
    auto& w = p->value.data();
    for (size_t j = 0; j < w.size(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      float mhat = m[j] / bc1;
      float vhat = v[j] / bc2;
      w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
      g[j] = 0.0f;
    }
  }
}

}  // namespace nn
}  // namespace confcard
