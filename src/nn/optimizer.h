// First-order optimizers over Parameter lists.
#ifndef CONFCARD_NN_OPTIMIZER_H_
#define CONFCARD_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layers.h"

namespace confcard {
namespace nn {

/// Optimizer interface: Step consumes accumulated gradients (and zeroes
/// them) for the parameters registered at construction.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void Step() = 0;
  /// Zeroes all gradients without applying them.
  void ZeroGrad();

 protected:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  std::vector<Parameter*> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0);
  /// Flushes the step count to the "nn.sgd.steps" registry counter.
  /// Deferred to destruction: Step() is too hot for even a relaxed
  /// atomic without measurable wall-time impact.
  ~Sgd() override;
  void Step() override;

 private:
  double lr_;
  double momentum_;
  int64_t steps_ = 0;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  /// Flushes the step count to the "nn.adam.steps" registry counter
  /// (see ~Sgd for why this is not done per Step).
  ~Adam() override;
  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_OPTIMIZER_H_
