#include "nn/arena.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <unordered_map>
#include <vector>

namespace confcard {
namespace nn {
namespace {

bool ResolveEnabled() {
  const char* env = std::getenv("CONFCARD_ARENA");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
           std::strcmp(env, "false") == 0);
}

// One per thread. The alive flag guards against releases that arrive
// during/after thread_local destruction (e.g. a static Tensor destroyed
// after the cache): Get() returns nullptr once the cache is gone and
// callers fall through to plain delete.
struct ThreadCache {
  std::unordered_map<size_t, std::vector<void*>> free_lists;
  size_t cached_bytes = 0;
  size_t cached_buffers = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t recycled = 0;
  bool* alive;

  explicit ThreadCache(bool* alive_flag) : alive(alive_flag) {
    *alive = true;
  }
  ~ThreadCache() {
    *alive = false;
    FreeAll();
  }

  void FreeAll() noexcept {
    for (auto& [bytes, list] : free_lists) {
      for (void* p : list) ::operator delete(p);
    }
    free_lists.clear();
    cached_bytes = 0;
    cached_buffers = 0;
  }
};

ThreadCache* Get() {
  thread_local bool alive = false;
  thread_local ThreadCache cache(&alive);
  return alive ? &cache : nullptr;
}

}  // namespace

bool ArenaEnabled() {
  static const bool enabled = ResolveEnabled();
  return enabled;
}

void* ArenaAllocate(size_t bytes) {
  // Sub-minimum requests share one kArenaMinBytes size class instead of
  // bypassing to malloc: batched inference produces a sub-256B output
  // tensor (batch x 1 floats) EVERY cycle, and the serving front-end's
  // zero-alloc contract counts malloc's fast path all the same. The
  // round-up also means all small sizes hit one warm free-list.
  const size_t key = bytes < kArenaMinBytes ? kArenaMinBytes : bytes;
  if (ArenaEnabled()) {
    if (ThreadCache* cache = Get()) {
      auto it = cache->free_lists.find(key);
      if (it != cache->free_lists.end() && !it->second.empty()) {
        void* p = it->second.back();
        it->second.pop_back();
        cache->cached_bytes -= key;
        --cache->cached_buffers;
        ++cache->hits;
        return p;
      }
      ++cache->misses;
    }
  }
  return ::operator new(key);
}

void ArenaRelease(void* ptr, size_t bytes) noexcept {
  if (ptr == nullptr) return;
  const size_t key = bytes < kArenaMinBytes ? kArenaMinBytes : bytes;
  if (ArenaEnabled()) {
    if (ThreadCache* cache = Get()) {
      if (cache->cached_bytes + key <= kArenaMaxCachedBytes) {
        cache->free_lists[key].push_back(ptr);
        cache->cached_bytes += key;
        ++cache->cached_buffers;
        ++cache->recycled;
        return;
      }
    }
  }
  ::operator delete(ptr);
}

void ArenaTrim() noexcept {
  if (ThreadCache* cache = Get()) cache->FreeAll();
}

ArenaStats ArenaThreadStats() {
  ArenaStats stats;
  if (ThreadCache* cache = Get()) {
    stats.hits = cache->hits;
    stats.misses = cache->misses;
    stats.recycled = cache->recycled;
    stats.cached_bytes = cache->cached_bytes;
    stats.cached_buffers = cache->cached_buffers;
  }
  return stats;
}

}  // namespace nn
}  // namespace confcard
