// Thread-local buffer-reuse arena backing FloatBuffer (tensor.h).
//
// PR 7's profiler measured ~7.7 MB of Tensor temporaries per training
// epoch (~9.1 GB per full run): every MatMul/forward/backward allocates
// its output, uses it once, and frees it, and once folds train
// concurrently those frees all contend on the global allocator — part
// of the +15% allocation growth and 9x involuntary context switches at
// 4 threads (docs/PERFORMANCE.md). The fix exploits how regular the
// traffic is: a training step allocates the SAME byte sizes every
// iteration (batch x hidden activations, weight-shaped gradients), so a
// per-thread free-list keyed by exact byte size turns steady-state
// tensor allocation into a pop from a thread-local vector — no lock, no
// malloc, no cross-thread traffic.
//
// This is deliberately a recycling cache, NOT a bump arena: Tensor
// lifetimes are mixed (model weights live for a whole run, activations
// for one statement), and a pointer-resetting arena would need an
// epoch-scoped ownership discipline the tensor code doesn't have.
// Recycling gives the same "stop fighting the global allocator" win
// with drop-in std::vector semantics and no lifetime rules.
//
// Bounds and lifecycle:
//   * Each thread caches at most kArenaMaxCachedBytes (64 MB); releases
//     beyond the cap fall through to operator delete.
//   * Requests below kArenaMinBytes (256 B) are rounded up to one
//     shared 256 B size class: the serving hot path emits a sub-256B
//     prediction tensor (batch x 1) every micro-batch, and its
//     zero-allocation contract counts malloc's small-size fast path
//     like any other allocation. The round-up costs < 256 B of slack
//     per cached buffer and lets all small sizes reuse one warm list.
//   * ArenaTrim() frees the calling thread's cache; the training epoch
//     loops call it at epoch boundaries so memory parked in the cache
//     never outlives the phase that shaped it.
//   * CONFCARD_ARENA=off disables recycling (every call falls through
//     to new/delete) — use under ASan, where recycling would mask
//     use-after-free of tensor storage.
//
// Values are unaffected by construction: the arena only changes WHERE
// uninitialized storage comes from, never its contents' computation
// order, so the bit-identity contract is untouched.
#ifndef CONFCARD_NN_ARENA_H_
#define CONFCARD_NN_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace confcard {
namespace nn {

/// Per-thread cache cap; releases past it go straight to the allocator.
inline constexpr size_t kArenaMaxCachedBytes = size_t{64} << 20;

/// Requests smaller than this are rounded up to this shared size class.
inline constexpr size_t kArenaMinBytes = 256;

/// Returns a buffer of exactly `bytes` bytes — recycled from this
/// thread's cache when one of that size is parked there, freshly
/// allocated otherwise. Contents are unspecified.
void* ArenaAllocate(size_t bytes);

/// Returns a buffer obtained from ArenaAllocate with the same `bytes`.
/// Parks it in this thread's cache (for any thread — buffers may be
/// released on a different thread than they were allocated on) or frees
/// it when the cache is full, the arena is disabled, or the thread is
/// shutting down.
void ArenaRelease(void* ptr, size_t bytes) noexcept;

/// Frees everything parked in the CALLING thread's cache. Called at
/// training epoch boundaries; safe anytime — outstanding buffers are
/// unaffected, only idle ones are returned to the allocator.
void ArenaTrim() noexcept;

/// False when CONFCARD_ARENA=off/0/false disabled recycling.
bool ArenaEnabled();

/// Counters for the calling thread's cache (tests and benches).
struct ArenaStats {
  uint64_t hits = 0;      // ArenaAllocate served from the cache
  uint64_t misses = 0;    // ArenaAllocate fell through to operator new
  uint64_t recycled = 0;  // ArenaRelease parked the buffer
  size_t cached_bytes = 0;
  size_t cached_buffers = 0;
};
ArenaStats ArenaThreadStats();

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_ARENA_H_
