#include "nn/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace confcard {
namespace nn {
namespace {

bool EnvDisablesSimd() {
  const char* env = std::getenv("CONFCARD_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "false") == 0 || std::strcmp(env, "scalar") == 0;
}

// -1 = unresolved, 0 = scalar, 1 = vector. Resolved lazily so the env
// var is honored no matter how early the first kernel runs.
std::atomic<int> g_simd_enabled{-1};

}  // namespace

bool SimdCompiledIn() { return simd::kHaveNativeLanes; }

bool SimdEnabled() {
  int v = g_simd_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = (simd::kHaveNativeLanes && !EnvDisablesSimd()) ? 1 : 0;
    g_simd_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetSimdEnabled(bool on) {
  g_simd_enabled.store(on && simd::kHaveNativeLanes ? 1 : 0,
                       std::memory_order_relaxed);
}

const char* SimdIsaName() { return simd::kSimdIsaName; }

size_t SimdLaneWidth() { return simd::NativeLanes::kWidth; }

}  // namespace nn
}  // namespace confcard
