#include "nn/tensor.h"

#include <cmath>

#include "common/check.h"

namespace confcard {
namespace nn {

Tensor::Tensor(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Tensor Tensor::Randn(size_t rows, size_t cols, float stddev, Rng& rng) {
  Tensor t(rows, cols);
  for (float& v : t.data_) {
    v = stddev * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

Tensor Tensor::HeInit(size_t fan_in, size_t fan_out, Rng& rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Randn(fan_in, fan_out, stddev, rng);
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::Add(const Tensor& other) {
  CONFCARD_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float s) {
  for (float& v : data_) v *= s;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CONFCARD_DCHECK(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.RowPtr(p);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  CONFCARD_DCHECK(a.rows() == b.rows());
  Tensor c(a.cols(), b.cols());
  const size_t k = a.rows(), n = a.cols(), m = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.RowPtr(p);
    const float* brow = b.RowPtr(p);
    for (size_t i = 0; i < n; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.RowPtr(i);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  CONFCARD_DCHECK(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows());
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (size_t j = 0; j < m; ++j) {
      const float* brow = b.RowPtr(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

}  // namespace nn
}  // namespace confcard
