#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/parallel.h"
#include "nn/simd.h"

namespace confcard {
namespace nn {

Tensor::Tensor(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Tensor Tensor::Uninitialized(size_t rows, size_t cols) {
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_.resize(rows * cols);  // default-init allocator: no zero-fill
  return t;
}

Tensor Tensor::Randn(size_t rows, size_t cols, float stddev, Rng& rng) {
  Tensor t = Uninitialized(rows, cols);
  for (float& v : t.data_) {
    v = stddev * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

Tensor Tensor::HeInit(size_t fan_in, size_t fan_out, Rng& rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Randn(fan_in, fan_out, stddev, rng);
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::Add(const Tensor& other) {
  CONFCARD_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float s) {
  for (float& v : data_) v *= s;
}

namespace {

// Products smaller than this many flops run serially: pool dispatch
// costs a few microseconds, which swamps tiny GEMMs (e.g. single-query
// inference rows).
constexpr size_t kMinFlopsToParallelize = size_t{1} << 18;

// Output-row chunk aligned to the 4-row micro block, so the grouping of
// rows into blocks — and therefore the zero-block skip decisions — is
// identical at every thread count.
size_t RowChunk(size_t rows) {
  const size_t threads = static_cast<size_t>(std::max(1, CurrentThreads()));
  size_t chunk = std::max<size_t>(1, rows / (threads * 4));
  return (chunk + 3) & ~size_t{3};
}

template <typename Kernel>
void ForEachRowBlock(size_t rows, size_t flops, const Kernel& kernel) {
  if (flops >= kMinFlopsToParallelize && rows >= 8) {
    ParallelFor(rows, RowChunk(rows), kernel);
  } else {
    kernel(0, rows);
  }
}

// C[r0:r1) = A[r0:r1) * B. Four output rows share one streaming pass
// over B; each row's element is still a p-ascending sum, so values are
// bit-identical to the single-row loop. The zero test skips fully-zero
// blocks of A (one-hot Naru inputs), matching the naive kernel's
// per-row skip exactly for finite B.
void MatMulRows(const Tensor& a, const Tensor& b, Tensor* c, size_t r0,
                size_t r1) {
  const size_t k = a.cols(), m = b.cols();
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    const float* a0 = a.RowPtr(i);
    const float* a1 = a.RowPtr(i + 1);
    const float* a2 = a.RowPtr(i + 2);
    const float* a3 = a.RowPtr(i + 3);
    float* c0 = c->RowPtr(i);
    float* c1 = c->RowPtr(i + 1);
    float* c2 = c->RowPtr(i + 2);
    float* c3 = c->RowPtr(i + 3);
    std::memset(c0, 0, 4 * m * sizeof(float));  // rows are contiguous
    for (size_t p = 0; p < k; ++p) {
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
      const float* brow = b.RowPtr(p);
      for (size_t j = 0; j < m; ++j) {
        const float bj = brow[j];
        c0[j] += v0 * bj;
        c1[j] += v1 * bj;
        c2[j] += v2 * bj;
        c3[j] += v3 * bj;
      }
    }
  }
  for (; i < r1; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c->RowPtr(i);
    std::memset(crow, 0, m * sizeof(float));
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.RowPtr(p);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[r0:r1) of C = A^T * B: output row i reads column i of A. Blocked
// four columns at a time so B streams once per block; per-element sums
// stay p-ascending, matching the p-outer naive loop bit for bit.
void MatMulTransARows(const Tensor& a, const Tensor& b, Tensor* c, size_t r0,
                      size_t r1) {
  const size_t k = a.rows(), m = b.cols();
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    float* c0 = c->RowPtr(i);
    float* c1 = c->RowPtr(i + 1);
    float* c2 = c->RowPtr(i + 2);
    float* c3 = c->RowPtr(i + 3);
    std::memset(c0, 0, 4 * m * sizeof(float));
    for (size_t p = 0; p < k; ++p) {
      const float* arow = a.RowPtr(p);
      const float v0 = arow[i], v1 = arow[i + 1], v2 = arow[i + 2],
                  v3 = arow[i + 3];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
      const float* brow = b.RowPtr(p);
      for (size_t j = 0; j < m; ++j) {
        const float bj = brow[j];
        c0[j] += v0 * bj;
        c1[j] += v1 * bj;
        c2[j] += v2 * bj;
        c3[j] += v3 * bj;
      }
    }
  }
  for (; i < r1; ++i) {
    float* crow = c->RowPtr(i);
    std::memset(crow, 0, m * sizeof(float));
    for (size_t p = 0; p < k; ++p) {
      const float av = a.At(p, i);
      if (av == 0.0f) continue;
      const float* brow = b.RowPtr(p);
      for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[r0:r1) of C = A * B^T: independent dot products; four B rows share
// one streaming pass over the A row. Accumulators are per-element, so
// the j-blocking cannot change any value.
void MatMulTransBRows(const Tensor& a, const Tensor& b, Tensor* c, size_t r0,
                      size_t r1) {
  const size_t k = a.cols(), m = b.rows();
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c->RowPtr(i);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      const float* b0 = b.RowPtr(j);
      const float* b1 = b.RowPtr(j + 1);
      const float* b2 = b.RowPtr(j + 2);
      const float* b3 = b.RowPtr(j + 3);
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        acc0 += av * b0[p];
        acc1 += av * b1[p];
        acc2 += av * b2[p];
        acc3 += av * b3[p];
      }
      crow[j] = acc0;
      crow[j + 1] = acc1;
      crow[j + 2] = acc2;
      crow[j + 3] = acc3;
    }
    for (; j < m; ++j) {
      const float* brow = b.RowPtr(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

// ---------------------------------------------------------------------
// Vector variants. Bit identity with the scalar kernels above rests on
// two invariants: (1) vector lanes only span independent OUTPUT columns
// (the j dimension), so every output element still accumulates its
// p-terms one at a time in ascending p order with one rounding per
// mul and per add (simd.h lane ops never fuse); (2) the outer blocking
// — 4-row micro blocks and their zero-skip tests in MatMul/MatMulTransA
// — is copied verbatim from the scalar kernels, so exactly the same
// terms are skipped. Guarded by `if constexpr (kHaveNativeLanes)` at
// the dispatch sites so scalar-only builds never instantiate them.
// ---------------------------------------------------------------------

// Broadcast-row inner sweep shared by the MatMul and MatMulTransA
// vector kernels: c{0..3}[j..j+W) += v{0..3} * brow[j..j+W), j-tail
// scalar. Identical arithmetic per element to the scalar j-loop.
template <typename L>
inline void AccumulateBlock4(const float* brow, size_t m, float v0, float v1,
                             float v2, float v3, float* c0, float* c1,
                             float* c2, float* c3) {
  constexpr size_t W = L::kWidth;
  const typename L::Vec bv0 = L::Broadcast(v0);
  const typename L::Vec bv1 = L::Broadcast(v1);
  const typename L::Vec bv2 = L::Broadcast(v2);
  const typename L::Vec bv3 = L::Broadcast(v3);
  size_t j = 0;
  for (; j + W <= m; j += W) {
    const typename L::Vec bj = L::Load(brow + j);
    L::Store(c0 + j, L::Add(L::Load(c0 + j), L::Mul(bv0, bj)));
    L::Store(c1 + j, L::Add(L::Load(c1 + j), L::Mul(bv1, bj)));
    L::Store(c2 + j, L::Add(L::Load(c2 + j), L::Mul(bv2, bj)));
    L::Store(c3 + j, L::Add(L::Load(c3 + j), L::Mul(bv3, bj)));
  }
  for (; j < m; ++j) {
    const float bj = brow[j];
    c0[j] += v0 * bj;
    c1[j] += v1 * bj;
    c2[j] += v2 * bj;
    c3[j] += v3 * bj;
  }
}

template <typename L>
inline void AccumulateRow(const float* brow, size_t m, float av, float* crow) {
  constexpr size_t W = L::kWidth;
  const typename L::Vec bav = L::Broadcast(av);
  size_t j = 0;
  for (; j + W <= m; j += W) {
    L::Store(crow + j, L::Add(L::Load(crow + j), L::Mul(bav, L::Load(brow + j))));
  }
  for (; j < m; ++j) crow[j] += av * brow[j];
}

template <typename L>
void MatMulRowsVec(const Tensor& a, const Tensor& b, Tensor* c, size_t r0,
                   size_t r1) {
  const size_t k = a.cols(), m = b.cols();
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    const float* a0 = a.RowPtr(i);
    const float* a1 = a.RowPtr(i + 1);
    const float* a2 = a.RowPtr(i + 2);
    const float* a3 = a.RowPtr(i + 3);
    float* c0 = c->RowPtr(i);
    float* c1 = c->RowPtr(i + 1);
    float* c2 = c->RowPtr(i + 2);
    float* c3 = c->RowPtr(i + 3);
    std::memset(c0, 0, 4 * m * sizeof(float));
    for (size_t p = 0; p < k; ++p) {
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
      AccumulateBlock4<L>(b.RowPtr(p), m, v0, v1, v2, v3, c0, c1, c2, c3);
    }
  }
  for (; i < r1; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c->RowPtr(i);
    std::memset(crow, 0, m * sizeof(float));
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      AccumulateRow<L>(b.RowPtr(p), m, av, crow);
    }
  }
}

template <typename L>
void MatMulTransARowsVec(const Tensor& a, const Tensor& b, Tensor* c,
                         size_t r0, size_t r1) {
  const size_t k = a.rows(), m = b.cols();
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    float* c0 = c->RowPtr(i);
    float* c1 = c->RowPtr(i + 1);
    float* c2 = c->RowPtr(i + 2);
    float* c3 = c->RowPtr(i + 3);
    std::memset(c0, 0, 4 * m * sizeof(float));
    for (size_t p = 0; p < k; ++p) {
      const float* arow = a.RowPtr(p);
      const float v0 = arow[i], v1 = arow[i + 1], v2 = arow[i + 2],
                  v3 = arow[i + 3];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
      AccumulateBlock4<L>(b.RowPtr(p), m, v0, v1, v2, v3, c0, c1, c2, c3);
    }
  }
  for (; i < r1; ++i) {
    float* crow = c->RowPtr(i);
    std::memset(crow, 0, m * sizeof(float));
    for (size_t p = 0; p < k; ++p) {
      const float av = a.At(p, i);
      if (av == 0.0f) continue;
      AccumulateRow<L>(b.RowPtr(p), m, av, crow);
    }
  }
}

// Dot-product kernel: W independent accumulator lanes, one per output
// column j..j+W. For each W-wide strip of p, LoadTransposed turns the
// W x W tile of B (rows j.., cols p..) into W column vectors so lane t
// receives B[j+t][p] — each lane's sum is still one term per p in
// ascending order, exactly the scalar accumulator's sequence. The
// p-tail spills the vector accumulator and continues scalar per lane,
// preserving that order; the j-tail is the scalar dot product.
template <typename L>
void MatMulTransBRowsVec(const Tensor& a, const Tensor& b, Tensor* c,
                         size_t r0, size_t r1) {
  constexpr size_t W = L::kWidth;
  const size_t k = a.cols(), m = b.rows();
  const size_t bstride = b.cols();  // == k
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c->RowPtr(i);
    size_t j = 0;
    for (; j + W <= m; j += W) {
      const float* btile = b.RowPtr(j);
      typename L::Vec acc = L::Zero();
      typename L::Vec bcols[W];
      size_t p = 0;
      for (; p + W <= k; p += W) {
        L::LoadTransposed(btile + p, bstride, bcols);
        for (size_t t = 0; t < W; ++t) {
          acc = L::Add(acc, L::Mul(L::Broadcast(arow[p + t]), bcols[t]));
        }
      }
      if (p < k) {
        alignas(32) float accs[W];
        L::Store(accs, acc);
        for (size_t t = 0; t < W; ++t) {
          const float* brow = btile + t * bstride;
          float lane = accs[t];
          for (size_t q = p; q < k; ++q) lane += arow[q] * brow[q];
          crow[j + t] = lane;
        }
      } else {
        L::Store(crow + j, acc);
      }
    }
    for (; j < m; ++j) {
      const float* brow = b.RowPtr(j);
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CONFCARD_DCHECK(a.cols() == b.rows());
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  Tensor c = Tensor::Uninitialized(n, m);
  if constexpr (simd::kHaveNativeLanes) {
    if (SimdEnabled()) {
      ForEachRowBlock(n, 2 * n * k * m, [&](size_t r0, size_t r1) {
        MatMulRowsVec<simd::NativeLanes>(a, b, &c, r0, r1);
      });
      return c;
    }
  }
  ForEachRowBlock(n, 2 * n * k * m, [&](size_t r0, size_t r1) {
    MatMulRows(a, b, &c, r0, r1);
  });
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  CONFCARD_DCHECK(a.rows() == b.rows());
  const size_t k = a.rows(), n = a.cols(), m = b.cols();
  Tensor c = Tensor::Uninitialized(n, m);
  if constexpr (simd::kHaveNativeLanes) {
    if (SimdEnabled()) {
      ForEachRowBlock(n, 2 * n * k * m, [&](size_t r0, size_t r1) {
        MatMulTransARowsVec<simd::NativeLanes>(a, b, &c, r0, r1);
      });
      return c;
    }
  }
  ForEachRowBlock(n, 2 * n * k * m, [&](size_t r0, size_t r1) {
    MatMulTransARows(a, b, &c, r0, r1);
  });
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  CONFCARD_DCHECK(a.cols() == b.cols());
  const size_t n = a.rows(), k = a.cols(), m = b.rows();
  Tensor c = Tensor::Uninitialized(n, m);
  if constexpr (simd::kHaveNativeLanes) {
    if (SimdEnabled()) {
      ForEachRowBlock(n, 2 * n * k * m, [&](size_t r0, size_t r1) {
        MatMulTransBRowsVec<simd::NativeLanes>(a, b, &c, r0, r1);
      });
      return c;
    }
  }
  ForEachRowBlock(n, 2 * n * k * m, [&](size_t r0, size_t r1) {
    MatMulTransBRows(a, b, &c, r0, r1);
  });
  return c;
}

}  // namespace nn
}  // namespace confcard
