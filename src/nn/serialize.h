// Parameter (de)serialization for any Layer: shape-prefixed float blobs
// in declaration order. The architecture itself is not stored — callers
// reconstruct it from their own config and then restore parameters,
// which keeps archives small and forward-compatible with config structs.
#ifndef CONFCARD_NN_SERIALIZE_H_
#define CONFCARD_NN_SERIALIZE_H_

#include "common/archive.h"
#include "nn/layers.h"

namespace confcard {
namespace nn {

/// Writes every parameter of `layer` (values only, not gradients).
void SerializeParameters(Layer& layer, ArchiveWriter* writer);

/// Restores parameters into an identically-shaped `layer`; fails on any
/// count or shape mismatch.
Status DeserializeParameters(Layer& layer, ArchiveReader* reader);

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_SERIALIZE_H_
