#include "nn/layers.h"

#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "nn/simd.h"

namespace confcard {
namespace nn {
namespace {

void AddBiasRows(Tensor* out, const Parameter& bias) {
  const float* b = bias.value.RowPtr(0);
  for (size_t r = 0; r < out->rows(); ++r) {
    float* row = out->RowPtr(r);
    for (size_t c = 0; c < out->cols(); ++c) row[c] += b[c];
  }
}

// out = in * W + b, shared by the Forward and Apply paths of the dense
// layers (the weight is identical; only activation caching differs).
Tensor LinearForward(const Tensor& input, const Parameter& weight,
                     const Parameter& bias) {
  Tensor out = MatMul(input, weight.value);
  AddBiasRows(&out, bias);
  return out;
}

// Same parallelization threshold as the GEMM kernels (tensor.cc): below
// this many flops pool dispatch costs more than it saves. Rows are
// independent, so fanning them out cannot change any value.
constexpr size_t kMinFlopsToParallelize = size_t{1} << 18;

template <typename Kernel>
void ForEachRow(size_t rows, size_t flops, const Kernel& kernel) {
  if (flops >= kMinFlopsToParallelize && rows >= 8) {
    ParallelFor(rows, 0, kernel);
  } else {
    kernel(0, rows);
  }
}

// Vector j-sweeps for the engine-only forward paths below. Same
// bit-identity rule as the tensor.cc kernels: lanes span independent
// output columns, each element keeps its scalar accumulation sequence
// (one rounding per op, tails scalar).

// orow[0:m) += wrow[0:m).
template <typename L>
inline void AddRowVec(const float* wrow, size_t m, float* orow) {
  constexpr size_t W = L::kWidth;
  size_t j = 0;
  for (; j + W <= m; j += W) {
    L::Store(orow + j, L::Add(L::Load(orow + j), L::Load(wrow + j)));
  }
  for (; j < m; ++j) orow[j] += wrow[j];
}

// orow[0:m) += av * wrow[0:m).
template <typename L>
inline void AddScaledRowVec(const float* wrow, size_t m, float av,
                            float* orow) {
  constexpr size_t W = L::kWidth;
  const typename L::Vec bav = L::Broadcast(av);
  size_t j = 0;
  for (; j + W <= m; j += W) {
    L::Store(orow + j,
             L::Add(L::Load(orow + j), L::Mul(bav, L::Load(wrow + j))));
  }
  for (; j < m; ++j) orow[j] += av * wrow[j];
}

// out[r] = sum over the row's set indices p (ascending) of W[p, c0:c1),
// then + bias — the exact accumulation sequence the dense GEMM performs
// on the equivalent one-hot tensor (1.0f * w == w, and skipped zero
// terms cannot perturb an accumulator that is never -0.0), restricted to
// the requested output columns.
template <typename L>
Tensor OneHotForwardColsImpl(const SparseRows& input, const Parameter& weight,
                             const Parameter& bias, size_t c0, size_t c1) {
  const size_t m = c1 - c0;
  size_t nnz_total = input.rows == 0 ? 0 : input.row_offsets[input.rows];
  Tensor out = Tensor::Uninitialized(input.rows, m);
  ForEachRow(input.rows, 2 * nnz_total * m, [&](size_t r0, size_t r1) {
    const float* brow = bias.value.RowPtr(0) + c0;
    for (size_t r = r0; r < r1; ++r) {
      float* orow = out.RowPtr(r);
      std::memset(orow, 0, m * sizeof(float));
      const uint32_t* idx = input.RowIndices(r);
      const size_t nnz = input.RowNnz(r);
      for (size_t t = 0; t < nnz; ++t) {
        AddRowVec<L>(weight.value.RowPtr(idx[t]) + c0, m, orow);
      }
      AddRowVec<L>(brow, m, orow);
    }
  });
  return out;
}

Tensor OneHotForwardCols(const SparseRows& input, const Parameter& weight,
                         const Parameter& bias, size_t c0, size_t c1) {
  if constexpr (simd::kHaveNativeLanes) {
    if (SimdEnabled()) {
      return OneHotForwardColsImpl<simd::NativeLanes>(input, weight, bias, c0,
                                                      c1);
    }
  }
  // The W=1 instantiation is the scalar reference loop, unchanged.
  return OneHotForwardColsImpl<simd::ScalarLanes>(input, weight, bias, c0, c1);
}

// Dense forward restricted to output columns [c0, c1): per element a
// p-ascending sum with the same zero-input skip as the GEMM kernels,
// then + bias — bit-identical to the corresponding slice of
// LinearForward for finite weights.
template <typename L>
Tensor DenseForwardColsImpl(const Tensor& input, const Parameter& weight,
                            const Parameter& bias, size_t c0, size_t c1) {
  const size_t k = input.cols(), m = c1 - c0;
  Tensor out = Tensor::Uninitialized(input.rows(), m);
  ForEachRow(input.rows(), 2 * input.rows() * k * m,
             [&](size_t r0, size_t r1) {
               const float* brow = bias.value.RowPtr(0) + c0;
               for (size_t r = r0; r < r1; ++r) {
                 const float* arow = input.RowPtr(r);
                 float* orow = out.RowPtr(r);
                 std::memset(orow, 0, m * sizeof(float));
                 for (size_t p = 0; p < k; ++p) {
                   const float av = arow[p];
                   if (av == 0.0f) continue;
                   AddScaledRowVec<L>(weight.value.RowPtr(p) + c0, m, av,
                                      orow);
                 }
                 AddRowVec<L>(brow, m, orow);
               }
             });
  return out;
}

Tensor DenseForwardCols(const Tensor& input, const Parameter& weight,
                        const Parameter& bias, size_t c0, size_t c1) {
  if constexpr (simd::kHaveNativeLanes) {
    if (SimdEnabled()) {
      return DenseForwardColsImpl<simd::NativeLanes>(input, weight, bias, c0,
                                                     c1);
    }
  }
  return DenseForwardColsImpl<simd::ScalarLanes>(input, weight, bias, c0, c1);
}

}  // namespace

Dense::Dense(size_t in_dim, size_t out_dim, Rng& rng) {
  weight_.value = Tensor::HeInit(in_dim, out_dim, rng);
  weight_.grad = Tensor::Zeros(in_dim, out_dim);
  bias_.value = Tensor::Zeros(1, out_dim);
  bias_.grad = Tensor::Zeros(1, out_dim);
}

Tensor Dense::Forward(const Tensor& input) {
  CONFCARD_DCHECK(input.cols() == weight_.value.rows());
  input_ = input;
  return LinearForward(input, weight_, bias_);
}

Tensor Dense::Apply(const Tensor& input) const {
  CONFCARD_DCHECK(input.cols() == weight_.value.rows());
  return LinearForward(input, weight_, bias_);
}

namespace {

// The fused bias(+ReLU) sweep of ApplyActivated. L::Relu reproduces the
// scalar `v < 0.0f ? 0.0f : v` clamp exactly (including -0.0 and NaN;
// see simd.h), so the vector sweep is bit-identical to the scalar one.
template <typename L>
void BiasActivateRows(Tensor* out, const float* b, bool relu) {
  constexpr size_t W = L::kWidth;
  const size_t m = out->cols();
  for (size_t r = 0; r < out->rows(); ++r) {
    float* row = out->RowPtr(r);
    size_t c = 0;
    if (relu) {
      for (; c + W <= m; c += W) {
        L::Store(row + c, L::Relu(L::Add(L::Load(row + c), L::Load(b + c))));
      }
      for (; c < m; ++c) {
        const float v = row[c] + b[c];
        row[c] = v < 0.0f ? 0.0f : v;
      }
    } else {
      for (; c + W <= m; c += W) {
        L::Store(row + c, L::Add(L::Load(row + c), L::Load(b + c)));
      }
      for (; c < m; ++c) row[c] += b[c];
    }
  }
}

}  // namespace

Tensor Dense::ApplyActivated(const Tensor& input, bool relu) const {
  CONFCARD_DCHECK(input.cols() == weight_.value.rows());
  Tensor out = MatMul(input, weight_.value);
  const float* b = bias_.value.RowPtr(0);
  if constexpr (simd::kHaveNativeLanes) {
    if (SimdEnabled()) {
      BiasActivateRows<simd::NativeLanes>(&out, b, relu);
      return out;
    }
  }
  BiasActivateRows<simd::ScalarLanes>(&out, b, relu);
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  CONFCARD_DCHECK(grad_output.rows() == input_.rows());
  weight_.grad.Add(MatMulTransA(input_, grad_output));
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    const float* row = grad_output.RowPtr(r);
    float* b = bias_.grad.RowPtr(0);
    for (size_t c = 0; c < grad_output.cols(); ++c) b[c] += row[c];
  }
  return MatMulTransB(grad_output, weight_.value);
}

std::vector<Parameter*> Dense::Parameters() { return {&weight_, &bias_}; }

MaskedDense::MaskedDense(size_t in_dim, size_t out_dim, Tensor mask, Rng& rng)
    : mask_(std::move(mask)) {
  CONFCARD_CHECK(mask_.rows() == in_dim && mask_.cols() == out_dim);
  weight_.value = Tensor::HeInit(in_dim, out_dim, rng);
  weight_.grad = Tensor::Zeros(in_dim, out_dim);
  bias_.value = Tensor::Zeros(1, out_dim);
  bias_.grad = Tensor::Zeros(1, out_dim);
  ApplyMaskToWeight();
}

void MaskedDense::ApplyMaskToWeight() {
  for (size_t i = 0; i < weight_.value.size(); ++i) {
    weight_.value.data()[i] *= mask_.data()[i];
  }
}

Tensor MaskedDense::Forward(const Tensor& input) {
  // The weight is kept masked at all times (see Backward), so a plain
  // dense forward suffices.
  input_ = input;
  return LinearForward(input, weight_, bias_);
}

Tensor MaskedDense::Apply(const Tensor& input) const {
  return LinearForward(input, weight_, bias_);
}

Tensor MaskedDense::ApplyOneHot(const SparseRows& input) const {
  CONFCARD_DCHECK(input.cols == weight_.value.rows());
  return OneHotForwardCols(input, weight_, bias_, 0, weight_.value.cols());
}

Tensor MaskedDense::ApplyOneHotCols(const SparseRows& input, size_t col_begin,
                                    size_t col_end) const {
  CONFCARD_DCHECK(input.cols == weight_.value.rows());
  CONFCARD_DCHECK(col_begin <= col_end && col_end <= weight_.value.cols());
  return OneHotForwardCols(input, weight_, bias_, col_begin, col_end);
}

Tensor MaskedDense::ApplyCols(const Tensor& input, size_t col_begin,
                              size_t col_end) const {
  CONFCARD_DCHECK(input.cols() == weight_.value.rows());
  CONFCARD_DCHECK(col_begin <= col_end && col_end <= weight_.value.cols());
  return DenseForwardCols(input, weight_, bias_, col_begin, col_end);
}

Tensor MaskedDense::Backward(const Tensor& grad_output) {
  Tensor wgrad = MatMulTransA(input_, grad_output);
  // Mask the gradient so optimizer steps never resurrect masked weights.
  for (size_t i = 0; i < wgrad.size(); ++i) {
    wgrad.data()[i] *= mask_.data()[i];
  }
  weight_.grad.Add(wgrad);
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    const float* row = grad_output.RowPtr(r);
    float* b = bias_.grad.RowPtr(0);
    for (size_t c = 0; c < grad_output.cols(); ++c) b[c] += row[c];
  }
  return MatMulTransB(grad_output, weight_.value);
}

std::vector<Parameter*> MaskedDense::Parameters() {
  return {&weight_, &bias_};
}

Tensor Relu::Forward(const Tensor& input) {
  input_ = input;
  return Apply(input);
}

Tensor Relu::Apply(const Tensor& input) const {
  Tensor out = input;
  for (float& v : out.data()) {
    if (v < 0.0f) v = 0.0f;
  }
  return out;
}

Tensor Relu::Apply(Tensor&& input) const {
  Tensor out = std::move(input);
  for (float& v : out.data()) {
    if (v < 0.0f) v = 0.0f;
  }
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  CONFCARD_DCHECK(grad_output.size() == input_.size());
  Tensor grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (input_.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  }
  return grad;
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Tensor Sequential::Apply(const Tensor& input) const {
  // The first layer reads `input` in place (no copy); later layers take
  // rvalues so in-place-capable layers (Relu) reuse the buffer. Values
  // are unchanged — only copies are elided.
  if (layers_.empty()) return input;
  Tensor x = layers_.front()->Apply(input);
  for (size_t i = 1; i < layers_.size(); ++i) {
    x = layers_[i]->Apply(std::move(x));
  }
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace nn
}  // namespace confcard
