#include "nn/layers.h"

#include "common/check.h"

namespace confcard {
namespace nn {
namespace {

// out = in * W + b, shared by the Forward and Apply paths of the dense
// layers (the weight is identical; only activation caching differs).
Tensor LinearForward(const Tensor& input, const Parameter& weight,
                     const Parameter& bias) {
  Tensor out = MatMul(input, weight.value);
  for (size_t r = 0; r < out.rows(); ++r) {
    float* row = out.RowPtr(r);
    const float* b = bias.value.RowPtr(0);
    for (size_t c = 0; c < out.cols(); ++c) row[c] += b[c];
  }
  return out;
}

}  // namespace

Dense::Dense(size_t in_dim, size_t out_dim, Rng& rng) {
  weight_.value = Tensor::HeInit(in_dim, out_dim, rng);
  weight_.grad = Tensor::Zeros(in_dim, out_dim);
  bias_.value = Tensor::Zeros(1, out_dim);
  bias_.grad = Tensor::Zeros(1, out_dim);
}

Tensor Dense::Forward(const Tensor& input) {
  CONFCARD_DCHECK(input.cols() == weight_.value.rows());
  input_ = input;
  return LinearForward(input, weight_, bias_);
}

Tensor Dense::Apply(const Tensor& input) const {
  CONFCARD_DCHECK(input.cols() == weight_.value.rows());
  return LinearForward(input, weight_, bias_);
}

Tensor Dense::Backward(const Tensor& grad_output) {
  CONFCARD_DCHECK(grad_output.rows() == input_.rows());
  weight_.grad.Add(MatMulTransA(input_, grad_output));
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    const float* row = grad_output.RowPtr(r);
    float* b = bias_.grad.RowPtr(0);
    for (size_t c = 0; c < grad_output.cols(); ++c) b[c] += row[c];
  }
  return MatMulTransB(grad_output, weight_.value);
}

std::vector<Parameter*> Dense::Parameters() { return {&weight_, &bias_}; }

MaskedDense::MaskedDense(size_t in_dim, size_t out_dim, Tensor mask, Rng& rng)
    : mask_(std::move(mask)) {
  CONFCARD_CHECK(mask_.rows() == in_dim && mask_.cols() == out_dim);
  weight_.value = Tensor::HeInit(in_dim, out_dim, rng);
  weight_.grad = Tensor::Zeros(in_dim, out_dim);
  bias_.value = Tensor::Zeros(1, out_dim);
  bias_.grad = Tensor::Zeros(1, out_dim);
  ApplyMaskToWeight();
}

void MaskedDense::ApplyMaskToWeight() {
  for (size_t i = 0; i < weight_.value.size(); ++i) {
    weight_.value.data()[i] *= mask_.data()[i];
  }
}

Tensor MaskedDense::Forward(const Tensor& input) {
  // The weight is kept masked at all times (see Backward), so a plain
  // dense forward suffices.
  input_ = input;
  return LinearForward(input, weight_, bias_);
}

Tensor MaskedDense::Apply(const Tensor& input) const {
  return LinearForward(input, weight_, bias_);
}

Tensor MaskedDense::Backward(const Tensor& grad_output) {
  Tensor wgrad = MatMulTransA(input_, grad_output);
  // Mask the gradient so optimizer steps never resurrect masked weights.
  for (size_t i = 0; i < wgrad.size(); ++i) {
    wgrad.data()[i] *= mask_.data()[i];
  }
  weight_.grad.Add(wgrad);
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    const float* row = grad_output.RowPtr(r);
    float* b = bias_.grad.RowPtr(0);
    for (size_t c = 0; c < grad_output.cols(); ++c) b[c] += row[c];
  }
  return MatMulTransB(grad_output, weight_.value);
}

std::vector<Parameter*> MaskedDense::Parameters() {
  return {&weight_, &bias_};
}

Tensor Relu::Forward(const Tensor& input) {
  input_ = input;
  return Apply(input);
}

Tensor Relu::Apply(const Tensor& input) const {
  Tensor out = input;
  for (float& v : out.data()) {
    if (v < 0.0f) v = 0.0f;
  }
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  CONFCARD_DCHECK(grad_output.size() == input_.size());
  Tensor grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    if (input_.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  }
  return grad;
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

Tensor Sequential::Apply(const Tensor& input) const {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->Apply(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace nn
}  // namespace confcard
