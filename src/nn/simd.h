// Portable SIMD lane abstraction for the float32 kernels in
// tensor.cc/layers.cc, plus the runtime controls the benches and tests
// use to compare scalar and vector paths in one binary.
//
// The bit-identity contract (docs/PERFORMANCE.md) shapes everything
// here: kernels may only vectorize across INDEPENDENT OUTPUT LANES
// (j-columns of a GEMM output, elementwise sweeps), never across the
// shared reduction dimension — each output element's p-ascending
// accumulation order must match the scalar kernel exactly. The lane ops
// are plain mul/add (no FMA: a fused multiply-add rounds once instead
// of twice and would change low bits), `Relu` reproduces
// `v < 0.0f ? 0.0f : v` including -0.0 and NaN behavior, and
// `LoadTransposed` turns a W x W tile of row-major memory into W column
// vectors so dot-product kernels (MatMulTransB) can broadcast one
// p-term at a time into W independent accumulator lanes.
//
// ISA selection is at compile time from the target the translation unit
// is built for:
//   * AVX2 (8 lanes) when __AVX2__ — the top-level CMakeLists probes the
//     build host and adds -mavx2 when it supports it (without -mfma, so
//     the compiler cannot contract mul+add into FMA).
//   * SSE2 (4 lanes) on any x86-64 build.
//   * NEON (4 lanes) on AArch64. 32-bit ARM NEON is deliberately NOT
//     used: ARMv7 NEON flushes denormals to zero, which breaks bit
//     identity with the scalar VFP path.
//   * Scalar (1 lane) otherwise, or when CONFCARD_SIMD=off at configure
//     time (which defines CONFCARD_SIMD_OFF and compiles the vector
//     paths out entirely).
//
// At runtime, SetSimdEnabled(false) (or the CONFCARD_SIMD=off
// environment variable) switches every kernel back to its scalar
// reference implementation — both paths live in the binary, which is
// what lets tests assert scalar-vs-SIMD bit identity and lets
// bench_parallel report honest scalar-vs-SIMD kernel numbers.
#ifndef CONFCARD_NN_SIMD_H_
#define CONFCARD_NN_SIMD_H_

#include <cstddef>

#if !defined(CONFCARD_SIMD_OFF)
#if defined(__AVX2__)
#define CONFCARD_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define CONFCARD_SIMD_SSE2 1
#include <emmintrin.h>
#include <xmmintrin.h>
#elif defined(__aarch64__) && (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define CONFCARD_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !CONFCARD_SIMD_OFF

namespace confcard {
namespace nn {

/// True when this build carries a vector ISA (AVX2/SSE2/NEON) for the
/// kernels; false for scalar-only builds (CONFCARD_SIMD=off or an
/// unsupported target).
bool SimdCompiledIn();

/// Whether the kernels currently take their vector paths. Defaults to
/// SimdCompiledIn() unless the CONFCARD_SIMD environment variable is
/// "off"/"0"/"false"/"scalar".
bool SimdEnabled();

/// Runtime toggle (relaxed-atomic; safe to flip between kernel calls,
/// not concurrently with one). Forcing `true` is a no-op in scalar-only
/// builds. Benches and the bit-identity tests sweep this.
void SetSimdEnabled(bool on);

/// The compiled kernel ISA: "avx2", "sse2", "neon", or "scalar".
/// Reports what the binary carries, independent of SimdEnabled().
const char* SimdIsaName();

/// Lanes per vector for the compiled ISA (1 when scalar).
size_t SimdLaneWidth();

namespace simd {

/// Reference lane set: width 1, plain float ops. The vector kernels
/// instantiated with this type are the scalar semantics the wide types
/// must reproduce bit for bit.
struct ScalarLanes {
  using Vec = float;
  static constexpr size_t kWidth = 1;
  static Vec Load(const float* p) { return *p; }
  static void Store(float* p, Vec v) { *p = v; }
  static Vec Broadcast(float x) { return x; }
  static Vec Zero() { return 0.0f; }
  static Vec Add(Vec a, Vec b) { return a + b; }
  static Vec Mul(Vec a, Vec b) { return a * b; }
  static Vec Relu(Vec v) { return v < 0.0f ? 0.0f : v; }
  static void LoadTransposed(const float* base, size_t stride,
                             Vec out[kWidth]) {
    (void)stride;
    out[0] = base[0];
  }
};

#if defined(CONFCARD_SIMD_AVX2)

struct Avx2Lanes {
  using Vec = __m256;
  static constexpr size_t kWidth = 8;
  static Vec Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, Vec v) { _mm256_storeu_ps(p, v); }
  static Vec Broadcast(float x) { return _mm256_set1_ps(x); }
  static Vec Zero() { return _mm256_setzero_ps(); }
  static Vec Add(Vec a, Vec b) { return _mm256_add_ps(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_ps(a, b); }
  // maxps(0, v) returns the SECOND operand when the compare is equal or
  // unordered, so -0.0f passes through and NaN stays NaN — exactly
  // `v < 0.0f ? 0.0f : v`.
  static Vec Relu(Vec v) { return _mm256_max_ps(Zero(), v); }
  // 8x8 in-register transpose of the tile whose row t is
  // base[t*stride .. t*stride+7]; out[c] holds column c across the 8
  // rows. Standard unpack/shuffle/permute2f128 sequence.
  static void LoadTransposed(const float* base, size_t stride,
                             Vec out[kWidth]) {
    const __m256 r0 = _mm256_loadu_ps(base + 0 * stride);
    const __m256 r1 = _mm256_loadu_ps(base + 1 * stride);
    const __m256 r2 = _mm256_loadu_ps(base + 2 * stride);
    const __m256 r3 = _mm256_loadu_ps(base + 3 * stride);
    const __m256 r4 = _mm256_loadu_ps(base + 4 * stride);
    const __m256 r5 = _mm256_loadu_ps(base + 5 * stride);
    const __m256 r6 = _mm256_loadu_ps(base + 6 * stride);
    const __m256 r7 = _mm256_loadu_ps(base + 7 * stride);
    const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    out[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
    out[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
    out[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
    out[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
    out[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
    out[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
    out[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
    out[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
  }
};

using NativeLanes = Avx2Lanes;
inline constexpr const char* kSimdIsaName = "avx2";

#elif defined(CONFCARD_SIMD_SSE2)

struct Sse2Lanes {
  using Vec = __m128;
  static constexpr size_t kWidth = 4;
  static Vec Load(const float* p) { return _mm_loadu_ps(p); }
  static void Store(float* p, Vec v) { _mm_storeu_ps(p, v); }
  static Vec Broadcast(float x) { return _mm_set1_ps(x); }
  static Vec Zero() { return _mm_setzero_ps(); }
  static Vec Add(Vec a, Vec b) { return _mm_add_ps(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm_mul_ps(a, b); }
  // Same -0.0/NaN reasoning as the AVX2 variant.
  static Vec Relu(Vec v) { return _mm_max_ps(Zero(), v); }
  static void LoadTransposed(const float* base, size_t stride,
                             Vec out[kWidth]) {
    __m128 r0 = _mm_loadu_ps(base + 0 * stride);
    __m128 r1 = _mm_loadu_ps(base + 1 * stride);
    __m128 r2 = _mm_loadu_ps(base + 2 * stride);
    __m128 r3 = _mm_loadu_ps(base + 3 * stride);
    _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
    out[0] = r0;
    out[1] = r1;
    out[2] = r2;
    out[3] = r3;
  }
};

using NativeLanes = Sse2Lanes;
inline constexpr const char* kSimdIsaName = "sse2";

#elif defined(CONFCARD_SIMD_NEON)

struct NeonLanes {
  using Vec = float32x4_t;
  static constexpr size_t kWidth = 4;
  static Vec Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, Vec v) { vst1q_f32(p, v); }
  static Vec Broadcast(float x) { return vdupq_n_f32(x); }
  static Vec Zero() { return vdupq_n_f32(0.0f); }
  static Vec Add(Vec a, Vec b) { return vaddq_f32(a, b); }
  static Vec Mul(Vec a, Vec b) { return vmulq_f32(a, b); }
  // vmaxq would return +0.0 for -0.0 input; the select reproduces the
  // scalar `v < 0.0f ? 0.0f : v` exactly (NaN < 0 is false -> NaN kept).
  static Vec Relu(Vec v) { return vbslq_f32(vcltq_f32(v, Zero()), Zero(), v); }
  static void LoadTransposed(const float* base, size_t stride,
                             Vec out[kWidth]) {
    const float32x4_t r0 = vld1q_f32(base + 0 * stride);
    const float32x4_t r1 = vld1q_f32(base + 1 * stride);
    const float32x4_t r2 = vld1q_f32(base + 2 * stride);
    const float32x4_t r3 = vld1q_f32(base + 3 * stride);
    const float32x4x2_t t01 = vtrnq_f32(r0, r1);
    const float32x4x2_t t23 = vtrnq_f32(r2, r3);
    out[0] = vcombine_f32(vget_low_f32(t01.val[0]), vget_low_f32(t23.val[0]));
    out[1] = vcombine_f32(vget_low_f32(t01.val[1]), vget_low_f32(t23.val[1]));
    out[2] =
        vcombine_f32(vget_high_f32(t01.val[0]), vget_high_f32(t23.val[0]));
    out[3] =
        vcombine_f32(vget_high_f32(t01.val[1]), vget_high_f32(t23.val[1]));
  }
};

using NativeLanes = NeonLanes;
inline constexpr const char* kSimdIsaName = "neon";

#else

using NativeLanes = ScalarLanes;
inline constexpr const char* kSimdIsaName = "scalar";

#endif

/// Compile-time gate the kernels use so scalar-only builds emit no dead
/// vector instantiations.
inline constexpr bool kHaveNativeLanes = (NativeLanes::kWidth > 1);

}  // namespace simd
}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_SIMD_H_
