#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {
namespace nn {

double MseLoss(const Tensor& pred, const std::vector<float>& target,
               Tensor* grad) {
  CONFCARD_DCHECK(pred.cols() == 1 && pred.rows() == target.size());
  const size_t n = pred.rows();
  *grad = Tensor::Zeros(n, 1);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    float e = pred.At(i, 0) - target[i];
    loss += static_cast<double>(e) * e;
    grad->At(i, 0) = 2.0f * e * inv_n;
  }
  return loss / static_cast<double>(n);
}

double PinballLoss(const Tensor& pred, const std::vector<float>& target,
                   double tau, Tensor* grad) {
  CONFCARD_DCHECK(pred.cols() == 1 && pred.rows() == target.size());
  CONFCARD_DCHECK(tau > 0.0 && tau < 1.0);
  const size_t n = pred.rows();
  *grad = Tensor::Zeros(n, 1);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  const float t = static_cast<float>(tau);
  for (size_t i = 0; i < n; ++i) {
    float e = target[i] - pred.At(i, 0);
    if (e >= 0.0f) {
      loss += static_cast<double>(t) * e;
      grad->At(i, 0) = -t * inv_n;
    } else {
      loss += static_cast<double>(t - 1.0f) * e;
      grad->At(i, 0) = (1.0f - t) * inv_n;
    }
  }
  return loss / static_cast<double>(n);
}

double QErrorLogLoss(const Tensor& pred, const std::vector<float>& target,
                     Tensor* grad, double cap) {
  CONFCARD_DCHECK(pred.cols() == 1 && pred.rows() == target.size());
  const size_t n = pred.rows();
  *grad = Tensor::Zeros(n, 1);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (size_t i = 0; i < n; ++i) {
    float e = pred.At(i, 0) - target[i];
    float a = std::min(std::fabs(e), static_cast<float>(cap));
    float ea = std::exp(a);
    loss += static_cast<double>(ea);
    float sign = e >= 0.0f ? 1.0f : -1.0f;
    // d/de exp(|e|) = sign(e) exp(|e|); beyond the cap the magnitude is
    // held at exp(cap), i.e. the gradient is clipped rather than zeroed
    // so badly-off predictions still receive a training signal.
    grad->At(i, 0) = sign * ea * inv_n;
  }
  return loss / static_cast<double>(n);
}

void SoftmaxRow(const float* logits, size_t n, float* probs) {
  float mx = logits[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    probs[i] = std::exp(logits[i] - mx);
    sum += probs[i];
  }
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) probs[i] *= inv;
}

double BlockSoftmaxCrossEntropy(const Tensor& logits,
                                const std::vector<size_t>& block_offsets,
                                const std::vector<std::vector<int>>& targets,
                                Tensor* grad) {
  CONFCARD_DCHECK(block_offsets.size() >= 2);
  CONFCARD_DCHECK(block_offsets.back() == logits.cols());
  CONFCARD_DCHECK(targets.size() == logits.rows());
  const size_t batch = logits.rows();
  const size_t num_blocks = block_offsets.size() - 1;
  *grad = Tensor::Zeros(batch, logits.cols());

  std::vector<float> probs;
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (size_t b = 0; b < batch; ++b) {
    CONFCARD_DCHECK(targets[b].size() == num_blocks);
    const float* lrow = logits.RowPtr(b);
    float* grow = grad->RowPtr(b);
    for (size_t blk = 0; blk < num_blocks; ++blk) {
      const size_t lo = block_offsets[blk];
      const size_t width = block_offsets[blk + 1] - lo;
      probs.resize(width);
      SoftmaxRow(lrow + lo, width, probs.data());
      const int t = targets[b][blk];
      CONFCARD_DCHECK(t >= 0 && static_cast<size_t>(t) < width);
      float p = std::max(probs[static_cast<size_t>(t)], 1e-12f);
      loss -= std::log(static_cast<double>(p));
      for (size_t j = 0; j < width; ++j) {
        grow[lo + j] = probs[j] * inv_batch;
      }
      grow[lo + static_cast<size_t>(t)] -= inv_batch;
    }
  }
  return loss / static_cast<double>(batch);
}

}  // namespace nn
}  // namespace confcard
