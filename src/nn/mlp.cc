#include "nn/mlp.h"

#include <memory>

#include "common/check.h"

namespace confcard {
namespace nn {

Mlp::Mlp(const std::vector<size_t>& dims, Rng& rng) {
  CONFCARD_CHECK(dims.size() >= 2);
  in_dim_ = dims.front();
  out_dim_ = dims.back();
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    net_.Append(std::make_unique<Dense>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) {
      net_.Append(std::make_unique<Relu>());
    }
  }
}

Tensor Mlp::Forward(const Tensor& input) { return net_.Forward(input); }

Tensor Mlp::Apply(const Tensor& input) const { return net_.Apply(input); }

Tensor Mlp::Backward(const Tensor& grad_output) {
  return net_.Backward(grad_output);
}

std::vector<Parameter*> Mlp::Parameters() { return net_.Parameters(); }

}  // namespace nn
}  // namespace confcard
