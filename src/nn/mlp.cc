#include "nn/mlp.h"

#include <memory>

#include "common/check.h"

namespace confcard {
namespace nn {

Mlp::Mlp(const std::vector<size_t>& dims, Rng& rng) {
  CONFCARD_CHECK(dims.size() >= 2);
  in_dim_ = dims.front();
  out_dim_ = dims.back();
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    auto dense = std::make_unique<Dense>(dims[i], dims[i + 1], rng);
    dense_.push_back(dense.get());
    net_.Append(std::move(dense));
    if (i + 2 < dims.size()) {
      net_.Append(std::make_unique<Relu>());
    }
  }
}

Tensor Mlp::Forward(const Tensor& input) { return net_.Forward(input); }

Tensor Mlp::Apply(const Tensor& input) const { return net_.Apply(input); }

Tensor Mlp::ApplyFused(const Tensor& input) const {
  // Fused inference path for the batched engine: every hidden Dense is
  // followed by a ReLU, so the bias-add and the clamp share one sweep
  // over the activations (Dense::ApplyActivated). Bit-identical to
  // Apply — per element the op sequence is unchanged — with one less
  // pass per hidden layer. Apply stays on the plain layer chain so the
  // per-query reference path remains the obviously-correct oracle the
  // engine is checked against.
  Tensor x = dense_.front()->ApplyActivated(input, dense_.size() > 1);
  for (size_t i = 1; i < dense_.size(); ++i) {
    x = dense_[i]->ApplyActivated(x, i + 1 < dense_.size());
  }
  return x;
}

Tensor Mlp::Backward(const Tensor& grad_output) {
  return net_.Backward(grad_output);
}

std::vector<Parameter*> Mlp::Parameters() { return net_.Parameters(); }

}  // namespace nn
}  // namespace confcard
