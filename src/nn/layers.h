// Neural-network layers with explicit forward/backward passes. Backward
// accumulates parameter gradients (cleared by the optimizer step) and
// returns the gradient with respect to the layer input.
#ifndef CONFCARD_NN_LAYERS_H_
#define CONFCARD_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace confcard {
namespace nn {

/// A learnable parameter and its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;
};

/// Base layer interface.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` (batch rows). Implementations
  /// cache whatever they need for Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Inference-only forward: numerically identical to Forward but caches
  /// nothing, so a trained model can be applied from many threads
  /// concurrently (the harness fans per-query evaluation out across the
  /// pool). Backward after Apply is invalid.
  virtual Tensor Apply(const Tensor& input) const = 0;

  /// Apply for a caller that is done with `input`: layers that can work
  /// in place (activations) reuse the buffer instead of copying it. The
  /// values are identical to Apply(const Tensor&); only allocations and
  /// copies differ. Batched inference pipes large intermediates through
  /// this overload so each layer step stops costing a full-tensor copy.
  virtual Tensor Apply(Tensor&& input) const { return Apply(input); }

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after Forward on the same batch.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for activations).
  virtual std::vector<Parameter*> Parameters() { return {}; }
};

/// Fully connected layer: out = in * W + b.
class Dense : public Layer {
 public:
  Dense(size_t in_dim, size_t out_dim, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Apply(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  /// Inference forward with the bias-add and (optionally) the following
  /// ReLU fused into one sweep over the output. Per element the sequence
  /// is unchanged — products in ascending input order, then + bias, then
  /// the clamp — so the result is bit-identical to Apply(input) followed
  /// by Relu::Apply; only the number of passes over the tensor differs.
  Tensor ApplyActivated(const Tensor& input, bool relu) const;

  size_t in_dim() const { return weight_.value.rows(); }
  size_t out_dim() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;  // (in, out)
  Parameter bias_;    // (1, out)
  Tensor input_;      // cached for backward
};

/// Dense layer whose weight is elementwise-multiplied by a fixed binary
/// mask — the building block of MADE's autoregressive property.
class MaskedDense : public Layer {
 public:
  /// `mask` has shape (in_dim, out_dim); entries in {0, 1}.
  MaskedDense(size_t in_dim, size_t out_dim, Tensor mask, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Apply(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  /// Inference forward over a block-sparse one-hot input (see
  /// SparseRows): gathers the weight rows named by each input row's set
  /// indices instead of multiplying zeros — O(nnz * out) instead of
  /// O(in * out). Nonzero contributions accumulate in the same ascending
  /// index order as Apply's dense GEMM, so outputs are bit-identical to
  /// Apply on the equivalent dense tensor (finite weights).
  Tensor ApplyOneHot(const SparseRows& input) const;
  /// ApplyOneHot restricted to output columns [col_begin, col_end).
  /// Column j of the result equals column col_begin + j of ApplyOneHot.
  Tensor ApplyOneHotCols(const SparseRows& input, size_t col_begin,
                         size_t col_end) const;
  /// Dense inference forward restricted to output columns
  /// [col_begin, col_end) — what Naru's sampler needs from the MADE
  /// output layer, which is softmaxed one column block at a time.
  /// Bit-identical to the corresponding slice of Apply.
  Tensor ApplyCols(const Tensor& input, size_t col_begin,
                   size_t col_end) const;

  size_t in_dim() const { return weight_.value.rows(); }
  size_t out_dim() const { return weight_.value.cols(); }

  const Tensor& mask() const { return mask_; }

 private:
  void ApplyMaskToWeight();

  Parameter weight_;
  Parameter bias_;
  Tensor mask_;
  Tensor input_;
};

/// Rectified linear activation.
class Relu : public Layer {
 public:
  Tensor Forward(const Tensor& input) override;
  Tensor Apply(const Tensor& input) const override;
  /// In-place clamp of a buffer the caller no longer needs: same values,
  /// no copy.
  Tensor Apply(Tensor&& input) const override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor input_;
};

/// Ordered container of layers.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void Append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& input) override;
  Tensor Apply(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

  size_t num_layers() const { return layers_.size(); }
  const Layer& layer(size_t i) const { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nn
}  // namespace confcard

#endif  // CONFCARD_NN_LAYERS_H_
