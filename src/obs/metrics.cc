#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace confcard {
namespace obs {

namespace internal {

uint32_t AssignMetricShard() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) %
         static_cast<uint32_t>(kMetricShards);
}

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_recording.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() { return internal::RecordingEnabled(); }

// fetch_add on atomic<double> is C++20 but spotty in older libstdc++;
// a relaxed CAS loop is portable and just as fast uncontended. With the
// histogram shards each loop runs against a thread-private slot, so the
// exchange succeeds on the first try outside of shard-wraparound.
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  if (std::isnan(delta)) return;
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

// The min/max loops must re-test the bound after every failed exchange:
// compare_exchange_weak reloads `cur`, and another thread may have
// installed something smaller (resp. larger) in the meantime, making the
// store not just unnecessary but wrong. NaN candidates are dropped, and
// a NaN already in `target` (never written by the histograms, but
// possible for external users) loses to any well-formed candidate so the
// accumulator self-heals.
void AtomicMinDouble(std::atomic<double>* target, double value) {
  if (std::isnan(value)) return;
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur || std::isnan(cur)) {
    if (target->compare_exchange_weak(cur, value,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  if (std::isnan(value)) return;
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur || std::isnan(cur)) {
    if (target->compare_exchange_weak(cur, value,
                                      std::memory_order_relaxed)) {
      return;
    }
  }
}

namespace {

// Bucket for `value`: i such that value is in (2^(i-1), 2^i]. Computed
// from the IEEE-754 exponent field instead of frexp/ldexp — the libm
// calls dominated the record path. With value > 1.0 the biased exponent
// is >= the bias, so `e` is non-negative: a zero mantissa means value ==
// 2^e exactly (its own bucket's upper bound), anything else lies above
// 2^e and rounds up a bucket. Infinity decays to the last bucket via the
// clamp.
size_t BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint64_t mantissa = bits & ((uint64_t{1} << 52) - 1);
  const uint64_t e = ((bits >> 52) & 0x7ff) - 1023;
  const uint64_t idx = e + (mantissa != 0 ? 1 : 0);
  return static_cast<size_t>(
      std::min<uint64_t>(idx, Histogram::kNumBuckets - 1));
}

}  // namespace

void Histogram::Record(double value) {
  if (!internal::RecordingEnabled()) return;
  if (std::isnan(value)) return;
  value = std::max(value, 0.0);
  Shard& s = shards_[internal::MetricShardIndex()];
  s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&s.sum, value);
  AtomicMinDouble(&s.min, value);
  AtomicMaxDouble(&s.max, value);
}

void Histogram::Reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(i));
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  // Shards are merged in slot order. A single-threaded run records into
  // exactly one slot, and adding the other slots' 0.0 sums is exact, so
  // the aggregate matches an unsharded accumulator bit for bit.
  for (const Shard& shard : shards_) {
    s.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kNumBuckets; ++i) {
      s.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  for (uint64_t b : s.buckets) s.count += b;
  s.min = s.count == 0 ? 0.0 : min;
  s.max = s.count == 0 ? 0.0 : max;
  return s;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lo = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      double hi = BucketUpperBound(i);
      if (std::isinf(hi)) hi = std::max(max, lo);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    seen = next;
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::SetMeta(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  meta_.insert_or_assign(std::string(key), std::string(value));
}

void MetricsRegistry::SetMeta(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  SetMeta(key, std::string_view(buf));
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->TakeSnapshot());
  }
  s.meta.reserve(meta_.size());
  for (const auto& [key, value] : meta_) s.meta.emplace_back(key, value);
  return s;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dot-separated paths
// map dots (and anything else exotic) to underscores.
std::string ExpositionName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (std::isnan(v)) {
    std::snprintf(buf, sizeof(buf), "NaN");
  } else if (std::isinf(v)) {
    std::snprintf(buf, sizeof(buf), v > 0 ? "+Inf" : "-Inf");
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

// Label values per the text-format spec (version 0.0.4): backslash,
// double-quote, and newline must be escaped or a scraper will misparse
// the series — or worse, splice the rest of the value into a new line.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// HELP text escapes only backslash and newline (quotes are legal there).
std::string EscapeHelpText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// The dotted source name doubles as the help string: exposition names
// flatten dots to underscores, so this is the one place a scraper's user
// can recover the original registry path.
void AppendHeader(std::string* out, const std::string& exposition_name,
                  const std::string& source_name, const char* type) {
  *out += "# HELP " + exposition_name + " confcard metric " +
          EscapeHelpText(source_name) + "\n";
  *out += "# TYPE " + exposition_name + " " + type + "\n";
}

}  // namespace

std::string MetricsRegistry::WriteTextExposition() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  out.reserve(4096);
  for (const auto& [key, value] : snap.meta) {
    // Comment lines, but still line-oriented: a raw newline in a meta
    // value would splice arbitrary text into the exposition body.
    out += "# meta ";
    out += key;
    out += " ";
    out += EscapeHelpText(value);
    out += "\n";
  }
  for (const auto& [name, value] : snap.counters) {
    const std::string n = ExpositionName(name);
    AppendHeader(&out, n, name, "counter");
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = ExpositionName(name);
    AppendHeader(&out, n, name, "gauge");
    out += n + " ";
    AppendNumber(&out, value);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = ExpositionName(name);
    AppendHeader(&out, n, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += h.buckets[i];
      std::string le;
      AppendNumber(&le, Histogram::BucketUpperBound(i));
      out += n + "_bucket{le=\"" + EscapeLabelValue(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_sum ";
    AppendNumber(&out, h.sum);
    out += "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  meta_.clear();
}

}  // namespace obs
}  // namespace confcard
