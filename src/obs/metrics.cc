#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace confcard {
namespace obs {
namespace {

// fetch_add on atomic<double> is C++20 but spotty in older libstdc++;
// a relaxed CAS loop is portable and just as fast uncontended.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

size_t BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp with m in [0.5, 1)
  // 2^(exp-1) < value <= 2^exp unless value is an exact power of two,
  // where frexp reports one higher than the containing bucket.
  size_t idx = static_cast<size_t>(exp);
  if (std::ldexp(1.0, exp - 1) == value) --idx;
  return std::min(idx, Histogram::kNumBuckets - 1);
}

}  // namespace

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  value = std::max(value, 0.0);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(i));
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lo = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      double hi = BucketUpperBound(i);
      if (std::isinf(hi)) hi = std::max(max, lo);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    seen = next;
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::SetMeta(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  meta_.insert_or_assign(std::string(key), std::string(value));
}

void MetricsRegistry::SetMeta(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  SetMeta(key, std::string_view(buf));
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->TakeSnapshot());
  }
  s.meta.reserve(meta_.size());
  for (const auto& [key, value] : meta_) s.meta.emplace_back(key, value);
  return s;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  meta_.clear();
}

}  // namespace obs
}  // namespace confcard
