// Fixed-capacity rolling window over doubles: O(1) push, O(1) mean.
// Backs the online monitors (windowed coverage, mean width, score drift)
// published from OnlineConformal::Observe, where a full re-scan per
// observation would be too expensive for the Fig. 8/11 streams. The
// running sum is recomputed from the buffer once per wrap-around so
// floating-point drift stays bounded on long streams.
//
// Thread safety: all operations serialize on an internal mutex, so a
// window shared between an observer thread and a monitor/snapshot reader
// is race-free (and TSan-clean). The online path pushes a handful of
// values per observed query, so an uncontended lock is noise next to the
// conformal update itself; values read after all writers have joined (or
// otherwise synchronized) are deterministic because Push order fully
// determines the state.
#ifndef CONFCARD_OBS_ROLLING_H_
#define CONFCARD_OBS_ROLLING_H_

#include <cstddef>
#include <mutex>
#include <vector>

namespace confcard {
namespace obs {

class RollingWindow {
 public:
  explicit RollingWindow(size_t capacity)
      : buf_(capacity > 0 ? capacity : 1) {}

  void Push(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    if (size_ == buf_.size()) {
      sum_ -= buf_[next_];
    } else {
      ++size_;
    }
    buf_[next_] = v;
    sum_ += v;
    next_ = (next_ + 1) % buf_.size();
    if (next_ == 0) {
      sum_ = 0.0;
      for (size_t i = 0; i < size_; ++i) sum_ += buf_[i];
    }
  }

  double Sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_ == 0 ? 0.0 : sum_ / static_cast<double>(size_);
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return buf_.size(); }
  bool full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_ == buf_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    size_ = 0;
    next_ = 0;
    sum_ = 0.0;
  }

 private:
  // buf_'s length is fixed after construction, so capacity() reads it
  // without the lock.
  mutable std::mutex mu_;
  std::vector<double> buf_;
  size_t next_ = 0;
  size_t size_ = 0;
  double sum_ = 0.0;
};

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_ROLLING_H_
