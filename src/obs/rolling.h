// Fixed-capacity rolling window over doubles: O(1) push, O(1) mean.
// Backs the online monitors (windowed coverage, mean width, score drift)
// published from OnlineConformal::Observe, where a full re-scan per
// observation would be too expensive for the Fig. 8/11 streams. The
// running sum is recomputed from the buffer once per wrap-around so
// floating-point drift stays bounded on long streams.
#ifndef CONFCARD_OBS_ROLLING_H_
#define CONFCARD_OBS_ROLLING_H_

#include <cstddef>
#include <vector>

namespace confcard {
namespace obs {

class RollingWindow {
 public:
  explicit RollingWindow(size_t capacity)
      : buf_(capacity > 0 ? capacity : 1) {}

  void Push(double v) {
    if (size_ == buf_.size()) {
      sum_ -= buf_[next_];
    } else {
      ++size_;
    }
    buf_[next_] = v;
    sum_ += v;
    next_ = (next_ + 1) % buf_.size();
    if (next_ == 0) {
      sum_ = 0.0;
      for (size_t i = 0; i < size_; ++i) sum_ += buf_[i];
    }
  }

  double Sum() const { return sum_; }
  double Mean() const {
    return size_ == 0 ? 0.0 : sum_ / static_cast<double>(size_);
  }
  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  bool full() const { return size_ == buf_.size(); }

  void Clear() {
    size_ = 0;
    next_ = 0;
    sum_ = 0.0;
  }

 private:
  std::vector<double> buf_;
  size_t next_ = 0;
  size_t size_ = 0;
  double sum_ = 0.0;
};

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_ROLLING_H_
