// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms cheap enough for per-query hot paths. Registration goes
// through a mutex-protected registry; recording touches only per-metric
// storage, so call sites should resolve a metric once (typically via a
// function-local static reference) and record lock-free afterwards.
//
// Counters and histograms are sharded: each metric owns kMetricShards
// cache-line-padded slots and every thread records into a fixed slot
// assigned round-robin at first use. The record path is a relaxed add on
// the calling thread's slot — no CAS loop, no shared cache line below
// kMetricShards concurrent threads — and aggregation across slots happens
// only at snapshot/export time. Single-threaded runs use exactly one slot
// per metric, so aggregated values (including floating-point sums) are
// bit-identical to an unsharded implementation.
//
// Metric objects live for the whole process: Reset() zeroes values but
// never invalidates references handed out by the registry.
#ifndef CONFCARD_OBS_METRICS_H_
#define CONFCARD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace confcard {
namespace obs {

/// Number of cache-line-padded slots each counter/histogram spreads its
/// updates across. A power of two; threads wrap around when more than
/// kMetricShards of them record concurrently.
inline constexpr size_t kMetricShards = 16;

/// Runtime kill switch for every metric record path. With recording
/// disabled, Counter::Increment, Gauge::Set, and Histogram::Record
/// reduce to one relaxed load and a branch — the "obs off" baseline that
/// bench_obs compares against. Registration, snapshots, and metadata are
/// unaffected. Defaults to enabled.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// NaN-safe relaxed atomic helpers for doubles (used by the histogram
/// shards; exposed for tests and benches). A NaN delta or candidate is
/// dropped instead of poisoning the accumulator, and a NaN already in
/// `target` is replaced by the first well-formed candidate.
void AtomicAddDouble(std::atomic<double>* target, double delta);
void AtomicMinDouble(std::atomic<double>* target, double value);
void AtomicMaxDouble(std::atomic<double>* target, double value);

namespace internal {

/// Stable shard slot for the calling thread, assigned on first use.
uint32_t AssignMetricShard();

inline uint32_t MetricShardIndex() {
  static thread_local const uint32_t idx = AssignMetricShard();
  return idx;
}

/// Backing flag for SetMetricsEnabled, inline so the record-path check
/// compiles to a single relaxed load without a function call.
inline std::atomic<bool> g_metrics_recording{true};

inline bool RecordingEnabled() {
  return g_metrics_recording.load(std::memory_order_relaxed);
}

struct alignas(64) PaddedCount {
  std::atomic<uint64_t> v{0};
};

}  // namespace internal

/// Monotonically increasing event count. Increment is a relaxed add on
/// the calling thread's padded slot; value() sums the slots.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!internal::RecordingEnabled()) return;
    shards_[internal::MetricShardIndex()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<internal::PaddedCount, kMetricShards> shards_{};
};

/// Last-write-wins scalar (calibration-set sizes, epoch losses, ...).
/// Not sharded: "last write" has no useful meaning per-slot, and a single
/// relaxed store is already wait-free; writers racing on the same gauge
/// are rare and the winner is arbitrary either way.
class Gauge {
 public:
  void Set(double v) {
    if (!internal::RecordingEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed power-of-two-bucket histogram for non-negative samples
/// (canonically latencies in microseconds). Bucket i holds samples in
/// (2^(i-1), 2^i]; the last bucket is unbounded. Recording updates only
/// the calling thread's shard (one bucket add plus uncontended CAS loops
/// for sum/min/max); summary percentiles are interpolated from the
/// merged bucket boundaries at snapshot time.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Record(double value);
  void Reset();

  /// Upper bound of bucket `i` (+inf for the last bucket).
  static double BucketUpperBound(size_t i);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const { return count == 0 ? 0.0 : sum / count; }
    /// Percentile estimate (p in [0, 100]) by linear interpolation within
    /// the containing bucket, clamped to the observed [min, max].
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

 private:
  // No per-shard count: every record lands in exactly one bucket, so the
  // sample count is the bucket total, summed at snapshot time instead of
  // paying a third fetch_add per record.
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Process-wide registry. Names are dot-separated paths, lowercase, with
/// the owning layer as the first segment and the unit as a suffix where
/// one applies (see docs/OBSERVABILITY.md), e.g. "ce.mscn.infer_us".
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Finds or creates; the returned reference is valid for the process
  /// lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Free-form run metadata (scale, seeds, model configs) carried into
  /// the JSON artifact. Last write per key wins.
  void SetMeta(std::string_view key, std::string_view value);
  void SetMeta(std::string_view key, double value);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    std::vector<std::pair<std::string, std::string>> meta;
  };
  /// Consistent-enough point-in-time view (each metric is aggregated
  /// across its shards; the set of metrics is read under the registry
  /// lock).
  Snapshot TakeSnapshot() const;

  /// Prometheus text exposition (version 0.0.4) of the current snapshot:
  /// `# HELP` (carrying the original dotted name) and `# TYPE` per
  /// metric, cumulative `_bucket{le="..."}` series plus `_sum` /
  /// `_count` per histogram, metric names sanitized to [a-z0-9_], label
  /// values escaped per the spec (backslash, double-quote, newline), run
  /// metadata as leading comments. The integration point for a future
  /// serving front-end's /metrics endpoint.
  std::string WriteTextExposition() const;

  /// Zeroes every metric and clears metadata without destroying the
  /// metric objects (outstanding references stay valid). Test-only.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> meta_;
};

/// Shorthand for MetricsRegistry::Instance().
inline MetricsRegistry& Metrics() { return MetricsRegistry::Instance(); }

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_METRICS_H_
