// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms cheap enough for per-query hot paths. Registration goes
// through a mutex-protected registry; recording touches only per-metric
// atomics, so call sites should resolve a metric once (typically via a
// function-local static reference) and record lock-free afterwards.
// Metric objects live for the whole process: Reset() zeroes values but
// never invalidates references handed out by the registry.
#ifndef CONFCARD_OBS_METRICS_H_
#define CONFCARD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace confcard {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (calibration-set sizes, epoch losses, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed power-of-two-bucket histogram for non-negative samples
/// (canonically latencies in microseconds). Bucket i holds samples in
/// (2^(i-1), 2^i]; the last bucket is unbounded. Recording is a handful
/// of relaxed atomic operations; summary percentiles are interpolated
/// from the bucket boundaries at snapshot time.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Record(double value);
  void Reset();

  /// Upper bound of bucket `i` (+inf for the last bucket).
  static double BucketUpperBound(size_t i);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const { return count == 0 ? 0.0 : sum / count; }
    /// Percentile estimate (p in [0, 100]) by linear interpolation within
    /// the containing bucket, clamped to the observed [min, max].
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Process-wide registry. Names are dot-separated paths, lowercase, with
/// the owning layer as the first segment and the unit as a suffix where
/// one applies (see docs/OBSERVABILITY.md), e.g. "ce.mscn.infer_us".
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Finds or creates; the returned reference is valid for the process
  /// lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Free-form run metadata (scale, seeds, model configs) carried into
  /// the JSON artifact. Last write per key wins.
  void SetMeta(std::string_view key, std::string_view value);
  void SetMeta(std::string_view key, double value);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    std::vector<std::pair<std::string, std::string>> meta;
  };
  /// Consistent-enough point-in-time view (each metric is read
  /// atomically; the set of metrics is read under the registry lock).
  Snapshot TakeSnapshot() const;

  /// Zeroes every metric and clears metadata without destroying the
  /// metric objects (outstanding references stay valid). Test-only.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> meta_;
};

/// Shorthand for MetricsRegistry::Instance().
inline MetricsRegistry& Metrics() { return MetricsRegistry::Instance(); }

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_METRICS_H_
