#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// glibc exposes the thread-targeted notify method but (on some versions)
// not the symbolic name or the accessor macro for the tid field.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif

namespace {

// Per-thread allocation counters maintained by the global operator
// new/delete replacements at the bottom of this file. Trivially
// constructible thread-locals: no dynamic initializer, so they are safe
// to bump from allocations made during static initialization.
thread_local uint64_t tls_alloc_count = 0;
thread_local uint64_t tls_alloc_bytes = 0;

}  // namespace

namespace confcard {
namespace obs {

namespace {
std::atomic<bool> g_resource_accounting{false};
}  // namespace

void SetSpanResourceAccountingEnabled(bool enabled) {
  g_resource_accounting.store(enabled, std::memory_order_relaxed);
}

bool SpanResourceAccountingEnabled() {
  return g_resource_accounting.load(std::memory_order_relaxed);
}

namespace prof {
namespace {

// Ring sizing: 4096 samples per thread is ~41 CPU-seconds at 99 Hz
// between drains (~1.8 MiB per registered thread). Overflow drops the
// newest sample and counts it — never blocks, never reallocates.
constexpr uint64_t kRingCapacity = 4096;
static_assert((kRingCapacity & (kRingCapacity - 1)) == 0);

// CONFCARD_THREADS clamps at 256; a few extra slots cover the main
// thread plus short-lived test threads.
constexpr int kMaxProfThreads = 288;

constexpr uint32_t kMaxLabels = 256;
constexpr size_t kLabelLen = 64;

struct Sample {
  int32_t num_frames;
  int32_t num_spans;
  void* frames[kMaxFramesPerSample];
  uint32_t span_ids[kMaxSpanDepth];
};

// One SPSC ring per registered thread. Producer is the owning thread's
// SIGPROF handler; consumer is whichever thread drains. States are
// heap-allocated once and never freed (process lifetime, like the
// TraceStore), so the signal and crash paths can hold raw pointers.
struct ThreadState {
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<bool> timer_armed{false};
  uint32_t trace_tid = 0;
  timer_t timer{};
  Sample ring[kRingCapacity];
};

// Append-only registry: raw pointers plus a release-published count, so
// the crash flush can walk it without taking a lock. Registration goes
// through g_register_mu.
ThreadState* g_states[kMaxProfThreads];
std::atomic<int> g_state_count{0};
std::mutex g_register_mu;

thread_local ThreadState* tls_state = nullptr;

// Span label stack: POD thread-locals written with plain stores plus
// signal fences. Only the owning thread's own SIGPROF handler reads
// them, so same-thread interruption ordering is all that is needed.
thread_local uint32_t tls_span_ids[kMaxSpanDepth];
thread_local int tls_span_depth = 0;

// Interned label names in fixed storage so the crash path can read them
// without locks: bytes are fully written before the count is
// release-published. Once the table is full, further names collapse
// into the last slot (span names are static strings; 256 is ample).
char g_label_names[kMaxLabels][kLabelLen];
std::atomic<uint32_t> g_label_count{0};
std::mutex g_label_mu;

std::atomic<int> g_hz{0};

// Output path + pre-opened descriptor. The fd is opened at StartProfiler
// so the crash flush never has to open() while the process is dying.
char g_profile_path[4096] = {0};
std::atomic<int> g_profile_fd{-1};

// Folded stacks accumulated by completed drains. RenderFoldedProfile may
// run while sampling continues; earlier drains must persist so the final
// profile covers the whole run.
std::mutex g_drain_mu;
std::map<std::string, uint64_t>* g_aggregate = nullptr;

uint32_t InternLabel(std::string_view name) {
  std::lock_guard<std::mutex> lock(g_label_mu);
  const uint32_t n = g_label_count.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < n; ++i) {
    if (name == g_label_names[i]) return i;
  }
  if (n >= kMaxLabels) return kMaxLabels - 1;
  const size_t len = std::min(name.size(), kLabelLen - 1);
  std::memcpy(g_label_names[n], name.data(), len);
  g_label_names[n][len] = '\0';
  g_label_count.store(n + 1, std::memory_order_release);
  return n;
}

const char* LabelName(uint32_t id) {
  const uint32_t n = g_label_count.load(std::memory_order_acquire);
  return id < n ? g_label_names[id] : "?";
}

bool WriteAllBytes(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// Namespace-scope (exported under -rdynamic) so drain-time symbolization
// can recognize and strip the handler's own frames from every sample.
void ProfilerSignalHandler(int /*sig*/, siginfo_t* /*info*/,
                           void* /*ucontext*/) {
  const int saved_errno = errno;
  ThreadState* st = tls_state;
  if (st != nullptr && internal::g_profiling.load(std::memory_order_relaxed)) {
    const uint64_t head = st->head.load(std::memory_order_relaxed);
    const uint64_t tail = st->tail.load(std::memory_order_acquire);
    if (head - tail >= kRingCapacity) {
      st->dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      Sample& s = st->ring[head & (kRingCapacity - 1)];
      s.num_frames = backtrace(s.frames, kMaxFramesPerSample);
      int depth = tls_span_depth;
      std::atomic_signal_fence(std::memory_order_acquire);
      if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
      for (int i = 0; i < depth; ++i) s.span_ids[i] = tls_span_ids[i];
      s.num_spans = depth;
      st->head.store(head + 1, std::memory_order_release);
    }
  }
  errno = saved_errno;
}

namespace {

// Best-effort flush for fatal signals: drains every ring into raw
// (unsymbolized) folded lines with count 1 through a static buffer and
// plain write() calls — no allocation, no locks on the sampling state.
// Addresses instead of names is the deliberate trade: dladdr and the
// demangler are not async-signal-safe, and profcat merges count-1 lines
// fine. If the drain mutex happens to be free, previously aggregated
// (symbolized) lines are written first.
void CrashFlushProfile() {
  const int fd = g_profile_fd.load(std::memory_order_relaxed);
  if (fd < 0) return;
  internal::g_profiling.store(false, std::memory_order_relaxed);
  if (g_drain_mu.try_lock()) {
    if (g_aggregate != nullptr) {
      char count_buf[32];
      for (const auto& [stack, count] : *g_aggregate) {
        const int n = std::snprintf(count_buf, sizeof(count_buf), " %llu\n",
                                    static_cast<unsigned long long>(count));
        if (!WriteAllBytes(fd, stack.data(), stack.size())) return;
        if (!WriteAllBytes(fd, count_buf, static_cast<size_t>(n))) return;
      }
    }
    g_drain_mu.unlock();
  }
  char line[4096];
  const int num_states = g_state_count.load(std::memory_order_acquire);
  for (int i = 0; i < num_states; ++i) {
    ThreadState* st = g_states[i];
    const uint64_t head = st->head.load(std::memory_order_acquire);
    uint64_t tail = st->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const Sample& s = st->ring[tail & (kRingCapacity - 1)];
      size_t off = static_cast<size_t>(std::snprintf(
          line, sizeof(line), "thread-%u", st->trace_tid));
      for (int k = 0; k < s.num_spans && off < sizeof(line); ++k) {
        off += static_cast<size_t>(std::snprintf(
            line + off, sizeof(line) - off, ";%s", LabelName(s.span_ids[k])));
      }
      // Leaf-most two frames are the handler and the signal trampoline.
      const int begin = std::min<int32_t>(2, s.num_frames);
      for (int j = s.num_frames - 1; j >= begin && off < sizeof(line); --j) {
        off += static_cast<size_t>(std::snprintf(
            line + off, sizeof(line) - off, ";%#lx",
            reinterpret_cast<unsigned long>(s.frames[j])));
      }
      off = std::min(off, sizeof(line) - 4);
      off += static_cast<size_t>(
          std::snprintf(line + off, sizeof(line) - off, " 1\n"));
      if (!WriteAllBytes(fd, line, off)) return;
    }
    st->tail.store(tail, std::memory_order_relaxed);
  }
}

// Creates and arms the calling thread's CPU-clock timer (registering a
// ring buffer first if the thread has none). Serialized against Stop by
// g_register_mu; rechecks the enabled flag under the lock so a timer is
// never armed after Stop began deleting them.
void RegisterSlow() {
  std::lock_guard<std::mutex> lock(g_register_mu);
  if (!internal::g_profiling.load(std::memory_order_relaxed)) return;
  ThreadState* st = tls_state;
  if (st == nullptr) {
    const int slot = g_state_count.load(std::memory_order_relaxed);
    if (slot >= kMaxProfThreads) return;
    st = new ThreadState();
    st->trace_tid = CurrentTraceThreadId();
    g_states[slot] = st;
    g_state_count.store(slot + 1, std::memory_order_release);
    tls_state = st;
  }
  if (st->timer_armed.load(std::memory_order_relaxed)) return;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev._sigev_un._tid = static_cast<pid_t>(::syscall(SYS_gettid));
  timer_t timer{};
  if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &timer) != 0) return;
  const int hz = std::max(1, g_hz.load(std::memory_order_relaxed));
  struct itimerspec its;
  std::memset(&its, 0, sizeof(its));
  its.it_interval.tv_nsec = 1000000000L / hz;
  its.it_value = its.it_interval;
  if (timer_settime(timer, 0, &its, nullptr) != 0) {
    timer_delete(timer);
    return;
  }
  st->timer = timer;
  st->timer_armed.store(true, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Drain-time symbolization

void AppendSanitizedFrame(std::string* out, std::string frame) {
  // Folded-format hygiene: ';' is the stack separator and a trailing
  // space-delimited token is the count, so neither may appear inside a
  // frame (spaces from template parameters are fine — parsers split on
  // the *last* space).
  for (char& c : frame) {
    if (c == ';' || c == '\n') c = ':';
  }
  *out += frame;
}

const std::string& SymbolizeFrame(void* pc,
                                  std::map<void*, std::string>* memo) {
  auto it = memo->find(pc);
  if (it != memo->end()) return it->second;
  std::string name;
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
    std::free(dem);
  } else if (info.dli_fname != nullptr) {
    // Anonymous-namespace / static functions are absent from the dynamic
    // symbol table even under -rdynamic; fall back to module+offset.
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    char buf[512];
    std::snprintf(buf, sizeof(buf), "%s+%#lx", base,
                  static_cast<unsigned long>(static_cast<char*>(pc) -
                                             static_cast<char*>(info.dli_fbase)));
    name = buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%#lx",
                  reinterpret_cast<unsigned long>(pc));
    name = buf;
  }
  return memo->emplace(pc, std::move(name)).first->second;
}

// Index of the first non-profiler frame (leaf side). The handler is an
// exported symbol, so when it symbolizes we can skip it plus the signal
// trampoline above it; otherwise fall back to skipping the canonical
// two leaf frames.
int FirstRealFrame(const Sample& s, std::map<void*, std::string>* memo) {
  const int limit = std::min<int32_t>(s.num_frames, 4);
  for (int i = 0; i < limit; ++i) {
    if (SymbolizeFrame(s.frames[i], memo).find("ProfilerSignalHandler") !=
        std::string::npos) {
      return std::min<int32_t>(i + 2, s.num_frames);
    }
  }
  return std::min<int32_t>(2, s.num_frames);
}

// Drains every ring into `agg` (folded stack -> count), advancing tails.
void DrainIntoAggregate(std::map<std::string, uint64_t>* agg) {
  std::map<uint32_t, std::string> thread_labels;
  for (const auto& [tid, label] : TraceStore::Instance().ThreadLabels()) {
    thread_labels[tid] = label;
  }
  std::map<void*, std::string> memo;
  std::string key;
  const int num_states = g_state_count.load(std::memory_order_acquire);
  for (int i = 0; i < num_states; ++i) {
    ThreadState* st = g_states[i];
    const uint64_t head = st->head.load(std::memory_order_acquire);
    uint64_t tail = st->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const Sample& s = st->ring[tail & (kRingCapacity - 1)];
      key.clear();
      auto lit = thread_labels.find(st->trace_tid);
      if (lit != thread_labels.end()) {
        AppendSanitizedFrame(&key, lit->second);
      } else {
        key += "thread-" + std::to_string(st->trace_tid);
      }
      for (int k = 0; k < s.num_spans; ++k) {
        key += ';';
        AppendSanitizedFrame(&key, LabelName(s.span_ids[k]));
      }
      const int begin = FirstRealFrame(s, &memo);
      for (int j = s.num_frames - 1; j >= begin; --j) {
        key += ';';
        AppendSanitizedFrame(&key, SymbolizeFrame(s.frames[j], &memo));
      }
      ++(*agg)[key];
    }
    st->tail.store(tail, std::memory_order_release);
  }
}

void EmitProfileAtExit() {
  const Status st = StopProfilerAndWrite();
  if (st.ok()) {
    if (g_profile_path[0] != '\0') {
      std::fprintf(stderr, "cpu profile written to %s\n", g_profile_path);
    }
  } else {
    std::fprintf(stderr, "cpu profile emission failed: %s\n",
                 st.ToString().c_str());
  }
}

}  // namespace

void RegisterCurrentThread() {
  if (!ProfilerEnabled()) return;
  ThreadState* st = tls_state;
  if (st != nullptr && st->timer_armed.load(std::memory_order_relaxed)) return;
  RegisterSlow();
}

void PushSpanLabel(std::string_view name) {
  const int depth = tls_span_depth;
  if (depth < kMaxSpanDepth) {
    tls_span_ids[depth] = InternLabel(name);
    std::atomic_signal_fence(std::memory_order_release);
  }
  tls_span_depth = depth + 1;
}

void PopSpanLabel() {
  if (tls_span_depth > 0) tls_span_depth -= 1;
}

int SpanLabelDepth() { return tls_span_depth; }

uint64_t SampleCount() {
  uint64_t total = 0;
  const int num_states = g_state_count.load(std::memory_order_acquire);
  for (int i = 0; i < num_states; ++i) {
    total += g_states[i]->head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t DroppedSampleCount() {
  uint64_t total = 0;
  const int num_states = g_state_count.load(std::memory_order_acquire);
  for (int i = 0; i < num_states; ++i) {
    total += g_states[i]->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

int SamplingHz() {
  return ProfilerEnabled() ? g_hz.load(std::memory_order_relaxed) : 0;
}

std::string RenderFoldedProfile() {
  std::lock_guard<std::mutex> lock(g_drain_mu);
  if (g_aggregate == nullptr) g_aggregate = new std::map<std::string, uint64_t>();
  DrainIntoAggregate(g_aggregate);
  std::string out;
  for (const auto& [stack, count] : *g_aggregate) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Status StartProfiler(const std::string& path, int hz) {
  if (path.empty()) {
    return Status::InvalidArgument("profiler output path is empty");
  }
  if (internal::g_profiling.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("profiler already running");
  }
  hz = std::clamp(hz, 1, 4000);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open profile output: " + path);
  }
  {
    // A previous Start/Stop cycle may have left samples behind; this run
    // starts from zero.
    std::lock_guard<std::mutex> lock(g_register_mu);
    const int num_states = g_state_count.load(std::memory_order_relaxed);
    for (int i = 0; i < num_states; ++i) {
      g_states[i]->head.store(0, std::memory_order_relaxed);
      g_states[i]->tail.store(0, std::memory_order_relaxed);
      g_states[i]->dropped.store(0, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(g_drain_mu);
    if (g_aggregate != nullptr) g_aggregate->clear();
  }
  std::snprintf(g_profile_path, sizeof(g_profile_path), "%s", path.c_str());
  const int old_fd = g_profile_fd.exchange(fd);
  if (old_fd >= 0) ::close(old_fd);
  g_hz.store(hz, std::memory_order_relaxed);
  // Force the unwinder's one-time setup (which may allocate and dlopen
  // libgcc) to happen here rather than inside the first signal delivery.
  void* warm[4];
  backtrace(warm, 4);
  static const bool handler_installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &ProfilerSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
    RegisterCrashFlush(&CrashFlushProfile);
    return true;
  }();
  (void)handler_installed;
  internal::g_profiling.store(true, std::memory_order_relaxed);
  SetSpanResourceAccountingEnabled(true);
  RegisterCurrentThread();
  return Status::OK();
}

Status StopProfilerAndWrite() {
  if (!internal::g_profiling.exchange(false)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(g_register_mu);
    const int num_states = g_state_count.load(std::memory_order_relaxed);
    for (int i = 0; i < num_states; ++i) {
      ThreadState* st = g_states[i];
      // POSIX timers are process-wide objects: deleting another (even
      // already-exited) thread's timer from here is well-defined. A
      // final expiry racing the delete is harmless — the handler
      // rechecks the enabled flag.
      if (st->timer_armed.exchange(false)) timer_delete(st->timer);
    }
  }
  if (!TraceTimelineEnabled()) SetSpanResourceAccountingEnabled(false);
  const std::string folded = RenderFoldedProfile();
  Metrics().GetGauge("prof.samples").Set(static_cast<double>(SampleCount()));
  Metrics().GetGauge("prof.dropped_samples")
      .Set(static_cast<double>(DroppedSampleCount()));
  Metrics().GetGauge("prof.hz")
      .Set(static_cast<double>(g_hz.load(std::memory_order_relaxed)));
  const int fd = g_profile_fd.exchange(-1);
  if (fd < 0) return Status::OK();
  const bool written = WriteAllBytes(fd, folded.data(), folded.size());
  ::close(fd);
  if (!written) {
    return Status::IOError(std::string("write failed for profile output: ") +
                           g_profile_path);
  }
  return Status::OK();
}

bool InstallProfiler() {
  static const bool installed = [] {
    const char* env = std::getenv("CONFCARD_PROFILE");
    if (env == nullptr || env[0] == '\0') return false;
    std::string spec(env);
    int hz = 99;
    const size_t colon = spec.rfind(':');
    if (colon != std::string::npos && colon + 1 < spec.size()) {
      const std::string suffix = spec.substr(colon + 1);
      if (suffix.find_first_not_of("0123456789") == std::string::npos) {
        hz = std::atoi(suffix.c_str());
        spec.resize(colon);
      }
    }
    const Status st = StartProfiler(spec, hz);
    if (!st.ok()) {
      std::fprintf(stderr, "profiler arming failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
    std::atexit(&EmitProfileAtExit);
    return true;
  }();
  return installed;
}

uint64_t ThreadAllocCount() { return tls_alloc_count; }
uint64_t ThreadAllocBytes() { return tls_alloc_bytes; }

double ThreadCpuMicros() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

void ThreadContextSwitches(uint64_t* voluntary, uint64_t* involuntary) {
  struct rusage ru;
  if (getrusage(RUSAGE_THREAD, &ru) != 0) {
    *voluntary = 0;
    *involuntary = 0;
    return;
  }
  *voluntary = static_cast<uint64_t>(ru.ru_nvcsw);
  *involuntary = static_cast<uint64_t>(ru.ru_nivcsw);
}

}  // namespace prof
}  // namespace obs
}  // namespace confcard

// ---------------------------------------------------------------------------
// Global operator new/delete replacement: the default behavior (malloc +
// bad_alloc) plus two thread-local increments, feeding the per-span
// allocation counters. The full C++17 variant set is replaced so no
// default definition can be pulled in from a sanitizer runtime archive
// (which would clash with these strong symbols); the aligned forms route
// through posix_memalign, and every delete is plain free, so mixing with
// the defaults stays well-defined. Sanitizers still see every byte:
// their malloc/free interceptors sit underneath these calls.

namespace {

inline void* CountedAlloc(std::size_t size) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) {
    ++tls_alloc_count;
    tls_alloc_bytes += size;
  }
  return p;
}

inline void* CountedAlignedAlloc(std::size_t size,
                                 std::size_t align) noexcept {
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? 1 : size) != 0) return nullptr;
  ++tls_alloc_count;
  tls_alloc_bytes += size;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
