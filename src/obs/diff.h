// Artifact regression detection: loads two run artifacts (BENCH_*.json)
// and/or per-query event logs (CONFCARD_EVENTS_JSONL output), aligns
// their metrics by name, and computes deltas under configurable
// thresholds — counters exactly, coverage within an absolute tolerance,
// latency histogram quantiles within a relative tolerance above a noise
// floor. The `obsdiff` tool wraps DiffRuns with a CLI and nonzero exit
// on regression, giving CI a primitive that gates on the trajectory
// files instead of eyeballing printf tables.
#ifndef CONFCARD_OBS_DIFF_H_
#define CONFCARD_OBS_DIFF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace confcard {
namespace obs {

/// Comparison thresholds. Defaults assume the deterministic-seeded
/// benches of this repo: everything except timing reproduces exactly, so
/// only latency quantiles get slack.
struct DiffOptions {
  /// Latency quantile regression: candidate > baseline * (1 + tol).
  double latency_rel_tol = 0.5;
  /// Quantiles where both sides are below this many microseconds are
  /// scheduler noise — skipped.
  double latency_floor_us = 100.0;
  /// Coverage gauges (name contains "coverage"): regression when the
  /// candidate drops more than this many coverage points.
  double coverage_abs_tol = 0.02;
  /// Counters and histogram sample counts: relative tolerance (0 =
  /// exact).
  double count_rel_tol = 0.0;
  /// Non-coverage gauges: relative tolerance.
  double gauge_rel_tol = 1e-6;
  /// When false, a metric present in the baseline but absent from the
  /// candidate is a note instead of a regression.
  bool fail_on_missing = true;
  /// Metric-name prefixes excluded from the diff in both directions.
  /// Defaults cover scheduling/wall-clock telemetry that legitimately
  /// varies with CONFCARD_THREADS while result metrics stay identical:
  /// thread-pool scheduling ("pool."), the guard's wall-clock latency
  /// histogram, the batched-inference throughput gauge, and the
  /// profiler's span resource accounting ("prof."). Override wholesale
  /// (the defaults are not merged in) — the obsdiff CLI loads
  /// replacements from a file via --exclude-file, falling back to the
  /// repo's tools/obsdiff_exclude.txt when present.
  std::vector<std::string> exclude_prefixes = {
      "pool.", "ce.guard.latency", "ce.infer.batch_queries_per_sec",
      "prof."};
};

struct DiffFinding {
  enum class Severity { kNote, kRegression };
  Severity severity = Severity::kNote;
  /// Qualified metric name, e.g. "histogram/harness.prep_us/p99" or
  /// "gauge/harness.coverage.3.mscn.s-cp".
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  std::string detail;
};

struct DiffReport {
  std::string baseline_name;
  std::string candidate_name;
  size_t compared = 0;
  std::vector<DiffFinding> findings;

  size_t NumRegressions() const;
  bool HasRegression() const { return NumRegressions() > 0; }
  /// Human-readable multi-line report.
  std::string ToText(bool include_notes = true) const;
  /// Machine-readable report (single JSON object).
  std::string ToJson() const;
};

/// Flattened, diffable view of one run. Both artifact JSON and event
/// logs reduce to this shape; event logs synthesize per-(run, model,
/// method) coverage/width gauges, count counters, and latency summaries
/// under the "events." prefix.
struct RunView {
  struct HistView {
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };

  std::string name;
  double wall_time_seconds = 0.0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistView> histograms;
  /// Span-name duration summaries (timing semantics, like histograms).
  std::map<std::string, HistView> span_summaries;
};

/// Builds a RunView from a parsed run artifact document.
Result<RunView> RunViewFromArtifact(const JsonValue& doc);

/// Builds a RunView from parsed event-log records (see
/// obs/event_log.h); `name` labels the view in reports.
Result<RunView> RunViewFromEvents(const std::vector<JsonValue>& events,
                                  const std::string& name);

/// Loads either format from disk: a file whose first non-space byte
/// opens a document containing a "run" key is an artifact, anything else
/// is treated as JSONL events.
Result<RunView> LoadRunView(const std::string& path);

/// Aligns the two views by metric name and applies the thresholds.
DiffReport DiffRuns(const RunView& baseline, const RunView& candidate,
                    const DiffOptions& options);

/// Reads exclusion prefixes for DiffOptions::exclude_prefixes from a
/// text file: one prefix per line; blank lines and lines starting with
/// '#' (after leading whitespace) are ignored; surrounding whitespace is
/// trimmed.
Result<std::vector<std::string>> LoadExcludePrefixes(
    const std::string& path);

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_DIFF_H_
