// In-process sampling CPU profiler with span-attributed resource
// accounting. Arming (CONFCARD_PROFILE=<path>[:hz], default 99 Hz)
// creates one POSIX per-thread CPU-time timer (CLOCK_THREAD_CPUTIME_ID,
// SIGEV_THREAD_ID) per registered thread; each expiry delivers SIGPROF
// to that thread, whose handler captures the native call stack plus the
// innermost open TraceSpan labels into a per-thread lock-free ring
// buffer. Nothing in the handler allocates, locks, or formats: capture
// is a backtrace() into preallocated storage plus relaxed atomics (the
// libgcc unwinder is preloaded at arming so its one-time dlopen cannot
// fire inside a handler). Symbolization (dladdr + demangling) and
// aggregation happen at drain time, producing collapsed-stack "folded"
// output (`frame;frame;...;leaf count`) ready for flamegraph.pl or
// speedscope; `tools/profcat` merges, summarizes, and diffs such files.
//
// Sampling uses the *thread CPU clock*, so blocked threads accumulate no
// samples — the profile answers "where do cycles go", while the span
// resource counters (voluntary/involuntary context switches, below)
// answer "where do threads stall".
//
// Span attribution: TraceSpan construction pushes the span name onto an
// async-signal-safe thread-local label stack (interned ids, plain
// stores, signal fences); samples carry the open label ids and the
// folded stacks lead with `thread;span;...` pseudo-frames, so flame
// graphs split by harness phase (fold.train vs infer.batch vs
// calibrate) before descending into native frames.
//
// Resource accounting: when armed (by the profiler, the trace timeline
// exporter, or SetSpanResourceAccountingEnabled), every TraceSpan also
// records its on-CPU time (thread CPU clock delta), allocation
// count/bytes (thread-local operator new/delete counters), and
// voluntary/involuntary context switches (getrusage(RUSAGE_THREAD)
// deltas) — exported as `args` on the Chrome-trace timeline and as
// prof.* metrics (obsdiff-excluded). Off, a span pays nothing and
// artifact bytes are unchanged.
//
// Crash safety: arming registers the drain on RegisterCrashFlush, so a
// crashed run still leaves a parseable partial folded profile — the
// same guarantee the event log gives JSONL.
#ifndef CONFCARD_OBS_PROFILER_H_
#define CONFCARD_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace confcard {
namespace obs {
namespace prof {

/// Hard caps on what one sample can carry. Deeper native stacks are
/// truncated at the root end (the leaf frames are the interesting ones);
/// deeper span nests keep the outermost labels.
inline constexpr int kMaxFramesPerSample = 48;
inline constexpr int kMaxSpanDepth = 12;

namespace internal {
inline std::atomic<bool> g_profiling{false};
}  // namespace internal

/// True while sampling is armed. One relaxed load — the gate TraceSpan
/// uses to decide whether to maintain the label stack, and the harnesses
/// use to open the detail spans (fold.train, infer.batch) that sampling
/// attributes work to.
inline bool ProfilerEnabled() {
  return internal::g_profiling.load(std::memory_order_relaxed);
}

/// Arms the profiler when CONFCARD_PROFILE names an output path
/// (`<path>` or `<path>:<hz>`). Idempotent; returns whether armed.
/// Arming registers the calling thread, installs the SIGPROF handler,
/// schedules an atexit drain, and chains the ring drain onto
/// RegisterCrashFlush.
bool InstallProfiler();

/// Programmatic arming for tests and benches. Fails if already running.
/// `hz` is clamped to [1, 4000].
Status StartProfiler(const std::string& path, int hz = 99);

/// Stops sampling (deletes every registered thread timer), drains all
/// rings, symbolizes, and writes the folded profile to the path given at
/// start. No-op Status::OK when the profiler was never started.
Status StopProfilerAndWrite();

/// Registers the calling thread for sampling: creates its CPU-clock
/// timer and ring buffer. Cheap no-op when the profiler is off or the
/// thread is already registered — pool workers and ParallelFor
/// participants call it unconditionally on entry.
void RegisterCurrentThread();

/// Number of samples currently captured across all rings (approximate
/// under concurrent sampling; exact once stopped).
uint64_t SampleCount();

/// Samples dropped due to full rings since arming.
uint64_t DroppedSampleCount();

/// Sampling interval actually armed, in Hz (0 when off).
int SamplingHz();

/// Drains every ring and renders the folded profile ("stack count"
/// lines, lexicographically sorted for determinism). Does not stop
/// sampling; safe to call at any time (in-flight samples may be missed,
/// never torn).
std::string RenderFoldedProfile();

// --- Span label stack (maintained by TraceSpan; exposed for tests) ---

/// Pushes/pops a span label for the calling thread. Push interns the
/// name (mutex-protected, warm path); the stack itself is plain stores
/// with signal fences, safe against the thread's own SIGPROF handler.
void PushSpanLabel(std::string_view name);
void PopSpanLabel();
/// Current depth of the calling thread's label stack.
int SpanLabelDepth();

// --- Thread-local resource counters (always maintained; read by
// TraceSpan when resource accounting is armed) ---

/// Monotonic allocation count/bytes for the calling thread, maintained
/// by the global operator new/delete replacements in profiler.cc.
uint64_t ThreadAllocCount();
uint64_t ThreadAllocBytes();

/// Thread CPU time in microseconds (CLOCK_THREAD_CPUTIME_ID).
double ThreadCpuMicros();

/// Voluntary / involuntary context switches for the calling thread
/// (getrusage(RUSAGE_THREAD)).
void ThreadContextSwitches(uint64_t* voluntary, uint64_t* involuntary);

}  // namespace prof

/// Arms/queries span-attributed resource accounting (see file comment).
/// Armed automatically by InstallProfiler and InstallTraceExporter.
void SetSpanResourceAccountingEnabled(bool enabled);
bool SpanResourceAccountingEnabled();

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_PROFILER_H_
