#include "obs/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <utility>

#include "common/stats.h"
#include "obs/event_log.h"

namespace confcard {
namespace obs {

namespace {

double NumberOr(const JsonValue* v, double fallback) {
  if (v == nullptr) return fallback;
  if (v->kind == JsonValue::Kind::kNull) {
    // Non-finite values serialize as null in artifacts.
    return std::numeric_limits<double>::quiet_NaN();
  }
  return v->number;
}

RunView::HistView HistViewFrom(const JsonValue& h, const char* suffix) {
  RunView::HistView out;
  out.count = static_cast<uint64_t>(NumberOr(h.Find("count"), 0.0));
  out.sum = NumberOr(h.Find("sum"), 0.0);
  const std::string mean = std::string("mean") + suffix;
  const std::string p50 = std::string("p50") + suffix;
  const std::string p90 = std::string("p90") + suffix;
  const std::string p99 = std::string("p99") + suffix;
  out.mean = NumberOr(h.Find(mean), 0.0);
  out.p50 = NumberOr(h.Find(p50), 0.0);
  out.p90 = NumberOr(h.Find(p90), 0.0);
  out.p99 = NumberOr(h.Find(p99), 0.0);
  if (out.sum == 0.0 && out.count > 0) {
    out.sum = out.mean * static_cast<double>(out.count);
  }
  return out;
}

}  // namespace

Result<RunView> RunViewFromArtifact(const JsonValue& doc) {
  const JsonValue* run = doc.Find("run");
  if (run == nullptr) {
    return Status::InvalidArgument("artifact has no \"run\" object");
  }
  RunView view;
  if (const JsonValue* name = run->Find("name")) {
    view.name = name->string_value;
  }
  view.wall_time_seconds = NumberOr(run->Find("wall_time_seconds"), 0.0);

  if (const JsonValue* counters = doc.Find("counters")) {
    for (const auto& [name, value] : counters->members) {
      view.counters[name] = static_cast<uint64_t>(value.number);
    }
  }
  if (const JsonValue* gauges = doc.Find("gauges")) {
    for (const auto& [name, value] : gauges->members) {
      view.gauges[name] = NumberOr(&value, 0.0);
    }
  }
  if (const JsonValue* histograms = doc.Find("histograms")) {
    for (const auto& [name, h] : histograms->members) {
      view.histograms[name] = HistViewFrom(h, "");
    }
  }
  if (const JsonValue* summaries = doc.Find("span_summaries")) {
    for (const auto& [name, s] : summaries->members) {
      view.span_summaries[name] = HistViewFrom(s, "_us");
    }
  }
  return view;
}

Result<RunView> RunViewFromEvents(const std::vector<JsonValue>& events,
                                  const std::string& name) {
  struct Group {
    uint64_t count = 0;
    uint64_t covered = 0;
    std::vector<double> widths;
    std::vector<double> latencies;
  };
  std::map<std::string, Group> groups;
  for (const JsonValue& e : events) {
    if (e.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("event record is not an object");
    }
    // Typed non-query records (the guard's intervention log) share the
    // JSONL stream but are not per-query outcomes; skip them.
    if (const JsonValue* type = e.Find("type");
        type != nullptr && type->string_value != "query") {
      continue;
    }
    const JsonValue* model = e.Find("model");
    const JsonValue* method = e.Find("method");
    if (model == nullptr || method == nullptr) {
      return Status::InvalidArgument("event record lacks model/method");
    }
    const uint64_t run_seq =
        static_cast<uint64_t>(NumberOr(e.Find("run"), 0.0));
    const std::string key = "events." + std::to_string(run_seq) + "." +
                            model->string_value + "." +
                            method->string_value;
    Group& g = groups[key];
    ++g.count;
    bool covered;
    if (const JsonValue* c = e.Find("covered");
        c != nullptr && c->kind == JsonValue::Kind::kBool) {
      covered = c->bool_value;
    } else {
      const double truth = NumberOr(e.Find("truth"), 0.0);
      const double lo = NumberOr(e.Find("lo"), 0.0);
      const double hi = NumberOr(e.Find("hi"), 0.0);
      covered = truth >= lo && truth <= hi;
    }
    g.covered += covered ? 1 : 0;
    const double width = NumberOr(e.Find("width"), 0.0);
    if (std::isfinite(width)) g.widths.push_back(width);
    const double lat = NumberOr(e.Find("lat_us"), 0.0);
    if (std::isfinite(lat)) g.latencies.push_back(lat);
  }

  RunView view;
  view.name = name;
  for (auto& [key, g] : groups) {
    view.counters[key + ".count"] = g.count;
    view.gauges[key + ".coverage"] =
        static_cast<double>(g.covered) / static_cast<double>(g.count);
    view.gauges[key + ".width_mean"] = Mean(g.widths);
    RunView::HistView lat;
    lat.count = g.latencies.size();
    for (double v : g.latencies) lat.sum += v;
    lat.mean = Mean(g.latencies);
    lat.p50 = Percentile(g.latencies, 50.0);
    lat.p90 = Percentile(g.latencies, 90.0);
    lat.p99 = Percentile(g.latencies, 99.0);
    view.histograms[key + ".lat_us"] = lat;
  }
  return view;
}

Result<RunView> LoadRunView(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open run file: " + path);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  std::string stem = path;
  const size_t slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem = stem.substr(slash + 1);

  // A whole-file strict parse that carries a "run" key is an artifact;
  // everything else (including a one-line log) is treated as JSONL.
  Result<JsonValue> doc = ParseJson(text);
  if (doc.ok() && doc->Find("run") != nullptr) {
    CONFCARD_ASSIGN_OR_RETURN(RunView view, RunViewFromArtifact(*doc));
    if (view.name.empty()) view.name = stem;
    return view;
  }
  CONFCARD_ASSIGN_OR_RETURN(std::vector<JsonValue> events,
                            ParseJsonl(text));
  if (events.empty()) {
    return Status::InvalidArgument("no parseable records in " + path);
  }
  return RunViewFromEvents(events, stem);
}

// ---------------------------------------------------------------------------
// Diff

namespace {

using Severity = DiffFinding::Severity;

void Add(DiffReport* report, Severity severity, std::string metric,
         double baseline, double candidate, std::string detail) {
  DiffFinding f;
  f.severity = severity;
  f.metric = std::move(metric);
  f.baseline = baseline;
  f.candidate = candidate;
  f.detail = std::move(detail);
  report->findings.push_back(std::move(f));
}

std::string Pct(double baseline, double candidate) {
  const double rel =
      (candidate - baseline) / std::max(std::fabs(baseline), 1e-12);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", rel * 100.0);
  return buf;
}

bool IsCoverageName(const std::string& name) {
  return name.find("coverage") != std::string::npos;
}

// Exclusions are prefix matches against DiffOptions::exclude_prefixes;
// the defaults cover scheduling/wall-clock telemetry that varies with
// CONFCARD_THREADS while every result metric stays bit-identical.
bool IsExcludedName(const std::string& name, const DiffOptions& opt) {
  for (const std::string& prefix : opt.exclude_prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void DiffQuantiles(const std::string& prefix, const RunView::HistView& a,
                   const RunView::HistView& b, const DiffOptions& opt,
                   DiffReport* report) {
  const std::pair<const char*, std::pair<double, double>> quantiles[] = {
      {"mean", {a.mean, b.mean}},
      {"p50", {a.p50, b.p50}},
      {"p90", {a.p90, b.p90}},
      {"p99", {a.p99, b.p99}},
  };
  for (const auto& [label, values] : quantiles) {
    const auto [old_v, new_v] = values;
    if (std::isnan(old_v) || std::isnan(new_v)) continue;
    if (std::max(old_v, new_v) < opt.latency_floor_us) continue;
    ++report->compared;
    const std::string metric = prefix + "/" + label;
    if (new_v > old_v * (1.0 + opt.latency_rel_tol)) {
      Add(report, Severity::kRegression, metric, old_v, new_v,
          "latency inflated " + Pct(old_v, new_v) + " (tol +" +
              std::to_string(static_cast<int>(opt.latency_rel_tol * 100)) +
              "%)");
    } else if (old_v > new_v * (1.0 + opt.latency_rel_tol)) {
      Add(report, Severity::kNote, metric, old_v, new_v,
          "latency improved " + Pct(old_v, new_v));
    }
  }
}

}  // namespace

size_t DiffReport::NumRegressions() const {
  size_t n = 0;
  for (const DiffFinding& f : findings) {
    n += f.severity == Severity::kRegression ? 1 : 0;
  }
  return n;
}

std::string DiffReport::ToText(bool include_notes) const {
  std::string out = "obsdiff: baseline=" + baseline_name +
                    " candidate=" + candidate_name + "\n";
  for (const DiffFinding& f : findings) {
    if (!include_notes && f.severity == Severity::kNote) continue;
    char line[512];
    std::snprintf(line, sizeof(line), "%s %s: %.6g -> %.6g  %s\n",
                  f.severity == Severity::kRegression ? "REGRESSION"
                                                      : "note      ",
                  f.metric.c_str(), f.baseline, f.candidate,
                  f.detail.c_str());
    out += line;
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "%zu comparisons, %zu regression(s), %zu note(s)\n",
                compared, NumRegressions(),
                findings.size() - NumRegressions());
  out += tail;
  return out;
}

std::string DiffReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("baseline").String(baseline_name);
  w.Key("candidate").String(candidate_name);
  w.Key("compared").Int(compared);
  w.Key("regressions").Int(NumRegressions());
  w.Key("findings").BeginArray();
  for (const DiffFinding& f : findings) {
    w.BeginObject();
    w.Key("severity").String(
        f.severity == Severity::kRegression ? "regression" : "note");
    w.Key("metric").String(f.metric);
    w.Key("baseline").Number(f.baseline);
    w.Key("candidate").Number(f.candidate);
    w.Key("detail").String(f.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Result<std::vector<std::string>> LoadExcludePrefixes(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open exclude file: " + path);
  }
  std::vector<std::string> prefixes;
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    const size_t last = line.find_last_not_of(" \t\r\n");
    line = line.substr(first, last - first + 1);
    if (line[0] == '#') continue;
    prefixes.push_back(std::move(line));
  }
  return prefixes;
}

DiffReport DiffRuns(const RunView& baseline, const RunView& candidate,
                    const DiffOptions& opt) {
  DiffReport report;
  report.baseline_name = baseline.name;
  report.candidate_name = candidate.name;
  const Severity missing_sev =
      opt.fail_on_missing ? Severity::kRegression : Severity::kNote;

  // Counters: exact by default.
  for (const auto& [name, old_v] : baseline.counters) {
    if (IsExcludedName(name, opt)) continue;
    auto it = candidate.counters.find(name);
    const std::string metric = "counter/" + name;
    if (it == candidate.counters.end()) {
      Add(&report, missing_sev, metric, static_cast<double>(old_v), 0.0,
          "counter missing from candidate");
      continue;
    }
    ++report.compared;
    const double a = static_cast<double>(old_v);
    const double b = static_cast<double>(it->second);
    const double rel = std::fabs(b - a) / std::max(a, 1.0);
    if (rel > opt.count_rel_tol) {
      Add(&report, Severity::kRegression, metric, a, b,
          "counter changed " + Pct(a, b));
    }
  }
  for (const auto& [name, new_v] : candidate.counters) {
    if (IsExcludedName(name, opt)) continue;
    if (baseline.counters.count(name) == 0) {
      Add(&report, Severity::kNote, "counter/" + name, 0.0,
          static_cast<double>(new_v), "new counter in candidate");
    }
  }

  // Gauges: coverage by absolute tolerance (drops only), the rest by
  // relative tolerance.
  for (const auto& [name, old_v] : baseline.gauges) {
    if (IsExcludedName(name, opt)) continue;
    auto it = candidate.gauges.find(name);
    const std::string metric = "gauge/" + name;
    if (it == candidate.gauges.end()) {
      Add(&report, missing_sev, metric, old_v, 0.0,
          "gauge missing from candidate");
      continue;
    }
    const double new_v = it->second;
    if (std::isnan(old_v) || std::isnan(new_v)) {
      if (std::isnan(old_v) != std::isnan(new_v)) {
        Add(&report, Severity::kNote, metric, old_v, new_v,
            "non-finite on one side only");
      }
      continue;
    }
    ++report.compared;
    if (IsCoverageName(name)) {
      const double drop = old_v - new_v;
      if (drop > opt.coverage_abs_tol) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "coverage dropped %.4f points (tol %.4f)", drop,
                      opt.coverage_abs_tol);
        Add(&report, Severity::kRegression, metric, old_v, new_v, buf);
      } else if (new_v - old_v > opt.coverage_abs_tol) {
        Add(&report, Severity::kNote, metric, old_v, new_v,
            "coverage rose (wider intervals?)");
      }
      continue;
    }
    const double rel =
        std::fabs(new_v - old_v) / std::max(std::fabs(old_v), 1e-12);
    if (rel > opt.gauge_rel_tol) {
      Add(&report, Severity::kRegression, metric, old_v, new_v,
          "gauge changed " + Pct(old_v, new_v));
    }
  }

  // Histograms: sample counts exactly, quantiles with latency slack.
  for (const auto& [name, old_h] : baseline.histograms) {
    if (IsExcludedName(name, opt)) continue;
    auto it = candidate.histograms.find(name);
    const std::string prefix = "histogram/" + name;
    if (it == candidate.histograms.end()) {
      Add(&report, missing_sev, prefix,
          static_cast<double>(old_h.count), 0.0,
          "histogram missing from candidate");
      continue;
    }
    const RunView::HistView& new_h = it->second;
    ++report.compared;
    const double a = static_cast<double>(old_h.count);
    const double b = static_cast<double>(new_h.count);
    if (std::fabs(b - a) / std::max(a, 1.0) > opt.count_rel_tol) {
      Add(&report, Severity::kRegression, prefix + "/count", a, b,
          "sample count changed " + Pct(a, b));
    }
    DiffQuantiles(prefix, old_h, new_h, opt, &report);
  }

  // Span summaries: timing-only, and tracing may be armed in one run but
  // not the other — absence is never more than a note.
  for (const auto& [name, old_s] : baseline.span_summaries) {
    auto it = candidate.span_summaries.find(name);
    const std::string prefix = "span/" + name;
    if (it == candidate.span_summaries.end()) {
      Add(&report, Severity::kNote, prefix,
          static_cast<double>(old_s.count), 0.0,
          "span summary missing from candidate");
      continue;
    }
    DiffQuantiles(prefix, old_s, it->second, opt, &report);
  }

  // Wall time: informational only.
  if (baseline.wall_time_seconds > 0.0 &&
      candidate.wall_time_seconds >
          baseline.wall_time_seconds * (1.0 + opt.latency_rel_tol)) {
    Add(&report, Severity::kNote, "run/wall_time_seconds",
        baseline.wall_time_seconds, candidate.wall_time_seconds,
        "wall time inflated " +
            Pct(baseline.wall_time_seconds, candidate.wall_time_seconds));
  }

  return report;
}

}  // namespace obs
}  // namespace confcard
