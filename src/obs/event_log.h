// Per-query event log: one JSONL record per evaluated query (identity,
// point estimate, interval, truth, derived covered/width/q-error, and
// PI-construction latency), streamed to the path named by
// CONFCARD_EVENTS_JSONL. With the variable unset, enabled() is a single
// relaxed atomic load and Append returns immediately, keeping the
// per-query overhead of an un-instrumented run negligible. The JSONL
// reader tolerates a truncated final line (crash mid-write) so partial
// logs stay usable.
//
// Concurrency model: hot-path producers (e.g. guard interventions inside
// a ParallelFor sweep) stage rendered lines in per-thread buffers keyed
// by a 64-bit order key — no shared lock, no contention. Staged records
// are merged into the central buffer in ascending key order at the next
// serial point (Append/AppendAll/Flush/Close), so the file order is a
// pure function of the keys and repeated runs at any thread count
// produce identical logs. Serial producers (the harness finalizer, the
// online stream) append directly; on a single-threaded run every staged
// record drains before the next direct append, which reproduces the
// historical append-at-emission file order byte for byte.
//
// Crash safety: arming the log registers both an atexit flush and a
// best-effort fatal-signal flush (see RegisterCrashFlush) that writes
// the central buffer plus any staged lines with raw write(2), so a
// crashed bench leaves a parseable partial JSONL.
#ifndef CONFCARD_OBS_EVENT_LOG_H_
#define CONFCARD_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace confcard {
namespace obs {

/// One evaluated query. covered/width/qerr are derived at render time
/// from (truth, estimate, lo, hi), so call sites only supply the raw
/// outcome.
struct QueryEvent {
  /// Method-run ordinal assigned by FinalizeMethodResult (0 for the
  /// online stream, which has no batch finalization).
  uint64_t run_seq = 0;
  /// Query index within the method's test stream.
  uint64_t query_id = 0;
  std::string_view model;
  std::string_view method;
  double alpha = 0.0;
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double truth = 0.0;
  /// Per-query PI-construction latency in microseconds (0 when the
  /// caller did not measure).
  double latency_us = 0.0;
  /// True when the estimate came from a guard fallback and the interval
  /// was conservatively inflated. Rendered as a trailing "deg":true only
  /// when set, so logs from runs without degradation are byte-identical
  /// to earlier versions.
  bool degraded = false;
};

/// Renders one event as a single-line JSON object (no trailing newline):
/// {"run","q","model","method","alpha","est","lo","hi","truth",
///  "covered","width","qerr","lat_us"}. Non-finite bounds serialize as
/// null per the JsonWriter convention.
std::string RenderQueryEvent(const QueryEvent& e);

/// Registers `fn` to run from the fatal-signal handler (SIGSEGV, SIGBUS,
/// SIGFPE, SIGILL, SIGABRT, SIGTERM) before the default disposition is
/// restored and the signal re-raised. Handlers must be best-effort
/// re-entrancy-hardened; a reentry guard ensures the chain runs at most
/// once per process. Installing the handlers happens on the first call.
void RegisterCrashFlush(void (*fn)());

/// Process-wide JSONL sink, armed by CONFCARD_EVENTS_JSONL at first use.
class EventLog {
 public:
  static EventLog& Instance();

  /// Cheap gate for hot paths: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Buffers one record; no-op when disabled. Serial point: staged
  /// records drain (in key order) ahead of this record.
  void Append(const QueryEvent& e);

  /// Stages one pre-rendered single-line JSON record (no trailing
  /// newline) — for non-query records such as the guard's intervention
  /// log, which carry a "type" discriminator — in the calling thread's
  /// buffer under an automatically assigned order key. No lock on the
  /// central buffer is taken. No-op when disabled.
  void AppendRecord(std::string line);

  /// AppendRecord with an explicit order key (see NextOrderWindow):
  /// concurrent producers that pass keys derived from deterministic
  /// per-item indices get a deterministic merged file order regardless
  /// of thread scheduling.
  void AppendRecordOrdered(std::string line, uint64_t order_key);

  /// Buffers a batch under one lock acquisition: all lines are rendered
  /// up front, then spliced contiguously, so a batch is never
  /// interleaved with concurrent appenders. Serial point: staged records
  /// drain ahead of the batch. No-op when disabled.
  void AppendAll(const std::vector<QueryEvent>& events);

  /// Allocates a fresh ordering window. A parallel sweep takes one
  /// window at its (serial) start and keys each staged record with
  /// OrderKey(window, item_index); windows are globally ordered by
  /// allocation, so successive sweeps never interleave.
  uint64_t NextOrderWindow() {
    return next_window_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Composes a sortable 64-bit key: window in the high 32 bits, item
  /// index in the low 32.
  static constexpr uint64_t OrderKey(uint64_t window, uint64_t index) {
    return (window << 32) | (index & 0xffffffffull);
  }

  /// Drains staged records and flushes the buffer to disk (also
  /// registered atexit when armed).
  void Flush();

  /// Total records accepted (buffered or staged) since the log was
  /// armed.
  uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }

  /// Redirects the log to `path` regardless of the environment —
  /// test-only. CloseForTest drains, flushes, closes, and disables
  /// again.
  Status OpenForTest(const std::string& path);
  void CloseForTest();

 private:
  EventLog();

  struct StagedRecord {
    uint64_t key = 0;
    std::string line;
  };
  /// Per-thread staging buffer. Owned jointly by the registry (so
  /// records survive thread exit until the next drain) and the
  /// thread-local handle.
  struct Stage {
    std::mutex mu;
    std::vector<StagedRecord> records;
  };

  Stage* ThreadStage();
  uint64_t AutoOrderKey();
  void StageRecord(std::string line, uint64_t key);
  void DrainStagesLocked();
  void FlushLocked();
  static void CrashFlush();

  static constexpr size_t kFlushBytes = 64 * 1024;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> appended_{0};
  // Window 0 is never allocated: order key 0 is reserved as the
  // "assign automatically" sentinel used by the guard's serial paths.
  std::atomic<uint64_t> next_window_{1};
  std::atomic<uint64_t> staged_count_{0};
  // Bumped on every drain; per-thread automatic windows re-key
  // themselves afterwards so later serial emissions sort after earlier
  // explicit windows.
  std::atomic<uint64_t> drain_epoch_{0};
  std::mutex stages_mu_;
  std::vector<std::shared_ptr<Stage>> stages_;
  std::mutex mu_;
  std::string buffer_;
  std::FILE* file_ = nullptr;
};

/// Parses a JSONL document: one JSON value per non-empty line. A final
/// line that fails to parse is treated as a crash-truncated partial
/// write — it is skipped and counted in `*skipped_partial` (when
/// non-null) instead of failing the whole read. A malformed line
/// anywhere else is an error.
Result<std::vector<JsonValue>> ParseJsonl(std::string_view text,
                                          size_t* skipped_partial = nullptr);

/// ParseJsonl over the contents of `path`.
Result<std::vector<JsonValue>> ReadJsonlFile(const std::string& path,
                                             size_t* skipped_partial =
                                                 nullptr);

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_EVENT_LOG_H_
