// Per-query event log: one JSONL record per evaluated query (identity,
// point estimate, interval, truth, derived covered/width/q-error, and
// PI-construction latency), streamed to the path named by
// CONFCARD_EVENTS_JSONL. Appends are buffered behind a mutex and flushed
// in 64 KiB chunks; with the variable unset, enabled() is a single
// relaxed atomic load and Append returns immediately, keeping the
// per-query overhead of an un-instrumented run negligible. The JSONL
// reader tolerates a truncated final line (crash mid-write) so partial
// logs stay usable.
//
// Thread safety: Append/AppendAll/Flush may be called concurrently from
// any thread — each record is rendered outside the lock and spliced into
// the buffer whole, so lines never interleave. Concurrent appenders that
// need a deterministic file order must serialize themselves (the harness
// does: workers fill pre-sized row slots and a single thread emits the
// events in index order via AppendAll).
#ifndef CONFCARD_OBS_EVENT_LOG_H_
#define CONFCARD_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace confcard {
namespace obs {

/// One evaluated query. covered/width/qerr are derived at render time
/// from (truth, estimate, lo, hi), so call sites only supply the raw
/// outcome.
struct QueryEvent {
  /// Method-run ordinal assigned by FinalizeMethodResult (0 for the
  /// online stream, which has no batch finalization).
  uint64_t run_seq = 0;
  /// Query index within the method's test stream.
  uint64_t query_id = 0;
  std::string_view model;
  std::string_view method;
  double alpha = 0.0;
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double truth = 0.0;
  /// Per-query PI-construction latency in microseconds (0 when the
  /// caller did not measure).
  double latency_us = 0.0;
  /// True when the estimate came from a guard fallback and the interval
  /// was conservatively inflated. Rendered as a trailing "deg":true only
  /// when set, so logs from runs without degradation are byte-identical
  /// to earlier versions.
  bool degraded = false;
};

/// Renders one event as a single-line JSON object (no trailing newline):
/// {"run","q","model","method","alpha","est","lo","hi","truth",
///  "covered","width","qerr","lat_us"}. Non-finite bounds serialize as
/// null per the JsonWriter convention.
std::string RenderQueryEvent(const QueryEvent& e);

/// Process-wide JSONL sink, armed by CONFCARD_EVENTS_JSONL at first use.
class EventLog {
 public:
  static EventLog& Instance();

  /// Cheap gate for hot paths: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Buffers one record; no-op when disabled.
  void Append(const QueryEvent& e);

  /// Buffers one pre-rendered single-line JSON record (no trailing
  /// newline) — for non-query records such as the guard's intervention
  /// log, which carry a "type" discriminator. No-op when disabled.
  void AppendRecord(std::string line);

  /// Buffers a batch under one lock acquisition: all lines are rendered
  /// up front, then spliced contiguously, so a batch is never
  /// interleaved with concurrent appenders. No-op when disabled.
  void AppendAll(const std::vector<QueryEvent>& events);

  /// Flushes the buffer to disk (also registered atexit when armed).
  void Flush();

  /// Total records accepted since the log was armed.
  uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }

  /// Redirects the log to `path` regardless of the environment —
  /// test-only. CloseForTest flushes, closes, and disables again.
  Status OpenForTest(const std::string& path);
  void CloseForTest();

 private:
  EventLog();

  void FlushLocked();

  static constexpr size_t kFlushBytes = 64 * 1024;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> appended_{0};
  std::mutex mu_;
  std::string buffer_;
  std::FILE* file_ = nullptr;
};

/// Parses a JSONL document: one JSON value per non-empty line. A final
/// line that fails to parse is treated as a crash-truncated partial
/// write — it is skipped and counted in `*skipped_partial` (when
/// non-null) instead of failing the whole read. A malformed line
/// anywhere else is an error.
Result<std::vector<JsonValue>> ParseJsonl(std::string_view text,
                                          size_t* skipped_partial = nullptr);

/// ParseJsonl over the contents of `path`.
Result<std::vector<JsonValue>> ReadJsonlFile(const std::string& path,
                                             size_t* skipped_partial =
                                                 nullptr);

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_EVENT_LOG_H_
