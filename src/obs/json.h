// Machine-readable run artifacts: a minimal JSON writer/parser and the
// emitter that serializes a full run — registry snapshot, span tree, and
// run metadata — to the BENCH_<name>.json schema documented in
// docs/OBSERVABILITY.md. The parser exists so tests and the ctest smoke
// gate can validate emitted artifacts without external dependencies.
#ifndef CONFCARD_OBS_JSON_H_
#define CONFCARD_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace confcard {
namespace obs {

/// Streaming JSON writer with automatic comma management. Non-finite
/// numbers (the +inf of an empty-calibration delta, say) serialize as
/// null, keeping the output standard-compliant.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();
  std::string out_;
  // One entry per open container: true until its first element is
  // written.
  std::vector<bool> first_in_scope_{true};
  bool pending_key_ = false;
};

/// Parsed JSON document (object keys keep insertion order).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Strict parse of a complete JSON document (trailing garbage is an
/// error).
Result<JsonValue> ParseJson(std::string_view text);

/// Re-renders a parsed document (numbers via %.17g, so integral values
/// round-trip unchanged). Lets tools rewrite artifacts — e.g. the
/// obsdiff gate test injecting a synthetic regression into a run.
std::string SerializeJson(const JsonValue& value);

/// Renders the current process state — run metadata, every registry
/// counter/gauge/histogram, completed span trees, and per-span-name
/// duration summaries — as one JSON document.
std::string RenderRunArtifact(const std::string& run_name);

/// RenderRunArtifact + write to `path`.
Status WriteRunArtifact(const std::string& path, const std::string& run_name);

/// When CONFCARD_METRICS_JSON names a path: enables trace collection and
/// registers an atexit hook that writes the run artifact there, named
/// after the experiment metadata (falling back to the file stem).
/// Returns whether the emitter is armed. Idempotent: repeated calls —
/// including from inline globals instantiated in several TUs — arm the
/// hook at most once (the "obs.emitter.installs" counter records the
/// single arming), and the hook itself writes at most one artifact even
/// if registered twice.
bool InstallExitEmitter();

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_JSON_H_
