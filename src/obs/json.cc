#include "obs/json.h"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "common/stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace confcard {
namespace obs {

// ---------------------------------------------------------------------------
// Writer

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  String(key);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  for (char c : value) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    CONFCARD_RETURN_NOT_OK(ParseValue(&v));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("json: " + msg + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    CONFCARD_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      CONFCARD_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      CONFCARD_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      CONFCARD_RETURN_NOT_OK(ParseValue(&value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      CONFCARD_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    CONFCARD_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      CONFCARD_RETURN_NOT_OK(ParseValue(&value));
      out->elements.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return Status::OK();
      CONFCARD_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    CONFCARD_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // Our artifacts only escape control characters; anything in the
          // Latin-1 range round-trips, the rest degrades to '?'.
          out->push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default: return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Error("unknown literal");
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    // text_ views a NUL-terminated buffer in every caller (std::string);
    // strtod stops at the first non-number character regardless.
    out->number = std::strtod(begin, &end);
    if (end == begin) return Error("invalid number");
    pos_ += static_cast<size_t>(end - begin);
    out->kind = JsonValue::Kind::kNumber;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

namespace {

void WriteJsonValue(JsonWriter* w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w->Null();
      break;
    case JsonValue::Kind::kBool:
      w->Bool(v.bool_value);
      break;
    case JsonValue::Kind::kNumber:
      w->Number(v.number);
      break;
    case JsonValue::Kind::kString:
      w->String(v.string_value);
      break;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [key, member] : v.members) {
        w->Key(key);
        WriteJsonValue(w, member);
      }
      w->EndObject();
      break;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& element : v.elements) {
        WriteJsonValue(w, element);
      }
      w->EndArray();
      break;
  }
}

}  // namespace

std::string SerializeJson(const JsonValue& value) {
  JsonWriter w;
  WriteJsonValue(&w, value);
  return w.TakeString();
}

// ---------------------------------------------------------------------------
// Run artifact

namespace {

void WriteHistogram(JsonWriter* w, const Histogram::Snapshot& h) {
  w->BeginObject();
  w->Key("count").Int(h.count);
  w->Key("sum").Number(h.sum);
  w->Key("min").Number(h.min);
  w->Key("max").Number(h.max);
  w->Key("mean").Number(h.Mean());
  w->Key("p50").Number(h.Percentile(50));
  w->Key("p90").Number(h.Percentile(90));
  w->Key("p99").Number(h.Percentile(99));
  w->Key("buckets").BeginArray();
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;  // sparse encoding
    w->BeginObject();
    w->Key("le").Number(Histogram::BucketUpperBound(i));
    w->Key("count").Int(h.buckets[i]);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void WriteSpan(JsonWriter* w, const SpanNode& span) {
  w->BeginObject();
  w->Key("name").String(span.name);
  w->Key("start_us").Number(span.start_micros);
  w->Key("dur_us").Number(span.duration_micros);
  if (!span.attrs.empty()) {
    w->Key("attrs").BeginObject();
    for (const auto& [key, value] : span.attrs) {
      w->Key(key).Number(value);
    }
    w->EndObject();
  }
  if (!span.children.empty()) {
    w->Key("children").BeginArray();
    for (const auto& child : span.children) WriteSpan(w, *child);
    w->EndArray();
  }
  w->EndObject();
}

void CollectDurations(const SpanNode& span,
                      std::map<std::string, std::vector<double>>* by_name) {
  (*by_name)[span.name].push_back(span.duration_micros);
  for (const auto& child : span.children) CollectDurations(*child, by_name);
}

}  // namespace

std::string RenderRunArtifact(const std::string& run_name) {
  const MetricsRegistry::Snapshot snap = Metrics().TakeSnapshot();

  JsonWriter w;
  w.BeginObject();

  w.Key("run").BeginObject();
  w.Key("name").String(run_name);
  w.Key("wall_time_seconds").Number(TraceNowMicros() * 1e-6);
  w.Key("meta").BeginObject();
  for (const auto& [key, value] : snap.meta) w.Key(key).String(value);
  w.EndObject();
  w.EndObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) w.Key(name).Int(value);
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) w.Key(name).Number(value);
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snap.histograms) {
    w.Key(name);
    WriteHistogram(&w, hist);
  }
  w.EndObject();

  w.Key("spans").BeginArray();
  std::map<std::string, std::vector<double>> durations;
  TraceStore::Instance().ForEachRoot([&](const SpanNode& root) {
    WriteSpan(&w, root);
    CollectDurations(root, &durations);
  });
  w.EndArray();

  // Per-span-name duration summaries via common/stats.h, so span timing
  // is quotable without re-walking the tree.
  w.Key("span_summaries").BeginObject();
  for (const auto& [name, micros] : durations) {
    const Summary s = Summarize(micros);
    w.Key(name).BeginObject();
    w.Key("count").Int(s.count);
    w.Key("mean_us").Number(s.mean);
    w.Key("min_us").Number(s.min);
    w.Key("max_us").Number(s.max);
    w.Key("p50_us").Number(s.median);
    w.Key("p90_us").Number(s.p90);
    w.Key("p99_us").Number(s.p99);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

Status WriteRunArtifact(const std::string& path,
                        const std::string& run_name) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open metrics artifact: " + path);
  }
  out << RenderRunArtifact(run_name) << '\n';
  out.flush();
  if (!out.good()) {
    return Status::IOError("write failed for metrics artifact: " + path);
  }
  return Status::OK();
}

namespace {

// Plain buffer, not std::string: InstallExitEmitter may run during
// another TU's static initialization (the bench_common.h inline global),
// before/after this TU's dynamic init in unspecified order. A
// constant-initialized array has no such lifetime hazard, and stays
// alive for the atexit hook.
char g_emit_path[4096] = {0};

// Double-emission guard: even if the atexit hook were registered from
// more than one arming path, only the first invocation writes.
std::atomic<bool> g_emitted{false};

void EmitAtExit() {
  if (g_emitted.exchange(true)) return;
  // Prefer the experiment id recorded by PrintExperimentHeader; fall
  // back to the artifact's file stem.
  std::string name;
  for (const auto& [key, value] : Metrics().TakeSnapshot().meta) {
    if (key == "experiment.id") name = value;
  }
  if (name.empty()) {
    name = g_emit_path;
    const size_t slash = name.find_last_of("/\\");
    if (slash != std::string::npos) name = name.substr(slash + 1);
    const size_t dot = name.find_last_of('.');
    if (dot != std::string::npos) name = name.substr(0, dot);
  }
  const Status st = WriteRunArtifact(g_emit_path, name);
  if (st.ok()) {
    std::fprintf(stderr, "metrics artifact written to %s\n", g_emit_path);
  } else {
    std::fprintf(stderr, "metrics artifact emission failed: %s\n",
                 st.ToString().c_str());
  }
}

}  // namespace

bool InstallExitEmitter() {
  // Arm the trace timeline exporter and the sampling profiler alongside
  // the artifact emitter, so any binary that opts into
  // CONFCARD_METRICS_JSON also honors CONFCARD_TRACE_JSON and
  // CONFCARD_PROFILE without separate plumbing. All installs are
  // idempotent. The profiler is armed LAST: atexit hooks run LIFO, so
  // registering its drain after EmitAtExit below makes the drain run
  // first and the artifact snapshot see the prof.samples/prof.hz gauges
  // it sets.
  InstallTraceExporter();
  // The function-local static makes arming idempotent across every
  // caller — bench TUs, tests, and tools all funnel through this one
  // definition, so linking several TUs that arm via inline globals still
  // registers exactly one atexit hook.
  static const bool installed = [] {
    const char* path = std::getenv("CONFCARD_METRICS_JSON");
    if (path == nullptr || path[0] == '\0') return false;
    std::snprintf(g_emit_path, sizeof(g_emit_path), "%s", path);
    TraceStore::Instance().SetEnabled(true);
    Metrics().GetCounter("obs.emitter.installs").Increment();
    std::atexit(&EmitAtExit);
    // Best-effort artifact on fatal signals too: EmitAtExit's exchange
    // guard keeps the later atexit pass from double-writing.
    RegisterCrashFlush(&EmitAtExit);
    return true;
  }();
  prof::InstallProfiler();
  return installed;
}

}  // namespace obs
}  // namespace confcard
