#include "obs/trace.h"

namespace confcard {
namespace obs {
namespace {

// Innermost live (collected) span on this thread.
thread_local SpanNode* tls_current_span = nullptr;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double TraceNowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

TraceStore& TraceStore::Instance() {
  static TraceStore* store = new TraceStore();
  return *store;
}

void TraceStore::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool TraceStore::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

void TraceStore::AddRoot(std::unique_ptr<SpanNode> root) {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.push_back(std::move(root));
}

void TraceStore::ForEachRoot(
    const std::function<void(const SpanNode&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& root : roots_) fn(*root);
}

size_t TraceStore::NumRoots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_.size();
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.clear();
}

TraceSpan::TraceSpan(std::string_view name) {
  if (!TraceStore::Instance().enabled()) return;
  node_ = std::make_unique<SpanNode>();
  node_->name = std::string(name);
  node_->start_micros = TraceNowMicros();
  parent_ = tls_current_span;
  tls_current_span = node_.get();
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  node_->duration_micros = watch_.ElapsedMicros();
  tls_current_span = parent_;
  if (parent_ != nullptr) {
    parent_->children.push_back(std::move(node_));
  } else {
    TraceStore::Instance().AddRoot(std::move(node_));
  }
}

void TraceSpan::SetAttr(std::string_view key, double value) {
  if (node_ == nullptr) return;
  node_->attrs.emplace_back(std::string(key), value);
}

ScopedTimer::ScopedTimer(std::string_view span_name, double* millis_out,
                         Histogram* histogram, double divisor)
    : span_(span_name),
      millis_out_(millis_out),
      histogram_(histogram),
      divisor_(divisor > 0.0 ? divisor : 1.0) {}

ScopedTimer::~ScopedTimer() {
  const double micros = span_.ElapsedMicros();
  if (millis_out_ != nullptr) *millis_out_ = micros * 1e-3;
  if (histogram_ != nullptr) histogram_->Record(micros / divisor_);
}

}  // namespace obs
}  // namespace confcard
