#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.h"
#include "obs/profiler.h"

namespace confcard {
namespace obs {
namespace {

// Innermost live (collected) span on this thread.
thread_local SpanNode* tls_current_span = nullptr;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double TraceNowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

uint32_t CurrentTraceThreadId() {
  static std::atomic<uint32_t> next{1};
  static thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SetTraceThreadLabel(std::string_view label) {
  TraceStore::Instance().SetThreadLabel(CurrentTraceThreadId(), label);
}

TraceStore& TraceStore::Instance() {
  static TraceStore* store = new TraceStore();
  return *store;
}

void TraceStore::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool TraceStore::enabled() const {
  return enabled_.load(std::memory_order_relaxed);
}

void TraceStore::AddRoot(std::unique_ptr<SpanNode> root) {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.push_back(std::move(root));
}

void TraceStore::ForEachRoot(
    const std::function<void(const SpanNode&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& root : roots_) fn(*root);
}

size_t TraceStore::NumRoots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_.size();
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.clear();
}

void TraceStore::SetThreadLabel(uint32_t tid, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, name] : thread_labels_) {
    if (existing == tid) {
      name = std::string(label);
      return;
    }
  }
  thread_labels_.emplace_back(tid, std::string(label));
}

std::vector<std::pair<uint32_t, std::string>> TraceStore::ThreadLabels()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_labels_;
}

TraceSpan::TraceSpan(std::string_view name) {
  if (prof::ProfilerEnabled()) {
    // Label first: CPU samples taken during the span's own setup should
    // already attribute to it.
    prof::PushSpanLabel(name);
    label_pushed_ = true;
  }
  if (SpanResourceAccountingEnabled()) {
    res_armed_ = true;
    res_name_.assign(name);
    // Baselines last, so the bookkeeping above (label interning, the
    // name copy) stays out of this span's own deltas.
    res_allocs_ = prof::ThreadAllocCount();
    res_alloc_bytes_ = prof::ThreadAllocBytes();
    prof::ThreadContextSwitches(&res_vol_csw_, &res_invol_csw_);
    res_cpu_us_ = prof::ThreadCpuMicros();
  }
  if (!TraceStore::Instance().enabled()) return;
  node_ = std::make_unique<SpanNode>();
  node_->name = std::string(name);
  node_->tid = CurrentTraceThreadId();
  node_->start_micros = TraceNowMicros();
  parent_ = tls_current_span;
  tls_current_span = node_.get();
}

TraceSpan::~TraceSpan() {
  if (res_armed_) {
    const double cpu_us = prof::ThreadCpuMicros() - res_cpu_us_;
    const uint64_t allocs = prof::ThreadAllocCount() - res_allocs_;
    const uint64_t alloc_bytes = prof::ThreadAllocBytes() - res_alloc_bytes_;
    uint64_t vol = 0;
    uint64_t invol = 0;
    prof::ThreadContextSwitches(&vol, &invol);
    const uint64_t vol_csw = vol - res_vol_csw_;
    const uint64_t invol_csw = invol - res_invol_csw_;
    MetricsRegistry& reg = Metrics();
    reg.GetHistogram("prof." + res_name_ + ".cpu_us").Record(cpu_us);
    reg.GetCounter("prof." + res_name_ + ".allocs").Increment(allocs);
    reg.GetCounter("prof." + res_name_ + ".alloc_bytes")
        .Increment(alloc_bytes);
    reg.GetCounter("prof." + res_name_ + ".vol_ctxsw").Increment(vol_csw);
    reg.GetCounter("prof." + res_name_ + ".invol_ctxsw")
        .Increment(invol_csw);
    if (node_ != nullptr) {
      node_->attrs.emplace_back("cpu_us", cpu_us);
      node_->attrs.emplace_back("allocs", static_cast<double>(allocs));
      node_->attrs.emplace_back("alloc_bytes",
                                static_cast<double>(alloc_bytes));
      node_->attrs.emplace_back("vol_ctxsw", static_cast<double>(vol_csw));
      node_->attrs.emplace_back("invol_ctxsw",
                                static_cast<double>(invol_csw));
    }
  }
  if (node_ != nullptr) {
    node_->duration_micros = watch_.ElapsedMicros();
    tls_current_span = parent_;
    if (parent_ != nullptr) {
      parent_->children.push_back(std::move(node_));
    } else {
      TraceStore::Instance().AddRoot(std::move(node_));
    }
  }
  if (label_pushed_) prof::PopSpanLabel();
}

void TraceSpan::SetAttr(std::string_view key, double value) {
  if (node_ == nullptr) return;
  node_->attrs.emplace_back(std::string(key), value);
}

ScopedTimer::ScopedTimer(std::string_view span_name, double* millis_out,
                         Histogram* histogram, double divisor)
    : span_(span_name),
      millis_out_(millis_out),
      histogram_(histogram),
      divisor_(divisor > 0.0 ? divisor : 1.0) {}

ScopedTimer::~ScopedTimer() {
  const double micros = span_.ElapsedMicros();
  if (millis_out_ != nullptr) *millis_out_ = micros * 1e-3;
  if (histogram_ != nullptr) histogram_->Record(micros / divisor_);
}

// ---------------------------------------------------------------------------
// Chrome trace export

namespace {

void WriteChromeSpan(JsonWriter* w, const SpanNode& span) {
  w->BeginObject();
  w->Key("ph").String("X");
  w->Key("pid").Int(1);
  w->Key("tid").Int(span.tid);
  w->Key("name").String(span.name);
  w->Key("ts").Number(span.start_micros);
  w->Key("dur").Number(span.duration_micros);
  if (!span.attrs.empty()) {
    w->Key("args").BeginObject();
    for (const auto& [key, value] : span.attrs) w->Key(key).Number(value);
    w->EndObject();
  }
  w->EndObject();
  for (const auto& child : span.children) WriteChromeSpan(w, *child);
}

}  // namespace

std::string RenderChromeTrace() {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const auto& [tid, label] : TraceStore::Instance().ThreadLabels()) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("pid").Int(1);
    w.Key("tid").Int(tid);
    w.Key("name").String("thread_name");
    w.Key("args").BeginObject().Key("name").String(label).EndObject();
    w.EndObject();
  }
  TraceStore::Instance().ForEachRoot(
      [&](const SpanNode& root) { WriteChromeSpan(&w, root); });
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace output: " + path);
  }
  out << RenderChromeTrace() << '\n';
  out.flush();
  if (!out.good()) {
    return Status::IOError("write failed for trace output: " + path);
  }
  return Status::OK();
}

namespace {

// Constant-initialized buffer for the same static-init-order reasons as
// the artifact emitter's path (see json.cc).
char g_trace_path[4096] = {0};
std::atomic<bool> g_trace_emitted{false};

void EmitTraceAtExit() {
  if (g_trace_emitted.exchange(true)) return;
  const Status st = WriteChromeTrace(g_trace_path);
  if (st.ok()) {
    std::fprintf(stderr, "trace timeline written to %s\n", g_trace_path);
  } else {
    std::fprintf(stderr, "trace timeline emission failed: %s\n",
                 st.ToString().c_str());
  }
}

}  // namespace

namespace {

std::atomic<bool> g_timeline_enabled{false};

}  // namespace

void SetTraceTimelineEnabled(bool enabled) {
  g_timeline_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceTimelineEnabled() {
  return g_timeline_enabled.load(std::memory_order_relaxed);
}

bool DetailSpansEnabled() {
  return TraceTimelineEnabled() || prof::ProfilerEnabled();
}

bool InstallTraceExporter() {
  static const bool installed = [] {
    const char* path = std::getenv("CONFCARD_TRACE_JSON");
    if (path == nullptr || path[0] == '\0') return false;
    std::snprintf(g_trace_path, sizeof(g_trace_path), "%s", path);
    SetTraceThreadLabel("main");
    TraceStore::Instance().SetEnabled(true);
    SetTraceTimelineEnabled(true);
    // A requested timeline also gets per-span resource args (cpu_us,
    // allocs, ctxsw...). prof.* metrics ride along, obsdiff-excluded.
    SetSpanResourceAccountingEnabled(true);
    std::atexit(&EmitTraceAtExit);
    return true;
  }();
  return installed;
}

}  // namespace obs
}  // namespace confcard
