#include "obs/event_log.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

namespace confcard {
namespace obs {

std::string RenderQueryEvent(const QueryEvent& e) {
  const bool covered = e.truth >= e.lo && e.truth <= e.hi;
  const double width = e.hi - e.lo;
  const double est = std::max(e.estimate, 1.0);
  const double truth = std::max(e.truth, 1.0);
  const double qerr = std::max(est / truth, truth / est);

  JsonWriter w;
  w.BeginObject();
  w.Key("run").Int(e.run_seq);
  w.Key("q").Int(e.query_id);
  w.Key("model").String(e.model);
  w.Key("method").String(e.method);
  w.Key("alpha").Number(e.alpha);
  w.Key("est").Number(e.estimate);
  w.Key("lo").Number(e.lo);
  w.Key("hi").Number(e.hi);
  w.Key("truth").Number(e.truth);
  w.Key("covered").Bool(covered);
  w.Key("width").Number(width);
  w.Key("qerr").Number(qerr);
  w.Key("lat_us").Number(e.latency_us);
  if (e.degraded) w.Key("deg").Bool(true);
  w.EndObject();
  return w.TakeString();
}

EventLog& EventLog::Instance() {
  static EventLog* log = new EventLog();  // never destroyed: atexit-safe
  return *log;
}

EventLog::EventLog() {
  const char* path = std::getenv("CONFCARD_EVENTS_JSONL");
  if (path == nullptr || path[0] == '\0') return;
  file_ = std::fopen(path, "wb");
  if (file_ == nullptr) {
    std::fprintf(stderr, "event log: cannot open %s; logging disabled\n",
                 path);
    return;
  }
  buffer_.reserve(kFlushBytes + 4096);
  enabled_.store(true, std::memory_order_relaxed);
  std::atexit([] { Instance().Flush(); });
}

void EventLog::Append(const QueryEvent& e) {
  if (!enabled()) return;
  std::string line = RenderQueryEvent(e);
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  buffer_ += line;
  appended_.fetch_add(1, std::memory_order_relaxed);
  if (buffer_.size() >= kFlushBytes) FlushLocked();
}

void EventLog::AppendRecord(std::string line) {
  if (!enabled()) return;
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  buffer_ += line;
  appended_.fetch_add(1, std::memory_order_relaxed);
  if (buffer_.size() >= kFlushBytes) FlushLocked();
}

void EventLog::AppendAll(const std::vector<QueryEvent>& events) {
  if (!enabled() || events.empty()) return;
  std::string lines;
  for (const QueryEvent& e : events) {
    lines += RenderQueryEvent(e);
    lines += '\n';
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  buffer_ += lines;
  appended_.fetch_add(events.size(), std::memory_order_relaxed);
  if (buffer_.size() >= kFlushBytes) FlushLocked();
}

void EventLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

void EventLog::FlushLocked() {
  if (file_ == nullptr || buffer_.empty()) return;
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
}

Status EventLog::OpenForTest(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    enabled_.store(false, std::memory_order_relaxed);
    return Status::IOError("event log: cannot open " + path);
  }
  appended_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void EventLog::CloseForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  enabled_.store(false, std::memory_order_relaxed);
}

Result<std::vector<JsonValue>> ParseJsonl(std::string_view text,
                                          size_t* skipped_partial) {
  if (skipped_partial != nullptr) *skipped_partial = 0;
  std::vector<JsonValue> out;
  size_t pos = 0;
  std::vector<std::string_view> lines;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    // Trim a trailing \r and surrounding spaces.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' ||
            line.back() == '\t')) {
      line.remove_suffix(1);
    }
    if (!line.empty()) lines.push_back(line);
    pos = nl + 1;
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    Result<JsonValue> value = ParseJson(lines[i]);
    if (!value.ok()) {
      if (i + 1 == lines.size()) {
        // Crash-truncated final record: usable prefix, skip the tail.
        if (skipped_partial != nullptr) ++*skipped_partial;
        break;
      }
      return Status::InvalidArgument("jsonl: line " + std::to_string(i + 1) +
                                     ": " + value.status().message());
    }
    out.push_back(std::move(value).value());
  }
  return out;
}

Result<std::vector<JsonValue>> ReadJsonlFile(const std::string& path,
                                             size_t* skipped_partial) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open event log: " + path);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return ParseJsonl(text, skipped_partial);
}

}  // namespace obs
}  // namespace confcard
