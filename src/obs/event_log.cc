#include "obs/event_log.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>

namespace confcard {
namespace obs {

std::string RenderQueryEvent(const QueryEvent& e) {
  const bool covered = e.truth >= e.lo && e.truth <= e.hi;
  const double width = e.hi - e.lo;
  const double est = std::max(e.estimate, 1.0);
  const double truth = std::max(e.truth, 1.0);
  const double qerr = std::max(est / truth, truth / est);

  JsonWriter w;
  w.BeginObject();
  w.Key("run").Int(e.run_seq);
  w.Key("q").Int(e.query_id);
  w.Key("model").String(e.model);
  w.Key("method").String(e.method);
  w.Key("alpha").Number(e.alpha);
  w.Key("est").Number(e.estimate);
  w.Key("lo").Number(e.lo);
  w.Key("hi").Number(e.hi);
  w.Key("truth").Number(e.truth);
  w.Key("covered").Bool(covered);
  w.Key("width").Number(width);
  w.Key("qerr").Number(qerr);
  w.Key("lat_us").Number(e.latency_us);
  if (e.degraded) w.Key("deg").Bool(true);
  w.EndObject();
  return w.TakeString();
}

// ---------------------------------------------------------------------------
// Fatal-signal flush chain

namespace {

constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGFPE,
                                 SIGILL,  SIGABRT, SIGTERM};
constexpr int kMaxCrashFns = 8;

std::atomic<void (*)()> g_crash_fns[kMaxCrashFns];
std::atomic<int> g_crash_fn_count{0};
std::atomic<bool> g_crash_chain_ran{false};

void CrashHandler(int sig) {
  // Run the flush chain at most once per process, even if a flush
  // callback itself faults (the reentered handler skips straight to the
  // re-raise below).
  if (!g_crash_chain_ran.exchange(true)) {
    int n = g_crash_fn_count.load(std::memory_order_acquire);
    n = std::min(n, kMaxCrashFns);
    for (int i = 0; i < n; ++i) {
      void (*fn)() = g_crash_fns[i].load(std::memory_order_acquire);
      if (fn != nullptr) fn();
    }
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

// write(2) wrapper that survives -Wunused-result and short writes.
void WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;
    data += n;
    size -= static_cast<size_t>(n);
  }
}

}  // namespace

void RegisterCrashFlush(void (*fn)()) {
  static std::once_flag once;
  std::call_once(once, [] {
    for (int sig : kCrashSignals) std::signal(sig, &CrashHandler);
  });
  const int i = g_crash_fn_count.load(std::memory_order_acquire);
  if (i >= kMaxCrashFns) return;
  g_crash_fns[i].store(fn, std::memory_order_release);
  g_crash_fn_count.store(i + 1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// EventLog

EventLog& EventLog::Instance() {
  static EventLog* log = new EventLog();  // never destroyed: atexit-safe
  return *log;
}

EventLog::EventLog() {
  const char* path = std::getenv("CONFCARD_EVENTS_JSONL");
  if (path == nullptr || path[0] == '\0') return;
  file_ = std::fopen(path, "wb");
  if (file_ == nullptr) {
    std::fprintf(stderr, "event log: cannot open %s; logging disabled\n",
                 path);
    return;
  }
  buffer_.reserve(kFlushBytes + 4096);
  enabled_.store(true, std::memory_order_relaxed);
  std::atexit([] { Instance().Flush(); });
  RegisterCrashFlush(&EventLog::CrashFlush);
}

EventLog::Stage* EventLog::ThreadStage() {
  static thread_local std::shared_ptr<Stage> tls;
  if (tls == nullptr) {
    tls = std::make_shared<Stage>();
    std::lock_guard<std::mutex> lock(stages_mu_);
    stages_.push_back(tls);
  }
  return tls.get();
}

uint64_t EventLog::AutoOrderKey() {
  struct AutoWindow {
    uint64_t epoch = ~0ull;
    uint64_t window = 0;
    uint32_t next = 0;
  };
  static thread_local AutoWindow aw;
  // Re-key after every drain so a serial producer that emits both before
  // and after an explicitly-windowed sweep sorts on both sides of it
  // instead of reusing a stale (smaller) window.
  const uint64_t epoch = drain_epoch_.load(std::memory_order_relaxed);
  if (aw.epoch != epoch || aw.next == 0xffffffffu) {
    aw.epoch = epoch;
    aw.window = NextOrderWindow();
    aw.next = 0;
  }
  return OrderKey(aw.window, aw.next++);
}

void EventLog::StageRecord(std::string line, uint64_t key) {
  Stage* stage = ThreadStage();
  {
    std::lock_guard<std::mutex> lock(stage->mu);
    stage->records.push_back(StagedRecord{key, std::move(line)});
  }
  staged_count_.fetch_add(1, std::memory_order_release);
  appended_.fetch_add(1, std::memory_order_relaxed);
}

void EventLog::DrainStagesLocked() {
  if (staged_count_.load(std::memory_order_acquire) == 0) return;
  std::vector<StagedRecord> pending;
  {
    std::lock_guard<std::mutex> reg(stages_mu_);
    for (const auto& stage : stages_) {
      std::lock_guard<std::mutex> sl(stage->mu);
      for (StagedRecord& r : stage->records) pending.push_back(std::move(r));
      stage->records.clear();
    }
  }
  if (pending.empty()) return;
  staged_count_.fetch_sub(pending.size(), std::memory_order_release);
  drain_epoch_.fetch_add(1, std::memory_order_relaxed);
  // Keys are unique per (window, index), so the merged order depends
  // only on the keys, never on which stage held a record.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const StagedRecord& a, const StagedRecord& b) {
                     return a.key < b.key;
                   });
  for (StagedRecord& r : pending) {
    buffer_ += r.line;
    buffer_ += '\n';
  }
}

void EventLog::Append(const QueryEvent& e) {
  if (!enabled()) return;
  std::string line = RenderQueryEvent(e);
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  DrainStagesLocked();
  buffer_ += line;
  appended_.fetch_add(1, std::memory_order_relaxed);
  if (buffer_.size() >= kFlushBytes) FlushLocked();
}

void EventLog::AppendRecord(std::string line) {
  if (!enabled()) return;
  StageRecord(std::move(line), AutoOrderKey());
}

void EventLog::AppendRecordOrdered(std::string line, uint64_t order_key) {
  if (!enabled()) return;
  StageRecord(std::move(line), order_key);
}

void EventLog::AppendAll(const std::vector<QueryEvent>& events) {
  if (!enabled() || events.empty()) return;
  std::string lines;
  for (const QueryEvent& e : events) {
    lines += RenderQueryEvent(e);
    lines += '\n';
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  DrainStagesLocked();
  buffer_ += lines;
  appended_.fetch_add(events.size(), std::memory_order_relaxed);
  if (buffer_.size() >= kFlushBytes) FlushLocked();
}

void EventLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainStagesLocked();
  FlushLocked();
}

void EventLog::FlushLocked() {
  if (file_ == nullptr || buffer_.empty()) return;
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
}

void EventLog::CrashFlush() {
  // Best effort from a fatal-signal handler: only touch state we can
  // acquire without blocking, and emit with raw write(2) — the FILE*
  // stream's own buffer is always empty between FlushLocked calls, so
  // writing the staging state directly cannot duplicate bytes.
  static std::atomic<bool> ran{false};
  if (ran.exchange(true)) return;
  EventLog& log = Instance();
  std::unique_lock<std::mutex> lock(log.mu_, std::try_to_lock);
  if (!lock.owns_lock() || log.file_ == nullptr) return;
  const int fd = ::fileno(log.file_);
  if (!log.buffer_.empty()) {
    WriteAll(fd, log.buffer_.data(), log.buffer_.size());
  }
  std::unique_lock<std::mutex> reg(log.stages_mu_, std::try_to_lock);
  if (!reg.owns_lock()) return;
  for (const auto& stage : log.stages_) {
    std::unique_lock<std::mutex> sl(stage->mu, std::try_to_lock);
    if (!sl.owns_lock()) continue;
    for (const StagedRecord& r : stage->records) {
      WriteAll(fd, r.line.data(), r.line.size());
      WriteAll(fd, "\n", 1);
    }
    // Deliberately no clear(): destroying the staged strings would call
    // free() inside a signal handler (signal-unsafe; TSan aborts on it),
    // and the handler chain re-raises fatally right after — no later
    // flush runs that could duplicate these bytes.
  }
}

Status EventLog::OpenForTest(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  DrainStagesLocked();
  FlushLocked();
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    enabled_.store(false, std::memory_order_relaxed);
    return Status::IOError("event log: cannot open " + path);
  }
  RegisterCrashFlush(&EventLog::CrashFlush);
  appended_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void EventLog::CloseForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  DrainStagesLocked();
  FlushLocked();
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  enabled_.store(false, std::memory_order_relaxed);
}

Result<std::vector<JsonValue>> ParseJsonl(std::string_view text,
                                          size_t* skipped_partial) {
  if (skipped_partial != nullptr) *skipped_partial = 0;
  std::vector<JsonValue> out;
  size_t pos = 0;
  std::vector<std::string_view> lines;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(pos, nl - pos);
    // Trim a trailing \r and surrounding spaces.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' ||
            line.back() == '\t')) {
      line.remove_suffix(1);
    }
    if (!line.empty()) lines.push_back(line);
    pos = nl + 1;
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    Result<JsonValue> value = ParseJson(lines[i]);
    if (!value.ok()) {
      if (i + 1 == lines.size()) {
        // Crash-truncated final record: usable prefix, skip the tail.
        if (skipped_partial != nullptr) ++*skipped_partial;
        break;
      }
      return Status::InvalidArgument("jsonl: line " + std::to_string(i + 1) +
                                     ": " + value.status().message());
    }
    out.push_back(std::move(value).value());
  }
  return out;
}

Result<std::vector<JsonValue>> ReadJsonlFile(const std::string& path,
                                             size_t* skipped_partial) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open event log: " + path);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return ParseJsonl(text, skipped_partial);
}

}  // namespace obs
}  // namespace confcard
