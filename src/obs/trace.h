// Scoped tracing: RAII spans that assemble a per-thread tree of timed
// sections (train -> epoch, calibrate -> score, query -> infer ->
// interval). Completed root spans accumulate in the process-wide
// TraceStore, from where the JSON emitter serializes them. Collection is
// off by default; when disabled a span costs one atomic load and two
// clock reads, so spans stay affordable on warm paths (per-epoch,
// per-method) — per-query work should use Histogram instead.
#ifndef CONFCARD_OBS_TRACE_H_
#define CONFCARD_OBS_TRACE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace confcard {
namespace obs {

/// One completed (or in-flight) span in the trace tree. Durations are
/// accumulated-run time (pauses excluded); start is relative to the
/// process trace epoch.
struct SpanNode {
  std::string name;
  double start_micros = 0.0;
  double duration_micros = 0.0;
  std::vector<std::pair<std::string, double>> attrs;
  std::vector<std::unique_ptr<SpanNode>> children;
};

/// Repository of completed root spans, one tree per outermost TraceSpan.
class TraceStore {
 public:
  static TraceStore& Instance();

  /// Enables/disables collection process-wide. Spans opened while
  /// disabled are never recorded, even if collection is enabled before
  /// they close.
  void SetEnabled(bool enabled);
  bool enabled() const;

  void AddRoot(std::unique_ptr<SpanNode> root);
  /// Visits every completed root under the store lock.
  void ForEachRoot(const std::function<void(const SpanNode&)>& fn) const;
  size_t NumRoots() const;
  void Clear();

 private:
  TraceStore() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanNode>> roots_;
};

/// Micros since the process trace epoch (first use).
double TraceNowMicros();

/// RAII span. Construction opens a child of the innermost live span on
/// this thread (or a new root); destruction closes it. Pause()/Resume()
/// exclude nested setup work from the recorded duration, backed by the
/// accumulating Stopwatch. The elapsed accessors work whether or not
/// collection is enabled, so a TraceSpan can replace a bare Stopwatch.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void SetAttr(std::string_view key, double value);
  void Pause() { watch_.Pause(); }
  void Resume() { watch_.Resume(); }

  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }
  double ElapsedMicros() const { return watch_.ElapsedMicros(); }

 private:
  Stopwatch watch_;
  std::unique_ptr<SpanNode> node_;  // null when collection is disabled
  SpanNode* parent_ = nullptr;
};

/// TraceSpan that additionally reports its elapsed time on destruction:
/// into `*millis_out` (total milliseconds), and/or into a registry
/// histogram as microseconds divided by `divisor` (e.g. a per-query
/// average over a test loop). Either sink may be null/empty.
class ScopedTimer {
 public:
  ScopedTimer(std::string_view span_name, double* millis_out,
              Histogram* histogram = nullptr, double divisor = 1.0);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  TraceSpan& span() { return span_; }
  void Pause() { span_.Pause(); }
  void Resume() { span_.Resume(); }

 private:
  TraceSpan span_;
  double* millis_out_;
  Histogram* histogram_;
  double divisor_;
};

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_TRACE_H_
