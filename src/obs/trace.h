// Scoped tracing: RAII spans that assemble a per-thread tree of timed
// sections (train -> epoch, calibrate -> score, query -> infer ->
// interval). Completed root spans accumulate in the process-wide
// TraceStore, from where the JSON emitter serializes them. Collection is
// off by default; when disabled a span costs one atomic load and two
// clock reads, so spans stay affordable on warm paths (per-epoch,
// per-method) — per-query work should use Histogram instead.
#ifndef CONFCARD_OBS_TRACE_H_
#define CONFCARD_OBS_TRACE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace confcard {
namespace obs {

/// One completed (or in-flight) span in the trace tree. Durations are
/// accumulated-run time (pauses excluded); start is relative to the
/// process trace epoch. `tid` is the small per-process ordinal of the
/// recording thread (see CurrentTraceThreadId) — carried for the Chrome
/// trace export; the run-artifact serialization omits it.
struct SpanNode {
  std::string name;
  uint32_t tid = 0;
  double start_micros = 0.0;
  double duration_micros = 0.0;
  std::vector<std::pair<std::string, double>> attrs;
  std::vector<std::unique_ptr<SpanNode>> children;
};

/// Small stable ordinal for the calling thread (1-based, assigned at
/// first use). Used as the Chrome trace "tid".
uint32_t CurrentTraceThreadId();

/// Names the calling thread in trace timelines ("main", "pool-worker-2",
/// ...). Safe to call whether or not tracing is enabled.
void SetTraceThreadLabel(std::string_view label);

/// Repository of completed root spans, one tree per outermost TraceSpan.
class TraceStore {
 public:
  static TraceStore& Instance();

  /// Enables/disables collection process-wide. Spans opened while
  /// disabled are never recorded, even if collection is enabled before
  /// they close.
  void SetEnabled(bool enabled);
  bool enabled() const;

  void AddRoot(std::unique_ptr<SpanNode> root);
  /// Visits every completed root under the store lock.
  void ForEachRoot(const std::function<void(const SpanNode&)>& fn) const;
  size_t NumRoots() const;
  /// Drops collected roots. Thread labels persist (threads outlive
  /// test-scoped clears).
  void Clear();

  /// Associates a human-readable label with a trace thread ordinal.
  /// Last write per tid wins.
  void SetThreadLabel(uint32_t tid, std::string_view label);
  /// Registered (tid, label) pairs in registration order.
  std::vector<std::pair<uint32_t, std::string>> ThreadLabels() const;

 private:
  TraceStore() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanNode>> roots_;
  std::vector<std::pair<uint32_t, std::string>> thread_labels_;
};

/// Serializes every collected span tree as Chrome tracing / Perfetto
/// JSON ({"traceEvents":[...]}): one "X" (complete) event per span with
/// `ts`/`dur` in microseconds since the trace epoch, `pid` 1, `tid` from
/// the recording thread, span attrs under `args`; plus one "M"
/// thread_name metadata event per labeled thread. Load via
/// chrome://tracing or ui.perfetto.dev.
std::string RenderChromeTrace();

/// RenderChromeTrace to a file.
Status WriteChromeTrace(const std::string& path);

/// Arms the trace timeline exporter when CONFCARD_TRACE_JSON names a
/// path: enables the TraceStore, turns on timeline-only spans, and
/// registers an atexit hook that writes the Chrome trace JSON there.
/// Idempotent; returns whether armed.
bool InstallTraceExporter();

/// Gate for timeline-only instrumentation (per-fold training spans,
/// batched-inference sweep spans, per-worker roots). Off by default so
/// the run-artifact span tree — and therefore the artifact bytes — are
/// unchanged unless a timeline export was requested. Armed by
/// InstallTraceExporter; settable directly for tests.
void SetTraceTimelineEnabled(bool enabled);
bool TraceTimelineEnabled();

/// True when detail spans (fold.train, infer.batch[.chunk],
/// guard.estimate) should be opened: either the Chrome-trace timeline or
/// the sampling profiler is armed. The profiler needs these spans even
/// without trace collection — their labels feed the per-thread span
/// stack that attributes CPU samples to harness phases.
bool DetailSpansEnabled();

/// Micros since the process trace epoch (first use).
double TraceNowMicros();

/// RAII span. Construction opens a child of the innermost live span on
/// this thread (or a new root); destruction closes it. Pause()/Resume()
/// exclude nested setup work from the recorded duration, backed by the
/// accumulating Stopwatch. The elapsed accessors work whether or not
/// collection is enabled, so a TraceSpan can replace a bare Stopwatch.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void SetAttr(std::string_view key, double value);
  void Pause() { watch_.Pause(); }
  void Resume() { watch_.Resume(); }

  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }
  double ElapsedMillis() const { return watch_.ElapsedMillis(); }
  double ElapsedMicros() const { return watch_.ElapsedMicros(); }

 private:
  Stopwatch watch_;
  std::unique_ptr<SpanNode> node_;  // null when collection is disabled
  SpanNode* parent_ = nullptr;
  // Whether this span pushed its name onto the profiler's span-label
  // stack (latched at construction so push/pop stay balanced even if
  // the profiler is stopped mid-span).
  bool label_pushed_ = false;
  // Resource-accounting baselines (see obs/profiler.h); armed_ latches
  // SpanResourceAccountingEnabled at construction.
  bool res_armed_ = false;
  std::string res_name_;
  double res_cpu_us_ = 0.0;
  uint64_t res_allocs_ = 0;
  uint64_t res_alloc_bytes_ = 0;
  uint64_t res_vol_csw_ = 0;
  uint64_t res_invol_csw_ = 0;
};

/// TraceSpan that additionally reports its elapsed time on destruction:
/// into `*millis_out` (total milliseconds), and/or into a registry
/// histogram as microseconds divided by `divisor` (e.g. a per-query
/// average over a test loop). Either sink may be null/empty.
class ScopedTimer {
 public:
  ScopedTimer(std::string_view span_name, double* millis_out,
              Histogram* histogram = nullptr, double divisor = 1.0);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  TraceSpan& span() { return span_; }
  void Pause() { span_.Pause(); }
  void Resume() { span_.Resume(); }

 private:
  TraceSpan span_;
  double* millis_out_;
  Histogram* histogram_;
  double divisor_;
};

}  // namespace obs
}  // namespace confcard

#endif  // CONFCARD_OBS_TRACE_H_
