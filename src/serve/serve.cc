#include "serve/serve.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "conformal/interval.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "query/validate.h"

namespace confcard {
namespace serve {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MicrosBetween(SteadyClock::time_point from, SteadyClock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

int ReadIntEnv(const char* name, int fallback, int lo, int hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(std::clamp<long>(v, lo, hi));
}

bool ReadBoolEnv(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const std::string v(raw);
  return v == "1" || v == "on" || v == "true" || v == "ON" || v == "TRUE";
}

/// One queued executed-query observation. Slots are preallocated per
/// shard and recycled through a free ring, so a steady-state Observe
/// reuses each slot's predicate capacity and allocates nothing.
struct alignas(64) FeedbackSlot {
  Query query;
  double truth = 0.0;
};

}  // namespace

void Request::Wait() const {
  int spins = 0;
  while (!done()) {
    CpuRelax();
    // Oversubscribed hosts (single-core CI) need the worker scheduled in.
    if ((++spins & 0xFF) == 0) std::this_thread::yield();
  }
}

int ShardsFromEnv() {
  return ReadIntEnv("CONFCARD_SERVE_SHARDS", 1, 1, 64);
}

ServeFrontEnd::Options ServeFrontEnd::Options::FromEnv() {
  Options o;
  o.max_batch = ReadIntEnv("CONFCARD_SERVE_BATCH", o.max_batch, 1, 4096);
  o.flush_timeout_us =
      ReadIntEnv("CONFCARD_SERVE_TIMEOUT_US", o.flush_timeout_us, 0, 1000000);
  o.feedback = ReadBoolEnv("CONFCARD_SERVE_FEEDBACK", o.feedback);
  return o;
}

struct ServeFrontEnd::ServeMetrics {
  obs::Counter& requests;
  obs::Counter& accepted;
  obs::Counter& shed_queue_full;
  obs::Counter& shed_breaker;
  obs::Counter& shed_stopped;
  obs::Counter& degraded;
  obs::Counter& batches;
  obs::Counter& drained_on_stop;
  obs::Counter& feedback_observed;
  obs::Counter& feedback_applied;
  obs::Counter& feedback_dropped;
  obs::Counter& drift_up;
  obs::Counter& drift_down;
  obs::Counter& drift_recalibrations;
  obs::Histogram& batch_size;
  obs::Histogram& queue_us;
  obs::Histogram& total_us;
  obs::Histogram& feedback_apply_us;
  obs::Histogram& drift_time_in_stage_us;
  ServeMetrics()
      : requests(obs::Metrics().GetCounter("serve.requests")),
        accepted(obs::Metrics().GetCounter("serve.accepted")),
        shed_queue_full(obs::Metrics().GetCounter("serve.shed.queue_full")),
        shed_breaker(obs::Metrics().GetCounter("serve.shed.breaker")),
        shed_stopped(obs::Metrics().GetCounter("serve.shed.stopped")),
        degraded(obs::Metrics().GetCounter("serve.degraded")),
        batches(obs::Metrics().GetCounter("serve.batch.count")),
        drained_on_stop(obs::Metrics().GetCounter("serve.drain.stop_served")),
        feedback_observed(obs::Metrics().GetCounter("feedback.observed")),
        feedback_applied(obs::Metrics().GetCounter("feedback.applied")),
        feedback_dropped(obs::Metrics().GetCounter("feedback.dropped")),
        drift_up(obs::Metrics().GetCounter("serve.drift.transitions.up")),
        drift_down(obs::Metrics().GetCounter("serve.drift.transitions.down")),
        drift_recalibrations(
            obs::Metrics().GetCounter("serve.drift.recalibrations")),
        batch_size(obs::Metrics().GetHistogram("serve.batch.size")),
        queue_us(obs::Metrics().GetHistogram("serve.latency.queue_us")),
        total_us(obs::Metrics().GetHistogram("serve.latency.total_us")),
        feedback_apply_us(obs::Metrics().GetHistogram("feedback.apply_us")),
        drift_time_in_stage_us(
            obs::Metrics().GetHistogram("serve.drift.time_in_stage_us")) {}
};

ServeFrontEnd::ServeMetrics& ServeFrontEnd::SharedMetrics() {
  static ServeMetrics* metrics = new ServeMetrics();
  return *metrics;
}

struct ServeFrontEnd::Shard {
  explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

  MpmcBoundedQueue<Request*> queue;
  const GuardedEstimator* guard = nullptr;
  int index = 0;
  /// Approximate occupancy (push increments, pop decrements); drives the
  /// wake predicate and the breaker admission watermark only, never
  /// correctness.
  std::atomic<int> depth{0};
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  /// Set under wake_mu right before the worker sleeps; producers only
  /// pay the notify mutex when a sleeper might exist.
  std::atomic<bool> idle{false};
  std::thread worker;

  // Worker-private buffers, preallocated to max_batch so the batch cycle
  // never grows them. Stats are read by the front-end only when the
  // shard is quiesced.
  std::vector<Request*> batch;
  std::vector<Query> queries;
  std::vector<GuardedEstimate> outs;
  GuardBatchScratch scratch;
  std::vector<uint64_t> batch_size_counts;
  std::atomic<uint64_t> hot_allocs{0};

  // ---- drift-adaptation state (engaged only when Options::feedback).
  // recal/corrector/detector/stage are worker-owned: touched by the
  // shard's worker at micro-batch boundaries, by WarmupFeedback while
  // quiesced, and by Stop() after the join. stage_atomic mirrors stage
  // for cross-thread observers.
  std::unique_ptr<OnlineConformal> recal;
  std::unique_ptr<ResidualCorrector> corrector;
  DriftDetector detector;
  DriftStage stage = DriftStage::kHealthy;
  std::atomic<int> stage_atomic{0};
  std::chrono::steady_clock::time_point stage_since{};
  // Feedback rings: producers move preallocated slots free -> pending;
  // the worker drains pending and recycles slots back to free. Slot
  // count == ring capacity, so the pending push can never fail.
  std::vector<FeedbackSlot> fb_slots;
  std::unique_ptr<MpmcBoundedQueue<FeedbackSlot*>> fb_pending;
  std::unique_ptr<MpmcBoundedQueue<FeedbackSlot*>> fb_free;
  std::atomic<uint64_t> fb_dropped{0};
  // Worker-private scratch for the per-observation re-estimate.
  GuardBatchScratch fb_scratch;
};

ServeFrontEnd::ServeFrontEnd(std::vector<const GuardedEstimator*> shard_guards,
                             const SplitConformal& conformal, double num_rows,
                             Options options)
    : conformal_(&conformal),
      scoring_(&conformal.scoring()),
      num_rows_(num_rows),
      options_(options),
      metrics_(SharedMetrics()) {
  CONFCARD_CHECK_MSG(!shard_guards.empty(),
                     "serve: need at least one shard replica");
  CONFCARD_CHECK_MSG(conformal.calibrated(),
                     "serve: conformal predictor must be calibrated");
  CONFCARD_CHECK_MSG(options_.max_batch >= 1, "serve: max_batch must be >= 1");
  CONFCARD_CHECK_MSG(options_.flush_timeout_us >= 0,
                     "serve: flush_timeout_us must be >= 0");
  CONFCARD_CHECK_MSG(options_.queue_capacity >= 1,
                     "serve: queue_capacity must be >= 1");
  CONFCARD_CHECK_MSG(options_.degraded_inflation >= 1.0,
                     "serve: degraded_inflation must be >= 1");
  inflated_delta_ = conformal.delta() * options_.degraded_inflation;
  if (options_.feedback) {
    CONFCARD_CHECK_MSG(options_.feedback_capacity >= 1,
                       "serve: feedback_capacity must be >= 1");
    CONFCARD_CHECK_MSG(options_.recal_window >= 1,
                       "serve: recal_window must be >= 1");
    CONFCARD_CHECK_MSG(options_.drift_inflation >= 1.0,
                       "serve: drift_inflation must be >= 1");
    // The ladder measures dips against the predictor's own target.
    options_.detector.nominal_coverage = 1.0 - conformal.alpha();
  }
  breaker_shed_depth_ = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(options_.queue_capacity) *
                             std::clamp(options_.breaker_shed_watermark, 0.0,
                                        1.0)));
  const size_t b = static_cast<size_t>(options_.max_batch);
  shards_.reserve(shard_guards.size());
  for (size_t i = 0; i < shard_guards.size(); ++i) {
    CONFCARD_CHECK_MSG(shard_guards[i] != nullptr, "serve: null shard guard");
    auto shard = std::make_unique<Shard>(options_.queue_capacity);
    shard->guard = shard_guards[i];
    shard->index = static_cast<int>(i);
    shard->batch.reserve(b);
    shard->queries.resize(b);
    shard->outs.resize(b);
    shard->batch_size_counts.assign(b + 1, 0);
    if (options_.feedback) {
      OnlineConformal::Options ro;
      ro.alpha = conformal.alpha();
      ro.window = options_.recal_window;
      ro.monitor_window = options_.monitor_window;
      ro.estimator_label = "serve-recal";
      ro.publish_metrics = false;  // per-shard state; gauges would race
      shard->recal =
          std::make_unique<OnlineConformal>(conformal.scoring_ptr(), ro);
      shard->corrector =
          std::make_unique<ResidualCorrector>(options_.corrector);
      shard->detector = DriftDetector(options_.detector);
      shard->stage_since = SteadyClock::now();
      const size_t fc = options_.feedback_capacity;
      shard->fb_slots.resize(fc);
      shard->fb_pending =
          std::make_unique<MpmcBoundedQueue<FeedbackSlot*>>(fc);
      shard->fb_free = std::make_unique<MpmcBoundedQueue<FeedbackSlot*>>(fc);
      for (FeedbackSlot& slot : shard->fb_slots) {
        shard->fb_free->TryPush(&slot);
      }
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
}

ServeFrontEnd::~ServeFrontEnd() { Stop(); }

int ServeFrontEnd::ShardFor(const Query& query) const {
  return static_cast<int>(QueryContentKey(query) %
                          static_cast<uint64_t>(shards_.size()));
}

Admit ServeFrontEnd::Submit(Request* request) {
  metrics_.requests.Increment();
  const int shard_idx = ShardFor(request->query);
  Shard& s = *shards_[shard_idx];
  request->submitted_at = SteadyClock::now();
  request->state.store(Request::kPending, std::memory_order_relaxed);
  // The in-flight count lets Stop() order itself after every Submit that
  // passed the stopping check, closing the submit/drain race.
  inflight_submits_.fetch_add(1, std::memory_order_acq_rel);
  Admit result;
  if (stopping_.load(std::memory_order_acquire)) {
    metrics_.shed_stopped.Increment();
    PublishShed(request, shard_idx);
    result = Admit::kRejectedStopped;
  } else if (s.guard->breaker_open() &&
             s.depth.load(std::memory_order_relaxed) >=
                 static_cast<int>(breaker_shed_depth_)) {
    // Admission control under degradation: a sick primary serves
    // fallback answers more slowly than healthy batched ones, so once
    // the backlog crosses the watermark we fail fast instead of letting
    // the queue absorb (and then time out) the overload.
    metrics_.shed_breaker.Increment();
    PublishShed(request, shard_idx);
    result = Admit::kShedBreaker;
  } else if (!s.queue.TryPush(request)) {
    metrics_.shed_queue_full.Increment();
    PublishShed(request, shard_idx);
    result = Admit::kShedQueueFull;
  } else {
    s.depth.fetch_add(1, std::memory_order_relaxed);
    metrics_.accepted.Increment();
    if (s.idle.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(s.wake_mu);
      s.wake_cv.notify_one();
    }
    result = Admit::kAccepted;
  }
  inflight_submits_.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

bool ServeFrontEnd::Observe(const Query& query, double true_card) {
  if (!options_.feedback) return false;
  if (stopping_.load(std::memory_order_acquire)) return false;
  metrics_.feedback_observed.Increment();
  Shard& s = *shards_[ShardFor(query)];
  FeedbackSlot* slot = nullptr;
  if (!s.fb_free->TryPop(&slot)) {
    // Backpressure by dropping, never by blocking the executor thread:
    // a lost observation only delays adaptation.
    s.fb_dropped.fetch_add(1, std::memory_order_relaxed);
    metrics_.feedback_dropped.Increment();
    return false;
  }
  slot->query = query;  // element-wise copy reuses the slot's capacity
  slot->truth = true_card;
  s.fb_pending->TryPush(slot);  // slots == capacity: cannot fail
  return true;
}

void ServeFrontEnd::WarmupFeedback(const Workload& calibration) {
  if (!options_.feedback) return;
  for (const LabeledQuery& lq : calibration) {
    Shard& s = *shards_[ShardFor(lq.query)];
    FeedOne(&s, lq.query, s.guard->EstimateGuarded(lq.query), lq.cardinality);
  }
}

DriftStage ServeFrontEnd::ShardStage(int shard) const {
  return static_cast<DriftStage>(
      shards_[static_cast<size_t>(shard)]->stage_atomic.load(
          std::memory_order_acquire));
}

uint64_t ServeFrontEnd::FeedbackDropped() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->fb_dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void ServeFrontEnd::ApplyStageTransition(Shard* shard, DriftStage from,
                                         DriftStage to) {
  const SteadyClock::time_point now = SteadyClock::now();
  metrics_.drift_time_in_stage_us.Record(
      MicrosBetween(shard->stage_since, now));
  shard->stage_since = now;
  shard->stage = to;
  shard->stage_atomic.store(static_cast<int>(to), std::memory_order_release);
  if (static_cast<int>(to) > static_cast<int>(from)) {
    metrics_.drift_up.Increment();
    if (from == DriftStage::kHealthy) {
      // Entering the ladder: stale pre-drift calibration scores dilute
      // the quantile and stale corrections point the wrong way — keep
      // only the freshest quarter of the window and relearn biases.
      shard->recal->ResetWindowTo(options_.recal_window / 4);
      shard->corrector->Reset();
      metrics_.drift_recalibrations.Increment();
    }
    if (to == DriftStage::kBreak) shard->guard->ForceBreaker(true);
  } else {
    metrics_.drift_down.Increment();
    if (from == DriftStage::kBreak) shard->guard->ForceBreaker(false);
  }
  obs::EventLog& elog = obs::EventLog::Instance();
  if (elog.enabled()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("type").String("drift");
    w.Key("shard").Int(shard->index);
    w.Key("from").String(DriftStageToString(from));
    w.Key("to").String(DriftStageToString(to));
    w.Key("coverage").Number(shard->recal->rolling_coverage());
    w.Key("score_drift").Number(shard->recal->score_drift());
    w.Key("observed").Int(static_cast<int64_t>(shard->recal->observed()));
    w.EndObject();
    elog.AppendRecord(w.TakeString());
  }
}

void ServeFrontEnd::FeedOne(Shard* shard, const Query& query,
                            const GuardedEstimate& estimate, double truth) {
  double served = estimate.value;
  if (estimate.source == 0) {
    // AQO-style residual learning applies only to the primary: fallback
    // tiers have their own (unlearned) biases, and mixing them into one
    // subspace entry would poison the correction.
    const uint64_t fss = ResidualCorrector::SubspaceHash(query);
    served = shard->corrector->Correct(fss, estimate.value);
    shard->corrector->Observe(fss, estimate.value, truth);
  }
  // The recalibrator scores what we would have served (post-correction),
  // so its quantile calibrates the intervals actually produced.
  shard->recal->Observe(served, truth);
  const DriftStage before = shard->detector.stage();
  const DriftStage after = shard->detector.Update(
      shard->recal->rolling_coverage(), shard->recal->score_drift(),
      shard->recal->rolling_observations());
  if (after != before) ApplyStageTransition(shard, before, after);
}

void ServeFrontEnd::ApplyFeedback(Shard* shard) {
  if (!options_.feedback) return;
  FeedbackSlot* slot = nullptr;
  if (!shard->fb_pending->TryPop(&slot)) return;
  const SteadyClock::time_point t0 = SteadyClock::now();
  const size_t cap = options_.feedback_capacity;
  size_t k = 0;
  do {
    // Estimate with the tier currently serving (the recalibrator must
    // score the estimates clients are getting), one observation at a
    // time so the adaptive trajectory — corrector, recalibrator,
    // detector, and the tier each estimate used — is a pure function of
    // the per-shard feedback sequence, not of how micro-batch timing
    // happened to group the applications (EstimateBatchGuarded is
    // bit-identical at any partition, so n=1 loses nothing).
    GuardedEstimate ge;
    if (shard->stage >= DriftStage::kFallback) {
      shard->guard->EstimateFallbackTier(&slot->query, 1, &ge);
    } else {
      shard->guard->EstimateBatchGuarded(&slot->query, 1, &ge,
                                         /*order_key_base=*/0,
                                         &shard->fb_scratch);
    }
    FeedOne(shard, slot->query, ge, slot->truth);
    shard->fb_free->TryPush(slot);
    ++k;
  } while (k < cap && shard->fb_pending->TryPop(&slot));
  metrics_.feedback_applied.Increment(k);
  metrics_.feedback_apply_us.Record(MicrosBetween(t0, SteadyClock::now()));
}

void ServeFrontEnd::WorkerLoop(Shard* shard) {
  for (;;) {
    Request* first = nullptr;
    if (shard->queue.TryPop(&first)) {
      shard->depth.fetch_sub(1, std::memory_order_relaxed);
      // The whole batch cycle — assembly, guarded batched inference,
      // interval inversion, publication — is alloc-counted; after
      // warmup the delta must be zero (bench_serving gates it).
      const uint64_t allocs_before = obs::prof::ThreadAllocCount();
      ProcessFrom(shard, first);
      shard->hot_allocs.fetch_add(
          obs::prof::ThreadAllocCount() - allocs_before,
          std::memory_order_relaxed);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Recheck once: a Submit racing Stop() may have pushed between the
      // failed pop and the flag read. Anything later is caught by the
      // post-join drain in Stop().
      if (!shard->queue.TryPop(&first)) break;
      shard->depth.fetch_sub(1, std::memory_order_relaxed);
      const uint64_t allocs_before = obs::prof::ThreadAllocCount();
      ProcessFrom(shard, first);
      shard->hot_allocs.fetch_add(
          obs::prof::ThreadAllocCount() - allocs_before,
          std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(shard->wake_mu);
    shard->idle.store(true, std::memory_order_relaxed);
    // The timeout is a belt-and-braces recheck: the idle-flag handshake
    // makes missed wakeups unlikely, and a stray one costs 500 µs, not a
    // hang.
    shard->wake_cv.wait_for(lock, std::chrono::microseconds(500), [&] {
      return shard->depth.load(std::memory_order_relaxed) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
    shard->idle.store(false, std::memory_order_relaxed);
  }
}

void ServeFrontEnd::ProcessFrom(Shard* shard, Request* first) {
  // Micro-batch boundary: fold queued executed-query truth into the
  // recalibrator/corrector/detector before computing this batch, so the
  // adaptation point is a deterministic function of the request and
  // feedback sequences.
  ApplyFeedback(shard);
  shard->batch.clear();
  shard->batch.push_back(first);
  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  if (max_batch > 1 && shard->batch.size() < max_batch) {
    // Dynamic micro-batching: drain whatever is queued, then wait up to
    // the flush timeout for stragglers. T=0 degenerates to "one drain
    // pass, no waiting".
    const bool may_wait = options_.flush_timeout_us > 0;
    const SteadyClock::time_point deadline =
        may_wait ? SteadyClock::now() +
                       std::chrono::microseconds(options_.flush_timeout_us)
                 : SteadyClock::time_point{};
    int spins = 0;
    for (;;) {
      Request* next = nullptr;
      if (shard->queue.TryPop(&next)) {
        shard->depth.fetch_sub(1, std::memory_order_relaxed);
        shard->batch.push_back(next);
        if (shard->batch.size() >= max_batch) break;
        continue;
      }
      if (!may_wait || stopping_.load(std::memory_order_relaxed) ||
          SteadyClock::now() >= deadline) {
        break;
      }
      CpuRelax();
      // Yield periodically so producers on oversubscribed hosts can
      // actually deliver the stragglers this wait is for.
      if ((++spins & 0x3F) == 0) std::this_thread::yield();
    }
  }

  const SteadyClock::time_point dispatched = SteadyClock::now();
  const size_t m = shard->batch.size();
  // queries/outs were sized to max_batch at construction; element-wise
  // assignment reuses each slot's predicate capacity batch to batch.
  for (size_t i = 0; i < m; ++i) {
    shard->queries[i] = shard->batch[i]->query;
  }
  if (options_.feedback && shard->stage >= DriftStage::kFallback) {
    // Ladder stage 3+: the learned primary is no longer trusted; serve
    // the histogram-AVI tier directly.
    shard->guard->EstimateFallbackTier(shard->queries.data(), m,
                                       shard->outs.data());
  } else {
    shard->guard->EstimateBatchGuarded(shard->queries.data(), m,
                                       shard->outs.data(),
                                       /*order_key_base=*/0, &shard->scratch);
  }
  if (options_.feedback) {
    // Learned point-estimate correction (primary-sourced answers only).
    for (size_t i = 0; i < m; ++i) {
      if (shard->outs[i].source != 0) continue;
      shard->outs[i].value = shard->corrector->Correct(
          ResidualCorrector::SubspaceHash(shard->queries[i]),
          shard->outs[i].value);
    }
  }
  const SteadyClock::time_point completed = SteadyClock::now();
  for (size_t i = 0; i < m; ++i) {
    Publish(shard->batch[i], shard->outs[i], *shard,
            static_cast<uint32_t>(m), dispatched, completed);
  }
  shard->batch_size_counts[m] += 1;
  metrics_.batches.Increment();
  metrics_.batch_size.Record(static_cast<double>(m));
}

void ServeFrontEnd::Publish(Request* request, const GuardedEstimate& estimate,
                            const Shard& shard, uint32_t batch_size,
                            SteadyClock::time_point dispatched,
                            SteadyClock::time_point completed) const {
  Response& resp = request->response;
  resp.estimate = estimate.value;
  Interval iv;
  if (options_.feedback) {
    // Intervals come from the shard's sliding-window recalibrator (the
    // frozen SplitConformal only seeds the delta until feedback
    // arrives), degraded answers widen by degraded_inflation, and the
    // ladder's kInflate+ stages widen everything by drift_inflation.
    double delta = shard.recal->delta();
    if (std::isinf(delta)) delta = conformal_->delta();
    double inflation = estimate.degraded ? options_.degraded_inflation : 1.0;
    if (shard.stage >= DriftStage::kInflate) {
      inflation *= options_.drift_inflation;
    }
    iv = scoring_->Invert(estimate.value, delta * inflation);
  } else {
    iv = estimate.degraded
             ? scoring_->Invert(estimate.value, inflated_delta_)
             : conformal_->Predict(estimate.value);
  }
  iv = ClipToCardinality(iv, num_rows_);
  resp.lo = iv.lo;
  resp.hi = iv.hi;
  resp.degraded = estimate.degraded;
  resp.shed = false;
  resp.source = estimate.source;
  resp.shard = shard.index;
  resp.batch_size = batch_size;
  resp.queue_us = MicrosBetween(request->submitted_at, dispatched);
  resp.total_us = MicrosBetween(request->submitted_at, completed);
  if (estimate.degraded) metrics_.degraded.Increment();
  metrics_.queue_us.Record(resp.queue_us);
  metrics_.total_us.Record(resp.total_us);
  request->state.store(Request::kDone, std::memory_order_release);
}

void ServeFrontEnd::PublishShed(Request* request, int shard) const {
  Response& resp = request->response;
  resp = Response{};
  resp.shed = true;
  resp.degraded = true;
  resp.estimate = 0.0;
  resp.lo = 0.0;
  resp.hi = num_rows_;  // trivially valid: shed answers never miscovers
  resp.shard = shard;
  request->state.store(Request::kDone, std::memory_order_release);
  // Shed bursts must be diagnosable from the event log alone: record
  // each one (off the alloc-gated worker path — shedding happens on the
  // submitting thread).
  obs::EventLog& elog = obs::EventLog::Instance();
  if (elog.enabled()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("type").String("serve");
    w.Key("shed").Bool(true);
    w.Key("shard").Int(shard);
    w.Key("qkey").Int(QueryContentKey(request->query));
    w.EndObject();
    elog.AppendRecord(w.TakeString());
  }
}

void ServeFrontEnd::Stop() {
  stopping_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (joined_) return;
  joined_ = true;
  // Order after every Submit that passed the stopping check: once the
  // in-flight count drains, all accepted requests are in their queues.
  while (inflight_submits_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> wake(shard->wake_mu);
    shard->wake_cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Serve any stragglers that slipped in behind a worker's exit check,
  // per query on this thread — Stop() returns only after every accepted
  // request has a published response.
  for (auto& shard : shards_) {
    Request* request = nullptr;
    while (shard->queue.TryPop(&request)) {
      shard->depth.fetch_sub(1, std::memory_order_relaxed);
      const SteadyClock::time_point now = SteadyClock::now();
      Publish(request, shard->guard->EstimateGuarded(request->query),
              *shard, /*batch_size=*/1, now, SteadyClock::now());
      metrics_.drained_on_stop.Increment();
    }
    // Feedback accepted before the stop flag is applied, not lost:
    // Observe() rejects once stopping_, and the ring holds at most one
    // capacity's worth, so one drain pass empties it.
    ApplyFeedback(shard.get());
    // The guards outlive this front-end; do not leave a drift-forced
    // breaker latched into whatever serves from them next.
    if (options_.feedback && shard->guard->breaker_forced()) {
      shard->guard->ForceBreaker(false);
    }
  }
}

uint64_t ServeFrontEnd::HotPathAllocs() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->hot_allocs.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> ServeFrontEnd::BatchSizeCounts() const {
  std::vector<uint64_t> counts(static_cast<size_t>(options_.max_batch) + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < shard->batch_size_counts.size(); ++b) {
      counts[b] += shard->batch_size_counts[b];
    }
  }
  return counts;
}

void ServeFrontEnd::ResetStats() {
  for (auto& shard : shards_) {
    shard->hot_allocs.store(0, std::memory_order_relaxed);
    std::fill(shard->batch_size_counts.begin(),
              shard->batch_size_counts.end(), 0);
  }
}

}  // namespace serve
}  // namespace confcard
