// Bounded multi-producer/multi-consumer queue for the serving
// front-end's request path (Dmitry Vyukov's array-based design). Every
// slot carries a sequence number; producers and consumers claim
// positions with one CAS each and then synchronize on the slot's
// sequence, so the queue is lock-free, allocation-free after
// construction, and wait-free in the uncontended case. A full queue
// fails TryPush instead of blocking — the admission-control contract
// the front-end's load shedding is built on.
#ifndef CONFCARD_SERVE_MPMC_QUEUE_H_
#define CONFCARD_SERVE_MPMC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/check.h"

namespace confcard {
namespace serve {

/// Bounded MPMC queue over trivially copyable values (the front-end
/// stores Request pointers). Capacity is rounded up to a power of two.
template <typename T>
class MpmcBoundedQueue {
 public:
  explicit MpmcBoundedQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcBoundedQueue(const MpmcBoundedQueue&) = delete;
  MpmcBoundedQueue& operator=(const MpmcBoundedQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// False when the queue is full (the caller sheds).
  bool TryPush(T value) {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the slot still holds an unconsumed value: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty.
  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the slot has not been published yet: empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    *out = cell->value;
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  // Producers and the consumer advance independent cursors; keep them on
  // separate cache lines so enqueue traffic never invalidates dequeues.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace serve
}  // namespace confcard

#endif  // CONFCARD_SERVE_MPMC_QUEUE_H_
