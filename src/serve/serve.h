// High-throughput serving front-end over the guarded estimation stack:
// multi-producer lock-free request queues feeding per-shard dynamic
// micro-batchers (collect up to B queries or wait at most T µs, then one
// EstimateBatch), shared-nothing model replicas (one GuardedEstimator
// per shard, routed by query content hash), admission control tied into
// the guard's circuit breaker, and a response path that carries the
// conformal prediction interval plus degraded/shed provenance per query.
//
// Contracts the tests and bench_serving gate:
//   * Batching is bit-identical to the per-query guarded path when no
//     faults are armed (EstimateBatch's bit-identity contract composes
//     with any batch partition the timing produces), at any shard count
//     when the replicas are trained identically.
//   * The steady-state hot path — submit, queue transfer, batch
//     assembly, guarded batched inference, interval inversion, response
//     publication — performs zero heap allocations once buffers have
//     warmed up (preallocated queue cells, capacity-reusing Query
//     copies, GuardBatchScratch, arena-recycled tensors).
//   * Load is shed, never queued unboundedly: a full shard queue or an
//     open breaker above the admission watermark fails fast with a
//     trivially valid [0, N] interval flagged shed+degraded.
//   * Stop() drains: every accepted request gets a response before the
//     workers join.
//
// With Options::feedback enabled the front-end closes the drift loop
// (docs/ROBUSTNESS.md "Drift & self-healing"): Observe(query, truth)
// queues executed-query ground truth on the owning shard's lock-free
// feedback ring; each worker drains its ring at micro-batch boundaries
// into a sliding-window OnlineConformal recalibrator (intervals adapt),
// an AQO-style feature-subspace residual corrector (point estimates
// adapt), and a staged drift detector (recalibrate → inflate →
// fallback tier → forced breaker) whose transitions are recorded as
// "type":"drift" events and serve.drift.* metrics.
//
// Env knobs (read by Options::FromEnv / ShardsFromEnv, see
// docs/SERVING.md): CONFCARD_SERVE_SHARDS, CONFCARD_SERVE_BATCH,
// CONFCARD_SERVE_TIMEOUT_US, CONFCARD_SERVE_FEEDBACK.
#ifndef CONFCARD_SERVE_SERVE_H_
#define CONFCARD_SERVE_SERVE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ce/guarded.h"
#include "ce/residual.h"
#include "conformal/online.h"
#include "conformal/split.h"
#include "query/predicate.h"
#include "serve/drift_detector.h"
#include "serve/mpmc_queue.h"

namespace confcard {
namespace serve {

/// Admission outcome of one Submit call.
enum class Admit {
  kAccepted,        // enqueued; the response arrives asynchronously
  kShedQueueFull,   // shard queue full: responded immediately as shed
  kShedBreaker,     // breaker open + queue above watermark: shed
  kRejectedStopped  // front-end stopped: responded as shed
};

/// True for any Admit value that sheds instead of enqueueing.
inline bool IsShed(Admit a) { return a != Admit::kAccepted; }

/// What the serving path returns for one query.
struct Response {
  /// Sanitized cardinality estimate (0 for shed requests).
  double estimate = 0.0;
  /// Conformal prediction interval, clipped to [0, N]. Degraded answers
  /// are inverted at delta * degraded_inflation; shed answers get the
  /// trivially valid [0, N].
  double lo = 0.0;
  double hi = 0.0;
  /// True when the primary did not produce the estimate (guard fallback
  /// chain, quarantine, or shed).
  bool degraded = false;
  /// True when admission control rejected the request without running
  /// any estimator.
  bool shed = false;
  /// GuardedEstimate provenance (0 primary, >0 fallback index, -1
  /// quarantined invalid query); 0 for shed requests.
  int source = 0;
  /// Shard that served (or shed) the request.
  int shard = -1;
  /// Size of the micro-batch this response was computed in (0 if shed).
  uint32_t batch_size = 0;
  /// Admission -> batch dispatch, µs (0 if shed).
  double queue_us = 0.0;
  /// Admission -> response publication, µs (~0 if shed).
  double total_us = 0.0;
};

/// One in-flight request. Caller-owned slot: write `query`, Submit, and
/// read `response` once done() turns true. Slots are reusable via
/// Reset() and cache-line aligned so a polling producer and a
/// publishing worker never share a line across adjacent slots.
struct alignas(64) Request {
  Query query;
  Response response;

  /// True once `response` is fully published (acquire pairs with the
  /// worker's release store).
  bool done() const {
    return state.load(std::memory_order_acquire) == kDone;
  }
  /// Spin-waits until done (test/bench convenience; yields while
  /// waiting so oversubscribed hosts make progress).
  void Wait() const;
  /// Makes the slot submittable again. Only call when no Submit of this
  /// slot is outstanding.
  void Reset() { state.store(kFree, std::memory_order_relaxed); }

  static constexpr uint32_t kFree = 0;
  static constexpr uint32_t kPending = 1;
  static constexpr uint32_t kDone = 2;
  std::atomic<uint32_t> state{kFree};
  std::chrono::steady_clock::time_point submitted_at{};
};

/// Number of shard replicas the environment asks for:
/// CONFCARD_SERVE_SHARDS clamped to [1, 64], default 1.
int ShardsFromEnv();

/// Serving front-end over per-shard guarded replicas.
class ServeFrontEnd {
 public:
  struct Options {
    /// Micro-batch budget B: a batch is dispatched as soon as B requests
    /// are assembled. 1 degenerates to the per-query path.
    int max_batch = 32;
    /// Flush timeout T µs: a non-empty batch waits at most this long for
    /// more arrivals before dispatching. 0 flushes immediately (every
    /// batch is whatever one queue drain pass yields).
    int flush_timeout_us = 200;
    /// Per-shard bounded queue capacity; a full queue sheds.
    size_t queue_capacity = 1024;
    /// Breaker admission watermark: while a shard's breaker is open,
    /// requests are shed once its queue holds >= watermark * capacity
    /// entries (fail fast instead of queueing behind a sick primary).
    double breaker_shed_watermark = 0.5;
    /// Interval-width multiplier for degraded answers (matches
    /// SingleTableHarness::Options::degraded_inflation).
    double degraded_inflation = 4.0;

    // ---- drift-adaptation loop (off by default; enabling it switches
    // interval production from the frozen SplitConformal to a per-shard
    // sliding-window recalibrator fed by Observe()) ----

    /// Master switch for the online feedback loop.
    bool feedback = false;
    /// Per-shard feedback ring capacity; a full ring drops observations
    /// (counted in feedback.dropped) instead of blocking the producer.
    size_t feedback_capacity = 1024;
    /// Sliding calibration window of each shard's OnlineConformal
    /// recalibrator.
    size_t recal_window = 512;
    /// Rolling-monitor horizon feeding the drift detector.
    size_t monitor_window = 256;
    /// Extra interval-width multiplier while the ladder is at kInflate
    /// or beyond (composes with degraded_inflation).
    double drift_inflation = 2.0;
    /// Ladder thresholds. nominal_coverage is overwritten with
    /// 1 - alpha from the conformal predictor at construction.
    DriftDetectorOptions detector;
    /// Residual-corrector knobs (AQO-style executed-query feedback).
    ResidualCorrector::Options corrector;

    /// max_batch from CONFCARD_SERVE_BATCH (clamped [1, 4096], default
    /// 32), flush_timeout_us from CONFCARD_SERVE_TIMEOUT_US (clamped
    /// [0, 1000000], default 200), and feedback from
    /// CONFCARD_SERVE_FEEDBACK ("1"/"on"/"true" enables); everything
    /// else stays at defaults.
    static Options FromEnv();
  };

  /// One guard per shard (none owned; all must outlive the front-end).
  /// Replicas are expected to be behaviorally identical (same
  /// architecture, seed, and training data) — routing is a content hash,
  /// so distinguishable replicas would make results depend on the shard
  /// count. `conformal` must be calibrated; its interval logic and
  /// `num_rows` clipping are shared read-only across shards.
  ServeFrontEnd(std::vector<const GuardedEstimator*> shard_guards,
                const SplitConformal& conformal, double num_rows,
                Options options);
  /// Default-options overload (a default argument cannot reference the
  /// nested Options' member initializers from inside this class).
  ServeFrontEnd(std::vector<const GuardedEstimator*> shard_guards,
                const SplitConformal& conformal, double num_rows)
      : ServeFrontEnd(std::move(shard_guards), conformal, num_rows,
                      Options()) {}
  /// Stops (draining) if the caller has not.
  ~ServeFrontEnd();

  ServeFrontEnd(const ServeFrontEnd&) = delete;
  ServeFrontEnd& operator=(const ServeFrontEnd&) = delete;

  /// Routes and enqueues `request` (whose `query` must be populated).
  /// On any shed outcome the response is published before returning.
  Admit Submit(Request* request);

  /// Executed-query ground truth: queues (query, true_card) on the
  /// owning shard's lock-free feedback ring, to be applied at that
  /// shard's next micro-batch boundary (recalibrator + residual
  /// corrector + drift detector). Returns false when feedback is
  /// disabled, the front-end has stopped, or the ring is full (the
  /// observation is dropped and feedback.dropped counted). Thread-safe;
  /// allocation-free once slot capacity has warmed.
  bool Observe(const Query& query, double true_card);

  /// Synchronously seeds every shard's recalibrator and corrector from
  /// a labeled calibration workload (each query routed to its owning
  /// shard, estimated by that shard's guard). Call while quiesced — no
  /// requests in flight. No-op unless feedback is enabled.
  void WarmupFeedback(const Workload& calibration);

  /// Current ladder stage of `shard` (kHealthy when feedback is off).
  DriftStage ShardStage(int shard) const;
  /// Observations dropped on full feedback rings, summed over shards.
  uint64_t FeedbackDropped() const;

  /// Rejects new requests, serves everything already accepted, joins
  /// the workers. Idempotent.
  void Stop();
  bool stopped() const {
    return stopping_.load(std::memory_order_acquire);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Deterministic shard routing: QueryContentKey(query) % num_shards.
  int ShardFor(const Query& query) const;
  const Options& options() const { return options_; }

  /// Heap allocations performed inside worker batch cycles (pop ->
  /// publish) since the last ResetStats. Read when quiesced; the
  /// steady-state gate in bench_serving expects a delta of zero.
  uint64_t HotPathAllocs() const;
  /// counts[b] = micro-batches dispatched with exactly b requests,
  /// summed over shards (index 0 unused). Read when quiesced.
  std::vector<uint64_t> BatchSizeCounts() const;
  /// Zeroes the per-shard batch/alloc stats. Only call when no requests
  /// are in flight.
  void ResetStats();

 private:
  struct Shard;

  void WorkerLoop(Shard* shard);
  /// Assembles one micro-batch starting from `first`, runs the guarded
  /// batched estimate, and publishes every response. When feedback is on
  /// the cycle starts by draining the shard's feedback ring into the
  /// recalibrator/corrector/detector (micro-batch-boundary application
  /// keeps the ordering deterministic for a fixed request sequence).
  void ProcessFrom(Shard* shard, Request* first);
  /// Drains and applies queued feedback for `shard` (worker thread
  /// only).
  void ApplyFeedback(Shard* shard);
  /// Applies one executed-query observation to `shard`'s adaptive state
  /// and steps the drift detector.
  void FeedOne(Shard* shard, const Query& query,
               const GuardedEstimate& estimate, double truth);
  /// Runs the entry/exit actions of a ladder stage change and records
  /// the serve.drift.* transition metrics + event.
  void ApplyStageTransition(Shard* shard, DriftStage from, DriftStage to);
  void Publish(Request* request, const GuardedEstimate& estimate,
               const Shard& shard, uint32_t batch_size,
               std::chrono::steady_clock::time_point dispatched,
               std::chrono::steady_clock::time_point completed) const;
  void PublishShed(Request* request, int shard) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  const SplitConformal* conformal_;
  const ScoringFunction* scoring_;
  double inflated_delta_ = 0.0;
  double num_rows_ = 0.0;
  Options options_;
  size_t breaker_shed_depth_ = 0;
  std::atomic<bool> stopping_{false};
  /// Submits past the stopping check but not yet enqueued; Stop() waits
  /// for this to drain before joining, so no accepted request is lost.
  std::atomic<int> inflight_submits_{0};
  std::mutex stop_mu_;  // serializes Stop callers
  bool joined_ = false;

  struct ServeMetrics;
  static ServeMetrics& SharedMetrics();
  ServeMetrics& metrics_;
};

}  // namespace serve
}  // namespace confcard

#endif  // CONFCARD_SERVE_SERVE_H_
