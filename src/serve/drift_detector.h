// Staged degradation ladder for serving under data drift. The detector
// watches the per-shard recalibrator's rolling prequential monitors
// (coverage dip below nominal, residual score drift) and maps them onto
// an escalating response:
//
//   kHealthy      →  serve normally
//   kRecalibrate  →  shrink the calibration window to recent scores and
//                    reset the residual corrector (cheap, reversible)
//   kInflate      →  multiply interval widths (honest about uncertainty
//                    while the recalibrator catches up)
//   kFallback     →  serve the histogram-AVI fallback tier; the learned
//                    primary is no longer trusted
//   kBreak        →  force the guard's breaker open; admission sheds
//                    excess load until coverage recovers
//
// Escalation can jump multiple stages at once (a deep dip goes straight
// to kFallback); de-escalation steps down one stage at a time, and only
// after `recovery_hold` consecutive healthy observations — a flapping
// ladder would churn the recalibrator and make replays unreadable.
// Update() is a pure function of the observation sequence, so a replayed
// stream walks the identical stage path (bench_drift gates this).
#ifndef CONFCARD_SERVE_DRIFT_DETECTOR_H_
#define CONFCARD_SERVE_DRIFT_DETECTOR_H_

#include <cstddef>
#include <cstdint>

namespace confcard {
namespace serve {

/// Ladder stages, ordered by severity.
enum class DriftStage : int {
  kHealthy = 0,
  kRecalibrate = 1,
  kInflate = 2,
  kFallback = 3,
  kBreak = 4,
};

/// "healthy" / "recalibrate" / "inflate" / "fallback" / "break".
inline const char* DriftStageToString(DriftStage stage) {
  switch (stage) {
    case DriftStage::kHealthy: return "healthy";
    case DriftStage::kRecalibrate: return "recalibrate";
    case DriftStage::kInflate: return "inflate";
    case DriftStage::kFallback: return "fallback";
    case DriftStage::kBreak: return "break";
  }
  return "unknown";
}

struct DriftDetectorOptions {
  /// Target coverage (1 - alpha); dips are measured against this.
  double nominal_coverage = 0.9;
  /// Observations the rolling window needs before the detector acts.
  size_t min_observations = 64;
  /// Coverage dip (nominal - rolling) that triggers each stage.
  double recalibrate_dip = 0.03;
  double inflate_dip = 0.08;
  double fallback_dip = 0.15;
  double breaker_dip = 0.30;
  /// Rolling/lifetime score ratio that triggers kRecalibrate even while
  /// coverage still looks nominal (drift shows in residuals first).
  double score_drift_ratio = 2.0;
  /// Consecutive healthy observations before stepping down one stage.
  size_t recovery_hold = 96;
  /// "Healthy" = rolling coverage within this of nominal (or above).
  double recovered_within = 0.01;
};

/// Per-shard stage machine. Single-writer: only the shard's worker calls
/// Update (at micro-batch boundaries); stage() is a plain read.
class DriftDetector {
 public:
  DriftDetector() = default;
  explicit DriftDetector(DriftDetectorOptions options) : options_(options) {}

  /// Folds one prequential observation's monitor state into the ladder
  /// and returns the (possibly changed) stage. `observations` is the
  /// rolling window's current occupancy.
  DriftStage Update(double rolling_coverage, double score_drift,
                    size_t observations) {
    if (observations < options_.min_observations) return stage_;
    const double dip = options_.nominal_coverage - rolling_coverage;
    DriftStage target = DriftStage::kHealthy;
    if (dip >= options_.breaker_dip) {
      target = DriftStage::kBreak;
    } else if (dip >= options_.fallback_dip) {
      target = DriftStage::kFallback;
    } else if (dip >= options_.inflate_dip) {
      target = DriftStage::kInflate;
    } else if (dip >= options_.recalibrate_dip ||
               score_drift >= options_.score_drift_ratio) {
      target = DriftStage::kRecalibrate;
    }
    if (static_cast<int>(target) > static_cast<int>(stage_)) {
      stage_ = target;   // escalate immediately, as far as the dip says
      healthy_streak_ = 0;
      ++escalations_;
      return stage_;
    }
    if (dip <= options_.recovered_within) {
      if (++healthy_streak_ >= options_.recovery_hold &&
          stage_ != DriftStage::kHealthy) {
        stage_ = static_cast<DriftStage>(static_cast<int>(stage_) - 1);
        healthy_streak_ = 0;
        ++deescalations_;
      }
    } else {
      healthy_streak_ = 0;
    }
    return stage_;
  }

  DriftStage stage() const { return stage_; }
  /// Lifetime stage transitions (up / down).
  uint64_t escalations() const { return escalations_; }
  uint64_t deescalations() const { return deescalations_; }

  const DriftDetectorOptions& options() const { return options_; }

 private:
  DriftDetectorOptions options_;
  DriftStage stage_ = DriftStage::kHealthy;
  size_t healthy_streak_ = 0;
  uint64_t escalations_ = 0;
  uint64_t deescalations_ = 0;
};

}  // namespace serve
}  // namespace confcard

#endif  // CONFCARD_SERVE_DRIFT_DETECTOR_H_
