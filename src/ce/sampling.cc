#include "ce/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace confcard {

SamplingEstimator::SamplingEstimator(const Table& table, size_t sample_size,
                                     uint64_t seed)
    : table_(&table) {
  CONFCARD_CHECK(table.num_rows() > 0);
  sample_size = std::min(sample_size, table.num_rows());
  CONFCARD_CHECK(sample_size > 0);
  // Partial Fisher-Yates over row ids.
  std::vector<uint32_t> ids(table.num_rows());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  Rng rng(seed);
  for (size_t i = 0; i < sample_size; ++i) {
    size_t j = i + static_cast<size_t>(rng.NextUint64(ids.size() - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(sample_size);
  sample_rows_ = std::move(ids);
  scale_ = static_cast<double>(table.num_rows()) /
           static_cast<double>(sample_size);
}

std::vector<uint8_t> SamplingEstimator::SampleBitmap(
    const Query& query) const {
  std::vector<uint8_t> bitmap(sample_rows_.size(), 1);
  for (size_t i = 0; i < sample_rows_.size(); ++i) {
    for (const Predicate& p : query.predicates) {
      if (!p.Matches(table_->At(sample_rows_[i],
                                static_cast<size_t>(p.column)))) {
        bitmap[i] = 0;
        break;
      }
    }
  }
  return bitmap;
}

void SamplingEstimator::SampleBitmapFloatInto(const Query& query,
                                              float* dst) const {
  const size_t n = sample_rows_.size();
  for (size_t i = 0; i < n; ++i) dst[i] = 1.0f;
  // A row's bit is 0 iff any predicate rejects it, so the evaluation
  // order cannot change the result.
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    for (size_t i = 0; i < n; ++i) {
      if (dst[i] != 0.0f && !p.Matches(table_->At(sample_rows_[i], c))) {
        dst[i] = 0.0f;
      }
    }
  }
}

double SamplingEstimator::EstimateCardinality(const Query& query) const {
  const std::vector<uint8_t> bitmap = SampleBitmap(query);
  uint64_t hits = 0;
  for (uint8_t b : bitmap) hits += b;
  return static_cast<double>(hits) * scale_;
}

double SamplingEstimator::ConfidenceHalfWidth(const Query& query) const {
  const std::vector<uint8_t> bitmap = SampleBitmap(query);
  uint64_t hits = 0;
  for (uint8_t b : bitmap) hits += b;
  const double n = static_cast<double>(bitmap.size());
  const double p = static_cast<double>(hits) / n;
  const double se = std::sqrt(std::max(p * (1.0 - p) / n, 0.0));
  // 1.96 * SE on the proportion, scaled back to tuples.
  return 1.96 * se * static_cast<double>(table_->num_rows());
}

}  // namespace confcard
