// One-dimensional statistics (exact frequency tables for categorical
// columns, equi-depth histograms for numeric ones) and the classic
// attribute-value-independence (AVI) estimator built on them. These are
// the "traditional" baseline and the statistics substrate for LW-NN's
// heuristic features and the Postgres-like optimizer estimator.
#ifndef CONFCARD_CE_HISTOGRAM_H_
#define CONFCARD_CE_HISTOGRAM_H_

#include <memory>
#include <vector>

#include "ce/estimator.h"
#include "data/table.h"
#include "query/predicate.h"

namespace confcard {

/// Selectivity statistics for one column.
class ColumnHistogram {
 public:
  /// Builds from column contents. Categorical columns with domains up to
  /// `max_exact_domain` store exact per-code frequencies (equivalent to
  /// a complete MCV list); everything else gets `num_buckets` equi-depth
  /// buckets with uniform intra-bucket interpolation.
  ColumnHistogram(const Column& column, int num_buckets = 64,
                  int64_t max_exact_domain = 4096);

  /// Estimated fraction of rows with value in [lo, hi].
  double EstimateSelectivity(double lo, double hi) const;

  /// Estimated fraction of rows with value == v.
  double EstimateEquality(double v) const;

  bool exact() const { return exact_; }

 private:
  bool exact_ = false;
  size_t num_rows_ = 0;
  // Exact mode: frequency per categorical code.
  std::vector<double> freq_;
  // Bucket mode: ascending boundaries; bucket i spans
  // [bounds_[i], bounds_[i+1]) (last bucket closed) and holds counts_[i]
  // rows with distinct_[i] distinct values.
  std::vector<double> bounds_;
  std::vector<double> counts_;
  std::vector<double> distinct_;
};

/// Per-table histograms plus the AVI combination rule: the selectivity
/// of a conjunction is the product of per-predicate selectivities.
class HistogramEstimator : public CardinalityEstimator {
 public:
  explicit HistogramEstimator(const Table& table, int num_buckets = 64);

  std::string name() const override { return "histogram-avi"; }
  double EstimateCardinality(const Query& query) const override;

  /// Per-predicate selectivity estimate in [0, 1].
  double PredicateSelectivity(const Predicate& pred) const;

  const ColumnHistogram& column(size_t i) const { return histograms_[i]; }

 private:
  std::vector<ColumnHistogram> histograms_;
  double num_rows_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_HISTOGRAM_H_
