// Query featurization: flat vectors (for the GBDT difficulty model and
// generic consumers) and MSCN's set-structured inputs, for both
// single-table and join queries.
#ifndef CONFCARD_CE_FEATURIZER_H_
#define CONFCARD_CE_FEATURIZER_H_

#include <string>
#include <vector>

#include "ce/sampling.h"
#include "data/multitable.h"
#include "data/table.h"
#include "query/join_query.h"
#include "query/predicate.h"

namespace confcard {

/// Fixed-length featurization of single-table conjunctive queries:
/// per column [has_predicate, is_equality, lo_norm, hi_norm, width_norm]
/// plus a trailing predicate-count feature. Literals are min-max
/// normalized per column.
class FlatQueryFeaturizer {
 public:
  explicit FlatQueryFeaturizer(const Table& table);

  size_t dim() const { return 5 * num_columns_ + 1; }
  std::vector<float> Featurize(const Query& query) const;

  /// Writes the query's dim() features straight into `dst` — the same
  /// values as Featurize(query), without the per-query heap vector.
  /// The allocation-free building block for batched/serving hot paths.
  void FeaturizeInto(const Query& query, float* dst) const;

 private:
  size_t num_columns_;
  std::vector<double> col_min_;
  std::vector<double> col_span_;  // max - min, floored at a tiny epsilon
};

/// MSCN's input: three sets of fixed-width vectors (table set, join set,
/// predicate set), averaged per set by the model after a shared per-set
/// MLP.
struct MscnInput {
  std::vector<std::vector<float>> tables;
  std::vector<std::vector<float>> joins;
  std::vector<std::vector<float>> predicates;
};

/// Featurizer for single-table MSCN. The table vector carries the
/// materialized-sample bitmap (as in the original MSCN), the join set is
/// empty, and each predicate contributes column one-hot + operator
/// one-hot + normalized bounds.
class MscnFeaturizer {
 public:
  /// `bitmap_source` supplies per-query sample bitmaps; may be null to
  /// train MSCN without bitmaps (pure query featurization).
  MscnFeaturizer(const Table& table, const SamplingEstimator* bitmap_source);

  size_t table_dim() const { return table_dim_; }
  size_t join_dim() const { return 1; }  // unused placeholder width
  size_t predicate_dim() const { return pred_dim_; }

  MscnInput Featurize(const Query& query) const;

  /// Writes the query's single table-set row (table_dim() floats, zeros
  /// included) straight into `dst` — the same values as
  /// Featurize(query).tables[0], without the per-query heap vector.
  /// Batched estimation packs rows directly into the model's input
  /// tensors through these.
  void FeaturizeTableRowInto(const Query& query, float* dst) const;
  /// Writes one predicate-set row (predicate_dim() floats) for `p`.
  void FeaturizePredicateRowInto(const Predicate& p, float* dst) const;

 private:
  const SamplingEstimator* bitmap_source_;
  size_t num_columns_;
  size_t table_dim_;
  size_t pred_dim_;
  double log_rows_;
  std::vector<double> col_min_;
  std::vector<double> col_span_;
};

/// Featurizer for join queries over a Database: table one-hots, join
/// edge one-hots, and predicates with a global (table, column) one-hot.
class MscnJoinFeaturizer {
 public:
  explicit MscnJoinFeaturizer(const Database& db);

  size_t table_dim() const { return table_dim_; }
  size_t join_dim() const { return join_dim_; }
  size_t predicate_dim() const { return pred_dim_; }

  MscnInput Featurize(const JoinQuery& query) const;

  /// Direct-into-buffer row writers mirroring MscnFeaturizer's: each
  /// fills one set row (zeros included) with exactly the values the
  /// corresponding Featurize row would hold.
  void FeaturizeTableRowInto(const std::string& table, float* dst) const;
  void FeaturizeJoinRowInto(const JoinEdge& e, float* dst) const;
  void FeaturizePredicateRowInto(const TablePredicate& tp, float* dst) const;

  /// Flat concatenation (tables/joins as multi-hot + per-column
  /// predicate slots), for the GBDT difficulty model on join workloads.
  std::vector<float> FlatFeaturize(const JoinQuery& query) const;
  size_t flat_dim() const;

 private:
  int TableIndex(const std::string& name) const;
  int EdgeIndex(const JoinEdge& e) const;
  /// Global column slot of (table, column-index).
  int ColumnSlot(const std::string& table, int column) const;

  const Database* db_;
  std::vector<std::string> table_names_;
  std::vector<size_t> col_offsets_;  // per table, into global column slots
  size_t total_columns_ = 0;
  size_t table_dim_ = 0;
  size_t join_dim_ = 0;
  size_t pred_dim_ = 0;
  // Normalization per global column slot.
  std::vector<double> col_min_;
  std::vector<double> col_span_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_FEATURIZER_H_
