// Uniform-sample estimator: the traditional baseline the paper contrasts
// with (sampling "provides some measure of uncertainty through variance")
// and the source of MSCN's per-query sample bitmaps.
#ifndef CONFCARD_CE_SAMPLING_H_
#define CONFCARD_CE_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "ce/estimator.h"
#include "data/table.h"

namespace confcard {

/// Bernoulli-style uniform row sample with COUNT(*) scale-up.
class SamplingEstimator : public CardinalityEstimator {
 public:
  /// Draws `sample_size` rows (without replacement) from `table`.
  SamplingEstimator(const Table& table, size_t sample_size,
                    uint64_t seed = 31);

  std::string name() const override { return "sampling"; }
  double EstimateCardinality(const Query& query) const override;

  size_t sample_size() const { return sample_rows_.size(); }

  /// Bitmap over the sample: bit i set iff sampled row i matches the
  /// query. MSCN consumes this as a query feature.
  std::vector<uint8_t> SampleBitmap(const Query& query) const;

  /// SampleBitmap in the float form MSCN's table vector holds, written
  /// straight into dst[0..sample_size()) — same bits (0.0f / 1.0f per
  /// sampled row), no intermediate allocation, and predicate-outer
  /// traversal so each column array is scanned contiguously.
  void SampleBitmapFloatInto(const Query& query, float* dst) const;

  /// Closed-form ~95% confidence half-width for the estimate of `query`
  /// (binomial normal approximation) — the classic sampling bound the
  /// paper mentions traditional methods provide.
  double ConfidenceHalfWidth(const Query& query) const;

 private:
  const Table* table_;
  std::vector<uint32_t> sample_rows_;
  double scale_;  // num_rows / sample_size
};

}  // namespace confcard

#endif  // CONFCARD_CE_SAMPLING_H_
