#include "ce/residual.h"

#include <algorithm>
#include <cmath>

namespace confcard {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResidualCorrector::ResidualCorrector() : ResidualCorrector(Options()) {}

ResidualCorrector::ResidualCorrector(Options options) : options_(options) {
  size_t capacity = RoundUpPow2(std::max<size_t>(options_.capacity, 8));
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

uint64_t ResidualCorrector::SubspaceHash(const Query& query) {
  // (column, op) pairs, sorted so predicate order does not matter.
  // Queries are small (a handful of predicates), so an insertion sort
  // over a fixed local buffer avoids allocation.
  constexpr size_t kMaxPreds = 32;
  uint64_t keys[kMaxPreds];
  size_t n = std::min(query.predicates.size(), kMaxPreds);
  for (size_t i = 0; i < n; ++i) {
    const Predicate& p = query.predicates[i];
    keys[i] = (static_cast<uint64_t>(static_cast<uint32_t>(p.column)) << 1) |
              (p.op == PredOp::kBetween ? 1u : 0u);
  }
  std::sort(keys, keys + n);
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(n));
  for (size_t i = 0; i < n; ++i) h = FnvMix(h, keys[i]);
  return h;
}

const ResidualCorrector::Slot* ResidualCorrector::Find(uint64_t fss) const {
  size_t base = static_cast<size_t>(fss) & mask_;
  for (size_t i = 0; i < kProbeWindow; ++i) {
    const Slot& slot = slots_[(base + i) & mask_];
    if (slot.count == 0) return nullptr;
    if (slot.fss == fss) return &slot;
  }
  return nullptr;
}

ResidualCorrector::Slot* ResidualCorrector::FindOrEvict(uint64_t fss) {
  size_t base = static_cast<size_t>(fss) & mask_;
  Slot* victim = nullptr;
  for (size_t i = 0; i < kProbeWindow; ++i) {
    Slot& slot = slots_[(base + i) & mask_];
    if (slot.fss == fss && slot.count > 0) return &slot;
    if (slot.count == 0) {
      if (victim == nullptr || victim->count > 0) victim = &slot;
      continue;
    }
    if (victim == nullptr || (victim->count > 0 && slot.count < victim->count))
      victim = &slot;
  }
  if (victim->count > 0) {
    ++evictions_;
    --entries_;
  }
  victim->fss = fss;
  victim->count = 0;
  victim->bias = 0.0;
  ++entries_;
  return victim;
}

double ResidualCorrector::Correct(uint64_t fss, double estimate) const {
  const Slot* slot = Find(fss);
  if (slot == nullptr || slot->count < options_.min_observations)
    return estimate;
  double factor = std::exp(slot->bias);
  factor = std::clamp(factor, 1.0 / options_.max_correction,
                      options_.max_correction);
  // Correct in shifted space so zero-cardinality truths stay reachable.
  double corrected = (estimate + 1.0) * factor - 1.0;
  return std::max(corrected, 0.0);
}

void ResidualCorrector::Observe(uint64_t fss, double estimate, double truth) {
  if (!std::isfinite(estimate) || !std::isfinite(truth)) return;
  Slot* slot = FindOrEvict(fss);
  double residual =
      std::log((std::max(truth, 0.0) + 1.0) / (std::max(estimate, 0.0) + 1.0));
  if (slot->count == 0) {
    slot->bias = residual;
  } else {
    slot->bias = (1.0 - options_.smoothing) * slot->bias +
                 options_.smoothing * residual;
  }
  ++slot->count;
  ++observed_;
}

void ResidualCorrector::Reset() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  entries_ = 0;
}

}  // namespace confcard
