// LW-NN (Dutt et al.): a lightweight neural network over heuristic
// features — per-column range bounds plus log-domain selectivity
// estimates from 1-D histograms (AVI and minimum-selectivity) — trained
// with MSE on log cardinality. The least accurate of the three models in
// the paper's evaluation, and hence the one with the widest PIs.
#ifndef CONFCARD_CE_LWNN_H_
#define CONFCARD_CE_LWNN_H_

#include <memory>
#include <vector>

#include "ce/estimator.h"
#include "ce/featurizer.h"
#include "ce/histogram.h"
#include "nn/mlp.h"

namespace confcard {

/// LW-NN estimator.
class LwnnEstimator : public SupervisedEstimator {
 public:
  struct Options {
    size_t hidden1 = 64;
    size_t hidden2 = 32;
    int epochs = 60;
    size_t batch_size = 64;
    double lr = 1e-3;
    int histogram_buckets = 32;
    LossSpec loss = LossSpec::Default();
    uint64_t seed = 4321;
  };

  LwnnEstimator();
  explicit LwnnEstimator(Options options);

  std::string name() const override { return "lw-nn"; }
  double EstimateCardinality(const Query& query) const override;
  /// Packs all featurized queries into one Tensor and runs a single
  /// Apply (GEMM instead of n GEMVs). Bit-identical to the per-query
  /// loop.
  void EstimateBatch(const Query* queries, size_t n,
                     double* out) const override;

  Status Train(const Table& table, const Workload& workload) override;
  std::unique_ptr<SupervisedEstimator> CloneArchitecture(
      uint64_t seed_offset) const override;
  void SetLoss(const LossSpec& loss) override { options_.loss = loss; }
  void RepublishTrainingTelemetry() const override;

  /// The heuristic feature vector for a query (exposed for tests).
  std::vector<float> Features(const Query& query) const;
  /// Writes the same `flat_->dim() + 2` features straight into `dst`;
  /// the allocation-free path EstimateBatch packs tensor rows with.
  void FeaturesInto(const Query& query, float* dst) const;

  /// Persists the trained estimator (options + network weights);
  /// histogram statistics are rebuilt from the table at load time.
  Status SaveToFile(const std::string& path) const;
  /// Restores an estimator saved with SaveToFile against the SAME table.
  static Result<LwnnEstimator> LoadFromFile(const Table& table,
                                            const std::string& path);

 private:
  void PublishTrainMeta() const;

  Options options_;
  std::unique_ptr<FlatQueryFeaturizer> flat_;
  std::unique_ptr<HistogramEstimator> histogram_;
  double num_rows_ = 1.0;
  double last_loss_ = 0.0;
  std::unique_ptr<nn::Mlp> net_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_LWNN_H_
