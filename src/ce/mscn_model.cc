#include "ce/mscn_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/arena.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {
namespace {

// Packs one set kind across the batch into a single tensor; records
// per-sample offsets.
nn::Tensor PackSet(const std::vector<const MscnInput*>& batch,
                   const std::vector<std::vector<float>> MscnInput::*member,
                   size_t dim, std::vector<size_t>* offsets) {
  offsets->clear();
  offsets->push_back(0);
  size_t total = 0;
  for (const MscnInput* in : batch) {
    total += (in->*member).size();
    offsets->push_back(total);
  }
  // Every real row is overwritten below; the single padding row of an
  // all-empty pack is never read (callers bail out when offsets.back()
  // is 0), so skipping the zero-fill is safe.
  nn::Tensor packed = nn::Tensor::Uninitialized(std::max<size_t>(total, 1), dim);
  size_t row = 0;
  for (const MscnInput* in : batch) {
    for (const auto& vec : in->*member) {
      CONFCARD_DCHECK(vec.size() == dim);
      std::copy(vec.begin(), vec.end(), packed.RowPtr(row));
      ++row;
    }
  }
  return packed;
}

// Mean-pools per-sample segments of `elems` into the elems.cols()-wide
// block of `*out` starting at column `col_offset` (rows of `*out` must
// be zero there). Writing the pooled means in place of the destination
// block skips the (B, dim) temporary a pool-then-copy would need.
void PoolMeanInto(const nn::Tensor& elems, const std::vector<size_t>& offsets,
                  size_t batch, nn::Tensor* out, size_t col_offset) {
  for (size_t b = 0; b < batch; ++b) {
    const size_t lo = offsets[b], hi = offsets[b + 1];
    if (hi == lo) continue;  // empty set pools to zero
    float* orow = out->RowPtr(b) + col_offset;
    for (size_t r = lo; r < hi; ++r) {
      const float* erow = elems.RowPtr(r);
      for (size_t c = 0; c < elems.cols(); ++c) orow[c] += erow[c];
    }
    const float inv = 1.0f / static_cast<float>(hi - lo);
    for (size_t c = 0; c < elems.cols(); ++c) orow[c] *= inv;
  }
}

// Mean-pools per-sample segments of `elems` into a (B, dim) tensor.
nn::Tensor PoolMean(const nn::Tensor& elems,
                    const std::vector<size_t>& offsets, size_t batch) {
  nn::Tensor out(batch, elems.cols());
  PoolMeanInto(elems, offsets, batch, &out, 0);
  return out;
}

// Distributes pooled gradients back to set elements (inverse of
// PoolMean).
nn::Tensor UnpoolMean(const nn::Tensor& grad_pooled,
                      const std::vector<size_t>& offsets,
                      size_t total_elems) {
  nn::Tensor out(std::max<size_t>(total_elems, 1), grad_pooled.cols());
  const size_t batch = grad_pooled.rows();
  for (size_t b = 0; b < batch; ++b) {
    const size_t lo = offsets[b], hi = offsets[b + 1];
    if (hi == lo) continue;
    const float inv = 1.0f / static_cast<float>(hi - lo);
    const float* grow = grad_pooled.RowPtr(b);
    for (size_t r = lo; r < hi; ++r) {
      float* orow = out.RowPtr(r);
      for (size_t c = 0; c < grad_pooled.cols(); ++c) {
        orow[c] = grow[c] * inv;
      }
    }
  }
  return out;
}

}  // namespace

MscnModel::MscnModel(size_t table_dim, size_t join_dim, size_t pred_dim,
                     const MscnConfig& config)
    : config_(config),
      table_dim_(table_dim),
      join_dim_(join_dim),
      pred_dim_(pred_dim) {
  Rng rng(config.seed);
  const size_t h = config.set_hidden;
  table_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{table_dim, h, h}, rng);
  join_mlp_ =
      std::make_unique<nn::Mlp>(std::vector<size_t>{join_dim, h, h}, rng);
  pred_mlp_ =
      std::make_unique<nn::Mlp>(std::vector<size_t>{pred_dim, h, h}, rng);
  out_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{3 * h, config.final_hidden, 1}, rng);
}

std::vector<nn::Parameter*> MscnModel::Parameters() {
  std::vector<nn::Parameter*> out;
  for (nn::Mlp* m : {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(),
                     out_mlp_.get()}) {
    for (nn::Parameter* p : m->Parameters()) out.push_back(p);
  }
  return out;
}

nn::Tensor MscnModel::Forward(const std::vector<const MscnInput*>& batch) {
  batch_size_ = batch.size();
  const size_t h = config_.set_hidden;

  nn::Tensor pooled(batch_size_, 3 * h);

  auto run_set = [&](const std::vector<std::vector<float>> MscnInput::*member,
                     nn::Mlp* mlp, size_t dim, SetScratch* scratch,
                     size_t out_offset) {
    nn::Tensor packed = PackSet(batch, member, dim, &scratch->offsets);
    scratch->any = scratch->offsets.back() > 0;
    if (!scratch->any) return;  // all sets empty: pooled stays zero
    nn::Tensor hidden = mlp->Forward(packed);
    nn::Tensor mean = PoolMean(hidden, scratch->offsets, batch_size_);
    for (size_t b = 0; b < batch_size_; ++b) {
      std::copy(mean.RowPtr(b), mean.RowPtr(b) + h,
                pooled.RowPtr(b) + out_offset);
    }
  };

  run_set(&MscnInput::tables, table_mlp_.get(), table_dim_, &table_scratch_,
          0);
  run_set(&MscnInput::joins, join_mlp_.get(), join_dim_, &join_scratch_, h);
  run_set(&MscnInput::predicates, pred_mlp_.get(), pred_dim_,
          &pred_scratch_, 2 * h);

  return out_mlp_->Forward(pooled);
}

void MscnModel::Backward(const nn::Tensor& grad_pred) {
  nn::Tensor grad_pooled = out_mlp_->Backward(grad_pred);
  const size_t h = config_.set_hidden;

  auto back_set = [&](nn::Mlp* mlp, SetScratch* scratch, size_t offset) {
    if (!scratch->any) return;
    nn::Tensor grad_mean(batch_size_, h);
    for (size_t b = 0; b < batch_size_; ++b) {
      std::copy(grad_pooled.RowPtr(b) + offset,
                grad_pooled.RowPtr(b) + offset + h, grad_mean.RowPtr(b));
    }
    nn::Tensor grad_elems =
        UnpoolMean(grad_mean, scratch->offsets, scratch->offsets.back());
    mlp->Backward(grad_elems);
  };

  back_set(table_mlp_.get(), &table_scratch_, 0);
  back_set(join_mlp_.get(), &join_scratch_, h);
  back_set(pred_mlp_.get(), &pred_scratch_, 2 * h);
}

Status MscnModel::Train(const std::vector<MscnInput>& inputs,
                        const std::vector<double>& log_targets) {
  if (inputs.empty()) return Status::InvalidArgument("empty training set");
  if (inputs.size() != log_targets.size()) {
    return Status::InvalidArgument("inputs/targets size mismatch");
  }
  nn::Adam adam(Parameters(), config_.lr);
  Rng rng(config_.seed ^ 0xA5A5A5A5ULL);

  std::vector<size_t> order(inputs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const size_t bs = std::max<size_t>(1, config_.batch_size);
  obs::Gauge& loss_gauge = obs::Metrics().GetGauge("nn.mscn.last_loss");
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("epoch");
    epoch_span.SetAttr("epoch", static_cast<double>(epoch));
    // Step decay stabilizes the heavy-tailed q-error loss: full rate for
    // the first half of training, then halved twice.
    double lr = config_.lr;
    if (epoch >= config_.epochs / 2) lr *= 0.5;
    if (epoch >= 3 * config_.epochs / 4) lr *= 0.5;
    adam.set_lr(lr);
    rng.Shuffle(order);
    double loss_sum = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size(); start += bs) {
      const size_t end = std::min(order.size(), start + bs);
      std::vector<const MscnInput*> batch;
      std::vector<float> targets;
      batch.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch.push_back(&inputs[order[i]]);
        targets.push_back(static_cast<float>(log_targets[order[i]]));
      }
      nn::Tensor pred = Forward(batch);
      nn::Tensor grad;
      if (config_.loss.kind == LossSpec::kPinball) {
        loss_sum += nn::PinballLoss(pred, targets, config_.loss.tau, &grad);
      } else {
        loss_sum += nn::QErrorLogLoss(pred, targets, &grad);
      }
      Backward(grad);
      adam.Step();
      ++num_batches;
    }
    const double mean_loss =
        num_batches == 0 ? 0.0 : loss_sum / static_cast<double>(num_batches);
    epoch_span.SetAttr("loss", mean_loss);
    loss_gauge.Set(mean_loss);
    last_loss_ = mean_loss;
    nn::ArenaTrim();  // epoch boundary: release idle recycled buffers
  }
  return Status::OK();
}

void MscnModel::SerializeParams(ArchiveWriter* writer) {
  // All four set/output MLPs, serialized in Parameters() order.
  for (nn::Mlp* m : {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(),
                     out_mlp_.get()}) {
    nn::SerializeParameters(*m, writer);
  }
}

Status MscnModel::DeserializeParams(ArchiveReader* reader) {
  for (nn::Mlp* m : {table_mlp_.get(), join_mlp_.get(), pred_mlp_.get(),
                     out_mlp_.get()}) {
    CONFCARD_RETURN_NOT_OK(nn::DeserializeParameters(*m, reader));
  }
  return Status::OK();
}

nn::Tensor MscnModel::Apply(const std::vector<const MscnInput*>& batch) const {
  const size_t batch_size = batch.size();
  const size_t h = config_.set_hidden;

  nn::Tensor pooled(batch_size, 3 * h);

  auto run_set = [&](const std::vector<std::vector<float>> MscnInput::*member,
                     const nn::Mlp* mlp, size_t dim, size_t out_offset) {
    std::vector<size_t> offsets;
    nn::Tensor packed = PackSet(batch, member, dim, &offsets);
    if (offsets.back() == 0) return;  // all sets empty: pooled stays zero
    nn::Tensor hidden = mlp->Apply(packed);
    PoolMeanInto(hidden, offsets, batch_size, &pooled, out_offset);
  };

  run_set(&MscnInput::tables, table_mlp_.get(), table_dim_, 0);
  run_set(&MscnInput::joins, join_mlp_.get(), join_dim_, h);
  run_set(&MscnInput::predicates, pred_mlp_.get(), pred_dim_, 2 * h);

  return out_mlp_->Apply(pooled);
}

nn::Tensor MscnModel::ApplyPacked(const MscnPackedBatch& batch) const {
  const size_t batch_size = batch.batch_size;
  const size_t h = config_.set_hidden;

  nn::Tensor pooled(batch_size, 3 * h);

  auto run_set = [&](const nn::Tensor& packed,
                     const std::vector<size_t>& offsets, const nn::Mlp* mlp,
                     size_t out_offset) {
    if (offsets.empty() || offsets.back() == 0) return;  // all sets empty
    nn::Tensor hidden = mlp->ApplyFused(packed);
    PoolMeanInto(hidden, offsets, batch_size, &pooled, out_offset);
  };

  run_set(batch.tables, batch.table_offsets, table_mlp_.get(), 0);
  run_set(batch.joins, batch.join_offsets, join_mlp_.get(), h);
  run_set(batch.predicates, batch.pred_offsets, pred_mlp_.get(), 2 * h);

  return out_mlp_->ApplyFused(pooled);
}

void MscnModel::PredictLogCardPacked(const MscnPackedBatch& batch,
                                     double* out) const {
  if (batch.batch_size == 0) return;
  nn::Tensor pred = ApplyPacked(batch);
  for (size_t i = 0; i < batch.batch_size; ++i) {
    out[i] = static_cast<double>(pred.At(i, 0));
  }
}

double MscnModel::PredictLogCard(const MscnInput& input) const {
  std::vector<const MscnInput*> batch = {&input};
  nn::Tensor pred = Apply(batch);
  return static_cast<double>(pred.At(0, 0));
}

void MscnModel::PredictLogCardBatch(const std::vector<const MscnInput*>& batch,
                                    double* out) const {
  if (batch.empty()) return;
  nn::Tensor pred = Apply(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    out[i] = static_cast<double>(pred.At(i, 0));
  }
}

}  // namespace confcard
