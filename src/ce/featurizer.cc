#include "ce/featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {
namespace {

constexpr double kMinSpan = 1e-9;

}  // namespace

FlatQueryFeaturizer::FlatQueryFeaturizer(const Table& table)
    : num_columns_(table.num_columns()) {
  col_min_.resize(num_columns_);
  col_span_.resize(num_columns_);
  for (size_t c = 0; c < num_columns_; ++c) {
    col_min_[c] = table.column(c).min_value();
    col_span_[c] = std::max(
        table.column(c).max_value() - table.column(c).min_value(), kMinSpan);
  }
}

std::vector<float> FlatQueryFeaturizer::Featurize(const Query& query) const {
  std::vector<float> out(dim(), 0.0f);
  FeaturizeInto(query, out.data());
  return out;
}

void FlatQueryFeaturizer::FeaturizeInto(const Query& query,
                                        float* dst) const {
  std::fill(dst, dst + dim(), 0.0f);
  // Unconstrained columns read as the full range [0, 1].
  for (size_t c = 0; c < num_columns_; ++c) {
    dst[5 * c + 2] = 0.0f;  // lo
    dst[5 * c + 3] = 1.0f;  // hi
    dst[5 * c + 4] = 1.0f;  // width
  }
  for (const Predicate& p : query.predicates) {
    CONFCARD_DCHECK(p.column >= 0 &&
                    static_cast<size_t>(p.column) < num_columns_);
    const size_t c = static_cast<size_t>(p.column);
    double lo = (p.lo - col_min_[c]) / col_span_[c];
    double hi = (p.hi - col_min_[c]) / col_span_[c];
    lo = std::clamp(lo, 0.0, 1.0);
    hi = std::clamp(hi, 0.0, 1.0);
    dst[5 * c + 0] = 1.0f;
    dst[5 * c + 1] = p.op == PredOp::kEq ? 1.0f : 0.0f;
    dst[5 * c + 2] = static_cast<float>(lo);
    dst[5 * c + 3] = static_cast<float>(hi);
    dst[5 * c + 4] = static_cast<float>(hi - lo);
  }
  dst[5 * num_columns_] = static_cast<float>(query.predicates.size()) /
                          static_cast<float>(num_columns_);
}

MscnFeaturizer::MscnFeaturizer(const Table& table,
                               const SamplingEstimator* bitmap_source)
    : bitmap_source_(bitmap_source),
      num_columns_(table.num_columns()),
      log_rows_(std::log(static_cast<double>(table.num_rows()) + 1.0)) {
  table_dim_ =
      2 + (bitmap_source_ != nullptr ? bitmap_source_->sample_size() : 0);
  pred_dim_ = num_columns_ + 2 + 2;  // col one-hot, op one-hot, lo/hi
  col_min_.resize(num_columns_);
  col_span_.resize(num_columns_);
  for (size_t c = 0; c < num_columns_; ++c) {
    col_min_[c] = table.column(c).min_value();
    col_span_[c] = std::max(
        table.column(c).max_value() - table.column(c).min_value(), kMinSpan);
  }
}

void MscnFeaturizer::FeaturizeTableRowInto(const Query& query,
                                           float* dst) const {
  std::fill(dst, dst + table_dim_, 0.0f);
  dst[0] = 1.0f;
  dst[1] = static_cast<float>(log_rows_ / 30.0);
  if (bitmap_source_ != nullptr) {
    bitmap_source_->SampleBitmapFloatInto(query, dst + 2);
  }
}

void MscnFeaturizer::FeaturizePredicateRowInto(const Predicate& p,
                                               float* dst) const {
  std::fill(dst, dst + pred_dim_, 0.0f);
  const size_t c = static_cast<size_t>(p.column);
  dst[c] = 1.0f;
  dst[num_columns_ + (p.op == PredOp::kEq ? 0 : 1)] = 1.0f;
  double lo = std::clamp((p.lo - col_min_[c]) / col_span_[c], 0.0, 1.0);
  double hi = std::clamp((p.hi - col_min_[c]) / col_span_[c], 0.0, 1.0);
  dst[num_columns_ + 2] = static_cast<float>(lo);
  dst[num_columns_ + 3] = static_cast<float>(hi);
}

MscnInput MscnFeaturizer::Featurize(const Query& query) const {
  MscnInput in;
  std::vector<float> tf(table_dim_);
  FeaturizeTableRowInto(query, tf.data());
  in.tables.push_back(std::move(tf));
  for (const Predicate& p : query.predicates) {
    std::vector<float> pf(pred_dim_);
    FeaturizePredicateRowInto(p, pf.data());
    in.predicates.push_back(std::move(pf));
  }
  return in;
}

MscnJoinFeaturizer::MscnJoinFeaturizer(const Database& db) : db_(&db) {
  for (const Table& t : db.tables()) {
    table_names_.push_back(t.name());
    col_offsets_.push_back(total_columns_);
    total_columns_ += t.num_columns();
  }
  table_dim_ = table_names_.size() + 1;  // one-hot + log size
  join_dim_ = std::max<size_t>(1, db.join_edges().size());
  pred_dim_ = total_columns_ + 2 + 2;

  col_min_.resize(total_columns_);
  col_span_.resize(total_columns_);
  size_t slot = 0;
  for (const Table& t : db.tables()) {
    for (size_t c = 0; c < t.num_columns(); ++c, ++slot) {
      col_min_[slot] = t.column(c).min_value();
      col_span_[slot] =
          std::max(t.column(c).max_value() - t.column(c).min_value(),
                   kMinSpan);
    }
  }
}

int MscnJoinFeaturizer::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < table_names_.size(); ++i) {
    if (table_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int MscnJoinFeaturizer::EdgeIndex(const JoinEdge& e) const {
  const auto& edges = db_->join_edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    const JoinEdge& d = edges[i];
    const bool same = d.left_table == e.left_table &&
                      d.left_column == e.left_column &&
                      d.right_table == e.right_table &&
                      d.right_column == e.right_column;
    const bool flipped = d.left_table == e.right_table &&
                         d.left_column == e.right_column &&
                         d.right_table == e.left_table &&
                         d.right_column == e.left_column;
    if (same || flipped) return static_cast<int>(i);
  }
  return -1;
}

int MscnJoinFeaturizer::ColumnSlot(const std::string& table,
                                   int column) const {
  int ti = TableIndex(table);
  if (ti < 0) return -1;
  return static_cast<int>(col_offsets_[static_cast<size_t>(ti)]) + column;
}

void MscnJoinFeaturizer::FeaturizeTableRowInto(const std::string& table,
                                               float* dst) const {
  std::fill(dst, dst + table_dim_, 0.0f);
  int ti = TableIndex(table);
  CONFCARD_DCHECK(ti >= 0);
  dst[static_cast<size_t>(ti)] = 1.0f;
  dst[table_names_.size()] = static_cast<float>(
      std::log(static_cast<double>(db_->table(table).num_rows()) + 1.0) /
      30.0);
}

void MscnJoinFeaturizer::FeaturizeJoinRowInto(const JoinEdge& e,
                                              float* dst) const {
  std::fill(dst, dst + join_dim_, 0.0f);
  int ei = EdgeIndex(e);
  if (ei >= 0) dst[static_cast<size_t>(ei)] = 1.0f;
}

void MscnJoinFeaturizer::FeaturizePredicateRowInto(const TablePredicate& tp,
                                                   float* dst) const {
  std::fill(dst, dst + pred_dim_, 0.0f);
  int slot = ColumnSlot(tp.table, tp.pred.column);
  CONFCARD_DCHECK(slot >= 0);
  dst[static_cast<size_t>(slot)] = 1.0f;
  dst[total_columns_ + (tp.pred.op == PredOp::kEq ? 0 : 1)] = 1.0f;
  const size_t s = static_cast<size_t>(slot);
  double lo =
      std::clamp((tp.pred.lo - col_min_[s]) / col_span_[s], 0.0, 1.0);
  double hi =
      std::clamp((tp.pred.hi - col_min_[s]) / col_span_[s], 0.0, 1.0);
  dst[total_columns_ + 2] = static_cast<float>(lo);
  dst[total_columns_ + 3] = static_cast<float>(hi);
}

MscnInput MscnJoinFeaturizer::Featurize(const JoinQuery& query) const {
  MscnInput in;
  for (const std::string& t : query.tables) {
    std::vector<float> tf(table_dim_);
    FeaturizeTableRowInto(t, tf.data());
    in.tables.push_back(std::move(tf));
  }
  for (const JoinEdge& e : query.joins) {
    std::vector<float> jf(join_dim_);
    FeaturizeJoinRowInto(e, jf.data());
    in.joins.push_back(std::move(jf));
  }
  for (const TablePredicate& tp : query.predicates) {
    std::vector<float> pf(pred_dim_);
    FeaturizePredicateRowInto(tp, pf.data());
    in.predicates.push_back(std::move(pf));
  }
  return in;
}

size_t MscnJoinFeaturizer::flat_dim() const {
  return table_names_.size() + db_->join_edges().size() +
         5 * total_columns_;
}

std::vector<float> MscnJoinFeaturizer::FlatFeaturize(
    const JoinQuery& query) const {
  std::vector<float> out(flat_dim(), 0.0f);
  for (const std::string& t : query.tables) {
    int ti = TableIndex(t);
    if (ti >= 0) out[static_cast<size_t>(ti)] = 1.0f;
  }
  const size_t join_base = table_names_.size();
  for (const JoinEdge& e : query.joins) {
    int ei = EdgeIndex(e);
    if (ei >= 0) out[join_base + static_cast<size_t>(ei)] = 1.0f;
  }
  const size_t pred_base = join_base + db_->join_edges().size();
  for (size_t s = 0; s < total_columns_; ++s) {
    out[pred_base + 5 * s + 3] = 1.0f;  // hi
    out[pred_base + 5 * s + 4] = 1.0f;  // width
  }
  for (const TablePredicate& tp : query.predicates) {
    int slot = ColumnSlot(tp.table, tp.pred.column);
    if (slot < 0) continue;
    const size_t s = static_cast<size_t>(slot);
    double lo =
        std::clamp((tp.pred.lo - col_min_[s]) / col_span_[s], 0.0, 1.0);
    double hi =
        std::clamp((tp.pred.hi - col_min_[s]) / col_span_[s], 0.0, 1.0);
    out[pred_base + 5 * s + 0] = 1.0f;
    out[pred_base + 5 * s + 1] = tp.pred.op == PredOp::kEq ? 1.0f : 0.0f;
    out[pred_base + 5 * s + 2] = static_cast<float>(lo);
    out[pred_base + 5 * s + 3] = static_cast<float>(hi);
    out[pred_base + 5 * s + 4] = static_cast<float>(hi - lo);
  }
  return out;
}

}  // namespace confcard
