// The multi-set convolutional network (Kipf et al.) re-implemented on
// the confcard nn substrate: one shared MLP per input set (tables,
// joins, predicates), mean-pooling per set, and a final MLP over the
// concatenated pooled vectors. Regression target is log(card + 1).
#ifndef CONFCARD_CE_MSCN_MODEL_H_
#define CONFCARD_CE_MSCN_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ce/estimator.h"
#include "ce/featurizer.h"
#include "common/archive.h"
#include "nn/mlp.h"

namespace confcard {

/// MSCN hyper-parameters.
struct MscnConfig {
  size_t set_hidden = 64;    // per-set module width (hidden and output)
  size_t final_hidden = 64;  // final MLP hidden width
  int epochs = 30;
  size_t batch_size = 64;
  double lr = 1e-3;
  LossSpec loss = LossSpec::Default();
  uint64_t seed = 1234;
};

/// An inference batch already packed for the model: one dense tensor
/// per set kind, rows grouped per query, with offsets[b]..offsets[b+1]
/// delimiting query b's rows (offsets have batch_size + 1 entries; an
/// all-empty set kind has offsets.back() == 0 and its tensor is
/// ignored). Row values must equal the corresponding MscnInput vectors;
/// the estimators fill them straight from the featurizer's *RowInto
/// writers, skipping the per-query heap vectors and the repack copy.
struct MscnPackedBatch {
  size_t batch_size = 0;
  nn::Tensor tables, joins, predicates;
  std::vector<size_t> table_offsets, join_offsets, pred_offsets;
};

/// The network itself, independent of featurization. Train / predict in
/// log(card + 1) space.
class MscnModel {
 public:
  MscnModel(size_t table_dim, size_t join_dim, size_t pred_dim,
            const MscnConfig& config);

  /// Minibatch training with Adam. `log_targets[i]` = log(card_i + 1).
  Status Train(const std::vector<MscnInput>& inputs,
               const std::vector<double>& log_targets);

  /// Forward pass for one query. Touches no training scratch, so a
  /// trained model can serve many threads concurrently.
  double PredictLogCard(const MscnInput& input) const;

  /// One forward for the whole batch, writing log-cardinalities to
  /// out[0..batch.size()). Each sample's set elements occupy their own
  /// rows of the packed tensors and pooling is per-sample, so every
  /// prediction is bit-identical to a batch-of-1 PredictLogCard.
  void PredictLogCardBatch(const std::vector<const MscnInput*>& batch,
                           double* out) const;

  /// PredictLogCardBatch over a pre-packed batch: identical bits (the
  /// packed tensors hold the same rows PackSet would build), none of the
  /// intermediate per-query allocations.
  void PredictLogCardPacked(const MscnPackedBatch& batch, double* out) const;

  /// Mean loss of the final training epoch (0 before Train). Lets the
  /// harness republish the nn.mscn.last_loss gauge deterministically
  /// after parallel fold training.
  double last_loss() const { return last_loss_; }

  const MscnConfig& config() const { return config_; }

  /// Appends all learnable parameters to `writer` (shape-prefixed).
  void SerializeParams(ArchiveWriter* writer);
  /// Restores parameters written by SerializeParams into a model of the
  /// same architecture; fails on any shape mismatch.
  Status DeserializeParams(ArchiveReader* reader);

 private:
  /// Batched forward over `batch`; returns (batch_size, 1) predictions.
  nn::Tensor Forward(const std::vector<const MscnInput*>& batch);
  /// Inference-only forward: same numbers as Forward, no cached scratch.
  nn::Tensor Apply(const std::vector<const MscnInput*>& batch) const;
  /// Inference-only forward over pre-packed set tensors.
  nn::Tensor ApplyPacked(const MscnPackedBatch& batch) const;
  /// Backprop of dLoss/dPred through the whole network.
  void Backward(const nn::Tensor& grad_pred);
  std::vector<nn::Parameter*> Parameters();

  MscnConfig config_;
  size_t table_dim_, join_dim_, pred_dim_;
  std::unique_ptr<nn::Mlp> table_mlp_;
  std::unique_ptr<nn::Mlp> join_mlp_;
  std::unique_ptr<nn::Mlp> pred_mlp_;
  std::unique_ptr<nn::Mlp> out_mlp_;

  // Forward scratch reused by Backward.
  struct SetScratch {
    std::vector<size_t> offsets;  // per-sample element offset (size B+1)
    bool any = false;
  };
  SetScratch table_scratch_, join_scratch_, pred_scratch_;
  size_t batch_size_ = 0;
  double last_loss_ = 0.0;
};

}  // namespace confcard

#endif  // CONFCARD_CE_MSCN_MODEL_H_
