// Guarded estimation: a decorator that makes any CardinalityEstimator
// safe to serve. The paper's models fail silently — NaN logits, exp()
// blow-ups, pathological latencies — and a production serving path
// (postgrespro/aqo is the model here) survives because it always has a
// fallback to a native estimator. GuardedEstimator supplies exactly
// that:
//
//   * queries are validated up front (column range, lo <= hi, no NaN
//     bounds); invalid queries are quarantined instead of aborting,
//   * primary outputs are sanitized — NaN/Inf/negative estimates never
//     escape,
//   * an optional per-query latency budget turns pathological slowness
//     into a failure,
//   * a failed primary is retried once (configurable), then falls back
//     through a chain of alternates ending in an always-available
//     histogram-AVI estimator built from the table,
//   * a circuit breaker trips to fallback-only after K consecutive
//     primary failures and recovers via a healthy probe after cooldown.
//
// Every intervention bumps a ce.guard.* metric and, when the event log
// is armed, appends a guard record; healthy queries pay one validation
// pass and one finiteness check. With no faults injected and no budget
// configured, the guarded path is bit-identical to the raw estimator
// (determinism_test enforces this).
#ifndef CONFCARD_CE_GUARDED_H_
#define CONFCARD_CE_GUARDED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ce/estimator.h"
#include "ce/histogram.h"
#include "obs/metrics.h"

namespace confcard {

/// Guard policy knobs.
struct GuardOptions {
  /// Extra attempts on the primary after a failed one (0 = no retry).
  int max_retries = 1;
  /// Per-query wall-clock budget in microseconds for the primary; 0
  /// disables budget enforcement (and keeps the guarded batch path on
  /// the primary's batched fast path).
  double latency_budget_us = 0.0;
  /// Consecutive primary failures (counting each query once, after
  /// retries) that trip the circuit breaker; <= 0 disables the breaker.
  int breaker_threshold = 8;
  /// Queries served fallback-only while the breaker is open before a
  /// probe query is allowed through to the primary.
  int breaker_cooldown = 32;
};

/// Caller-owned reusable buffers for EstimateBatchGuarded's fast path.
/// A serving loop that keeps one scratch per worker pays zero heap
/// allocations per batch once the vectors have grown to the loop's
/// steady-state batch size (bench_serving gates this).
struct GuardBatchScratch {
  std::vector<size_t> valid;
  std::vector<double> values;
  std::vector<Query> compacted;
};

/// Outcome of one guarded estimate.
struct GuardedEstimate {
  /// Sanitized cardinality estimate (finite, >= 0).
  double value = 0.0;
  /// True when the primary did not produce this value (fallback chain,
  /// open breaker, or quarantined invalid query). Degraded answers get
  /// conservatively inflated prediction intervals downstream.
  bool degraded = false;
  /// 0: primary. 1..: index into the fallback chain (the final
  /// histogram fallback is the last index). -1: quarantined invalid
  /// query (no estimator ran).
  int source = 0;
};

/// Decorator over a primary CardinalityEstimator. Neither the primary
/// nor added fallbacks are owned; the terminal histogram fallback is
/// built from the table and owned by the guard.
class GuardedEstimator : public CardinalityEstimator {
 public:
  GuardedEstimator(const CardinalityEstimator& primary, const Table& table,
                   GuardOptions options = {});

  /// Inserts a fallback tried (in insertion order) before the terminal
  /// histogram estimator. Not owned; must outlive the guard.
  void AddFallback(const CardinalityEstimator& fallback);

  std::string name() const override;
  double EstimateCardinality(const Query& query) const override;
  void EstimateBatch(const Query* queries, size_t n,
                     double* out) const override;

  /// Rich single-query path: value plus degradation provenance.
  GuardedEstimate EstimateGuarded(const Query& query) const;
  /// Rich batch path. When no faults are armed, no budget is set, and
  /// the breaker is closed, this runs the primary's batched fast path
  /// and only sanitizes; otherwise queries go through the full per-query
  /// guard.
  ///
  /// `order_key_base`: event-log ordering key for guard records emitted
  /// by query 0 of this batch (query i uses base + i); see
  /// obs::EventLog::OrderKey. Callers that fan batches out across
  /// threads pass keys derived from a shared order window so the merged
  /// log is deterministic; 0 (the default) lets the log assign
  /// per-thread automatic keys.
  ///
  /// `scratch`: optional reusable buffers for the fast path; pass a
  /// per-worker GuardBatchScratch to make steady-state batches
  /// allocation-free. Null falls back to call-local vectors.
  void EstimateBatchGuarded(const Query* queries, size_t n,
                            GuardedEstimate* out, uint64_t order_key_base = 0,
                            GuardBatchScratch* scratch = nullptr) const;

  /// Fallback-tier batch path for staged drift degradation: every query
  /// is validated and served from the fallback chain (histogram-AVI
  /// terminal tier) without touching the primary — no breaker
  /// bookkeeping, no probes. Guard records carry reason
  /// "drift_fallback". Allocation-free.
  void EstimateFallbackTier(const Query* queries, size_t n,
                            GuardedEstimate* out,
                            uint64_t order_key_base = 0) const;

  /// Forces the breaker open (true) or releases the force (false). While
  /// forced, breaker_open() reports open, AllowPrimary denies every
  /// query (no probes), and the organic breaker state underneath is
  /// untouched — releasing the force restores whatever the consecutive-
  /// failure machinery last decided. The drift ladder's terminal stage
  /// uses this to shed load at admission without fabricating failures.
  void ForceBreaker(bool open) const;
  /// True while ForceBreaker(true) is in effect.
  bool breaker_forced() const;

  /// Circuit-breaker state, for tests and monitors (true when organic
  /// OR forced open).
  bool breaker_open() const;

  const GuardOptions& options() const { return options_; }

 private:
  /// True iff `v` may be served as a cardinality.
  static bool Sane(double v);

  /// The full per-query guard (validate → breaker → primary ladder →
  /// fallback), minus the queries-counter bump — shared by the single
  /// and batch entry points. `order_key` keys any emitted guard record
  /// (0 = automatic).
  GuardedEstimate GuardOne(const Query& query, uint64_t order_key = 0) const;
  /// One guarded attempt ladder against the primary (including retries
  /// and budget enforcement). Returns true and sets *value on success.
  bool TryPrimary(const Query& query, double* value) const;
  /// Walks the fallback chain; always produces a sane value.
  GuardedEstimate ServeFallback(const Query& query) const;
  /// Breaker bookkeeping after a query's primary outcome.
  void RecordPrimaryOutcome(bool ok, bool was_probe) const;
  /// Decides between primary and fallback for one query under the
  /// breaker; sets *probe when this query is the post-cooldown probe.
  bool AllowPrimary(bool* probe) const;

  void EmitGuardRecord(const Query& query, const GuardedEstimate& outcome,
                       const char* reason, uint64_t order_key) const;

  const CardinalityEstimator* primary_;
  std::vector<const CardinalityEstimator*> fallbacks_;
  std::unique_ptr<HistogramEstimator> histogram_;
  GuardOptions options_;
  size_t num_columns_;

  // Breaker state. Guarded queries run concurrently (the harness fans
  // batches out; the serving front-end hammers one guard from every
  // shard producer), so transitions are lock-free atomics: AllowPrimary
  // claims cooldown ticks and the single in-flight probe slot via CAS,
  // and breaker_open() is a relaxed-load admission check cheap enough
  // for a serving submit path. With a healthy primary the state never
  // changes, so faults-off parallel runs stay deterministic.
  // cooldown_remaining_ uses kProbeInFlight (-1) to mark that a probe
  // query has been admitted and its outcome is still pending; other
  // callers stay on the fallback until the probe resolves.
  static constexpr int kProbeInFlight = -1;
  mutable std::atomic<int> consecutive_failures_{0};
  mutable std::atomic<bool> open_{false};
  mutable std::atomic<int> cooldown_remaining_{0};
  // Drift-ladder force: ORed into breaker_open(), short-circuits
  // AllowPrimary. Independent of the organic state above.
  mutable std::atomic<bool> forced_open_{false};

  struct GuardMetrics {
    obs::Counter& queries;
    obs::Counter& primary_ok;
    obs::Counter& sanitized_nan;
    obs::Counter& sanitized_negative;
    obs::Counter& budget_exceeded;
    obs::Counter& retries;
    obs::Counter& retry_success;
    obs::Counter& fallback_served;
    obs::Counter& invalid_query;
    obs::Counter& breaker_trips;
    obs::Counter& breaker_probes;
    obs::Counter& breaker_recoveries;
    obs::Gauge& breaker_open;
    obs::Histogram& latency_us;
    GuardMetrics();
  };
  static GuardMetrics& SharedMetrics();
  GuardMetrics& metrics_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_GUARDED_H_
