#include "ce/naru.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "query/validate.h"
#include "nn/arena.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {
namespace {

// Degree assignment for MADE masks. Input/output units of column i carry
// degree i+1; hidden units cycle through 1..D-1 so every conditional has
// capacity. Connection rules: input->hidden if deg_h >= deg_in is NOT
// autoregressive for inputs (we need deg_h >= deg_in with inputs allowed
// to feed only strictly-later outputs); the standard MADE rules are
//   input->hidden:   deg_h >= deg_in
//   hidden->hidden:  deg_h2 >= deg_h1
//   hidden->output:  deg_out > deg_h
// which guarantee output block i sees only input blocks < i.
std::vector<int> HiddenDegrees(size_t width, int num_cols, Rng& rng) {
  std::vector<int> degrees(width);
  if (num_cols <= 1) {
    // Single column: unconditional marginal; no hidden connectivity
    // needed, but keep degrees valid.
    for (auto& d : degrees) d = 1;
    return degrees;
  }
  for (size_t i = 0; i < width; ++i) {
    degrees[i] = 1 + static_cast<int>(rng.NextUint64(
                         static_cast<uint64_t>(num_cols - 1)));
  }
  return degrees;
}

nn::Tensor MakeMask(const std::vector<int>& in_degrees,
                    const std::vector<int>& out_degrees, bool strict) {
  nn::Tensor mask(in_degrees.size(), out_degrees.size());
  for (size_t i = 0; i < in_degrees.size(); ++i) {
    for (size_t j = 0; j < out_degrees.size(); ++j) {
      const bool connect = strict ? out_degrees[j] > in_degrees[i]
                                  : out_degrees[j] >= in_degrees[i];
      mask.At(i, j) = connect ? 1.0f : 0.0f;
    }
  }
  return mask;
}

}  // namespace

namespace {
// 'CNR1' — confcard naru archive.
constexpr uint32_t kNaruMagic = 0x434E5231;
constexpr uint32_t kNaruVersion = 1;
}  // namespace

NaruEstimator::NaruEstimator(NaruConfig config) : config_(config) {}

Status NaruEstimator::SaveToFile(const std::string& path) const {
  if (net_ == nullptr) return Status::FailedPrecondition("naru: not trained");
  ArchiveWriter w(kNaruMagic, kNaruVersion);
  w.WriteU64(config_.hidden);
  w.WriteI32(config_.hidden_layers);
  w.WriteI32(config_.epochs);
  w.WriteU64(config_.batch_size);
  w.WriteDouble(config_.lr);
  w.WriteI32(config_.numeric_bins);
  w.WriteU64(config_.max_train_rows);
  w.WriteU64(config_.num_samples);
  w.WriteU64(config_.seed);
  w.WriteDouble(num_rows_);
  w.WriteU64(binner_->TotalBins());
  nn::SerializeParameters(*net_, &w);
  return w.SaveToFile(path);
}

Result<NaruEstimator> NaruEstimator::LoadFromFile(const Table& table,
                                                  const std::string& path) {
  CONFCARD_ASSIGN_OR_RETURN(
      ArchiveReader r,
      ArchiveReader::FromFile(path, kNaruMagic, kNaruVersion));
  NaruConfig cfg;
  cfg.hidden = static_cast<size_t>(r.ReadU64());
  cfg.hidden_layers = r.ReadI32();
  cfg.epochs = r.ReadI32();
  cfg.batch_size = static_cast<size_t>(r.ReadU64());
  cfg.lr = r.ReadDouble();
  cfg.numeric_bins = r.ReadI32();
  cfg.max_train_rows = static_cast<size_t>(r.ReadU64());
  cfg.num_samples = static_cast<size_t>(r.ReadU64());
  cfg.seed = r.ReadU64();
  const double num_rows = r.ReadDouble();
  const uint64_t total_bins = r.ReadU64();
  CONFCARD_RETURN_NOT_OK(r.status());

  NaruEstimator est(cfg);
  est.num_rows_ = static_cast<double>(table.num_rows());
  if (est.num_rows_ != num_rows) {
    return Status::InvalidArgument(
        "naru archive was trained on a table with a different row count");
  }
  est.binner_ = std::make_unique<TableBinner>(table, cfg.numeric_bins);
  if (est.binner_->TotalBins() != total_bins) {
    return Status::InvalidArgument(
        "naru archive discretization does not match this table");
  }
  // Rebuild masks exactly as Train did: the mask construction consumes
  // the same Rng stream given the same seed and shapes.
  Rng rng(cfg.seed);
  est.BuildNetwork(rng);
  CONFCARD_RETURN_NOT_OK(nn::DeserializeParameters(*est.net_, &r));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in naru archive");
  }
  return est;
}

void NaruEstimator::BuildNetwork(Rng& rng) {
  const size_t num_cols = binner_->num_columns();
  const size_t total = binner_->TotalBins();

  block_offsets_.clear();
  block_offsets_.push_back(0);
  std::vector<int> io_degrees(total);
  size_t pos = 0;
  for (size_t c = 0; c < num_cols; ++c) {
    const size_t width = static_cast<size_t>(binner_->column(c).num_bins());
    for (size_t k = 0; k < width; ++k) {
      io_degrees[pos + k] = static_cast<int>(c) + 1;
    }
    pos += width;
    block_offsets_.push_back(pos);
  }

  net_ = std::make_unique<nn::Sequential>();
  std::vector<int> prev_degrees = io_degrees;
  bool prev_is_input = true;
  for (int l = 0; l < config_.hidden_layers; ++l) {
    std::vector<int> h_degrees =
        HiddenDegrees(config_.hidden, static_cast<int>(num_cols), rng);
    nn::Tensor mask = MakeMask(prev_degrees, h_degrees, /*strict=*/false);
    net_->Append(std::make_unique<nn::MaskedDense>(
        prev_degrees.size(), config_.hidden, std::move(mask), rng));
    net_->Append(std::make_unique<nn::Relu>());
    prev_degrees = std::move(h_degrees);
    prev_is_input = false;
  }
  // Output layer: strict inequality enforces autoregressive ordering.
  nn::Tensor out_mask = MakeMask(prev_degrees, io_degrees, /*strict=*/true);
  net_->Append(std::make_unique<nn::MaskedDense>(
      prev_degrees.size(), total, std::move(out_mask), rng));
  (void)prev_is_input;
}

Status NaruEstimator::Train(const Table& table) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("naru: empty table");
  }
  obs::TraceSpan span("train.naru");
  span.SetAttr("rows", static_cast<double>(table.num_rows()));
  CONFCARD_RETURN_NOT_OK(fault::Check("naru.train", config_.seed));
  obs::Metrics().SetMeta(
      "config.naru", "epochs=" + std::to_string(config_.epochs) +
                         " hidden=" + std::to_string(config_.hidden) +
                         " num_samples=" + std::to_string(config_.num_samples) +
                         " seed=" + std::to_string(config_.seed));
  obs::Metrics().GetCounter("ce.naru.trainings").Increment();
  num_rows_ = static_cast<double>(table.num_rows());
  binner_ = std::make_unique<TableBinner>(table, config_.numeric_bins);
  Rng rng(config_.seed);
  BuildNetwork(rng);

  // Subsample training rows if needed.
  std::vector<uint32_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  if (rows.size() > config_.max_train_rows) {
    rng.Shuffle(rows);
    rows.resize(config_.max_train_rows);
  }

  // Pre-bin all training rows.
  const size_t num_cols = binner_->num_columns();
  std::vector<std::vector<int>> binned(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    binned[i] = binner_->BinRow(table, rows[i]);
  }

  const size_t total = binner_->TotalBins();
  nn::Adam adam(net_->Parameters(), config_.lr);
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t bs = std::max<size_t>(1, config_.batch_size);

  obs::Gauge& loss_gauge = obs::Metrics().GetGauge("nn.naru.last_loss");
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("epoch");
    epoch_span.SetAttr("epoch", static_cast<double>(epoch));
    rng.Shuffle(order);
    double loss_sum = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size(); start += bs) {
      const size_t end = std::min(order.size(), start + bs);
      const size_t b = end - start;
      nn::Tensor input(b, total);
      std::vector<std::vector<int>> targets(b);
      for (size_t i = 0; i < b; ++i) {
        const std::vector<int>& bins = binned[order[start + i]];
        targets[i] = bins;
        float* row = input.RowPtr(i);
        for (size_t c = 0; c < num_cols; ++c) {
          row[block_offsets_[c] + static_cast<size_t>(bins[c])] = 1.0f;
        }
      }
      nn::Tensor logits = net_->Forward(input);
      nn::Tensor grad;
      loss_sum +=
          nn::BlockSoftmaxCrossEntropy(logits, block_offsets_, targets, &grad);
      net_->Backward(grad);
      adam.Step();
      ++num_batches;
    }
    const double mean_loss =
        num_batches == 0 ? 0.0 : loss_sum / static_cast<double>(num_batches);
    epoch_span.SetAttr("loss", mean_loss);
    loss_gauge.Set(mean_loss);
    nn::ArenaTrim();  // epoch boundary: release idle recycled buffers
  }
  return Status::OK();
}

double NaruEstimator::ProgressiveSampleDense(
    const std::vector<std::pair<int, int>>& bin_ranges,
    int last_constrained) const {
  const size_t total = binner_->TotalBins();
  const size_t S = std::max<size_t>(1, config_.num_samples);
  obs::Metrics().GetCounter("ce.naru.progressive_samples").Increment(S);

  // Deterministic per-call sampler: inference must be repeatable.
  Rng rng(config_.seed ^ 0x5EEDBEEFULL);

  nn::Tensor input(S, total);  // grows one one-hot block per step
  std::vector<double> path_prob(S, 1.0);
  std::vector<float> probs;

  for (int c = 0; c <= last_constrained; ++c) {
    const size_t lo_off = block_offsets_[static_cast<size_t>(c)];
    const size_t width = block_offsets_[static_cast<size_t>(c) + 1] - lo_off;
    probs.resize(width);
    nn::Tensor logits = net_->Apply(input);

    const auto [blo, bhi] = bin_ranges[static_cast<size_t>(c)];
    for (size_t s = 0; s < S; ++s) {
      if (path_prob[s] == 0.0) continue;
      nn::SoftmaxRow(logits.RowPtr(s) + lo_off, width, probs.data());

      double mass = 0.0;
      if (blo <= bhi) {
        for (int b = blo; b <= bhi; ++b) {
          mass += static_cast<double>(probs[static_cast<size_t>(b)]);
        }
      }
      path_prob[s] *= mass;
      if (path_prob[s] == 0.0) continue;

      // Sample the value for this column from the (masked, renormalized)
      // conditional and extend the one-hot prefix.
      double u = rng.NextDouble() * mass;
      int chosen = blo;
      double acc = 0.0;
      for (int b = blo; b <= bhi; ++b) {
        acc += static_cast<double>(probs[static_cast<size_t>(b)]);
        if (u < acc) {
          chosen = b;
          break;
        }
        chosen = b;
      }
      input.At(s, lo_off + static_cast<size_t>(chosen)) = 1.0f;
    }
  }

  double mean = 0.0;
  for (double p : path_prob) mean += p;
  return mean / static_cast<double>(S);
}

void NaruEstimator::SampleBatchSparse(const PreparedQuery* queries, size_t n,
                                      double* sel_out) const {
  const size_t total = binner_->TotalBins();
  const size_t S = std::max<size_t>(1, config_.num_samples);
  obs::Metrics().GetCounter("ce.naru.progressive_samples").Increment(S * n);

  const size_t num_layers = net_->num_layers();
  const auto* first =
      dynamic_cast<const nn::MaskedDense*>(&net_->layer(0));
  const auto* last =
      dynamic_cast<const nn::MaskedDense*>(&net_->layer(num_layers - 1));
  CONFCARD_CHECK_MSG(first != nullptr && last != nullptr,
                     "naru: unexpected network layout");

  int max_last = -1;
  for (size_t q = 0; q < n; ++q) {
    max_last = std::max(max_last, queries[q].last_constrained);
  }

  // Row q*S+s is sample path s of query q. Each query draws from its own
  // Rng stream so the draw sequence matches the per-query sampler no
  // matter how queries are batched together.
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (size_t q = 0; q < n; ++q) rngs.emplace_back(config_.seed ^ 0x5EEDBEEFULL);

  std::vector<double> path_prob(n * S, 1.0);
  // Per-row one-hot prefix as absolute logit indices. Block offsets grow
  // with the column, so each prefix is ascending by construction — the
  // order SparseRows requires for bit-identical accumulation.
  std::vector<std::vector<uint32_t>> prefix(n * S);
  const size_t max_steps = static_cast<size_t>(std::max(0, max_last) + 1);
  for (auto& p : prefix) p.reserve(max_steps);

  std::vector<size_t> active;       // live row ids, ascending
  std::vector<uint32_t> indices;    // concatenated prefixes of live rows
  std::vector<size_t> row_offsets;  // active.size() + 1 entries
  std::vector<float> probs;

  for (int c = 0; c <= max_last; ++c) {
    const size_t lo_off = block_offsets_[static_cast<size_t>(c)];
    const size_t width = block_offsets_[static_cast<size_t>(c) + 1] - lo_off;

    // Active-path compaction: drop rows whose path already has zero
    // probability and rows of queries with no constraint at or beyond
    // this column. Surviving rows keep their (query asc, sample asc)
    // order, which is the per-query draw order.
    active.clear();
    indices.clear();
    row_offsets.clear();
    row_offsets.push_back(0);
    for (size_t q = 0; q < n; ++q) {
      if (queries[q].last_constrained < c) continue;
      for (size_t s = 0; s < S; ++s) {
        const size_t r = q * S + s;
        if (path_prob[r] == 0.0) continue;
        active.push_back(r);
        indices.insert(indices.end(), prefix[r].begin(), prefix[r].end());
        row_offsets.push_back(indices.size());
      }
    }
    if (active.empty()) continue;

    const nn::SparseRows sparse{active.size(), total, indices.data(),
                                row_offsets.data()};
    // One-hot gather into the first layer; only the current block's
    // output columns out of the last. Middle layers run dense on the
    // compacted batch.
    nn::Tensor logits;
    if (num_layers == 1) {
      logits = first->ApplyOneHotCols(sparse, lo_off, lo_off + width);
    } else {
      nn::Tensor x = first->ApplyOneHot(sparse);
      for (size_t l = 1; l + 1 < num_layers; ++l) {
        x = net_->layer(l).Apply(x);
      }
      logits = last->ApplyCols(x, lo_off, lo_off + width);
    }

    probs.resize(width);
    for (size_t i = 0; i < active.size(); ++i) {
      const size_t r = active[i];
      const size_t q = r / S;
      nn::SoftmaxRow(logits.RowPtr(i), width, probs.data());

      const auto [blo, bhi] = queries[q].ranges[static_cast<size_t>(c)];
      double mass = 0.0;
      if (blo <= bhi) {
        for (int b = blo; b <= bhi; ++b) {
          mass += static_cast<double>(probs[static_cast<size_t>(b)]);
        }
      }
      path_prob[r] *= mass;
      if (path_prob[r] == 0.0) continue;

      double u = rngs[q].NextDouble() * mass;
      int chosen = blo;
      double acc = 0.0;
      for (int b = blo; b <= bhi; ++b) {
        acc += static_cast<double>(probs[static_cast<size_t>(b)]);
        if (u < acc) {
          chosen = b;
          break;
        }
        chosen = b;
      }
      prefix[r].push_back(static_cast<uint32_t>(lo_off +
                                                static_cast<size_t>(chosen)));
    }
  }

  for (size_t q = 0; q < n; ++q) {
    double mean = 0.0;
    for (size_t s = 0; s < S; ++s) mean += path_prob[q * S + s];
    sel_out[q] = mean / static_cast<double>(S);
  }
}

NaruEstimator::PreparedQuery NaruEstimator::Prepare(const Query& query) const {
  const size_t num_cols = binner_->num_columns();
  PreparedQuery out;
  // Per-column allowed bin range; unconstrained columns span everything.
  out.ranges.resize(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    out.ranges[c] = {0, binner_->column(c).num_bins() - 1};
  }
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    auto [blo, bhi] = binner_->PredicateBins(p);
    // Intersect with any existing constraint on the column.
    out.ranges[c] = {std::max(out.ranges[c].first, blo),
                     std::min(out.ranges[c].second, bhi)};
    out.last_constrained = std::max(out.last_constrained, p.column);
  }
  for (const Predicate& p : query.predicates) {
    const auto& r = out.ranges[static_cast<size_t>(p.column)];
    if (r.first > r.second) out.empty_range = true;
  }
  return out;
}

double NaruEstimator::EstimateSelectivity(const Query& query) const {
  CONFCARD_CHECK_MSG(net_ != nullptr, "naru: not trained");
  const PreparedQuery prepared = Prepare(query);
  if (prepared.last_constrained < 0) return 1.0;
  if (prepared.empty_range) return 0.0;
  if (config_.sparse_inference) {
    double sel = 0.0;
    SampleBatchSparse(&prepared, 1, &sel);
    return sel;
  }
  return ProgressiveSampleDense(prepared.ranges, prepared.last_constrained);
}

double NaruEstimator::EstimateCardinality(const Query& query) const {
  static obs::Counter& queries =
      obs::Metrics().GetCounter("ce.naru.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.naru.infer_us");
  Stopwatch watch;
  const double selectivity = EstimateSelectivity(query);
  latency.Record(watch.ElapsedMicros());
  queries.Increment();
  double card = selectivity * num_rows_;
  if (fault::Enabled()) {
    const uint64_t key = QueryContentKey(query);
    // sampler.step models a stall/failure inside progressive sampling —
    // it only applies to queries that actually ran the sampling engine.
    const PreparedQuery prepared = Prepare(query);
    if (prepared.last_constrained >= 0 && !prepared.empty_range) {
      card = fault::PerturbValue("sampler.step", key, card);
    }
    card = fault::PerturbValue("naru.forward", key, card);
  }
  return card;
}

void NaruEstimator::EstimateBatch(const Query* queries, size_t n,
                                  double* out) const {
  if (n == 0) return;
  CONFCARD_CHECK_MSG(net_ != nullptr, "naru: not trained");
  static obs::Counter& query_counter =
      obs::Metrics().GetCounter("ce.naru.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.naru.infer_us");
  Stopwatch watch;

  // Trivial queries (no predicates / empty bin ranges) are answered
  // directly, exactly as the per-query path does; the rest share the
  // sampling engine.
  std::vector<PreparedQuery> prepared(n);
  std::vector<size_t> engine_idx;
  engine_idx.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prepared[i] = Prepare(queries[i]);
    if (prepared[i].last_constrained < 0) {
      out[i] = num_rows_;
    } else if (prepared[i].empty_range) {
      out[i] = 0.0;
    } else {
      engine_idx.push_back(i);
    }
  }
  if (!engine_idx.empty()) {
    if (config_.sparse_inference) {
      std::vector<PreparedQuery> engine_queries;
      engine_queries.reserve(engine_idx.size());
      for (size_t idx : engine_idx) engine_queries.push_back(prepared[idx]);
      std::vector<double> sel(engine_idx.size());
      SampleBatchSparse(engine_queries.data(), engine_queries.size(),
                        sel.data());
      for (size_t k = 0; k < engine_idx.size(); ++k) {
        out[engine_idx[k]] = sel[k] * num_rows_;
      }
    } else {
      for (size_t idx : engine_idx) {
        out[idx] = ProgressiveSampleDense(prepared[idx].ranges,
                                          prepared[idx].last_constrained) *
                   num_rows_;
      }
    }
  }

  if (fault::Enabled()) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = QueryContentKey(queries[i]);
      if (prepared[i].last_constrained >= 0 && !prepared[i].empty_range) {
        out[i] = fault::PerturbValue("sampler.step", key, out[i]);
      }
      out[i] = fault::PerturbValue("naru.forward", key, out[i]);
    }
  }

  // Telemetry parity with the per-query path: one count per query, and
  // the histogram receives one (amortized) sample per query so its count
  // matches a per-query run.
  const double per_query_us = watch.ElapsedMicros() / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) latency.Record(per_query_us);
  query_counter.Increment(n);
}

}  // namespace confcard
