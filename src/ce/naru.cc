#include "ce/naru.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {
namespace {

// Degree assignment for MADE masks. Input/output units of column i carry
// degree i+1; hidden units cycle through 1..D-1 so every conditional has
// capacity. Connection rules: input->hidden if deg_h >= deg_in is NOT
// autoregressive for inputs (we need deg_h >= deg_in with inputs allowed
// to feed only strictly-later outputs); the standard MADE rules are
//   input->hidden:   deg_h >= deg_in
//   hidden->hidden:  deg_h2 >= deg_h1
//   hidden->output:  deg_out > deg_h
// which guarantee output block i sees only input blocks < i.
std::vector<int> HiddenDegrees(size_t width, int num_cols, Rng& rng) {
  std::vector<int> degrees(width);
  if (num_cols <= 1) {
    // Single column: unconditional marginal; no hidden connectivity
    // needed, but keep degrees valid.
    for (auto& d : degrees) d = 1;
    return degrees;
  }
  for (size_t i = 0; i < width; ++i) {
    degrees[i] = 1 + static_cast<int>(rng.NextUint64(
                         static_cast<uint64_t>(num_cols - 1)));
  }
  return degrees;
}

nn::Tensor MakeMask(const std::vector<int>& in_degrees,
                    const std::vector<int>& out_degrees, bool strict) {
  nn::Tensor mask(in_degrees.size(), out_degrees.size());
  for (size_t i = 0; i < in_degrees.size(); ++i) {
    for (size_t j = 0; j < out_degrees.size(); ++j) {
      const bool connect = strict ? out_degrees[j] > in_degrees[i]
                                  : out_degrees[j] >= in_degrees[i];
      mask.At(i, j) = connect ? 1.0f : 0.0f;
    }
  }
  return mask;
}

}  // namespace

namespace {
// 'CNR1' — confcard naru archive.
constexpr uint32_t kNaruMagic = 0x434E5231;
constexpr uint32_t kNaruVersion = 1;
}  // namespace

NaruEstimator::NaruEstimator(NaruConfig config) : config_(config) {}

Status NaruEstimator::SaveToFile(const std::string& path) const {
  if (net_ == nullptr) return Status::FailedPrecondition("naru: not trained");
  ArchiveWriter w(kNaruMagic, kNaruVersion);
  w.WriteU64(config_.hidden);
  w.WriteI32(config_.hidden_layers);
  w.WriteI32(config_.epochs);
  w.WriteU64(config_.batch_size);
  w.WriteDouble(config_.lr);
  w.WriteI32(config_.numeric_bins);
  w.WriteU64(config_.max_train_rows);
  w.WriteU64(config_.num_samples);
  w.WriteU64(config_.seed);
  w.WriteDouble(num_rows_);
  w.WriteU64(binner_->TotalBins());
  nn::SerializeParameters(*net_, &w);
  return w.SaveToFile(path);
}

Result<NaruEstimator> NaruEstimator::LoadFromFile(const Table& table,
                                                  const std::string& path) {
  CONFCARD_ASSIGN_OR_RETURN(
      ArchiveReader r,
      ArchiveReader::FromFile(path, kNaruMagic, kNaruVersion));
  NaruConfig cfg;
  cfg.hidden = static_cast<size_t>(r.ReadU64());
  cfg.hidden_layers = r.ReadI32();
  cfg.epochs = r.ReadI32();
  cfg.batch_size = static_cast<size_t>(r.ReadU64());
  cfg.lr = r.ReadDouble();
  cfg.numeric_bins = r.ReadI32();
  cfg.max_train_rows = static_cast<size_t>(r.ReadU64());
  cfg.num_samples = static_cast<size_t>(r.ReadU64());
  cfg.seed = r.ReadU64();
  const double num_rows = r.ReadDouble();
  const uint64_t total_bins = r.ReadU64();
  CONFCARD_RETURN_NOT_OK(r.status());

  NaruEstimator est(cfg);
  est.num_rows_ = static_cast<double>(table.num_rows());
  if (est.num_rows_ != num_rows) {
    return Status::InvalidArgument(
        "naru archive was trained on a table with a different row count");
  }
  est.binner_ = std::make_unique<TableBinner>(table, cfg.numeric_bins);
  if (est.binner_->TotalBins() != total_bins) {
    return Status::InvalidArgument(
        "naru archive discretization does not match this table");
  }
  // Rebuild masks exactly as Train did: the mask construction consumes
  // the same Rng stream given the same seed and shapes.
  Rng rng(cfg.seed);
  est.BuildNetwork(rng);
  CONFCARD_RETURN_NOT_OK(nn::DeserializeParameters(*est.net_, &r));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in naru archive");
  }
  return est;
}

void NaruEstimator::BuildNetwork(Rng& rng) {
  const size_t num_cols = binner_->num_columns();
  const size_t total = binner_->TotalBins();

  block_offsets_.clear();
  block_offsets_.push_back(0);
  std::vector<int> io_degrees(total);
  size_t pos = 0;
  for (size_t c = 0; c < num_cols; ++c) {
    const size_t width = static_cast<size_t>(binner_->column(c).num_bins());
    for (size_t k = 0; k < width; ++k) {
      io_degrees[pos + k] = static_cast<int>(c) + 1;
    }
    pos += width;
    block_offsets_.push_back(pos);
  }

  net_ = std::make_unique<nn::Sequential>();
  std::vector<int> prev_degrees = io_degrees;
  bool prev_is_input = true;
  for (int l = 0; l < config_.hidden_layers; ++l) {
    std::vector<int> h_degrees =
        HiddenDegrees(config_.hidden, static_cast<int>(num_cols), rng);
    nn::Tensor mask = MakeMask(prev_degrees, h_degrees, /*strict=*/false);
    net_->Append(std::make_unique<nn::MaskedDense>(
        prev_degrees.size(), config_.hidden, std::move(mask), rng));
    net_->Append(std::make_unique<nn::Relu>());
    prev_degrees = std::move(h_degrees);
    prev_is_input = false;
  }
  // Output layer: strict inequality enforces autoregressive ordering.
  nn::Tensor out_mask = MakeMask(prev_degrees, io_degrees, /*strict=*/true);
  net_->Append(std::make_unique<nn::MaskedDense>(
      prev_degrees.size(), total, std::move(out_mask), rng));
  (void)prev_is_input;
}

Status NaruEstimator::Train(const Table& table) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("naru: empty table");
  }
  obs::TraceSpan span("train.naru");
  span.SetAttr("rows", static_cast<double>(table.num_rows()));
  obs::Metrics().SetMeta(
      "config.naru", "epochs=" + std::to_string(config_.epochs) +
                         " hidden=" + std::to_string(config_.hidden) +
                         " num_samples=" + std::to_string(config_.num_samples) +
                         " seed=" + std::to_string(config_.seed));
  obs::Metrics().GetCounter("ce.naru.trainings").Increment();
  num_rows_ = static_cast<double>(table.num_rows());
  binner_ = std::make_unique<TableBinner>(table, config_.numeric_bins);
  Rng rng(config_.seed);
  BuildNetwork(rng);

  // Subsample training rows if needed.
  std::vector<uint32_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  if (rows.size() > config_.max_train_rows) {
    rng.Shuffle(rows);
    rows.resize(config_.max_train_rows);
  }

  // Pre-bin all training rows.
  const size_t num_cols = binner_->num_columns();
  std::vector<std::vector<int>> binned(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    binned[i] = binner_->BinRow(table, rows[i]);
  }

  const size_t total = binner_->TotalBins();
  nn::Adam adam(net_->Parameters(), config_.lr);
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t bs = std::max<size_t>(1, config_.batch_size);

  obs::Gauge& loss_gauge = obs::Metrics().GetGauge("nn.naru.last_loss");
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("epoch");
    epoch_span.SetAttr("epoch", static_cast<double>(epoch));
    rng.Shuffle(order);
    double loss_sum = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size(); start += bs) {
      const size_t end = std::min(order.size(), start + bs);
      const size_t b = end - start;
      nn::Tensor input(b, total);
      std::vector<std::vector<int>> targets(b);
      for (size_t i = 0; i < b; ++i) {
        const std::vector<int>& bins = binned[order[start + i]];
        targets[i] = bins;
        float* row = input.RowPtr(i);
        for (size_t c = 0; c < num_cols; ++c) {
          row[block_offsets_[c] + static_cast<size_t>(bins[c])] = 1.0f;
        }
      }
      nn::Tensor logits = net_->Forward(input);
      nn::Tensor grad;
      loss_sum +=
          nn::BlockSoftmaxCrossEntropy(logits, block_offsets_, targets, &grad);
      net_->Backward(grad);
      adam.Step();
      ++num_batches;
    }
    const double mean_loss =
        num_batches == 0 ? 0.0 : loss_sum / static_cast<double>(num_batches);
    epoch_span.SetAttr("loss", mean_loss);
    loss_gauge.Set(mean_loss);
  }
  return Status::OK();
}

double NaruEstimator::ProgressiveSample(
    const std::vector<std::pair<int, int>>& bin_ranges,
    int last_constrained) const {
  const size_t num_cols = binner_->num_columns();
  const size_t total = binner_->TotalBins();
  const size_t S = std::max<size_t>(1, config_.num_samples);
  obs::Metrics().GetCounter("ce.naru.progressive_samples").Increment(S);

  // Deterministic per-call sampler: inference must be repeatable.
  Rng rng(config_.seed ^ 0x5EEDBEEFULL);

  nn::Tensor input(S, total);  // grows one one-hot block per step
  std::vector<double> path_prob(S, 1.0);
  std::vector<float> probs;

  for (int c = 0; c <= last_constrained; ++c) {
    const size_t lo_off = block_offsets_[static_cast<size_t>(c)];
    const size_t width = block_offsets_[static_cast<size_t>(c) + 1] - lo_off;
    nn::Tensor logits = net_->Apply(input);

    const auto [blo, bhi] = bin_ranges[static_cast<size_t>(c)];
    for (size_t s = 0; s < S; ++s) {
      if (path_prob[s] == 0.0) continue;
      probs.resize(width);
      nn::SoftmaxRow(logits.RowPtr(s) + lo_off, width, probs.data());

      double mass = 0.0;
      if (blo <= bhi) {
        for (int b = blo; b <= bhi; ++b) {
          mass += static_cast<double>(probs[static_cast<size_t>(b)]);
        }
      }
      path_prob[s] *= mass;
      if (path_prob[s] == 0.0) continue;

      // Sample the value for this column from the (masked, renormalized)
      // conditional and extend the one-hot prefix.
      double u = rng.NextDouble() * mass;
      int chosen = blo;
      double acc = 0.0;
      for (int b = blo; b <= bhi; ++b) {
        acc += static_cast<double>(probs[static_cast<size_t>(b)]);
        if (u < acc) {
          chosen = b;
          break;
        }
        chosen = b;
      }
      input.At(s, lo_off + static_cast<size_t>(chosen)) = 1.0f;
    }
  }
  (void)num_cols;

  double mean = 0.0;
  for (double p : path_prob) mean += p;
  return mean / static_cast<double>(S);
}

double NaruEstimator::EstimateSelectivity(const Query& query) const {
  CONFCARD_CHECK_MSG(net_ != nullptr, "naru: not trained");
  const size_t num_cols = binner_->num_columns();

  // Per-column allowed bin range; unconstrained columns span everything.
  std::vector<std::pair<int, int>> ranges(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    ranges[c] = {0, binner_->column(c).num_bins() - 1};
  }
  int last_constrained = -1;
  for (const Predicate& p : query.predicates) {
    const size_t c = static_cast<size_t>(p.column);
    auto [blo, bhi] = binner_->PredicateBins(p);
    // Intersect with any existing constraint on the column.
    ranges[c] = {std::max(ranges[c].first, blo),
                 std::min(ranges[c].second, bhi)};
    last_constrained = std::max(last_constrained, p.column);
  }
  if (last_constrained < 0) return 1.0;
  for (const Predicate& p : query.predicates) {
    const auto& r = ranges[static_cast<size_t>(p.column)];
    if (r.first > r.second) return 0.0;  // empty bin range
  }
  return ProgressiveSample(ranges, last_constrained);
}

double NaruEstimator::EstimateCardinality(const Query& query) const {
  static obs::Counter& queries =
      obs::Metrics().GetCounter("ce.naru.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.naru.infer_us");
  Stopwatch watch;
  const double selectivity = EstimateSelectivity(query);
  latency.Record(watch.ElapsedMicros());
  queries.Increment();
  return selectivity * num_rows_;
}

}  // namespace confcard
