// Estimator interfaces. The conformal layer treats estimators as black
// boxes (the paper's "no changes to the underlying model" desideratum);
// the narrower interfaces below expose exactly the two hooks the paper's
// methods need beyond prediction: retraining on a sub-workload (JK-CV+)
// and swapping the training loss for a pinball loss (CQR).
#ifndef CONFCARD_CE_ESTIMATOR_H_
#define CONFCARD_CE_ESTIMATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "data/table.h"
#include "query/predicate.h"

namespace confcard {

/// Black-box single-table cardinality estimator.
class CardinalityEstimator {
 public:
  CardinalityEstimator() : instance_id_(NextInstanceId()) {}
  virtual ~CardinalityEstimator() = default;

  virtual std::string name() const = 0;

  /// Estimated COUNT(*) for `query`, in tuples (>= 0).
  virtual double EstimateCardinality(const Query& query) const = 0;

  /// Estimates `n` queries, writing results to out[0..n). Semantically a
  /// loop over EstimateCardinality — and that is the default — but
  /// batch-capable estimators override it to amortize model forwards
  /// (one GEMM instead of n GEMVs, shared progressive-sampling steps).
  /// Overrides must return bit-identical values to the per-query loop;
  /// determinism_test enforces this.
  virtual void EstimateBatch(const Query* queries, size_t n,
                             double* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = EstimateCardinality(queries[i]);
  }

  /// Process-unique id of this estimator instance. Used by caches in
  /// place of the object address, which can be reused after destruction
  /// (e.g., models re-created in a loop at the same stack slot).
  uint64_t instance_id() const { return instance_id_; }

 private:
  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t instance_id_;
};

/// Training loss selector for supervised estimators. kDefault is the
/// model's published loss (mean q-error for MSCN, MSE for LW-NN);
/// kPinball turns the model into a tau-quantile regressor — the loss
/// modification CQR requires (Section III-F).
struct LossSpec {
  enum Kind { kDefault, kPinball } kind = kDefault;
  double tau = 0.5;

  static LossSpec Default() { return {kDefault, 0.5}; }
  static LossSpec Pinball(double tau) { return {kPinball, tau}; }
};

/// A query-driven estimator trained on a labeled workload. Exposes the
/// retraining hooks used by Jackknife+ (fold retraining on sub-
/// workloads) and CQR (quantile-loss twins).
class SupervisedEstimator : public CardinalityEstimator {
 public:
  /// Trains on (a subset of) the labeled workload. `table` supplies the
  /// statistics featurizers need (domains, histograms, sample bitmaps).
  virtual Status Train(const Table& table, const Workload& workload) = 0;

  /// Fresh untrained copy with identical architecture/hyper-parameters
  /// but an independent seed (`seed_offset` decorrelates ensemble
  /// members and fold models).
  virtual std::unique_ptr<SupervisedEstimator> CloneArchitecture(
      uint64_t seed_offset) const = 0;

  /// Selects the training loss for subsequent Train calls.
  virtual void SetLoss(const LossSpec& loss) = 0;

  /// Re-publishes the last-write-wins telemetry this model's Train
  /// emitted (loss gauges, config meta). When the harness trains
  /// several fold/ensemble models concurrently, the registry's final
  /// state would otherwise depend on scheduling; calling this on the
  /// model that a serial run would have trained last restores the
  /// serial outcome. Default: no-op.
  virtual void RepublishTrainingTelemetry() const {}
};

/// A data-driven estimator trained directly on the table (no workload).
class DataDrivenEstimator : public CardinalityEstimator {
 public:
  virtual Status Train(const Table& table) = 0;
};

}  // namespace confcard

#endif  // CONFCARD_CE_ESTIMATOR_H_
